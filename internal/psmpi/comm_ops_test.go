package psmpi

import (
	"testing"

	"clusterbooster/internal/vclock"
)

func TestSplitByParity(t *testing.T) {
	rt := testRuntime(6, 0)
	runJob(t, rt, 6, func(p *Proc) error {
		sub := p.Split(p.World(), p.Rank()%2, p.Rank())
		if sub == nil {
			t.Errorf("rank %d got nil comm", p.Rank())
			return nil
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size %d, want 3", p.Rank(), sub.Size())
		}
		// New ranks are ordered by key (= old rank).
		want := p.Rank() / 2
		if got := p.rankIn(sub); got != want {
			t.Errorf("rank %d: new rank %d, want %d", p.Rank(), got, want)
		}
		// The sub-communicator must work: reduce within the group.
		sum := p.AllreduceScalar(sub, float64(p.Rank()), OpSum)
		wantSum := 0.0 + 2 + 4
		if p.Rank()%2 == 1 {
			wantSum = 1 + 3 + 5
		}
		if sum != wantSum {
			t.Errorf("rank %d: group sum %v, want %v", p.Rank(), sum, wantSum)
		}
		return nil
	})
}

func TestSplitUndefinedColor(t *testing.T) {
	rt := testRuntime(4, 0)
	runJob(t, rt, 4, func(p *Proc) error {
		color := 0
		if p.Rank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub := p.Split(p.World(), color, 0)
		if p.Rank() == 3 {
			if sub != nil {
				t.Error("undefined color produced a communicator")
			}
			return nil
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: sub = %v", p.Rank(), sub)
		}
		return nil
	})
}

func TestSplitKeyReordersRanks(t *testing.T) {
	rt := testRuntime(4, 0)
	runJob(t, rt, 4, func(p *Proc) error {
		// Reverse the rank order via the key.
		sub := p.Split(p.World(), 0, -p.Rank())
		want := p.World().Size() - 1 - p.Rank()
		if got := p.rankIn(sub); got != want {
			t.Errorf("rank %d: new rank %d, want %d", p.Rank(), got, want)
		}
		return nil
	})
}

func TestDupIsolatesTraffic(t *testing.T) {
	// A message sent on the dup must not match a receive on the original.
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		dup := p.Dup(w)
		if p.Rank() == 0 {
			p.SendF64(dup, 1, 5, []float64{1}) // on dup
			p.SendF64(w, 1, 5, []float64{2})   // on world
			return nil
		}
		buf := make([]float64, 1)
		p.RecvF64(w, 0, 5, buf) // must get the world message (2), not (1)
		if buf[0] != 2 {
			t.Errorf("world recv got %v, want 2 (dup leaked)", buf[0])
		}
		p.RecvF64(dup, 0, 5, buf)
		if buf[0] != 1 {
			t.Errorf("dup recv got %v, want 1", buf[0])
		}
		return nil
	})
}

func TestSequentialSplits(t *testing.T) {
	// Two Split calls in sequence must produce independent communicators.
	rt := testRuntime(4, 0)
	runJob(t, rt, 4, func(p *Proc) error {
		a := p.Split(p.World(), p.Rank()%2, 0)
		bq := p.Split(p.World(), p.Rank()/2, 0)
		if a.id == bq.id {
			t.Error("sequential splits share a context")
		}
		if a.Size() != 2 || bq.Size() != 2 {
			t.Errorf("sizes %d/%d", a.Size(), bq.Size())
		}
		return nil
	})
}

func TestSendrecvRingExchange(t *testing.T) {
	// The classic cyclic shift that deadlocks with blocking sends.
	const n = 5
	rt := testRuntime(n, 0)
	runJob(t, rt, n, func(p *Proc) error {
		w := p.World()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		got, st := p.Sendrecv(w, right, 9, []float64{float64(p.Rank())}, 8, left, 9)
		v := got.([]float64)[0]
		if int(v) != left || st.Source != left {
			t.Errorf("rank %d: got %v from %d", p.Rank(), v, st.Source)
		}
		return nil
	})
}

func TestProbeThenRecv(t *testing.T) {
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			p.SendF64(w, 1, 3, []float64{1, 2, 3, 4})
			return nil
		}
		st := p.Probe(w, 0, AnyTag)
		if st.Tag != 3 || st.Bytes != 32 {
			t.Errorf("probe status %+v", st)
		}
		// Message still queued after probe.
		buf := make([]float64, st.Bytes/8)
		n, _ := p.RecvF64(w, 0, st.Tag, buf)
		if n != 4 {
			t.Errorf("recv after probe got %d elems", n)
		}
		return nil
	})
}

func TestIprobeNonBlocking(t *testing.T) {
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 1 {
			// Nothing sent yet: Iprobe must not block.
			if _, ok := p.Iprobe(w, 0, 1); ok {
				t.Error("Iprobe found a phantom message")
			}
			// Tell rank 0 we're ready, then poll.
			p.SendF64(w, 0, 2, []float64{1})
			for {
				if st, ok := p.Iprobe(w, 0, 1); ok {
					if st.Tag != 1 {
						t.Errorf("status %+v", st)
					}
					break
				}
				p.Elapse(vclock.Microsecond)
			}
			p.Recv(w, 0, 1)
			return nil
		}
		buf := make([]float64, 1)
		p.RecvF64(w, 1, 2, buf)
		p.SendF64(w, 1, 1, []float64{42})
		return nil
	})
}
