package psmpi

import (
	"sync"
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/vclock"
)

// TestSpawnBasic reproduces the Fig. 4 schematic: a job on the Cluster spawns
// children on the Booster; both sides have their own worlds joined by an
// inter-communicator.
func TestSpawnBasic(t *testing.T) {
	rt := testRuntime(2, 3)
	childRanks := make(chan int, 8)
	rt.Register("child", func(p *Proc) error {
		childRanks <- p.Rank()
		if p.Parent() == nil {
			t.Error("child has no parent intercommunicator")
			return nil
		}
		if p.Parent().RemoteSize() != 2 {
			t.Errorf("child sees %d parents, want 2", p.Parent().RemoteSize())
		}
		if p.Module() != machine.Booster {
			t.Errorf("child on %v, want Booster", p.Module())
		}
		if p.World().Size() != 3 {
			t.Errorf("child world size = %d, want 3", p.World().Size())
		}
		return nil
	})
	runJob(t, rt, 2, func(p *Proc) error {
		inter, err := p.Spawn(p.World(), SpawnSpec{Binary: "child", Procs: 3, Module: machine.Booster})
		if err != nil {
			return err
		}
		if !inter.IsInter() {
			t.Error("spawn returned an intra-communicator")
		}
		if inter.RemoteSize() != 3 || inter.Size() != 2 {
			t.Errorf("intercomm sizes %d/%d, want 2 local / 3 remote", inter.Size(), inter.RemoteSize())
		}
		if p.Parent() != nil {
			t.Error("top-level job has a parent")
		}
		return nil
	})
	close(childRanks)
	seen := map[int]bool{}
	for r := range childRanks {
		seen[r] = true
	}
	if len(seen) != 3 {
		t.Errorf("child ranks seen: %v", seen)
	}
}

// TestSpawnIntercommTraffic sends data both ways across the
// inter-communicator, the xPic Listing 4 pattern (Issend/Irecv).
func TestSpawnIntercommTraffic(t *testing.T) {
	rt := testRuntime(1, 1)
	rt.Register("worker", func(p *Proc) error {
		parent := p.Parent()
		buf := make([]float64, 2)
		p.RecvF64(parent, 0, 1, buf) // from parent rank 0
		buf[0] *= 10
		buf[1] *= 10
		req := p.IssendF64(parent, 0, 2, buf)
		p.Wait(req)
		return nil
	})
	runJob(t, rt, 1, func(p *Proc) error {
		inter, err := p.Spawn(p.World(), SpawnSpec{Binary: "worker", Procs: 1, Module: machine.Booster})
		if err != nil {
			return err
		}
		p.SendF64(inter, 0, 1, []float64{3, 4})
		buf := make([]float64, 2)
		p.RecvF64(inter, 0, 2, buf)
		if buf[0] != 30 || buf[1] != 40 {
			t.Errorf("round trip got %v, want [30 40]", buf)
		}
		return nil
	})
}

// TestSpawnChildrenStartLater checks the virtual-time semantics: children
// boot after the spawn overhead.
func TestSpawnChildrenStartLater(t *testing.T) {
	rt := testRuntime(1, 1)
	var childStart vclock.Time
	rt.Register("lazy", func(p *Proc) error {
		childStart = p.Now()
		return nil
	})
	const preWork = 100 * vclock.Millisecond
	runJob(t, rt, 1, func(p *Proc) error {
		p.Elapse(preWork)
		_, err := p.Spawn(p.World(), SpawnSpec{Binary: "lazy", Procs: 1, Module: machine.Booster})
		return err
	})
	if childStart < preWork+rt.cfg.SpawnOverhead {
		t.Errorf("child started at %v, want >= %v", childStart, preWork+rt.cfg.SpawnOverhead)
	}
}

// TestSpawnUnknownBinary checks the error path on every parent rank.
func TestSpawnUnknownBinary(t *testing.T) {
	rt := testRuntime(2, 1)
	errs := make(chan error, 2)
	runJob(t, rt, 2, func(p *Proc) error {
		_, err := p.Spawn(p.World(), SpawnSpec{Binary: "missing", Procs: 1, Module: machine.Booster})
		errs <- err
		return nil // spawn failure is recoverable for the parents
	})
	close(errs)
	n := 0
	for err := range errs {
		if err == nil {
			t.Error("spawn of unregistered binary succeeded")
		}
		n++
	}
	if n != 2 {
		t.Errorf("expected 2 error reports, got %d", n)
	}
}

// TestSpawnMakespanIncludesChildren checks that Launch waits for spawned
// children and includes them in the makespan.
func TestSpawnMakespanIncludesChildren(t *testing.T) {
	rt := testRuntime(1, 1)
	const childWork = 2 * vclock.Second
	rt.Register("slowchild", func(p *Proc) error {
		p.Elapse(childWork)
		return nil
	})
	res := runJob(t, rt, 1, func(p *Proc) error {
		_, err := p.Spawn(p.World(), SpawnSpec{Binary: "slowchild", Procs: 1, Module: machine.Booster})
		return err
	})
	if res.Makespan < childWork {
		t.Errorf("makespan %v does not include child work %v", res.Makespan, childWork)
	}
}

// TestSpawnReverseDirection spawns from Booster onto Cluster — the actual
// xPic deployment (the Booster binary spawns the Cluster binary).
func TestSpawnReverseDirection(t *testing.T) {
	rt := testRuntime(2, 2)
	rt.Register("cluster_side", func(p *Proc) error {
		if p.Module() != machine.Cluster {
			t.Errorf("spawned child on %v, want Cluster", p.Module())
		}
		buf := make([]float64, 1)
		p.RecvF64(p.Parent(), 0, 0, buf)
		return nil
	})
	bNodes := rt.System().Module(machine.Booster)
	_, err := rt.Launch(LaunchSpec{Nodes: bNodes, Main: func(p *Proc) error {
		inter, err := p.Spawn(p.World(), SpawnSpec{Binary: "cluster_side", Procs: 2, Module: machine.Cluster})
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			p.SendF64(inter, 0, 0, []float64{1})
			p.SendF64(inter, 1, 0, []float64{1})
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSpawnChildError checks that child failures surface in the launch
// result.
func TestSpawnChildError(t *testing.T) {
	rt := testRuntime(1, 1)
	rt.Register("bad", func(p *Proc) error { return errTest })
	_, err := rt.Launch(LaunchSpec{
		Nodes: rt.System().Module(machine.Cluster)[:1],
		Main: func(p *Proc) error {
			_, err := p.Spawn(p.World(), SpawnSpec{Binary: "bad", Procs: 1, Module: machine.Booster})
			return err
		},
	})
	if err == nil {
		t.Fatal("child error not propagated to launch result")
	}
}

// TestSpawnArgsVisible checks argument passing to children.
func TestSpawnArgsVisible(t *testing.T) {
	rt := testRuntime(1, 1)
	rt.Register("argchild", func(p *Proc) error {
		if p.Args().(string) != "hello" {
			t.Errorf("child args = %v", p.Args())
		}
		return nil
	})
	runJob(t, rt, 1, func(p *Proc) error {
		_, err := p.Spawn(p.World(), SpawnSpec{Binary: "argchild", Procs: 1, Module: machine.Booster, Args: "hello"})
		return err
	})
}

// TestSpawnPlacementService checks that a configured Placement is consulted.
type fixedPlacement struct {
	nodes []*machine.Node
	calls int
}

func (f *fixedPlacement) PlaceSpawn(n int, m machine.Module) ([]*machine.Node, error) {
	f.calls++
	return f.nodes[:n], nil
}

func TestSpawnPlacementService(t *testing.T) {
	rt := testRuntime(1, 3)
	want := rt.System().Module(machine.Booster)[2:3] // place on bn02 specifically
	fp := &fixedPlacement{nodes: want}
	rt.SetPlacement(fp)
	rt.Register("placed", func(p *Proc) error {
		if p.Node().Name() != "bn02" {
			t.Errorf("child placed on %s, want bn02", p.Node().Name())
		}
		return nil
	})
	runJob(t, rt, 1, func(p *Proc) error {
		_, err := p.Spawn(p.World(), SpawnSpec{Binary: "placed", Procs: 1, Module: machine.Booster})
		return err
	})
	if fp.calls != 1 {
		t.Errorf("placement called %d times, want 1", fp.calls)
	}
}

// TestSpawnPlacementFromAllocation checks the per-launch placement override:
// a job launched with its live allocation as Placement spawns children onto
// the allocation's own nodes, even though the machine-wide service would
// prefer the free nodes outside the reservation.
func TestSpawnPlacementFromAllocation(t *testing.T) {
	rt := testRuntime(2, 4)
	mgr := sched.NewManager(rt.System())
	rt.SetPlacement(mgr) // machine-wide fallback: prefers free nodes
	alloc, err := mgr.Alloc(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	inside := map[string]bool{}
	for _, n := range alloc.Booster {
		inside[n.Name()] = true
	}
	var mu sync.Mutex
	var landed []string
	rt.Register("allocchild", func(p *Proc) error {
		mu.Lock()
		landed = append(landed, p.Node().Name())
		mu.Unlock()
		return nil
	})
	main := func(p *Proc) error {
		_, err := p.Spawn(p.World(), SpawnSpec{Binary: "allocchild", Procs: 4, Module: machine.Booster})
		return err
	}
	if _, err := rt.Launch(LaunchSpec{Nodes: alloc.Cluster, Main: main, Placement: alloc}); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if len(landed) != 4 {
		t.Fatalf("%d children ran, want 4", len(landed))
	}
	for _, name := range landed {
		if !inside[name] {
			t.Errorf("child on %s escaped the allocation %v", name, alloc.Booster)
		}
	}
}
