package psmpi

import (
	"errors"
	"fmt"
	"math/rand"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// NodeFailure is the error every rank of a job carries after an injected
// node failure aborted it: the whole job dies (MPI semantics — §III-D
// restarts the job from the best surviving checkpoint, it does not continue
// degraded). Recover it from a Launch result with FailureOf.
type NodeFailure struct {
	// Node is the name of the failed node.
	Node string
	// NodeID is the failed node's machine ID.
	NodeID int
	// At is the virtual time the failure struck.
	At vclock.Time
}

// Error renders the failure.
func (f *NodeFailure) Error() string {
	return fmt.Sprintf("node %s failed at %v", f.Node, f.At)
}

// FailureOf extracts the injected node failure that aborted a job, walking
// the joined and wrapped rank errors of a Launch result. ok is false when err
// carries no injected failure — a genuine application or runtime error.
func FailureOf(err error) (*NodeFailure, bool) {
	var nf *NodeFailure
	if errors.As(err, &nf) {
		return nf, true
	}
	return nil, false
}

// FailureInjector schedules deterministic node failures into launches: one
// seeded RNG draws exponential inter-arrival times against the system MTBF
// (per-node MTBF over the distinct nodes of the victim pool) and uniform
// victims, so a fixed seed yields a fixed failure sequence in virtual time —
// independent of host scheduling or sweep worker counts.
//
// The injector is stateful across launches on purpose: a restart loop
// re-launches the job after each failure, and the injector continues the
// failure sequence into the new attempt (the exponential law is memoryless,
// so drawing the next inter-arrival from the attempt's start time is
// faithful; failures during the restart window itself are not modelled).
// Each armed launch carries at most one failure — the first one kills it.
type FailureInjector struct {
	mtbf  vclock.Time // per-node MTBF
	rng   *rand.Rand
	pool  []*machine.Node // victim pool (distinct nodes)
	max   int             // stop injecting after this many failures (0 = none)
	count int             // failures fired so far, across launches

	// OnFailure, if set, runs at the failure instant before the job is torn
	// down — the hook the SCR glue uses to invalidate the node's checkpoints.
	OnFailure func(node *machine.Node, at vclock.Time)
}

// NewFailureInjector builds an injector over the distinct nodes of pool.
// mtbf is the per-node mean time between failures; maxFailures bounds how
// many failures the injector will ever fire, so a bounded restart loop
// eventually runs failure-free to completion. A zero mtbf, zero maxFailures
// or empty pool yields an injector that never fires.
func NewFailureInjector(mtbf vclock.Time, seed int64, maxFailures int, pool []*machine.Node) *FailureInjector {
	distinct := make([]*machine.Node, 0, len(pool))
	seen := map[int]bool{}
	for _, n := range pool {
		if !seen[n.ID] {
			seen[n.ID] = true
			distinct = append(distinct, n)
		}
	}
	return &FailureInjector{
		mtbf: mtbf,
		rng:  rand.New(rand.NewSource(seed)),
		pool: distinct,
		max:  maxFailures,
	}
}

// Fired returns how many failures the injector has injected so far.
func (fi *FailureInjector) Fired() int { return fi.count }

// arm schedules this launch's failure event (if the injector still has
// failures to give): the system-MTBF exponential draw past start picks the
// instant, a uniform draw the victim node. Called by Launch before Run.
func (fi *FailureInjector) arm(l *launch, start vclock.Time) {
	if fi == nil || fi.mtbf <= 0 || len(fi.pool) == 0 || fi.count >= fi.max {
		return
	}
	system := fi.mtbf.Seconds() / float64(len(fi.pool))
	at := start + vclock.Time(fi.rng.ExpFloat64()*system)
	victim := fi.pool[fi.rng.Intn(len(fi.pool))]
	l.eng.CallAt(at, func() {
		fi.count++
		if fi.OnFailure != nil {
			fi.OnFailure(victim, at)
		}
		l.abort(&NodeFailure{Node: victim.Name(), NodeID: victim.ID, At: at})
	})
}

// abort tears the whole job tree down at the failure instant: every live
// task — ranks on the failed node and survivors alike — is failed with the
// NodeFailure, so the job drains through ordinary teardown instead of
// tripping the kernel's deadlock detector. Runs as a kernel callback
// (holding the baton), so touching launch state is safe. Task.Fail is a
// no-op on finished or already-failing tasks, so a second failure (or a
// revocation landing after an injected failure) cannot double-tear.
func (l *launch) abort(nf *NodeFailure) {
	for _, p := range l.all {
		p.task.Fail(nf.At, nf)
	}
}

// Revocation is a resource-manager-initiated allocation revocation: at At
// the listed nodes are pulled from under whatever job holds them — the
// batch system's drain path when a facility-level node failure (or an
// administrative drain) strikes a live allocation. If any revoked node
// hosts ranks of the job tree when the event fires, the whole job dies with
// a recoverable *NodeFailure (MPI semantics, exactly like an injected
// failure: recover it with FailureOf and restart from the best surviving
// checkpoint). Revoking nodes the job does not occupy is a no-op — the
// allocation may be wider than the job's current footprint.
type Revocation struct {
	// At is the virtual instant the nodes are revoked.
	At vclock.Time
	// Nodes are the revoked nodes (typically sched.Allocation.Nodes()).
	Nodes []*machine.Node
}

// armRevocations schedules the launch's revocation events into its kernel.
// Each fires as an ordinary CallAt callback (holding the baton); the first
// one that intersects the job tree's nodes tears it down, later ones land
// on dead tasks and do nothing.
func (l *launch) armRevocations(revs []Revocation) {
	for _, r := range revs {
		r := r
		l.eng.CallAt(r.At, func() {
			for _, node := range r.Nodes {
				for _, p := range l.all {
					if p.node.ID == node.ID {
						l.abort(&NodeFailure{Node: node.Name(), NodeID: node.ID, At: r.At})
						return
					}
				}
			}
		})
	}
}
