package psmpi

import (
	"sync/atomic"

	"clusterbooster/internal/machine"
)

// Conservative parallel execution (multi-kernel-worker launches).
//
// A launch may opt in to the engine's conservative synchronous-window
// parallel mode (engine.SetParallel) by setting LaunchSpec.KernelWorkers > 1.
// The runtime partitions the job's nodes into contiguous groups — every rank
// of a node lands in that node's group — and registers each rank's task with
// its group. The fabric's cross-node lookahead (wire latency plus the minimum
// send overhead, fabric.Network.CrossLookahead) bounds how soon any send can
// become visible on another node, which makes node groups safe to advance
// concurrently within that window.
//
// Cross-group interaction points in this package are routed through
// engine.Task.Defer so they replay at the round barrier in deterministic
// group order instead of racing between worker goroutines:
//
//   - message delivery into another group's mailbox (sendTagged),
//   - the sender-visible rendezvous completion (dmaEnd/dmaDone and the
//     parked sender's wakeup) when the matching receiver is in another
//     group (completeMatch, completeRecvUnexpected),
//   - arming a spawned child world's tasks (startJob).
//
// Everything else a rank touches — its clock, its mailbox, its node's
// injection/ejection links — is group-local by construction, so no locking
// is added to the hot paths. Shared free lists become per-group
// (launch.envFree, launch.f64Free) and the envelope refcount becomes atomic
// (a rendezvous envelope's two owners may release it from different groups
// in the same round).
//
// Restrictions: AnySource receives and Probe depend on the exact global
// interleaving of deliveries from different senders, which round-based
// delivery does not reproduce; they panic on a parallel kernel. Launches
// with tracing or failure injection fall back to serial with a recorded
// reason (engine.Stats.Fallback).

// defaultKernelWorkers is the process-wide default worker count applied by
// callers that consult DefaultKernelWorkers (the experiment drivers); 0 or 1
// means serial.
var defaultKernelWorkers atomic.Int32

// SetDefaultKernelWorkers sets the process-wide default kernel worker count
// used by launch sites that opt eligible jobs into parallel execution (the
// -kworkers flag of deepsim and cbctl). n <= 1 selects serial execution.
func SetDefaultKernelWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultKernelWorkers.Store(int32(n))
}

// DefaultKernelWorkers returns the process-wide default kernel worker count.
func DefaultKernelWorkers() int { return int(defaultKernelWorkers.Load()) }

// Fallback reasons recorded by the runtime (the engine records its own for
// "single group" and "zero lookahead").
const (
	// FallbackTracing: the event trace must interleave all ranks in one
	// global order, which only the serial kernel produces directly.
	FallbackTracing = "tracing"
	// FallbackFailures: failure injection tears down all ranks at once and
	// joins their errors in completion order; parallel teardown would make
	// that order (and the exact teardown interleaving) host-dependent.
	FallbackFailures = "failure injection"
	// FallbackRevocations: allocation revocations tear the tree down
	// exactly like injected failures, with the same ordering argument.
	FallbackRevocations = "allocation revocation"
)

// parState is the launch's group partition: node ID -> group index.
type parState struct {
	groups int
	gid    []int32 // indexed by machine.Node.ID; -1 = not yet assigned
	rr     int     // round-robin cursor for nodes first seen at spawn time
}

// assign returns the node's group, assigning lazily (round-robin) for nodes
// that enter the job tree through a spawn after the initial partition.
func (ps *parState) assign(node *machine.Node) int32 {
	if g := ps.gid[node.ID]; g >= 0 {
		return g
	}
	g := int32(ps.rr % ps.groups)
	ps.rr++
	ps.gid[node.ID] = g
	return g
}

// crossGroup reports whether src lives in a different group than p — the
// test that decides whether an effect must be deferred to the round barrier.
// Always false on a serial launch.
func (p *Proc) crossGroup(src *machine.Node) bool {
	return p.l.par != nil && p.l.par.gid[src.ID] != p.gid
}

// setupParallel decides whether the launch runs the parallel kernel and
// builds the node partition. Serial fallbacks record their reason in the
// kernel's stats; a spec that never requested workers stays silently serial.
func (rt *Runtime) setupParallel(l *launch, spec LaunchSpec) {
	kw := spec.KernelWorkers
	if kw <= 1 {
		return
	}
	if rt.trace != nil {
		l.eng.NoteSerialFallback(FallbackTracing)
		return
	}
	if spec.Failures != nil {
		l.eng.NoteSerialFallback(FallbackFailures)
		return
	}
	if len(spec.Revocations) > 0 {
		l.eng.NoteSerialFallback(FallbackRevocations)
		return
	}
	// Unique nodes in first-appearance (rank) order, chunked contiguously:
	// neighbouring ranks — the dominant traffic in the reproduced codes —
	// tend to share a group, keeping cross-group events rare.
	total := len(rt.sys.Nodes())
	seen := make([]bool, total)
	uniq := make([]*machine.Node, 0, len(spec.Nodes))
	for _, n := range spec.Nodes {
		if !seen[n.ID] {
			seen[n.ID] = true
			uniq = append(uniq, n)
		}
	}
	groups := kw
	if groups > len(uniq) {
		groups = len(uniq)
	}
	if !l.eng.SetParallel(groups, rt.net.CrossLookahead()) {
		return // the engine recorded the reason (single group, zero lookahead)
	}
	ps := &parState{groups: groups, gid: make([]int32, total)}
	for i := range ps.gid {
		ps.gid[i] = -1
	}
	for i, n := range uniq {
		ps.gid[n.ID] = int32(i * groups / len(uniq))
	}
	l.par = ps
}
