package psmpi

import (
	"encoding/json"
	"testing"

	"clusterbooster/internal/machine"
)

func TestTracingRecordsSpans(t *testing.T) {
	rt := testRuntime(2, 0)
	rt.EnableTracing()
	runJob(t, rt, 2, func(p *Proc) error {
		p.Compute(machine.Work{Class: machine.KernelParticle, Flops: 3e7})
		if p.Rank() == 0 {
			p.SendF64(p.World(), 1, 1, make([]float64, 64))
		} else {
			buf := make([]float64, 64)
			p.RecvF64(p.World(), 0, 1, buf)
		}
		return nil
	})
	events := rt.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events recorded")
	}
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Name] = true
		if e.End <= e.Start {
			t.Errorf("empty span %+v", e)
		}
	}
	if !kinds["compute/particle"] {
		t.Errorf("no compute span: %v", kinds)
	}
	if !kinds["recv"] {
		t.Errorf("no recv span: %v", kinds)
	}
	// Events are sorted by start.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("events not sorted")
		}
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	rt := testRuntime(1, 0)
	runJob(t, rt, 1, func(p *Proc) error {
		p.Compute(machine.Work{Class: machine.KernelSerial, Flops: 1e6})
		return nil
	})
	if got := rt.TraceEvents(); got != nil {
		t.Fatalf("tracing recorded %d events while disabled", len(got))
	}
}

func TestChromeTraceExport(t *testing.T) {
	rt := testRuntime(2, 0)
	rt.EnableTracing()
	runJob(t, rt, 2, func(p *Proc) error {
		p.Compute(machine.Work{Class: machine.KernelFieldSolver, Flops: 3e6})
		p.Barrier(p.World())
		return nil
	})
	raw, err := rt.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  string  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur <= 0 || e.Pid == "" {
			t.Errorf("malformed event %+v", e)
		}
	}
}
