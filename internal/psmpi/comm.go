package psmpi

// Comm is a communicator: an isolated message-matching context over a group
// of processes. An intra-communicator has only a local group; an
// inter-communicator (produced by Spawn) additionally has a remote group, and
// point-to-point ranks address the remote group, as in MPI.
type Comm struct {
	rt     *Runtime
	id     uint64
	local  []*Proc // the local group, indexed by rank
	remote []*Proc // remote group for inter-communicators, else nil

	// collSeq counts collective invocations per local rank (each rank only
	// touches its own slot). All ranks call the same collectives in the same
	// order, so the counters agree and tag blocks match without any
	// cross-rank coordination.
	collSeq []uint64
}

// Size returns the number of processes in the local group.
func (c *Comm) Size() int { return len(c.local) }

// RemoteSize returns the number of processes in the remote group (0 for
// intra-communicators).
func (c *Comm) RemoteSize() int { return len(c.remote) }

// IsInter reports whether c is an inter-communicator.
func (c *Comm) IsInter() bool { return c.remote != nil }

// target resolves the destination proc for a p2p operation: rank addresses
// the remote group on an inter-communicator, the local group otherwise.
func (c *Comm) target(rank int) *Proc {
	grp := c.local
	if c.IsInter() {
		grp = c.remote
	}
	if rank < 0 || rank >= len(grp) {
		panic("psmpi: destination rank out of range")
	}
	return grp[rank]
}
