package psmpi

import (
	"math"
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// collJob runs main over n cluster nodes.
func collJob(t *testing.T, n int, main MainFunc) Result {
	t.Helper()
	rt := testRuntime(n, 0)
	return runJob(t, rt, n, main)
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	// After a barrier, every clock must be >= the straggler's pre-barrier
	// time.
	const straggle = 5 * vclock.Millisecond
	res := collJob(t, 5, func(p *Proc) error {
		if p.Rank() == 3 {
			p.Elapse(straggle)
		}
		p.Barrier(p.World())
		if p.Now() < straggle {
			t.Errorf("rank %d at %v after barrier, before straggler's %v", p.Rank(), p.Now(), straggle)
		}
		return nil
	})
	_ = res
}

func TestBarrierCostLogP(t *testing.T) {
	// An 8-rank barrier needs 3 dissemination rounds; cost should be a few
	// network latencies, not tens.
	res := collJob(t, 8, func(p *Proc) error {
		p.Barrier(p.World())
		return nil
	})
	us := res.Makespan.Micros()
	if us < 2 || us > 20 {
		t.Errorf("8-rank barrier took %vµs, want a few µs", us)
	}
}

func TestBcastValues(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		collJob(t, n, func(p *Proc) error {
			buf := make([]float64, 4)
			if p.rankIn(p.World()) == 0 {
				for i := range buf {
					buf[i] = float64(i + 1)
				}
			}
			p.BcastF64(p.World(), 0, buf)
			for i := range buf {
				if buf[i] != float64(i+1) {
					t.Errorf("n=%d rank %d: bcast buf = %v", n, p.Rank(), buf)
					return nil
				}
			}
			return nil
		})
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	collJob(t, 5, func(p *Proc) error {
		buf := []float64{0}
		if p.Rank() == 3 {
			buf[0] = 99
		}
		p.BcastF64(p.World(), 3, buf)
		if buf[0] != 99 {
			t.Errorf("rank %d: got %v from root 3", p.Rank(), buf[0])
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		collJob(t, n, func(p *Proc) error {
			buf := []float64{float64(p.Rank() + 1), 1}
			p.ReduceF64(p.World(), 0, buf, OpSum)
			if p.Rank() == 0 {
				want := float64(n*(n+1)) / 2
				if buf[0] != want || buf[1] != float64(n) {
					t.Errorf("n=%d: reduce got %v, want [%v %v]", n, buf, want, n)
				}
			}
			return nil
		})
	}
}

func TestReduceMaxMin(t *testing.T) {
	collJob(t, 6, func(p *Proc) error {
		buf := []float64{float64(p.Rank())}
		p.ReduceF64(p.World(), 0, buf, OpMax)
		if p.Rank() == 0 && buf[0] != 5 {
			t.Errorf("max = %v, want 5", buf[0])
		}
		buf2 := []float64{float64(p.Rank())}
		p.ReduceF64(p.World(), 0, buf2, OpMin)
		if p.Rank() == 0 && buf2[0] != 0 {
			t.Errorf("min = %v, want 0", buf2[0])
		}
		return nil
	})
}

func TestAllreduceEveryRankGetsResult(t *testing.T) {
	for _, n := range []int{2, 3, 8} {
		collJob(t, n, func(p *Proc) error {
			v := p.AllreduceScalar(p.World(), float64(p.Rank()+1), OpSum)
			want := float64(n*(n+1)) / 2
			if v != want {
				t.Errorf("n=%d rank %d: allreduce = %v, want %v", n, p.Rank(), v, want)
			}
			return nil
		})
	}
}

func TestGatherOrder(t *testing.T) {
	const n = 6
	collJob(t, n, func(p *Proc) error {
		out := p.GatherF64(p.World(), 2, []float64{float64(p.Rank()) * 10, float64(p.Rank())})
		if p.Rank() != 2 {
			if out != nil {
				t.Errorf("non-root got %v", out)
			}
			return nil
		}
		for r := 0; r < n; r++ {
			if out[2*r] != float64(r)*10 || out[2*r+1] != float64(r) {
				t.Errorf("gather chunk %d = %v", r, out[2*r:2*r+2])
			}
		}
		return nil
	})
}

func TestScatterChunks(t *testing.T) {
	const n = 4
	collJob(t, n, func(p *Proc) error {
		var data []float64
		if p.Rank() == 0 {
			for i := 0; i < 2*n; i++ {
				data = append(data, float64(i))
			}
		}
		buf := make([]float64, 2)
		p.ScatterF64(p.World(), 0, data, buf)
		if buf[0] != float64(2*p.Rank()) || buf[1] != float64(2*p.Rank()+1) {
			t.Errorf("rank %d scatter got %v", p.Rank(), buf)
		}
		return nil
	})
}

func TestAllgatherRing(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		collJob(t, n, func(p *Proc) error {
			out := p.AllgatherF64(p.World(), []float64{float64(p.Rank() * p.Rank())})
			for r := 0; r < n; r++ {
				if out[r] != float64(r*r) {
					t.Errorf("n=%d rank %d: allgather = %v", n, p.Rank(), out)
					return nil
				}
			}
			return nil
		})
	}
}

func TestAlltoallTransposes(t *testing.T) {
	const n = 4
	collJob(t, n, func(p *Proc) error {
		// data[j] = 10*me + j: after alltoall, out[j] must be 10*j + me.
		data := make([]float64, n)
		for j := range data {
			data[j] = float64(10*p.Rank() + j)
		}
		out := p.AlltoallF64(p.World(), data, 1)
		for j := range out {
			if out[j] != float64(10*j+p.Rank()) {
				t.Errorf("rank %d alltoall = %v", p.Rank(), out)
				return nil
			}
		}
		return nil
	})
}

func TestAllreduceCostGrowsWithRanks(t *testing.T) {
	cost := func(n int) vclock.Time {
		rt := testRuntime(n, 0)
		res := runJob(t, rt, n, func(p *Proc) error {
			p.AllreduceScalar(p.World(), 1, OpSum)
			return nil
		})
		return res.Makespan
	}
	c2, c8 := cost(2), cost(8)
	if c8 <= c2 {
		t.Errorf("allreduce cost: 8 ranks %v <= 2 ranks %v", c8, c2)
	}
	// Tree algorithms: 8 ranks should cost no more than ~6× the 2-rank case
	// (log factor, not linear).
	if c8 > 8*c2 {
		t.Errorf("allreduce cost scaling looks linear: %v vs %v", c2, c8)
	}
}

func TestCollectivesOnBooster(t *testing.T) {
	// Collectives work on Booster nodes and cost more (1.8µs latency).
	rtC := testRuntime(4, 4)
	cNodes := rtC.System().Module(machine.Cluster)
	bNodes := rtC.System().Module(machine.Booster)
	resC, err := rtC.Launch(LaunchSpec{Nodes: cNodes, Main: func(p *Proc) error {
		p.Barrier(p.World())
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	rtB := testRuntime(4, 4)
	bNodes = rtB.System().Module(machine.Booster)
	resB, err := rtB.Launch(LaunchSpec{Nodes: bNodes, Main: func(p *Proc) error {
		p.Barrier(p.World())
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Makespan <= resC.Makespan {
		t.Errorf("booster barrier %v not slower than cluster %v", resB.Makespan, resC.Makespan)
	}
}

func TestMixedCollectiveSequence(t *testing.T) {
	// A realistic sequence of different collectives must not cross-match.
	collJob(t, 4, func(p *Proc) error {
		w := p.World()
		v := p.AllreduceScalar(w, 1, OpSum)
		if v != 4 {
			t.Errorf("allreduce = %v", v)
		}
		buf := []float64{float64(p.Rank())}
		p.BcastF64(w, 1, buf)
		if buf[0] != 1 {
			t.Errorf("bcast = %v", buf[0])
		}
		p.Barrier(w)
		out := p.AllgatherF64(w, []float64{v + buf[0]})
		for _, x := range out {
			if x != 5 {
				t.Errorf("allgather = %v", out)
				break
			}
		}
		return nil
	})
}

func TestAllreduceLargeVector(t *testing.T) {
	// Vector reductions above the eager threshold exercise rendezvous inside
	// collectives.
	const n = 4
	const k = 8192 // 64 KiB payload
	collJob(t, n, func(p *Proc) error {
		buf := make([]float64, k)
		for i := range buf {
			buf[i] = 1
		}
		p.AllreduceF64(p.World(), buf, OpSum)
		if buf[0] != n || buf[k-1] != n {
			t.Errorf("large allreduce got %v..%v", buf[0], buf[k-1])
		}
		return nil
	})
}

func TestReduceSumMatchesSerial(t *testing.T) {
	// Property-style check: tree reduction must equal serial summation for
	// arbitrary data (floating-point associativity differences are bounded).
	const n = 8
	vals := make([][]float64, n)
	for r := range vals {
		vals[r] = []float64{math.Sqrt(float64(r) + 0.5), float64(r) * 1e-3}
	}
	var want0, want1 float64
	for _, v := range vals {
		want0 += v[0]
		want1 += v[1]
	}
	collJob(t, n, func(p *Proc) error {
		buf := append([]float64(nil), vals[p.Rank()]...)
		p.ReduceF64(p.World(), 0, buf, OpSum)
		if p.Rank() == 0 {
			if math.Abs(buf[0]-want0) > 1e-9 || math.Abs(buf[1]-want1) > 1e-9 {
				t.Errorf("tree sum %v, serial [%v %v]", buf, want0, want1)
			}
		}
		return nil
	})
}
