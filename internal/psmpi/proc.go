package psmpi

import (
	"clusterbooster/internal/engine"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Stats accumulates per-rank accounting, used by the experiments to report
// communication overhead (the paper quotes 3–4 % per solver for xPic).
type Stats struct {
	ComputeTime vclock.Time // time spent in Compute
	CommTime    vclock.Time // time spent inside communication calls
	OtherTime   vclock.Time // explicit Elapse (I/O waits, etc.)
	BytesSent   int64
	BytesRecv   int64
	Sends       int64
	Recvs       int64
	Collectives int64
	Spawns      int64
}

// CommFraction returns the share of this rank's busy time spent
// communicating.
func (s Stats) CommFraction() float64 {
	total := s.ComputeTime + s.CommTime + s.OtherTime
	if total == 0 {
		return 0
	}
	return s.CommTime.Seconds() / total.Seconds()
}

// Proc is one MPI process (rank). All methods must be called from the rank's
// own goroutine — exactly like an MPI rank, a Proc is single-threaded. The
// goroutine runs under the job's execution kernel (internal/engine), which
// schedules exactly one rank at a time in virtual-time order.
type Proc struct {
	rt     *Runtime
	l      *launch
	node   *machine.Node
	clock  *vclock.Clock
	task   *engine.Task
	mbox   *mailbox
	rank   int   // rank in its world communicator
	gid    int32 // kernel group on a parallel launch (0 on serial)
	world  *Comm
	parent *Comm // intercommunicator to the spawning job, nil at top level
	args   any

	commRank map[uint64]int // this proc's rank per communicator id
	sendSeq  uint64
	// recvScratch is the reusable posting record of blocking receives (at
	// most one is pending per rank — a rank is single-threaded).
	recvScratch postedRecv
	// prFree recycles Irecv posting records (returned by Wait).
	prFree []*postedRecv
	// eagerDone is the shared born-done request every eager Isend returns
	// (a completed send request carries no state).
	eagerDone Request
	// scalarBuf is AllreduceScalar's reusable one-element working buffer.
	scalarBuf []float64

	// Stats is public for post-run inspection; during the run only the
	// owning goroutine touches it.
	Stats Stats
}

// newProc builds a rank's state. Its kernel task is created later, by
// startJob's arming step (task registration must not run mid-round on a
// parallel kernel).
func newProc(rt *Runtime, l *launch, node *machine.Node, rank int, args any) *Proc {
	p := &Proc{
		rt:       rt,
		l:        l,
		node:     node,
		clock:    vclock.NewClock(0),
		mbox:     newMailbox(),
		rank:     rank,
		args:     args,
		commRank: map[uint64]int{},
	}
	if l.par != nil {
		p.gid = l.par.assign(node)
	}
	p.eagerDone = Request{p: p, isSend: true, done: true}
	return p
}

// Rank returns this process's rank in its world communicator.
func (p *Proc) Rank() int { return p.rank }

// World returns the world communicator of this process's job.
func (p *Proc) World() *Comm { return p.world }

// Parent returns the intercommunicator to the spawning job, or nil if this
// process was not spawned (MPI_Comm_get_parent).
func (p *Proc) Parent() *Comm { return p.parent }

// Node returns the node this rank runs on.
func (p *Proc) Node() *machine.Node { return p.node }

// Module returns the module (Cluster or Booster) this rank runs on.
func (p *Proc) Module() machine.Module { return p.node.Module }

// Args returns the opaque argument block passed at launch or spawn.
func (p *Proc) Args() any { return p.args }

// Runtime returns the owning runtime.
func (p *Proc) Runtime() *Runtime { return p.rt }

// Now returns this rank's current virtual time (MPI_Wtime).
func (p *Proc) Now() vclock.Time { return p.clock.Now() }

// Compute advances this rank's clock by the cost of the given work on its
// node, and accounts it as compute time.
func (p *Proc) Compute(w machine.Work) {
	start := p.clock.Now()
	d := p.node.Spec.ComputeTime(w)
	p.clock.Advance(d)
	p.Stats.ComputeTime += d
	if p.rt.trace != nil {
		p.record(traceComputeName(w.Class), start)
	}
}

// Elapse advances the clock by an externally computed duration (device I/O,
// file-system time) and accounts it as other time. The wait is a scheduled
// kernel event: the rank parks until the completion instant fires, so device
// latencies take their place in the global event order. (When the completion
// is the earliest pending event the kernel returns immediately — a device
// wait with nothing concurrent costs two queue operations.)
func (p *Proc) Elapse(d vclock.Time) {
	p.clock.Advance(d)
	p.Stats.OtherTime += d
	p.task.SleepUntil(p.clock.Now())
}

// CallAt schedules fn to run as a kernel event at virtual time at, holding
// the baton: no rank executes while the callback runs, so fn may touch any
// model state. Storage models use this to fire completion-side bookkeeping
// (e.g. a cache domain marking a flush durable) at the instant it happens
// in virtual time rather than the instant it was issued. A callback still
// pending when the job's last rank exits never runs.
func (p *Proc) CallAt(at vclock.Time, fn func()) {
	p.l.eng.CallAt(at, fn)
}

// elapseComm advances the clock to t (if later) and accounts the delta as
// communication time.
func (p *Proc) elapseComm(t vclock.Time) {
	if t > p.clock.Now() {
		p.Stats.CommTime += t - p.clock.Now()
		p.clock.AdvanceTo(t)
	}
}

// addComm advances the clock by d and accounts it as communication time.
func (p *Proc) addComm(d vclock.Time) {
	p.clock.Advance(d)
	p.Stats.CommTime += d
}

// rankIn returns this proc's rank in the given communicator, panicking if the
// proc is not a member — the same error class as using a communicator one is
// not part of in MPI.
func (p *Proc) rankIn(c *Comm) int {
	if c == p.world {
		return p.rank // hot path: most traffic runs on the world communicator
	}
	r, ok := p.commRank[c.id]
	if !ok {
		panic("psmpi: proc is not a member of this communicator")
	}
	return r
}
