package psmpi

import (
	"math/rand"
	"testing"

	"clusterbooster/internal/engine"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// launchWorkers launches main over the given nodes with the requested kernel
// worker count and returns the result.
func launchWorkers(t *testing.T, rt *Runtime, nodes []*machine.Node, workers int, main MainFunc) Result {
	t.Helper()
	res, err := rt.Launch(LaunchSpec{Nodes: nodes, Main: main, KernelWorkers: workers})
	if err != nil {
		t.Fatalf("job (kworkers=%d) failed: %v", workers, err)
	}
	return res
}

// sameOutcome fails the test unless two results agree exactly: makespan and
// every rank's final clock and accounting must be bit-identical. Engine
// counters are intentionally excluded — the parallel kernel parks and
// switches differently by design.
func sameOutcome(t *testing.T, label string, serial, par Result) {
	t.Helper()
	if serial.Makespan != par.Makespan {
		t.Errorf("%s: makespan %v (serial) != %v (parallel)", label, serial.Makespan, par.Makespan)
	}
	if len(serial.Ranks) != len(par.Ranks) {
		t.Fatalf("%s: rank count %d != %d", label, len(serial.Ranks), len(par.Ranks))
	}
	for i := range serial.Ranks {
		if serial.Ranks[i] != par.Ranks[i] {
			t.Errorf("%s: rank %d state differs:\n serial   %+v\n parallel %+v",
				label, i, serial.Ranks[i], par.Ranks[i])
		}
	}
}

// exchangeMain is a representative communication mix: skewed compute, eager
// neighbour halos, large rendezvous transfers, blocking ring traffic and
// collectives, over several rounds.
func exchangeMain(rounds int) MainFunc {
	return func(p *Proc) error {
		w := p.World()
		me, n := p.Rank(), w.Size()
		small := make([]float64, 32)    // eager
		big := make([]float64, 64*1024) // rendezvous
		for i := range small {
			small[i] = float64(me*100 + i)
		}
		for r := 0; r < rounds; r++ {
			// Skewed compute keeps the ranks' clocks apart so windows cut
			// through the middle of exchanges.
			p.Elapse(vclock.Time(1+((me*7+r*3)%5)) * vclock.Microsecond)

			right, left := (me+1)%n, (me-1+n)%n
			sreq := p.IsendF64Shared(w, right, 10+r, small)
			rreq := p.Irecv(w, left, 10+r)
			p.Wait(rreq)
			p.Wait(sreq)

			if r%2 == 0 {
				// Rendezvous pairs: even ranks send to the next odd rank.
				if me%2 == 0 && me+1 < n {
					p.SendF64(w, me+1, 200+r, big)
				} else if me%2 == 1 {
					buf := make([]float64, len(big))
					p.RecvF64(w, me-1, 200+r, buf)
				}
			}
			p.AllreduceScalar(w, float64(me+r), OpSum)
		}
		p.Barrier(w)
		return nil
	}
}

func TestParallelWorkerInvariance(t *testing.T) {
	const n = 8
	main := exchangeMain(6)
	serial := launchWorkers(t, testRuntime(n, 0), testRuntime(n, 0).System().Module(machine.Cluster)[:n], 1, main)
	if serial.Engine.Groups != 0 {
		t.Fatalf("serial run reports %d groups", serial.Engine.Groups)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		rt := testRuntime(n, 0)
		nodes := rt.System().Module(machine.Cluster)[:n]
		res := launchWorkers(t, rt, nodes, workers, main)
		want := workers
		if want > n {
			want = n
		}
		if res.Engine.Groups != want {
			t.Fatalf("kworkers=%d: engaged %d groups (fallback %q), want %d",
				workers, res.Engine.Groups, res.Engine.Fallback, want)
		}
		if res.Engine.Rounds == 0 {
			t.Errorf("kworkers=%d: no rounds recorded", workers)
		}
		sameOutcome(t, "kworkers="+string(rune('0'+workers)), serial, res)
	}
}

func TestParallelMultiRankPerNode(t *testing.T) {
	// Two ranks per node: co-located ranks must land in the same group, and
	// the shared injection/ejection links stay group-local.
	rt := testRuntime(4, 0)
	cluster := rt.System().Module(machine.Cluster)
	nodes := []*machine.Node{cluster[0], cluster[0], cluster[1], cluster[1], cluster[2], cluster[2]}
	main := exchangeMain(4)
	serial := launchWorkers(t, testRuntime(4, 0), nodes, 1, main)
	par := launchWorkers(t, rt, nodes, 3, main)
	if par.Engine.Groups != 3 {
		t.Fatalf("engaged %d groups (fallback %q), want 3", par.Engine.Groups, par.Engine.Fallback)
	}
	sameOutcome(t, "multi-rank", serial, par)
}

func TestParallelSpawn(t *testing.T) {
	// MPI_Comm_spawn mid-run: the children's task arming crosses the round
	// barrier on a parallel kernel. The parents exchange with the children
	// over the inter-communicator afterwards.
	main := func(p *Proc) error {
		w := p.World()
		p.Elapse(vclock.Time(1+p.Rank()) * vclock.Microsecond)
		inter, err := p.Spawn(w, SpawnSpec{Binary: "child", Procs: 2, Module: machine.Booster})
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			p.SendF64(inter, 0, 1, []float64{42})
		}
		p.Barrier(w)
		return nil
	}
	child := func(p *Proc) error {
		if p.Rank() == 0 {
			buf := make([]float64, 1)
			p.RecvF64(p.Parent(), 0, 1, buf)
			if buf[0] != 42 {
				t.Errorf("child got %v", buf[0])
			}
		}
		p.Barrier(p.World())
		return nil
	}
	run := func(workers int) Result {
		rt := testRuntime(4, 4)
		rt.Register("child", child)
		return launchWorkers(t, rt, rt.System().Module(machine.Cluster)[:4], workers, main)
	}
	serial := run(1)
	par := run(4)
	if par.Engine.Groups != 4 {
		t.Fatalf("engaged %d groups (fallback %q), want 4", par.Engine.Groups, par.Engine.Fallback)
	}
	sameOutcome(t, "spawn", serial, par)
}

func TestParallelFallbackReasons(t *testing.T) {
	// Single node: nothing to partition.
	rt := testRuntime(2, 0)
	res := launchWorkers(t, rt, rt.System().Module(machine.Cluster)[:1], 4, func(p *Proc) error {
		p.Elapse(vclock.Microsecond)
		return nil
	})
	if res.Engine.Groups != 0 || res.Engine.Fallback != engine.FallbackSingleGroup {
		t.Errorf("single node: groups=%d fallback=%q, want serial with %q",
			res.Engine.Groups, res.Engine.Fallback, engine.FallbackSingleGroup)
	}

	// Failure injection forces serial teardown semantics.
	rt = testRuntime(4, 0)
	inj := NewFailureInjector(1e6*vclock.Second, 1, 1, rt.System().Module(machine.Cluster)[:4])
	res, _ = rt.Launch(LaunchSpec{
		Nodes:         rt.System().Module(machine.Cluster)[:4],
		Main:          func(p *Proc) error { return nil },
		Failures:      inj,
		KernelWorkers: 4,
	})
	if res.Engine.Fallback != FallbackFailures {
		t.Errorf("failure injection: fallback=%q, want %q", res.Engine.Fallback, FallbackFailures)
	}

	// Tracing pins the kernel to the serial global order.
	rt = testRuntime(4, 0)
	rt.EnableTracing()
	res = launchWorkers(t, rt, rt.System().Module(machine.Cluster)[:4], 4, func(p *Proc) error {
		p.Elapse(vclock.Microsecond)
		return nil
	})
	if res.Engine.Fallback != FallbackTracing {
		t.Errorf("tracing: fallback=%q, want %q", res.Engine.Fallback, FallbackTracing)
	}

	// Not requesting workers records nothing.
	rt = testRuntime(2, 0)
	res = launchWorkers(t, rt, rt.System().Module(machine.Cluster)[:2], 0, func(p *Proc) error { return nil })
	if res.Engine.Groups != 0 || res.Engine.Fallback != "" {
		t.Errorf("serial request: groups=%d fallback=%q, want silent serial", res.Engine.Groups, res.Engine.Fallback)
	}
}

func TestParallelAnySourcePanics(t *testing.T) {
	rt := testRuntime(2, 0)
	res, err := rt.Launch(LaunchSpec{
		Nodes: rt.System().Module(machine.Cluster)[:2],
		Main: func(p *Proc) error {
			if p.Rank() == 0 {
				p.SendF64(p.World(), 1, 1, []float64{1})
				return nil
			}
			buf := make([]float64, 1)
			p.RecvF64(p.World(), AnySource, 1, buf)
			return nil
		},
		KernelWorkers: 2,
	})
	if err == nil {
		t.Fatalf("AnySource on a parallel kernel did not fail: %+v", res)
	}
}

// randomGraphMain builds a deterministic random message program from seed:
// every round each rank elapses a random skew, fires the round's random edge
// set (nonblocking sends first, then receives in edge order), and every few
// rounds the whole job couples through an allreduce.
func randomGraphMain(seed uint64, n, rounds int) MainFunc {
	type edge struct {
		src, dst, elems int
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	skews := make([][]int, rounds)
	edges := make([][]edge, rounds)
	for r := range edges {
		skews[r] = make([]int, n)
		for i := range skews[r] {
			skews[r][i] = rng.Intn(8)
		}
		ne := 1 + rng.Intn(3*n)
		for e := 0; e < ne; e++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			if src == dst {
				continue
			}
			elems := 1 << rng.Intn(14) // 8 B .. 64 KiB: eager and rendezvous
			edges[r] = append(edges[r], edge{src, dst, elems})
		}
	}
	return func(p *Proc) error {
		w := p.World()
		me := p.Rank()
		var reqs []*Request
		for r := 0; r < rounds; r++ {
			p.Elapse(vclock.Time(skews[r][me]) * vclock.Microsecond)
			reqs = reqs[:0]
			for i, e := range edges[r] {
				if e.src != me {
					continue
				}
				buf := make([]float64, e.elems)
				for j := range buf {
					buf[j] = float64(r*1000 + i)
				}
				reqs = append(reqs, p.IsendF64Shared(w, e.dst, 1000+i, buf))
			}
			for i, e := range edges[r] {
				if e.dst != me {
					continue
				}
				got, _ := p.RecvF64Shared(w, e.src, 1000+i)
				if len(got) != e.elems || got[0] != float64(r*1000+i) {
					return nil // corruption shows up as a result mismatch
				}
			}
			p.Waitall(reqs...)
			if r%3 == 2 {
				p.AllreduceScalar(w, float64(me), OpMax)
			}
		}
		p.Barrier(w)
		return nil
	}
}

// FuzzSerialParallelEquivalence is the differential fuzzer of the
// conservative parallel kernel: any random message graph must produce a
// bit-identical outcome for any worker count.
func FuzzSerialParallelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(2))
	f.Add(uint64(7), uint8(3))
	f.Add(uint64(20180521), uint8(4))
	f.Add(uint64(0xdeadbeef), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, workers uint8) {
		n := 2 + int(seed%7)
		rounds := 2 + int((seed>>8)%5)
		kw := 2 + int(workers)%7
		main := randomGraphMain(seed, n, rounds)

		serial := launchWorkers(t, testRuntime(n, 0), testRuntime(n, 0).System().Module(machine.Cluster)[:n], 1, main)
		rt := testRuntime(n, 0)
		par := launchWorkers(t, rt, rt.System().Module(machine.Cluster)[:n], kw, main)
		if par.Engine.Groups == 0 {
			t.Fatalf("parallel run fell back: %q", par.Engine.Fallback)
		}
		sameOutcome(t, "fuzz", serial, par)
	})
}
