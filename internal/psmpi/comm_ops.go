package psmpi

import (
	"fmt"
	"sort"
)

// Communicator management and convenience point-to-point operations beyond
// the core set: Split, Dup, Sendrecv, Probe — the parts of MPI the DEEP
// applications and tools layer on top of the global communicator.

// splitKey is the (color, key) pair gathered from every rank during Split.
type splitKey struct {
	color, key, rank int
}

// Split partitions the communicator by color, ordering ranks by key (ties by
// old rank), exactly like MPI_Comm_split. Every rank receives the
// sub-communicator of its color; color < 0 (like MPI_UNDEFINED) yields nil.
// Collective over c.
func (p *Proc) Split(c *Comm, color, key int) *Comm {
	if c.IsInter() {
		panic("psmpi: Split of an inter-communicator is not supported")
	}
	p.Stats.Collectives++
	me := p.rankIn(c)
	n := c.Size()

	// Gather all (color, key) pairs via the existing allgather.
	flat := p.AllgatherF64(c, []float64{float64(color), float64(key)})
	keys := make([]splitKey, n)
	for r := 0; r < n; r++ {
		keys[r] = splitKey{color: int(flat[2*r]), key: int(flat[2*r+1]), rank: r}
	}

	if color < 0 {
		return nil
	}
	// Deterministic membership: all ranks compute the same grouping; rank 0
	// of each group constructs the communicator object, and the others
	// attach to it through a shared registry keyed by (comm id, collective
	// sequence, color). Since every member computes identical state, the
	// first to arrive creates it.
	var members []splitKey
	for _, k := range keys {
		if k.color == color {
			members = append(members, k)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].rank < members[j].rank
	})

	newComm := p.rt.splitComm(c, c.collSeq[me], color, members)
	for newRank, m := range members {
		if m.rank == me {
			p.commRank[newComm.id] = newRank
		}
	}
	return newComm
}

// splitComm returns the sub-communicator for one (parent, seq, color) group,
// creating it on first request. All members compute identical membership, so
// whichever rank arrives first builds the authoritative object.
func (rt *Runtime) splitComm(parent *Comm, seq uint64, color int, members []splitKey) *Comm {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.splitCache == nil {
		rt.splitCache = map[string]*Comm{}
	}
	cacheKey := fmt.Sprintf("%d/%d/%d", parent.id, seq, color)
	if c, ok := rt.splitCache[cacheKey]; ok {
		return c
	}
	rt.commID++
	c := &Comm{rt: rt, id: rt.commID}
	for _, m := range members {
		c.local = append(c.local, parent.local[m.rank])
	}
	c.collSeq = make([]uint64, len(c.local))
	rt.splitCache[cacheKey] = c
	return c
}

// Dup duplicates the communicator: same group, fresh matching context
// (MPI_Comm_dup). Collective over c.
func (p *Proc) Dup(c *Comm) *Comm {
	if c.IsInter() {
		panic("psmpi: Dup of an inter-communicator is not supported")
	}
	return p.Split(c, 0, p.rankIn(c))
}

// Sendrecv performs a combined send and receive (MPI_Sendrecv), safe against
// the cyclic-exchange deadlock.
func (p *Proc) Sendrecv(c *Comm, dst, sendTag int, data any, bytes int, src, recvTag int) (any, Status) {
	req := p.Isend(c, dst, sendTag, data, bytes)
	got, st := p.Recv(c, src, recvTag)
	p.Wait(req)
	return got, st
}

// Probe blocks until a matching message is available and returns its status
// without receiving it (MPI_Probe). The message stays queued. While no match
// is queued the rank parks in the kernel; every newly delivered unexpected
// message re-runs the scan.
func (p *Proc) Probe(c *Comm, src, tag int) Status {
	if p.l.par != nil {
		// A probe loop observes the unexpected queue at arbitrary instants;
		// round-based cross-group delivery cannot reproduce the serial
		// interleaving it would see (and a re-scan wakeup at the rank's
		// current time may lie inside an already-processed window).
		panic("psmpi: Probe on a parallel kernel (run with 1 kernel worker)")
	}
	mb := p.mbox
	probe := postedRecv{commID: c.id, src: src, tag: tag}
	for {
		for _, e := range mb.unexpected {
			if probe.matches(e) {
				return Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
			}
		}
		mb.probers = append(mb.probers, p)
		p.task.Park()
	}
}

// Iprobe checks for a matching message without blocking (MPI_Iprobe).
func (p *Proc) Iprobe(c *Comm, src, tag int) (Status, bool) {
	probe := postedRecv{commID: c.id, src: src, tag: tag}
	for _, e := range p.mbox.unexpected {
		if probe.matches(e) {
			return Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}, true
		}
	}
	return Status{}, false
}
