package psmpi

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"clusterbooster/internal/vclock"
)

// Tracing support — the role of the DEEP performance-analysis tooling in the
// software stack (§I of the paper lists "performance analysis tools" among
// the DEEP developments). When enabled on the runtime, every rank records
// its compute and communication spans in virtual time; ChromeTrace exports
// them in the Chrome trace-event JSON format (load in a trace viewer:
// processes are nodes, threads are ranks).

// TraceEvent is one recorded span of a rank's activity.
type TraceEvent struct {
	Rank  int
	Node  string
	Name  string // e.g. "compute/particle", "send", "recv", "collective"
	Start vclock.Time
	End   vclock.Time
}

// traceSink collects events from all ranks of a runtime.
type traceSink struct {
	mu     sync.Mutex
	events []TraceEvent
}

// EnableTracing switches span recording on for all subsequently launched
// jobs of this runtime.
func (rt *Runtime) EnableTracing() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.trace == nil {
		rt.trace = &traceSink{}
	}
}

// TraceEvents returns a copy of the recorded events, ordered by start time.
func (rt *Runtime) TraceEvents() []TraceEvent {
	rt.mu.Lock()
	sink := rt.trace
	rt.mu.Unlock()
	if sink == nil {
		return nil
	}
	sink.mu.Lock()
	out := append([]TraceEvent(nil), sink.events...)
	sink.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// record appends one span if tracing is enabled.
func (p *Proc) record(name string, start vclock.Time) {
	sink := p.rt.trace
	if sink == nil {
		return
	}
	end := p.clock.Now()
	if end <= start {
		return
	}
	sink.mu.Lock()
	sink.events = append(sink.events, TraceEvent{
		Rank: p.rank, Node: p.node.Name(), Name: name, Start: start, End: end,
	})
	sink.mu.Unlock()
}

// chromeEvent is the Chrome trace-event wire format ("X" complete events).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // µs
	Dur  float64 `json:"dur"` // µs
	Pid  string  `json:"pid"`
	Tid  int     `json:"tid"`
}

// ChromeTrace renders the recorded events as Chrome trace JSON.
func (rt *Runtime) ChromeTrace() ([]byte, error) {
	events := rt.TraceEvents()
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		cat := "comm"
		if len(e.Name) >= 7 && e.Name[:7] == "compute" {
			cat = "compute"
		}
		out = append(out, chromeEvent{
			Name: e.Name, Cat: cat, Ph: "X",
			Ts:  e.Start.Micros(),
			Dur: (e.End - e.Start).Micros(),
			Pid: e.Node, Tid: e.Rank,
		})
	}
	return json.MarshalIndent(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{out}, "", " ")
}

// traceName builds a compute span name from a kernel class.
func traceComputeName(class fmt.Stringer) string { return "compute/" + class.String() }
