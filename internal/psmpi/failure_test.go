package psmpi

import (
	"strings"
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// failureFixture launches a long-running ring job (each rank forwards a token
// forever-ish) under an armed injector and returns the result.
func failureFixture(t *testing.T, mtbf vclock.Time, seed int64, maxFailures int) (Result, error, *FailureInjector) {
	t.Helper()
	sys := machine.New(4, 0)
	rt := NewRuntime(sys, newTestNet(sys), Config{})
	nodes := sys.Module(machine.Cluster)
	inj := NewFailureInjector(mtbf, seed, maxFailures, nodes)
	res, err := rt.Launch(LaunchSpec{
		Nodes:    nodes,
		Failures: inj,
		Main: func(p *Proc) error {
			c := p.World()
			next := (p.Rank() + 1) % c.Size()
			prev := (p.Rank() - 1 + c.Size()) % c.Size()
			for i := 0; i < 400; i++ {
				if p.Rank() == 0 {
					p.Send(c, next, 1, i, 8)
					p.Recv(c, prev, 1)
				} else {
					p.Recv(c, prev, 1)
					p.Send(c, next, 1, i, 8)
				}
				p.Elapse(vclock.Millisecond)
			}
			return nil
		},
	})
	return res, err, inj
}

// TestInjectedFailureAbortsWholeJob checks that one node failure tears the
// whole job down with NodeFailure errors on every rank — and that the errors
// are failure reports, not deadlock reports.
func TestInjectedFailureAbortsWholeJob(t *testing.T) {
	res, err, inj := failureFixture(t, 100*vclock.Millisecond, 7, 1)
	if err == nil {
		t.Fatal("job survived an injected failure")
	}
	nf, ok := FailureOf(err)
	if !ok {
		t.Fatalf("no NodeFailure in %v", err)
	}
	if nf.At <= 0 {
		t.Fatalf("failure at %v, want > 0", nf.At)
	}
	if inj.Fired() != 1 {
		t.Fatalf("injector fired %d times, want 1", inj.Fired())
	}
	if strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("failure reported as deadlock: %v", err)
	}
	// Every rank of the job must carry the abort.
	for i := 0; i < 4; i++ {
		if !strings.Contains(err.Error(), "node cn") {
			t.Fatalf("rank errors missing node failure: %v", err)
		}
	}
	_ = res
}

// TestInjectorDeterminism checks that the same seed yields the same failure
// instant and victim, run after run.
func TestInjectorDeterminism(t *testing.T) {
	_, err1, _ := failureFixture(t, 100*vclock.Millisecond, 42, 1)
	_, err2, _ := failureFixture(t, 100*vclock.Millisecond, 42, 1)
	nf1, ok1 := FailureOf(err1)
	nf2, ok2 := FailureOf(err2)
	if !ok1 || !ok2 {
		t.Fatalf("expected failures, got %v / %v", err1, err2)
	}
	if nf1.At != nf2.At || nf1.Node != nf2.Node {
		t.Fatalf("failure drifted across runs: %v@%v vs %v@%v", nf1.Node, nf1.At, nf2.Node, nf2.At)
	}
	// A different seed draws a different instant (overwhelmingly likely).
	_, err3, _ := failureFixture(t, 100*vclock.Millisecond, 43, 1)
	if nf3, ok := FailureOf(err3); ok && nf3.At == nf1.At {
		t.Fatalf("seeds 42 and 43 drew the same failure instant %v", nf1.At)
	}
}

// TestExhaustedInjectorLetsJobFinish checks that an injector with no
// failures left (or none configured) never aborts the job.
func TestExhaustedInjectorLetsJobFinish(t *testing.T) {
	if _, err, _ := failureFixture(t, 100*vclock.Millisecond, 7, 0); err != nil {
		t.Fatalf("maxFailures=0 injector aborted the job: %v", err)
	}
	if _, err, _ := failureFixture(t, 0, 7, 5); err != nil {
		t.Fatalf("mtbf=0 injector aborted the job: %v", err)
	}
	// MTBF far beyond the job's virtual length: the armed event never fires.
	if _, err, _ := failureFixture(t, 1e6*vclock.Second, 7, 5); err != nil {
		t.Fatalf("long-MTBF injector aborted the job: %v", err)
	}
}

// TestFailureSpansSpawnedChildren checks that an abort also tears down ranks
// spawned after the launch (the whole job tree dies).
func TestFailureSpansSpawnedChildren(t *testing.T) {
	sys := machine.New(2, 2)
	rt := NewRuntime(sys, newTestNet(sys), Config{})
	booster := sys.Module(machine.Booster)
	pool := append(append([]*machine.Node(nil), booster...), sys.Module(machine.Cluster)...)
	inj := NewFailureInjector(50*vclock.Millisecond, 3, 1, pool)
	rt.Register("child", func(p *Proc) error {
		inter := p.Parent()
		for i := 0; i < 400; i++ {
			p.Recv(inter, p.Rank(), 5)
			p.Send(inter, p.Rank(), 6, i, 8)
		}
		return nil
	})
	_, err := rt.Launch(LaunchSpec{
		Nodes:    booster,
		Failures: inj,
		Main: func(p *Proc) error {
			inter, err := p.Spawn(p.World(), SpawnSpec{Binary: "child", Procs: 2, Module: machine.Cluster})
			if err != nil {
				return err
			}
			for i := 0; i < 400; i++ {
				p.Send(inter, p.Rank(), 5, i, 8)
				p.Recv(inter, p.Rank(), 6)
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("job tree survived an injected failure")
	}
	if _, ok := FailureOf(err); !ok {
		t.Fatalf("no NodeFailure in %v", err)
	}
	if strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("failure reported as deadlock: %v", err)
	}
}
