package psmpi

import (
	"fmt"

	"clusterbooster/internal/machine"
)

// SpawnSpec describes an MPI_Comm_spawn request.
type SpawnSpec struct {
	// Binary names a program previously installed with Runtime.Register —
	// the analogue of the executable path passed to MPI_Comm_spawn.
	Binary string
	// Procs is the number of child processes to start.
	Procs int
	// Module selects where the children run (the "host" info key of the
	// paper's setup: xPic starts on the Booster and spawns onto the Cluster).
	Module machine.Module
	// Args is the opaque argument block the children see via Proc.Args.
	Args any
}

// spawnHandle is broadcast from the spawn root to the other parents.
type spawnHandle struct {
	inter *Comm
	err   error
}

// Spawn implements MPI_Comm_spawn (§III-A, Fig. 4 of the paper): a collective
// call over the comm c that starts spec.Procs new processes running
// spec.Binary on spec.Module, and returns an inter-communicator whose local
// group is the parents and whose remote group is the children. The children
// obtain their side of the inter-communicator via Proc.Parent.
//
// All ranks of c must call Spawn with the same spec. Rank 0 acts as the root:
// it asks the resource manager for nodes, boots the children and distributes
// the inter-communicator.
func (p *Proc) Spawn(c *Comm, spec SpawnSpec) (*Comm, error) {
	if c.IsInter() {
		return nil, fmt.Errorf("psmpi: spawn over an inter-communicator")
	}
	if spec.Procs <= 0 {
		return nil, fmt.Errorf("psmpi: spawn of %d procs", spec.Procs)
	}
	p.Stats.Spawns++

	// Synchronise the parents: the spawn completes collectively.
	p.Barrier(c)

	me := p.rankIn(c)
	var h spawnHandle
	if me == 0 {
		h = p.spawnRoot(c, spec)
	}
	// Distribute the handle (a control message of negligible size).
	out := p.Bcast(c, 0, h, 64)
	h = out.(spawnHandle)
	if h.err != nil {
		return nil, h.err
	}
	// Booting the children takes the configured overhead on every parent.
	p.addComm(p.rt.cfg.SpawnOverhead)
	// Register this parent's rank in the inter-communicator.
	p.commRank[h.inter.id] = me
	return h.inter, nil
}

// spawnRoot performs the root side of the spawn: placement, child world
// construction and job start.
func (p *Proc) spawnRoot(c *Comm, spec SpawnSpec) spawnHandle {
	main, err := p.rt.lookup(spec.Binary)
	if err != nil {
		return spawnHandle{err: err}
	}
	nodes, err := p.placeSpawn(spec.Procs, spec.Module)
	if err != nil {
		return spawnHandle{err: fmt.Errorf("psmpi: spawn placement: %w", err)}
	}

	// The children's clocks start after the spawn overhead has elapsed on
	// the (synchronised) parents.
	start := p.clock.Now() + p.rt.cfg.SpawnOverhead

	// Parents' view: local = parents, remote = children. Children's view:
	// the reverse. Both share one id, so matching is symmetric.
	inter := &Comm{rt: p.rt, id: p.rt.nextCommID(), local: c.local}
	childView := &Comm{rt: p.rt, id: inter.id, remote: c.local}

	world := p.rt.newWorld(p.l, nodes, spec.Args, start, childView)
	inter.remote = world.local
	childView.local = world.local
	for i, child := range world.local {
		child.commRank[inter.id] = i
	}

	p.rt.startJob(p.l, world, main, start, p.task)
	return spawnHandle{inter: inter}
}
