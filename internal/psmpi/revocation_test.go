package psmpi

import (
	"strings"
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// revocationFixture launches the failure-test ring job on the Cluster side
// of a 4+4 machine, with the revocation schedule picked against that same
// machine, and returns the result.
func revocationFixture(t *testing.T, pick func(sys *machine.System) []Revocation, kworkers int) (Result, error) {
	t.Helper()
	sys := machine.New(4, 4)
	rt := NewRuntime(sys, newTestNet(sys), Config{})
	nodes := sys.Module(machine.Cluster)
	return rt.Launch(LaunchSpec{
		Nodes:         nodes,
		Revocations:   pick(sys),
		KernelWorkers: kworkers,
		Main: func(p *Proc) error {
			c := p.World()
			next := (p.Rank() + 1) % c.Size()
			prev := (p.Rank() - 1 + c.Size()) % c.Size()
			for i := 0; i < 400; i++ {
				if p.Rank() == 0 {
					p.Send(c, next, 1, i, 8)
					p.Recv(c, prev, 1)
				} else {
					p.Recv(c, prev, 1)
					p.Send(c, next, 1, i, 8)
				}
				p.Elapse(vclock.Millisecond)
			}
			return nil
		},
	})
}

// TestRevocationAbortsJobRecoverably: revoking an occupied node mid-run
// kills the whole job with a recoverable NodeFailure at exactly the
// revocation instant — the batch system's drain surfaces like an injected
// failure, so the same restart loop handles both.
func TestRevocationAbortsJobRecoverably(t *testing.T) {
	at := 50 * vclock.Millisecond
	var victim string
	_, err := revocationFixture(t, func(sys *machine.System) []Revocation {
		n := sys.Module(machine.Cluster)[2]
		victim = n.Name()
		return []Revocation{{At: at, Nodes: []*machine.Node{n}}}
	}, 0)
	if err == nil {
		t.Fatal("job survived the revocation of an occupied node")
	}
	nf, ok := FailureOf(err)
	if !ok {
		t.Fatalf("no recoverable NodeFailure in %v", err)
	}
	if nf.At != at {
		t.Fatalf("failure at %v, want the revocation instant %v", nf.At, at)
	}
	if nf.Node != victim {
		t.Fatalf("failure names node %s, want the revoked %s", nf.Node, victim)
	}
	if strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("revocation reported as deadlock: %v", err)
	}
}

// TestRevocationOfForeignNodeIsNoOp: revoking nodes the job does not occupy
// (here: the Booster while the job runs on the Cluster) must not disturb it,
// and neither must a revocation scheduled past the job's end.
func TestRevocationOfForeignNodeIsNoOp(t *testing.T) {
	if _, err := revocationFixture(t, func(sys *machine.System) []Revocation {
		return []Revocation{{At: 50 * vclock.Millisecond, Nodes: sys.Module(machine.Booster)}}
	}, 0); err != nil {
		t.Fatalf("foreign-node revocation killed the job: %v", err)
	}
	if _, err := revocationFixture(t, func(sys *machine.System) []Revocation {
		return []Revocation{{At: 1e6 * vclock.Second, Nodes: sys.Module(machine.Cluster)[:1]}}
	}, 0); err != nil {
		t.Fatalf("post-completion revocation killed the job: %v", err)
	}
}

// TestRevocationForcesSerialFallback: like failure injection, revocations
// tear the tree down in completion order, which the parallel kernel cannot
// reproduce — a launch carrying revocations must fall back to serial and
// record the reason.
func TestRevocationForcesSerialFallback(t *testing.T) {
	res, err := revocationFixture(t, func(sys *machine.System) []Revocation {
		return []Revocation{{At: 1e6 * vclock.Second, Nodes: sys.Module(machine.Cluster)[:1]}}
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.Groups != 0 || res.Engine.Fallback != FallbackRevocations {
		t.Fatalf("groups=%d fallback=%q, want serial fallback %q",
			res.Engine.Groups, res.Engine.Fallback, FallbackRevocations)
	}
}
