package psmpi

import (
	"strings"
	"testing"

	"clusterbooster/internal/machine"
)

// TestDeadlockBecomesError: a job whose ranks all block with no message in
// flight used to hang the process; the execution kernel detects it and fails
// every blocked rank.
func TestDeadlockBecomesError(t *testing.T) {
	rt := testRuntime(2, 0)
	_, err := rt.Launch(LaunchSpec{
		Nodes: rt.System().Module(machine.Cluster)[:2],
		Main: func(p *Proc) error {
			p.Recv(p.World(), 1-p.Rank(), 0) // both wait, nobody sends
			return nil
		},
	})
	if err == nil {
		t.Fatal("deadlocked job returned no error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error does not name the deadlock: %v", err)
	}
}

// TestResultCarriesEngineStats: every launch reports its kernel counters.
func TestResultCarriesEngineStats(t *testing.T) {
	rt := testRuntime(2, 0)
	res := runJob(t, rt, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.SendF64(p.World(), 1, 0, []float64{1})
			return nil
		}
		buf := make([]float64, 1)
		p.RecvF64(p.World(), 0, 0, buf)
		return nil
	})
	st := res.Engine
	if st.Tasks != 2 || st.Events == 0 {
		t.Fatalf("engine stats = %+v", st)
	}
	if st.EventsPerSec() < 0 || st.String() == "" {
		t.Fatalf("stats rendering broken: %+v", st)
	}
}
