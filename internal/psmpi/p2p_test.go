package psmpi

import (
	"math"
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// testRuntime builds a runtime over c cluster and b booster nodes.
func testRuntime(c, b int) *Runtime {
	sys := machine.New(c, b)
	return NewRuntime(sys, fabric.New(sys, fabric.Config{}), Config{})
}

// runJob launches main over the first n cluster nodes and fails the test on
// job error.
func runJob(t *testing.T, rt *Runtime, n int, main MainFunc) Result {
	t.Helper()
	nodes := rt.System().Module(machine.Cluster)[:n]
	res, err := rt.Launch(LaunchSpec{Nodes: nodes, Main: main})
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	return res
}

func TestSendRecvValue(t *testing.T) {
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.SendF64(p.World(), 1, 7, []float64{1, 2, 3})
			return nil
		}
		buf := make([]float64, 3)
		n, st := p.RecvF64(p.World(), 0, 7, buf)
		if n != 3 || buf[0] != 1 || buf[2] != 3 {
			t.Errorf("recv got %v (n=%d)", buf, n)
		}
		if st.Source != 0 || st.Tag != 7 || st.Bytes != 24 {
			t.Errorf("status = %+v", st)
		}
		return nil
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	// MPI value semantics: mutating the buffer after SendF64 must not affect
	// the received data.
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			buf := []float64{42}
			p.SendF64(p.World(), 1, 0, buf)
			buf[0] = -1
			return nil
		}
		buf := make([]float64, 1)
		p.RecvF64(p.World(), 0, 0, buf)
		if buf[0] != 42 {
			t.Errorf("received %v, want 42 (send did not copy)", buf[0])
		}
		return nil
	})
}

func TestNonOvertaking(t *testing.T) {
	// Messages between one (sender, receiver, tag) pair arrive in order.
	rt := testRuntime(2, 0)
	const k = 50
	runJob(t, rt, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < k; i++ {
				p.SendF64(p.World(), 1, 3, []float64{float64(i)})
			}
			return nil
		}
		buf := make([]float64, 1)
		for i := 0; i < k; i++ {
			p.RecvF64(p.World(), 0, 3, buf)
			if buf[0] != float64(i) {
				t.Errorf("message %d out of order: got %v", i, buf[0])
				return nil
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	// A receive with tag B must skip an earlier message with tag A.
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		if p.Rank() == 0 {
			p.SendF64(p.World(), 1, 1, []float64{1})
			p.SendF64(p.World(), 1, 2, []float64{2})
			return nil
		}
		buf := make([]float64, 1)
		// Ensure both are queued before receiving out of order.
		p.Elapse(vclock.Millisecond)
		p.RecvF64(p.World(), 0, 2, buf)
		if buf[0] != 2 {
			t.Errorf("tag-2 recv got %v", buf[0])
		}
		p.RecvF64(p.World(), 0, 1, buf)
		if buf[0] != 1 {
			t.Errorf("tag-1 recv got %v", buf[0])
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	rt := testRuntime(3, 0)
	runJob(t, rt, 3, func(p *Proc) error {
		if p.Rank() != 0 {
			p.SendF64(p.World(), 0, p.Rank(), []float64{float64(p.Rank())})
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, st := p.Recv(p.World(), AnySource, AnyTag)
			v := data.([]float64)[0]
			if int(v) != st.Source || st.Tag != st.Source {
				t.Errorf("wildcard recv mismatch: v=%v st=%+v", v, st)
			}
			seen[st.Source] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("sources seen: %v", seen)
		}
		return nil
	})
}

func TestIsendIrecvWait(t *testing.T) {
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			req := p.IsendF64(w, 1, 5, []float64{9})
			p.Wait(req)
			return nil
		}
		req := p.Irecv(w, 0, 5)
		data, st := p.Wait(req)
		if data.([]float64)[0] != 9 || st.Source != 0 {
			t.Errorf("irecv got %v / %+v", data, st)
		}
		return nil
	})
}

func TestPostedRecvBeforeSend(t *testing.T) {
	// An Irecv posted before the message arrives must match it.
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 1 {
			req := p.Irecv(w, 0, 1)
			data, _ := p.Wait(req)
			if data.([]float64)[0] != 3 {
				t.Errorf("got %v", data)
			}
			return nil
		}
		p.Elapse(10 * vclock.Microsecond) // give rank 1 a head start in virtual time
		p.SendF64(w, 1, 1, []float64{3})
		return nil
	})
}

// TestEagerLatency checks that a minimal ping costs Table I's latency.
func TestEagerLatency(t *testing.T) {
	rt := testRuntime(2, 0)
	var recvTime vclock.Time
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			p.Send(w, 1, 0, nil, 0)
			return nil
		}
		p.Recv(w, 0, 0)
		recvTime = p.Now()
		return nil
	})
	if got := recvTime.Micros(); math.Abs(got-1.0) > 0.05 {
		t.Errorf("zero-byte CN-CN receive completed at %vµs, want ~1.0", got)
	}
}

// TestBoosterLatency checks BN-BN latency (1.8 µs).
func TestBoosterLatency(t *testing.T) {
	rt := testRuntime(0, 2)
	nodes := rt.System().Module(machine.Booster)
	var recvTime vclock.Time
	_, err := rt.Launch(LaunchSpec{Nodes: nodes, Main: func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			p.Send(w, 1, 0, nil, 0)
			return nil
		}
		p.Recv(w, 0, 0)
		recvTime = p.Now()
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := recvTime.Micros(); math.Abs(got-1.8) > 0.05 {
		t.Errorf("zero-byte BN-BN receive completed at %vµs, want ~1.8", got)
	}
}

// TestRendezvousSynchronises checks that a large blocking send cannot
// complete before the receiver posts.
func TestRendezvousSynchronises(t *testing.T) {
	rt := testRuntime(2, 0)
	const lateness = 500 * vclock.Microsecond
	var senderEnd vclock.Time
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		big := make([]float64, 1<<16) // 512 KiB: rendezvous
		if p.Rank() == 0 {
			p.SendF64(w, 1, 0, big)
			senderEnd = p.Now()
			return nil
		}
		p.Elapse(lateness)
		p.RecvF64(w, 0, 0, big)
		return nil
	})
	if senderEnd < lateness {
		t.Errorf("rendezvous sender finished at %v, before receiver posted at %v", senderEnd, lateness)
	}
}

// TestIssendCompletesAfterMatch checks synchronous-send semantics even for
// tiny messages (xPic's Listing 4 pattern).
func TestIssendCompletesAfterMatch(t *testing.T) {
	rt := testRuntime(2, 0)
	const lateness = 300 * vclock.Microsecond
	var senderEnd vclock.Time
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			req := p.IssendF64(w, 1, 0, []float64{1}) // 8 bytes: still synchronous
			p.Wait(req)
			senderEnd = p.Now()
			return nil
		}
		p.Elapse(lateness)
		buf := make([]float64, 1)
		p.RecvF64(w, 0, 0, buf)
		return nil
	})
	if senderEnd < lateness {
		t.Errorf("Issend completed at %v before the matching recv at %v", senderEnd, lateness)
	}
}

// TestEagerSendDoesNotBlock checks that a small Send returns without a
// matching receive (buffered semantics).
func TestEagerSendDoesNotBlock(t *testing.T) {
	rt := testRuntime(2, 0)
	runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			p.SendF64(w, 1, 0, []float64{1}) // must not deadlock
			p.SendF64(w, 1, 0, []float64{2})
			return nil
		}
		buf := make([]float64, 1)
		p.RecvF64(w, 0, 0, buf)
		p.RecvF64(w, 0, 0, buf)
		return nil
	})
}

// TestCrossModuleMessage exercises a Cluster→Booster message (the CN-BN
// series of Fig. 3) and checks its latency sits between CN-CN and BN-BN.
func TestCrossModuleMessage(t *testing.T) {
	rt := testRuntime(1, 1)
	nodes := []*machine.Node{rt.System().Node(0), rt.System().Node(1)}
	var recvTime vclock.Time
	_, err := rt.Launch(LaunchSpec{Nodes: nodes, Main: func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			p.Send(w, 1, 0, nil, 0)
			return nil
		}
		p.Recv(w, 0, 0)
		recvTime = p.Now()
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := recvTime.Micros(); got <= 1.0 || got >= 1.8 {
		t.Errorf("CN-BN latency %vµs, want in (1.0, 1.8)", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	rt := testRuntime(2, 0)
	res := runJob(t, rt, 2, func(p *Proc) error {
		w := p.World()
		p.Compute(machine.Work{Class: machine.KernelParticle, Flops: 3e7})
		if p.Rank() == 0 {
			p.SendF64(w, 1, 0, make([]float64, 100))
		} else {
			buf := make([]float64, 100)
			p.RecvF64(w, 0, 0, buf)
		}
		return nil
	})
	for _, r := range res.Ranks {
		if r.Stats.ComputeTime <= 0 {
			t.Errorf("rank %d: no compute time", r.Rank)
		}
		if r.Stats.CommTime <= 0 {
			t.Errorf("rank %d: no comm time", r.Rank)
		}
	}
	if res.Ranks[0].Stats.BytesSent != 800 {
		t.Errorf("bytes sent = %d, want 800", res.Ranks[0].Stats.BytesSent)
	}
	if res.Ranks[1].Stats.BytesRecv != 800 {
		t.Errorf("bytes recv = %d, want 800", res.Ranks[1].Stats.BytesRecv)
	}
}

func TestMakespanIsMaxClock(t *testing.T) {
	rt := testRuntime(2, 0)
	res := runJob(t, rt, 2, func(p *Proc) error {
		if p.Rank() == 1 {
			p.Elapse(3 * vclock.Second)
		}
		return nil
	})
	if math.Abs(res.Makespan.Seconds()-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3s", res.Makespan)
	}
}

func TestRankErrorPropagates(t *testing.T) {
	rt := testRuntime(1, 0)
	_, err := rt.Launch(LaunchSpec{
		Nodes: rt.System().Module(machine.Cluster)[:1],
		Main: func(p *Proc) error {
			return errTest
		},
	})
	if err == nil {
		t.Fatal("rank error not propagated")
	}
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestPanicInRankBecomesError(t *testing.T) {
	rt := testRuntime(1, 0)
	_, err := rt.Launch(LaunchSpec{
		Nodes: rt.System().Module(machine.Cluster)[:1],
		Main: func(p *Proc) error {
			panic("kaboom")
		},
	})
	if err == nil {
		t.Fatal("rank panic not converted to error")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	rt := testRuntime(1, 0)
	res := runJob(t, rt, 1, func(p *Proc) error {
		// 3 GFlop of field-solver work on Haswell = 1 s (calibrated rate).
		p.Compute(machine.Work{Class: machine.KernelFieldSolver, Flops: 3e9})
		return nil
	})
	if math.Abs(res.Makespan.Seconds()-1) > 1e-9 {
		t.Errorf("makespan = %v, want 1s", res.Makespan)
	}
}

func TestUserTagRangeEnforced(t *testing.T) {
	rt := testRuntime(2, 0)
	_, err := rt.Launch(LaunchSpec{
		Nodes: rt.System().Module(machine.Cluster)[:2],
		Main: func(p *Proc) error {
			if p.Rank() == 0 {
				p.Send(p.World(), 1, MaxUserTag, nil, 0) // must panic → error
			}
			return nil // rank 1 exits without receiving
		},
	})
	if err == nil {
		t.Fatal("reserved tag accepted")
	}
}
