package psmpi

import (
	"fmt"
	"sync"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// envelope is a message in flight.
type envelope struct {
	commID    uint64
	src       int // sender's rank in its group
	tag       int
	data      any
	bytes     int
	seq       uint64
	eager     bool
	interComm bool        // sent on an inter-communicator (staged path)
	arrival   vclock.Time // eager only: when data is at the destination NIC

	// Rendezvous handshake state (timed via the fabric's three-phase
	// rendezvous so every link clock keeps a single deterministic owner).
	srcNode    *machine.Node    // needed to time the transfer at match time
	rts        vclock.Time      // RTS at the receiver NIC (RendezvousIssue)
	injEnd     vclock.Time      // booked injection-link end (RendezvousIssue)
	dmaEnd     vclock.Time      // sender completion, set at match under the mailbox lock
	senderDone chan vclock.Time // match reports the sender's completion
}

// postedRecv is a receive posted before its message arrived.
type postedRecv struct {
	commID uint64
	src    int // AnySource allowed
	tag    int // AnyTag allowed
	posted vclock.Time
	env    *envelope // set when matched
	done   bool
}

func (pr *postedRecv) matches(e *envelope) bool {
	return pr.commID == e.commID &&
		(pr.src == AnySource || pr.src == e.src) &&
		(pr.tag == AnyTag || pr.tag == e.tag)
}

// mailbox holds a rank's unexpected-message queue and posted-receive queue,
// with standard MPI matching precedence.
type mailbox struct {
	mu         sync.Mutex
	cond       *sync.Cond
	unexpected []*envelope
	posted     []*postedRecv
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// deliver is called from the sender's goroutine. It matches the envelope
// against posted receives (in post order) or queues it as unexpected. For
// rendezvous messages matched against a posted receive, the sender's
// completion is resolved here (pure arithmetic — the receive-post time is
// already known and no link state is touched), so a blocking sender never
// waits for the receiver to reach its own completion call. Ejection-link
// serialisation and the receiver-side arrival happen later, in the
// receiver's goroutine.
func (mb *mailbox) deliver(e *envelope, dst *Proc) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, pr := range mb.posted {
		if pr.env == nil && pr.matches(e) {
			completeMatch(pr, e, dst)
			mb.cond.Broadcast()
			return
		}
	}
	mb.unexpected = append(mb.unexpected, e)
	mb.cond.Broadcast()
}

// completeMatch resolves a (posted receive, envelope) pair: for rendezvous
// messages it computes and releases the sender's completion time. Caller
// holds the mailbox lock.
func completeMatch(pr *postedRecv, e *envelope, dst *Proc) {
	pr.env = e
	if !e.eager {
		e.dmaEnd = dst.rt.net.RendezvousMatch(
			e.srcNode, dst.node, e.bytes, e.rts, e.injEnd, pr.posted)
		e.senderDone <- e.dmaEnd
	}
	pr.done = true
}

// takeUnexpected removes and returns the first unexpected envelope matching
// (commID, src, tag), or nil. Caller holds the lock.
func (mb *mailbox) takeUnexpected(commID uint64, src, tag int) *envelope {
	probe := postedRecv{commID: commID, src: src, tag: tag}
	for i, e := range mb.unexpected {
		if probe.matches(e) {
			mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			return e
		}
	}
	return nil
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	p    *Proc
	done bool

	// send-side
	isSend     bool
	senderDone chan vclock.Time // rendezvous/synchronous sends
	sendFree   vclock.Time      // eager sends: sender completion time

	// recv-side
	pr   *postedRecv
	mb   *mailbox
	data *any // receive destination
}

// sendMode selects the send protocol.
type sendMode int

const (
	modeStandard sendMode = iota // eager below threshold, rendezvous above
	modeSync                     // always rendezvous (MPI_Issend)
)

// send implements all send flavours. Blocking sends wait for local completion
// (standard mode: buffer reusable; synchronous mode: matched), non-blocking
// sends return a Request.
func (p *Proc) send(c *Comm, dst, tag int, data any, bytes int, mode sendMode, blocking bool) *Request {
	if tag < 0 || tag >= MaxUserTag {
		// Internal callers use sendTagged with reserved tags.
		panic(fmt.Sprintf("psmpi: tag %d out of user range [0,%d)", tag, MaxUserTag))
	}
	return p.sendTagged(c, dst, tag, data, bytes, mode, blocking)
}

func (p *Proc) sendTagged(c *Comm, dst, tag int, data any, bytes int, mode sendMode, blocking bool) *Request {
	traceStart := p.clock.Now()
	defer p.record("send", traceStart)
	target := c.target(dst)
	// Inter-communicator traffic is staged through the MPI layer on the
	// sending side (see Config.InterCommStagingGBs).
	if c.IsInter() && bytes > 0 {
		p.addComm(vclock.Time(float64(bytes) / (p.rt.cfg.InterCommStagingGBs * 1e9)))
	}
	begin := p.clock.Now()
	p.Stats.Sends++
	p.Stats.BytesSent += int64(bytes)
	p.sendSeq++

	e := &envelope{
		commID:    c.id,
		src:       p.rankIn(c),
		tag:       tag,
		data:      data,
		bytes:     bytes,
		seq:       p.sendSeq,
		srcNode:   p.node,
		interComm: c.IsInter(),
	}

	eager := mode == modeStandard && p.rt.net.Eager(bytes)
	req := &Request{p: p, isSend: true}
	if eager {
		senderFree, nicArrival := p.rt.net.EagerSend(p.node, target.node, bytes, begin)
		e.eager = true
		e.arrival = nicArrival
		req.sendFree = senderFree
	} else {
		e.senderDone = make(chan vclock.Time, 1)
		req.senderDone = e.senderDone
		e.rts, e.injEnd = p.rt.net.RendezvousIssue(p.node, target.node, bytes, begin)
	}
	target.mbox.deliver(e, target)

	if eager {
		// The sending CPU is busy until the NIC has the data, then free.
		p.elapseComm(req.sendFree)
		req.done = true
		if blocking {
			return nil
		}
		return req
	}
	// Rendezvous: the sender's CPU pays the issue overhead (posting the RTS)
	// and may then continue; completion arrives through the handshake.
	p.addComm(p.rt.net.SendOverheadOf(p.node))
	if blocking {
		p.waitSend(req)
		return nil
	}
	return req
}

func (p *Proc) waitSend(req *Request) {
	if req.done {
		return
	}
	done := <-req.senderDone
	p.elapseComm(done)
	req.done = true
}

// Send is a blocking standard-mode send (MPI_Send): it returns when the send
// buffer is reusable — immediately after injection for eager messages, after
// the transfer for rendezvous messages.
func (p *Proc) Send(c *Comm, dst, tag int, data any, bytes int) {
	p.send(c, dst, tag, data, bytes, modeStandard, true)
}

// Isend is a non-blocking standard-mode send (MPI_Isend).
func (p *Proc) Isend(c *Comm, dst, tag int, data any, bytes int) *Request {
	return p.send(c, dst, tag, data, bytes, modeStandard, false)
}

// Issend is a non-blocking synchronous send (MPI_Issend): the request
// completes only once the matching receive is posted. xPic uses this for the
// Cluster↔Booster moment/field exchange (Listing 4 of the paper).
func (p *Proc) Issend(c *Comm, dst, tag int, data any, bytes int) *Request {
	return p.send(c, dst, tag, data, bytes, modeSync, false)
}

// recvCommon matches a message, timing the receive. Returns the envelope.
func (p *Proc) recvCommon(c *Comm, src, tag int) *envelope {
	traceStart := p.clock.Now()
	defer p.record("recv", traceStart)
	mb := p.mbox
	mb.mu.Lock()
	if e := mb.takeUnexpected(c.id, src, tag); e != nil {
		mb.mu.Unlock()
		p.completeRecvUnexpected(e)
		return e
	}
	pr := &postedRecv{commID: c.id, src: src, tag: tag, posted: p.clock.Now()}
	mb.posted = append(mb.posted, pr)
	for !pr.done {
		mb.cond.Wait()
	}
	mb.removePosted(pr)
	mb.mu.Unlock()
	p.completeRecvPosted(pr)
	return pr.env
}

// removePosted drops a completed posted receive. Caller holds the lock.
func (mb *mailbox) removePosted(pr *postedRecv) {
	for i, q := range mb.posted {
		if q == pr {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			return
		}
	}
}

// completeRecvUnexpected times a receive that found its message already
// queued (sender was first). Runs in the receiver's goroutine, which owns
// the node's ejection link.
func (p *Proc) completeRecvUnexpected(e *envelope) {
	p.Stats.Recvs++
	p.Stats.BytesRecv += int64(e.bytes)
	if e.eager {
		p.elapseComm(p.eagerArrival(e))
		p.addComm(p.rt.net.EagerRecvCost(p.node, e.bytes))
		p.stageInterRecv(e)
		return
	}
	e.dmaEnd = p.rt.net.RendezvousMatch(
		e.srcNode, p.node, e.bytes, e.rts, e.injEnd, p.clock.Now())
	e.senderDone <- e.dmaEnd
	p.elapseComm(p.rendezvousArrival(e))
	p.stageInterRecv(e)
}

// completeRecvPosted times a receive whose posting preceded the message.
// Runs in the receiver's goroutine, which owns the node's ejection link.
func (p *Proc) completeRecvPosted(pr *postedRecv) {
	e := pr.env
	p.Stats.Recvs++
	p.Stats.BytesRecv += int64(e.bytes)
	if e.eager {
		p.elapseComm(p.eagerArrival(e))
		p.addComm(p.rt.net.EagerRecvCost(p.node, e.bytes))
		p.stageInterRecv(e)
		return
	}
	p.elapseComm(p.rendezvousArrival(e))
	p.stageInterRecv(e)
}

// eagerArrival serialises an eager message on this rank's ejection link
// (intra-node messages have no link to serialise on).
func (p *Proc) eagerArrival(e *envelope) vclock.Time {
	if e.srcNode.ID == p.node.ID {
		return e.arrival
	}
	return p.rt.net.EagerEject(p.node, e.bytes, e.arrival)
}

// rendezvousArrival serialises a matched rendezvous transfer on this rank's
// ejection link. e.dmaEnd was resolved at match time (under the mailbox
// lock, before pr.done was observed), so reading it here is safe.
func (p *Proc) rendezvousArrival(e *envelope) vclock.Time {
	if e.srcNode.ID == p.node.ID {
		return e.dmaEnd
	}
	return p.rt.net.RendezvousEject(p.node, e.bytes, e.dmaEnd)
}

// stageInterRecv charges the receiver-side staging copy of
// inter-communicator messages (the non-RDMA spawn-intercomm path).
func (p *Proc) stageInterRecv(e *envelope) {
	if e.interComm && e.bytes > 0 {
		p.addComm(vclock.Time(float64(e.bytes) / (p.rt.cfg.InterCommStagingGBs * 1e9)))
	}
}

// Recv is a blocking receive (MPI_Recv). It returns the message payload and
// its status. src may be AnySource and tag may be AnyTag.
func (p *Proc) Recv(c *Comm, src, tag int) (any, Status) {
	e := p.recvCommon(c, src, tag)
	return e.data, Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
}

// Irecv posts a non-blocking receive (MPI_Irecv); complete it with Wait.
func (p *Proc) Irecv(c *Comm, src, tag int) *Request {
	mb := p.mbox
	req := &Request{p: p, mb: mb}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if e := mb.takeUnexpected(c.id, src, tag); e != nil {
		pr := &postedRecv{commID: c.id, src: src, tag: tag, posted: p.clock.Now()}
		completeMatch(pr, e, p)
		req.pr = pr
		return req
	}
	pr := &postedRecv{commID: c.id, src: src, tag: tag, posted: p.clock.Now()}
	mb.posted = append(mb.posted, pr)
	req.pr = pr
	return req
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// Wait blocks until the request completes (MPI_Wait) and returns the received
// payload and status for receives (nil payload for sends).
func (p *Proc) Wait(req *Request) (any, Status) {
	if req.p != p {
		panic("psmpi: waiting on another rank's request")
	}
	traceStart := p.clock.Now()
	defer p.record("wait", traceStart)
	if req.isSend {
		p.waitSend(req)
		return nil, Status{}
	}
	pr := req.pr
	mb := req.mb
	mb.mu.Lock()
	for !pr.done {
		mb.cond.Wait()
	}
	mb.removePosted(pr)
	mb.mu.Unlock()
	if !req.done {
		p.completeRecvPosted(pr)
		req.done = true
	}
	e := pr.env
	return e.data, Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
}

// Waitall completes all requests (MPI_Waitall).
func (p *Proc) Waitall(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			p.Wait(r)
		}
	}
}

// SendF64 copies and sends a []float64 payload; the wire size is 8 bytes per
// element. The copy gives MPI value semantics: the caller may reuse buf
// immediately.
func (p *Proc) SendF64(c *Comm, dst, tag int, buf []float64) {
	p.Send(c, dst, tag, append([]float64(nil), buf...), 8*len(buf))
}

// IsendF64 is the non-blocking variant of SendF64.
func (p *Proc) IsendF64(c *Comm, dst, tag int, buf []float64) *Request {
	return p.Isend(c, dst, tag, append([]float64(nil), buf...), 8*len(buf))
}

// IssendF64 is the synchronous non-blocking variant of SendF64.
func (p *Proc) IssendF64(c *Comm, dst, tag int, buf []float64) *Request {
	return p.Issend(c, dst, tag, append([]float64(nil), buf...), 8*len(buf))
}

// RecvF64 receives a []float64 payload into buf (which must be large enough)
// and returns the element count.
func (p *Proc) RecvF64(c *Comm, src, tag int, buf []float64) (int, Status) {
	data, st := p.Recv(c, src, tag)
	v := data.([]float64)
	n := copy(buf, v)
	if n < len(v) {
		panic(fmt.Sprintf("psmpi: receive buffer too small: %d < %d", len(buf), len(v)))
	}
	return n, st
}
