package psmpi

import (
	"fmt"

	"clusterbooster/internal/engine"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// payload is a message body with a tagged fast lane: []float64 — the
// platform's dominant traffic (halo rows, moments, reduction accumulators,
// checkpoint state) — travels in its own field, so the send path never boxes
// a slice header into an interface (one heap allocation per send through
// PR 4, the single largest allocation source of the kernel benchmarks).
// Everything else rides in val. pooled marks f64 as a launch-pool buffer
// whose sole consumer may recycle it after copying out.
type payload struct {
	f64    []float64
	val    any
	pooled bool
}

// value returns the body for the untyped receive APIs. Boxing happens here,
// on demand, instead of on every send.
func (pl payload) value() any {
	if pl.f64 != nil {
		return pl.f64
	}
	return pl.val
}

// slice returns the body as a []float64 for the typed receive APIs.
func (pl payload) slice() []float64 {
	if pl.f64 != nil {
		return pl.f64
	}
	if pl.val == nil {
		return nil
	}
	return pl.val.([]float64)
}

// envelope is a message in flight. Envelopes are pooled per launch: refs
// counts the parties that still read the envelope (the receiver; plus the
// sender for rendezvous messages, which reads the completion time resolved
// at match), and the last one returns it to the free list. The kernel's
// serialisation makes the pool safe without any synchronisation — except
// refs, dropped atomically because a rendezvous envelope's two owners may
// release it concurrently from different groups of a parallel kernel.
type envelope struct {
	commID    uint64
	src       int // sender's rank in its group
	tag       int
	pl        payload
	bytes     int
	seq       uint64
	refs      int32 // atomic decrement; plain writes only before delivery
	eager     bool
	interComm bool        // sent on an inter-communicator (staged path)
	arrival   vclock.Time // eager only: when data is at the destination NIC

	// Rendezvous handshake state. The fabric times the transfer in three
	// phases (issue, match, eject) so each booking happens at the modelled
	// instant it occurs on the hardware; the execution kernel serialises the
	// calls, so any task may resolve any phase.
	srcNode      *machine.Node // needed to time the transfer at match time
	rts          vclock.Time   // RTS at the receiver NIC (RendezvousIssue)
	injEnd       vclock.Time   // booked injection-link end (RendezvousIssue)
	dmaEnd       vclock.Time   // sender completion, resolved at match
	dmaDone      bool          // dmaEnd is valid
	senderWaiter *engine.Task  // sender parked awaiting the match, if any
}

// postedRecv is a receive posted before its message arrived.
type postedRecv struct {
	commID uint64
	src    int // AnySource allowed
	tag    int // AnyTag allowed
	posted vclock.Time
	env    *envelope // set when matched
	done   bool
	waiter *engine.Task // receiver parked on this receive, if any
	// senderDone is the receiver's copy of a matched rendezvous transfer's
	// completion time. The receive paths read it instead of env.dmaEnd: when
	// the matching sender sits in another kernel group, the write to the
	// envelope (which the sender polls) is deferred to the round barrier,
	// but the receiver may complete within the round.
	senderDone vclock.Time
}

func (pr *postedRecv) matches(e *envelope) bool {
	return pr.commID == e.commID &&
		(pr.src == AnySource || pr.src == e.src) &&
		(pr.tag == AnyTag || pr.tag == e.tag)
}

// mailbox holds a rank's unexpected-message queue and posted-receive queue,
// with standard MPI matching precedence. The execution kernel runs exactly
// one rank at a time, so the mailbox needs no locking: deliver (called by
// the sending rank) and the receive paths (called by the owning rank) can
// never overlap.
type mailbox struct {
	unexpected []*envelope
	posted     []*postedRecv
	probers    []*Proc // ranks parked in Probe, woken on new unexpected mail
}

func newMailbox() *mailbox { return &mailbox{} }

// deliver is called from the sender's task. It matches the envelope against
// posted receives (in post order) or queues it as unexpected. For rendezvous
// messages matched against a posted receive, the sender's completion is
// resolved here (pure arithmetic — the receive-post time is already known
// and no link state is touched), so a blocking sender never waits for the
// receiver to reach its own completion call. Ejection-link serialisation and
// the receiver-side arrival happen later, in the receiver's task.
func (mb *mailbox) deliver(e *envelope, dst *Proc) {
	for _, pr := range mb.posted {
		if pr.env == nil && pr.matches(e) {
			completeMatch(pr, e, dst)
			return
		}
	}
	mb.unexpected = append(mb.unexpected, e)
	// New unexpected mail: re-run any parked Probe loops.
	for _, q := range mb.probers {
		q.task.WakeAt(q.clock.Now())
	}
	mb.probers = mb.probers[:0]
}

// completeMatch resolves a (posted receive, envelope) pair: for rendezvous
// messages it computes the sender's completion time, and it wakes whichever
// side is parked on the outcome — the sender blocked in waitSend at its
// transfer completion, the receiver blocked in Recv/Wait at the message's
// arrival estimate. On a parallel kernel, a sender in another group may be
// concurrently polling the envelope's completion state, so the sender-
// visible commit is deferred to the round barrier; the receiver keeps its
// own copy of the completion time in pr.senderDone.
func completeMatch(pr *postedRecv, e *envelope, dst *Proc) {
	pr.env = e
	if !e.eager {
		dmaEnd := dst.rt.net.RendezvousMatch(
			e.srcNode, dst.node, e.bytes, e.rts, e.injEnd, pr.posted)
		pr.senderDone = dmaEnd
		if dst.crossGroup(e.srcNode) {
			dst.task.Defer(func() { commitSenderDone(e, dmaEnd) })
		} else {
			commitSenderDone(e, dmaEnd)
		}
	}
	pr.done = true
	if w := pr.waiter; w != nil {
		pr.waiter = nil
		w.WakeAt(recvWake(pr, e))
	}
}

// commitSenderDone publishes a rendezvous transfer's completion to the
// sender: from the matching receiver directly when both sides share a kernel
// group (or the kernel is serial), otherwise replayed at the round barrier.
func commitSenderDone(e *envelope, dmaEnd vclock.Time) {
	e.dmaEnd = dmaEnd
	e.dmaDone = true
	if w := e.senderWaiter; w != nil {
		e.senderWaiter = nil
		w.WakeAt(dmaEnd)
	}
}

// recvWake is the virtual time at which a matched receive's waiter resumes:
// the message's arrival estimate, no earlier than the receive was posted.
// (The receiver recomputes the exact arrival — ejection-link serialisation
// included — when it completes the receive; the wakeup time only orders the
// resume among the kernel's events.)
func recvWake(pr *postedRecv, e *envelope) vclock.Time {
	if e.eager {
		return vclock.Max(pr.posted, e.arrival)
	}
	return vclock.Max(pr.posted, pr.senderDone)
}

// takeUnexpected removes and returns the first unexpected envelope matching
// (commID, src, tag), or nil.
func (mb *mailbox) takeUnexpected(commID uint64, src, tag int) *envelope {
	probe := postedRecv{commID: commID, src: src, tag: tag}
	for i, e := range mb.unexpected {
		if probe.matches(e) {
			mb.unexpected = append(mb.unexpected[:i], mb.unexpected[i+1:]...)
			return e
		}
	}
	return nil
}

// Request is a handle for a non-blocking operation, completed by Wait.
type Request struct {
	p    *Proc
	done bool

	// send-side
	isSend bool
	env    *envelope // rendezvous/synchronous sends: handshake state

	// recv-side
	pr     *postedRecv
	mb     *mailbox
	data   payload // extracted body, once completed
	status Status  // extracted status, once completed
}

// sendMode selects the send protocol.
type sendMode int

const (
	modeStandard sendMode = iota // eager below threshold, rendezvous above
	modeSync                     // always rendezvous (MPI_Issend)
)

// send implements all send flavours. Blocking sends wait for local completion
// (standard mode: buffer reusable; synchronous mode: matched), non-blocking
// sends return a Request.
func (p *Proc) send(c *Comm, dst, tag int, pl payload, bytes int, mode sendMode, blocking bool) *Request {
	if tag < 0 || tag >= MaxUserTag {
		// Internal callers use sendTagged with reserved tags.
		panic(fmt.Sprintf("psmpi: tag %d out of user range [0,%d)", tag, MaxUserTag))
	}
	return p.sendTagged(c, dst, tag, pl, bytes, mode, blocking)
}

func (p *Proc) sendTagged(c *Comm, dst, tag int, pl payload, bytes int, mode sendMode, blocking bool) *Request {
	if p.rt.trace != nil {
		defer p.record("send", p.clock.Now())
	}
	target := c.target(dst)
	// Inter-communicator traffic is staged through the MPI layer on the
	// sending side (see Config.InterCommStagingGBs).
	if c.IsInter() && bytes > 0 {
		p.addComm(vclock.Time(float64(bytes) / (p.rt.cfg.InterCommStagingGBs * 1e9)))
	}
	begin := p.clock.Now()
	p.Stats.Sends++
	p.Stats.BytesSent += int64(bytes)
	p.sendSeq++

	e := p.newEnv()
	*e = envelope{
		commID:    c.id,
		src:       p.rankIn(c),
		tag:       tag,
		pl:        pl,
		bytes:     bytes,
		seq:       p.sendSeq,
		refs:      1, // the receiver
		srcNode:   p.node,
		interComm: c.IsInter(),
	}

	if mode == modeStandard && p.rt.net.Eager(bytes) {
		senderFree, nicArrival := p.rt.net.EagerSend(p.node, target.node, bytes, begin)
		e.eager = true
		e.arrival = nicArrival
		p.deliverTo(target, e)
		// The sending CPU is busy until the NIC has the data, then free.
		p.elapseComm(senderFree)
		if blocking {
			return nil
		}
		// Eager sends complete locally: the request is born done, and since a
		// done send request carries no state, every eager Isend of a rank
		// shares one request struct instead of allocating.
		return &p.eagerDone
	}
	e.refs++ // the sender reads the matched completion time
	e.rts, e.injEnd = p.rt.net.RendezvousIssue(p.node, target.node, bytes, begin)
	p.deliverTo(target, e)
	// Rendezvous: the sender's CPU pays the issue overhead (posting the RTS)
	// and may then continue; completion arrives through the handshake.
	p.addComm(p.rt.net.SendOverheadOf(p.node))
	if blocking {
		p.waitSendEnv(e)
		return nil
	}
	return &Request{p: p, isSend: true, env: e}
}

// deliverTo hands an envelope to the target's mailbox. Same-group targets
// (and every target of a serial kernel) receive it immediately, in the
// sending rank's event order. A target in another kernel group owns its
// mailbox concurrently, so the delivery is deferred to the round barrier;
// the fabric's cross-node lookahead guarantees the message's effects lie at
// or beyond the window edge, which keeps the replayed delivery order
// consistent with the serial schedule.
func (p *Proc) deliverTo(target *Proc, e *envelope) {
	if p.l.par != nil && p.gid != target.gid {
		p.task.Defer(func() { target.mbox.deliver(e, target) })
		return
	}
	target.mbox.deliver(e, target)
}

// waitSend completes a non-blocking send request.
func (p *Proc) waitSend(req *Request) {
	if req.done {
		return
	}
	p.waitSendEnv(req.env)
	req.env = nil
	req.done = true
}

// waitSendEnv blocks until a rendezvous send's transfer completes. If the
// match has not happened yet, the sender parks in the kernel; the receiver's
// match resolves the completion time and wakes it exactly then.
func (p *Proc) waitSendEnv(e *envelope) {
	if !e.dmaDone {
		e.senderWaiter = p.task
		p.task.Park()
	}
	p.elapseComm(e.dmaEnd)
	p.releaseEnv(e)
}

// Send is a blocking standard-mode send (MPI_Send): it returns when the send
// buffer is reusable — immediately after injection for eager messages, after
// the transfer for rendezvous messages.
func (p *Proc) Send(c *Comm, dst, tag int, data any, bytes int) {
	p.send(c, dst, tag, payload{val: data}, bytes, modeStandard, true)
}

// Isend is a non-blocking standard-mode send (MPI_Isend).
func (p *Proc) Isend(c *Comm, dst, tag int, data any, bytes int) *Request {
	return p.send(c, dst, tag, payload{val: data}, bytes, modeStandard, false)
}

// Issend is a non-blocking synchronous send (MPI_Issend): the request
// completes only once the matching receive is posted. xPic uses this for the
// Cluster↔Booster moment/field exchange (Listing 4 of the paper).
func (p *Proc) Issend(c *Comm, dst, tag int, data any, bytes int) *Request {
	return p.send(c, dst, tag, payload{val: data}, bytes, modeSync, false)
}

// IsendF64Shared is Isend for a []float64 the caller promises not to touch
// until the message is consumed (xPic's halo, moment and migration buffers
// follow this discipline by protocol order). The slice travels by reference
// and unboxed: no copy, no allocation.
func (p *Proc) IsendF64Shared(c *Comm, dst, tag int, buf []float64) *Request {
	return p.send(c, dst, tag, payload{f64: buf}, 8*len(buf), modeStandard, false)
}

// IssendF64Shared is Issend with the same shared-buffer contract as
// IsendF64Shared.
func (p *Proc) IssendF64Shared(c *Comm, dst, tag int, buf []float64) *Request {
	return p.send(c, dst, tag, payload{f64: buf}, 8*len(buf), modeSync, false)
}

// recvCommon matches a message, timing the receive. Returns the envelope.
func (p *Proc) recvCommon(c *Comm, src, tag int) *envelope {
	if src == AnySource && p.l.par != nil {
		panic("psmpi: AnySource receive on a parallel kernel (run with 1 kernel worker)")
	}
	if p.rt.trace != nil {
		defer p.record("recv", p.clock.Now())
	}
	mb := p.mbox
	if e := mb.takeUnexpected(c.id, src, tag); e != nil {
		p.completeRecvUnexpected(e)
		return e
	}
	// A blocking receive's posting lives only until this call returns, so it
	// reuses a per-rank scratch record instead of allocating.
	pr := &p.recvScratch
	*pr = postedRecv{commID: c.id, src: src, tag: tag, posted: p.clock.Now(), waiter: p.task}
	mb.posted = append(mb.posted, pr)
	p.task.Park()
	mb.removePosted(pr)
	p.completeRecvPosted(pr)
	return pr.env
}

// removePosted drops a completed posted receive.
func (mb *mailbox) removePosted(pr *postedRecv) {
	for i, q := range mb.posted {
		if q == pr {
			mb.posted = append(mb.posted[:i], mb.posted[i+1:]...)
			return
		}
	}
}

// completeRecvUnexpected times a receive that found its message already
// queued (sender was first). The sender-visible rendezvous commit follows
// the same cross-group deferral rule as completeMatch; the receiver works
// with its locally computed completion time either way.
func (p *Proc) completeRecvUnexpected(e *envelope) {
	p.Stats.Recvs++
	p.Stats.BytesRecv += int64(e.bytes)
	if e.eager {
		p.elapseComm(p.eagerArrival(e))
		p.addComm(p.rt.net.EagerRecvCost(p.node, e.bytes))
		p.stageInterRecv(e)
		return
	}
	dmaEnd := p.rt.net.RendezvousMatch(
		e.srcNode, p.node, e.bytes, e.rts, e.injEnd, p.clock.Now())
	if p.crossGroup(e.srcNode) {
		p.task.Defer(func() { commitSenderDone(e, dmaEnd) })
	} else {
		commitSenderDone(e, dmaEnd)
	}
	p.elapseComm(p.rendezvousArrival(e, dmaEnd))
	p.stageInterRecv(e)
}

// completeRecvPosted times a receive whose posting preceded the message.
func (p *Proc) completeRecvPosted(pr *postedRecv) {
	e := pr.env
	p.Stats.Recvs++
	p.Stats.BytesRecv += int64(e.bytes)
	if e.eager {
		p.elapseComm(p.eagerArrival(e))
		p.addComm(p.rt.net.EagerRecvCost(p.node, e.bytes))
		p.stageInterRecv(e)
		return
	}
	p.elapseComm(p.rendezvousArrival(e, pr.senderDone))
	p.stageInterRecv(e)
}

// eagerArrival serialises an eager message on this rank's ejection link at
// receive-completion time (intra-node messages have no link to serialise on).
func (p *Proc) eagerArrival(e *envelope) vclock.Time {
	if e.srcNode.ID == p.node.ID {
		return e.arrival
	}
	return p.rt.net.EagerEject(p.node, e.bytes, e.arrival)
}

// rendezvousArrival serialises a matched rendezvous transfer on this rank's
// ejection link. dmaEnd is the completion time resolved at match, passed by
// value: the envelope's copy may still be in flight to the round barrier
// when the sender sits in another kernel group.
func (p *Proc) rendezvousArrival(e *envelope, dmaEnd vclock.Time) vclock.Time {
	if e.srcNode.ID == p.node.ID {
		return dmaEnd
	}
	return p.rt.net.RendezvousEject(p.node, e.bytes, dmaEnd)
}

// stageInterRecv charges the receiver-side staging copy of
// inter-communicator messages (the non-RDMA spawn-intercomm path).
func (p *Proc) stageInterRecv(e *envelope) {
	if e.interComm && e.bytes > 0 {
		p.addComm(vclock.Time(float64(e.bytes) / (p.rt.cfg.InterCommStagingGBs * 1e9)))
	}
}

// Recv is a blocking receive (MPI_Recv). It returns the message payload and
// its status. src may be AnySource and tag may be AnyTag.
func (p *Proc) Recv(c *Comm, src, tag int) (any, Status) {
	e := p.recvCommon(c, src, tag)
	data, st := e.pl.value(), Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
	p.releaseEnv(e)
	return data, st
}

// RecvF64Shared is a blocking receive of a []float64 payload, returned by
// reference and unboxed: the caller reads it but must not retain it past the
// sender's reuse point (the shared-buffer contract of IsendF64Shared).
func (p *Proc) RecvF64Shared(c *Comm, src, tag int) ([]float64, Status) {
	e := p.recvCommon(c, src, tag)
	v, st := e.pl.slice(), Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
	p.releaseEnv(e)
	return v, st
}

// newPR takes a posting record from the rank's free list (or allocates one);
// Wait returns completed records to it.
func (p *Proc) newPR() *postedRecv {
	if n := len(p.prFree); n > 0 {
		pr := p.prFree[n-1]
		p.prFree[n-1] = nil
		p.prFree = p.prFree[:n-1]
		return pr
	}
	return &postedRecv{}
}

// Irecv posts a non-blocking receive (MPI_Irecv); complete it with Wait.
func (p *Proc) Irecv(c *Comm, src, tag int) *Request {
	if src == AnySource && p.l.par != nil {
		panic("psmpi: AnySource receive on a parallel kernel (run with 1 kernel worker)")
	}
	mb := p.mbox
	req := &Request{p: p, mb: mb}
	pr := p.newPR()
	*pr = postedRecv{commID: c.id, src: src, tag: tag, posted: p.clock.Now()}
	req.pr = pr
	if e := mb.takeUnexpected(c.id, src, tag); e != nil {
		completeMatch(pr, e, p)
		return req
	}
	mb.posted = append(mb.posted, pr)
	return req
}

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Bytes  int
}

// wait drives the request to completion without extracting a typed body.
func (p *Proc) wait(req *Request) {
	if req.p != p {
		panic("psmpi: waiting on another rank's request")
	}
	if p.rt.trace != nil {
		defer p.record("wait", p.clock.Now())
	}
	if req.isSend {
		p.waitSend(req)
		return
	}
	pr := req.pr
	if req.done {
		return
	}
	if !pr.done {
		pr.waiter = p.task
		p.task.Park()
	}
	req.mb.removePosted(pr)
	p.completeRecvPosted(pr)
	e := pr.env
	req.data = e.pl
	req.status = Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
	*pr = postedRecv{}
	p.prFree = append(p.prFree, pr)
	req.pr = nil
	p.releaseEnv(e)
	req.done = true
}

// Wait blocks until the request completes (MPI_Wait) and returns the received
// payload and status for receives (nil payload for sends).
func (p *Proc) Wait(req *Request) (any, Status) {
	p.wait(req)
	if req.isSend {
		return nil, Status{}
	}
	return req.data.value(), req.status
}

// WaitF64 is Wait for receives of []float64 payloads, returned by reference
// and unboxed (the shared-buffer contract of IsendF64Shared applies).
func (p *Proc) WaitF64(req *Request) ([]float64, Status) {
	p.wait(req)
	if req.isSend {
		return nil, Status{}
	}
	return req.data.slice(), req.status
}

// Waitall completes all requests (MPI_Waitall).
func (p *Proc) Waitall(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			p.Wait(r)
		}
	}
}

// sendF64Copy implements the copying F64 send flavours: the copy comes from
// the launch's buffer pool and is marked for recycling by its sole consumer
// (RecvF64 returns it to the pool after copying out), so the steady-state
// F64 traffic of a job allocates nothing.
func (p *Proc) sendF64Copy(c *Comm, dst, tag int, buf []float64, mode sendMode, blocking bool) *Request {
	cp := p.getF64(len(buf))
	copy(cp, buf)
	return p.send(c, dst, tag, payload{f64: cp, pooled: true}, 8*len(buf), mode, blocking)
}

// SendF64 copies and sends a []float64 payload; the wire size is 8 bytes per
// element. The copy gives MPI value semantics: the caller may reuse buf
// immediately.
func (p *Proc) SendF64(c *Comm, dst, tag int, buf []float64) {
	p.sendF64Copy(c, dst, tag, buf, modeStandard, true)
}

// IsendF64 is the non-blocking variant of SendF64.
func (p *Proc) IsendF64(c *Comm, dst, tag int, buf []float64) *Request {
	return p.sendF64Copy(c, dst, tag, buf, modeStandard, false)
}

// IssendF64 is the synchronous non-blocking variant of SendF64.
func (p *Proc) IssendF64(c *Comm, dst, tag int, buf []float64) *Request {
	return p.sendF64Copy(c, dst, tag, buf, modeSync, false)
}

// RecvF64 receives a []float64 payload into buf (which must be large enough)
// and returns the element count. Pool-copied payloads (the SendF64 family)
// are recycled here — the receiver is their last reader.
func (p *Proc) RecvF64(c *Comm, src, tag int, buf []float64) (int, Status) {
	e := p.recvCommon(c, src, tag)
	v := e.pl.slice()
	st := Status{Source: e.src, Tag: e.tag, Bytes: e.bytes}
	n := copy(buf, v)
	if n < len(v) {
		panic(fmt.Sprintf("psmpi: receive buffer too small: %d < %d", len(buf), len(v)))
	}
	if e.pl.pooled {
		p.putF64(v)
	}
	p.releaseEnv(e)
	return n, st
}
