// Package psmpi is a ParaStation-MPI-like message-passing runtime for the
// simulated Cluster-Booster system. Each rank is a goroutine bound to a
// simulated node and owning a virtual clock, scheduled cooperatively by the
// job's discrete-event kernel (internal/engine): a rank runs until it blocks
// on a receive, a rendezvous completion or a device wait, parks in the
// kernel, and resumes exactly when its wakeup event fires in virtual-time
// order. Point-to-point operations are timed by the fabric model,
// collectives are built on top of p2p with the usual tree/ring algorithms,
// and MPI-2 dynamic process management (MPI_Comm_spawn) is provided by
// Spawn, which — exactly as in §III-A of the paper — starts a group of
// processes on the *other* module and returns an inter-communicator
// connecting parents and children.
//
// Semantics follow MPI where it matters for the reproduced application:
// matching by (communicator, source, tag) with wildcards, per-pair
// non-overtaking order, eager vs rendezvous protocol selection by size,
// synchronous sends (Issend) completing only after the match, and collective
// operations that synchronise the participants' virtual clocks.
package psmpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"clusterbooster/internal/engine"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// AnySource matches messages from any source rank.
const AnySource = -1

// AnyTag matches messages with any tag.
const AnyTag = -1

// MaxUserTag is the largest tag application code may use; larger tags are
// reserved for the runtime's internal protocols (collectives, spawn).
const MaxUserTag = 1 << 20

// MainFunc is the entry point of a rank, the analogue of an MPI program's
// main. The returned error aborts the job and is reported in the Result.
type MainFunc func(p *Proc) error

// Placement decides where spawned processes run. The resource manager
// (internal/sched) provides the production implementation; the runtime falls
// back to simple round-robin placement when none is configured.
type Placement interface {
	// PlaceSpawn returns n nodes of the requested module for a spawn.
	PlaceSpawn(n int, m machine.Module) ([]*machine.Node, error)
}

// Config tunes runtime-level costs.
type Config struct {
	// SpawnOverhead is the virtual time MPI_Comm_spawn takes to boot the
	// child processes (scheduler round-trip, binary startup). ParaStation
	// spawns within a running daemon, so this is milliseconds, not seconds.
	SpawnOverhead vclock.Time
	// InterCommStagingGBs is the effective per-endpoint staging bandwidth of
	// inter-communicator traffic. Messages between process worlds created by
	// MPI_Comm_spawn do not take the zero-copy RDMA path in ParaStation;
	// they are staged through the MPI layer at memcpy-like rates on each
	// side. Calibrated so the xPic Cluster↔Booster exchange shows the 3-4 %
	// overhead the paper reports (§IV-C).
	InterCommStagingGBs float64
}

// DefaultConfig returns production defaults.
func DefaultConfig() Config {
	return Config{
		SpawnOverhead:       25 * vclock.Millisecond,
		InterCommStagingGBs: 0.55,
	}
}

// Runtime owns the processes, the registry of spawnable binaries and the
// connection to the hardware models.
type Runtime struct {
	sys  *machine.System
	net  *fabric.Network
	cfg  Config
	plac Placement

	mu         sync.Mutex
	binReg     map[string]MainFunc
	commID     uint64
	splitCache map[string]*Comm
	trace      *traceSink
}

// NewRuntime creates a runtime over the given system and network. A zero
// Config selects defaults.
func NewRuntime(sys *machine.System, net *fabric.Network, cfg Config) *Runtime {
	if cfg.SpawnOverhead == 0 {
		cfg.SpawnOverhead = DefaultConfig().SpawnOverhead
	}
	if cfg.InterCommStagingGBs == 0 {
		cfg.InterCommStagingGBs = DefaultConfig().InterCommStagingGBs
	}
	return &Runtime{
		sys:    sys,
		net:    net,
		cfg:    cfg,
		binReg: map[string]MainFunc{},
	}
}

// System returns the hardware inventory.
func (rt *Runtime) System() *machine.System { return rt.sys }

// Network returns the fabric.
func (rt *Runtime) Network() *fabric.Network { return rt.net }

// SetPlacement installs a placement service used by Spawn.
func (rt *Runtime) SetPlacement(p Placement) { rt.plac = p }

// Register makes a binary name spawnable, like installing an executable on
// the system. Registering an empty name or nil main panics.
func (rt *Runtime) Register(binary string, main MainFunc) {
	if binary == "" || main == nil {
		panic("psmpi: invalid binary registration")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.binReg[binary] = main
}

func (rt *Runtime) lookup(binary string) (MainFunc, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m, ok := rt.binReg[binary]
	if !ok {
		return nil, fmt.Errorf("psmpi: binary %q not registered", binary)
	}
	return m, nil
}

func (rt *Runtime) nextCommID() uint64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.commID++
	return rt.commID
}

// placeSpawn resolves spawn placement for one rank's job tree: the launch's
// own service (the job's live allocation) wins over the runtime-global one.
func (p *Proc) placeSpawn(n int, m machine.Module) ([]*machine.Node, error) {
	if p.l.plac != nil {
		return p.l.plac.PlaceSpawn(n, m)
	}
	return p.rt.placeSpawn(n, m)
}

// placeSpawn resolves spawn placement through the configured service or the
// built-in round-robin fallback.
func (rt *Runtime) placeSpawn(n int, m machine.Module) ([]*machine.Node, error) {
	if rt.plac != nil {
		return rt.plac.PlaceSpawn(n, m)
	}
	pool := rt.sys.Module(m)
	if len(pool) == 0 {
		return nil, fmt.Errorf("psmpi: module %v has no nodes", m)
	}
	nodes := make([]*machine.Node, n)
	for i := range nodes {
		nodes[i] = pool[i%len(pool)]
	}
	return nodes, nil
}

// launch tracks one job tree: the initial job plus everything it spawned,
// all scheduled by one execution kernel.
type launch struct {
	eng  *engine.Engine
	plac Placement // per-launch spawn placement, overriding the runtime's
	par  *parState // group partition; nil on a serial launch
	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
	max  vclock.Time
	all  []*Proc

	// envFree is the launch's envelope free list, one list per group (one
	// list total on a serial launch). Only rank code touches a list, and the
	// kernel runs one rank per group at a time, so no synchronisation is
	// needed. Envelopes that are still queued or attached to an abandoned
	// request when the job ends are simply left to the garbage collector.
	envFree [][]*envelope
	// f64Free pools the collectives' internal reduction buffers by length
	// (ReduceF64 accumulators, which travel rank to rank inside one
	// collective and die at the receiving end), per group like envFree.
	f64Free []map[int][][]float64
}

// initPools sizes the per-group free lists (after setupParallel has decided
// the partition).
func (l *launch) initPools() {
	groups := 1
	if l.par != nil {
		groups = l.par.groups
	}
	l.envFree = make([][]*envelope, groups)
	l.f64Free = make([]map[int][][]float64, groups)
}

// getF64 takes a length-n buffer from the rank's group pool (or allocates
// one). The caller overwrites it fully.
func (p *Proc) getF64(n int) []float64 {
	m := p.l.f64Free[p.gid]
	if s := m[n]; len(s) > 0 {
		buf := s[len(s)-1]
		s[len(s)-1] = nil
		m[n] = s[:len(s)-1]
		return buf
	}
	return make([]float64, n)
}

// putF64 returns a buffer whose last reader is done with it to the reader's
// group pool (buffers may migrate between groups; each stays coherent).
func (p *Proc) putF64(buf []float64) {
	if p.l.f64Free[p.gid] == nil {
		p.l.f64Free[p.gid] = map[int][][]float64{}
	}
	m := p.l.f64Free[p.gid]
	m[len(buf)] = append(m[len(buf)], buf)
}

// newEnv takes an envelope from the rank's group free list (or allocates one).
func (p *Proc) newEnv() *envelope {
	free := p.l.envFree[p.gid]
	if n := len(free); n > 0 {
		e := free[n-1]
		p.l.envFree[p.gid] = free[:n-1]
		return e
	}
	return &envelope{}
}

// releaseEnv drops one reference to an envelope and recycles it when the
// last reader is done with it. The count is atomic because a rendezvous
// envelope's two owners (sender and receiver) may release it from different
// groups in the same round; the loser of the decrement race fully owns the
// envelope and recycles it into its own group's list.
func (p *Proc) releaseEnv(e *envelope) {
	if atomic.AddInt32(&e.refs, -1) == 0 {
		*e = envelope{}
		p.l.envFree[p.gid] = append(p.l.envFree[p.gid], e)
	}
}

func (l *launch) record(p *Proc, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err != nil {
		l.errs = append(l.errs, fmt.Errorf("rank %d on %s: %w", p.rank, p.node.Name(), err))
	}
	if t := p.clock.Now(); t > l.max {
		l.max = t
	}
}

// LaunchSpec describes a job: one rank per entry of Nodes, all running Main.
type LaunchSpec struct {
	// Nodes lists the node of each rank; rank i runs on Nodes[i]. Several
	// ranks may share a node (multiple slots).
	Nodes []*machine.Node
	// Main is the program every rank executes.
	Main MainFunc
	// Args is an opaque argument block visible to ranks via Proc.Args.
	Args any
	// StartTime is the virtual time at which the ranks boot (default 0).
	StartTime vclock.Time
	// Failures, if set, arms deterministic node-failure injection for this
	// launch: the injector schedules a failure event into the job's kernel,
	// and when it fires the whole job tree is torn down with a NodeFailure
	// error (recover it with FailureOf). The injector keeps its RNG state
	// across launches, so a restart loop sees a continuing failure sequence.
	Failures *FailureInjector
	// Revocations, if set, schedules resource-manager allocation
	// revocations into this launch: at each Revocation.At, if any of its
	// nodes host ranks of the job tree, the whole job is torn down with a
	// recoverable *NodeFailure (see FailureOf) — the psmpi face of the
	// batch system's facility-level drain/requeue path.
	Revocations []Revocation
	// Placement, if set, decides spawn placement for this job tree only,
	// overriding the runtime-global service. The batch system passes the
	// job's live allocation here (sched.Allocation implements Placement), so
	// dynamic spawns stay inside the job's reservation.
	Placement Placement
	// KernelWorkers > 1 requests conservative parallel execution of this
	// launch's kernel with that many worker goroutines (see parallel.go).
	// The result is bit-identical to serial for any worker count; launches
	// that cannot run parallel (tracing, failure injection, a single node,
	// zero fabric lookahead) fall back to serial and record the reason in
	// Result.Engine.Fallback. 0 or 1 selects the serial kernel.
	KernelWorkers int
}

// Result summarises a completed job tree.
type Result struct {
	// Makespan is the latest final virtual clock over all ranks, including
	// spawned children — the job's virtual wall time.
	Makespan vclock.Time
	// Ranks holds the final per-rank state of the initial job (not children).
	Ranks []RankResult
	// Engine reports the execution kernel's runtime counters for this job
	// (events processed, parks, peak parked ranks, host wall time).
	Engine engine.Stats
	// Err aggregates rank errors (nil if all ranks succeeded).
	Err error
}

// RankResult is the end-of-job state of one rank.
type RankResult struct {
	Rank  int
	Node  string
	Clock vclock.Time
	Stats Stats
}

// Launch runs a job to completion (including any jobs it spawns) and returns
// the aggregate result. It blocks the calling goroutine but consumes no
// virtual time of its own. Each launch owns one execution kernel; a job
// whose ranks all block with nothing pending fails with a deadlock error
// rather than hanging the process.
func (rt *Runtime) Launch(spec LaunchSpec) (Result, error) {
	if len(spec.Nodes) == 0 {
		return Result{}, errors.New("psmpi: launch with no nodes")
	}
	if spec.Main == nil {
		return Result{}, errors.New("psmpi: launch with nil main")
	}
	l := &launch{eng: engine.New(), plac: spec.Placement}
	rt.setupParallel(l, spec)
	l.initPools()
	world := rt.newWorld(l, spec.Nodes, spec.Args, spec.StartTime, nil)
	rt.startJob(l, world, spec.Main, spec.StartTime, nil)
	spec.Failures.arm(l, spec.StartTime)
	l.armRevocations(spec.Revocations)
	l.eng.Run()
	l.wg.Wait()

	res := Result{Makespan: l.max, Engine: l.eng.Stats()}
	for _, p := range world.local {
		res.Ranks = append(res.Ranks, RankResult{
			Rank:  p.rank,
			Node:  p.node.Name(),
			Clock: p.clock.Now(),
			Stats: p.Stats,
		})
	}
	l.mu.Lock()
	if len(l.errs) > 0 {
		res.Err = errors.Join(l.errs...)
	}
	l.mu.Unlock()
	// Every rank goroutine has exited and all results are extracted: the
	// kernel (queue buckets, task structs, resume channels) goes back to the
	// pool for the next launch of the process.
	l.eng.Recycle()
	return res, res.Err
}

// newWorld builds a world communicator with one fresh proc per node entry.
func (rt *Runtime) newWorld(l *launch, nodes []*machine.Node, args any, start vclock.Time, parent *Comm) *Comm {
	world := &Comm{rt: rt, id: rt.nextCommID()}
	for i, node := range nodes {
		p := newProc(rt, l, node, i, args)
		p.clock.AdvanceTo(start)
		p.world = world
		p.parent = parent
		world.local = append(world.local, p)
	}
	world.collSeq = make([]uint64, len(world.local))
	for _, p := range world.local {
		p.commRank[world.id] = p.rank
	}
	l.mu.Lock()
	l.all = append(l.all, world.local...)
	l.mu.Unlock()
	return world
}

// startJob runs main on every rank of the world communicator. Each rank
// goroutine waits for its start event, runs under the kernel's cooperative
// schedule, and hands the baton on when it exits — after converting any
// panic (including a kernel deadlock report) into a recorded rank error.
//
// Registering tasks mutates kernel-global state, so the arming step runs
// through by.Defer when a task is acting (a mid-round MPI_Comm_spawn on a
// parallel kernel defers it to the round barrier; the children's start time
// lies a SpawnOverhead past the spawn instant, far beyond the current safe
// window, so deferring it never reorders events). At launch time — before
// the kernel runs — by is nil and the arming happens inline.
func (rt *Runtime) startJob(l *launch, world *Comm, main MainFunc, start vclock.Time, by *engine.Task) {
	arm := func() {
		l.wg.Add(len(world.local))
		for _, p := range world.local {
			p.task = l.eng.NewRankTask(p.rank, p.node.Name())
			if l.par != nil {
				p.task.SetGroup(int(p.gid))
			}
			p.task.StartAt(start)
			go func(p *Proc) {
				defer l.wg.Done()
				defer p.task.Exit()
				defer func() {
					if r := recover(); r != nil {
						// A kernel teardown (failure injection) carries its cause;
						// everything else is a genuine rank panic.
						if tf, ok := r.(*engine.TaskFailure); ok {
							l.record(p, tf.Reason)
							return
						}
						l.record(p, fmt.Errorf("panic: %v", r))
					}
				}()
				p.task.WaitStart()
				err := main(p)
				l.record(p, err)
			}(p)
		}
	}
	if by == nil {
		arm()
		return
	}
	by.Defer(arm)
}
