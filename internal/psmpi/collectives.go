package psmpi

import "fmt"

// Collective operations, built on top of the timed point-to-point layer with
// the standard algorithms (dissemination barrier, binomial trees, ring
// allgather, pairwise alltoall), so that their virtual-time cost emerges from
// the fabric model rather than being postulated.
//
// As in MPI, all members of the communicator must call the same collectives
// in the same order. Collectives are not supported on inter-communicators.

// Op is a reduction operator over float64.
type Op int

const (
	// OpSum adds elementwise.
	OpSum Op = iota
	// OpMax takes the elementwise maximum.
	OpMax
	// OpMin takes the elementwise minimum.
	OpMin
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("psmpi: unknown op %d", int(o)))
	}
}

// collTag reserves a fresh tag block for one collective invocation on comm.
// Every rank calls collectives in the same order (an MPI requirement), so the
// per-rank sequence counters agree across ranks without synchronisation.
func (p *Proc) collTag(c *Comm) int {
	if c.IsInter() {
		panic("psmpi: collectives on inter-communicators are not supported")
	}
	if c.Size() > collTagBlock {
		panic(fmt.Sprintf("psmpi: communicator size %d exceeds collective tag block %d", c.Size(), collTagBlock))
	}
	me := p.rankIn(c)
	seq := c.collSeq[me]
	c.collSeq[me] = seq + 1
	return MaxUserTag + int(seq)*collTagBlock
}

// collTagBlock is the number of reserved tags per collective invocation; it
// bounds the number of internal rounds/steps a single collective may use —
// and with them the largest communicator (the ring allgather uses one tag
// per step, so size <= block). 65536 admits the fig8-scale16384 jobs and
// the n=65536 deep-scale test point. Tag values only ever matter for
// matching, so the block size has no timing effect.
const collTagBlock = 1 << 16

// Barrier synchronises all ranks of the communicator (dissemination
// algorithm: ⌈log2 p⌉ rounds of zero-byte messages). On return every rank's
// clock is at least the maximum pre-barrier clock plus the network rounds.
func (p *Proc) Barrier(c *Comm) {
	p.Stats.Collectives++
	base := p.collTag(c)
	me := p.rankIn(c)
	n := c.Size()
	for k, round := 1, 0; k < n; k, round = k<<1, round+1 {
		dst := (me + k) % n
		src := (me - k + n) % n
		req := p.sendTagged(c, dst, base+round, payload{}, 0, modeStandard, false)
		p.recvTagged(c, src, base+round)
		p.wait(req)
	}
}

// recvTagged is Recv for internal (reserved-tag) traffic; it returns the
// body unboxed.
func (p *Proc) recvTagged(c *Comm, src, tag int) payload {
	e := p.recvCommon(c, src, tag)
	pl := e.pl
	p.releaseEnv(e)
	return pl
}

// bcastTree walks the binomial broadcast tree for this rank: receive once
// from the parent (every rank but the root has exactly one), then forward
// down the subtree in decreasing-mask order. Both broadcast flavours share
// this traversal so the tree topology cannot diverge between them; only the
// payload handling differs.
func (p *Proc) bcastTree(c *Comm, root int, recv func(src int), forward func(dst int)) {
	me := p.rankIn(c)
	n := c.Size()
	rel := (me - root + n) % n

	mask := 1
	for mask < n {
		if rel&mask != 0 {
			recv((rel - mask + root + n) % n)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			forward((rel + mask + root) % n)
		}
		mask >>= 1
	}
}

// Bcast broadcasts data (of the given wire size) from root to all ranks using
// a binomial tree, and returns the value each rank ends up with.
func (p *Proc) Bcast(c *Comm, root int, data any, bytes int) any {
	p.Stats.Collectives++
	base := p.collTag(c)
	p.bcastTree(c, root,
		func(src int) { data = p.recvTagged(c, src, base).value() },
		func(dst int) { p.sendTagged(c, dst, base, payload{val: data}, bytes, modeStandard, true) })
	return data
}

// BcastF64 broadcasts a float64 slice from root; every rank receives a copy
// into buf (root's buf is the source). One pristine copy of root's buf — a
// rank's own buf may be rewritten the moment the collective returns, so the
// in-flight tree cannot share it — travels the whole binomial tree unboxed
// and by reference; the single allocation per broadcast is that copy.
func (p *Proc) BcastF64(c *Comm, root int, buf []float64) {
	p.Stats.Collectives++
	base := p.collTag(c)
	var blk []float64
	if p.rankIn(c) == root {
		blk = append([]float64(nil), buf...)
	}
	p.bcastTree(c, root,
		func(src int) {
			blk = p.recvTagged(c, src, base).slice()
			copy(buf, blk)
		},
		func(dst int) { p.sendTagged(c, dst, base, payload{f64: blk}, 8*len(blk), modeStandard, true) })
}

// ReduceF64 reduces buf elementwise onto root with op (binomial tree). On
// root, buf holds the result afterwards; on other ranks buf is untouched.
// The accumulators travel rank to rank inside the collective and die at the
// receiving end, so they come from the launch's buffer pool: a sent
// accumulator is recycled by its receiver after the reduction step, the
// root's after the final copy-out.
func (p *Proc) ReduceF64(c *Comm, root int, buf []float64, op Op) {
	p.Stats.Collectives++
	base := p.collTag(c)
	me := p.rankIn(c)
	n := c.Size()
	rel := (me - root + n) % n

	acc := p.getF64(len(buf))
	copy(acc, buf)
	sent := false
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < n {
				src := (srcRel + root) % n
				part := p.recvTagged(c, src, base).slice()
				op.apply(acc, part)
				p.putF64(part)
			}
		} else {
			dstRel := rel &^ mask
			dst := (dstRel + root) % n
			p.sendTagged(c, dst, base, payload{f64: acc}, 8*len(acc), modeStandard, true)
			sent = true
			break
		}
	}
	if me == root {
		copy(buf, acc)
	}
	if !sent {
		p.putF64(acc)
	}
}

// AllreduceF64 reduces buf elementwise across all ranks and leaves the result
// in every rank's buf (reduce-to-0 + broadcast; 2⌈log2 p⌉ rounds).
func (p *Proc) AllreduceF64(c *Comm, buf []float64, op Op) {
	p.ReduceF64(c, 0, buf, op)
	p.BcastF64(c, 0, buf)
}

// AllreduceScalar reduces a single float64 across the communicator. The
// one-element working buffer is a per-rank scratch: the collectives below
// only read it (and write the result back), never retain it.
func (p *Proc) AllreduceScalar(c *Comm, v float64, op Op) float64 {
	if p.scalarBuf == nil {
		p.scalarBuf = make([]float64, 1)
	}
	buf := p.scalarBuf
	buf[0] = v
	p.AllreduceF64(c, buf, op)
	return buf[0]
}

// GatherF64 gathers each rank's buf (equal lengths) onto root. On root the
// returned slice is the concatenation in rank order; other ranks get nil.
func (p *Proc) GatherF64(c *Comm, root int, buf []float64) []float64 {
	p.Stats.Collectives++
	base := p.collTag(c)
	me := p.rankIn(c)
	n := c.Size()
	if me != root {
		cp := p.getF64(len(buf))
		copy(cp, buf)
		p.sendTagged(c, root, base, payload{f64: cp, pooled: true}, 8*len(buf), modeStandard, true)
		return nil
	}
	out := make([]float64, len(buf)*n)
	reqs := make([]*Request, n)
	for r := 0; r < n; r++ {
		if r == me {
			copy(out[r*len(buf):], buf)
			continue
		}
		reqs[r] = p.Irecv(c, r, base)
	}
	for r := 0; r < n; r++ {
		if reqs[r] == nil {
			continue
		}
		data, _ := p.WaitF64(reqs[r])
		copy(out[r*len(buf):], data)
		if reqs[r].data.pooled {
			p.putF64(data)
		}
	}
	return out
}

// ScatterF64 scatters equal chunks of root's data to all ranks; each rank
// receives its chunk of the given length into buf.
func (p *Proc) ScatterF64(c *Comm, root int, data []float64, buf []float64) {
	p.Stats.Collectives++
	base := p.collTag(c)
	me := p.rankIn(c)
	n := c.Size()
	chunk := len(buf)
	if me == root {
		if len(data) != chunk*n {
			panic(fmt.Sprintf("psmpi: scatter size mismatch: %d != %d×%d", len(data), chunk, n))
		}
		reqs := make([]*Request, 0, n-1)
		for r := 0; r < n; r++ {
			if r == me {
				copy(buf, data[r*chunk:(r+1)*chunk])
				continue
			}
			part := p.getF64(chunk)
			copy(part, data[r*chunk:(r+1)*chunk])
			reqs = append(reqs, p.sendTagged(c, r, base, payload{f64: part, pooled: true}, 8*chunk, modeStandard, false))
		}
		p.Waitall(reqs...)
		return
	}
	pl := p.recvTagged(c, root, base)
	copy(buf, pl.slice())
	if pl.pooled {
		p.putF64(pl.f64)
	}
}

// AllgatherF64 gathers equal-length contributions from all ranks to all
// ranks using the ring algorithm (p−1 steps, each forwarding one block).
func (p *Proc) AllgatherF64(c *Comm, buf []float64) []float64 {
	p.Stats.Collectives++
	base := p.collTag(c)
	me := p.rankIn(c)
	n := c.Size()
	chunk := len(buf)
	out := make([]float64, chunk*n)
	copy(out[me*chunk:], buf)

	right := (me + 1) % n
	left := (me - 1 + n) % n
	cur := me
	for step := 0; step < n-1; step++ {
		block := p.getF64(chunk)
		copy(block, out[cur*chunk:(cur+1)*chunk])
		req := p.sendTagged(c, right, base+step, payload{f64: block, pooled: true}, 8*chunk, modeStandard, false)
		in := p.recvTagged(c, left, base+step)
		cur = (cur - 1 + n) % n
		copy(out[cur*chunk:], in.slice())
		if in.pooled {
			p.putF64(in.f64)
		}
		p.wait(req)
	}
	return out
}

// AlltoallF64 exchanges chunk i of each rank's data with rank i (pairwise
// exchange). data must have length chunk×p; the result likewise.
func (p *Proc) AlltoallF64(c *Comm, data []float64, chunk int) []float64 {
	p.Stats.Collectives++
	base := p.collTag(c)
	me := p.rankIn(c)
	n := c.Size()
	if len(data) != chunk*n {
		panic(fmt.Sprintf("psmpi: alltoall size mismatch: %d != %d×%d", len(data), chunk, n))
	}
	out := make([]float64, chunk*n)
	copy(out[me*chunk:], data[me*chunk:(me+1)*chunk])
	for k := 1; k < n; k++ {
		dst := (me + k) % n
		src := (me - k + n) % n
		block := p.getF64(chunk)
		copy(block, data[dst*chunk:(dst+1)*chunk])
		req := p.sendTagged(c, dst, base+k, payload{f64: block, pooled: true}, 8*chunk, modeStandard, false)
		in := p.recvTagged(c, src, base+k)
		copy(out[src*chunk:], in.slice())
		if in.pooled {
			p.putF64(in.f64)
		}
		p.wait(req)
	}
	return out
}
