package psmpi

import (
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

func newTestNet(sys *machine.System) *fabric.Network {
	return fabric.New(sys, fabric.Config{})
}

// TestInterCommStagingCost verifies that inter-communicator traffic pays the
// staged-path cost (the non-RDMA spawn-intercomm path of ParaStation) while
// intra-communicator traffic does not.
func TestInterCommStagingCost(t *testing.T) {
	const bytes = 1 << 20

	intra := func() vclock.Time {
		rt := testRuntime(2, 0)
		var done vclock.Time
		runJob(t, rt, 2, func(p *Proc) error {
			if p.Rank() == 0 {
				p.Send(p.World(), 1, 0, nil, bytes)
				return nil
			}
			p.Recv(p.World(), 0, 0)
			done = p.Now()
			return nil
		})
		return done
	}()

	inter := func() vclock.Time {
		rt := testRuntime(1, 1)
		rt.cfg.SpawnOverhead = vclock.Microsecond
		var done vclock.Time
		rt.Register("sink", func(p *Proc) error {
			p.Recv(p.Parent(), 0, 0)
			done = p.Now()
			return nil
		})
		runJob(t, rt, 1, func(p *Proc) error {
			ic, err := p.Spawn(p.World(), SpawnSpec{Binary: "sink", Procs: 1, Module: machine.Booster})
			if err != nil {
				return err
			}
			p.Send(ic, 0, 0, nil, bytes)
			return nil
		})
		return done
	}()

	// Staging at 0.55 GB/s on both ends adds ~2×1.9 ms for 1 MiB — the
	// inter path must be markedly slower than the RDMA intra path.
	if inter < intra+3*vclock.Millisecond {
		t.Errorf("intercomm staging unnoticeable: intra %v vs inter %v", intra, inter)
	}
}

// TestInterCommStagingConfigurable checks the constant can be tuned.
func TestInterCommStagingConfigurable(t *testing.T) {
	sysTime := func(staging float64) vclock.Time {
		sys := machine.New(1, 1)
		rt := NewRuntime(sys, newTestNet(sys), Config{
			SpawnOverhead:       vclock.Microsecond,
			InterCommStagingGBs: staging,
		})
		var done vclock.Time
		rt.Register("sink", func(p *Proc) error {
			p.Recv(p.Parent(), 0, 0)
			done = p.Now()
			return nil
		})
		nodes := sys.Module(machine.Cluster)[:1]
		if _, err := rt.Launch(LaunchSpec{Nodes: nodes, Main: func(p *Proc) error {
			ic, err := p.Spawn(p.World(), SpawnSpec{Binary: "sink", Procs: 1, Module: machine.Booster})
			if err != nil {
				return err
			}
			p.Send(ic, 0, 0, nil, 1<<20)
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
		return done
	}
	slow := sysTime(0.1)
	fast := sysTime(10)
	if slow <= fast {
		t.Errorf("staging bandwidth has no effect: %v vs %v", slow, fast)
	}
}

// TestZeroByteInterCommFree checks staging only applies to payload bytes.
func TestZeroByteInterCommFree(t *testing.T) {
	rt := testRuntime(1, 1)
	rt.cfg.SpawnOverhead = vclock.Microsecond
	var done vclock.Time
	rt.Register("sink", func(p *Proc) error {
		p.Recv(p.Parent(), 0, 0)
		done = p.Now()
		return nil
	})
	runJob(t, rt, 1, func(p *Proc) error {
		ic, err := p.Spawn(p.World(), SpawnSpec{Binary: "sink", Procs: 1, Module: machine.Booster})
		if err != nil {
			return err
		}
		p.Send(ic, 0, 0, nil, 0)
		return nil
	})
	// Zero-byte message across the intercomm: just latency + spawn, well
	// under a millisecond.
	if done > vclock.Millisecond {
		t.Errorf("zero-byte intercomm message cost %v", done)
	}
}
