package ioev

import (
	"fmt"
	"sync/atomic"
)

// Process-wide I/O event counters, maintained with atomics: storage models
// tick them from whatever sweep worker runs the owning scenario. They
// mirror engine's kernel counters — cheap monotonic aggregates for the
// -stats flag, never consulted by the models themselves (experiment metrics
// are computed deterministically from scenario state, not from these).
var global struct {
	containerBytes atomic.Uint64
	cacheFlushes   atomic.Uint64
	buddyCopies    atomic.Uint64
}

// AddContainerBytes records n bytes committed to a SION container (block
// flushes, block table, header).
func AddContainerBytes(n int64) {
	if n > 0 {
		global.containerBytes.Add(uint64(n))
	}
}

// CountCacheFlush records one completed cache-domain flush to global
// storage (ticked at the flush-completion kernel event).
func CountCacheFlush() { global.cacheFlushes.Add(1) }

// CountBuddyCopy records one buddy-checkpoint copy committed on a
// companion node's device.
func CountBuddyCopy() { global.buddyCopies.Add(1) }

// Stats is a snapshot of the process-wide I/O event counters.
type Stats struct {
	// ContainerBytes is the total bytes committed to SION containers.
	ContainerBytes uint64
	// CacheFlushes is the number of cache-domain flushes completed.
	CacheFlushes uint64
	// BuddyCopies is the number of buddy-checkpoint copies committed.
	BuddyCopies uint64
}

// Global snapshots the process-wide I/O counters.
func Global() Stats {
	return Stats{
		ContainerBytes: global.containerBytes.Load(),
		CacheFlushes:   global.cacheFlushes.Load(),
		BuddyCopies:    global.buddyCopies.Load(),
	}
}

// String renders the counters in the -stats flag format.
func (s Stats) String() string {
	return fmt.Sprintf("container_bytes=%d cache_flushes=%d buddy_copies=%d",
		s.ContainerBytes, s.CacheFlushes, s.BuddyCopies)
}
