// Package ioev is the seam between the I/O stack and the discrete-event
// kernel. It gives the storage packages (beegfs, nvme, sion, nam) two ways
// to express "this operation finishes at virtual time t" without threading
// raw `ready vclock.Time` values through their public APIs:
//
//   - The parking layer: methods take an ioev.Proc — any actor with a clock
//     and the ability to sleep on it, in practice a *psmpi.Proc — issue their
//     device/fabric reservations at p.Now(), and park the caller with Await
//     until the data is durable. Under the kernel the park is a scheduled
//     wakeup event; the baton hand-off serialises every storage touch.
//
//   - The submission layer: Submit* methods thread an opaque completion
//     token (Op) instead of parking. Composed paths — a SION writer fanning
//     a flush across stripe targets, SCR issuing a local put and a buddy
//     copy from the same instant — chain Submit calls to price overlapping
//     operations from one dependency point and park exactly once at the
//     join. The token wraps a virtual instant but deliberately does not
//     expose mutation: only ioev can mint one from a raw time, so storage
//     APIs cannot regrow hand-threaded timestamp plumbing.
//
// The package also owns the process-global I/O event counters surfaced by
// `cbctl run -stats` and `deepsim -stats` (container bytes, cache-domain
// flushes, buddy copies), mirroring engine.Global for kernel events.
package ioev

import (
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Proc is the actor on whose virtual clock an I/O operation is issued and
// awaited. *psmpi.Proc satisfies it inside a kernel job; Detach builds a
// free-standing implementation for pricing I/O outside any kernel (tests,
// benchmarks, post-run sweep accounting).
type Proc interface {
	// Node returns the machine node the actor runs on (the I/O initiator
	// for fabric transfers). Detached actors may return nil; operations
	// that cross the fabric require a non-nil node.
	Node() *machine.Node
	// Now returns the actor's current virtual time.
	Now() vclock.Time
	// Elapse advances the actor's clock by d, yielding to the kernel so
	// other tasks run during the span. Elapse(0) still yields the baton.
	Elapse(d vclock.Time)
	// CallAt schedules fn to run as a kernel event at virtual time at,
	// holding the baton. Detached actors run fn inline at issue time.
	CallAt(at vclock.Time, fn func())
}

// Op is the completion token of a submitted I/O operation: an opaque handle
// for "done at virtual time t". Storage packages accept an Op as the
// dependency of a Submit* call and return a new Op for the completion;
// callers join tokens with After and park on the result with Await.
type Op struct {
	t vclock.Time
}

// At mints a completion token for a raw virtual instant. This is the SPI
// for storage-backend implementations and timing tests; application code
// starts from Start(p) and composes with After.
func At(t vclock.Time) Op { return Op{t: t} }

// Start returns a token for the actor's current instant — the dependency
// root of a Submit chain issued "now".
func Start(p Proc) Op { return Op{t: p.Now()} }

// Time returns the virtual instant the operation completes.
func (o Op) Time() vclock.Time { return o.t }

// After joins completion tokens: the returned Op completes when every input
// has (the latest instant). After() with no arguments is the zero instant.
func After(ops ...Op) Op {
	var t vclock.Time
	for _, o := range ops {
		if o.t > t {
			t = o.t
		}
	}
	return Op{t: t}
}

// Await parks the actor until op completes. If the operation is already in
// the actor's past the park degenerates to Elapse(0), which still yields —
// every storage call is a scheduling point, exactly like a kernel syscall.
func Await(p Proc, op Op) {
	d := op.t - p.Now()
	if d < 0 {
		d = 0
	}
	p.Elapse(d)
}

// Detached is a free-standing Proc for pricing I/O outside a kernel job:
// unit tests, benchmarks, and sweep post-run accounting construct one per
// logical rank and read the accumulated virtual time back with Now. Elapse
// advances a private clock without yielding (there is nothing to yield to),
// and CallAt runs the callback inline at issue time, so completion-event
// bookkeeping (e.g. cache-flush accounting) is visible immediately.
type Detached struct {
	node *machine.Node
	now  vclock.Time
}

// Detach builds a detached actor on node (nil is allowed when no fabric
// transfer will be issued) whose clock starts at start.
func Detach(node *machine.Node, start vclock.Time) *Detached {
	return &Detached{node: node, now: start}
}

// Node returns the actor's node; may be nil.
func (d *Detached) Node() *machine.Node { return d.node }

// Now returns the actor's private clock.
func (d *Detached) Now() vclock.Time { return d.now }

// Elapse advances the private clock.
func (d *Detached) Elapse(dur vclock.Time) {
	if dur < 0 {
		panic("ioev: Elapse with negative duration")
	}
	d.now += dur
}

// CallAt runs fn inline: a detached actor has no event queue, so deferred
// bookkeeping happens at issue time (the instant at is discarded).
func (d *Detached) CallAt(_ vclock.Time, fn func()) { fn() }
