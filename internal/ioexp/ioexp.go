// Package ioexp is the fig-io workload: the DEEP-ER I/O strategies of
// §III-C driven as real MPI-style jobs on the discrete-event kernel. One
// run boots a fresh system, launches one rank per node, and has every rank
// push a checkpoint-sized payload through one I/O strategy — SIONlib
// containers (global BeeGFS or node-local NVMe), BeeOND cache domains
// (write-through or async), buddy copies, or the network-attached memory.
//
// Each strategy reports two instants the paper's I/O discussion cares
// about: when the application regains control (Return) and when the data
// is safe at the strategy's destination (Durable). The gap between the two
// is exactly what asynchronous staging buys.
package ioexp

import (
	"bytes"
	"fmt"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/core"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sion"
	"clusterbooster/internal/vclock"
)

// Strategy selects the I/O path every rank writes through.
type Strategy string

const (
	// SIONGlobal concentrates all rank streams into one SIONlib container
	// on the global BeeGFS (task-local I/O, §III-C).
	SIONGlobal Strategy = "sion-global"
	// SIONLocal writes a per-rank SIONlib container onto the rank's own
	// node-local NVMe.
	SIONLocal Strategy = "sion-local"
	// CacheSync writes through a BeeOND cache domain in write-through mode:
	// the write returns only when the global FS holds the data.
	CacheSync Strategy = "cache-sync"
	// CacheAsync writes into a BeeOND cache domain asynchronously: the
	// write returns at NVMe speed, the flush to the global FS completes in
	// the background and is awaited by a final drain.
	CacheAsync Strategy = "cache-async"
	// Buddy stores the payload on the local NVMe and ships a redundant
	// copy to the neighbour rank's NVMe (SCR's buddy level).
	Buddy Strategy = "buddy"
	// NAM writes the payload into the network-attached memory by RDMA.
	NAM Strategy = "nam"
)

// Strategies lists every strategy in fig-io's row order.
func Strategies() []Strategy {
	return []Strategy{SIONGlobal, SIONLocal, CacheSync, CacheAsync, Buddy, NAM}
}

// Params is one fig-io grid point.
type Params struct {
	Strategy Strategy
	Nodes    int   // ranks, one per Cluster node
	Size     int64 // payload bytes per rank
}

// Outcome aggregates a run. All instants are virtual job time.
type Outcome struct {
	Makespan vclock.Time // job end (last rank exits)
	Return   vclock.Time // max over ranks: application regains control
	Durable  vclock.Time // all payloads safe at the strategy's destination
	Bytes    int64       // total payload bytes across ranks
}

// Run executes one grid point on a freshly booted system.
func Run(p Params) (Outcome, error) {
	if p.Nodes <= 0 || p.Size <= 0 {
		return Outcome{}, fmt.Errorf("ioexp: invalid params %+v", p)
	}
	sys := core.New(p.Nodes, 0, core.Options{})
	nodes, err := sys.ClusterNodes(p.Nodes)
	if err != nil {
		return Outcome{}, err
	}

	const blockSize = 256 << 10
	var ret, durable vclock.Time
	note := func(dst *vclock.Time, t vclock.Time) {
		// The kernel is cooperative: ranks never run host-concurrently, so
		// plain max-accumulation is safe.
		*dst = vclock.Max(*dst, t)
	}

	// Strategy-shared fixtures built before the job, priced from instant 0.
	var w *sion.Writer
	var cache *beegfs.Cache
	regions := map[int]func(ioev.Proc) error{}
	switch p.Strategy {
	case SIONGlobal:
		w, _, err = sion.SubmitCreate(sys.FS, "/io/all.sion", p.Nodes, blockSize, nodes[0], ioev.At(0))
		if err != nil {
			return Outcome{}, err
		}
	case CacheSync:
		cache = beegfs.NewCache(sys.FS, beegfs.CacheSync, sys.NVMe)
	case CacheAsync:
		cache = beegfs.NewCache(sys.FS, beegfs.CacheAsync, sys.NVMe)
	case NAM:
		dev := sys.NAM[0]
		for rank, n := range nodes {
			r, err := dev.Alloc(fmt.Sprintf("io/%s", n.Name()), p.Size)
			if err != nil {
				return Outcome{}, err
			}
			regions[rank] = func(q ioev.Proc) error { return r.Write(q, p.Size) }
		}
	}

	payload := func(rank int) []byte {
		return bytes.Repeat([]byte{byte('a' + rank%26)}, int(p.Size))
	}

	res, err := sys.Runtime.Launch(psmpi.LaunchSpec{Nodes: nodes, Main: func(q *psmpi.Proc) error {
		rank := q.Rank()
		switch p.Strategy {
		case SIONGlobal:
			if err := w.WriteTask(q, rank, payload(rank)); err != nil {
				return err
			}
			note(&ret, q.Now())
			q.Barrier(q.World())
			if rank == 0 {
				if err := w.Close(q); err != nil {
					return err
				}
				note(&durable, q.Now())
			}
		case SIONLocal:
			b := sion.NewDeviceBackend(sys.NVMe[q.Node().ID])
			lw, err := sion.Create(q, b, "/io/local.sion", 1, blockSize)
			if err != nil {
				return err
			}
			if err := lw.WriteTask(q, 0, payload(rank)); err != nil {
				return err
			}
			if err := lw.Close(q); err != nil {
				return err
			}
			note(&ret, q.Now())
			note(&durable, q.Now())
		case CacheSync, CacheAsync:
			if err := cache.Write(q, fmt.Sprintf("/io/rank%d", rank), payload(rank)); err != nil {
				return err
			}
			note(&ret, q.Now())
			q.Barrier(q.World())
			if rank == 0 {
				cache.Drain(q)
				note(&durable, q.Now())
			}
		case Buddy:
			// The app continues once the local copy landed; the redundant
			// copy to the neighbour's NVMe trails behind it (SCR's buddy
			// level, but measured as the two instants it splits into).
			name := fmt.Sprintf("io/rank%d", rank)
			if err := sys.NVMe[q.Node().ID].Put(q, name, p.Size); err != nil {
				return err
			}
			note(&ret, q.Now())
			buddy := nodes[(rank+1)%p.Nodes]
			if err := sion.Buddy(q, sys.Network, buddy, sys.NVMe[buddy.ID], name, payload(rank)); err != nil {
				return err
			}
			note(&durable, q.Now())
		case NAM:
			if err := regions[rank](q); err != nil {
				return err
			}
			note(&ret, q.Now())
			note(&durable, q.Now())
		default:
			return fmt.Errorf("ioexp: unknown strategy %q", p.Strategy)
		}
		return nil
	}})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Makespan: res.Makespan,
		Return:   ret,
		Durable:  durable,
		Bytes:    int64(p.Nodes) * p.Size,
	}, nil
}
