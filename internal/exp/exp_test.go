package exp

import (
	"bytes"
	"strings"
	"testing"
)

// paperOrder is the catalog contract: the five paper artifacts in reading
// order, the past-prototype scaling continuation, the resilience family
// (§III-D live on the kernel), the I/O strategy family (§III-C live on the
// kernel), the facility family (§II-A's batch system live on the kernel)
// with its failing-machine extension, then the standing sweeps. cbctl list
// and deepsim all follow it.
var paperOrder = []string{
	"table1", "table2", "fig3", "fig7", "fig8", "fig8-scale", "fig8-scale4096",
	"fig8-scale16384", "fig-resilience", "fig-io", "fig-facility", "facility-10k",
	"fig-facility-resilience",
	"sweep/fig3", "sweep/fig7", "sweep/fig8", "sweep/paper", "sweep/xpic-weak",
}

func TestCatalogComplete(t *testing.T) {
	names := Names()
	if len(names) != len(paperOrder) {
		t.Fatalf("registry has %d experiments %v, want %d %v", len(names), names, len(paperOrder), paperOrder)
	}
	for i, want := range paperOrder {
		if names[i] != want {
			t.Errorf("registry order[%d] = %q, want %q", i, names[i], want)
		}
	}
	for _, e := range All() {
		if e.Version < 1 {
			t.Errorf("%s: version %d", e.Name, e.Version)
		}
		if e.Run == nil {
			t.Errorf("%s: no run function", e.Name)
		}
		if e.Render == nil {
			t.Errorf("%s: no renderer", e.Name)
		}
		if e.Title == "" || e.Grid == "" || e.Profile == "" {
			t.Errorf("%s: incomplete description (title=%q grid=%q profile=%q)", e.Name, e.Title, e.Grid, e.Profile)
		}
	}
}

func TestGetAndResolve(t *testing.T) {
	if _, ok := Get("fig7"); !ok {
		t.Fatal("fig7 not registered")
	}
	if _, ok := Get("fig9"); ok {
		t.Fatal("fig9 should not resolve")
	}
	exps, err := Resolve([]string{"table1", "sweep/paper"})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].Name != "table1" || exps[1].Name != "sweep/paper" {
		t.Fatalf("resolve returned %v", exps)
	}
	if _, err := Resolve([]string{"nope"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("resolve(nope) err = %v", err)
	}
}

func TestRegisterRejectsBadDefinitions(t *testing.T) {
	cases := map[string]Experiment{
		"bad name":    {Name: "Fig 7!", Version: 1, Run: func(Options) (Document, error) { return Document{}, nil }},
		"no version":  {Name: "valid-name", Run: func(Options) (Document, error) { return Document{}, nil }},
		"no run":      {Name: "valid-name", Version: 1},
		"duplicate":   {Name: "fig7", Version: 1, Run: func(Options) (Document, error) { return Document{}, nil }},
		"empty name":  {Version: 1, Run: func(Options) (Document, error) { return Document{}, nil }},
		"slash start": {Name: "/fig7", Version: 1, Run: func(Options) (Document, error) { return Document{}, nil }},
	}
	for name, e := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", e)
				}
			}()
			Register(e)
		})
	}
}

func TestCheckBudgets(t *testing.T) {
	e := Experiment{
		Budgets: []Budget{
			{Measure: "makespan_s", Kind: MaxBudget, Bound: 2.0},
			{Measure: "efficiency", Kind: MinBudget, Bound: 0.7},
			{Measure: "absent", Kind: MaxBudget, Bound: 1.0},
		},
	}
	doc := Document{Measures: map[string]float64{
		"makespan_s": 2.5, // over max
		"efficiency": 0.8, // fine
	}}
	viols := e.CheckBudgets(doc)
	if len(viols) != 2 {
		t.Fatalf("got %d violations %v, want 2", len(viols), viols)
	}
	if viols[0].Budget.Measure != "makespan_s" || viols[0].Missing {
		t.Errorf("first violation = %+v", viols[0])
	}
	if viols[1].Budget.Measure != "absent" || !viols[1].Missing {
		t.Errorf("second violation = %+v", viols[1])
	}

	doc.Measures["makespan_s"] = 2.0 // exactly at the bound passes
	doc.Measures["absent"] = 0.5
	if viols := e.CheckBudgets(doc); len(viols) != 0 {
		t.Fatalf("at-bound measures should pass, got %v", viols)
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	e, _ := Get("table1")
	var prev []byte
	for i := 0; i < 3; i++ {
		doc, err := e.Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := doc.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("run %d produced different canonical bytes", i)
		}
		prev = b
	}
	if !bytes.HasSuffix(prev, []byte("\n")) {
		t.Error("canonical form must end in a newline")
	}
	doc, err := ParseDocument(prev)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "table1" || doc.Version != 1 {
		t.Errorf("round-trip = %s v%d", doc.Experiment, doc.Version)
	}
}

// The sweep engine is host-parallel; a registry run must emit identical
// documents regardless of the worker count.
func TestDocumentIndependentOfWorkers(t *testing.T) {
	e, _ := Get("fig3")
	var prev []byte
	for _, workers := range []int{1, 4} {
		doc, err := e.Run(Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		b, err := doc.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, b) {
			t.Fatalf("workers=%d changed the canonical document", workers)
		}
		prev = b
	}
}

func TestRenderFromDocument(t *testing.T) {
	e, _ := Get("table2")
	doc, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := e.Render(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table II", "4096 (grid 64x64)", "Time steps"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table2 missing %q:\n%s", want, text)
		}
	}
}
