package exp

import (
	"testing"

	"clusterbooster/internal/core"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/xpic"
)

// deepScaleConfig stretches the scale16384 geometry once more: 131072 rows
// decompose to the 2-rows-per-rank floor at n = 65536, with the step
// pipeline cut to the bone so a 65537-task kernel stays a minutes-scale
// test, not an experiment.
func deepScaleConfig() xpic.Config {
	cfg := Scale16384Profile()
	cfg.NY = 131072
	cfg.Steps = 1
	cfg.CGMaxIter = 2
	return cfg
}

// TestDeepScale65536 runs the n=65536 Booster-only point — the largest job
// this repo simulates — serial and on the conservative parallel kernel, and
// requires bit-identical reports. Excluded from -short: the pair of runs
// costs wall-clock minutes.
func TestDeepScale65536(t *testing.T) {
	if testing.Short() {
		t.Skip("n=65536 deep-scale point: minutes of wall clock, skipped in -short")
	}
	const n = 65536
	cfg := deepScaleConfig()
	run := func(kworkers int) xpic.Report {
		t.Helper()
		prev := psmpi.DefaultKernelWorkers()
		psmpi.SetDefaultKernelWorkers(kworkers)
		defer psmpi.SetDefaultKernelWorkers(prev)
		sys := core.New(n, n, core.Options{WithoutStorage: true})
		rep, err := sys.RunXPic(xpic.BoosterOnly, n, cfg)
		if err != nil {
			t.Fatalf("kworkers=%d: %v", kworkers, err)
		}
		return rep
	}
	serial := run(1)
	par := run(4)
	if serial != par {
		t.Errorf("n=65536 parallel kernel diverged from serial:\n serial   %+v\n parallel %+v", serial, par)
	}
	if serial.Makespan <= 0 || serial.RanksPerSolver != n {
		t.Errorf("implausible deep-scale report: %+v", serial)
	}
}
