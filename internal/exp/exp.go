// Package exp is the experiment registry: every paper artifact (Table I,
// Table II, Fig. 3, Fig. 7, Fig. 8) and every standing sweep definition is
// registered as a named, versioned experiment with a uniform interface. An
// experiment declares its scenario grid, runs through internal/sweep, and
// emits a canonical JSON document; golden baselines for every experiment are
// checked into internal/exp/testdata/ and embedded into the binary, so a
// fresh run can be diffed byte-for-byte against the recorded one from any
// working directory (cmd/cbctl is the CLI for list/run/diff/bless).
//
// Experiments also declare virtual-time perf budgets: bounds on scalar
// measures (simulated makespans, latencies, efficiencies) that must hold on
// every run. A model change that is blessed into new goldens still fails
// `cbctl diff` if it pushes a simulated runtime past its declared budget.
//
// The registry is the single catalog the CLIs, the CI golden gate, and
// future workloads plug into; see EXPERIMENTS.md for the catalog and
// workflow.
package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"sync"

	"clusterbooster/internal/sweep"
	"clusterbooster/internal/xpic"
)

// Options tunes an experiment run. Options never change what an experiment
// measures at a given workload — only scheduling, observation, and (for
// interactive use) the workload override.
type Options struct {
	// Workers bounds the sweep worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Observer, if set, receives per-scenario progress events.
	Observer func(sweep.Event)
	// Workload overrides the experiment's pinned xPic configuration.
	// Experiments that do not run xPic ignore it. Golden runs (diff, bless)
	// always leave it nil so baselines stay pinned to the registry profile.
	Workload *xpic.Config
	// Context, if non-nil, cancels the run: no further scenario starts once
	// it is done and the experiment reports the cancellation as a run error
	// (canceled scenarios fail, and FirstError surfaces them). Used by
	// `cbctl serve` to abort abandoned requests.
	Context context.Context
}

// Document is the canonical outcome of one experiment run: a stable,
// deterministic JSON form that goldens, diffs and downstream tooling share.
type Document struct {
	// Experiment and Version echo the registered definition that produced
	// the document; a version bump always invalidates the golden.
	Experiment string `json:"experiment"`
	Version    int    `json:"version"`
	// Meta records run provenance that is part of the contract (e.g. the
	// workload profile). Maps marshal with sorted keys, so Meta is
	// deterministic to serialise.
	Meta map[string]string `json:"meta,omitempty"`
	// Measures are the scalar summary values of the run — the quantities
	// perf budgets are declared against.
	Measures map[string]float64 `json:"measures,omitempty"`
	// Payload is the full experiment-specific result (rows, series, or a
	// raw sweep.ResultSet), in its canonical JSON encoding.
	Payload json.RawMessage `json:"payload"`
}

// Canonical returns the document's canonical byte form: indented JSON with a
// trailing newline. Two runs of a deterministic experiment produce identical
// canonical bytes regardless of worker count or host scheduling.
func (d Document) Canonical() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("exp: canonicalise %s: %w", d.Experiment, err)
	}
	return append(b, '\n'), nil
}

// NDJSON returns the document as one compact JSON line (newline-terminated)
// — the `cbctl serve` stream format, also emitted by `cbctl run -ndjson` so
// the two paths are byte-comparable. Like Canonical, the bytes are
// deterministic for a deterministic experiment.
func (d Document) NDJSON() ([]byte, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("exp: ndjson %s: %w", d.Experiment, err)
	}
	return append(b, '\n'), nil
}

// ParseDocument decodes a canonical document.
func ParseDocument(b []byte) (Document, error) {
	var d Document
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("exp: parse document: %w", err)
	}
	return d, nil
}

// BudgetKind says which side of the bound is acceptable.
type BudgetKind int

const (
	// MaxBudget fails when the measure exceeds the bound (runtime-like
	// measures: simulated makespans, latencies, overhead fractions).
	MaxBudget BudgetKind = iota
	// MinBudget fails when the measure falls below the bound
	// (goodness-like measures: bandwidths, efficiencies, speed-ups).
	MinBudget
)

// String names the kind for reports.
func (k BudgetKind) String() string {
	if k == MinBudget {
		return "min"
	}
	return "max"
}

// Budget bounds one scalar measure of an experiment in virtual time. Budgets
// hold regardless of goldens: bless re-records the baseline, but a budget
// violation still fails cbctl diff until the declared bound itself is
// revised.
type Budget struct {
	Measure string
	Kind    BudgetKind
	Bound   float64
}

// Violation describes one budget check failure.
type Violation struct {
	Budget Budget
	// Value is the measured value, NaN when the measure is missing.
	Value   float64
	Missing bool
}

// String renders the violation for reports.
func (v Violation) String() string {
	if v.Missing {
		return fmt.Sprintf("budget %s: measure missing from document", v.Budget.Measure)
	}
	op := ">"
	if v.Budget.Kind == MinBudget {
		op = "<"
	}
	return fmt.Sprintf("budget %s: %g %s %s %g",
		v.Budget.Measure, v.Value, op, v.Budget.Kind, v.Budget.Bound)
}

// CheckBudgets evaluates the experiment's budgets against a document's
// measures and returns the violations (nil when all budgets hold).
func (e Experiment) CheckBudgets(d Document) []Violation {
	var out []Violation
	for _, b := range e.Budgets {
		v, ok := d.Measures[b.Measure]
		if !ok {
			out = append(out, Violation{Budget: b, Value: math.NaN(), Missing: true})
			continue
		}
		if (b.Kind == MaxBudget && v > b.Bound) || (b.Kind == MinBudget && v < b.Bound) {
			out = append(out, Violation{Budget: b, Value: v})
		}
	}
	return out
}

// Experiment is one registered entry of the catalog.
type Experiment struct {
	// Name is the registry key ("fig7", "sweep/paper", ...). Lowercase
	// letters, digits, '-', '_' and '/' only.
	Name string
	// Title is the one-line human description shown by cbctl list.
	Title string
	// Version tags the experiment definition. Bump it on any intentional
	// change to the grid, workload, or document shape; the version is part
	// of the document, so stale goldens fail the diff loudly.
	Version int
	// Grid describes the scenario grid in human terms.
	Grid string
	// Profile names the pinned workload ("ci-quick", "paper", "n/a").
	Profile string
	// Tolerance maps payload metric keys (the leaf JSON object key, e.g.
	// "latency_us") to a relative tolerance for `cbctl diff -tolerance`.
	// The key "*" applies to every numeric leaf not matched explicitly.
	Tolerance map[string]float64
	// Budgets are the experiment's virtual-time perf bounds.
	Budgets []Budget
	// Run executes the experiment and returns its canonical document.
	Run func(Options) (Document, error)
	// Render renders a document as paper-style text (optional).
	Render func(Document) (string, error)
}

// document stamps a payload into this experiment's Document envelope.
func (e Experiment) document(meta map[string]string, measures map[string]float64, payload any) (Document, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return Document{}, fmt.Errorf("exp: %s: marshal payload: %w", e.Name, err)
	}
	return Document{
		Experiment: e.Name,
		Version:    e.Version,
		Meta:       meta,
		Measures:   measures,
		Payload:    raw,
	}, nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
	// order preserves registration order: the paper reads Table I, Table II,
	// Fig. 3, Fig. 7, Fig. 8, and cbctl list / deepsim all follow it.
	order []string
)

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*(/[a-z0-9][a-z0-9_-]*)*$`)

// Register adds an experiment to the catalog. It panics on an invalid
// definition or a duplicate name: registration happens at init time and a
// broken catalog should never boot.
func Register(e Experiment) {
	if !nameRe.MatchString(e.Name) {
		panic(fmt.Sprintf("exp: invalid experiment name %q", e.Name))
	}
	if e.Version < 1 {
		panic(fmt.Sprintf("exp: experiment %q must have version >= 1", e.Name))
	}
	if e.Run == nil {
		panic(fmt.Sprintf("exp: experiment %q has no run function", e.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment %q", e.Name))
	}
	registry[e.Name] = e
	order = append(order, e.Name)
}

// Get looks an experiment up by name.
func Get(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// All returns every registered experiment in registration (paper) order.
func All() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Experiment, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Names returns every registered name in registration (paper) order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), order...)
}

// ProgressObserver returns a sweep observer that logs per-scenario progress
// to w, prefixed with the CLI's name — shared by cbctl and deepsim so the
// two commands cannot drift apart.
func ProgressObserver(w io.Writer, prefix string) func(sweep.Event) {
	return func(ev sweep.Event) {
		switch ev.Kind {
		case sweep.ScenarioStart:
			fmt.Fprintf(w, "%s: start %s\n", prefix, ev.Name)
		case sweep.ScenarioDone:
			status := "done "
			if ev.Err != nil {
				status = "FAIL "
			}
			fmt.Fprintf(w, "%s: %s %s\n", prefix, status, ev.Name)
		}
	}
}

// Resolve maps experiment names to their definitions, failing on the first
// unknown name with a did-you-mean listing.
func Resolve(names []string) ([]Experiment, error) {
	out := make([]Experiment, 0, len(names))
	for _, name := range names {
		e, ok := Get(name)
		if !ok {
			known := Names()
			sort.Strings(known)
			return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", name, known)
		}
		out = append(out, e)
	}
	return out, nil
}
