// Golden diffing. The default comparison is byte-for-byte: experiments are
// deterministic in virtual time, so a fresh canonical document must equal
// the recorded golden exactly. Tolerance mode relaxes numeric leaves by the
// experiment's declared per-metric relative tolerances (for measures that
// are wall-clock-like or expected to wobble across model refinements), while
// everything structural — names, versions, shapes, strings — stays exact.
package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// DiffStatus classifies a golden comparison.
type DiffStatus int

const (
	// Identical: the canonical bytes match exactly.
	Identical DiffStatus = iota
	// WithinTolerance: bytes differ, but every difference is a numeric
	// leaf within the experiment's declared tolerance (tolerance mode only).
	WithinTolerance
	// Drifted: at least one difference survives the comparison.
	Drifted
)

// String names the status for reports.
func (s DiffStatus) String() string {
	switch s {
	case Identical:
		return "identical"
	case WithinTolerance:
		return "within tolerance"
	default:
		return "drifted"
	}
}

// Drift is one surviving difference between golden and fresh documents.
type Drift struct {
	// Path locates the difference ("payload.results[3].metrics.makespan_s").
	Path string
	// Golden and Fresh are the rendered values on each side ("<absent>"
	// when a key exists on only one side).
	Golden, Fresh string
	// RelDelta is the relative difference for numeric drifts (0 otherwise).
	RelDelta float64
}

// String renders the drift for reports.
func (d Drift) String() string {
	if d.RelDelta > 0 {
		return fmt.Sprintf("%s: golden %s, fresh %s (rel. delta %.3g)", d.Path, d.Golden, d.Fresh, d.RelDelta)
	}
	return fmt.Sprintf("%s: golden %s, fresh %s", d.Path, d.Golden, d.Fresh)
}

// DiffReport is the outcome of comparing one fresh run against its golden.
type DiffReport struct {
	Experiment string
	Status     DiffStatus
	// Drifts are the differences that fail the comparison.
	Drifts []Drift
	// Tolerated are numeric differences absorbed by tolerance mode.
	Tolerated []Drift
	// Violations are the experiment's budget-check failures on the fresh
	// document; they fail the diff independently of golden drift.
	Violations []Violation
}

// Clean reports whether the comparison passed: no surviving drift and no
// budget violation.
func (r DiffReport) Clean() bool {
	return r.Status != Drifted && len(r.Violations) == 0
}

// Diff compares a fresh canonical document against the golden bytes.
// tolerant enables the experiment's per-metric relative tolerances; the
// default is byte-for-byte.
func Diff(e Experiment, golden, fresh []byte, tolerant bool) (DiffReport, error) {
	rep := DiffReport{Experiment: e.Name}

	doc, err := ParseDocument(fresh)
	if err != nil {
		return rep, fmt.Errorf("exp: %s: fresh document: %w", e.Name, err)
	}
	rep.Violations = e.CheckBudgets(doc)

	if bytes.Equal(golden, fresh) {
		rep.Status = Identical
		return rep, nil
	}

	var g, f any
	if err := decodeNumbers(golden, &g); err != nil {
		return rep, fmt.Errorf("exp: %s: golden document: %w", e.Name, err)
	}
	if err := decodeNumbers(fresh, &f); err != nil {
		return rep, fmt.Errorf("exp: %s: fresh document: %w", e.Name, err)
	}

	d := differ{exp: e, tolerant: tolerant}
	d.walk("", nil, g, f)
	rep.Drifts, rep.Tolerated = d.drifts, d.tolerated
	switch {
	case len(rep.Drifts) > 0:
		rep.Status = Drifted
	case len(rep.Tolerated) > 0:
		rep.Status = WithinTolerance
	default:
		// Bytes differed but the decoded trees match (e.g. formatting-only
		// difference, hand-edited golden). Treat as drift: goldens are
		// canonical bytes, and a re-bless repairs the formatting.
		rep.Status = Drifted
		rep.Drifts = append(rep.Drifts, Drift{
			Path:   "(document)",
			Golden: "canonical bytes", Fresh: "equivalent JSON, non-canonical bytes",
		})
	}
	return rep, nil
}

// decodeNumbers unmarshals preserving the numeric literals.
func decodeNumbers(b []byte, into *any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	return dec.Decode(into)
}

type differ struct {
	exp       Experiment
	tolerant  bool
	drifts    []Drift
	tolerated []Drift
}

// walk compares two decoded JSON values. path is the location; chain is the
// stack of enclosing object keys, leaf-last (the names tolerances are
// declared against — the metric key may be an ancestor of the numeric leaf,
// as in Fig. 3's per-pair maps under "latency_us").
func (d *differ) walk(path string, chain []string, golden, fresh any) {
	switch g := golden.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			d.record(path, render(golden), render(fresh), 0)
			return
		}
		for _, k := range unionKeys(g, f) {
			gv, gok := g[k]
			fv, fok := f[k]
			sub := joinPath(path, k)
			switch {
			case !gok:
				d.record(sub, "<absent>", render(fv), 0)
			case !fok:
				d.record(sub, render(gv), "<absent>", 0)
			default:
				d.walk(sub, append(chain, k), gv, fv)
			}
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			d.record(path, render(golden), render(fresh), 0)
			return
		}
		if len(g) != len(f) {
			d.record(path, fmt.Sprintf("%d elements", len(g)), fmt.Sprintf("%d elements", len(f)), 0)
		}
		for i := 0; i < len(g) && i < len(f); i++ {
			d.walk(fmt.Sprintf("%s[%d]", path, i), chain, g[i], f[i])
		}
	case json.Number:
		f, ok := fresh.(json.Number)
		if !ok {
			d.record(path, g.String(), render(fresh), 0)
			return
		}
		if g.String() == f.String() {
			return
		}
		gv, gerr := g.Float64()
		fv, ferr := f.Float64()
		if gerr != nil || ferr != nil {
			d.record(path, g.String(), f.String(), 0)
			return
		}
		rel := relDelta(gv, fv)
		if d.tolerant {
			if tol, ok := d.tolerance(chain); ok && rel <= tol {
				d.tolerated = append(d.tolerated, Drift{Path: path, Golden: g.String(), Fresh: f.String(), RelDelta: rel})
				return
			}
		}
		d.record(path, g.String(), f.String(), rel)
	default:
		if golden != fresh {
			d.record(path, render(golden), render(fresh), 0)
		}
	}
}

func (d *differ) record(path, golden, fresh string, rel float64) {
	d.drifts = append(d.drifts, Drift{Path: path, Golden: golden, Fresh: fresh, RelDelta: rel})
}

// tolerance resolves the relative tolerance for a numeric leaf: the nearest
// enclosing key with an explicit entry wins (leaf first, then ancestors),
// then the "*" wildcard.
func (d *differ) tolerance(chain []string) (float64, bool) {
	for i := len(chain) - 1; i >= 0; i-- {
		if tol, ok := d.exp.Tolerance[chain[i]]; ok {
			return tol, true
		}
	}
	tol, ok := d.exp.Tolerance["*"]
	return tol, ok
}

// relDelta is the relative difference |a-b| / max(|a|, |b|); 0 for two
// zeros.
func relDelta(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

func unionKeys(a, b map[string]any) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// render shows a decoded JSON value compactly for drift messages.
func render(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case json.Number:
		return t.String()
	case string:
		return strconv.Quote(t)
	case bool:
		return strconv.FormatBool(t)
	case map[string]any:
		return fmt.Sprintf("object (%d keys)", len(t))
	case []any:
		return fmt.Sprintf("array (%d elements)", len(t))
	default:
		s := fmt.Sprint(v)
		if len(s) > 64 {
			s = s[:61] + "..."
		}
		return s
	}
}

// Summary renders the report as a short multi-line text block for CLI use.
func (r DiffReport) Summary(maxDrifts int) string {
	var sb strings.Builder
	for i, dr := range r.Drifts {
		if maxDrifts > 0 && i == maxDrifts {
			fmt.Fprintf(&sb, "  ... and %d more drifts\n", len(r.Drifts)-maxDrifts)
			break
		}
		fmt.Fprintf(&sb, "  drift  %s\n", dr)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  BUDGET %s\n", v)
	}
	return sb.String()
}
