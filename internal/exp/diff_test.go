package exp

import (
	"strings"
	"testing"
)

// doc builds canonical bytes for a minimal document with the given payload
// JSON.
func docBytes(t *testing.T, payload string) []byte {
	t.Helper()
	d := Document{Experiment: "t", Version: 1, Payload: []byte(payload)}
	b, err := d.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDiffIdentical(t *testing.T) {
	b := docBytes(t, `{"x": 1.5}`)
	rep, err := Diff(Experiment{Name: "t"}, b, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Identical || !rep.Clean() {
		t.Fatalf("report = %+v", rep)
	}
}

func TestDiffNumericDrift(t *testing.T) {
	golden := docBytes(t, `{"makespan_s": 2.0}`)
	fresh := docBytes(t, `{"makespan_s": 2.2}`)
	rep, err := Diff(Experiment{Name: "t"}, golden, fresh, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Drifted || len(rep.Drifts) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	d := rep.Drifts[0]
	if d.Path != "payload.makespan_s" || d.Golden != "2.0" || d.Fresh != "2.2" {
		t.Errorf("drift = %+v", d)
	}
	if d.RelDelta < 0.09 || d.RelDelta > 0.1 {
		t.Errorf("rel delta = %g", d.RelDelta)
	}
}

func TestDiffToleranceAbsorbs(t *testing.T) {
	e := Experiment{Name: "t", Tolerance: map[string]float64{"makespan_s": 0.1}}
	golden := docBytes(t, `{"makespan_s": 2.0, "steps": 60}`)
	fresh := docBytes(t, `{"makespan_s": 2.1, "steps": 60}`)

	// Exact mode still fails.
	rep, err := Diff(e, golden, fresh, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Drifted {
		t.Fatalf("exact mode: %+v", rep)
	}

	// Tolerance mode absorbs the 5% delta.
	rep, err = Diff(e, golden, fresh, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != WithinTolerance || !rep.Clean() || len(rep.Tolerated) != 1 {
		t.Fatalf("tolerant mode: %+v", rep)
	}

	// Beyond the declared tolerance fails even in tolerant mode.
	fresh = docBytes(t, `{"makespan_s": 2.5, "steps": 60}`)
	rep, err = Diff(e, golden, fresh, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Drifted {
		t.Fatalf("beyond tolerance: %+v", rep)
	}
}

// Tolerances bind to the nearest enclosing key: Fig. 3 numbers nest under
// pair labels ("latency_us": {"CN-CN": 1.0}), so the metric key is an
// ancestor of the numeric leaf.
func TestDiffToleranceOnAncestorKey(t *testing.T) {
	e := Experiment{Name: "t", Tolerance: map[string]float64{"latency_us": 0.1}}
	golden := docBytes(t, `{"latency_us": {"CN-CN": 1.0}, "size": 8}`)
	fresh := docBytes(t, `{"latency_us": {"CN-CN": 1.05}, "size": 8}`)
	rep, err := Diff(e, golden, fresh, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != WithinTolerance {
		t.Fatalf("report = %+v", rep)
	}

	// The non-covered integer leaf is never tolerated.
	fresh = docBytes(t, `{"latency_us": {"CN-CN": 1.0}, "size": 16}`)
	rep, err = Diff(e, golden, fresh, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Drifted {
		t.Fatalf("integer drift tolerated: %+v", rep)
	}
}

func TestDiffStructuralDrift(t *testing.T) {
	cases := []struct {
		name           string
		golden, fresh  string
		wantPathSubstr string
	}{
		{"missing key", `{"a": 1, "b": 2}`, `{"a": 1}`, "payload.b"},
		{"extra key", `{"a": 1}`, `{"a": 1, "b": 2}`, "payload.b"},
		{"array length", `[1, 2, 3]`, `[1, 2]`, "payload"},
		{"type change", `{"a": 1}`, `{"a": "1"}`, "payload.a"},
		{"string change", `{"a": "x"}`, `{"a": "y"}`, "payload.a"},
		{"nested", `{"a": {"b": [1]}}`, `{"a": {"b": [2]}}`, "payload.a.b[0]"},
	}
	e := Experiment{Name: "t", Tolerance: map[string]float64{"*": 1e9}}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep, err := Diff(e, docBytes(t, c.golden), docBytes(t, c.fresh), false)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Status != Drifted {
				t.Fatalf("report = %+v", rep)
			}
			found := false
			for _, d := range rep.Drifts {
				if strings.Contains(d.Path, c.wantPathSubstr) {
					found = true
				}
			}
			if !found {
				t.Errorf("no drift at %q in %v", c.wantPathSubstr, rep.Drifts)
			}
		})
	}
}

func TestDiffVersionMismatch(t *testing.T) {
	golden := docBytes(t, `{}`)
	d := Document{Experiment: "t", Version: 2, Payload: []byte(`{}`)}
	fresh, err := d.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Diff(Experiment{Name: "t"}, golden, fresh, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Drifted {
		t.Fatalf("version bump must drift: %+v", rep)
	}
}

// Budget violations fail the diff even when the document is byte-identical
// to its golden: bless re-records baselines, budgets gate them.
func TestDiffBudgetViolationOnIdenticalDoc(t *testing.T) {
	e := Experiment{Name: "t", Budgets: []Budget{{Measure: "makespan_s", Kind: MaxBudget, Bound: 1.0}}}
	d := Document{Experiment: "t", Version: 1, Measures: map[string]float64{"makespan_s": 1.5}, Payload: []byte(`{}`)}
	b, err := d.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Diff(e, b, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Identical || rep.Clean() || len(rep.Violations) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.Summary(0), "BUDGET") {
		t.Errorf("summary does not surface the violation: %q", rep.Summary(0))
	}
}

// Goldens are canonical bytes: semantically equal but differently formatted
// JSON is drift (a re-bless repairs it), not a silent pass.
func TestDiffNonCanonicalGolden(t *testing.T) {
	fresh := docBytes(t, `{"a": 1}`)
	golden := []byte(`{"payload": {"a": 1}, "version": 1, "experiment": "t"}`)
	rep, err := Diff(Experiment{Name: "t"}, golden, fresh, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != Drifted || len(rep.Drifts) != 1 || rep.Drifts[0].Path != "(document)" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRelDelta(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{1, 1, 0},
		{2.0, 2.2, 0.2 / 2.2},
		{-1, 1, 2},
	}
	for _, c := range cases {
		if got := relDelta(c.a, c.b); got < c.want-1e-12 || got > c.want+1e-12 {
			t.Errorf("relDelta(%g, %g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}
