// Golden baseline storage. Baselines live in internal/exp/testdata/ (one
// canonical document per experiment, nested directories for names like
// "sweep/fig7") and are embedded into every binary, so `cbctl diff` works
// from a clean checkout and from any working directory. When the source tree
// is locatable, the on-disk golden takes precedence over the embedded copy:
// a freshly blessed baseline is visible to diff without rebuilding.
package exp

import (
	"embed"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

//go:embed testdata
var embedded embed.FS

// goldenRel is the golden's path relative to the exp package directory.
func goldenRel(name string) string {
	return "testdata/" + name + ".golden.json"
}

// GoldenPath returns the golden's path relative to the module root.
func GoldenPath(name string) string {
	return filepath.Join("internal", "exp", goldenRel(name))
}

// Golden loads an experiment's baseline, preferring the source tree under
// moduleRoot (pass "" to use only the embedded copy). The returned source
// describes where the bytes came from, for CLI reporting. Only a missing
// on-disk file falls back to the embedded copy — any other read failure is
// an error, so a fresh bless is never silently shadowed by a stale embed.
func Golden(name, moduleRoot string) (data []byte, source string, err error) {
	if moduleRoot != "" {
		p := filepath.Join(moduleRoot, GoldenPath(name))
		b, err := os.ReadFile(p)
		if err == nil {
			return b, p, nil
		}
		if !os.IsNotExist(err) {
			return nil, "", fmt.Errorf("exp: golden for %q: %w", name, err)
		}
	}
	b, err := embedded.ReadFile(goldenRel(name))
	if err != nil {
		return nil, "", fmt.Errorf("exp: no golden for %q (bless it first): %w", name, err)
	}
	return b, "embedded", nil
}

// HasGolden reports whether a baseline exists (tree or embedded).
func HasGolden(name, moduleRoot string) bool {
	_, _, err := Golden(name, moduleRoot)
	return err == nil
}

// WriteGolden records canonical document bytes as the experiment's baseline
// under the module root and returns the written path.
func WriteGolden(moduleRoot, name string, data []byte) (string, error) {
	p := filepath.Join(moduleRoot, GoldenPath(name))
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return "", fmt.Errorf("exp: write golden %q: %w", name, err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return "", fmt.Errorf("exp: write golden %q: %w", name, err)
	}
	return p, nil
}

// FindModuleRoot walks up from dir looking for this module's go.mod. It
// returns "" (no error) when the source tree is not reachable — callers fall
// back to the embedded goldens.
func FindModuleRoot(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		b, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && strings.HasPrefix(strings.TrimSpace(string(b)), "module clusterbooster") {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
