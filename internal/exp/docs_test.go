package exp

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// catalogRow matches the first column of the EXPERIMENTS.md catalog table:
// a backticked experiment name at the start of a table row.
var catalogRow = regexp.MustCompile("(?m)^\\| `([a-z0-9][a-z0-9_/-]*)` \\|")

// TestCatalogDocumented cross-checks the EXPERIMENTS.md catalog table
// against the registry, both directions: every registered experiment must
// be documented, and every documented name must exist. CI runs this as the
// docs job, so the table cannot drift from the code.
func TestCatalogDocumented(t *testing.T) {
	root := FindModuleRoot(".")
	if root == "" {
		t.Skip("module root not reachable (embedded-only build)")
	}
	b, err := os.ReadFile(filepath.Join(root, "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	documented := map[string]bool{}
	for _, m := range catalogRow.FindAllStringSubmatch(string(b), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no catalog rows found in EXPERIMENTS.md")
	}
	registered := map[string]bool{}
	for _, name := range Names() {
		registered[name] = true
		if !documented[name] {
			t.Errorf("experiment %q is registered but missing from the EXPERIMENTS.md catalog table", name)
		}
	}
	var stale []string
	for name := range documented {
		if !registered[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("EXPERIMENTS.md documents %q, which is not in the registry", name)
	}
}
