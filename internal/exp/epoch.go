// Cache-epoch derivation for the persistent run store. The store
// (internal/runstore) may only serve results computed by the same generation
// of the code that asks: the epoch fingerprints that generation, so any
// change that could alter a report orphans every stored entry instead of
// silently satisfying post-change runs with stale bytes.
package exp

import (
	"fmt"

	"clusterbooster/internal/core"
	"clusterbooster/internal/runstore"
)

// CacheEpoch derives the persistent run store's epoch from the registry and
// the model generation: core.ModelFingerprint (hand-bumped on any simulation
// model or kernel change that can alter a report) plus every registered
// experiment's name@version. A version bump anywhere in the catalog rolls
// the epoch for everything — deliberately conservative: recomputing a warm
// store is cheap, serving one stale report is not. cbctl and deepsim open
// their -store directories under this epoch.
func CacheEpoch() string {
	parts := []string{"model=" + core.ModelFingerprint}
	for _, e := range All() {
		parts = append(parts, fmt.Sprintf("%s@%d", e.Name, e.Version))
	}
	return runstore.Epoch(parts...)
}
