// The fig-io experiment family: §III-C's I/O strategies evaluated live on
// the event kernel. Each grid point launches one MPI-style job in which
// every rank pushes a checkpoint-sized payload through one strategy of the
// DEEP-ER I/O stack — SIONlib containers on BeeGFS or node-local NVMe,
// BeeOND cache domains (sync/async), buddy copies, network-attached memory
// — and records when the application regains control versus when the data
// is durable. The derived measures pin the stack's architectural claims:
// async staging returns at NVMe speed, task-local concentration beats the
// global path, the NAM beats them all for burst absorption.
package exp

import (
	"fmt"

	"clusterbooster/internal/ioexp"
	"clusterbooster/internal/sweep"
)

// ioNodeCounts and ioSizes span the fig-io grid: small and prototype-scale
// rank counts, a small and a checkpoint-sized per-rank payload.
func ioNodeCounts() []int { return []int{4, 16} }
func ioSizes() []int64    { return []int64{1 << 20, 8 << 20} }

// ioPointName names one grid point, e.g. "fig-io/cache-async/n16/8MiB".
func ioPointName(s ioexp.Strategy, nodes int, size int64) string {
	return fmt.Sprintf("fig-io/%s/n%d/%dMiB", s, nodes, size>>20)
}

func registerFigIO() {
	e := Experiment{
		Name:    "fig-io",
		Title:   "I/O strategies: SIONlib, BeeOND cache domains, buddy, NAM on the event kernel (§III-C)",
		Version: 1,
		Grid:    "6 strategies x {4, 16} nodes x {1, 8} MiB per rank, one rank per node",
		Profile: "ci-io",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Measured at the largest grid point (16 nodes, 8 MiB per rank).
		// These floors are the stack's architectural claims; blessing cannot
		// relax them — a model change that erodes what async staging or
		// task-local concentration buys fails diff until the bounds
		// themselves are revised.
		Budgets: []Budget{
			// Async cache writes return ~14x sooner than write-through.
			{Measure: "async_return_gain", Kind: MinBudget, Bound: 8.0},
			// ...but their durability trails the return: the drain waits on
			// the background flush to the global FS.
			{Measure: "async_stage_span", Kind: MinBudget, Bound: 5.0},
			// Task-local NVMe containers seal ~11x before the shared global
			// container (the fan-in bottleneck SIONlib mitigates but cannot
			// erase).
			{Measure: "local_container_gain", Kind: MinBudget, Bound: 5.0},
			// The NAM absorbs the burst ~70x faster than the global container.
			{Measure: "nam_gain", Kind: MinBudget, Bound: 20.0},
			// The redundant buddy copy costs real time after the app resumed.
			{Measure: "buddy_redundancy_span", Kind: MinBudget, Bound: 1.5},
			// Virtual-time ceiling across the whole grid: the family must
			// stay a CI-speed miniature.
			{Measure: "max_makespan_s", Kind: MaxBudget, Bound: 0.25},
		},
	}
	e.Run = func(o Options) (Document, error) {
		var scen []sweep.Scenario
		for _, s := range ioexp.Strategies() {
			for _, nodes := range ioNodeCounts() {
				for _, size := range ioSizes() {
					p := ioexp.Params{Strategy: s, Nodes: nodes, Size: size}
					scen = append(scen, sweep.IOPoint{Params: p}.Scenario(ioPointName(s, nodes, size)))
				}
			}
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: fig-io: %w", err)
		}
		measures := sweepMeasures(rs)
		// Derived claims, all at the largest grid point.
		at := func(s ioexp.Strategy, metric string) float64 {
			name := ioPointName(s, 16, 8<<20)
			for _, r := range rs.Results {
				if r.Name == name {
					return r.Metrics[metric]
				}
			}
			return 0
		}
		measures["async_return_gain"] = at(ioexp.CacheSync, "return_s") / at(ioexp.CacheAsync, "return_s")
		measures["async_stage_span"] = at(ioexp.CacheAsync, "durable_s") / at(ioexp.CacheAsync, "return_s")
		measures["local_container_gain"] = at(ioexp.SIONGlobal, "durable_s") / at(ioexp.SIONLocal, "durable_s")
		measures["nam_gain"] = at(ioexp.SIONGlobal, "durable_s") / at(ioexp.NAM, "durable_s")
		measures["buddy_redundancy_span"] = at(ioexp.Buddy, "durable_s") / at(ioexp.Buddy, "return_s")
		meta := map[string]string{
			"profile":  "ci-io",
			"workload": "one rank per node; payload bytes per rank on the size axis",
			"grid":     "see internal/exp/io.go; derived measures bind the n=16, 8 MiB point",
		}
		return e.document(meta, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}
