// The registered catalog: the five paper artifacts (Table I, Table II,
// Fig. 3, Fig. 7, Fig. 8) and the standing sweep definitions, in the order
// the paper presents them. Golden runs are pinned to the CI profile — the
// Table II physics at reduced fidelity — so `cbctl diff -all` replays the
// whole catalog in CI seconds while exercising the full MPI + fabric +
// storage stack. See EXPERIMENTS.md for per-experiment documentation.
package exp

import (
	"encoding/json"
	"fmt"
	"reflect"

	"clusterbooster/internal/bench"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/xpic"
)

// CIProfile returns the pinned golden workload: the paper's Table II setup
// (Table2Config) reduced to 60 steps at 1/512 particle fidelity — the same
// reduction as `deepsim -quick`. Fidelity scaling preserves the physics
// shape (who wins, by what factor) while cutting virtual work, so the golden
// documents remain faithful miniatures of the paper's runs.
func CIProfile() xpic.Config {
	cfg := xpic.Table2Config()
	cfg.Steps = 60
	cfg.ParticleScale = 512
	return cfg
}

// fig8NodeCounts is the x axis of Fig. 8 (ranks per solver).
func fig8NodeCounts() []int { return []int{1, 2, 4, 8} }

// ScaleProfile returns the pinned past-prototype workload: a tall, narrow
// grid (8 x 2048 cells) whose 2048 rows decompose down to two rows per rank
// at n = 1024, with reduced steps/particles so the whole strong-scaling
// series — 1024 Booster nodes included — replays in CI seconds. The paper's
// prototype stops at 8 nodes per solver; this profile is the registry's
// standing evidence that the execution kernel keeps rank counts cheap two
// orders of magnitude past that.
func ScaleProfile() xpic.Config {
	return xpic.Config{
		NX:                  8,
		NY:                  2048,
		PPC:                 8,
		Species:             xpic.DefaultSpecies(),
		Steps:               8,
		Dt:                  1.0,
		Theta:               0.5,
		CGTol:               1e-10,
		CGMaxIter:           12,
		DiagEvery:           4,
		DensityPerturbation: 0.30,
		ParticleScale:       4,
		Seed:                20180521,
	}
}

// weakProfile returns the weak-scaling workload for n ranks per solver: a
// constant 8x32 cell slab per rank (the global grid grows with the machine),
// so ideal scaling holds the makespan flat and any growth is communication.
func weakProfile(n int) xpic.Config {
	cfg := ScaleProfile()
	cfg.NY = 32 * n
	cfg.Steps = 6
	cfg.CGMaxIter = 10
	return cfg
}

// sweepOpts maps experiment options onto the sweep engine's.
func sweepOpts(o Options) sweep.Options {
	return sweep.Options{Workers: o.Workers, Observer: o.Observer, Context: o.Context}
}

// profileLabel names a workload: a config that matches a pinned profile
// keeps its registry label even when passed explicitly (deepsim always
// passes its resolved config), so e.g. `deepsim -quick fig7 -json`
// reproduces the ci-quick golden byte-for-byte.
func profileLabel(cfg xpic.Config) string {
	switch {
	case reflect.DeepEqual(cfg, CIProfile()):
		return "ci-quick"
	case reflect.DeepEqual(cfg, xpic.Table2Config()):
		return "paper"
	}
	return "custom"
}

// workload resolves the run's xPic config and profile label: the registry
// profile unless interactively overridden (deepsim flags).
func workload(o Options) (xpic.Config, string) {
	if o.Workload != nil {
		return *o.Workload, profileLabel(*o.Workload)
	}
	return CIProfile(), "ci-quick"
}

func profileMeta(cfg xpic.Config, profile string) map[string]string {
	return map[string]string{
		"profile":  profile,
		"workload": fmt.Sprintf("%dx%d cells, ppc=%d, steps=%d, scale=%d", cfg.NX, cfg.NY, cfg.PPC, cfg.Steps, cfg.ParticleScale),
	}
}

// reportMeasures flattens one mode's report into the measures map.
func reportMeasures(m map[string]float64, prefix string, rep xpic.Report) {
	m[prefix+"_makespan_s"] = rep.Makespan.Seconds()
	m[prefix+"_field_s"] = rep.FieldTime.Seconds()
	m[prefix+"_particle_s"] = rep.ParticleTime.Seconds()
}

// sweepMeasures summarises a result set: the scenario count plus the
// per-metric maxima across scenarios (the values sweep budgets bind to).
// Failure counts are not a measure: registerSweep aborts on the first
// failed scenario, so a document only ever records an all-green sweep.
func sweepMeasures(rs sweep.ResultSet) map[string]float64 {
	m := map[string]float64{
		"scenarios": float64(rs.Scenarios),
	}
	for _, r := range rs.Results {
		for k, v := range r.Metrics {
			key := "max_" + k
			if cur, ok := m[key]; !ok || v > cur {
				m[key] = v
			}
		}
	}
	return m
}

// parsePayload decodes a document payload into a typed result.
func parsePayload[T any](d Document) (T, error) {
	var out T
	if err := json.Unmarshal(d.Payload, &out); err != nil {
		return out, fmt.Errorf("exp: %s: decode payload: %w", d.Experiment, err)
	}
	return out, nil
}

// registerSweep registers a raw-result-set experiment over a scenario
// generator. The payload is the sweep.ResultSet itself — exactly the
// document `deepsim -sweep -json` and `fabbench -json` emit — so golden
// sweeps gate the whole emitter pipeline, not just the physics.
func registerSweep(e Experiment, scenarios func(Options) ([]sweep.Scenario, string, error)) {
	e.Run = func(o Options) (Document, error) {
		scen, profile, err := scenarios(o)
		if err != nil {
			return Document{}, err
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: %s: %w", e.Name, err)
		}
		meta := map[string]string{"profile": profile}
		return e.document(meta, sweepMeasures(rs), rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}

func init() {
	registerTable1()
	registerTable2()
	registerFig3()
	registerFig7()
	registerFig8()
	registerFig8Scale()
	registerFig8Scale4096()
	registerFig8Scale16384()
	registerFigResilience()
	registerFigIO()
	registerFigFacility()
	registerFacility10k()
	registerFigFacilityResilience()
	registerSweepFig3()
	registerSweepFig7()
	registerSweepFig8()
	registerSweepPaper()
	registerSweepXPicWeak()
}

func registerTable1() {
	e := Experiment{
		Name:    "table1",
		Title:   "Table I: hardware configuration of the DEEP-ER prototype",
		Version: 1,
		Grid:    "static (machine + fabric models)",
		Profile: "n/a",
	}
	e.Run = func(o Options) (Document, error) {
		return e.document(nil, nil, bench.Table1())
	}
	e.Render = func(d Document) (string, error) {
		rows, err := parsePayload[[]bench.Table1Row](d)
		if err != nil {
			return "", err
		}
		return bench.RenderTable1Rows(rows), nil
	}
	Register(e)
}

func registerTable2() {
	e := Experiment{
		Name:    "table2",
		Title:   "Table II: xPic experiment setup",
		Version: 1,
		Grid:    "static (workload configuration)",
		Profile: "paper",
	}
	e.Run = func(o Options) (Document, error) {
		// The golden documents the paper's full-fidelity setup; deepsim may
		// override to render a custom workload.
		cfg := xpic.Table2Config()
		if o.Workload != nil {
			cfg = *o.Workload
		}
		return e.document(map[string]string{"profile": profileLabel(cfg)}, nil, bench.Table2Rows(cfg))
	}
	e.Render = func(d Document) (string, error) {
		rows, err := parsePayload[[]bench.Table2Row](d)
		if err != nil {
			return "", err
		}
		return bench.RenderTable2Rows(rows), nil
	}
	Register(e)
}

func registerFig3() {
	e := Experiment{
		Name:    "fig3",
		Title:   "Fig. 3: end-to-end MPI bandwidth and latency per node-type pair",
		Version: 1,
		Grid:    "25 message sizes (1 B - 16 MiB) x 3 node-type pairs, 2-rank jobs",
		Profile: "paper",
		Tolerance: map[string]float64{
			"bandwidth_MBs": 0.05,
			"latency_us":    0.05,
		},
		// Table I quotes 1.0 µs CN-CN / 1.8 µs BN-BN and ~10-11 GB/s
		// converged bandwidth; measured: 1.00 / 1.80 µs, 10989 MB/s.
		Budgets: []Budget{
			{Measure: "latency_cncn_us", Kind: MaxBudget, Bound: 1.2},
			{Measure: "latency_bnbn_us", Kind: MaxBudget, Bound: 2.1},
			{Measure: "bandwidth_converged_min_MBs", Kind: MinBudget, Bound: 9500},
		},
	}
	e.Run = func(o Options) (Document, error) {
		sizes := bench.Fig3Sizes()
		rs := sweep.Run(bench.Fig3Scenarios(sizes), sweepOpts(o))
		rows, err := bench.Fig3RowsFrom(sizes, rs)
		if err != nil {
			return Document{}, fmt.Errorf("exp: fig3: %w", err)
		}
		first, last := rows[0], rows[len(rows)-1]
		converged := last.BandwidthMBs[bench.CNCN]
		for _, k := range []bench.PairKind{bench.BNBN, bench.CNBN} {
			if v := last.BandwidthMBs[k]; v < converged {
				converged = v
			}
		}
		measures := map[string]float64{
			"latency_cncn_us":             first.LatencyUs[bench.CNCN],
			"latency_bnbn_us":             first.LatencyUs[bench.BNBN],
			"latency_cnbn_us":             first.LatencyUs[bench.CNBN],
			"bandwidth_converged_min_MBs": converged,
		}
		return e.document(map[string]string{"profile": "paper"}, measures, rows)
	}
	e.Render = func(d Document) (string, error) {
		rows, err := parsePayload[[]bench.Fig3Row](d)
		if err != nil {
			return "", err
		}
		return bench.RenderFig3(rows), nil
	}
	Register(e)
}

func registerFig7() {
	e := Experiment{
		Name:    "fig7",
		Title:   "Fig. 7: xPic runtime on one node per solver (Cluster / Booster / C+B)",
		Version: 1,
		Grid:    "1 node per solver x 3 execution modes",
		Profile: "ci-quick",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Measured at ci-quick: split makespan 2.12 s (virtual), gains
		// 1.27/1.19, field advantage 6.0. The Max bound is the perf gate: a
		// model change that slows the simulated C+B run past it fails diff
		// even after a bless.
		Budgets: []Budget{
			{Measure: "split_makespan_s", Kind: MaxBudget, Bound: 2.5},
			{Measure: "gain_vs_cluster", Kind: MinBudget, Bound: 1.05},
			{Measure: "gain_vs_booster", Kind: MinBudget, Bound: 1.05},
			{Measure: "field_advantage", Kind: MinBudget, Bound: 4.0},
		},
	}
	e.Run = func(o Options) (Document, error) {
		cfg, profile := workload(o)
		scen, err := bench.Fig7Grid(cfg).Scenarios()
		if err != nil {
			return Document{}, err
		}
		res, err := bench.Fig7From(sweep.Run(scen, sweepOpts(o)))
		if err != nil {
			return Document{}, fmt.Errorf("exp: fig7: %w", err)
		}
		measures := map[string]float64{
			"field_advantage":    res.FieldAdvantage(),
			"particle_advantage": res.ParticleAdvantage(),
			"gain_vs_cluster":    res.GainVsCluster(),
			"gain_vs_booster":    res.GainVsBooster(),
			"split_overhead":     res.Split.OverheadFraction(),
		}
		reportMeasures(measures, "cluster", res.Cluster)
		reportMeasures(measures, "booster", res.Booster)
		reportMeasures(measures, "split", res.Split)
		return e.document(profileMeta(cfg, profile), measures, res)
	}
	e.Render = func(d Document) (string, error) {
		res, err := parsePayload[bench.Fig7Result](d)
		if err != nil {
			return "", err
		}
		return bench.RenderFig7(res), nil
	}
	Register(e)
}

func registerFig8() {
	e := Experiment{
		Name:    "fig8",
		Title:   "Fig. 8: xPic strong scaling, 1-8 nodes per solver",
		Version: 1,
		Grid:    "4 node counts (1,2,4,8) x 3 execution modes",
		Profile: "ci-quick",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Measured at ci-quick: split makespan 0.376 s at n=8, C+B
		// efficiency 0.705, gain vs Cluster 1.20.
		Budgets: []Budget{
			{Measure: "split_makespan_n8_s", Kind: MaxBudget, Bound: 0.45},
			{Measure: "eff_split_n8", Kind: MinBudget, Bound: 0.6},
			{Measure: "gain_vs_cluster_n8", Kind: MinBudget, Bound: 1.05},
		},
	}
	e.Run = func(o Options) (Document, error) {
		cfg, profile := workload(o)
		counts := fig8NodeCounts()
		scen, err := bench.Fig8Grid(cfg, counts).Scenarios()
		if err != nil {
			return Document{}, err
		}
		res, err := bench.Fig8From(counts, sweep.Run(scen, sweepOpts(o)))
		if err != nil {
			return Document{}, fmt.Errorf("exp: fig8: %w", err)
		}
		last := len(res.Points) - 1
		measures := map[string]float64{
			"split_makespan_n8_s":   res.Points[last].Split.Makespan.Seconds(),
			"cluster_makespan_n8_s": res.Points[last].Cluster.Makespan.Seconds(),
			"booster_makespan_n8_s": res.Points[last].Booster.Makespan.Seconds(),
			"eff_cluster_n8":        res.Efficiency(xpic.ClusterOnly, last),
			"eff_booster_n8":        res.Efficiency(xpic.BoosterOnly, last),
			"eff_split_n8":          res.Efficiency(xpic.SplitCB, last),
			"gain_vs_cluster_n8":    res.GainVsCluster(last),
			"gain_vs_booster_n8":    res.GainVsBooster(last),
		}
		return e.document(profileMeta(cfg, profile), measures, res)
	}
	e.Render = func(d Document) (string, error) {
		res, err := parsePayload[bench.Fig8Result](d)
		if err != nil {
			return "", err
		}
		return bench.RenderFig8(res), nil
	}
	Register(e)
}

// fig8ScaleCounts is the x axis of the past-prototype strong-scaling study.
func fig8ScaleCounts() []int { return []int{16, 64, 256, 1024} }

// registerFig8Scale registers the beyond-prototype continuation of Fig. 8:
// Cluster+Booster vs Booster-only at 16 to 1024 nodes per solver, on the
// pinned ScaleProfile workload. The workload is not overridable (the grid
// only decomposes for NY % 1024 == 0), so deepsim/cbctl runs always
// reproduce the golden. Efficiencies are normalised to the first point
// (n = 16), the classic strong-scaling presentation.
func registerFig8Scale() {
	counts := fig8ScaleCounts()
	e := Experiment{
		Name:    "fig8-scale",
		Title:   "Beyond the prototype: C+B vs Booster-only strong scaling to n=1024",
		Version: 1,
		Grid:    "4 node counts (16,64,256,1024) x 2 execution modes (Booster, C+B), pinned scale workload",
		Profile: "ci-scale",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Strong scaling at 2 rows per rank is brutally communication-bound,
		// and the fixed MPI_Comm_spawn cost cannot amortise over 8 reduced
		// steps — so C+B honestly loses to Booster-only here (gain < 1), the
		// same efficiency erosion Fig. 8 shows, extrapolated. The budgets pin
		// that measured behaviour as a regression floor: a kernel or model
		// change that degrades the n=1024 point past these bounds fails diff
		// even after a bless. (The weak-scaling sweep shows the flip side:
		// with constant per-rank work the split holds its efficiency.)
		Budgets: []Budget{
			{Measure: "eff_split_n1024", Kind: MinBudget, Bound: 0.015},
			{Measure: "gain_vs_booster_n1024", Kind: MinBudget, Bound: 0.2},
			{Measure: "split_makespan_n1024_s", Kind: MaxBudget, Bound: 0.04},
		},
	}
	e.Run = func(o Options) (Document, error) {
		cfg := ScaleProfile()
		grid := sweep.Grid{
			Name:       "fig8-scale",
			NodeCounts: counts,
			Modes:      []xpic.Mode{xpic.BoosterOnly, xpic.SplitCB},
			Workloads:  []sweep.WorkloadVariant{{Name: "scale", Config: cfg}},
		}
		scen, err := grid.Scenarios()
		if err != nil {
			return Document{}, err
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: fig8-scale: %w", err)
		}
		// Grid order: node counts outermost, then [Booster, C+B].
		makespan := func(i int) (booster, split float64) {
			return rs.Results[2*i].Metrics["makespan_s"], rs.Results[2*i+1].Metrics["makespan_s"]
		}
		b0, s0 := makespan(0)
		n0 := float64(counts[0])
		measures := map[string]float64{}
		for i, n := range counts {
			b, s := makespan(i)
			measures[fmt.Sprintf("booster_makespan_n%d_s", n)] = b
			measures[fmt.Sprintf("split_makespan_n%d_s", n)] = s
			// Strong-scaling efficiency relative to the n=16 point.
			measures[fmt.Sprintf("eff_booster_n%d", n)] = b0 * n0 / (b * float64(n))
			measures[fmt.Sprintf("eff_split_n%d", n)] = s0 * n0 / (s * float64(n))
			measures[fmt.Sprintf("gain_vs_booster_n%d", n)] = b / s
		}
		meta := profileMeta(cfg, "ci-scale")
		return e.document(meta, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}

// Scale4096Profile returns the workload of the fig8-scale4096 study: the
// ScaleProfile geometry stretched to 8192 rows, so the grid decomposes down
// to the 2-rows-per-rank floor at n = 4096 — the same per-rank regime the
// fig8-scale series ends in at n = 1024, pushed another 4x. Steps and CG
// budget are trimmed so the ~5M-event n=4096 scenarios replay in CI seconds.
func Scale4096Profile() xpic.Config {
	cfg := ScaleProfile()
	cfg.NY = 8192
	cfg.Steps = 4
	cfg.CGMaxIter = 8
	cfg.DiagEvery = 2
	return cfg
}

// registerFig8Scale4096 registers the n=4096 extension of the fig8-scale
// study: Booster-only vs C+B at 1024 and 4096 ranks per solver on the
// stretched workload. It is a separate experiment (rather than a fifth
// fig8-scale point) so the fig8-scale golden stays byte-identical; the
// n=1024 point inside THIS profile is the efficiency reference. The C+B
// scenario at n=4096 runs 8193 tasks on one kernel — the event queue holds
// thousands of pending wakeups, the regime the calendar queue exists for.
func registerFig8Scale4096() {
	counts := []int{1024, 4096}
	e := Experiment{
		Name:    "fig8-scale4096",
		Title:   "Beyond the prototype, 4x further: C+B vs Booster-only at n=4096",
		Version: 1,
		Grid:    "2 node counts (1024,4096) x 2 execution modes (Booster, C+B), pinned scale4096 workload",
		Profile: "ci-scale4096",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Strong scaling at the 2-rows-per-rank floor is communication-bound
		// and the fixed MPI_Comm_spawn cost dominates 4 trimmed steps
		// outright (split makespans are ~26 ms of which 25 ms is spawn), so
		// C+B loses to Booster-only here even harder than fig8-scale shows
		// at n=1024. Measured: booster 2.87 ms / split 26.6 ms at n=4096,
		// eff_split 0.249, gain 0.108. The bounds pin that behaviour as a
		// regression floor.
		Budgets: []Budget{
			{Measure: "eff_split_n4096", Kind: MinBudget, Bound: 0.15},
			{Measure: "gain_vs_booster_n4096", Kind: MinBudget, Bound: 0.08},
			{Measure: "split_makespan_n4096_s", Kind: MaxBudget, Bound: 0.035},
			{Measure: "booster_makespan_n4096_s", Kind: MaxBudget, Bound: 0.005},
		},
	}
	e.Run = func(o Options) (Document, error) {
		cfg := Scale4096Profile()
		grid := sweep.Grid{
			Name:       "fig8-scale4096",
			NodeCounts: counts,
			Modes:      []xpic.Mode{xpic.BoosterOnly, xpic.SplitCB},
			Workloads:  []sweep.WorkloadVariant{{Name: "scale4096", Config: cfg}},
		}
		scen, err := grid.Scenarios()
		if err != nil {
			return Document{}, err
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: fig8-scale4096: %w", err)
		}
		// Grid order: node counts outermost, then [Booster, C+B].
		makespan := func(i int) (booster, split float64) {
			return rs.Results[2*i].Metrics["makespan_s"], rs.Results[2*i+1].Metrics["makespan_s"]
		}
		b0, s0 := makespan(0)
		n0 := float64(counts[0])
		measures := map[string]float64{}
		for i, n := range counts {
			b, s := makespan(i)
			measures[fmt.Sprintf("booster_makespan_n%d_s", n)] = b
			measures[fmt.Sprintf("split_makespan_n%d_s", n)] = s
			// Strong-scaling efficiency relative to the n=1024 point.
			measures[fmt.Sprintf("eff_booster_n%d", n)] = b0 * n0 / (b * float64(n))
			measures[fmt.Sprintf("eff_split_n%d", n)] = s0 * n0 / (s * float64(n))
			measures[fmt.Sprintf("gain_vs_booster_n%d", n)] = b / s
		}
		meta := profileMeta(cfg, "ci-scale4096")
		return e.document(meta, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}

// Scale16384Profile returns the workload of the fig8-scale16384 study: the
// Scale4096Profile geometry stretched again to 32768 rows, so the grid
// decomposes to the 2-rows-per-rank floor at n = 16384 — another 4x past
// fig8-scale4096. Steps and CG budget are trimmed to the minimum that still
// exercises the full step pipeline, because the C+B point runs 32769 tasks
// on one kernel; this family is the flagship workload of the conservative
// parallel kernel (-kworkers), whose synchronous windows it was sized for.
func Scale16384Profile() xpic.Config {
	cfg := Scale4096Profile()
	cfg.NY = 32768
	cfg.Steps = 2
	cfg.CGMaxIter = 4
	cfg.DiagEvery = 1
	return cfg
}

// registerFig8Scale16384 registers the n=16384 extension of the fig8-scale
// family: Booster-only vs C+B at 4096 and 16384 ranks per solver on the
// stretched workload. As with fig8-scale4096 it is a separate experiment so
// the earlier goldens stay byte-identical, and the n=4096 point inside THIS
// profile is the efficiency reference.
func registerFig8Scale16384() {
	counts := []int{4096, 16384}
	e := Experiment{
		Name:    "fig8-scale16384",
		Title:   "Beyond the prototype, 16x further: C+B vs Booster-only at n=16384",
		Version: 1,
		Grid:    "2 node counts (4096,16384) x 2 execution modes (Booster, C+B), pinned scale16384 workload",
		Profile: "ci-scale16384",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Same regime as fig8-scale4096, 4x further: strong scaling at the
		// 2-rows-per-rank floor is communication-bound and the fixed
		// MPI_Comm_spawn cost dominates 2 trimmed steps outright, so C+B
		// loses to Booster-only. The bounds pin the measured behaviour as a
		// regression floor.
		Budgets: []Budget{
			{Measure: "eff_split_n16384", Kind: MinBudget, Bound: 0.15},
			{Measure: "gain_vs_booster_n16384", Kind: MinBudget, Bound: 0.03},
			{Measure: "split_makespan_n16384_s", Kind: MaxBudget, Bound: 0.035},
			{Measure: "booster_makespan_n16384_s", Kind: MaxBudget, Bound: 0.003},
		},
	}
	e.Run = func(o Options) (Document, error) {
		cfg := Scale16384Profile()
		grid := sweep.Grid{
			Name:       "fig8-scale16384",
			NodeCounts: counts,
			Modes:      []xpic.Mode{xpic.BoosterOnly, xpic.SplitCB},
			Workloads:  []sweep.WorkloadVariant{{Name: "scale16384", Config: cfg}},
		}
		scen, err := grid.Scenarios()
		if err != nil {
			return Document{}, err
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: fig8-scale16384: %w", err)
		}
		// Grid order: node counts outermost, then [Booster, C+B].
		makespan := func(i int) (booster, split float64) {
			return rs.Results[2*i].Metrics["makespan_s"], rs.Results[2*i+1].Metrics["makespan_s"]
		}
		b0, s0 := makespan(0)
		n0 := float64(counts[0])
		measures := map[string]float64{}
		for i, n := range counts {
			b, s := makespan(i)
			measures[fmt.Sprintf("booster_makespan_n%d_s", n)] = b
			measures[fmt.Sprintf("split_makespan_n%d_s", n)] = s
			// Strong-scaling efficiency relative to the n=4096 point.
			measures[fmt.Sprintf("eff_booster_n%d", n)] = b0 * n0 / (b * float64(n))
			measures[fmt.Sprintf("eff_split_n%d", n)] = s0 * n0 / (s * float64(n))
			measures[fmt.Sprintf("gain_vs_booster_n%d", n)] = b / s
		}
		meta := profileMeta(cfg, "ci-scale16384")
		return e.document(meta, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}

// registerSweepXPicWeak registers the weak-scaling grid: a constant slab per
// rank while the machine grows, Booster-only and C+B. Under ideal weak
// scaling the makespan stays flat; the budget bounds how much the growing
// halo/collective traffic may erode it.
func registerSweepXPicWeak() {
	counts := []int{4, 16, 64, 256}
	e := Experiment{
		Name:      "sweep/xpic-weak",
		Title:     "Raw sweep: xPic weak scaling (constant 8x32-cell slab per rank)",
		Version:   1,
		Grid:      "4 node counts (4,16,64,256) x 2 execution modes (Booster, C+B), per-rank workload constant",
		Profile:   "ci-scale",
		Tolerance: map[string]float64{"*": 0.02},
		// Measured at ci-scale: the split mode holds ~95 % weak efficiency at
		// n=256 (the spawn cost amortises and per-rank work is constant)
		// while Booster-only erodes to ~62 % under the growing collectives —
		// the weak-scaling argument for the Cluster-Booster architecture.
		Budgets: []Budget{
			{Measure: "weak_eff_split_n256", Kind: MinBudget, Bound: 0.85},
			{Measure: "weak_eff_booster_n256", Kind: MinBudget, Bound: 0.5},
			{Measure: "max_makespan_s", Kind: MaxBudget, Bound: 0.05},
		},
	}
	e.Run = func(o Options) (Document, error) {
		var scen []sweep.Scenario
		for _, n := range counts {
			for _, mode := range []xpic.Mode{xpic.BoosterOnly, xpic.SplitCB} {
				p := sweep.XPicPoint{NodesPerSolver: n, Mode: mode, Workload: weakProfile(n)}
				scen = append(scen, p.Scenario(fmt.Sprintf("weak/n=%d/%s", n, mode)))
			}
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: sweep/xpic-weak: %w", err)
		}
		measures := sweepMeasures(rs)
		makespan := func(i int) (booster, split float64) {
			return rs.Results[2*i].Metrics["makespan_s"], rs.Results[2*i+1].Metrics["makespan_s"]
		}
		b0, s0 := makespan(0)
		for i, n := range counts {
			b, s := makespan(i)
			// Weak-scaling efficiency: T(n0) / T(n) per mode.
			measures[fmt.Sprintf("weak_eff_booster_n%d", n)] = b0 / b
			measures[fmt.Sprintf("weak_eff_split_n%d", n)] = s0 / s
		}
		return e.document(map[string]string{"profile": "ci-scale"}, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}

func registerSweepFig3() {
	registerSweep(Experiment{
		Name:    "sweep/fig3",
		Title:   "Raw sweep: Fig. 3 measurement grid (fabbench -json form)",
		Version: 1,
		Grid:    "25 message sizes x 3 node-type pairs",
		Profile: "paper",
		Tolerance: map[string]float64{
			"bandwidth_MBs": 0.05, "latency_us": 0.05,
			"max_bandwidth_MBs": 0.05, "max_latency_us": 0.05,
		},
		// The 16 MiB message dominates max_latency_us (~1.5 ms on the
		// ~11 GB/s converged links).
		Budgets: []Budget{
			{Measure: "max_latency_us", Kind: MaxBudget, Bound: 2000},
		},
	}, func(o Options) ([]sweep.Scenario, string, error) {
		return bench.Fig3Scenarios(bench.Fig3Sizes()), "paper", nil
	})
}

func registerSweepFig7() {
	registerSweep(Experiment{
		Name:      "sweep/fig7",
		Title:     "Raw sweep: Fig. 7 grid through the sweep engine",
		Version:   1,
		Grid:      "1 node per solver x 3 execution modes",
		Profile:   "ci-quick",
		Tolerance: map[string]float64{"*": 0.02},
		// Cluster-only at n=1 is the slowest scenario: 2.70 virtual s.
		Budgets: []Budget{
			{Measure: "max_makespan_s", Kind: MaxBudget, Bound: 3.2},
		},
	}, func(o Options) ([]sweep.Scenario, string, error) {
		cfg, profile := workload(o)
		scen, err := bench.Fig7Grid(cfg).Scenarios()
		return scen, profile, err
	})
}

func registerSweepFig8() {
	registerSweep(Experiment{
		Name:      "sweep/fig8",
		Title:     "Raw sweep: Fig. 8 strong-scaling grid through the sweep engine",
		Version:   1,
		Grid:      "4 node counts (1,2,4,8) x 3 execution modes",
		Profile:   "ci-quick",
		Tolerance: map[string]float64{"*": 0.02},
		// The n=1 Cluster-only point is the slowest scenario: 2.70 virtual s.
		Budgets: []Budget{
			{Measure: "max_makespan_s", Kind: MaxBudget, Bound: 3.2},
		},
	}, func(o Options) ([]sweep.Scenario, string, error) {
		cfg, profile := workload(o)
		scen, err := bench.Fig8Grid(cfg, fig8NodeCounts()).Scenarios()
		return scen, profile, err
	})
}

func registerSweepPaper() {
	registerSweep(Experiment{
		Name:      "sweep/paper",
		Title:     "Raw sweep: full evaluation grid with the SCR checkpoint axis",
		Version:   1,
		Grid:      "4 node counts x 3 modes x 3 SCR levels (local, buddy, global)",
		Profile:   "ci-quick",
		Tolerance: map[string]float64{"*": 0.02},
		// Measured at ci-quick: max makespan 2.70 virtual s, max checkpoint
		// cost 0.67 ms (global level included).
		Budgets: []Budget{
			{Measure: "max_makespan_s", Kind: MaxBudget, Bound: 3.2},
			{Measure: "max_checkpoint_s", Kind: MaxBudget, Bound: 0.01},
		},
	}, func(o Options) ([]sweep.Scenario, string, error) {
		cfg, profile := workload(o)
		scen, err := bench.PaperGrid(cfg, true).Scenarios()
		return scen, profile, err
	})
}
