// The fig-facility experiment family: the prototype as a shared facility
// under sustained multi-user load (§II-A's batch system, ref [5]), not one
// job on an empty machine. Each grid point feeds the same seeded synthetic
// arrival stream — 1000 jobs, shapes drawn from the xpic workload catalog —
// through one queue policy on one event kernel, co-scheduling the Cluster
// and Booster pools independently. The derived measures pin the scheduling
// claims: conservative backfill cuts waits and p95 bounded slowdown without
// delaying queue heads, and malleable-shrink (the DEEP malleability work)
// converts backfill's leftover holes into Cluster utilization.
package exp

import (
	"fmt"

	"clusterbooster/internal/sched"
	"clusterbooster/internal/sweep"
)

// facilityLoads spans the load axis: a busy facility (0.7 of bottleneck
// capacity) and sustained overload (1.4, the queue-growth regime where
// policy differences dominate).
func facilityLoads() []float64 { return []float64{0.7, 1.4} }

// facilityJobs is the arrival-stream length of every grid point.
const facilityJobs = 1000

// facilitySeed derives the stream seed from the load only, so all three
// policies at one load schedule the identical arrival stream.
func facilitySeed(load float64) int64 { return 20180521 + int64(load*100+0.5) }

// facilityPointName names one grid point, e.g. "fig-facility/backfill/load140".
func facilityPointName(family string, pol sched.FacilityPolicy, load float64) string {
	return fmt.Sprintf("%s/%s/load%d", family, pol, int(load*100+0.5))
}

// registerFigFacility registers the canonical 1000-job family.
func registerFigFacility() {
	registerFacilityFamily("fig-facility",
		"Facility simulation: 1000-job arrival streams vs queue policy (§II-A batch system, ref [5])",
		facilityJobs)
}

// registerFacility10k registers the 10x stream: 10000 jobs per grid point.
// The long stream spends most of its span in queueing steady state, so the
// policy gaps it pins are sharper than the 1000-job family's — and each
// point feeds 10001 tasks through one event kernel, which (with the
// fig8-scale16384 family) makes it a standing workload for the conservative
// parallel kernel (-kworkers).
func registerFacility10k() {
	registerFacilityFamily("facility-10k",
		"Facility simulation, 10x stream: 10000-job arrivals vs queue policy",
		10*facilityJobs)
}

func registerFacilityFamily(family, title string, jobs int) {
	e := Experiment{
		Name:    family,
		Title:   title,
		Version: 1,
		Grid:    fmt.Sprintf("{fcfs, backfill, malleable} x load {0.7, 1.4}, %d jobs per stream on a 64+32-node machine", jobs),
		Profile: fmt.Sprintf("facility-%d", jobs),
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Measured at load 1.4 (overload), where policy differences dominate.
		// These floors are the scheduling claims; blessing cannot relax them —
		// a scheduler change that erodes what backfill or malleability buys
		// fails diff until the bounds themselves are revised.
		Budgets: []Budget{
			// Conservative backfill cuts the mean wait ~1.5x under overload.
			{Measure: "backfill_wait_gain", Kind: MinBudget, Bound: 1.2},
			// ...and tail slowdown with it: p95 BSLD drops ~1.5x.
			{Measure: "backfill_bsld_gain", Kind: MinBudget, Bound: 1.2},
			// Malleable-shrink converts queue time into Cluster utilization
			// (~1.6x over rigid backfill) by starting wide jobs narrow.
			{Measure: "malleable_util_gain", Kind: MinBudget, Bound: 1.2},
			// ...and it must actually shrink a meaningful share of the
			// malleable jobs, not degenerate into plain backfill.
			{Measure: "malleable_shrunk", Kind: MinBudget, Bound: 50},
			// The overloaded Booster pool stays near-saturated under backfill.
			{Measure: "backfill_util_booster", Kind: MinBudget, Bound: 0.9},
			// Every stream must complete end to end on one kernel.
			{Measure: "min_jobs", Kind: MinBudget, Bound: float64(jobs)},
			// At light load the facility is healthy: mean bounded slowdown
			// stays near 1 for every policy.
			{Measure: "light_load_bsld_mean", Kind: MaxBudget, Bound: 2.5},
			// Virtual-time ceiling across the grid: the family must stay a
			// CI-speed miniature. The overloaded stream's span grows linearly
			// with its length, so the ceiling scales with the job count.
			{Measure: "max_makespan_s", Kind: MaxBudget, Bound: 300 * float64(jobs) / facilityJobs},
		},
	}
	e.Run = func(o Options) (Document, error) {
		var scen []sweep.Scenario
		for _, pol := range sched.FacilityPolicies() {
			for _, load := range facilityLoads() {
				p := sched.FacilityParams{Policy: pol, Jobs: jobs, Load: load, Seed: facilitySeed(load)}
				scen = append(scen, sweep.FacilityPoint{FacilityParams: p}.Scenario(facilityPointName(family, pol, load)))
			}
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: %s: %w", family, err)
		}
		measures := sweepMeasures(rs)
		at := func(pol sched.FacilityPolicy, load float64, metric string) float64 {
			name := facilityPointName(family, pol, load)
			for _, r := range rs.Results {
				if r.Name == name {
					return r.Metrics[metric]
				}
			}
			return 0
		}
		// Derived claims, all at the overload point unless noted.
		measures["backfill_wait_gain"] = at(sched.FacilityFCFS, 1.4, "wait_mean_s") / at(sched.FacilityBackfill, 1.4, "wait_mean_s")
		measures["backfill_bsld_gain"] = at(sched.FacilityFCFS, 1.4, "bsld_p95") / at(sched.FacilityBackfill, 1.4, "bsld_p95")
		measures["malleable_util_gain"] = at(sched.FacilityMalleable, 1.4, "util_cluster") / at(sched.FacilityBackfill, 1.4, "util_cluster")
		measures["malleable_shrunk"] = at(sched.FacilityMalleable, 1.4, "shrunk")
		measures["backfill_util_booster"] = at(sched.FacilityBackfill, 1.4, "util_booster")
		minJobs := float64(jobs)
		lightBSLD := 0.0
		for _, pol := range sched.FacilityPolicies() {
			for _, load := range facilityLoads() {
				if j := at(pol, load, "jobs"); j < minJobs {
					minJobs = j
				}
			}
			if b := at(pol, 0.7, "bsld_mean"); b > lightBSLD {
				lightBSLD = b
			}
		}
		measures["min_jobs"] = minJobs
		measures["light_load_bsld_mean"] = lightBSLD
		meta := map[string]string{
			"profile":  fmt.Sprintf("facility-%d", jobs),
			"workload": "seeded exponential arrivals over the xpic catalog job mix; same stream per load across policies",
			"grid":     "see internal/exp/facility.go; derived measures bind the load=1.4 points",
		}
		return e.document(meta, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}
