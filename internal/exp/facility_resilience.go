// The fig-facility-resilience experiment family: the facility simulator on
// a failing machine. Each grid point replays the same 600-job overload
// stream (load 1.4) while seeded per-module failure/repair processes drain
// and refill the pools; killed jobs rewind to their best surviving
// checkpoint (resilience.FacilityCheckpoint) or restart cold, and are
// requeued with bounded retry. The budgets pin the facility-resilience
// claims against the analytic steady-state availability MTBF/(MTBF+MTTR) —
// the Beowulf-performability cross-check of ROADMAP item 3 — and the value
// of checkpointing at facility scale: goodput, rescued jobs, lost work.
package exp

import (
	"fmt"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/resilience"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/vclock"
)

// facilityResilienceJobs is the stream length: long enough that hundreds of
// failures strike per faulty point (steady-state statistics), short enough
// to stay a CI-speed miniature.
const facilityResilienceJobs = 600

// facilityResilienceSeed fixes the arrival stream (shared by every point,
// so policies and regimes schedule the identical workload).
const facilityResilienceSeed = 20180708

// facilityRegime is one MTBF regime of the grid.
type facilityRegime struct {
	name   string
	faults *sched.FacilityFaults // nil = failure-free baseline
}

// facilityResilienceRegimes spans clean -> mild -> harsh. The profiles are
// heterogeneous per module (the KNL Booster fails twice as often as the
// Xeon Cluster), exercising the independent per-pool processes. Named by
// the Booster's per-node MTBF in virtual seconds: at mtbf12, a 16+16-node
// xpic-weak job's allocation takes a hit every ~0.5 virtual seconds —
// killed several times per 2.4s run, the regime where checkpointing decides
// between finishing and abandonment.
func facilityResilienceRegimes() []facilityRegime {
	return []facilityRegime{
		{name: "clean"},
		{name: "mtbf45", faults: &sched.FacilityFaults{
			Cluster: machine.FailureProfile{MTBF: 90, MTTR: 3},
			Booster: machine.FailureProfile{MTBF: 45, MTTR: 3},
			Seed:    20180711, MaxRetries: 16,
		}},
		{name: "mtbf12", faults: &sched.FacilityFaults{
			Cluster: machine.FailureProfile{MTBF: 20, MTTR: 1.5},
			Booster: machine.FailureProfile{MTBF: 12, MTTR: 1.5},
			Seed:    20180711, MaxRetries: 16,
		}},
	}
}

// facilityResilienceCkpt is the checkpoint policy of the ckpt points:
// checkpoint every 250ms of work at 10ms cost, 20ms restore on resume.
func facilityResilienceCkpt() resilience.FacilityCheckpoint {
	return resilience.FacilityCheckpoint{
		Every:   250 * vclock.Millisecond,
		Cost:    10 * vclock.Millisecond,
		Restore: 20 * vclock.Millisecond,
	}
}

// facilityResiliencePointName names one grid point, e.g.
// "fig-facility-resilience/backfill/mtbf12/ckpt" (clean points have no
// checkpoint leg — there is nothing to rewind from).
func facilityResiliencePointName(pol sched.FacilityPolicy, regime string, ckpt bool) string {
	if regime == "clean" {
		return fmt.Sprintf("fig-facility-resilience/%s/clean", pol)
	}
	leg := "cold"
	if ckpt {
		leg = "ckpt"
	}
	return fmt.Sprintf("fig-facility-resilience/%s/%s/%s", pol, regime, leg)
}

func registerFigFacilityResilience() {
	e := Experiment{
		Name:    "fig-facility-resilience",
		Title:   "Facility resilience: failing machine, scheduler degradation, checkpoint-restart requeue (DEEP-ER resiliency at facility scale)",
		Version: 1,
		Grid:    "{fcfs, backfill, malleable} x regime {clean, mtbf45, mtbf12} x {cold, ckpt}, 600 jobs at load 1.4 on a 64+32-node machine",
		Profile: "facility-resilience-600",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		Budgets: []Budget{
			// The analytic cross-check: simulated per-pool availability must
			// track the steady-state MTBF/(MTBF+MTTR) closed form at every
			// faulty point. Measured error is ~0.8%; the bound is the 10%
			// tolerance the Beowulf-performability comparison demands.
			{Measure: "avail_err_max", Kind: MaxBudget, Bound: 0.10},
			// Under saturation the work-conserving (malleable) scheduler
			// delivers bottleneck-pool utilization within 10% of the analytic
			// availability bound (measured ~3%): failures cost the facility
			// what the availability model says they cost, no more.
			{Measure: "malleable_sat_util_avail_err", Kind: MaxBudget, Bound: 0.10},
			// Rigid backfill pays a fragmentation tax on top — bounded too,
			// so drain/requeue regressions cannot hide behind it.
			{Measure: "backfill_sat_util_avail_err", Kind: MaxBudget, Bound: 0.15},
			// Checkpointing at least 1.3x's goodput at the harsh point
			// (measured ~4.7x: cold restart loses whole wide jobs to retry
			// exhaustion, checkpoints convert kills into bounded rework).
			{Measure: "ckpt_goodput_gain_harsh", Kind: MinBudget, Bound: 1.3},
			// ...and checkpointing never loses to cold restart anywhere on
			// the grid.
			{Measure: "ckpt_goodput_gain_min", Kind: MinBudget, Bound: 1.3},
			// Cold restart under harsh MTBF abandons wide jobs after retry
			// exhaustion; with checkpoints every job finishes.
			{Measure: "cold_harsh_abandoned", Kind: MinBudget, Bound: 10},
			{Measure: "ckpt_abandoned_max", Kind: MaxBudget, Bound: 0},
			// Every point must account for the whole stream: completed +
			// abandoned = submitted, i.e. no job is lost by the requeue path.
			{Measure: "jobs_accounted_min", Kind: MinBudget, Bound: facilityResilienceJobs},
			// The failure/repair processes must actually exercise the requeue
			// machinery at every faulty point.
			{Measure: "requeues_min", Kind: MinBudget, Bound: 50},
			// Virtual-time ceiling: the family stays a CI-speed miniature.
			{Measure: "max_makespan_s", Kind: MaxBudget, Bound: 600},
		},
	}
	e.Run = func(o Options) (Document, error) {
		regimes := facilityResilienceRegimes()
		var scen []sweep.Scenario
		for _, pol := range sched.FacilityPolicies() {
			for _, reg := range regimes {
				for _, ckpt := range []bool{false, true} {
					if reg.faults == nil && ckpt {
						continue // nothing to checkpoint on a clean machine
					}
					p := sched.FacilityParams{
						Policy: pol,
						Jobs:   facilityResilienceJobs,
						Load:   1.4,
						Seed:   facilityResilienceSeed,
					}
					if reg.faults != nil {
						faults := *reg.faults
						if ckpt {
							faults.Rewind = facilityResilienceCkpt()
						}
						p.Faults = &faults
					}
					scen = append(scen, sweep.FacilityResiliencePoint{FacilityParams: p}.
						Scenario(facilityResiliencePointName(pol, reg.name, ckpt)))
				}
			}
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: fig-facility-resilience: %w", err)
		}
		measures := sweepMeasures(rs)
		at := func(pol sched.FacilityPolicy, regime string, ckpt bool, metric string) float64 {
			name := facilityResiliencePointName(pol, regime, ckpt)
			for _, r := range rs.Results {
				if r.Name == name {
					return r.Metrics[metric]
				}
			}
			return 0
		}
		relErr := func(sim, analytic float64) float64 {
			if analytic == 0 {
				return 0
			}
			e := sim/analytic - 1
			if e < 0 {
				e = -e
			}
			return e
		}
		availErrMax := 0.0
		satErr := map[sched.FacilityPolicy]float64{}
		gainMin, gainHarsh := 0.0, 0.0
		coldHarshAbandoned, ckptAbandonedMax := 0.0, 0.0
		jobsAccountedMin := float64(facilityResilienceJobs)
		requeuesMin := 0.0
		first := true
		for _, pol := range sched.FacilityPolicies() {
			for _, reg := range regimes {
				for _, ckpt := range []bool{false, true} {
					if reg.faults == nil && ckpt {
						continue
					}
					accounted := at(pol, reg.name, ckpt, "jobs") + at(pol, reg.name, ckpt, "abandoned")
					if accounted < jobsAccountedMin {
						jobsAccountedMin = accounted
					}
					if reg.faults == nil {
						continue
					}
					aC := reg.faults.Cluster.Availability()
					aB := reg.faults.Booster.Availability()
					for _, pair := range [][2]float64{
						{at(pol, reg.name, ckpt, "avail_cluster"), aC},
						{at(pol, reg.name, ckpt, "avail_booster"), aB},
					} {
						if e := relErr(pair[0], pair[1]); e > availErrMax {
							availErrMax = e
						}
					}
					// Bottleneck (Booster) pool, saturated window: utilization
					// vs the analytic availability bound.
					if e := relErr(at(pol, reg.name, ckpt, "sat_util_booster"), aB); e > satErr[pol] {
						satErr[pol] = e
					}
					if ckpt {
						gain := at(pol, reg.name, true, "goodput") / at(pol, reg.name, false, "goodput")
						if first || gain < gainMin {
							gainMin = gain
							first = false
						}
						if a := at(pol, reg.name, true, "abandoned"); a > ckptAbandonedMax {
							ckptAbandonedMax = a
						}
					}
					if r := at(pol, reg.name, ckpt, "requeues"); requeuesMin == 0 || r < requeuesMin {
						requeuesMin = r
					}
				}
			}
		}
		gainHarsh = at(sched.FacilityBackfill, "mtbf12", true, "goodput") / at(sched.FacilityBackfill, "mtbf12", false, "goodput")
		coldHarshAbandoned = at(sched.FacilityBackfill, "mtbf12", false, "abandoned")
		measures["avail_err_max"] = availErrMax
		measures["malleable_sat_util_avail_err"] = satErr[sched.FacilityMalleable]
		measures["backfill_sat_util_avail_err"] = satErr[sched.FacilityBackfill]
		measures["ckpt_goodput_gain_harsh"] = gainHarsh
		measures["ckpt_goodput_gain_min"] = gainMin
		measures["cold_harsh_abandoned"] = coldHarshAbandoned
		measures["ckpt_abandoned_max"] = ckptAbandonedMax
		measures["jobs_accounted_min"] = jobsAccountedMin
		measures["requeues_min"] = requeuesMin
		meta := map[string]string{
			"profile":  "facility-resilience-600",
			"workload": "one seeded 600-job overload stream (load 1.4) replayed across policies, MTBF regimes and checkpoint legs",
			"grid":     "see internal/exp/facility_resilience.go; analytic availability cross-check per pool, Beowulf-performability style",
		}
		return e.document(meta, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}
