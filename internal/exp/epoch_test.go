package exp

import (
	"fmt"
	"regexp"
	"testing"

	"clusterbooster/internal/core"
	"clusterbooster/internal/runstore"
)

// TestCacheEpoch pins the epoch's derivation contract: a short stable
// fingerprint over the model generation plus every registered experiment's
// name@version — so bumping the model fingerprint or any catalog version
// rolls the epoch and orphans the persistent store.
func TestCacheEpoch(t *testing.T) {
	e := CacheEpoch()
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(e) {
		t.Fatalf("epoch %q is not 16 hex chars", e)
	}
	if e != CacheEpoch() {
		t.Fatal("epoch must be deterministic within a process")
	}

	// Re-derive with the documented inputs: the epoch must cover exactly the
	// model fingerprint and the catalog versions, nothing else.
	parts := []string{"model=" + core.ModelFingerprint}
	for _, x := range All() {
		parts = append(parts, fmt.Sprintf("%s@%d", x.Name, x.Version))
	}
	if want := runstore.Epoch(parts...); e != want {
		t.Fatalf("epoch %q does not match its documented derivation %q", e, want)
	}

	// A changed model fingerprint (or any version bump, same mechanism) must
	// produce a different epoch.
	parts[0] = "model=" + core.ModelFingerprint + "-next"
	if runstore.Epoch(parts...) == e {
		t.Fatal("model fingerprint change must roll the epoch")
	}
}
