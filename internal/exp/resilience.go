// The fig-resilience experiment family: §III-D evaluated live on the event
// kernel. Each grid point runs xPic under seeded node-failure injection with
// checkpoint/restart replay (internal/resilience) and is paired with its
// failure-free twin, so the document measures what each checkpoint level
// buys: the retained share of failure-free performance when a node dies
// mid-run, per execution mode.
package exp

import (
	"fmt"

	"clusterbooster/internal/resilience"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// ResilienceProfile returns the pinned fig-resilience workload: the quick
// Table II reduction at 24 steps, 2 ranks per solver, checkpointing every
// 4th step. MTBFs below are virtual seconds scaled to this workload's
// millisecond makespans (the failure model is scale-free; CI cannot wait
// simulated hours), tuned with the per-mode seeds so every failing grid
// point sees exactly one mid-run failure.
func ResilienceProfile() xpic.Config { return xpic.QuickConfig(24) }

// resilienceRow is one (mode, level) pair of the family; each expands to a
// failure-free and a failing scenario.
type resilienceRow struct {
	key   string // measure key fragment, e.g. "booster_buddy"
	mode  xpic.Mode
	level string // "local", "buddy", "global"
	scr   scr.Config
	mtbf  vclock.Time
	seed  int64
}

// resilienceRows is the family's grid: modes × surviving-level cadences.
// The global level needs a mono mode (one shared SION container); the seeds
// are pinned per (mode, mtbf) so the single failure lands mid-run — after
// at least one checkpoint sealed for the redundant levels, so local-only
// rows restart cold while buddy/global rows rewind warm.
func resilienceRows() []resilienceRow {
	const monoMTBF = 30 * vclock.Millisecond
	const splitMTBF = 130 * vclock.Millisecond // the spawn window stretches the C+B run
	return []resilienceRow{
		{key: "cluster_local", mode: xpic.ClusterOnly, level: "local", scr: scr.Config{}, mtbf: monoMTBF, seed: 4},
		{key: "cluster_buddy", mode: xpic.ClusterOnly, level: "buddy", scr: scr.Config{BuddyEvery: 1}, mtbf: monoMTBF, seed: 4},
		{key: "booster_local", mode: xpic.BoosterOnly, level: "local", scr: scr.Config{}, mtbf: monoMTBF, seed: 2},
		{key: "booster_buddy", mode: xpic.BoosterOnly, level: "buddy", scr: scr.Config{BuddyEvery: 1}, mtbf: monoMTBF, seed: 2},
		{key: "booster_global", mode: xpic.BoosterOnly, level: "global", scr: scr.Config{GlobalEvery: 1}, mtbf: monoMTBF, seed: 2},
		{key: "split_local", mode: xpic.SplitCB, level: "local", scr: scr.Config{}, mtbf: splitMTBF, seed: 6},
		{key: "split_buddy", mode: xpic.SplitCB, level: "buddy", scr: scr.Config{BuddyEvery: 1}, mtbf: splitMTBF, seed: 6},
	}
}

// params builds the row's resilience parameters; failing selects the
// injected-failure variant.
func (r resilienceRow) params(failing bool) resilience.Params {
	p := resilience.Params{
		Mode:            r.mode,
		Nodes:           2,
		Workload:        ResilienceProfile(),
		CheckpointEvery: 4,
		SCR:             r.scr,
		RestartOverhead: 2 * vclock.Millisecond,
	}
	if failing {
		p.MTBF = r.mtbf
		p.Seed = r.seed
		p.MaxFailures = 1
	}
	return p
}

func registerFigResilience() {
	rows := resilienceRows()
	e := Experiment{
		Name:    "fig-resilience",
		Title:   "Resilience: checkpoint level vs node failure, live on the event kernel (§III-D)",
		Version: 1,
		Grid:    "3 modes x surviving-level cadence (local/buddy/global) x {failure-free, 1 seeded failure}, 2 ranks per solver",
		Profile: "ci-resilience",
		Tolerance: map[string]float64{
			"*": 0.02,
		},
		// Measured floors at ci-resilience (retention = failure-free makespan
		// over post-failure makespan): redundant levels rewind warm and keep
		// most of the lost ground, local-only restarts cold and pays the full
		// prefix again. Blessing cannot relax these — a model change that
		// erodes what buddy checkpointing buys fails diff until the bounds
		// themselves are revised.
		Budgets: []Budget{
			{Measure: "retention_cluster_buddy", Kind: MinBudget, Bound: 0.65},
			{Measure: "retention_booster_buddy", Kind: MinBudget, Bound: 0.80},
			{Measure: "retention_booster_global", Kind: MinBudget, Bound: 0.80},
			{Measure: "retention_split_buddy", Kind: MinBudget, Bound: 0.45},
			{Measure: "buddy_gain_cluster", Kind: MinBudget, Bound: 1.15},
			{Measure: "buddy_gain_booster", Kind: MinBudget, Bound: 1.25},
			{Measure: "buddy_gain_split", Kind: MinBudget, Bound: 1.01},
			// Every failing point must actually see its failure fire, and
			// every redundant-level point must rewind warm (a cold restart
			// here means level selection regressed).
			{Measure: "min_failures_injected", Kind: MinBudget, Bound: 1},
			{Measure: "min_warm_rewind_step", Kind: MinBudget, Bound: 4},
		},
	}
	e.Run = func(o Options) (Document, error) {
		var scen []sweep.Scenario
		for _, r := range rows {
			for _, failing := range []bool{false, true} {
				variant := "mtbf=0"
				if failing {
					variant = fmt.Sprintf("mtbf=%v", r.mtbf)
				}
				name := fmt.Sprintf("fig-resilience/%s/%s/%s", r.mode, r.level, variant)
				scen = append(scen, sweep.ResiliencePoint{Params: r.params(failing)}.Scenario(name))
			}
		}
		rs := sweep.Run(scen, sweepOpts(o))
		if err := rs.FirstError(); err != nil {
			return Document{}, fmt.Errorf("exp: fig-resilience: %w", err)
		}
		measures := sweepMeasures(rs)
		minFailures, minRewind := -1.0, -1.0
		for i, r := range rows {
			ff, fail := rs.Results[2*i].Metrics, rs.Results[2*i+1].Metrics
			measures["retention_"+r.key] = ff["makespan_s"] / fail["makespan_s"]
			if f := fail["failures"]; minFailures < 0 || f < minFailures {
				minFailures = f
			}
			if r.level != "local" {
				if w := fail["rewind_step"]; minRewind < 0 || w < minRewind {
					minRewind = w
				}
			}
		}
		measures["min_failures_injected"] = minFailures
		measures["min_warm_rewind_step"] = minRewind
		for _, mode := range []string{"cluster", "booster", "split"} {
			measures["buddy_gain_"+mode] = measures["retention_"+mode+"_buddy"] / measures["retention_"+mode+"_local"]
		}
		cfg := ResilienceProfile()
		meta := profileMeta(cfg, "ci-resilience")
		meta["grid"] = "rows expand [failure-free, failing]; see internal/exp/resilience.go for pinned seeds"
		return e.document(meta, measures, rs)
	}
	e.Render = func(d Document) (string, error) {
		rs, err := parsePayload[sweep.ResultSet](d)
		if err != nil {
			return "", err
		}
		return rs.RenderText(), nil
	}
	Register(e)
}
