package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// heavyExperiments are skipped under -short: each replays a multi-node or
// checkpointed grid (seconds of host time). The CI golden job (`cbctl diff
// -all`) and the full `go test ./...` run cover them.
var heavyExperiments = map[string]bool{
	"fig8":            true,
	"fig8-scale":      true,
	"fig8-scale4096":  true,
	"sweep/fig8":      true,
	"sweep/paper":     true,
	"sweep/xpic-weak": true,
}

// TestGoldensMatch replays every registered experiment and requires the
// canonical document to be byte-identical to the checked-in golden — the
// in-tree twin of the `cbctl diff -all` CI gate, so plain `go test ./...`
// also catches paper-artifact drift.
func TestGoldensMatch(t *testing.T) {
	root := FindModuleRoot(".")
	if root == "" {
		t.Fatal("module root not found from test working directory")
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if testing.Short() && heavyExperiments[e.Name] {
				t.Skip("heavy experiment: covered by the golden CI job and full test runs")
			}
			golden, source, err := Golden(e.Name, root)
			if err != nil {
				t.Fatalf("no golden: %v (bless with: go run ./cmd/cbctl bless %s)", err, e.Name)
			}
			doc, err := e.Run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := doc.Canonical()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Diff(e, golden, fresh, false)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() || rep.Status != Identical {
				t.Errorf("drift against %s:\n%s", source, rep.Summary(10))
				t.Log("if intentional, re-record with: go run ./cmd/cbctl bless -all")
			}
		})
	}
}

// Every golden must also ship embedded in the binary, or `cbctl diff` breaks
// away from the source tree.
func TestGoldensEmbedded(t *testing.T) {
	for _, e := range All() {
		b, source, err := Golden(e.Name, "")
		if err != nil {
			t.Errorf("%s: not embedded: %v", e.Name, err)
			continue
		}
		if source != "embedded" {
			t.Errorf("%s: source = %q", e.Name, source)
		}
		doc, err := ParseDocument(b)
		if err != nil {
			t.Errorf("%s: embedded golden unparseable: %v", e.Name, err)
			continue
		}
		if doc.Experiment != e.Name {
			t.Errorf("%s: embedded golden is for %q", e.Name, doc.Experiment)
		}
		if doc.Version != e.Version {
			t.Errorf("%s: embedded golden v%d, experiment v%d — re-bless", e.Name, doc.Version, e.Version)
		}
	}
}

func TestGoldenTreePrecedence(t *testing.T) {
	root := t.TempDir()
	want := []byte("{\"experiment\": \"table1\"}\n")
	p, err := WriteGolden(root, "table1", want)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(p) != filepath.Join(root, "internal", "exp", "testdata") {
		t.Errorf("written to %s", p)
	}
	got, source, err := Golden("table1", root)
	if err != nil {
		t.Fatal(err)
	}
	if source != p || !bytes.Equal(got, want) {
		t.Errorf("tree golden not preferred: source=%q", source)
	}

	// Nested names create their directories.
	if _, err := WriteGolden(root, "sweep/fig7", want); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "internal", "exp", "testdata", "sweep", "fig7.golden.json")); err != nil {
		t.Error(err)
	}
}

func TestFindModuleRoot(t *testing.T) {
	root := FindModuleRoot(".")
	if root == "" {
		t.Fatal("expected to find module root from package directory")
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatal(err)
	}
	if FindModuleRoot(t.TempDir()) != "" {
		t.Error("unrelated directory should not resolve to a module root")
	}
}
