package bench

import (
	"fmt"
	"strings"

	"clusterbooster/internal/core"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/vclock"
)

// PairKind selects the node-type pair of a Fig. 3 series.
type PairKind int

const (
	// CNCN measures between two Cluster nodes.
	CNCN PairKind = iota
	// BNBN measures between two Booster nodes.
	BNBN
	// CNBN measures between a Cluster and a Booster node.
	CNBN
)

// String names the series as in Fig. 3.
func (k PairKind) String() string {
	switch k {
	case CNCN:
		return "CN-CN"
	case BNBN:
		return "BN-BN"
	default:
		return "CN-BN"
	}
}

// MarshalText emits the series label, so PairKind-keyed maps serialise to
// readable (and deterministically sorted) JSON object keys.
func (k PairKind) MarshalText() ([]byte, error) {
	return []byte(k.String()), nil
}

// UnmarshalText accepts the series label.
func (k *PairKind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "CN-CN":
		*k = CNCN
	case "BN-BN":
		*k = BNBN
	case "CN-BN":
		*k = CNBN
	default:
		return fmt.Errorf("bench: unknown pair kind %q", b)
	}
	return nil
}

// Fig3Row is one message size of the Fig. 3 curves.
type Fig3Row struct {
	Size int `json:"size"`
	// BandwidthMBs is the sustained unidirectional stream bandwidth in
	// MByte/s per pair kind (upper panel of Fig. 3).
	BandwidthMBs map[PairKind]float64 `json:"bandwidth_MBs"`
	// LatencyUs is the single-message one-way latency in µs (lower panel).
	LatencyUs map[PairKind]float64 `json:"latency_us"`
}

// Fig3Sizes returns the message sizes of the paper's plot: powers of two
// from 1 B to 16 MiB (the latency panel stops at 32 KiB).
func Fig3Sizes() []int {
	var out []int
	for s := 1; s <= 16<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// LatencyPanelMax is the largest size of the latency panel (32 KiB).
const LatencyPanelMax = 32 << 10

// measurePair runs a real two-rank psmpi job between the node pair and
// returns (bandwidth bytes/s, one-way latency).
func measurePair(kind PairKind, size int) (float64, vclock.Time, error) {
	sys := core.New(2, 2, core.Options{WithoutStorage: true})
	var a, b *machine.Node
	switch kind {
	case CNCN:
		a, b = sys.Machine.Node(0), sys.Machine.Node(1)
	case BNBN:
		a, b = sys.Machine.Node(2), sys.Machine.Node(3)
	default:
		a, b = sys.Machine.Node(0), sys.Machine.Node(2)
	}

	const burst = 8 // messages per bandwidth measurement
	var latency vclock.Time
	var bwTime vclock.Time
	res, err := sys.Runtime.Launch(psmpi.LaunchSpec{
		Nodes: []*machine.Node{a, b},
		Main: func(p *psmpi.Proc) error {
			w := p.World()
			payload := make([]float64, size/8+1)
			if p.Rank() == 0 {
				// Latency: one message, then a stream for bandwidth.
				p.Send(w, 1, 1, payload, size)
				for k := 0; k < burst; k++ {
					p.Send(w, 1, 2, payload, size)
				}
				return nil
			}
			p.Recv(w, 0, 1)
			latency = p.Now()
			start := p.Now()
			for k := 0; k < burst; k++ {
				p.Recv(w, 0, 2)
			}
			bwTime = p.Now() - start
			return nil
		},
	})
	if err != nil {
		return 0, 0, err
	}
	_ = res
	bw := float64(burst*size) / bwTime.Seconds()
	return bw, latency, nil
}

// fig3Pairs lists the node-type pairs in series order.
func fig3Pairs() []PairKind { return []PairKind{CNCN, BNBN, CNBN} }

// Fig3Scenarios declares the Fig. 3 measurement grid — message sizes ×
// node-type pairs, one fresh two-rank psmpi job each — as sweep scenarios.
// Every scenario reports "bandwidth_MBs" and "latency_us".
func Fig3Scenarios(sizes []int) []sweep.Scenario {
	var scenarios []sweep.Scenario
	for _, size := range sizes {
		for _, kind := range fig3Pairs() {
			size, kind := size, kind
			scenarios = append(scenarios, sweep.Scenario{
				Name: fmt.Sprintf("fig3/%v/size=%d", kind, size),
				Run: func() (sweep.Outcome, error) {
					bw, lat, err := measurePair(kind, size)
					if err != nil {
						return sweep.Outcome{}, err
					}
					return sweep.Outcome{Metrics: sweep.Metrics{
						"bandwidth_MBs": mbs(bw),
						"latency_us":    us(lat),
					}}, nil
				},
			})
		}
	}
	return scenarios
}

// Fig3RowsFrom reassembles the per-size rows from a sweep over
// Fig3Scenarios(sizes).
func Fig3RowsFrom(sizes []int, rs sweep.ResultSet) ([]Fig3Row, error) {
	if err := rs.FirstError(); err != nil {
		return nil, fmt.Errorf("bench: fig3: %w", err)
	}
	pairs := fig3Pairs()
	if rs.Scenarios != len(sizes)*len(pairs) {
		return nil, fmt.Errorf("bench: fig3: %d results for %d grid points", rs.Scenarios, len(sizes)*len(pairs))
	}
	var rows []Fig3Row
	for i, size := range sizes {
		row := Fig3Row{
			Size:         size,
			BandwidthMBs: map[PairKind]float64{},
			LatencyUs:    map[PairKind]float64{},
		}
		for j, kind := range pairs {
			m := rs.Results[i*len(pairs)+j].Metrics
			row.BandwidthMBs[kind] = m["bandwidth_MBs"]
			row.LatencyUs[kind] = m["latency_us"]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig3 measures both panels of Fig. 3 through the full MPI + fabric stack,
// sweeping the measurement grid concurrently (default worker pool).
func Fig3() ([]Fig3Row, error) {
	return Fig3Sweep(Fig3Sizes(), 0)
}

// Fig3Sweep is Fig3 over explicit sizes with an explicit worker-pool bound.
func Fig3Sweep(sizes []int, workers int) ([]Fig3Row, error) {
	rs := sweep.Run(Fig3Scenarios(sizes), sweep.Options{Workers: workers})
	return Fig3RowsFrom(sizes, rs)
}

// RenderFig3 renders both panels as text tables.
func RenderFig3(rows []Fig3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 3 (upper): end-to-end MPI bandwidth [MByte/s]\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s\n", "Size [B]", "CN-CN", "BN-BN", "CN-BN")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10d %10.1f %10.1f %10.1f\n",
			r.Size, r.BandwidthMBs[CNCN], r.BandwidthMBs[BNBN], r.BandwidthMBs[CNBN])
	}
	fmt.Fprintf(&sb, "\nFig. 3 (lower): end-to-end MPI latency [µs]\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s\n", "Size [B]", "CN-CN", "BN-BN", "CN-BN")
	for _, r := range rows {
		if r.Size > LatencyPanelMax {
			continue
		}
		fmt.Fprintf(&sb, "%-10d %10.2f %10.2f %10.2f\n",
			r.Size, r.LatencyUs[CNCN], r.LatencyUs[BNBN], r.LatencyUs[CNBN])
	}
	fmt.Fprintf(&sb, "\n%-40s %8s %8s\n", "Reference point", "ours", "paper")
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "%-40s %7.2fµs %7.2fµs\n", "Zero-size latency CN-CN", rows[0].LatencyUs[CNCN], PaperFig3.LatencyCNCNus)
		fmt.Fprintf(&sb, "%-40s %7.2fµs %7.2fµs\n", "Zero-size latency BN-BN", rows[0].LatencyUs[BNBN], PaperFig3.LatencyBNBNus)
		last := rows[len(rows)-1]
		fmt.Fprintf(&sb, "%-40s %5.0f MB/s %s\n", "Converged bandwidth (all pairs)",
			last.BandwidthMBs[CNCN], "~10-11 GB/s")
	}
	return sb.String()
}
