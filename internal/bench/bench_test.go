package bench

import (
	"strings"
	"testing"

	"clusterbooster/internal/xpic"
)

// quickCfg is a reduced Table II workload: ratios are preserved (times are
// step-linear and exactly particle-scale-invariant).
func quickCfg() xpic.Config {
	cfg := xpic.Table2Config()
	cfg.Steps = 30
	cfg.ParticleScale = 1024
	return cfg
}

func TestTable1Complete(t *testing.T) {
	rows := Table1()
	want := map[string]bool{
		"Processor": false, "Cores per node": false, "MPI latency": false,
		"Node count": false, "Peak performance": false,
	}
	for _, r := range rows {
		if _, ok := want[r.Feature]; ok {
			want[r.Feature] = true
		}
		if r.Cluster == "" || r.Booster == "" {
			t.Errorf("row %q has empty cells", r.Feature)
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("Table I row %q missing", f)
		}
	}
	txt := RenderTable1()
	for _, needle := range []string{"Intel Xeon E5-2680 v3", "Intel Xeon Phi 7210", "EXTOLL", "16", "Knights Landing"} {
		if !strings.Contains(txt, needle) {
			t.Errorf("rendered Table I missing %q", needle)
		}
	}
}

func TestTable2Render(t *testing.T) {
	txt := Table2(xpic.Table2Config())
	for _, needle := range []string{"4096", "2048", "-xMIC-AVX512"} {
		if !strings.Contains(txt, needle) {
			t.Errorf("Table II missing %q", needle)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 sweep in short mode")
	}
	rows, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig3Sizes()) {
		t.Fatalf("%d rows", len(rows))
	}
	// Small-message latency ordering: CN-CN < CN-BN < BN-BN.
	first := rows[0]
	if !(first.LatencyUs[CNCN] < first.LatencyUs[CNBN] && first.LatencyUs[CNBN] < first.LatencyUs[BNBN]) {
		t.Errorf("latency ordering broken: %+v", first.LatencyUs)
	}
	// Table I anchor points within 10%.
	if l := first.LatencyUs[CNCN]; l < 0.9*PaperFig3.LatencyCNCNus || l > 1.1*PaperFig3.LatencyCNCNus {
		t.Errorf("CN-CN latency %v µs, want ≈%v", l, PaperFig3.LatencyCNCNus)
	}
	if l := first.LatencyUs[BNBN]; l < 0.9*PaperFig3.LatencyBNBNus || l > 1.1*PaperFig3.LatencyBNBNus {
		t.Errorf("BN-BN latency %v µs, want ≈%v", l, PaperFig3.LatencyBNBNus)
	}
	// Large messages converge to fabric-limited bandwidth.
	last := rows[len(rows)-1]
	for _, k := range []PairKind{CNCN, BNBN, CNBN} {
		bw := last.BandwidthMBs[k]
		if bw < PaperFig3.ConvergedBandwidthMBsLow || bw > PaperFig3.ConvergedBandwidthMBsHigh {
			t.Errorf("%v converged bandwidth %v MB/s outside [%v, %v]",
				k, bw, PaperFig3.ConvergedBandwidthMBsLow, PaperFig3.ConvergedBandwidthMBsHigh)
		}
	}
	// Mid-size asymmetry: Booster endpoints slower.
	mid := rows[12] // 4 KiB
	if mid.BandwidthMBs[CNCN] <= mid.BandwidthMBs[BNBN] {
		t.Errorf("mid-size: CN-CN %v <= BN-BN %v MB/s", mid.BandwidthMBs[CNCN], mid.BandwidthMBs[BNBN])
	}
	// Render must include both panels and reference lines.
	txt := RenderFig3(rows)
	if !strings.Contains(txt, "bandwidth") || !strings.Contains(txt, "latency") {
		t.Error("render incomplete")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 runs in short mode")
	}
	res, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The four §IV-C statements, as bands.
	if v := res.FieldAdvantage(); v < 5.0 || v > 7.0 {
		t.Errorf("field advantage %v, want ≈6", v)
	}
	if v := res.ParticleAdvantage(); v < 1.25 || v > 1.45 {
		t.Errorf("particle advantage %v, want ≈1.35", v)
	}
	if v := res.GainVsCluster(); v < 1.15 || v > 1.45 {
		t.Errorf("gain vs cluster %v, want ≈1.28", v)
	}
	if v := res.GainVsBooster(); v < 1.10 || v > 1.35 {
		t.Errorf("gain vs booster %v, want ≈1.21", v)
	}
	// C+B wins against both.
	if res.Split.Makespan >= res.Cluster.Makespan || res.Split.Makespan >= res.Booster.Makespan {
		t.Error("C+B does not win")
	}
	txt := RenderFig7(res)
	if !strings.Contains(txt, "C+B") || !strings.Contains(txt, "paper") {
		t.Error("fig7 render incomplete")
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 runs in short mode")
	}
	res, err := Fig8(quickCfg(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d points", len(res.Points))
	}
	// Runtime decreases with nodes in every mode (strong scaling works).
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Cluster.Makespan >= res.Points[i-1].Cluster.Makespan {
			t.Errorf("cluster runtime not decreasing at %d nodes", res.Points[i].Nodes)
		}
		if res.Points[i].Split.Makespan >= res.Points[i-1].Split.Makespan {
			t.Errorf("C+B runtime not decreasing at %d nodes", res.Points[i].Nodes)
		}
	}
	// Efficiency starts at 1 by definition and degrades.
	if e := res.Efficiency(xpic.ClusterOnly, 0); e != 1 {
		t.Errorf("1-node efficiency = %v", e)
	}
	for i, pt := range res.Points {
		for _, m := range []xpic.Mode{xpic.ClusterOnly, xpic.BoosterOnly, xpic.SplitCB} {
			e := res.Efficiency(m, i)
			if e <= 0 || e > 1.02 {
				t.Errorf("%v efficiency at %d nodes = %v", m, pt.Nodes, e)
			}
		}
	}
	// C+B keeps winning at every scale.
	for i := range res.Points {
		if res.GainVsCluster(i) <= 1 || res.GainVsBooster(i) <= 1 {
			t.Errorf("C+B loses at %d nodes: %v %v", res.Points[i].Nodes,
				res.GainVsCluster(i), res.GainVsBooster(i))
		}
	}
	txt := RenderFig8(res)
	if !strings.Contains(txt, "efficiency") {
		t.Error("fig8 render incomplete")
	}
}

func TestPaperConstants(t *testing.T) {
	// Guard against accidental edits of the reference values.
	if PaperFig7.FieldAdvantage != 6.0 || PaperFig7.ParticleAdvantage != 1.35 {
		t.Error("PaperFig7 kernel ratios changed")
	}
	if PaperFig7.GainVsCluster != 1.28 || PaperFig7.GainVsBooster != 1.21 {
		t.Error("PaperFig7 gains changed")
	}
	if PaperFig8.EffSplit != 0.85 || PaperFig8.EffCluster != 0.79 || PaperFig8.EffBooster != 0.77 {
		t.Error("PaperFig8 efficiencies changed")
	}
	if PaperFig8.GainVsCluster != 1.38 || PaperFig8.GainVsBooster != 1.34 {
		t.Error("PaperFig8 gains changed")
	}
}
