package bench

// Benchmarks of the conservative parallel kernel against its serial
// baseline, on the workloads the -kworkers mode was built for: the
// fig8-scale strong-scaling points (thousands of ranks per kernel) and the
// facility arrival streams. The serial/par4 pairs back the "speedups"
// section of BENCH_kernel.json — `cbctl bench -check` requires the recorded
// ratio on hosts with enough cores (results are bit-identical either way;
// only wall-clock may differ).

import (
	"testing"

	"clusterbooster/internal/core"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/resilience"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// benchScaleConfig is the fig8-scale workload (exp.ScaleProfile, restated
// here because internal/exp imports this package): 2048 rows decompose to
// the 2-rows-per-rank floor at n = 1024.
func benchScaleConfig() xpic.Config {
	return xpic.Config{
		NX:                  8,
		NY:                  2048,
		PPC:                 8,
		Species:             xpic.DefaultSpecies(),
		Steps:               8,
		Dt:                  1.0,
		Theta:               0.5,
		CGTol:               1e-10,
		CGMaxIter:           12,
		DiagEvery:           4,
		DensityPerturbation: 0.30,
		ParticleScale:       4,
		Seed:                20180521,
	}
}

// benchScale4096Config is the fig8-scale4096 workload (exp.Scale4096Profile
// restated): 8192 rows, trimmed steps, floor at n = 4096.
func benchScale4096Config() xpic.Config {
	cfg := benchScaleConfig()
	cfg.NY = 8192
	cfg.Steps = 4
	cfg.CGMaxIter = 8
	cfg.DiagEvery = 2
	return cfg
}

// benchScalePoint runs the Booster-only strong-scaling point at n ranks end
// to end, with the requested kernel worker count, b.N times.
func benchScalePoint(b *testing.B, n, kworkers int, cfg xpic.Config) {
	prev := psmpi.DefaultKernelWorkers()
	psmpi.SetDefaultKernelWorkers(kworkers)
	defer psmpi.SetDefaultKernelWorkers(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.New(n, n, core.Options{WithoutStorage: true})
		if _, err := sys.RunXPic(xpic.BoosterOnly, n, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelFig8Scale runs the n=1024 fig8-scale Booster point serial
// and on 4 kernel workers.
func BenchmarkKernelFig8Scale(b *testing.B) {
	cfg := benchScaleConfig()
	b.Run("serial", func(b *testing.B) { benchScalePoint(b, 1024, 1, cfg) })
	b.Run("par4", func(b *testing.B) { benchScalePoint(b, 1024, 4, cfg) })
}

// BenchmarkKernelFig8Scale4096 runs the n=4096 fig8-scale4096 Booster point
// serial and on 4 kernel workers — the speedup-gated pair: on a >=4-core
// host par4 must beat serial by the ratio recorded in BENCH_kernel.json.
func BenchmarkKernelFig8Scale4096(b *testing.B) {
	cfg := benchScale4096Config()
	b.Run("serial", func(b *testing.B) { benchScalePoint(b, 4096, 1, cfg) })
	b.Run("par4", func(b *testing.B) { benchScalePoint(b, 4096, 4, cfg) })
}

// BenchmarkKernelFacilityFailures is BenchmarkKernelFacility on a failing
// machine: the same 1000-job backfill stream under the harsh mtbf12-style
// per-module failure/repair processes with checkpointed rewinds — the fault
// path's kill/requeue/repair machinery on top of the scheduler hot path.
func BenchmarkKernelFacilityFailures(b *testing.B) {
	p := sched.FacilityParams{
		Policy: sched.FacilityBackfill,
		Jobs:   1000,
		Load:   1.4,
		Seed:   20180521 + 140,
		Faults: &sched.FacilityFaults{
			Cluster:    machine.FailureProfile{MTBF: 20, MTTR: 1.5},
			Booster:    machine.FailureProfile{MTBF: 12, MTTR: 1.5},
			Seed:       20180711,
			MaxRetries: 16,
			Rewind: resilience.FacilityCheckpoint{
				Every:   250 * vclock.Millisecond,
				Cost:    10 * vclock.Millisecond,
				Restore: 20 * vclock.Millisecond,
			},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.RunFacility(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelFacility feeds the overload-regime 1000-job backfill
// stream (the fig-facility load=1.4 grid point) through one kernel per
// iteration — the batch-scheduler hot path.
func BenchmarkKernelFacility(b *testing.B) {
	p := sched.FacilityParams{
		Policy: sched.FacilityBackfill,
		Jobs:   1000,
		Load:   1.4,
		Seed:   20180521 + 140,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.RunFacility(p); err != nil {
			b.Fatal(err)
		}
	}
}
