package bench

// Hot-path benchmarks for the execution kernel: how fast the host can turn
// the simulated MPI traffic of the paper's workloads. These are wall-clock
// benchmarks of the simulator itself (virtual-time results are asserted
// elsewhere); run them before and after kernel changes:
//
//	go test ./internal/bench -run xxx -bench Kernel -benchmem
//
// CI executes them with -benchtime=1x as a smoke test so they cannot rot.

import (
	"testing"

	"clusterbooster/internal/core"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioexp"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/xpic"
)

// benchRuntime boots a runtime over c cluster and b booster nodes.
func benchRuntime(c, b int) *psmpi.Runtime {
	sys := machine.New(c, b)
	return psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
}

// benchChunk is how many iterations one launched job performs. Chunking b.N
// into fresh jobs on fresh systems keeps the virtual link history at a
// realistic per-job size (a benchmark that ran millions of messages over one
// fabric would mostly measure the ever-growing reservation history, which no
// real sweep scenario has) and includes the job boot cost sweeps actually
// pay.
const benchChunk = 512

// benchPingPong bounces one message of the given size back and forth between
// two cluster ranks, b.N times across chunked jobs.
func benchPingPong(b *testing.B, bytes int) {
	payload := make([]float64, bytes/8)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += benchChunk {
		iters := min(benchChunk, b.N-done)
		rt := benchRuntime(2, 0)
		nodes := rt.System().Module(machine.Cluster)[:2]
		_, err := rt.Launch(psmpi.LaunchSpec{Nodes: nodes, Main: func(p *psmpi.Proc) error {
			w := p.World()
			buf := make([]float64, len(payload))
			for i := 0; i < iters; i++ {
				if p.Rank() == 0 {
					p.SendF64(w, 1, 0, payload)
					p.RecvF64(w, 1, 1, buf)
				} else {
					p.RecvF64(w, 0, 0, buf)
					p.SendF64(w, 0, 1, payload)
				}
			}
			return nil
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelPingPongEager measures the eager-protocol p2p hot path
// (1 KiB, below the 16 KiB threshold).
func BenchmarkKernelPingPongEager(b *testing.B) { benchPingPong(b, 1<<10) }

// BenchmarkKernelPingPongRendezvous measures the rendezvous-protocol p2p hot
// path (256 KiB: RTS/CTS handshake plus blocking-sender completion).
func BenchmarkKernelPingPongRendezvous(b *testing.B) { benchPingPong(b, 256<<10) }

// benchAllreduce performs b.N 8-element allreduces over the given rank
// count, across chunked jobs.
func benchAllreduce(b *testing.B, ranks int) {
	chunk := benchChunk
	if ranks >= 256 {
		chunk = 64 // large jobs: keep per-job virtual history realistic
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += chunk {
		iters := min(chunk, b.N-done)
		rt := benchRuntime(ranks, 0)
		nodes := rt.System().Module(machine.Cluster)[:ranks]
		_, err := rt.Launch(psmpi.LaunchSpec{Nodes: nodes, Main: func(p *psmpi.Proc) error {
			w := p.World()
			buf := make([]float64, 8)
			for i := 0; i < iters; i++ {
				buf[0] = float64(p.Rank())
				p.AllreduceF64(w, buf, psmpi.OpSum)
			}
			return nil
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelAllreduce8 exercises the collective tree at prototype scale.
func BenchmarkKernelAllreduce8(b *testing.B) { benchAllreduce(b, 8) }

// BenchmarkKernelAllreduce64 exercises the collective tree at 8x the
// prototype's Booster, where host synchronization starts to dominate.
func BenchmarkKernelAllreduce64(b *testing.B) { benchAllreduce(b, 64) }

// BenchmarkKernelAllreduce512 exercises the collective tree far past the
// prototype — the scale the fig8-scale experiments run at, where the
// goroutine-per-rank rendezvous implementation paid for host synchronisation
// and allocation on every hop.
func BenchmarkKernelAllreduce512(b *testing.B) { benchAllreduce(b, 512) }

// BenchmarkKernelFig7Split runs the Fig. 7 C+B pipeline (spawn, split
// solvers, Issend/Irecv exchange, halo traffic, collective diagnostics) on a
// communication-heavy workload: a small grid over many steps, so the
// wall-clock weights the pipeline machinery — the execution kernel's hot
// path — alongside the physics kernels.
func BenchmarkKernelFig7Split(b *testing.B) {
	cfg := xpic.QuickConfig(200)
	cfg.ParticleScale = 32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.New(1, 1, core.Options{WithoutStorage: true})
		if _, err := sys.RunXPicSplit(1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelFig8SplitN8 runs the paper sweep's heaviest scenario — the
// ci-quick Fig. 8 C+B point at n=8 (16 ranks: spawn, halo and migration
// traffic, CG collectives, interface exchange) — end to end.
func BenchmarkKernelFig8SplitN8(b *testing.B) {
	cfg := xpic.Table2Config()
	cfg.Steps = 60
	cfg.ParticleScale = 512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.New(8, 8, core.Options{WithoutStorage: true})
		if _, err := sys.RunXPicSplit(8, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelFigIO runs the fig-io family's heaviest I/O strategies end
// to end — the SIONlib global container and the async BeeOND cache at the
// n=16, 8 MiB grid point — exercising the whole migrated I/O-on-kernel
// stack: device queues, striped FS writes, cache flush callbacks, barriers.
func BenchmarkKernelFigIO(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range []ioexp.Strategy{ioexp.SIONGlobal, ioexp.CacheAsync} {
			if _, err := ioexp.Run(ioexp.Params{Strategy: s, Nodes: 16, Size: 8 << 20}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
