// Package bench is the experiment harness: for every table and figure of the
// paper's evaluation it provides a generator that runs the corresponding
// workload on a simulated system and returns the same rows/series the paper
// reports, plus renderers that print them next to the paper's reference
// values (recorded in paper.go).
package bench

import (
	"fmt"
	"strings"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/sweep"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// AllModes lists the three execution scenarios of §IV-C in figure order.
func AllModes() []xpic.Mode {
	return []xpic.Mode{xpic.ClusterOnly, xpic.BoosterOnly, xpic.SplitCB}
}

// Table1Row is one row of Table I (hardware configuration).
type Table1Row struct {
	Feature string `json:"feature"`
	Cluster string `json:"cluster"`
	Booster string `json:"booster"`
}

// Table1 reproduces Table I from the machine and fabric models.
func Table1() []Table1Row {
	c, b := machine.ClusterNode(), machine.BoosterNode()
	sys := machine.Prototype()
	gb := func(v int64) string { return fmt.Sprintf("%d GB", v>>30) }
	return []Table1Row{
		{"Processor", c.Processor, b.Processor},
		{"Microarchitecture", c.Arch.String(), b.Arch.String()},
		{"Sockets per node", fmt.Sprint(c.Sockets), fmt.Sprint(b.Sockets)},
		{"Cores per node", fmt.Sprint(c.Cores), fmt.Sprint(b.Cores)},
		{"Threads per node", fmt.Sprint(c.Threads), fmt.Sprint(b.Threads)},
		{"Frequency", fmt.Sprintf("%.1f GHz", c.FreqGHz), fmt.Sprintf("%.1f GHz", b.FreqGHz)},
		{"Memory (RAM)", gb(c.RAMBytes), fmt.Sprintf("%s MCDRAM + %s DDR4", gb(b.MCDRAMBytes), gb(b.RAMBytes))},
		{"NVMe capacity", "400 GB", "400 GB"},
		{"Interconnect", "EXTOLL Tourmalet A3", "EXTOLL Tourmalet A3"},
		{"Max. link bandwidth", fmt.Sprintf("%.0f Gbit/s", c.LinkGbits), fmt.Sprintf("%.0f Gbit/s", b.LinkGbits)},
		{"MPI latency", c.MPIBaseLatency.String(), b.MPIBaseLatency.String()},
		{"Node count", fmt.Sprint(machine.PrototypeNodeCount(machine.Cluster)), fmt.Sprint(machine.PrototypeNodeCount(machine.Booster))},
		{"Peak performance", fmt.Sprintf("%.0f TFlop/s", sys.TotalPeakTFlops(machine.Cluster)), fmt.Sprintf("%.0f TFlop/s", sys.TotalPeakTFlops(machine.Booster))},
	}
}

// RenderTable1 renders Table I as text.
func RenderTable1() string { return RenderTable1Rows(Table1()) }

// RenderTable1Rows renders previously generated Table I rows as text.
func RenderTable1Rows(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I: Hardware configuration of the DEEP-ER prototype\n")
	fmt.Fprintf(&sb, "%-22s | %-24s | %-28s\n", "Feature", "Cluster", "Booster")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 80))
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s | %-24s | %-28s\n", r.Feature, r.Cluster, r.Booster)
	}
	return sb.String()
}

// Table2Row is one setting of Table II (experiment setup).
type Table2Row struct {
	Setting string `json:"setting"`
	Value   string `json:"value"`
}

// Table2Rows reproduces Table II for a config as structured rows.
func Table2Rows(cfg xpic.Config) []Table2Row {
	return []Table2Row{
		{"Number of cells per node", fmt.Sprintf("%d (grid %dx%d)", cfg.Cells(), cfg.NX, cfg.NY)},
		{"Number of particles per cell", fmt.Sprint(cfg.PPC)},
		{"Compilation flags", "-openmp, -mavx (Cluster), -xMIC-AVX512 (Booster)"},
		{"Time steps", fmt.Sprint(cfg.Steps)},
		{"Species", fmt.Sprint(len(cfg.Species))},
	}
}

// Table2 renders the experiment setup (Table II) for a config.
func Table2(cfg xpic.Config) string { return RenderTable2Rows(Table2Rows(cfg)) }

// RenderTable2Rows renders previously generated Table II rows as text.
func RenderTable2Rows(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II: xPic experiment setup\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-34s %s\n", r.Setting, r.Value)
	}
	return sb.String()
}

// Fig7Result holds the three single-node scenarios of Fig. 7.
type Fig7Result struct {
	Cluster xpic.Report `json:"cluster"`
	Booster xpic.Report `json:"booster"`
	Split   xpic.Report `json:"split"`
}

// FieldAdvantage returns how much faster the field solver is on the Cluster.
func (r Fig7Result) FieldAdvantage() float64 {
	return r.Booster.FieldTime.Seconds() / r.Cluster.FieldTime.Seconds()
}

// ParticleAdvantage returns how much faster the particle solver is on the
// Booster.
func (r Fig7Result) ParticleAdvantage() float64 {
	return r.Cluster.ParticleTime.Seconds() / r.Booster.ParticleTime.Seconds()
}

// GainVsCluster returns the C+B speed-up over Cluster-only.
func (r Fig7Result) GainVsCluster() float64 {
	return r.Cluster.Makespan.Seconds() / r.Split.Makespan.Seconds()
}

// GainVsBooster returns the C+B speed-up over Booster-only.
func (r Fig7Result) GainVsBooster() float64 {
	return r.Booster.Makespan.Seconds() / r.Split.Makespan.Seconds()
}

// Fig7Grid declares the Fig. 7 study as a sweep grid: the three execution
// modes on one node per solver. Each scenario boots a fresh system
// (independent fabric state), as consecutive batch jobs on the prototype
// would see.
func Fig7Grid(cfg xpic.Config) sweep.Grid {
	return sweep.Grid{
		Name:       "fig7",
		NodeCounts: []int{1},
		Modes:      AllModes(),
		Workloads:  []sweep.WorkloadVariant{{Config: cfg}},
	}
}

// Fig7 runs the three scenarios of Fig. 7 concurrently through the sweep
// engine (default worker pool).
func Fig7(cfg xpic.Config) (Fig7Result, error) {
	return Fig7Sweep(cfg, 0)
}

// Fig7Sweep is Fig7 with an explicit worker-pool bound.
func Fig7Sweep(cfg xpic.Config, workers int) (Fig7Result, error) {
	scenarios, err := Fig7Grid(cfg).Scenarios()
	if err != nil {
		return Fig7Result{}, err
	}
	return Fig7From(sweep.Run(scenarios, sweep.Options{Workers: workers}))
}

// Fig7From reassembles the Fig. 7 result from a sweep over
// Fig7Grid(cfg).Scenarios().
func Fig7From(rs sweep.ResultSet) (Fig7Result, error) {
	var out Fig7Result
	if err := rs.FirstError(); err != nil {
		return out, fmt.Errorf("bench: fig7: %w", err)
	}
	if rs.Scenarios != len(AllModes()) {
		return out, fmt.Errorf("bench: fig7: %d results for %d grid points", rs.Scenarios, len(AllModes()))
	}
	// Grid order: modes innermost-to-outermost as declared in Fig7Grid.
	out.Cluster = *rs.Results[0].XPic
	out.Booster = *rs.Results[1].XPic
	out.Split = *rs.Results[2].XPic
	return out, nil
}

// RenderFig7 renders the Fig. 7 bars and derived ratios next to the paper's.
func RenderFig7(r Fig7Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 7: xPic runtime on one node per solver [s]\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s\n", "", "Fields", "Particles", "Total")
	for _, rep := range []xpic.Report{r.Cluster, r.Booster, r.Split} {
		fmt.Fprintf(&sb, "%-10s %10.2f %10.2f %10.2f\n",
			rep.Mode, rep.FieldTime.Seconds(), rep.ParticleTime.Seconds(), rep.Makespan.Seconds())
	}
	fmt.Fprintf(&sb, "\n%-34s %8s %8s\n", "Derived quantity", "ours", "paper")
	fmt.Fprintf(&sb, "%-34s %8.2f %8.2f\n", "Field solver: Cluster advantage", r.FieldAdvantage(), PaperFig7.FieldAdvantage)
	fmt.Fprintf(&sb, "%-34s %8.2f %8.2f\n", "Particle solver: Booster advantage", r.ParticleAdvantage(), PaperFig7.ParticleAdvantage)
	fmt.Fprintf(&sb, "%-34s %8.2f %8.2f\n", "C+B gain vs Cluster", r.GainVsCluster(), PaperFig7.GainVsCluster)
	fmt.Fprintf(&sb, "%-34s %8.2f %8.2f\n", "C+B gain vs Booster", r.GainVsBooster(), PaperFig7.GainVsBooster)
	fmt.Fprintf(&sb, "%-34s %7.1f%% %8s\n", "Coupling overhead (C+B)", 100*r.Split.OverheadFraction(), "3-4%")
	return sb.String()
}

// Fig8Point is one x-axis position of Fig. 8.
type Fig8Point struct {
	Nodes   int         `json:"nodes"`
	Cluster xpic.Report `json:"cluster"`
	Booster xpic.Report `json:"booster"`
	Split   xpic.Report `json:"split"`
}

// Fig8Result is the full scaling series.
type Fig8Result struct {
	Points []Fig8Point `json:"points"`
}

// Fig8Grid declares the strong-scaling study of Fig. 8 as a sweep grid: the
// Table II problem at each node count, in all three modes.
func Fig8Grid(cfg xpic.Config, nodeCounts []int) sweep.Grid {
	return sweep.Grid{
		Name:       "fig8",
		NodeCounts: nodeCounts,
		Modes:      AllModes(),
		Workloads:  []sweep.WorkloadVariant{{Config: cfg}},
	}
}

// Fig8 runs the strong-scaling study concurrently through the sweep engine
// (default worker pool).
func Fig8(cfg xpic.Config, nodeCounts []int) (Fig8Result, error) {
	return Fig8Sweep(cfg, nodeCounts, 0)
}

// Fig8Sweep is Fig8 with an explicit worker-pool bound.
func Fig8Sweep(cfg xpic.Config, nodeCounts []int, workers int) (Fig8Result, error) {
	scenarios, err := Fig8Grid(cfg, nodeCounts).Scenarios()
	if err != nil {
		return Fig8Result{}, err
	}
	return Fig8From(nodeCounts, sweep.Run(scenarios, sweep.Options{Workers: workers}))
}

// Fig8From reassembles the Fig. 8 series from a sweep over
// Fig8Grid(cfg, nodeCounts).Scenarios().
func Fig8From(nodeCounts []int, rs sweep.ResultSet) (Fig8Result, error) {
	var out Fig8Result
	if err := rs.FirstError(); err != nil {
		return out, fmt.Errorf("bench: fig8: %w", err)
	}
	modes := len(AllModes())
	if rs.Scenarios != len(nodeCounts)*modes {
		return out, fmt.Errorf("bench: fig8: %d results for %d grid points", rs.Scenarios, len(nodeCounts)*modes)
	}
	// Grid order: node counts outermost, modes in AllModes order within.
	for i, n := range nodeCounts {
		out.Points = append(out.Points, Fig8Point{
			Nodes:   n,
			Cluster: *rs.Results[i*modes+0].XPic,
			Booster: *rs.Results[i*modes+1].XPic,
			Split:   *rs.Results[i*modes+2].XPic,
		})
	}
	return out, nil
}

// Efficiency returns the parallel efficiency of a mode at point i relative
// to the 1-node point: T(1) / (N · T(N)).
func (r Fig8Result) Efficiency(mode xpic.Mode, i int) float64 {
	t1 := r.report(mode, 0).Makespan.Seconds()
	pt := r.Points[i]
	tn := r.report(mode, i).Makespan.Seconds()
	return t1 / (float64(pt.Nodes) * tn)
}

func (r Fig8Result) report(mode xpic.Mode, i int) xpic.Report {
	switch mode {
	case xpic.ClusterOnly:
		return r.Points[i].Cluster
	case xpic.BoosterOnly:
		return r.Points[i].Booster
	default:
		return r.Points[i].Split
	}
}

// GainVsCluster returns the C+B speed-up over Cluster-only at point i.
func (r Fig8Result) GainVsCluster(i int) float64 {
	return r.Points[i].Cluster.Makespan.Seconds() / r.Points[i].Split.Makespan.Seconds()
}

// GainVsBooster returns the C+B speed-up over Booster-only at point i.
func (r Fig8Result) GainVsBooster(i int) float64 {
	return r.Points[i].Booster.Makespan.Seconds() / r.Points[i].Split.Makespan.Seconds()
}

// RenderFig8 renders the scaling plot data (runtime and efficiency).
func RenderFig8(r Fig8Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 8: xPic strong scaling (runtime [s] and parallel efficiency)\n")
	fmt.Fprintf(&sb, "%-6s | %9s %9s %9s | %7s %7s %7s | %8s %8s\n",
		"Nodes", "Cluster", "Booster", "C+B", "eff(C)", "eff(B)", "eff(C+B)", "C+B/C", "C+B/B")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 96))
	for i, pt := range r.Points {
		fmt.Fprintf(&sb, "%-6d | %9.2f %9.2f %9.2f | %6.1f%% %6.1f%% %6.1f%% | %8.2f %8.2f\n",
			pt.Nodes,
			pt.Cluster.Makespan.Seconds(), pt.Booster.Makespan.Seconds(), pt.Split.Makespan.Seconds(),
			100*r.Efficiency(xpic.ClusterOnly, i), 100*r.Efficiency(xpic.BoosterOnly, i),
			100*r.Efficiency(xpic.SplitCB, i),
			r.GainVsCluster(i), r.GainVsBooster(i))
	}
	last := len(r.Points) - 1
	fmt.Fprintf(&sb, "\n%-40s %8s %8s\n", "At the largest scale", "ours", "paper")
	fmt.Fprintf(&sb, "%-40s %8.2f %8.2f\n", "C+B gain vs Cluster", r.GainVsCluster(last), PaperFig8.GainVsCluster)
	fmt.Fprintf(&sb, "%-40s %8.2f %8.2f\n", "C+B gain vs Booster", r.GainVsBooster(last), PaperFig8.GainVsBooster)
	fmt.Fprintf(&sb, "%-40s %7.1f%% %7.1f%%\n", "Parallel efficiency C+B", 100*r.Efficiency(xpic.SplitCB, last), 100*PaperFig8.EffSplit)
	fmt.Fprintf(&sb, "%-40s %7.1f%% %7.1f%%\n", "Parallel efficiency Cluster", 100*r.Efficiency(xpic.ClusterOnly, last), 100*PaperFig8.EffCluster)
	fmt.Fprintf(&sb, "%-40s %7.1f%% %7.1f%%\n", "Parallel efficiency Booster", 100*r.Efficiency(xpic.BoosterOnly, last), 100*PaperFig8.EffBooster)
	return sb.String()
}

// PaperGrid declares the paper's full evaluation space as one sweep: the
// workload at every Fig. 8 node count in all three modes (Fig. 7 is the
// n=1 slice, the Table II setup parameterises the workload). With
// checkpoints, the DEEP-ER resiliency axis (SCR levels) multiplies in.
func PaperGrid(cfg xpic.Config, withCheckpoints bool) sweep.Grid {
	g := sweep.Grid{
		Name:       "paper",
		NodeCounts: []int{1, 2, 4, 8},
		Modes:      AllModes(),
		Workloads:  []sweep.WorkloadVariant{{Name: "table2", Config: cfg}},
	}
	if withCheckpoints {
		g.SCRs = []sweep.SCRVariant{
			{Name: "scr=local", Spec: sweep.CheckpointAt(scr.LevelLocal)},
			{Name: "scr=buddy", Spec: sweep.CheckpointAt(scr.LevelBuddy)},
			{Name: "scr=global", Spec: sweep.CheckpointAt(scr.LevelGlobal)},
		}
	}
	return g
}

// helper shared with fig3.go
func mbs(bytesPerSecond float64) float64 { return bytesPerSecond / 1e6 }

func us(t vclock.Time) float64 { return t.Micros() }
