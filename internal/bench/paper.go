package bench

// Reference values extracted from the paper (§IV-C and Figs. 3, 7, 8), used
// by the renderers and by the shape-assertion tests: the reproduction is
// expected to match these in *shape* (who wins, by what factor), not in
// absolute seconds.

// PaperFig7 holds the single-node statements of §IV-C.
var PaperFig7 = struct {
	FieldAdvantage    float64 // field solver 6× faster on the Cluster
	ParticleAdvantage float64 // particle solver 1.35× faster on the Booster
	GainVsCluster     float64 // C+B 1.28× faster than Cluster-only
	GainVsBooster     float64 // C+B 1.21× faster than Booster-only
	OverheadLow       float64 // 3 % …
	OverheadHigh      float64 // … 4 % communication overhead per solver
}{
	FieldAdvantage:    6.0,
	ParticleAdvantage: 1.35,
	GainVsCluster:     1.28,
	GainVsBooster:     1.21,
	OverheadLow:       0.03,
	OverheadHigh:      0.04,
}

// PaperFig8 holds the 8-nodes-per-solver statements of §IV-C.
var PaperFig8 = struct {
	GainVsCluster float64 // 1.38× at 8 nodes
	GainVsBooster float64 // 1.34× at 8 nodes
	EffSplit      float64 // 85 % parallel efficiency (C+B)
	EffCluster    float64 // 79 %
	EffBooster    float64 // 77 %
}{
	GainVsCluster: 1.38,
	GainVsBooster: 1.34,
	EffSplit:      0.85,
	EffCluster:    0.79,
	EffBooster:    0.77,
}

// PaperFig3 holds the fabric statements of §II-B / Fig. 3.
var PaperFig3 = struct {
	LatencyCNCNus float64 // 1.0 µs CN-CN (Table I)
	LatencyBNBNus float64 // 1.8 µs BN-BN (Table I)
	// Large messages: all pairs converge to fabric-limited bandwidth
	// (~10-11 GB/s payload on the 100 Gbit/s Tourmalet links).
	ConvergedBandwidthMBsLow  float64
	ConvergedBandwidthMBsHigh float64
}{
	LatencyCNCNus:             1.0,
	LatencyBNBNus:             1.8,
	ConvergedBandwidthMBsLow:  9000,
	ConvergedBandwidthMBsHigh: 12500,
}
