package engine

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats counts what one kernel instance did. The global aggregate across all
// kernels of the process (every launched job of every scenario) is available
// through Global; deepsim -stats and cbctl run -stats print it.
//
// The counters satisfy Events == Switches + Kept + Callbacks on every clean
// run: each processed event either handed the baton to another task, was
// consumed by the task that already held it, or ran a callback.
type Stats struct {
	// Events is the number of events processed (task starts, wakeups,
	// timer completions, callbacks), baton-keeping fast paths included.
	Events uint64
	// Parks counts how often a task yielded the baton in the kernel
	// (blocking parks and sleeps that crossed tasks).
	Parks uint64
	// Switches counts goroutine handoffs (events that moved the baton to a
	// different task).
	Switches uint64
	// Kept counts events consumed by the task already holding the baton
	// (the SleepUntil keep-the-baton fast path): no goroutine switch.
	Kept uint64
	// Callbacks counts callback events (CallAt) executed.
	Callbacks uint64
	// PeakParked is the high-water mark of simultaneously parked tasks
	// (tasks in the blocked set, awaiting a wakeup event).
	PeakParked int
	// Tasks is the number of tasks registered over the kernel's lifetime.
	Tasks int
	// Wall is the host time between Run's dispatch and the last exit.
	Wall time.Duration
}

// EventsPerSec returns the wall-clock event rate.
func (s Stats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// String renders the stats in the -stats flag format.
func (s Stats) String() string {
	return fmt.Sprintf("events=%d events/sec=%.0f parks=%d switches=%d kept=%d callbacks=%d peak_parked=%d tasks=%d wall=%v",
		s.Events, s.EventsPerSec(), s.Parks, s.Switches, s.Kept, s.Callbacks, s.PeakParked, s.Tasks, s.Wall)
}

// Process-wide aggregate, maintained with atomics: kernels finish on
// whatever sweep worker ran them.
var global struct {
	engines    atomic.Uint64
	events     atomic.Uint64
	parks      atomic.Uint64
	switches   atomic.Uint64
	kept       atomic.Uint64
	callbacks  atomic.Uint64
	tasks      atomic.Uint64
	wallNanos  atomic.Int64
	peakParked atomic.Int64
}

// publishGlobal folds one finished kernel's counters into the aggregate.
func publishGlobal(s Stats) {
	global.engines.Add(1)
	global.events.Add(s.Events)
	global.parks.Add(s.Parks)
	global.switches.Add(s.Switches)
	global.kept.Add(s.Kept)
	global.callbacks.Add(s.Callbacks)
	global.tasks.Add(uint64(s.Tasks))
	global.wallNanos.Add(int64(s.Wall))
	for {
		cur := global.peakParked.Load()
		if int64(s.PeakParked) <= cur || global.peakParked.CompareAndSwap(cur, int64(s.PeakParked)) {
			return
		}
	}
}

// GlobalStats is the process-wide aggregate over all finished kernels.
type GlobalStats struct {
	Engines uint64
	Stats   // Wall is summed kernel-busy time, not elapsed host time
}

// Global snapshots the process-wide aggregate.
func Global() GlobalStats {
	return GlobalStats{
		Engines: global.engines.Load(),
		Stats: Stats{
			Events:     global.events.Load(),
			Parks:      global.parks.Load(),
			Switches:   global.switches.Load(),
			Kept:       global.kept.Load(),
			Callbacks:  global.callbacks.Load(),
			PeakParked: int(global.peakParked.Load()),
			Tasks:      int(global.tasks.Load()),
			Wall:       time.Duration(global.wallNanos.Load()),
		},
	}
}

// String renders the aggregate in the -stats flag format.
func (g GlobalStats) String() string {
	return fmt.Sprintf("engines=%d %s", g.Engines, g.Stats)
}
