package engine

import (
	"fmt"
	"sync/atomic"
	"time"

	"clusterbooster/internal/vclock"
)

// Stats counts what one kernel instance did. The global aggregate across all
// kernels of the process (every launched job of every scenario) is available
// through Global; deepsim -stats and cbctl run -stats print it.
//
// The counters satisfy Events == Switches + Kept + Callbacks on every clean
// run: each processed event either handed the baton to another task, was
// consumed by the task that already held it, or ran a callback.
type Stats struct {
	// Events is the number of events processed (task starts, wakeups,
	// timer completions, callbacks), baton-keeping fast paths included.
	Events uint64
	// Parks counts how often a task yielded the baton in the kernel
	// (blocking parks and sleeps that crossed tasks).
	Parks uint64
	// Switches counts goroutine handoffs (events that moved the baton to a
	// different task).
	Switches uint64
	// Kept counts events consumed by the task already holding the baton
	// (the SleepUntil keep-the-baton fast path): no goroutine switch.
	Kept uint64
	// Callbacks counts callback events (CallAt) executed.
	Callbacks uint64
	// PeakParked is the high-water mark of simultaneously parked tasks
	// (tasks in the blocked set, awaiting a wakeup event).
	PeakParked int
	// Tasks is the number of tasks registered over the kernel's lifetime.
	Tasks int
	// Wall is the host time between Run's dispatch and the last exit.
	Wall time.Duration

	// Parallel-kernel counters, all zero on a serial kernel.

	// Groups is the number of task groups of the parallel partition.
	Groups int
	// Rounds counts the synchronous safe-window rounds.
	Rounds uint64
	// GroupRuns counts group activations summed over rounds — how many
	// times a group's event chain was kicked off ("group switches").
	GroupRuns uint64
	// CrossEvents counts deferred cross-group effects (message deliveries,
	// rendezvous completions, spawn arming) replayed at round barriers.
	CrossEvents uint64
	// WindowSum is the summed safe-window width over all rounds; see
	// WindowAvg.
	WindowSum vclock.Time
	// Fallback is non-empty when parallel execution was requested but the
	// kernel ran serial, naming the reason ("zero lookahead", "tracing",
	// "failure injection", ...).
	Fallback string
}

// WindowAvg is the mean safe-window width per round (0 on a serial run).
func (s Stats) WindowAvg() vclock.Time {
	if s.Rounds == 0 {
		return 0
	}
	return s.WindowSum / vclock.Time(s.Rounds)
}

// EventsPerSec returns the wall-clock event rate.
func (s Stats) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// String renders the stats in the -stats flag format. Serial kernels keep
// the historic line; parallel activity (or a recorded fallback) appends the
// par_* counters.
func (s Stats) String() string {
	out := fmt.Sprintf("events=%d events/sec=%.0f parks=%d switches=%d kept=%d callbacks=%d peak_parked=%d tasks=%d wall=%v",
		s.Events, s.EventsPerSec(), s.Parks, s.Switches, s.Kept, s.Callbacks, s.PeakParked, s.Tasks, s.Wall)
	if s.Groups > 0 || s.Rounds > 0 {
		out += fmt.Sprintf(" par_groups=%d par_rounds=%d par_window_avg=%v par_group_runs=%d par_cross=%d",
			s.Groups, s.Rounds, s.WindowAvg(), s.GroupRuns, s.CrossEvents)
	}
	if s.Fallback != "" {
		out += fmt.Sprintf(" par_fallback=%q", s.Fallback)
	}
	return out
}

// Process-wide aggregate, maintained with atomics: kernels finish on
// whatever sweep worker ran them.
var global struct {
	engines    atomic.Uint64
	events     atomic.Uint64
	parks      atomic.Uint64
	switches   atomic.Uint64
	kept       atomic.Uint64
	callbacks  atomic.Uint64
	tasks      atomic.Uint64
	wallNanos  atomic.Int64
	peakParked atomic.Int64

	parKernels   atomic.Uint64
	parFallbacks atomic.Uint64
	maxGroups    atomic.Int64
	rounds       atomic.Uint64
	groupRuns    atomic.Uint64
	crossEvents  atomic.Uint64
	windowNanos  atomic.Int64
}

// publishGlobal folds one finished kernel's counters into the aggregate.
func publishGlobal(s Stats) {
	global.engines.Add(1)
	global.events.Add(s.Events)
	global.parks.Add(s.Parks)
	global.switches.Add(s.Switches)
	global.kept.Add(s.Kept)
	global.callbacks.Add(s.Callbacks)
	global.tasks.Add(uint64(s.Tasks))
	global.wallNanos.Add(int64(s.Wall))
	if s.Groups > 0 {
		global.parKernels.Add(1)
	}
	if s.Fallback != "" {
		global.parFallbacks.Add(1)
	}
	global.rounds.Add(s.Rounds)
	global.groupRuns.Add(s.GroupRuns)
	global.crossEvents.Add(s.CrossEvents)
	global.windowNanos.Add(int64(s.WindowSum.Seconds() * 1e9))
	raiseMax(&global.maxGroups, int64(s.Groups))
	raiseMax(&global.peakParked, int64(s.PeakParked))
}

// raiseMax lifts the atomic to v if v is larger (lock-free high-water mark).
func raiseMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// GlobalStats is the process-wide aggregate over all finished kernels.
type GlobalStats struct {
	Engines uint64
	// ParKernels counts kernels that ran the conservative parallel mode;
	// ParFallbacks counts kernels that requested it but ran serial.
	ParKernels   uint64
	ParFallbacks uint64
	// Wall is summed kernel-busy time, not elapsed host time, and Groups is
	// the widest parallel partition seen (per-kernel group counts don't sum).
	Stats
}

// Global snapshots the process-wide aggregate.
func Global() GlobalStats {
	return GlobalStats{
		Engines:      global.engines.Load(),
		ParKernels:   global.parKernels.Load(),
		ParFallbacks: global.parFallbacks.Load(),
		Stats: Stats{
			Events:      global.events.Load(),
			Parks:       global.parks.Load(),
			Switches:    global.switches.Load(),
			Kept:        global.kept.Load(),
			Callbacks:   global.callbacks.Load(),
			PeakParked:  int(global.peakParked.Load()),
			Tasks:       int(global.tasks.Load()),
			Wall:        time.Duration(global.wallNanos.Load()),
			Groups:      int(global.maxGroups.Load()),
			Rounds:      global.rounds.Load(),
			GroupRuns:   global.groupRuns.Load(),
			CrossEvents: global.crossEvents.Load(),
			WindowSum:   vclock.Time(global.windowNanos.Load()) * vclock.Nanosecond,
		},
	}
}

// String renders the aggregate in the -stats flag format.
func (g GlobalStats) String() string {
	return fmt.Sprintf("engines=%d par_kernels=%d par_fallbacks=%d %s",
		g.Engines, g.ParKernels, g.ParFallbacks, g.Stats)
}
