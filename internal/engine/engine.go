// Package engine is the discrete-event execution kernel of the simulation
// platform: a central virtual-time scheduler that runs the goroutines of a
// simulated job cooperatively, one at a time, in event order.
//
// Every simulated execution context (an MPI rank, a spawned child) is a Task.
// A task runs until it blocks — on a receive with no matching message, on a
// rendezvous send awaiting its match, on a device completion — and then parks
// in the engine. Whoever makes the task runnable again (the matching sender,
// the receiver that resolves the handshake, the task's own timer) schedules a
// wakeup event on the kernel's priority queue, which is ordered by virtual
// time with a stable schedule-order tiebreak (vclock.EventQueue). Parking
// hands the execution baton to the earliest pending event, so exactly one
// task executes at any moment and the event order — hence the simulation —
// is deterministic by construction: host scheduling never decides anything.
//
// This replaces the previous execution model, in which every rank goroutine
// ran free and synchronised through mutexes and condition variables, with
// determinism maintained by a per-resource ownership protocol. The kernel
// needs no such protocol (any task may touch any model state; the baton
// serialises them), burns no host time on lock contention, and makes rank
// counts cheap: a parked task is a goroutine blocked on a channel plus one
// queue entry, so simulations of thousands of ranks schedule as fast as the
// event queue can pop.
//
// A blocked task with no pending event to wake it would previously hang the
// process; the kernel detects this (empty event queue with live blocked
// tasks) and fails every blocked task with a deadlock error instead.
//
// Beyond task wakeups, the queue carries callback events (CallAt): a function
// scheduled at a virtual time, executed while holding the baton between task
// switches. Fault injection is built on them — a failure event fires as a
// callback, calls Fail on the affected tasks, and the kernel tears each one
// down with a TaskFailure panic at its next scheduling point (parked tasks
// are woken at the failure instant just to die). Because teardown goes
// through the ordinary event machinery, a job aborted by a failure drains
// cleanly instead of tripping the deadlock detector.
package engine

import (
	"fmt"
	"time"

	"clusterbooster/internal/vclock"
)

// task states.
const (
	stateCreated = iota // registered, not yet scheduled
	stateReady          // has a pending event in the queue
	stateRunning        // holds the execution baton
	stateBlocked        // parked, waiting for another task to wake it
	stateDone           // exited
)

// Engine is one discrete-event kernel instance, driving the tasks of one
// simulated job tree. All Engine and Task methods except Run must be called
// either before Run or from the currently running task ("holding the
// baton"); the kernel's serialisation makes that safe without locks.
type Engine struct {
	queue   vclock.EventQueue
	blocked []*Task // tasks parked without a pending event
	live    int     // registered, not yet exited
	poison  bool    // deadlock detected: blocked tasks fail on resume
	done    chan struct{}

	stats Stats
}

// New returns an empty kernel.
func New() *Engine {
	return &Engine{done: make(chan struct{})}
}

// Task is one simulated execution context bound to an Engine.
type Task struct {
	eng     *Engine
	name    string
	resume  chan struct{}
	state   int
	bIdx    int   // index in eng.blocked while stateBlocked
	poison  bool  // woken only to fail with a deadlock error
	failure error // set by Fail: the task dies at its next scheduling point
}

// TaskFailure is the panic value a task dies with after Fail: the kernel
// raises it at the task's next scheduling point. Job runners recover it and
// record Reason as the task's error.
type TaskFailure struct {
	Task   string
	Reason error
}

// Error renders the failure; TaskFailure is an error so recovered panics can
// travel through error-wrapping paths unchanged.
func (f *TaskFailure) Error() string {
	return fmt.Sprintf("task %q torn down: %v", f.Task, f.Reason)
}

// Unwrap exposes the teardown reason to errors.Is/As.
func (f *TaskFailure) Unwrap() error { return f.Reason }

// NewTask registers a task. Call StartAt to schedule its first run; the
// task's goroutine must call WaitStart before touching any simulation state
// and Exit (via defer) when it returns.
func (e *Engine) NewTask(name string) *Task {
	t := &Task{eng: e, name: name, resume: make(chan struct{}, 1), state: stateCreated}
	e.live++
	e.stats.Tasks++
	return t
}

// StartAt schedules the task's first execution at virtual time at.
func (t *Task) StartAt(at vclock.Time) {
	if t.state != stateCreated {
		panic(fmt.Sprintf("engine: StartAt on task %q in state %d", t.name, t.state))
	}
	t.state = stateReady
	t.eng.queue.Push(at, t)
}

// WaitStart blocks the task's goroutine until its start event fires.
func (t *Task) WaitStart() {
	<-t.resume
	t.checkPoison()
}

// Park blocks the task until another task calls WakeAt on it. The baton
// passes to the earliest pending event; if there is none, every live task is
// blocked and the kernel fails them all with a deadlock error (Park panics;
// the job runner converts rank panics to errors).
func (t *Task) Park() {
	e := t.eng
	t.state = stateBlocked
	t.bIdx = len(e.blocked)
	e.blocked = append(e.blocked, t)
	e.stats.Parks++
	e.notePeak()
	e.dispatch()
	<-t.resume
	t.checkPoison()
}

// WakeAt schedules a wakeup event for a blocked task at virtual time at.
// Only the condition-resolver that knows the task is parked may call it.
func (t *Task) WakeAt(at vclock.Time) {
	if t.state != stateBlocked {
		panic(fmt.Sprintf("engine: WakeAt on task %q in state %d", t.name, t.state))
	}
	t.eng.unblock(t)
	t.state = stateReady
	t.eng.queue.Push(at, t)
}

// CallAt schedules fn to run at virtual time at, holding the baton: no task
// executes while a callback runs, so fn may touch any kernel or model state
// (schedule events, wake or fail tasks). Callbacks scheduled for the same
// instant as task wakeups fire in schedule order, like any event. A callback
// still pending when the last task exits never runs.
func (e *Engine) CallAt(at vclock.Time, fn func()) {
	if fn == nil {
		panic("engine: CallAt with nil callback")
	}
	e.queue.Push(at, fn)
}

// Fail marks the task for teardown with the given reason: at its next
// scheduling point the kernel panics it with a *TaskFailure carrying reason.
// A parked task is woken at virtual time at just to die; ready or running
// tasks die when their next event fires or they next touch the kernel. The
// first reason wins; failing a finished task is a no-op.
func (t *Task) Fail(at vclock.Time, reason error) {
	if t.state == stateDone || t.failure != nil {
		return
	}
	t.failure = reason
	if t.state == stateBlocked {
		t.eng.unblock(t)
		t.state = stateReady
		t.eng.queue.Push(at, t)
	}
}

// SleepUntil schedules the task's own wakeup at virtual time at and yields.
// If the task's event is itself the earliest pending one, it keeps the baton
// and returns immediately — a timer that fires "next" costs two queue
// operations and no goroutine switch. Callback events due before the wakeup
// run inline, in order, on the way.
func (t *Task) SleepUntil(at vclock.Time) {
	e := t.eng
	e.queue.Push(at, t)
	for {
		next, ok := e.queue.Pop()
		if !ok {
			panic("engine: event queue empty after push")
		}
		e.stats.Events++
		nt, isTask := next.Payload.(*Task)
		if !isTask {
			next.Payload.(func())()
			continue
		}
		if nt == t {
			t.checkPoison()
			return // still the earliest: keep running
		}
		t.state = stateReady
		e.stats.Parks++
		e.stats.Switches++
		e.notePeak()
		nt.state = stateRunning
		nt.resume <- struct{}{}
		<-t.resume
		t.checkPoison()
		return
	}
}

// Exit retires the task: the baton passes to the next event, and the kernel
// completes when the last task exits. Must be deferred by the task's
// goroutine (after any panic recovery that should see the baton held).
func (t *Task) Exit() {
	e := t.eng
	if t.state == stateDone {
		return
	}
	t.state = stateDone
	e.live--
	if e.live == 0 {
		close(e.done)
		return
	}
	e.dispatch()
}

// Run dispatches the first event and blocks until every task has exited.
// It is called once, from the goroutine that built the job (which is not
// itself a task and consumes no virtual time).
func (e *Engine) Run() {
	if e.live == 0 {
		return
	}
	start := time.Now()
	e.dispatch()
	<-e.done
	e.stats.Wall = time.Since(start)
	publishGlobal(e.stats)
}

// dispatch hands the baton to the earliest pending event (running callback
// events inline on the way), or — when no event is pending — declares a
// deadlock and fails the blocked tasks one by one.
func (e *Engine) dispatch() {
	for {
		next, ok := e.queue.Pop()
		if !ok {
			break
		}
		e.stats.Events++
		if t, isTask := next.Payload.(*Task); isTask {
			e.stats.Switches++
			t.state = stateRunning
			t.resume <- struct{}{}
			return
		}
		next.Payload.(func())()
	}
	// No pending event, yet live tasks remain: every one of them is blocked.
	// Fail them sequentially; each poisoned task panics out of Park, its job
	// wrapper records the error and Exit brings us back here for the next.
	if len(e.blocked) == 0 {
		panic(fmt.Sprintf("engine: %d live tasks but none blocked and no events", e.live))
	}
	e.poison = true
	t := e.blocked[0]
	e.unblock(t)
	t.state = stateRunning
	t.poison = true
	t.resume <- struct{}{}
}

// unblock removes a task from the blocked set (order-free swap removal).
func (e *Engine) unblock(t *Task) {
	last := len(e.blocked) - 1
	e.blocked[t.bIdx] = e.blocked[last]
	e.blocked[t.bIdx].bIdx = t.bIdx
	e.blocked[last] = nil
	e.blocked = e.blocked[:last]
}

// checkPoison tears down a task that was resumed only to die: a Fail victim
// panics with its *TaskFailure, a task woken by the deadlock detector with a
// deadlock report. Failure wins over deadlock poison — the failure is the
// cause, the starved queue its symptom.
func (t *Task) checkPoison() {
	t.state = stateRunning
	if t.failure != nil {
		panic(&TaskFailure{Task: t.name, Reason: t.failure})
	}
	if t.poison {
		panic(fmt.Sprintf("engine: deadlock: task %q blocked with no pending events (%d tasks affected)",
			t.name, len(t.eng.blocked)+1))
	}
}

// notePeak records the high-water mark of simultaneously parked tasks.
func (e *Engine) notePeak() {
	if parked := e.live - 1; parked > e.stats.PeakParked {
		e.stats.PeakParked = parked
	}
}

// Stats returns this kernel's counters. Valid after Run returns.
func (e *Engine) Stats() Stats { return e.stats }
