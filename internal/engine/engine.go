// Package engine is the discrete-event execution kernel of the simulation
// platform: a central virtual-time scheduler that runs the goroutines of a
// simulated job cooperatively, one at a time, in event order.
//
// Every simulated execution context (an MPI rank, a spawned child) is a Task.
// A task runs until it blocks — on a receive with no matching message, on a
// rendezvous send awaiting its match, on a device completion — and then parks
// in the engine. Whoever makes the task runnable again (the matching sender,
// the receiver that resolves the handshake, the task's own timer) schedules a
// wakeup event on the kernel's event queue, which is ordered by virtual
// time with a stable schedule-order tiebreak. Parking hands the execution
// baton to the earliest pending event, so exactly one task executes at any
// moment and the event order — hence the simulation — is deterministic by
// construction: host scheduling never decides anything.
//
// The queue is a calendar queue (vclock.CalQueue) with amortized O(1) push
// and pop, carrying a tagged event record — a task pointer or a callback
// index, nothing boxed in an interface — so steady-state event traffic
// allocates nothing. Three fast paths keep the per-event constant factor
// down:
//
//   - Direct handoff. The wake-then-park pattern (a sender resolves a match,
//     wakes the receiver, parks) keeps the woken event in the queue's
//     one-slot front register when it is the earliest; the park pops it
//     straight back out without touching a bucket.
//
//   - Keep the baton. A task sleeping to a wakeup strictly earlier than
//     every pending event (SleepUntil, device waits) never enqueues at all:
//     it keeps running, paying no queue traffic and no goroutine switch.
//
//   - Wakeup batching. Events due at one instant — a collective fan-out
//     waking a whole tree level — are drained from the queue in a single
//     batch, and the baton is handed down the batch without per-event queue
//     operations.
//
// A blocked task with no pending event to wake it would previously hang the
// process; the kernel detects this (no pending events with live blocked
// tasks) and fails every blocked task with a deadlock error instead.
//
// Beyond task wakeups, the queue carries callback events (CallAt): a function
// scheduled at a virtual time, executed while holding the baton between task
// switches. Fault injection is built on them — a failure event fires as a
// callback, calls Fail on the affected tasks, and the kernel tears each one
// down with a TaskFailure panic at its next scheduling point (parked tasks
// are woken at the failure instant just to die). Because teardown goes
// through the ordinary event machinery, a job aborted by a failure drains
// cleanly instead of tripping the deadlock detector.
//
// Engines and their task structs are pooled: Recycle returns a finished
// kernel (queue buckets, callback registry, task structs and their resume
// channels included) for the next launch, so a sweep running thousands of
// scenarios re-boots kernels out of warm memory.
package engine

import (
	"fmt"
	"sync"
	"time"

	"clusterbooster/internal/vclock"
)

// task states.
const (
	stateCreated = iota // registered, not yet scheduled
	stateReady          // has a pending event in the queue
	stateRunning        // holds the execution baton
	stateBlocked        // parked, waiting for another task to wake it
	stateDone           // exited
)

// kev is the tagged event record: exactly one of task (a wakeup) or cb (a
// 1-based index into the engine's callback registry) is set. Storing the tag
// inline in the calendar queue's entry — instead of boxing the payload in an
// `any` — removes an allocation and an interface dispatch from every
// scheduled event.
type kev struct {
	task *Task
	cb   int32
}

// Engine is one discrete-event kernel instance, driving the tasks of one
// simulated job tree. All Engine and Task methods except Run must be called
// either before Run or from the currently running task ("holding the
// baton"); the kernel's serialisation makes that safe without locks.
type Engine struct {
	queue   vclock.CalQueue[kev]
	batch   []vclock.Entry[kev] // drained same-instant events, consumed first
	bi      int                 // next unconsumed batch index
	blocked []*Task             // tasks parked without a pending event
	live    int                 // registered, not yet exited
	poison  bool                // deadlock detected: blocked tasks fail on resume
	done    chan struct{}

	cbs    []func() // callback registry, indexed by kev.cb-1
	cbFree []int32  // free registry slots

	tasks    []*Task // every task of this run, for recycling
	taskFree []*Task // retired task structs ready for reuse

	par *parKernel // conservative parallel mode; nil = serial (see parallel.go)

	stats Stats
}

// enginePool recycles kernels across launches: queue buckets, callback
// registry, batch buffer and task structs all come back warm.
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// New returns an empty kernel, reusing a recycled one when available.
func New() *Engine {
	e := enginePool.Get().(*Engine)
	e.done = make(chan struct{})
	return e
}

// Recycle returns a finished kernel to the pool for the next launch. Only
// call it after Run has returned and every result (Stats included) has been
// read; the engine and all its tasks are dead to the caller afterwards.
func (e *Engine) Recycle() {
	e.queue.Reset()
	for i := range e.batch {
		e.batch[i] = vclock.Entry[kev]{}
	}
	e.batch = e.batch[:0]
	e.bi = 0
	for i := range e.blocked {
		e.blocked[i] = nil
	}
	e.blocked = e.blocked[:0]
	for i := range e.cbs {
		e.cbs[i] = nil
	}
	e.cbs = e.cbs[:0]
	e.cbFree = e.cbFree[:0]
	for _, t := range e.tasks {
		t.reset()
		e.taskFree = append(e.taskFree, t)
	}
	e.tasks = e.tasks[:0]
	e.live = 0
	e.poison = false
	e.done = nil
	e.par = nil
	e.stats = Stats{}
	enginePool.Put(e)
}

// Task is one simulated execution context bound to an Engine.
type Task struct {
	eng     *Engine
	label   string // free-form name, or the node name for rank tasks
	rank    int    // rank id when >= 0; the name is then "rank R @ label"
	resume  chan struct{}
	state   int
	bIdx    int   // index in the blocked set while stateBlocked
	gid     int32 // parallel group index (0 on a serial kernel)
	poison  bool  // woken only to fail with a deadlock error
	failure error // set by Fail: the task dies at its next scheduling point
}

// name renders the task's diagnostic name. Rank tasks store the parts and
// format lazily — names appear only in failure reports, and a fig8-scale
// launch would otherwise pay thousands of Sprintfs just to boot.
func (t *Task) name() string {
	if t.rank >= 0 {
		return fmt.Sprintf("rank %d @ %s", t.rank, t.label)
	}
	return t.label
}

// reset prepares a retired task struct for reuse; the resume channel is
// empty (every handoff is consumed before a task exits) and kept.
func (t *Task) reset() {
	t.label = ""
	t.rank = -1
	t.state = stateCreated
	t.bIdx = 0
	t.gid = 0
	t.poison = false
	t.failure = nil
}

// TaskFailure is the panic value a task dies with after Fail: the kernel
// raises it at the task's next scheduling point. Job runners recover it and
// record Reason as the task's error.
type TaskFailure struct {
	Task   string
	Reason error
}

// Error renders the failure; TaskFailure is an error so recovered panics can
// travel through error-wrapping paths unchanged.
func (f *TaskFailure) Error() string {
	return fmt.Sprintf("task %q torn down: %v", f.Task, f.Reason)
}

// Unwrap exposes the teardown reason to errors.Is/As.
func (f *TaskFailure) Unwrap() error { return f.Reason }

// newTask registers a task with the given name parts (rank < 0 for plain
// labels). Task structs come from the recycle pool when available.
func (e *Engine) newTask(label string, rank int) *Task {
	var t *Task
	if n := len(e.taskFree); n > 0 {
		t = e.taskFree[n-1]
		e.taskFree[n-1] = nil
		e.taskFree = e.taskFree[:n-1]
	} else {
		t = &Task{resume: make(chan struct{}, 1)}
	}
	t.eng = e
	t.label = label
	t.rank = rank
	t.state = stateCreated
	e.tasks = append(e.tasks, t)
	e.live++
	e.stats.Tasks++
	return t
}

// NewTask registers a task. Call StartAt to schedule its first run; the
// task's goroutine must call WaitStart before touching any simulation state
// and Exit (via defer) when it returns.
func (e *Engine) NewTask(name string) *Task { return e.newTask(name, -1) }

// NewRankTask registers a task named "rank R @ node" without formatting the
// name up front (it is rendered only if the task ever fails).
func (e *Engine) NewRankTask(rank int, node string) *Task { return e.newTask(node, rank) }

// StartAt schedules the task's first execution at virtual time at.
func (t *Task) StartAt(at vclock.Time) {
	if t.state != stateCreated {
		panic(fmt.Sprintf("engine: StartAt on task %q in state %d", t.name(), t.state))
	}
	t.state = stateReady
	if e := t.eng; e.par != nil {
		e.par.groups[t.gid].queue.Push(at, kev{task: t})
		return
	}
	t.eng.queue.Push(at, kev{task: t})
}

// WaitStart blocks the task's goroutine until its start event fires.
func (t *Task) WaitStart() {
	<-t.resume
	t.checkPoison()
}

// Park blocks the task until another task calls WakeAt on it. The baton
// passes to the earliest pending event; if there is none, every live task is
// blocked and the kernel fails them all with a deadlock error (Park panics;
// the job runner converts rank panics to errors).
func (t *Task) Park() {
	e := t.eng
	if e.par != nil {
		t.parkPar()
		return
	}
	t.state = stateBlocked
	t.bIdx = len(e.blocked)
	e.blocked = append(e.blocked, t)
	e.stats.Parks++
	e.notePeak()
	e.dispatch()
	<-t.resume
	t.checkPoison()
}

// WakeAt schedules a wakeup event for a blocked task at virtual time at.
// Only the condition-resolver that knows the task is parked may call it.
// When the wakeup is the earliest pending event it lands in the queue's
// front register, and the waker's next park hands the baton over without a
// bucket operation — the direct-handoff fast path.
func (t *Task) WakeAt(at vclock.Time) {
	if t.state != stateBlocked {
		panic(fmt.Sprintf("engine: WakeAt on task %q in state %d", t.name(), t.state))
	}
	if e := t.eng; e.par != nil {
		// Legal from the task's own group, a callback, or a barrier closure
		// (Defer) — never directly across groups mid-round; the model layer
		// defers cross-group wakes to the barrier.
		g := e.par.groups[t.gid]
		g.unblock(t)
		t.state = stateReady
		g.queue.Push(at, kev{task: t})
		return
	}
	t.eng.unblock(t)
	t.state = stateReady
	t.eng.queue.Push(at, kev{task: t})
}

// CallAt schedules fn to run at virtual time at, holding the baton: no task
// executes while a callback runs, so fn may touch any kernel or model state
// (schedule events, wake or fail tasks). Callbacks scheduled for the same
// instant as task wakeups fire in schedule order, like any event. A callback
// still pending when the last task exits never runs.
func (e *Engine) CallAt(at vclock.Time, fn func()) {
	if fn == nil {
		panic("engine: CallAt with nil callback")
	}
	if e.par != nil && e.par.inRound {
		// On a parallel kernel callbacks are coordinator state: schedule
		// them before Run, from another callback, or from a barrier closure.
		panic("engine: CallAt from a task during a parallel round")
	}
	var idx int32
	if n := len(e.cbFree); n > 0 {
		idx = e.cbFree[n-1]
		e.cbFree = e.cbFree[:n-1]
		e.cbs[idx] = fn
	} else {
		e.cbs = append(e.cbs, fn)
		idx = int32(len(e.cbs) - 1)
	}
	e.queue.Push(at, kev{cb: idx + 1})
}

// runCallback executes a popped callback event and frees its registry slot.
func (e *Engine) runCallback(cb int32) {
	fn := e.cbs[cb-1]
	e.cbs[cb-1] = nil
	e.cbFree = append(e.cbFree, cb-1)
	e.stats.Callbacks++
	fn()
}

// Fail marks the task for teardown with the given reason: at its next
// scheduling point the kernel panics it with a *TaskFailure carrying reason.
// A parked task is woken at virtual time at just to die; ready or running
// tasks die when their next event fires or they next touch the kernel. The
// first reason wins; failing a finished task is a no-op.
func (t *Task) Fail(at vclock.Time, reason error) {
	if t.state == stateDone || t.failure != nil {
		return
	}
	t.failure = reason
	if t.state == stateBlocked {
		if e := t.eng; e.par != nil {
			g := e.par.groups[t.gid]
			g.unblock(t)
			t.state = stateReady
			g.queue.Push(at, kev{task: t})
			return
		}
		t.eng.unblock(t)
		t.state = stateReady
		t.eng.queue.Push(at, kev{task: t})
	}
}

// next takes the next pending event: first from the drained same-instant
// batch, then from the queue (draining the next instant's batch in one go).
func (e *Engine) next() (vclock.Entry[kev], bool) {
	if e.bi >= len(e.batch) {
		e.batch = e.queue.PopRun(e.batch[:0])
		e.bi = 0
		if len(e.batch) == 0 {
			return vclock.Entry[kev]{}, false
		}
	}
	ev := e.batch[e.bi]
	e.batch[e.bi] = vclock.Entry[kev]{} // release the task reference
	e.bi++
	return ev, true
}

// pendingAt reports whether an event is pending at or before virtual time
// at — i.e. whether a wakeup scheduled at at would NOT be the next event.
func (e *Engine) pendingAt(at vclock.Time) bool {
	if e.bi < len(e.batch) {
		return true // batched events precede anything pushed now
	}
	head, ok := e.queue.Peek()
	return ok && head.At <= at
}

// SleepUntil schedules the task's own wakeup at virtual time at and yields.
// If the wakeup would be the next event anyway, the task keeps the baton:
// when it is strictly the earliest it returns immediately without touching
// the queue at all, and otherwise it pops its own event back — a timer that
// fires "next" costs at most two queue operations and no goroutine switch.
// Callback events due before the wakeup run inline, in order, on the way.
func (t *Task) SleepUntil(at vclock.Time) {
	e := t.eng
	if e.par != nil {
		t.sleepUntilPar(at)
		return
	}
	if !e.pendingAt(at) {
		// Strictly earliest: nothing can run before this wakeup, so the
		// event need not exist. Counted as a processed, baton-keeping event.
		e.stats.Events++
		e.stats.Kept++
		t.checkPoison()
		return
	}
	e.queue.Push(at, kev{task: t})
	for {
		ev, ok := e.next()
		if !ok {
			panic("engine: event queue empty after push")
		}
		e.stats.Events++
		if ev.Payload.task == nil {
			e.runCallback(ev.Payload.cb)
			continue
		}
		nt := ev.Payload.task
		if nt == t {
			e.stats.Kept++
			t.checkPoison()
			return // still the earliest: keep running
		}
		t.state = stateReady
		e.stats.Parks++
		e.stats.Switches++
		nt.state = stateRunning
		nt.resume <- struct{}{}
		<-t.resume
		t.checkPoison()
		return
	}
}

// Exit retires the task: the baton passes to the next event, and the kernel
// completes when the last task exits. Must be deferred by the task's
// goroutine (after any panic recovery that should see the baton held).
func (t *Task) Exit() {
	e := t.eng
	if t.state == stateDone {
		return
	}
	if e.par != nil {
		t.exitPar()
		return
	}
	t.state = stateDone
	e.live--
	if e.live == 0 {
		close(e.done)
		return
	}
	e.dispatch()
}

// Run dispatches the first event and blocks until every task has exited.
// It is called once, from the goroutine that built the job (which is not
// itself a task and consumes no virtual time).
func (e *Engine) Run() {
	if e.live == 0 {
		return
	}
	start := time.Now()
	if e.par != nil {
		e.runPar()
	} else {
		e.dispatch()
		<-e.done
	}
	e.stats.Wall = time.Since(start)
	publishGlobal(e.stats)
}

// dispatch hands the baton to the earliest pending event (running callback
// events inline on the way), or — when no event is pending — declares a
// deadlock and fails the blocked tasks one by one.
func (e *Engine) dispatch() {
	for {
		ev, ok := e.next()
		if !ok {
			break
		}
		e.stats.Events++
		if t := ev.Payload.task; t != nil {
			e.stats.Switches++
			t.state = stateRunning
			t.resume <- struct{}{}
			return
		}
		e.runCallback(ev.Payload.cb)
	}
	// No pending event, yet live tasks remain: every one of them is blocked.
	// Fail them sequentially; each poisoned task panics out of Park, its job
	// wrapper records the error and Exit brings us back here for the next.
	if len(e.blocked) == 0 {
		panic(fmt.Sprintf("engine: %d live tasks but none blocked and no events", e.live))
	}
	e.poison = true
	t := e.blocked[0]
	e.unblock(t)
	t.state = stateRunning
	t.poison = true
	t.resume <- struct{}{}
}

// unblock removes a task from the blocked set (order-free swap removal).
func (e *Engine) unblock(t *Task) {
	last := len(e.blocked) - 1
	e.blocked[t.bIdx] = e.blocked[last]
	e.blocked[t.bIdx].bIdx = t.bIdx
	e.blocked[last] = nil
	e.blocked = e.blocked[:last]
}

// checkPoison tears down a task that was resumed only to die: a Fail victim
// panics with its *TaskFailure, a task woken by the deadlock detector with a
// deadlock report. Failure wins over deadlock poison — the failure is the
// cause, the starved queue its symptom.
func (t *Task) checkPoison() {
	t.state = stateRunning
	if t.failure != nil {
		panic(&TaskFailure{Task: t.name(), Reason: t.failure})
	}
	if t.poison {
		panic(fmt.Sprintf("engine: deadlock: task %q blocked with no pending events (%d tasks affected)",
			t.name(), t.eng.blockedCount()+1))
	}
}

// notePeak records the high-water mark of simultaneously parked tasks. Only
// tasks in the blocked set count: a ready task sitting in the event queue is
// runnable, not parked (through PR 4 this was approximated as live-1, which
// overcounted whenever ready tasks were queued).
func (e *Engine) notePeak() {
	if parked := len(e.blocked); parked > e.stats.PeakParked {
		e.stats.PeakParked = parked
	}
}

// Stats returns this kernel's counters. Valid after Run returns.
func (e *Engine) Stats() Stats { return e.stats }
