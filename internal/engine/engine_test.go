package engine

import (
	"fmt"
	"sync"
	"testing"

	"clusterbooster/internal/vclock"
)

// job runs n task goroutines under one kernel and waits for them all; each
// body receives its task and index. Panics are returned per task.
func job(n int, body func(t *Task, i int)) []any {
	e := New()
	tasks := make([]*Task, n)
	panics := make([]any, n)
	for i := 0; i < n; i++ {
		tasks[i] = e.NewTask(fmt.Sprintf("task %d", i))
		tasks[i].StartAt(0)
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer tasks[i].Exit()
			defer func() { panics[i] = recover() }()
			tasks[i].WaitStart()
			body(tasks[i], i)
		}(i)
	}
	e.Run()
	wg.Wait()
	return panics
}

// TestStartOrder checks that equal-time start events fire in schedule order
// (the stable tiebreak).
func TestStartOrder(t *testing.T) {
	var order []int
	var mu sync.Mutex
	job(8, func(tk *Task, i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("start order %v, want ascending", order)
		}
	}
}

// TestParkWake ping-pongs two tasks through Park/WakeAt and checks strict
// alternation — the cooperative schedule admits exactly one runner.
func TestParkWake(t *testing.T) {
	var tasks [2]*Task
	var log []string
	e := New()
	for i := range tasks {
		tasks[i] = e.NewTask(fmt.Sprintf("t%d", i))
	}
	tasks[0].StartAt(0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer tasks[0].Exit()
		tasks[0].WaitStart()
		for i := 0; i < 3; i++ {
			log = append(log, "a")
			if i == 0 {
				tasks[1].StartAt(vclock.Microsecond)
			} else {
				tasks[1].WakeAt(vclock.Time(i) * vclock.Microsecond)
			}
			tasks[0].Park()
		}
		log = append(log, "a-end")
		tasks[1].WakeAt(vclock.Second)
	}()
	go func() {
		defer wg.Done()
		defer tasks[1].Exit()
		tasks[1].WaitStart()
		for i := 0; i < 3; i++ {
			log = append(log, "b")
			tasks[0].WakeAt(vclock.Time(i) * vclock.Microsecond)
			if i < 2 {
				tasks[1].Park()
			}
		}
		tasks[1].Park() // until a-end wakes us
		log = append(log, "b-end")
	}()
	e.Run()
	wg.Wait()
	want := "a b a b a b a-end b-end"
	got := ""
	for i, s := range log {
		if i > 0 {
			got += " "
		}
		got += s
	}
	if got != want {
		t.Fatalf("schedule order %q, want %q", got, want)
	}
	st := e.Stats()
	if st.Tasks != 2 || st.Events == 0 || st.PeakParked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSleepUntilOrdersByTime runs tasks that sleep to distinct virtual times
// and records the resume order.
func TestSleepUntilOrdersByTime(t *testing.T) {
	var order []int
	var mu sync.Mutex
	job(5, func(tk *Task, i int) {
		// Later tasks sleep to earlier times: resume order must invert.
		tk.SleepUntil(vclock.Time(10-i) * vclock.Microsecond)
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	want := []int{4, 3, 2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("resume order %v, want %v", order, want)
		}
	}
}

// TestDeadlockDetected: tasks that all park with no pending events must fail
// with the kernel's deadlock error instead of hanging the process.
func TestDeadlockDetected(t *testing.T) {
	panics := job(3, func(tk *Task, i int) {
		tk.Park() // nobody will ever wake us
	})
	for i, p := range panics {
		if p == nil {
			t.Fatalf("task %d: no deadlock panic", i)
		}
	}
}

// TestManyTasksRace exercises park/resume across thousands of tasks — run
// with -race, this is the kernel's serialisation proof: tasks mutate shared
// state with no locking, which is only safe if exactly one runs at a time.
func TestManyTasksRace(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 500
	}
	shared := 0 // unsynchronised on purpose
	job(n, func(tk *Task, i int) {
		for k := 0; k < 3; k++ {
			shared++
			tk.SleepUntil(vclock.Time(k+1) * vclock.Microsecond)
		}
	})
	if shared != 3*n {
		t.Fatalf("shared = %d, want %d", shared, 3*n)
	}
}

func TestGlobalStatsAggregate(t *testing.T) {
	before := Global()
	job(4, func(tk *Task, i int) { tk.SleepUntil(vclock.Microsecond) })
	after := Global()
	if after.Engines <= before.Engines || after.Events <= before.Events {
		t.Fatalf("global stats did not grow: %+v -> %+v", before, after)
	}
	if after.String() == "" {
		t.Fatal("empty stats rendering")
	}
}
