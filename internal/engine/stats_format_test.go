package engine

import (
	"testing"
	"time"

	"clusterbooster/internal/vclock"
)

// TestStatsStringFormat pins the -stats output format: serial kernels keep
// the historic line, parallel activity appends the par_* counters, and a
// recorded fallback is always named. cbctl run -stats and deepsim -stats
// print these strings verbatim.
func TestStatsStringFormat(t *testing.T) {
	serial := Stats{
		Events: 100, Parks: 40, Switches: 60, Kept: 30, Callbacks: 10,
		PeakParked: 3, Tasks: 8, Wall: 2 * time.Second,
	}
	parallel := serial
	parallel.Groups = 4
	parallel.Rounds = 20
	parallel.GroupRuns = 70
	parallel.CrossEvents = 15
	parallel.WindowSum = 40 * vclock.Microsecond
	fellBack := serial
	fellBack.Fallback = FallbackZeroLookahead

	cases := []struct {
		name string
		in   interface{ String() string }
		want string
	}{
		{
			"serial",
			serial,
			"events=100 events/sec=50 parks=40 switches=60 kept=30 callbacks=10 peak_parked=3 tasks=8 wall=2s",
		},
		{
			"parallel",
			parallel,
			"events=100 events/sec=50 parks=40 switches=60 kept=30 callbacks=10 peak_parked=3 tasks=8 wall=2s" +
				" par_groups=4 par_rounds=20 par_window_avg=2.00µs par_group_runs=70 par_cross=15",
		},
		{
			"fallback",
			fellBack,
			"events=100 events/sec=50 parks=40 switches=60 kept=30 callbacks=10 peak_parked=3 tasks=8 wall=2s" +
				` par_fallback="zero lookahead"`,
		},
		{
			"global",
			GlobalStats{Engines: 12, ParKernels: 9, ParFallbacks: 3, Stats: parallel},
			"engines=12 par_kernels=9 par_fallbacks=3 " +
				"events=100 events/sec=50 parks=40 switches=60 kept=30 callbacks=10 peak_parked=3 tasks=8 wall=2s" +
				" par_groups=4 par_rounds=20 par_window_avg=2.00µs par_group_runs=70 par_cross=15",
		},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("%s:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}
}

// TestWindowAvg covers the per-round mean, including the serial zero case.
func TestWindowAvg(t *testing.T) {
	if avg := (Stats{}).WindowAvg(); avg != 0 {
		t.Errorf("serial WindowAvg = %v, want 0", avg)
	}
	s := Stats{Rounds: 4, WindowSum: 10 * vclock.Microsecond}
	// vclock.Time is a float64 second count: compare the rendering, not bits.
	if got := s.WindowAvg().String(); got != "2.50µs" {
		t.Errorf("WindowAvg = %v, want 2.50µs", got)
	}
}
