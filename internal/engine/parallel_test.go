package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"clusterbooster/internal/vclock"
)

// parJob runs n task goroutines, one per group when parallel, stepping their
// clocks in lockstep-free sleeps, and returns each task's recorded trace and
// recovered panic.
func parJob(n int, groups int, lookahead vclock.Time, body func(t *Task, i int, log *[]string)) (logs [][]string, panics []any, stats Stats) {
	e := New()
	if groups > 1 {
		if !e.SetParallel(groups, lookahead) {
			panic("parJob: SetParallel refused")
		}
	}
	tasks := make([]*Task, n)
	logs = make([][]string, n)
	panics = make([]any, n)
	for i := 0; i < n; i++ {
		tasks[i] = e.NewTask(fmt.Sprintf("task %d", i))
		if groups > 1 {
			tasks[i].SetGroup(i % groups)
		}
		tasks[i].StartAt(0)
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer tasks[i].Exit()
			defer func() { panics[i] = recover() }()
			tasks[i].WaitStart()
			body(tasks[i], i, &logs[i])
		}(i)
	}
	e.Run()
	wg.Wait()
	return logs, panics, e.Stats()
}

// TestParallelRoundsAndInvariant drives a multi-group kernel through many
// short windows and checks the counter identity Events == Switches + Kept +
// Callbacks still holds, with round accounting populated.
func TestParallelRoundsAndInvariant(t *testing.T) {
	body := func(tk *Task, i int, log *[]string) {
		at := vclock.Time(0)
		for s := 0; s < 50; s++ {
			at += vclock.Time(1+(i+s)%3) * vclock.Microsecond
			tk.SleepUntil(at)
		}
		*log = append(*log, fmt.Sprintf("done@%v", at))
	}
	serialLogs, _, _ := parJob(6, 1, 0, body)
	logs, panics, st := parJob(6, 3, 2*vclock.Microsecond, body)
	for i, p := range panics {
		if p != nil {
			t.Fatalf("task %d panicked: %v", i, p)
		}
	}
	for i := range logs {
		if fmt.Sprint(logs[i]) != fmt.Sprint(serialLogs[i]) {
			t.Errorf("task %d: %v (parallel) != %v (serial)", i, logs[i], serialLogs[i])
		}
	}
	if st.Groups != 3 || st.Rounds == 0 || st.GroupRuns == 0 {
		t.Errorf("parallel accounting: %+v", st)
	}
	if st.Events != st.Switches+st.Kept+st.Callbacks {
		t.Errorf("counter identity broken: events=%d switches=%d kept=%d callbacks=%d",
			st.Events, st.Switches, st.Kept, st.Callbacks)
	}
}

// TestSetParallelGuards covers the serial-fallback decisions and the
// registration-order panic.
func TestSetParallelGuards(t *testing.T) {
	e := New()
	if e.SetParallel(1, vclock.Microsecond) {
		t.Error("SetParallel accepted a single group")
	}
	if e.Stats().Fallback != FallbackSingleGroup {
		t.Errorf("fallback = %q, want %q", e.Stats().Fallback, FallbackSingleGroup)
	}

	e = New()
	if e.SetParallel(2, 0) {
		t.Error("SetParallel accepted zero lookahead")
	}
	if e.Stats().Fallback != FallbackZeroLookahead {
		t.Errorf("fallback = %q, want %q", e.Stats().Fallback, FallbackZeroLookahead)
	}

	e = New()
	e.NewTask("early")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetParallel after task registration did not panic")
			}
		}()
		e.SetParallel(2, vclock.Microsecond)
	}()
}

// failAll tears a job down at exactly the given instant and reports each
// task's fate: the error observed and the virtual time of its last completed
// step.
func failAll(t *testing.T, groups int, lookahead, failAt vclock.Time) []string {
	t.Helper()
	cause := errors.New("node down")
	e := New()
	if groups > 1 {
		if !e.SetParallel(groups, lookahead) {
			t.Fatal("SetParallel refused")
		}
	}
	const n = 4
	tasks := make([]*Task, n)
	fates := make([]string, n)
	for i := 0; i < n; i++ {
		tasks[i] = e.NewTask(fmt.Sprintf("task %d", i))
		if groups > 1 {
			tasks[i].SetGroup(i % groups)
		}
		tasks[i].StartAt(0)
	}
	e.CallAt(failAt, func() {
		for _, tk := range tasks {
			tk.Fail(failAt, cause)
		}
	})
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			defer tasks[i].Exit()
			last := vclock.Time(0)
			defer func() {
				r := recover()
				tf, ok := r.(*TaskFailure)
				if !ok {
					fates[i] = fmt.Sprintf("panic=%v last=%v", r, last)
					return
				}
				fates[i] = fmt.Sprintf("failed=%v last=%v", tf.Reason, last)
			}()
			tasks[i].WaitStart()
			at := vclock.Time(0)
			for {
				at += vclock.Time(1+i%2) * vclock.Microsecond
				tasks[i].SleepUntil(at)
				last = at
			}
		}(i)
	}
	e.Run()
	wg.Wait()
	return fates
}

// TestParallelFailureOnWindowBoundary injects a teardown callback exactly at
// a round's window edge (minAt + lookahead with these step sizes) and checks
// the parallel teardown matches the serial one task by task.
func TestParallelFailureOnWindowBoundary(t *testing.T) {
	const lookahead = 2 * vclock.Microsecond
	// Tasks step at 1µs/2µs; at failAt=6µs the pending minimum is 6µs ...
	// 6µs = minAt, and the callback lands exactly on the previous round's
	// window edge minAt+lookahead for minAt=4µs.
	for _, failAt := range []vclock.Time{
		6 * vclock.Microsecond,      // exactly on a window edge
		6*vclock.Microsecond + 1e-9, // just past it
	} {
		serial := failAll(t, 1, 0, failAt)
		par := failAll(t, 2, lookahead, failAt)
		for i := range serial {
			if serial[i] != par[i] {
				t.Errorf("failAt=%v task %d: serial %q != parallel %q", failAt, i, serial[i], par[i])
			}
		}
	}
}
