package engine

import (
	"fmt"

	"clusterbooster/internal/vclock"
)

// This file is the conservative parallel mode of the kernel: multi-core
// execution of ONE simulated job with bit-identical results.
//
// The serial kernel runs every task of a launch cooperatively on one event
// queue. The parallel mode partitions the tasks into groups (the caller
// groups them by node, so every fabric link reservation stays group-local)
// and advances the groups concurrently in synchronous safe-window rounds,
// the classic conservative-DES scheme (Chandy/Misra/Bryant, synchronous
// variant):
//
//   - Each round, the coordinator computes the earliest pending task event
//     minAt across all groups and opens the window [minAt, minAt+L), where
//     L is the cross-group lookahead: the minimum virtual latency any
//     action of one group needs to affect another. For the Cluster-Booster
//     fabric that is wire latency plus the smallest send overhead
//     (fabric.CrossLookahead) — no message, match, or wakeup can cross
//     nodes faster.
//
//   - Every group with an event inside the window runs its own event chain
//     concurrently: per-group calendar queue, per-group blocked set, the
//     same baton-passing discipline as the serial kernel. A group's chain
//     stops when its next event lies at or beyond the window, and signals
//     the coordinator.
//
//   - Effects that cross groups (message delivery, a rendezvous completion
//     waking a sender on another node) are not applied mid-round: the model
//     layer wraps them in Task.Defer, which appends them to the acting
//     group's outbox. At the barrier the coordinator applies all outboxes
//     in group order. The lookahead guarantees every such effect lands at
//     virtual time >= the window end, so deferring it past the round moves
//     it over no event it could have influenced.
//
// Why the result is bit-identical to serial, for any group count: events at
// different virtual times never race (the window ends strictly before the
// earliest cross-group effect), and events at equal virtual times only
// commute when they touch disjoint state — which the node partition
// guarantees for group-local events, and the fixed group-order barrier
// replay guarantees for cross-group ones. Scheduling-diagnostic counters
// (parks, switches, kept) do differ between modes; model state never does.
// DESIGN.md ("Conservative parallel kernel") carries the full argument.
//
// Callbacks (CallAt) remain a coordinator-only facility: they run between
// rounds, holding the whole kernel still exactly like the serial baton, and
// the window never opens past a pending callback. Failure injection, which
// is built on callbacks, therefore tears tasks down at the exact same
// virtual instants as the serial kernel.

// Fallback reasons recorded in Stats.Fallback when parallel execution was
// requested but the kernel ran serial. Model layers add their own (tracing,
// failure injection, storage models).
const (
	FallbackSingleGroup   = "single group"
	FallbackZeroLookahead = "zero lookahead"
)

// pgroup is one group's private share of the kernel: its own calendar
// queue, same-instant batch, blocked set and outbox. Exactly one goroutine
// of the group runs at a time (the group-local baton), so none of this
// needs locking; the coordinator touches it only between rounds.
type pgroup struct {
	queue   vclock.CalQueue[kev]
	batch   []vclock.Entry[kev] // drained same-instant events, consumed first
	bi      int                 // next unconsumed batch index
	blocked []*Task             // tasks parked without a pending event
	outbox  []func()            // cross-group effects, applied at the barrier
	exited  int                 // tasks of this group that have exited
	stats   Stats               // group-local counters, folded in at the end
}

// next takes the group's next event strictly before the window end w —
// batch first, then the queue — exactly mirroring Engine.next.
func (g *pgroup) next(w vclock.Time) (vclock.Entry[kev], bool) {
	if g.bi >= len(g.batch) {
		if head, ok := g.queue.Peek(); !ok || head.At >= w {
			return vclock.Entry[kev]{}, false
		}
		g.batch = g.queue.PopRun(g.batch[:0])
		g.bi = 0
	}
	ev := g.batch[g.bi]
	g.batch[g.bi] = vclock.Entry[kev]{} // release the task reference
	g.bi++
	return ev, true
}

// pendingAt mirrors Engine.pendingAt on the group's queue.
func (g *pgroup) pendingAt(at vclock.Time) bool {
	if g.bi < len(g.batch) {
		return true
	}
	head, ok := g.queue.Peek()
	return ok && head.At <= at
}

// unblock removes a task from the group's blocked set (swap removal).
func (g *pgroup) unblock(t *Task) {
	last := len(g.blocked) - 1
	g.blocked[t.bIdx] = g.blocked[last]
	g.blocked[t.bIdx].bIdx = t.bIdx
	g.blocked[last] = nil
	g.blocked = g.blocked[:last]
}

// parKernel is the coordinator state of a parallel run.
type parKernel struct {
	groups    []*pgroup
	lookahead vclock.Time
	// windowEnd is the exclusive end of the current round's safe window.
	// Written by the coordinator between rounds, read by group goroutines
	// during the round; the kickstart/round-done channel handoffs order
	// every write before every read.
	windowEnd vclock.Time
	// inRound is true while group chains may be running. Same publication
	// discipline as windowEnd. Task.Defer and the CallAt guard read it.
	inRound   bool
	roundDone chan struct{}
}

// SetParallel requests conservative parallel execution on groups task
// groups with the given cross-group lookahead. Must be called before any
// task is registered. Degenerate requests fall back to serial execution —
// the return value says which mode the kernel will run — with the reason
// recorded in Stats.Fallback.
func (e *Engine) SetParallel(groups int, lookahead vclock.Time) bool {
	if len(e.tasks) > 0 {
		panic("engine: SetParallel after task registration")
	}
	if groups < 2 {
		e.stats.Fallback = FallbackSingleGroup
		return false
	}
	if !(lookahead > 0) { // negation catches NaN too
		e.stats.Fallback = FallbackZeroLookahead
		return false
	}
	p := &parKernel{
		groups:    make([]*pgroup, groups),
		lookahead: lookahead,
		roundDone: make(chan struct{}, groups),
	}
	for i := range p.groups {
		p.groups[i] = &pgroup{}
	}
	e.par = p
	e.stats.Groups = groups
	return true
}

// NoteSerialFallback records that the caller wanted parallel execution but
// chose serial for a model-layer reason (tracing, failure injection, ...).
// The reason lands in Stats.Fallback and the process-wide aggregate.
func (e *Engine) NoteSerialFallback(reason string) {
	if e.par != nil {
		panic("engine: NoteSerialFallback on a parallel kernel")
	}
	e.stats.Fallback = reason
}

// Parallel reports whether the kernel runs the conservative parallel mode.
func (e *Engine) Parallel() bool { return e.par != nil }

// SetGroup assigns the task to a parallel group. Call it between task
// registration and StartAt; tasks default to group 0. No-op on a serial
// kernel, so model code can assign unconditionally.
func (t *Task) SetGroup(gid int) {
	e := t.eng
	if e.par == nil {
		return
	}
	if t.state != stateCreated {
		panic(fmt.Sprintf("engine: SetGroup on task %q in state %d", t.name(), t.state))
	}
	if gid < 0 || gid >= len(e.par.groups) {
		panic(fmt.Sprintf("engine: SetGroup(%d) with %d groups", gid, len(e.par.groups)))
	}
	t.gid = int32(gid)
}

// Defer runs fn at the next deterministic global point. On a serial kernel
// (or outside a round: before Run, in a callback, at a barrier) that is
// right now — the caller holds the baton and may touch anything. During a
// parallel round, fn is appended to the calling task's group outbox and
// runs at the round barrier, in group order, when every group is quiescent.
// Model layers route every cross-group effect through Defer; the lookahead
// guarantees such effects land at or beyond the window end, so the deferral
// reorders them over nothing they could influence.
func (t *Task) Defer(fn func()) {
	e := t.eng
	if e.par == nil || !e.par.inRound {
		fn()
		return
	}
	g := e.par.groups[t.gid]
	g.outbox = append(g.outbox, fn)
}

// dispatchPar hands the group baton to the group's earliest event inside
// the window, or signals the coordinator that the group's chain is done.
func (e *Engine) dispatchPar(g *pgroup) {
	ev, ok := g.next(e.par.windowEnd)
	if !ok {
		e.par.roundDone <- struct{}{}
		return
	}
	nt := ev.Payload.task
	if nt == nil {
		panic("engine: callback event on a group queue")
	}
	g.stats.Events++
	g.stats.Switches++
	nt.state = stateRunning
	nt.resume <- struct{}{}
}

// parkPar is Park on a parallel kernel: same discipline against the
// group-local queue and blocked set.
func (t *Task) parkPar() {
	e := t.eng
	g := e.par.groups[t.gid]
	t.state = stateBlocked
	t.bIdx = len(g.blocked)
	g.blocked = append(g.blocked, t)
	g.stats.Parks++
	e.dispatchPar(g)
	<-t.resume
	t.checkPoison()
}

// sleepUntilPar is SleepUntil on a parallel kernel. The keep-the-baton fast
// path additionally requires the wakeup to fall strictly inside the safe
// window: a wakeup at or past the window end must yield to the barrier,
// because another group (or a deferred cross-group effect) may own an
// earlier event.
func (t *Task) sleepUntilPar(at vclock.Time) {
	e := t.eng
	g := e.par.groups[t.gid]
	if at < e.par.windowEnd && !g.pendingAt(at) {
		g.stats.Events++
		g.stats.Kept++
		t.checkPoison()
		return
	}
	g.queue.Push(at, kev{task: t})
	ev, ok := g.next(e.par.windowEnd)
	if !ok {
		// Own wakeup at or beyond the window: park until the next round.
		t.state = stateReady
		g.stats.Parks++
		e.par.roundDone <- struct{}{}
		<-t.resume
		t.checkPoison()
		return
	}
	g.stats.Events++
	nt := ev.Payload.task
	if nt == t {
		g.stats.Kept++
		t.checkPoison()
		return // still the earliest: keep running
	}
	t.state = stateReady
	g.stats.Parks++
	g.stats.Switches++
	nt.state = stateRunning
	nt.resume <- struct{}{}
	<-t.resume
	t.checkPoison()
}

// exitPar retires a task of a parallel kernel and passes the group baton.
func (t *Task) exitPar() {
	e := t.eng
	g := e.par.groups[t.gid]
	t.state = stateDone
	g.exited++
	e.dispatchPar(g)
}

// liveNow is the number of registered, not yet exited tasks. Group exit
// counts are only read between rounds.
func (e *Engine) liveNow() int {
	n := e.live
	for _, g := range e.par.groups {
		n -= g.exited
	}
	return n
}

// anyEventPar reports whether any group or the global callback queue holds
// a pending event.
func (e *Engine) anyEventPar() bool {
	if e.queue.Len() > 0 {
		return true
	}
	for _, g := range e.par.groups {
		if g.queue.Len() > 0 {
			return true
		}
	}
	return false
}

// runPar is the coordinator loop: callbacks between rounds, safe-window
// rounds across groups, outbox replay at each barrier.
func (e *Engine) runPar() {
	p := e.par
	for {
		// Earliest pending task event across the groups. Between rounds
		// every batch is fully consumed, so the queue head is the truth.
		minAt, any := vclock.Never, false
		for _, g := range p.groups {
			if h, ok := g.queue.Peek(); ok && (!any || h.At < minAt) {
				minAt, any = h.At, true
			}
		}
		// Callbacks due no later than every task event run now, at the
		// coordinator, holding the whole kernel still — the parallel
		// counterpart of the serial baton. (At equal instants the callback
		// runs first; the supported callback pattern — injection armed
		// before Run, against wakeups pushed mid-run — pops in the same
		// order serially, where the earlier-scheduled event wins.)
		if cb, ok := e.queue.Peek(); ok && cb.At <= minAt {
			ev, _ := e.next()
			if ev.Payload.task != nil {
				panic("engine: task event on the global queue of a parallel kernel")
			}
			e.stats.Events++
			e.runCallback(ev.Payload.cb)
			continue // the callback may have scheduled anything: recompute
		}
		if !any {
			if e.liveNow() == 0 {
				break
			}
			e.poisonPar()
			continue
		}
		w := minAt + p.lookahead
		if cb, ok := e.queue.Peek(); ok && cb.At < w {
			w = cb.At // never run a group past a pending callback
		}
		p.windowEnd = w
		p.inRound = true
		e.stats.Rounds++
		e.stats.WindowSum += w - minAt
		active := 0
		for _, g := range p.groups {
			if h, ok := g.queue.Peek(); ok && h.At < w {
				active++
				e.dispatchPar(g) // kickstart the group's chain
			}
		}
		e.stats.GroupRuns += uint64(active)
		for i := 0; i < active; i++ {
			<-p.roundDone
		}
		p.inRound = false
		e.applyOutboxes()
		parked := 0
		for _, g := range p.groups {
			parked += len(g.blocked)
		}
		if parked > e.stats.PeakParked {
			e.stats.PeakParked = parked
		}
		if e.liveNow() == 0 {
			break
		}
	}
	for _, g := range p.groups {
		e.stats.Events += g.stats.Events
		e.stats.Parks += g.stats.Parks
		e.stats.Switches += g.stats.Switches
		e.stats.Kept += g.stats.Kept
	}
}

// applyOutboxes replays every group's deferred cross-group effects in group
// order. The closures run with the kernel quiescent (inRound is false), so
// nested Defer calls execute immediately, like serial code would.
func (e *Engine) applyOutboxes() {
	for _, g := range e.par.groups {
		for i := 0; i < len(g.outbox); i++ {
			fn := g.outbox[i]
			g.outbox[i] = nil
			e.stats.CrossEvents++
			fn()
		}
		g.outbox = g.outbox[:0]
	}
}

// poisonPar is the parallel deadlock path: no pending event anywhere, yet
// live tasks remain — all of them blocked. Like the serial kernel it fails
// them one at a time (each teardown may push events; if one does, normal
// rounds resume), walking the groups in order.
func (e *Engine) poisonPar() {
	p := e.par
	e.poison = true
	p.windowEnd = vclock.Never
	p.inRound = true
	poisoned := false
	for _, g := range p.groups {
		for len(g.blocked) > 0 {
			t := g.blocked[0]
			g.unblock(t)
			t.state = stateRunning
			t.poison = true
			poisoned = true
			t.resume <- struct{}{}
			<-p.roundDone
			if e.anyEventPar() {
				// Teardown scheduled work: back to normal rounds.
				p.inRound = false
				e.applyOutboxes()
				return
			}
		}
	}
	p.inRound = false
	e.applyOutboxes()
	if !poisoned {
		panic(fmt.Sprintf("engine: %d live tasks but none blocked and no events", e.liveNow()))
	}
}

// blockedCount is the number of parked tasks across the kernel (all groups
// on a parallel kernel), for the deadlock report.
func (e *Engine) blockedCount() int {
	if e.par == nil {
		return len(e.blocked)
	}
	n := 0
	for _, g := range e.par.groups {
		n += len(g.blocked)
	}
	return n
}
