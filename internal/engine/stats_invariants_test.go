package engine

import (
	"sync"
	"testing"

	"clusterbooster/internal/vclock"
)

// checkInvariants asserts the counter identities every clean run satisfies:
//
//   - Events == Switches + Kept + Callbacks: each processed event handed the
//     baton to another task, was consumed by the holder, or ran a callback.
//   - PeakParked <= Parks: a task must park to count as parked.
//   - PeakParked <= Tasks - 1: at least one task holds the baton (or is the
//     one whose event is pending) while others park.
func checkInvariants(t *testing.T, s Stats) {
	t.Helper()
	if s.Events != s.Switches+s.Kept+s.Callbacks {
		t.Fatalf("events=%d != switches=%d + kept=%d + callbacks=%d",
			s.Events, s.Switches, s.Kept, s.Callbacks)
	}
	if uint64(s.PeakParked) > s.Parks {
		t.Fatalf("peak_parked=%d > parks=%d", s.PeakParked, s.Parks)
	}
	if s.Tasks > 0 && s.PeakParked > s.Tasks-1 {
		t.Fatalf("peak_parked=%d > tasks-1=%d", s.PeakParked, s.Tasks-1)
	}
}

// TestStatsInvariantsPingPong: the Park/WakeAt alternation regime.
func TestStatsInvariantsPingPong(t *testing.T) {
	e := New()
	a, b := e.NewTask("a"), e.NewTask("b")
	a.StartAt(0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer a.Exit()
		a.WaitStart()
		for i := 1; i <= 50; i++ {
			if i == 1 {
				b.StartAt(vclock.Time(i) * vclock.Microsecond)
			} else {
				b.WakeAt(vclock.Time(i) * vclock.Microsecond)
			}
			if i < 50 {
				a.Park()
			}
		}
	}()
	go func() {
		defer wg.Done()
		defer b.Exit()
		b.WaitStart()
		for i := 1; i < 50; i++ {
			a.WakeAt(vclock.Time(i) * vclock.Microsecond)
			b.Park()
		}
	}()
	e.Run()
	wg.Wait()
	st := e.Stats()
	checkInvariants(t, st)
	if st.Kept != 0 {
		t.Fatalf("pure park/wake run kept the baton %d times", st.Kept)
	}
	if st.PeakParked != 1 {
		t.Fatalf("peak_parked = %d, want 1 (one side parked at a time)", st.PeakParked)
	}
}

// TestStatsInvariantsSleepAndCallbacks: timers (keep-the-baton fast path)
// mixed with callback events.
func TestStatsInvariantsSleepAndCallbacks(t *testing.T) {
	e := New()
	ran := 0
	tk := e.NewTask("sleeper")
	tk.StartAt(0)
	e.CallAt(5*vclock.Microsecond, func() { ran++ })
	e.CallAt(15*vclock.Microsecond, func() { ran++ })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer tk.Exit()
		tk.WaitStart()
		for i := 1; i <= 10; i++ {
			tk.SleepUntil(vclock.Time(2*i) * vclock.Microsecond)
		}
	}()
	e.Run()
	wg.Wait()
	st := e.Stats()
	checkInvariants(t, st)
	if ran != 2 {
		t.Fatalf("callbacks ran %d times, want 2", ran)
	}
	if st.Callbacks != 2 {
		t.Fatalf("stats.Callbacks = %d, want 2", st.Callbacks)
	}
	if st.Kept == 0 {
		t.Fatal("solo sleeper never kept the baton")
	}
	if st.Switches != 1 {
		// Only the start event crosses into the task; every sleep keeps the
		// baton (callbacks run inline without a switch).
		t.Fatalf("stats.Switches = %d, want 1 (start only)", st.Switches)
	}
}

// TestPeakParkedCountsBlockedOnly: ready tasks sitting in the event queue
// must not count as parked. Through PR 4 notePeak approximated parked as
// live-1, so a herd of sleeping (= ready, queued) tasks inflated the
// high-water mark; now only the blocked set counts.
func TestPeakParkedCountsBlockedOnly(t *testing.T) {
	e := New()
	const sleepers = 8
	var wg sync.WaitGroup

	// One parked/woken pair; the peak parked count should be exactly 1
	// (the parked half) plus never any of the sleepers.
	parked := e.NewTask("parked")
	waker := e.NewTask("waker")
	parked.StartAt(0)
	waker.StartAt(vclock.Microsecond)
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer parked.Exit()
		parked.WaitStart()
		parked.Park()
	}()
	go func() {
		defer wg.Done()
		defer waker.Exit()
		waker.WaitStart()
		parked.WakeAt(2 * vclock.Microsecond)
	}()

	// A herd of sleepers that are always ready-in-queue, never blocked.
	for i := 0; i < sleepers; i++ {
		tk := e.NewTask("sleeper")
		tk.StartAt(0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer tk.Exit()
			tk.WaitStart()
			for k := 1; k <= 4; k++ {
				tk.SleepUntil(vclock.Time(k) * vclock.Microsecond)
			}
		}()
	}
	e.Run()
	wg.Wait()
	st := e.Stats()
	checkInvariants(t, st)
	if st.PeakParked != 1 {
		t.Fatalf("peak_parked = %d, want 1: %d ready sleepers are runnable, not parked (stats: %+v)",
			st.PeakParked, sleepers, st)
	}
}

// TestEngineRecycle: a recycled kernel must come back clean and reuse its
// task structs without cross-talk between launches.
func TestEngineRecycle(t *testing.T) {
	run := func(n int) {
		e := New()
		shared := 0
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			tk := e.NewTask("t")
			tk.StartAt(0)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer tk.Exit()
				tk.WaitStart()
				shared++
				tk.SleepUntil(vclock.Microsecond)
				shared++
			}()
		}
		e.Run()
		wg.Wait()
		if shared != 2*n {
			t.Fatalf("shared = %d, want %d", shared, 2*n)
		}
		checkInvariants(t, e.Stats())
		if e.Stats().Tasks != n {
			t.Fatalf("tasks = %d, want %d (stale count from a previous launch?)", e.Stats().Tasks, n)
		}
		e.Recycle()
	}
	// Varying sizes force the pool to grow and shrink its task free list.
	for _, n := range []int{4, 64, 2, 32, 1} {
		run(n)
	}
}
