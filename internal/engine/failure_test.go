package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"clusterbooster/internal/vclock"
)

// TestCallAtRunsInVirtualOrder checks that callback events interleave with
// task wakeups in (time, schedule) order and run holding the baton.
func TestCallAtRunsInVirtualOrder(t *testing.T) {
	e := New()
	var log []string
	tk := e.NewTask("t")
	tk.StartAt(0)
	e.CallAt(1*vclock.Microsecond, func() { log = append(log, "cb@1") })
	e.CallAt(3*vclock.Microsecond, func() { log = append(log, "cb@3") })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer tk.Exit()
		tk.WaitStart()
		log = append(log, "start")
		tk.SleepUntil(2 * vclock.Microsecond) // cb@1 runs on the way
		log = append(log, "woke@2")
		tk.SleepUntil(4 * vclock.Microsecond) // cb@3 runs on the way
		log = append(log, "woke@4")
	}()
	e.Run()
	wg.Wait()
	want := []string{"start", "cb@1", "woke@2", "cb@3", "woke@4"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", log, want)
	}
}

// TestCallAtPendingAfterLastExit checks that callbacks scheduled past the end
// of the job never fire.
func TestCallAtPendingAfterLastExit(t *testing.T) {
	e := New()
	fired := false
	tk := e.NewTask("t")
	tk.StartAt(0)
	e.CallAt(vclock.Second, func() { fired = true })
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer tk.Exit()
		tk.WaitStart()
	}()
	e.Run()
	wg.Wait()
	if fired {
		t.Fatal("callback fired after the last task exited")
	}
}

// TestFailParkedTask checks that failing a parked task wakes it at the
// failure instant with a TaskFailure carrying the reason.
func TestFailParkedTask(t *testing.T) {
	reason := errors.New("node died")
	e := New()
	victim := e.NewTask("victim")
	victim.StartAt(0)
	e.CallAt(5*vclock.Microsecond, func() { victim.Fail(5*vclock.Microsecond, reason) })
	var recovered any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer victim.Exit()
		defer func() { recovered = recover() }()
		victim.WaitStart()
		victim.Park() // nothing will ever wake it, except the failure
	}()
	e.Run()
	wg.Wait()
	tf, ok := recovered.(*TaskFailure)
	if !ok {
		t.Fatalf("recovered %v (%T), want *TaskFailure", recovered, recovered)
	}
	if !errors.Is(tf, reason) {
		t.Fatalf("failure reason %v, want %v", tf.Reason, reason)
	}
	if tf.Task != "victim" {
		t.Fatalf("failure task %q, want victim", tf.Task)
	}
}

// TestFailReadyTask checks that a task with a pending wakeup dies when that
// event fires, and that the first Fail reason wins.
func TestFailReadyTask(t *testing.T) {
	first := errors.New("first")
	e := New()
	victim := e.NewTask("victim")
	victim.StartAt(0)
	e.CallAt(1*vclock.Microsecond, func() {
		victim.Fail(1*vclock.Microsecond, first)
		victim.Fail(1*vclock.Microsecond, errors.New("second"))
	})
	var recovered any
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer victim.Exit()
		defer func() { recovered = recover() }()
		victim.WaitStart()
		victim.SleepUntil(2 * vclock.Microsecond) // own wakeup pending at 2µs
		t.Error("victim survived its failure")
	}()
	e.Run()
	wg.Wait()
	tf, ok := recovered.(*TaskFailure)
	if !ok || !errors.Is(tf, first) {
		t.Fatalf("recovered %v, want TaskFailure(%v)", recovered, first)
	}
}

// TestFailRunningTaskDiesAtNextKernelTouch checks that the currently running
// task survives until its next scheduling point after a callback fails it.
func TestFailRunningTaskDiesAtNextKernelTouch(t *testing.T) {
	reason := errors.New("pulled the plug")
	e := New()
	tk := e.NewTask("t")
	tk.StartAt(0)
	e.CallAt(1*vclock.Microsecond, func() { tk.Fail(1*vclock.Microsecond, reason) })
	var recovered any
	ranPast := false
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer tk.Exit()
		defer func() { recovered = recover() }()
		tk.WaitStart()
		// The callback at 1µs fails this very task while it holds the baton.
		tk.SleepUntil(2 * vclock.Microsecond)
		ranPast = true
	}()
	e.Run()
	wg.Wait()
	if ranPast {
		t.Fatal("task ran past the failing scheduling point")
	}
	if tf, ok := recovered.(*TaskFailure); !ok || !errors.Is(tf, reason) {
		t.Fatalf("recovered %v, want TaskFailure(%v)", recovered, reason)
	}
}

// TestFailAllNoDeadlockReport fails every task of a blocked job and checks
// each dies with its failure reason, not a deadlock report — the abort path
// must not trip the deadlock detector.
func TestFailAllNoDeadlockReport(t *testing.T) {
	const n = 4
	reason := errors.New("job aborted")
	e := New()
	tasks := make([]*Task, n)
	for i := range tasks {
		tasks[i] = e.NewTask(fmt.Sprintf("t%d", i))
		tasks[i].StartAt(0)
	}
	e.CallAt(1*vclock.Microsecond, func() {
		for _, tk := range tasks {
			tk.Fail(1*vclock.Microsecond, reason)
		}
	})
	recovered := make([]any, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range tasks {
		go func(i int) {
			defer wg.Done()
			defer tasks[i].Exit()
			defer func() { recovered[i] = recover() }()
			tasks[i].WaitStart()
			tasks[i].Park() // everyone blocks; only the failure ends the job
		}(i)
	}
	e.Run()
	wg.Wait()
	for i, r := range recovered {
		tf, ok := r.(*TaskFailure)
		if !ok {
			t.Fatalf("task %d recovered %v (%T), want *TaskFailure", i, r, r)
		}
		if !errors.Is(tf, reason) {
			t.Fatalf("task %d reason %v, want %v", i, tf.Reason, reason)
		}
	}
}

// TestFailDoneTaskIsNoop checks Fail after Exit does nothing.
func TestFailDoneTaskIsNoop(t *testing.T) {
	e := New()
	a := e.NewTask("a")
	b := e.NewTask("b")
	a.StartAt(0)
	b.StartAt(1 * vclock.Microsecond)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer a.Exit()
		a.WaitStart()
	}()
	var recovered any
	go func() {
		defer wg.Done()
		defer b.Exit()
		defer func() { recovered = recover() }()
		b.WaitStart()
		a.Fail(2*vclock.Microsecond, errors.New("too late")) // a already exited
	}()
	e.Run()
	wg.Wait()
	if recovered != nil {
		t.Fatalf("failing a done task panicked: %v", recovered)
	}
}
