package machine

import (
	"fmt"

	"clusterbooster/internal/vclock"
)

// KernelClass categorises computational kernels by how they exercise a node.
// The class determines the effective node-level throughput: the same flop
// count costs very different time on Haswell vs KNL depending on how serial,
// how vectorisable and how memory-regular the kernel is.
type KernelClass int

const (
	// KernelSerial is single-thread-bound work: orchestration, diagnostics,
	// solver setup, I/O marshalling. Runs at single-core scalar speed.
	KernelSerial KernelClass = iota
	// KernelFieldSolver is the implicit-moment field solve: a sparse
	// iterative solver with short vectors, frequent reductions and limited
	// thread scalability. The paper measures it 6× faster on a Haswell node
	// than on a KNL node (§IV-C).
	KernelFieldSolver
	// KernelParticle is the particle push + moment gathering: embarrassingly
	// parallel over particles, wide-vector friendly, gather/scatter bound.
	// The paper measures it 1.35× faster on a KNL node (§IV-C).
	KernelParticle
	// KernelStream is bandwidth-bound streaming (large copies, buffer
	// packing). Limited by MemBWGBs.
	KernelStream
)

// String names the kernel class.
func (k KernelClass) String() string {
	switch k {
	case KernelSerial:
		return "serial"
	case KernelFieldSolver:
		return "field-solver"
	case KernelParticle:
		return "particle"
	case KernelStream:
		return "stream"
	default:
		return fmt.Sprintf("KernelClass(%d)", int(k))
	}
}

// Effective node-level throughputs in GFlop/s for the two solver kernel
// classes. These four numbers are the calibration core of the whole
// reproduction; everything else is derived. Rationale:
//
//   - Field solver: sparse CG-like kernels sustain only a few percent of
//     peak. On Haswell, 3 GFlop/s/node is a typical sustained rate for a
//     short-vector stencil solver with reductions.
//     The paper's measured 6× Cluster advantage (§IV-C) pins KNL at 1/6 of
//     that. The physical story: the solver's short loops, serial fractions
//     and latency-sensitive reductions strand KNL's 64 slow (1.3 GHz, ~1 IPC)
//     cores, while Haswell's fat cores shine.
//   - Particle solver: streaming over millions of independent particles with
//     bilinear gather/scatter. Haswell sustains ~30 GFlop/s (≈3 % of AVX2
//     peak — gather-bound). KNL's AVX-512 + MCDRAM more than compensate for
//     the weak cores; the paper measures 1.35× KNL advantage.
const (
	fieldGFlopsHaswell    = 3.0
	fieldGFlopsKNL        = fieldGFlopsHaswell / 6.0 // paper §IV-C: 6×
	particleGFlopsHaswell = 30.0
	particleGFlopsKNL     = particleGFlopsHaswell * 1.35 // paper §IV-C: 1.35×
)

// EffectiveGFlops returns the sustained node-level throughput of a kernel
// class on this node type, in GFlop/s.
func (s NodeSpec) EffectiveGFlops(k KernelClass) float64 {
	switch k {
	case KernelSerial:
		// One core, scalar: ~1 flop per "GHz-equivalent" cycle.
		return s.SingleThreadGHzEquiv()
	case KernelFieldSolver:
		if s.Arch == Haswell {
			return fieldGFlopsHaswell
		}
		return fieldGFlopsKNL
	case KernelParticle:
		if s.Arch == Haswell {
			return particleGFlopsHaswell
		}
		return particleGFlopsKNL
	case KernelStream:
		// Streaming cost is modelled through memory bandwidth instead; give
		// a nominal compute rate well above it so the memory term dominates.
		return 1000
	default:
		panic(fmt.Sprintf("machine: unknown kernel class %d", int(k)))
	}
}

// Work describes one costed piece of computation: a flop count executed under
// a kernel class, plus optional memory traffic. Either term may be zero.
type Work struct {
	Class KernelClass
	Flops float64 // double-precision floating point operations
	Bytes float64 // memory bytes moved (for bandwidth-bound phases)
}

// ComputeTime returns the virtual time the given work takes on this node
// type. Compute and memory terms are combined with max(), the usual roofline
// assumption: a kernel is limited by whichever resource it saturates.
func (s NodeSpec) ComputeTime(w Work) vclock.Time {
	if w.Flops < 0 || w.Bytes < 0 {
		panic("machine: negative work")
	}
	var tc, tm float64
	if w.Flops > 0 {
		tc = w.Flops / (s.EffectiveGFlops(w.Class) * 1e9)
	}
	if w.Bytes > 0 {
		tm = w.Bytes / (s.MemBWGBs * 1e9)
	}
	if tm > tc {
		tc = tm
	}
	return vclock.Time(tc)
}

// SerialTime is shorthand for costing flops of serial (single-thread) work.
func (s NodeSpec) SerialTime(flops float64) vclock.Time {
	return s.ComputeTime(Work{Class: KernelSerial, Flops: flops})
}

// FieldSolverAdvantage returns how much faster the field-solver class runs on
// a Cluster node than on a Booster node. By construction this equals the
// paper's measured 6×; tests assert it stays that way.
func FieldSolverAdvantage() float64 {
	return ClusterNode().EffectiveGFlops(KernelFieldSolver) /
		BoosterNode().EffectiveGFlops(KernelFieldSolver)
}

// ParticleSolverAdvantage returns how much faster the particle-solver class
// runs on a Booster node than on a Cluster node (paper: 1.35×).
func ParticleSolverAdvantage() float64 {
	return BoosterNode().EffectiveGFlops(KernelParticle) /
		ClusterNode().EffectiveGFlops(KernelParticle)
}
