// Package machine models the hardware of the DEEP-ER prototype: the node
// types of the Cluster module (Intel Xeon E5-2680 v3, Haswell) and the
// Booster module (Intel Xeon Phi 7210, Knights Landing), as listed in
// Table I of the paper, plus the per-kernel-class performance model that the
// virtual-time simulation uses to cost computation.
//
// The performance model intentionally encodes the paper's single-node
// calibration points — the field-solver kernel class runs 6× faster on a
// Haswell node than on a KNL node, and the particle-solver class runs 1.35×
// faster on KNL — and derives everything else (scaling, partition gains,
// overlap benefit) through the simulation.
package machine

import (
	"fmt"

	"clusterbooster/internal/vclock"
)

// Arch identifies a processor micro-architecture.
type Arch int

const (
	// Haswell is the Cluster node CPU (Intel Xeon E5-2680 v3).
	Haswell Arch = iota
	// KNL is the Booster node CPU (Intel Xeon Phi 7210, Knights Landing).
	KNL
)

// String returns the micro-architecture name as used in Table I.
func (a Arch) String() string {
	switch a {
	case Haswell:
		return "Haswell"
	case KNL:
		return "Knights Landing (KNL)"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Module identifies one side of the Cluster-Booster system.
type Module int

const (
	// Cluster is the general-purpose module (Xeon nodes).
	Cluster Module = iota
	// Booster is the many-core module (Xeon Phi nodes).
	Booster
)

// String returns "Cluster" or "Booster".
func (m Module) String() string {
	if m == Cluster {
		return "Cluster"
	}
	return "Booster"
}

// NodeSpec describes one node type of the prototype (one column of Table I).
type NodeSpec struct {
	Processor   string  // marketing name, e.g. "Intel Xeon E5-2680 v3"
	Arch        Arch    // micro-architecture
	Sockets     int     // sockets per node
	Cores       int     // cores per node (all sockets)
	Threads     int     // hardware threads per node
	FreqGHz     float64 // nominal core frequency
	VectorBits  int     // SIMD width: 256 (AVX2) or 512 (AVX-512)
	RAMBytes    int64   // main memory (DDR4)
	MCDRAMBytes int64   // on-package high-bandwidth memory (KNL only)
	NVMeBytes   int64   // node-local NVMe capacity
	MemBWGBs    float64 // sustainable memory bandwidth (GB/s), STREAM-like
	// MPIBaseLatency is the end-to-end small-message MPI latency between two
	// nodes of this type (Table I: 1.0 µs Cluster, 1.8 µs Booster). The
	// fabric package decomposes it into wire + per-endpoint CPU overhead.
	MPIBaseLatency vclock.Time
	// LinkGbits is the injection link bandwidth (EXTOLL Tourmalet A3:
	// 100 Gbit/s on both modules).
	LinkGbits float64
	// PeakTFlops is the nominal double-precision peak of one node, used only
	// for Table I reporting and sanity checks.
	PeakTFlops float64
}

const (
	gb = int64(1) << 30
	tb = int64(1) << 40
)

// ClusterNode returns the DEEP-ER Cluster node specification (Table I).
func ClusterNode() NodeSpec {
	return NodeSpec{
		Processor:      "Intel Xeon E5-2680 v3",
		Arch:           Haswell,
		Sockets:        2,
		Cores:          24,
		Threads:        48,
		FreqGHz:        2.5,
		VectorBits:     256,
		RAMBytes:       128 * gb,
		MCDRAMBytes:    0,
		NVMeBytes:      400 * 1000 * 1000 * 1000, // 400 GB (decimal, as sold)
		MemBWGBs:       110,
		MPIBaseLatency: 1.0 * vclock.Microsecond,
		LinkGbits:      100,
		// 24 cores × 2.5 GHz × 16 DP flop/cycle (AVX2 FMA) = 0.96 TFlop/s;
		// 16 nodes ≈ 16 TFlop/s as in Table I.
		PeakTFlops: 0.96,
	}
}

// BoosterNode returns the DEEP-ER Booster node specification (Table I).
func BoosterNode() NodeSpec {
	return NodeSpec{
		Processor:      "Intel Xeon Phi 7210",
		Arch:           KNL,
		Sockets:        1,
		Cores:          64,
		Threads:        256,
		FreqGHz:        1.3,
		VectorBits:     512,
		RAMBytes:       96 * gb,
		MCDRAMBytes:    16 * gb,
		NVMeBytes:      400 * 1000 * 1000 * 1000,
		MemBWGBs:       400, // MCDRAM-backed
		MPIBaseLatency: 1.8 * vclock.Microsecond,
		LinkGbits:      100,
		// 64 cores × 1.3 GHz × 32 DP flop/cycle (2× AVX-512 FMA) ≈ 2.66
		// TFlop/s nominal; Table I quotes 20 TFlop/s for 8 nodes (≈2.5 each,
		// at AVX frequency). We report the Table I figure.
		PeakTFlops: 2.5,
	}
}

// Spec returns the node specification for a module.
func Spec(m Module) NodeSpec {
	if m == Cluster {
		return ClusterNode()
	}
	return BoosterNode()
}

// PrototypeNodeCount returns the DEEP-ER prototype node count per module
// (Table I: 16 Cluster, 8 Booster).
func PrototypeNodeCount(m Module) int {
	if m == Cluster {
		return 16
	}
	return 8
}

// Node is one physical node instance inside a simulated system.
type Node struct {
	ID     int    // global node id, unique across modules
	Index  int    // index within its module
	Module Module // which module the node belongs to
	Spec   NodeSpec
	prefix string // node-name prefix, derived from the module name
}

// Name returns a human-readable node name such as "cn03" or "bn01".
func (n *Node) Name() string {
	prefix := n.prefix
	if prefix == "" {
		prefix = "cn"
		if n.Module == Booster {
			prefix = "bn"
		}
	}
	return fmt.Sprintf("%s%02d", prefix, n.Index)
}

// CopyGBs returns the single-thread memory-copy rate of this CPU in GB/s.
// It governs the CPU-driven (eager/PIO) message path of the fabric model:
// the slow KNL core is what keeps Booster mid-size message bandwidth below
// the Cluster's in Fig. 3 until DMA takes over for large messages.
func (s NodeSpec) CopyGBs() float64 {
	switch s.Arch {
	case Haswell:
		return 6.0
	case KNL:
		return 2.5
	default:
		return 4.0
	}
}

// SingleThreadGHzEquiv returns a relative single-thread performance figure
// (frequency × scalar IPC factor) used for serial code sections. KNL's Silvermont-
// derived core has markedly lower ILP than Haswell; the footnote to Table I
// attributes the Booster's higher MPI latency to exactly this.
func (s NodeSpec) SingleThreadGHzEquiv() float64 {
	switch s.Arch {
	case Haswell:
		return s.FreqGHz * 2.0 // ~2 scalar IPC sustained
	case KNL:
		return s.FreqGHz * 1.0 // ~1 scalar IPC sustained
	default:
		return s.FreqGHz
	}
}
