package machine

import "fmt"

// Pool describes one module's node pool for multi-module systems (the
// Modular Supercomputing generalisation of §VI: "any number of compute
// modules ... each a cluster of a potentially large size, tailored to the
// specific needs of a class of applications").
type Pool struct {
	Module Module
	Name   string
	Spec   NodeSpec
	Count  int
}

// System is the hardware inventory of a modular machine: one or more pools
// of nodes joined by the fabric into one system. The DEEP-ER prototype is
// the two-pool instance New(16, 8).
type System struct {
	order []Module
	pools map[Module][]*Node
	names map[Module]string
	nodes []*Node // all nodes, indexed by global ID
}

// NewMulti builds a system from explicit module pools. Pool module ids must
// be unique; counts must be non-negative.
func NewMulti(pools []Pool) *System {
	s := &System{pools: map[Module][]*Node{}, names: map[Module]string{}}
	id := 0
	for _, pl := range pools {
		if pl.Count < 0 {
			panic("machine: negative node count")
		}
		if _, dup := s.pools[pl.Module]; dup {
			panic(fmt.Sprintf("machine: duplicate module id %d", int(pl.Module)))
		}
		name := pl.Name
		if name == "" {
			name = pl.Module.String()
		}
		s.order = append(s.order, pl.Module)
		s.names[pl.Module] = name
		prefix := namePrefix(pl.Module, name)
		for i := 0; i < pl.Count; i++ {
			n := &Node{ID: id, Index: i, Module: pl.Module, Spec: pl.Spec, prefix: prefix}
			s.pools[pl.Module] = append(s.pools[pl.Module], n)
			s.nodes = append(s.nodes, n)
			id++
		}
	}
	return s
}

// namePrefix derives the node-name prefix: the classic "cn"/"bn" for the
// Cluster-Booster pair, the lowercase module initials otherwise.
func namePrefix(m Module, name string) string {
	switch m {
	case Cluster:
		return "cn"
	case Booster:
		return "bn"
	}
	if len(name) >= 2 {
		return string(name[0]|0x20) + string(name[1]|0x20)
	}
	return "xx"
}

// New builds the classic two-module system with the given node counts,
// using the DEEP-ER node specifications.
func New(clusterNodes, boosterNodes int) *System {
	return NewMulti([]Pool{
		{Module: Cluster, Name: "Cluster", Spec: ClusterNode(), Count: clusterNodes},
		{Module: Booster, Name: "Booster", Spec: BoosterNode(), Count: boosterNodes},
	})
}

// Prototype builds the DEEP-ER prototype: 16 Cluster + 8 Booster nodes.
func Prototype() *System { return New(16, 8) }

// Nodes returns all nodes in global-ID order.
func (s *System) Nodes() []*Node { return s.nodes }

// Modules returns the module ids in declaration order.
func (s *System) Modules() []Module { return s.order }

// ModuleName returns the human-readable module name.
func (s *System) ModuleName(m Module) string {
	if name, ok := s.names[m]; ok {
		return name
	}
	return m.String()
}

// Module returns the nodes of one module (nil if the module is absent).
func (s *System) Module(m Module) []*Node { return s.pools[m] }

// NodeCount returns the number of nodes in a module.
func (s *System) NodeCount(m Module) int { return len(s.pools[m]) }

// Node returns the node with the given global ID.
func (s *System) Node(id int) *Node {
	if id < 0 || id >= len(s.nodes) {
		panic(fmt.Sprintf("machine: node id %d out of range [0,%d)", id, len(s.nodes)))
	}
	return s.nodes[id]
}

// TotalPeakTFlops sums nominal peak performance over a module, matching the
// "Peak performance" row of Table I.
func (s *System) TotalPeakTFlops(m Module) float64 {
	var sum float64
	for _, n := range s.Module(m) {
		sum += n.Spec.PeakTFlops
	}
	return sum
}
