package machine

import (
	"fmt"

	"clusterbooster/internal/vclock"
)

// FailureProfile is the reliability model of one module's node population:
// every node of the module fails independently with exponential time between
// failures (mean MTBF) and returns to service after an exponential repair
// (mean MTTR). The two DEEP modules get independent profiles — the KNL
// Booster and the Xeon Cluster have no reason to share failure behaviour —
// which is exactly the heterogeneous-MTBF axis ROADMAP item 3 calls for.
//
// Note the unit: virtual seconds, the same clock as the job makespans. CI
// workloads run virtual seconds rather than wall-clock weeks, so experiment
// MTBFs are scaled down accordingly; the Markov model underneath is
// scale-free, and so is the steady-state availability it predicts.
type FailureProfile struct {
	// MTBF is the per-node mean time between failures (0 disables failures
	// for the module).
	MTBF vclock.Time
	// MTTR is the per-node mean time to repair. Each failed node repairs
	// independently, so the module behaves as the classic machine-repairman
	// model with as many repair crews as nodes.
	MTTR vclock.Time
}

// Enabled reports whether the profile injects failures at all.
func (f FailureProfile) Enabled() bool { return f.MTBF > 0 }

// Availability returns the steady-state fraction of time a node is in
// service: MTBF/(MTBF+MTTR), the standard renewal-theory limit used by the
// Beowulf performability literature. A disabled profile is always up.
func (f FailureProfile) Availability() float64 {
	if !f.Enabled() {
		return 1
	}
	return f.MTBF.Seconds() / (f.MTBF + f.MTTR).Seconds()
}

// Validate rejects profiles the failure process cannot simulate: an enabled
// profile needs a positive repair time (a zero MTTR with failures on would
// mean instant repair — expressible, but almost always a forgotten field)
// and no negative times.
func (f FailureProfile) Validate() error {
	if f.MTBF < 0 || f.MTTR < 0 {
		return fmt.Errorf("machine: negative failure profile (MTBF %v, MTTR %v)", f.MTBF, f.MTTR)
	}
	if f.Enabled() && f.MTTR <= 0 {
		return fmt.Errorf("machine: failure profile with MTBF %v needs a positive MTTR", f.MTBF)
	}
	return nil
}
