package machine

import (
	"math"
	"testing"
	"testing/quick"

	"clusterbooster/internal/vclock"
)

// TestTable1ClusterColumn pins the Cluster column of Table I.
func TestTable1ClusterColumn(t *testing.T) {
	c := ClusterNode()
	if c.Processor != "Intel Xeon E5-2680 v3" {
		t.Errorf("processor = %q", c.Processor)
	}
	if c.Arch != Haswell {
		t.Errorf("arch = %v, want Haswell", c.Arch)
	}
	if c.Sockets != 2 || c.Cores != 24 || c.Threads != 48 {
		t.Errorf("sockets/cores/threads = %d/%d/%d, want 2/24/48", c.Sockets, c.Cores, c.Threads)
	}
	if c.FreqGHz != 2.5 {
		t.Errorf("freq = %v, want 2.5", c.FreqGHz)
	}
	if c.RAMBytes != 128<<30 {
		t.Errorf("RAM = %d, want 128 GiB", c.RAMBytes)
	}
	if c.MCDRAMBytes != 0 {
		t.Errorf("cluster node has MCDRAM")
	}
	if c.MPIBaseLatency != 1.0*vclock.Microsecond {
		t.Errorf("MPI latency = %v, want 1.0µs", c.MPIBaseLatency)
	}
	if c.LinkGbits != 100 {
		t.Errorf("link = %v Gbit/s, want 100", c.LinkGbits)
	}
	if c.VectorBits != 256 {
		t.Errorf("vector = %d bits, want 256 (AVX2)", c.VectorBits)
	}
}

// TestTable1BoosterColumn pins the Booster column of Table I.
func TestTable1BoosterColumn(t *testing.T) {
	b := BoosterNode()
	if b.Processor != "Intel Xeon Phi 7210" {
		t.Errorf("processor = %q", b.Processor)
	}
	if b.Arch != KNL {
		t.Errorf("arch = %v, want KNL", b.Arch)
	}
	if b.Sockets != 1 || b.Cores != 64 || b.Threads != 256 {
		t.Errorf("sockets/cores/threads = %d/%d/%d, want 1/64/256", b.Sockets, b.Cores, b.Threads)
	}
	if b.FreqGHz != 1.3 {
		t.Errorf("freq = %v, want 1.3", b.FreqGHz)
	}
	if b.MCDRAMBytes != 16<<30 {
		t.Errorf("MCDRAM = %d, want 16 GiB", b.MCDRAMBytes)
	}
	if b.RAMBytes != 96<<30 {
		t.Errorf("DDR4 = %d, want 96 GiB", b.RAMBytes)
	}
	if b.MPIBaseLatency != 1.8*vclock.Microsecond {
		t.Errorf("MPI latency = %v, want 1.8µs", b.MPIBaseLatency)
	}
	if b.VectorBits != 512 {
		t.Errorf("vector = %d bits, want 512 (AVX-512)", b.VectorBits)
	}
}

// TestTable1NodeCounts pins the prototype node counts (16 + 8).
func TestTable1NodeCounts(t *testing.T) {
	if got := PrototypeNodeCount(Cluster); got != 16 {
		t.Errorf("cluster nodes = %d, want 16", got)
	}
	if got := PrototypeNodeCount(Booster); got != 8 {
		t.Errorf("booster nodes = %d, want 8", got)
	}
}

// TestTable1PeakPerformance checks the module peaks (~16 and ~20 TFlop/s).
func TestTable1PeakPerformance(t *testing.T) {
	s := Prototype()
	if got := s.TotalPeakTFlops(Cluster); math.Abs(got-16*0.96) > 1e-9 {
		t.Errorf("cluster peak = %v TFlop/s", got)
	}
	if got := s.TotalPeakTFlops(Booster); math.Abs(got-20) > 1e-9 {
		t.Errorf("booster peak = %v TFlop/s, want 20", got)
	}
}

// TestCalibratedKernelRatios pins the two single-node calibration points from
// §IV-C of the paper: 6× for the field solver, 1.35× for the particle solver.
func TestCalibratedKernelRatios(t *testing.T) {
	if got := FieldSolverAdvantage(); math.Abs(got-6.0) > 1e-9 {
		t.Errorf("field-solver Cluster advantage = %v, want 6.0", got)
	}
	if got := ParticleSolverAdvantage(); math.Abs(got-1.35) > 1e-9 {
		t.Errorf("particle-solver Booster advantage = %v, want 1.35", got)
	}
}

func TestSingleThreadAdvantage(t *testing.T) {
	// Haswell single-thread must be markedly faster than KNL (Table I
	// footnote attributes Booster MPI latency to this).
	h := ClusterNode().SingleThreadGHzEquiv()
	k := BoosterNode().SingleThreadGHzEquiv()
	if h/k < 2.5 || h/k > 6 {
		t.Errorf("single-thread ratio = %v, want within [2.5,6]", h/k)
	}
}

func TestComputeTimeScalesLinearly(t *testing.T) {
	c := ClusterNode()
	t1 := c.ComputeTime(Work{Class: KernelParticle, Flops: 1e9})
	t2 := c.ComputeTime(Work{Class: KernelParticle, Flops: 2e9})
	if math.Abs(float64(t2)/float64(t1)-2) > 1e-9 {
		t.Errorf("compute time not linear: %v vs %v", t1, t2)
	}
}

func TestComputeTimeRoofline(t *testing.T) {
	c := ClusterNode()
	// Memory-bound work: bytes term dominates.
	w := Work{Class: KernelStream, Flops: 1, Bytes: 110e9} // exactly 1 s of memory traffic
	if got := c.ComputeTime(w).Seconds(); math.Abs(got-1) > 1e-6 {
		t.Errorf("stream time = %v s, want 1", got)
	}
	// Compute-bound work: flop term dominates (3 GFlop/s calibrated rate).
	w = Work{Class: KernelFieldSolver, Flops: 3e9, Bytes: 1}
	if got := c.ComputeTime(w).Seconds(); math.Abs(got-1) > 1e-6 {
		t.Errorf("field time = %v s, want 1", got)
	}
}

func TestComputeTimeZeroWork(t *testing.T) {
	if got := ClusterNode().ComputeTime(Work{}); got != 0 {
		t.Errorf("zero work costs %v", got)
	}
}

func TestComputeTimeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative work did not panic")
		}
	}()
	ClusterNode().ComputeTime(Work{Flops: -1})
}

func TestSystemLayout(t *testing.T) {
	s := New(3, 2)
	if len(s.Nodes()) != 5 {
		t.Fatalf("total nodes = %d, want 5", len(s.Nodes()))
	}
	if s.NodeCount(Cluster) != 3 || s.NodeCount(Booster) != 2 {
		t.Fatalf("module counts wrong")
	}
	// Global IDs are dense and ordered Cluster-then-Booster.
	for i, n := range s.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
	}
	if s.Node(3).Module != Booster || s.Node(3).Index != 0 {
		t.Errorf("node 3 = %+v, want first booster node", s.Node(3))
	}
	if got := s.Node(0).Name(); got != "cn00" {
		t.Errorf("name = %q, want cn00", got)
	}
	if got := s.Node(4).Name(); got != "bn01" {
		t.Errorf("name = %q, want bn01", got)
	}
}

func TestSystemNodeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Node() did not panic")
		}
	}()
	New(1, 1).Node(2)
}

func TestModuleString(t *testing.T) {
	if Cluster.String() != "Cluster" || Booster.String() != "Booster" {
		t.Fatal("module names wrong")
	}
	if KernelFieldSolver.String() != "field-solver" {
		t.Fatal("kernel class name wrong")
	}
}

func TestQuickComputeTimeMonotone(t *testing.T) {
	// Property: more flops never cost less time, on either node type.
	specs := []NodeSpec{ClusterNode(), BoosterNode()}
	classes := []KernelClass{KernelSerial, KernelFieldSolver, KernelParticle, KernelStream}
	f := func(a, b uint32, si, ci uint8) bool {
		s := specs[int(si)%len(specs)]
		k := classes[int(ci)%len(classes)]
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return s.ComputeTime(Work{Class: k, Flops: lo}) <= s.ComputeTime(Work{Class: k, Flops: hi})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
