package fabric

import (
	"math"
	"testing"
	"testing/quick"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

func testNet() (*Network, *machine.Node, *machine.Node, *machine.Node, *machine.Node) {
	sys := machine.New(2, 2)
	n := New(sys, Config{})
	return n, sys.Node(0), sys.Node(1), sys.Node(2), sys.Node(3)
}

// TestTable1Latencies pins the modelled zero-byte latencies to Table I:
// 1.0 µs between Cluster nodes, 1.8 µs between Booster nodes.
func TestTable1Latencies(t *testing.T) {
	n, c0, c1, b0, b1 := testNet()
	if got := n.ZeroLatency(c0, c1).Micros(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("CN-CN latency = %vµs, want 1.0", got)
	}
	if got := n.ZeroLatency(b0, b1).Micros(); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("BN-BN latency = %vµs, want 1.8", got)
	}
	// Mixed pairs sit in between (Fig. 3 lower panel).
	cb := n.ZeroLatency(c0, b0).Micros()
	if cb <= 1.0 || cb >= 1.8 {
		t.Errorf("CN-BN latency = %vµs, want strictly between 1.0 and 1.8", cb)
	}
}

func TestIntraNodeLatencyCheaper(t *testing.T) {
	n, c0, c1, _, _ := testNet()
	if n.ZeroLatency(c0, c0) >= n.ZeroLatency(c0, c1) {
		t.Errorf("intra-node latency not cheaper than inter-node")
	}
}

// TestFig3SmallMessageOrdering checks the latency ordering of Fig. 3 at small
// sizes: CN-CN < CN-BN < BN-BN.
func TestFig3SmallMessageOrdering(t *testing.T) {
	n, c0, c1, b0, b1 := testNet()
	for _, size := range []int{1, 8, 64, 512, 4096} {
		cc := n.PingPongTime(c0, c1, size)
		cb := n.PingPongTime(c0, b0, size)
		bb := n.PingPongTime(b0, b1, size)
		if !(cc < cb && cb < bb) {
			t.Errorf("size %d: latencies cc=%v cb=%v bb=%v, want cc<cb<bb", size, cc, cb, bb)
		}
	}
}

// TestFig3LargeMessageConvergence checks that at large sizes all node-type
// pairs are limited by the fabric ("For large messages communication
// performance between all kinds of nodes is limited by fabric bandwidth").
func TestFig3LargeMessageConvergence(t *testing.T) {
	n, c0, c1, b0, b1 := testNet()
	const size = 16 << 20
	cc := n.Bandwidth(c0, c1, size)
	bb := n.Bandwidth(b0, b1, size)
	cb := n.Bandwidth(c0, b0, size)
	if math.Abs(cc/bb-1) > 0.02 || math.Abs(cc/cb-1) > 0.02 {
		t.Errorf("large-message bandwidths diverge: cc=%.0f bb=%.0f cb=%.0f MB/s",
			cc/1e6, bb/1e6, cb/1e6)
	}
	// And they approach (but do not exceed) the RDMA-effective link rate.
	lim := n.Config().LinkGBs * n.Config().RDMAEfficiency * 1e9
	if cc > lim {
		t.Errorf("bandwidth %v exceeds link limit %v", cc, lim)
	}
	if cc < 0.9*lim {
		t.Errorf("bandwidth %v too far below link limit %v", cc, lim)
	}
}

// TestFig3MidSizeAsymmetry checks that at eager/mid sizes the Booster pairs
// are slower ("for small message sizes communication is more efficient
// between the Cluster nodes due to the higher single thread performance").
func TestFig3MidSizeAsymmetry(t *testing.T) {
	n, c0, c1, b0, b1 := testNet()
	for _, size := range []int{1 << 10, 4 << 10, 16 << 10} {
		cc := n.Bandwidth(c0, c1, size)
		bb := n.Bandwidth(b0, b1, size)
		if cc <= bb {
			t.Errorf("size %d: CN-CN bandwidth %.0f <= BN-BN %.0f", size, cc, bb)
		}
	}
}

func TestBandwidthMonotoneInSize(t *testing.T) {
	n, c0, c1, _, _ := testNet()
	prev := 0.0
	for size := 1; size <= 1<<24; size *= 4 {
		bw := n.Bandwidth(c0, c1, size)
		// Allow the eager→rendezvous switch to bump, but bandwidth must not
		// fall below eager-path levels once in the rendezvous regime.
		if size > n.Config().EagerThreshold*4 && bw < prev*0.99 {
			t.Errorf("bandwidth fell from %.0f to %.0f at size %d", prev, bw, size)
		}
		prev = bw
	}
}

func TestEagerSendBuffered(t *testing.T) {
	// The sender of an eager message is released before the data arrives at
	// the (remote) destination.
	n, c0, c1, _, _ := testNet()
	senderFree, arrival := n.EagerSend(c0, c1, 1024, 0)
	if senderFree >= arrival {
		t.Errorf("senderFree=%v >= arrival=%v; eager send should buffer", senderFree, arrival)
	}
}

func TestEagerSendAboveThresholdPanics(t *testing.T) {
	n, c0, c1, _, _ := testNet()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized eager send")
		}
	}()
	n.EagerSend(c0, c1, n.Config().EagerThreshold+1, 0)
}

func TestRendezvousWaitsForReceiver(t *testing.T) {
	// A rendezvous transfer cannot start before the receive is posted: late
	// receiver delays both arrival and sender completion.
	n, c0, c1, _, _ := testNet()
	const size = 1 << 20
	_, early := n.Rendezvous(c0, c1, size, 0, 0)
	n2, d0, d1, _, _ := testNet()
	_ = n2
	late := vclock.Time(100 * vclock.Microsecond)
	_, delayed := n2.Rendezvous(d0, d1, size, 0, late)
	if delayed < early+late-vclock.Microsecond {
		t.Errorf("late receiver did not delay rendezvous: %v vs %v", delayed, early)
	}
}

func TestLinkContentionSerialises(t *testing.T) {
	// Two rendezvous transfers out of the same source at the same time must
	// serialise on the injection link: the second arrives roughly one
	// transfer-time later.
	n, c0, c1, b0, _ := testNet()
	const size = 4 << 20
	dma := float64(size) / (n.Config().LinkGBs * n.Config().RDMAEfficiency * 1e9)
	_, a1 := n.Rendezvous(c0, c1, size, 0, 0)
	_, a2 := n.Rendezvous(c0, b0, size, 0, 0)
	gap := (a2 - a1).Seconds()
	if math.Abs(gap-dma) > dma*0.2 {
		t.Errorf("second transfer gap %.3gs, want about one DMA time %.3gs", gap, dma)
	}
}

func TestEjectionContention(t *testing.T) {
	// Two senders into one receiver serialise on the ejection link.
	n, c0, c1, b0, _ := testNet()
	const size = 4 << 20
	_, a1 := n.Rendezvous(c1, c0, size, 0, 0)
	_, a2 := n.Rendezvous(b0, c0, size, 0, 0)
	if a2 <= a1 {
		t.Errorf("ejection contention not modelled: arrivals %v, %v", a1, a2)
	}
}

func TestRDMAReadWrite(t *testing.T) {
	n, c0, _, _, _ := testNet()
	ep := n.AttachEndpoint()
	const size = 1 << 20
	done := n.RDMARead(c0, ep, size, 0)
	min := float64(size) / (n.Config().LinkGBs * 1e9)
	if done.Seconds() < min {
		t.Errorf("RDMA read %v faster than wire permits (%.3gs)", done, min)
	}
	wdone := n.RDMAWrite(c0, ep, size, 0)
	if wdone.Seconds() < min {
		t.Errorf("RDMA write %v faster than wire permits", wdone)
	}
}

func TestRDMAProportionalToSize(t *testing.T) {
	n, c0, _, _, _ := testNet()
	ep := n.AttachEndpoint()
	t1 := n.RDMAWrite(c0, ep, 1<<20, 0)
	n2, d0, _, _, _ := testNet()
	ep2 := n2.AttachEndpoint()
	t2 := n2.RDMAWrite(d0, ep2, 2<<20, 0)
	if t2 <= t1 {
		t.Errorf("RDMA time not increasing with size: %v vs %v", t1, t2)
	}
}

func TestConfigDefaults(t *testing.T) {
	n := New(machine.New(1, 1), Config{})
	cfg := n.Config()
	if cfg.EagerThreshold != 16<<10 {
		t.Errorf("default eager threshold = %d", cfg.EagerThreshold)
	}
	if cfg.LinkGBs != 12.5 {
		t.Errorf("default link = %v GB/s, want 12.5 (100 Gbit/s)", cfg.LinkGBs)
	}
	// Partial configs keep explicit values.
	n2 := New(machine.New(1, 1), Config{EagerThreshold: 1024})
	if n2.Config().EagerThreshold != 1024 {
		t.Errorf("explicit threshold overridden")
	}
	if n2.Config().LinkGBs != 12.5 {
		t.Errorf("unset field not defaulted")
	}
}

func TestQuickPingPongMonotone(t *testing.T) {
	// Property: within one transfer protocol, ping-pong time never decreases
	// with message size, for any pair of node types. Across the
	// eager/rendezvous threshold monotonicity is NOT expected: a message
	// just above the threshold moves by RDMA with no per-byte CPU cost and
	// can beat a slightly smaller eager message (the protocol-switch bump of
	// Fig. 3, swept explicitly by the A6 ablation bench).
	n, c0, c1, b0, b1 := testNet()
	thr := n.Config().EagerThreshold
	pairs := [][2]*machine.Node{{c0, c1}, {b0, b1}, {c0, b0}}
	f := func(rawA, rawB uint32, pi uint8) bool {
		p := pairs[int(pi)%len(pairs)]
		a, b := int(rawA%(1<<22)), int(rawB%(1<<22))
		if a > b {
			a, b = b, a
		}
		if (a <= thr) != (b <= thr) {
			return true // different protocols: no ordering guaranteed
		}
		return n.PingPongTime(p[0], p[1], a) <= n.PingPongTime(p[0], p[1], b)+vclock.Nanosecond
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPingPongProtocolSwitchBump(t *testing.T) {
	// Regression anchor for the property above: on a CN-BN pair, a
	// rendezvous message just above the eager threshold really is faster
	// than an eager message below it (KNL endpoint CPU copies are slow, RDMA
	// is not), so global monotonicity must not be asserted.
	n, c0, _, b0, _ := testNet()
	thr := n.Config().EagerThreshold
	eager := n.PingPongTime(c0, b0, thr)
	rendezvous := n.PingPongTime(c0, b0, thr+128)
	if rendezvous >= eager {
		t.Errorf("no bump at this calibration (eager %v <= rendezvous %v): "+
			"remove the cross-threshold exemption from TestQuickPingPongMonotone",
			eager, rendezvous)
	}
}
