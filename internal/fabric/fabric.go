// Package fabric models the EXTOLL Tourmalet A3 interconnect of the DEEP-ER
// prototype: one uniform 100 Gbit/s fabric spanning Cluster and Booster
// (§II-B of the paper), with per-endpoint CPU costs that reproduce the
// measured MPI latencies (1.0 µs CN-CN, 1.8 µs BN-BN) and the Fig. 3
// bandwidth/latency curves.
//
// Two transfer protocols are modelled, mirroring ParaStation MPI on EXTOLL:
//
//   - Eager: small messages are copied by the sending CPU into the NIC and by
//     the receiving CPU out of it. Cost is dominated by per-endpoint overhead
//     plus a per-byte CPU copy term — so the slow KNL core makes Booster
//     endpoints slower, exactly the asymmetry Fig. 3 shows at small/mid sizes.
//   - Rendezvous: large messages handshake (RTS/CTS) and then move by RDMA at
//     link speed with no per-byte CPU cost, so all node-type pairs converge
//     to the same fabric-limited bandwidth, as Fig. 3 shows for large sizes.
//
// Each node has an injection and an ejection link modelled as shared
// resources (vclock.SharedClock), which serialises overlapping transfers and
// yields contention behaviour for free. Link clocks are execution-kernel
// resources: the discrete-event kernel (internal/engine) runs one simulated
// task at a time, so reservations arrive pre-serialised in virtual-time
// order and the model needs no locking and no ownership discipline.
package fabric

import (
	"fmt"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Config holds the tunable parameters of the fabric model. Zero fields are
// replaced by defaults matching the DEEP-ER prototype.
type Config struct {
	// WireLatency is the one-way switch+cable latency of the fabric,
	// excluding endpoint CPU costs. Tourmalet: ~0.2 µs per hop.
	WireLatency vclock.Time
	// EagerThreshold is the largest message size (bytes) sent eagerly;
	// larger messages use the rendezvous protocol.
	EagerThreshold int
	// LinkGBs is the raw link bandwidth in GB/s (100 Gbit/s = 12.5 GB/s).
	LinkGBs float64
	// RDMAEfficiency scales LinkGBs to the achievable RDMA payload bandwidth
	// (protocol headers, packetisation). ~0.88 for Tourmalet.
	RDMAEfficiency float64
	// RDMASetup is the initiator-side cost to post an RDMA descriptor.
	RDMASetup vclock.Time
}

// DefaultConfig returns the DEEP-ER prototype fabric parameters.
func DefaultConfig() Config {
	return Config{
		WireLatency:    0.2 * vclock.Microsecond,
		EagerThreshold: 16 << 10,
		LinkGBs:        12.5,
		RDMAEfficiency: 0.88,
		RDMASetup:      0.3 * vclock.Microsecond,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.WireLatency == 0 {
		c.WireLatency = d.WireLatency
	}
	if c.EagerThreshold == 0 {
		c.EagerThreshold = d.EagerThreshold
	}
	if c.LinkGBs == 0 {
		c.LinkGBs = d.LinkGBs
	}
	if c.RDMAEfficiency == 0 {
		c.RDMAEfficiency = d.RDMAEfficiency
	}
	if c.RDMASetup == 0 {
		c.RDMASetup = d.RDMASetup
	}
	return c
}

// Network is the timed fabric joining all nodes of a machine.System.
type Network struct {
	sys    *machine.System
	cfg    Config
	inject []*vclock.SharedClock // per-node injection link occupancy
	eject  []*vclock.SharedClock // per-node ejection link occupancy
}

// New builds a network over the given system. A zero Config selects the
// DEEP-ER prototype parameters.
func New(sys *machine.System, cfg Config) *Network {
	n := &Network{sys: sys, cfg: cfg.withDefaults()}
	for range sys.Nodes() {
		n.inject = append(n.inject, vclock.NewSharedClock(0))
		n.eject = append(n.eject, vclock.NewSharedClock(0))
	}
	return n
}

// Config returns the effective (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// System returns the machine the network spans.
func (n *Network) System() *machine.System { return n.sys }

// sendOverhead is the CPU time node a spends initiating a message: software
// stack, doorbell, completion handling. Calibrated so that
// o_send + wire + o_recv reproduces Table I's MPI latencies
// (Haswell: 0.4+0.2+0.4 = 1.0 µs; KNL: 0.8+0.2+0.8 = 1.8 µs).
func sendOverhead(spec machine.NodeSpec) vclock.Time {
	switch spec.Arch {
	case machine.Haswell:
		return 0.4 * vclock.Microsecond
	case machine.KNL:
		return 0.8 * vclock.Microsecond
	default:
		return 0.6 * vclock.Microsecond
	}
}

// recvOverhead is the CPU time the receiver spends completing a match.
// Symmetric with sendOverhead on this fabric.
func recvOverhead(spec machine.NodeSpec) vclock.Time { return sendOverhead(spec) }

// Eager reports whether a message of the given size uses the eager protocol.
func (n *Network) Eager(size int) bool { return size <= n.cfg.EagerThreshold }

// SendOverheadOf returns the CPU time a node spends issuing a message (the
// part of the latency the sending process itself pays before continuing).
func (n *Network) SendOverheadOf(node *machine.Node) vclock.Time {
	return sendOverhead(node.Spec)
}

// ZeroLatency returns the modelled end-to-end zero-byte MPI latency between
// two nodes: o_send(src) + wire + o_recv(dst).
func (n *Network) ZeroLatency(src, dst *machine.Node) vclock.Time {
	if src.ID == dst.ID {
		// Intra-node (shared memory): no fabric involved; a fraction of the
		// network latency, dominated by the local CPU.
		return (sendOverhead(src.Spec) + recvOverhead(dst.Spec)) / 4
	}
	return sendOverhead(src.Spec) + n.cfg.WireLatency + recvOverhead(dst.Spec)
}

// CrossLookahead returns the minimum virtual time any action on one node
// needs to become visible on another node through this fabric: wire latency
// plus the smallest per-endpoint CPU overhead across the machine's node
// architectures. This is the conservative-parallel-kernel lookahead — the
// engine may advance node groups concurrently inside a window of this width,
// because no message, match, or completion can cross nodes faster:
//
//   - eager:      nicArrival >= T_send + o_send(src) + WireLatency
//   - rendezvous: rts        >= T_send + o_send(src) + WireLatency, and the
//     sender-completion computed at match time is >= rts + WireLatency (CTS)
//     or >= T_match + o_recv(dst) + WireLatency for an unexpected match —
//     and o_recv equals o_send on this fabric.
//
// Intra-node transfers skip the fabric entirely, which is why the partition
// feeding the parallel kernel must keep each node's ranks in one group.
func (n *Network) CrossLookahead() vclock.Time {
	min := vclock.Never
	for _, node := range n.sys.Nodes() {
		if o := sendOverhead(node.Spec); o < min {
			min = o
		}
	}
	if min == vclock.Never {
		return 0
	}
	return n.cfg.WireLatency + min
}

// Link determinism: reservations are booked at the modelled instant they
// happen on the hardware — injection at send/issue time in the sender's
// program order, ejection at receive-completion time in the receiver's
// program order — and the execution kernel schedules those program points in
// virtual-time order, one task at a time. Determinism is therefore by
// construction; the per-link ownership protocol that used to enforce it
// under free-running rank goroutines is gone. See DESIGN.md decision 1.

// EagerSend models the sender side of an eager transfer of size bytes that
// becomes ready (sender CPU available) at ready. It returns:
//
//	senderFree — when the sending CPU may continue (eager sends are buffered)
//	nicArrival — when the full message is available at the destination NIC,
//	             before ejection-link serialisation (EagerEject, receiver side)
func (n *Network) EagerSend(src, dst *machine.Node, size int, ready vclock.Time) (senderFree, nicArrival vclock.Time) {
	if size < 0 {
		panic(fmt.Sprintf("fabric: negative size %d", size))
	}
	if !n.Eager(size) {
		panic(fmt.Sprintf("fabric: EagerSend size %d above threshold %d", size, n.cfg.EagerThreshold))
	}
	copyIn := vclock.Time(float64(size) / (src.Spec.CopyGBs() * 1e9))
	senderFree = ready + sendOverhead(src.Spec) + copyIn
	if src.ID == dst.ID {
		// Shared-memory path: no links, receiver copy costed at match time.
		return senderFree, senderFree
	}
	wireTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * 1e9))
	_, injEnd := n.inject[src.ID].Reserve(senderFree, wireTime)
	nicArrival = injEnd + n.cfg.WireLatency
	return senderFree, nicArrival
}

// EagerEject serialises an eager message on the destination's ejection link
// and returns the effective arrival. Called at receive-completion time.
// Intra-node messages skip it.
func (n *Network) EagerEject(dst *machine.Node, size int, nicArrival vclock.Time) vclock.Time {
	wireTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * 1e9))
	_, ejEnd := n.eject[dst.ID].Reserve(nicArrival-wireTime, wireTime)
	return vclock.Max(nicArrival, ejEnd)
}

// EagerRecvCost is the receiver-side CPU cost to complete an eager message of
// the given size: match overhead plus copy-out at the receiver's CPU rate.
func (n *Network) EagerRecvCost(dst *machine.Node, size int) vclock.Time {
	copyOut := vclock.Time(float64(size) / (dst.Spec.CopyGBs() * 1e9))
	return recvOverhead(dst.Spec) + copyOut
}

// Rendezvous (RTS/CTS + RDMA) transfers are timed in three phases because
// the hardware books its resources at three distinct moments — not as a
// concurrency protocol:
//
//	RendezvousIssue — at issue time: posts the RTS and books the injection
//	                  link at its earliest slot (the NIC queues the DMA
//	                  descriptor when the send is issued).
//	RendezvousMatch — at match time: pure arithmetic over the envelope,
//	                  yields the sender-completion (DMA done, buffer
//	                  reusable).
//	RendezvousEject — at receive-completion time: books the ejection link
//	                  and yields the effective arrival.
//
// The combined Rendezvous below chains all three for single-caller contexts
// (buddy checkpoint copies, microbenchmarks, tests).

// RendezvousIssue books the sender's injection link for the DMA at its
// earliest possible slot (receiver already posted — the overlap-optimised
// common case; a late receiver only shifts the transfer via RendezvousMatch).
// It returns the RTS arrival time at the receiver's NIC and the booked
// injection end. Called at send-issue time.
func (n *Network) RendezvousIssue(src, dst *machine.Node, size int, senderReady vclock.Time) (rts, injEnd vclock.Time) {
	if size < 0 {
		panic(fmt.Sprintf("fabric: negative size %d", size))
	}
	if src.ID == dst.ID {
		// Shared memory: no links; rts is when the sending CPU is ready.
		return senderReady + sendOverhead(src.Spec), 0
	}
	rts = senderReady + sendOverhead(src.Spec) + n.cfg.WireLatency
	dmaTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * n.cfg.RDMAEfficiency * 1e9))
	earliest := rts + n.cfg.WireLatency + n.cfg.RDMASetup // receive already posted: CTS turnaround + descriptor
	_, injEnd = n.inject[src.ID].Reserve(earliest, dmaTime)
	return rts, injEnd
}

// RendezvousMatch computes when the sender's transfer completes (DMA done,
// buffer reusable) for a message issued at (rts, injEnd) and matched by a
// receive posted at recvPosted. Pure arithmetic over the arguments.
func (n *Network) RendezvousMatch(src, dst *machine.Node, size int, rts, injEnd, recvPosted vclock.Time) (senderDone vclock.Time) {
	if src.ID == dst.ID {
		// Shared memory: single copy by the source CPU once both are ready.
		meet := vclock.Max(rts, recvPosted)
		return meet + vclock.Time(float64(size)/(src.Spec.CopyGBs()*1e9))
	}
	// Transfer may start only after the receive is posted; CTS travels back;
	// then RDMA streams the payload (no earlier than the booked link slot).
	meet := vclock.Max(rts, recvPosted+recvOverhead(dst.Spec))
	dmaReady := meet + n.cfg.WireLatency + n.cfg.RDMASetup
	dmaTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * n.cfg.RDMAEfficiency * 1e9))
	return vclock.Max(injEnd, dmaReady+dmaTime)
}

// RendezvousEject serialises the transfer on the receiver's ejection link
// and returns the effective arrival. Called at receive-completion time.
// Intra-node transfers skip it.
func (n *Network) RendezvousEject(dst *machine.Node, size int, senderDone vclock.Time) vclock.Time {
	dmaTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * n.cfg.RDMAEfficiency * 1e9))
	_, ejEnd := n.eject[dst.ID].Reserve(senderDone+n.cfg.WireLatency-dmaTime, dmaTime)
	return vclock.Max(senderDone+n.cfg.WireLatency, ejEnd)
}

// Rendezvous models a whole rendezvous transfer in one call (single-caller
// contexts: buddy copies, microbenchmarks).
//
//	senderReady — sender CPU time when the send is issued
//	recvPosted  — receiver CPU time when the matching receive was posted
//
// Returns when the sender's transfer completes (DMA done, buffer reusable)
// and when the data has fully arrived at the receiver.
func (n *Network) Rendezvous(src, dst *machine.Node, size int, senderReady, recvPosted vclock.Time) (senderDone, arrival vclock.Time) {
	rts, injEnd := n.RendezvousIssue(src, dst, size, senderReady)
	senderDone = n.RendezvousMatch(src, dst, size, rts, injEnd, recvPosted)
	if src.ID == dst.ID {
		return senderDone, senderDone
	}
	arrival = n.RendezvousEject(dst, size, senderDone)
	return senderDone, arrival
}

// RDMARead models a one-sided read of size bytes from a remote memory region
// (used by the network-attached memory, which has no CPU at all on the remote
// side). It returns the completion time at the initiator.
func (n *Network) RDMARead(initiator *machine.Node, remote int, size int, ready vclock.Time) vclock.Time {
	dmaTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * n.cfg.RDMAEfficiency * 1e9))
	req := ready + n.cfg.RDMASetup + n.cfg.WireLatency // request reaches remote NIC
	_, injEnd := n.linkOf(n.inject, remote).Reserve(req, dmaTime)
	return injEnd + n.cfg.WireLatency
}

// RDMAWrite models a one-sided write of size bytes into a remote memory
// region. It returns the completion (ack received) time at the initiator.
func (n *Network) RDMAWrite(initiator *machine.Node, remote int, size int, ready vclock.Time) vclock.Time {
	dmaTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * n.cfg.RDMAEfficiency * 1e9))
	_, injEnd := n.inject[initiator.ID].Reserve(ready+n.cfg.RDMASetup, dmaTime)
	return injEnd + 2*n.cfg.WireLatency // data out + ack back
}

// linkOf returns the shared link clock for an endpoint id, tolerating ids
// beyond the node range (used for fabric-attached devices like the NAM,
// which register extra endpoints via AttachEndpoint).
func (n *Network) linkOf(set []*vclock.SharedClock, id int) *vclock.SharedClock {
	return set[id]
}

// AttachEndpoint registers an additional fabric endpoint (e.g. a NAM device
// or a storage server NIC) and returns its endpoint id, usable as the remote
// id of RDMA operations.
func (n *Network) AttachEndpoint() int {
	id := len(n.inject)
	n.inject = append(n.inject, vclock.NewSharedClock(0))
	n.eject = append(n.eject, vclock.NewSharedClock(0))
	return id
}

// PingPongTime returns the modelled half-round-trip time ("latency" in Fig. 3
// terms) for a message of the given size between two nodes, assuming both
// processes are ready and the fabric is otherwise idle — the textbook
// ping-pong benchmark situation. Unlike EagerSend/Rendezvous it does not
// occupy any links, so it can be used as a pure model probe.
func (n *Network) PingPongTime(src, dst *machine.Node, size int) vclock.Time {
	if n.Eager(size) {
		copyIn := vclock.Time(float64(size) / (src.Spec.CopyGBs() * 1e9))
		senderFree := sendOverhead(src.Spec) + copyIn
		arrival := senderFree
		if src.ID != dst.ID {
			wireTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * 1e9))
			arrival = senderFree + wireTime + n.cfg.WireLatency
		}
		return arrival + n.EagerRecvCost(dst, size)
	}
	dmaTime := vclock.Time(float64(size) / (n.cfg.LinkGBs * n.cfg.RDMAEfficiency * 1e9))
	if src.ID == dst.ID {
		return sendOverhead(src.Spec) + vclock.Time(float64(size)/(src.Spec.CopyGBs()*1e9)) + recvOverhead(dst.Spec)
	}
	rts := sendOverhead(src.Spec) + n.cfg.WireLatency
	cts := vclock.Max(rts, recvOverhead(dst.Spec)) + n.cfg.WireLatency
	arrival := cts + n.cfg.RDMASetup + dmaTime + n.cfg.WireLatency
	return arrival + recvOverhead(dst.Spec)
}

// Bandwidth returns the modelled sustained point-to-point bandwidth in
// bytes/s for back-to-back messages of the given size (Fig. 3, upper panel).
func (n *Network) Bandwidth(src, dst *machine.Node, size int) float64 {
	t := n.PingPongTime(src, dst, size)
	if t <= 0 {
		return 0
	}
	return float64(size) / t.Seconds()
}
