package sion

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

func testBackend() (Backend, *machine.System) {
	sys := machine.New(4, 4)
	net := fabric.New(sys, fabric.Config{})
	return beegfs.New(net, beegfs.Config{}), sys
}

func TestRoundTripSingleTask(t *testing.T) {
	b, sys := testBackend()
	n := sys.Node(0)
	w, _, err := Create(b, "/c.sion", 1, 4096, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("moment data "), 100)
	if _, err := w.WriteTask(0, payload, n, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(n, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenRead(b, "/c.sion", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := r.ReadTask(0, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip differs: %d vs %d bytes", len(got), len(payload))
	}
}

func TestRoundTripManyTasks(t *testing.T) {
	// The concentration property: 16 task streams, one physical file.
	b, sys := testBackend()
	n := sys.Node(0)
	const ntasks = 16
	w, _, err := Create(b, "/many.sion", ntasks, 1024, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, ntasks)
	for task := 0; task < ntasks; task++ {
		payloads[task] = bytes.Repeat([]byte{byte('A' + task)}, 300+200*task)
		node := sys.Node(task % len(sys.Nodes()))
		if _, err := w.WriteTask(task, payloads[task], node, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Close(n, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenRead(b, "/many.sion", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.NTasks() != ntasks {
		t.Fatalf("ntasks = %d", r.NTasks())
	}
	for task := 0; task < ntasks; task++ {
		got, _, err := r.ReadTask(task, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[task]) {
			t.Fatalf("task %d data corrupted", task)
		}
		if r.TaskSize(task) != int64(len(payloads[task])) {
			t.Fatalf("task %d size = %d", task, r.TaskSize(task))
		}
	}
}

func TestMultiBlockStream(t *testing.T) {
	// A stream spanning several blocks (block chaining).
	b, sys := testBackend()
	n := sys.Node(0)
	w, _, _ := Create(b, "/blk.sion", 2, 128, n, 0)
	long := bytes.Repeat([]byte("0123456789abcdef"), 100) // 1600 B over 128 B blocks
	for i := 0; i < 4; i++ {
		if _, err := w.WriteTask(1, long[i*400:(i+1)*400], n, 0); err != nil {
			t.Fatal(err)
		}
	}
	w.WriteTask(0, []byte("tiny"), n, 0)
	if _, err := w.Close(n, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenRead(b, "/blk.sion", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := r.ReadTask(1, n, 0)
	if !bytes.Equal(got, long) {
		t.Fatal("chained blocks corrupted")
	}
	got0, _, _ := r.ReadTask(0, n, 0)
	if string(got0) != "tiny" {
		t.Fatalf("task 0 = %q", got0)
	}
}

func TestEmptyTasksAllowed(t *testing.T) {
	b, sys := testBackend()
	n := sys.Node(0)
	w, _, _ := Create(b, "/empty.sion", 4, 512, n, 0)
	w.WriteTask(2, []byte("only me"), n, 0)
	if _, err := w.Close(n, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenRead(b, "/empty.sion", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []int{0, 1, 3} {
		if r.TaskSize(task) != 0 {
			t.Errorf("task %d not empty", task)
		}
		got, _, err := r.ReadTask(task, n, 0)
		if err != nil || len(got) != 0 {
			t.Errorf("task %d read = %v, %v", task, got, err)
		}
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	b, sys := testBackend()
	n := sys.Node(0)
	w, _, _ := Create(b, "/x.sion", 1, 512, n, 0)
	w.Close(n, 0)
	if _, err := w.WriteTask(0, []byte("late"), n, 0); err == nil {
		t.Fatal("write after close succeeded")
	}
	if _, err := w.Close(n, 0); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestInvalidGeometry(t *testing.T) {
	b, sys := testBackend()
	n := sys.Node(0)
	if _, _, err := Create(b, "/bad", 0, 512, n, 0); err == nil {
		t.Fatal("0 tasks accepted")
	}
	if _, _, err := Create(b, "/bad", 1, 0, n, 0); err == nil {
		t.Fatal("0 block size accepted")
	}
}

func TestOpenReadRejectsGarbage(t *testing.T) {
	b, sys := testBackend()
	n := sys.Node(0)
	fs := b.(*beegfs.FS)
	fs.Create("/garbage", n, 0)
	fs.Write("/garbage", 0, bytes.Repeat([]byte{7}, 128), n, 0)
	if _, _, err := OpenRead(b, "/garbage", n, 0); err == nil {
		t.Fatal("garbage accepted as container")
	}
}

func TestTaskOutOfRange(t *testing.T) {
	b, sys := testBackend()
	n := sys.Node(0)
	w, _, _ := Create(b, "/r.sion", 2, 512, n, 0)
	if _, err := w.WriteTask(2, []byte("x"), n, 0); err == nil {
		t.Fatal("out-of-range task accepted")
	}
	w.Close(n, 0)
	r, _, _ := OpenRead(b, "/r.sion", n, 0)
	if _, _, err := r.ReadTask(5, n, 0); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestDeviceBackendRoundTrip(t *testing.T) {
	sys := machine.New(1, 0)
	dev := nvme.New(nvme.P3700())
	d := NewDeviceBackend(dev)
	n := sys.Node(0)
	w, _, err := Create(d, "/local.sion", 2, 256, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteTask(0, []byte("local checkpoint"), n, 0)
	w.WriteTask(1, bytes.Repeat([]byte("B"), 700), n, 0)
	if _, err := w.Close(n, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := OpenRead(d, "/local.sion", n, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := r.ReadTask(0, n, 0)
	if string(got) != "local checkpoint" {
		t.Fatalf("got %q", got)
	}
	if dev.Used() == 0 {
		t.Error("device backend did not account capacity")
	}
}

func TestBuddyCopy(t *testing.T) {
	sys := machine.New(2, 0)
	net := fabric.New(sys, fabric.Config{})
	buddyDev := nvme.New(nvme.P3700())
	data := bytes.Repeat([]byte("ckpt"), 1<<20)
	done, err := Buddy(net, sys.Node(0), sys.Node(1), buddyDev, "ckpt/rank0/step5", data, vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done <= vclock.Second {
		t.Error("buddy copy free of charge")
	}
	if !buddyDev.Has("ckpt/rank0/step5") {
		t.Error("buddy device does not hold the copy")
	}
	if _, err := Buddy(net, sys.Node(0), sys.Node(0), buddyDev, "x", data, 0); err == nil {
		t.Error("self-buddy accepted")
	}
}

func TestConcentrationTimingBeatsFilePerTask(t *testing.T) {
	// The reason SIONlib exists: N tasks writing one container cost far
	// fewer metadata operations than N files. Compare virtual times.
	const ntasks = 32
	payload := bytes.Repeat([]byte("x"), 4096)

	bc, sysC := testBackend()
	n := sysC.Node(0)
	w, _, _ := Create(bc, "/one.sion", ntasks, 4096, n, 0)
	var tSion vclock.Time
	for task := 0; task < ntasks; task++ {
		done, err := w.WriteTask(task, payload, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		tSion = vclock.Max(tSion, done)
	}
	done, _ := w.Close(n, tSion)
	tSion = done

	bp, sysP := testBackend()
	np := sysP.Node(0)
	fs := bp.(*beegfs.FS)
	var tFiles vclock.Time
	for task := 0; task < ntasks; task++ {
		path := fmt.Sprintf("/task-%d.out", task)
		created := fs.Create(path, np, 0)
		wdone, err := fs.Write(path, 0, payload, np, created)
		if err != nil {
			t.Fatal(err)
		}
		tFiles = vclock.Max(tFiles, wdone)
	}
	if tSion >= tFiles {
		t.Errorf("container (%v) not faster than file-per-task (%v)", tSion, tFiles)
	}
}

func TestQuickContainerRoundTrip(t *testing.T) {
	// Property: arbitrary per-task payloads survive the container format.
	b, sys := testBackend()
	n := sys.Node(0)
	counter := 0
	f := func(a, b2, c []byte) bool {
		counter++
		path := fmt.Sprintf("/q%d.sion", counter)
		w, _, err := Create(b, path, 3, 64, n, 0)
		if err != nil {
			return false
		}
		ins := [][]byte{a, b2, c}
		for task, data := range ins {
			if _, err := w.WriteTask(task, data, n, 0); err != nil {
				return false
			}
		}
		if _, err := w.Close(n, 0); err != nil {
			return false
		}
		r, _, err := OpenRead(b, path, n, 0)
		if err != nil {
			return false
		}
		for task, want := range ins {
			got, _, err := r.ReadTask(task, n, 0)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
