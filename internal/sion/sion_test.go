package sion

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

func testBackend() (Backend, *machine.System) {
	sys := machine.New(4, 4)
	net := fabric.New(sys, fabric.Config{})
	return beegfs.New(net, beegfs.Config{}), sys
}

func TestRoundTripSingleTask(t *testing.T) {
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	w, err := Create(a, b, "/c.sion", 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("moment data "), 100)
	if err := w.WriteTask(a, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(a); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(a, b, "/c.sion")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadTask(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip differs: %d vs %d bytes", len(got), len(payload))
	}
}

func TestRoundTripManyTasks(t *testing.T) {
	// The concentration property: 16 task streams, one physical file.
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	const ntasks = 16
	w, err := Create(a, b, "/many.sion", ntasks, 1024)
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, ntasks)
	for task := 0; task < ntasks; task++ {
		payloads[task] = bytes.Repeat([]byte{byte('A' + task)}, 300+200*task)
		node := sys.Node(task % len(sys.Nodes()))
		actor := ioev.Detach(node, 0)
		if err := w.WriteTask(actor, task, payloads[task]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(a); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(a, b, "/many.sion")
	if err != nil {
		t.Fatal(err)
	}
	if r.NTasks() != ntasks {
		t.Fatalf("ntasks = %d", r.NTasks())
	}
	for task := 0; task < ntasks; task++ {
		got, err := r.ReadTask(a, task)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[task]) {
			t.Fatalf("task %d data corrupted", task)
		}
		if r.TaskSize(task) != int64(len(payloads[task])) {
			t.Fatalf("task %d size = %d", task, r.TaskSize(task))
		}
	}
}

func TestMultiBlockStream(t *testing.T) {
	// A stream spanning several blocks (block chaining).
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	w, _ := Create(a, b, "/blk.sion", 2, 128)
	long := bytes.Repeat([]byte("0123456789abcdef"), 100) // 1600 B over 128 B blocks
	for i := 0; i < 4; i++ {
		if err := w.WriteTask(a, 1, long[i*400:(i+1)*400]); err != nil {
			t.Fatal(err)
		}
	}
	w.WriteTask(a, 0, []byte("tiny"))
	if err := w.Close(a); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(a, b, "/blk.sion")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.ReadTask(a, 1)
	if !bytes.Equal(got, long) {
		t.Fatal("chained blocks corrupted")
	}
	got0, _ := r.ReadTask(a, 0)
	if string(got0) != "tiny" {
		t.Fatalf("task 0 = %q", got0)
	}
}

func TestEmptyTasksAllowed(t *testing.T) {
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	w, _ := Create(a, b, "/empty.sion", 4, 512)
	w.WriteTask(a, 2, []byte("only me"))
	if err := w.Close(a); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(a, b, "/empty.sion")
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []int{0, 1, 3} {
		if r.TaskSize(task) != 0 {
			t.Errorf("task %d not empty", task)
		}
		got, err := r.ReadTask(a, task)
		if err != nil || len(got) != 0 {
			t.Errorf("task %d read = %v, %v", task, got, err)
		}
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	w, _ := Create(a, b, "/x.sion", 1, 512)
	w.Close(a)
	if err := w.WriteTask(a, 0, []byte("late")); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := w.Close(a); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestInvalidGeometry(t *testing.T) {
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	if _, err := Create(a, b, "/bad", 0, 512); err == nil {
		t.Fatal("0 tasks accepted")
	}
	if _, err := Create(a, b, "/bad", 1, 0); err == nil {
		t.Fatal("0 block size accepted")
	}
}

func TestOpenReadRejectsGarbage(t *testing.T) {
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	fs := b.(*beegfs.FS)
	fs.Create(a, "/garbage")
	fs.Write(a, "/garbage", 0, bytes.Repeat([]byte{7}, 128))
	if _, err := OpenRead(a, b, "/garbage"); err == nil {
		t.Fatal("garbage accepted as container")
	}
}

func TestTaskOutOfRange(t *testing.T) {
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	w, _ := Create(a, b, "/r.sion", 2, 512)
	if err := w.WriteTask(a, 2, []byte("x")); err == nil {
		t.Fatal("out-of-range task accepted")
	}
	w.Close(a)
	r, _ := OpenRead(a, b, "/r.sion")
	if _, err := r.ReadTask(a, 5); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

func TestDeviceBackendRoundTrip(t *testing.T) {
	sys := machine.New(1, 0)
	dev := nvme.New(nvme.P3700())
	d := NewDeviceBackend(dev)
	a := ioev.Detach(sys.Node(0), 0)
	w, err := Create(a, d, "/local.sion", 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteTask(a, 0, []byte("local checkpoint"))
	w.WriteTask(a, 1, bytes.Repeat([]byte("B"), 700))
	if err := w.Close(a); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRead(a, d, "/local.sion")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.ReadTask(a, 0)
	if string(got) != "local checkpoint" {
		t.Fatalf("got %q", got)
	}
	if dev.Used() == 0 {
		t.Error("device backend did not account capacity")
	}
}

func TestBuddyCopy(t *testing.T) {
	sys := machine.New(2, 0)
	net := fabric.New(sys, fabric.Config{})
	buddyDev := nvme.New(nvme.P3700())
	data := bytes.Repeat([]byte("ckpt"), 1<<20)
	a := ioev.Detach(sys.Node(0), vclock.Second)
	if err := Buddy(a, net, sys.Node(1), buddyDev, "ckpt/rank0/step5", data); err != nil {
		t.Fatal(err)
	}
	if a.Now() <= vclock.Second {
		t.Error("buddy copy free of charge")
	}
	if !buddyDev.Has("ckpt/rank0/step5") {
		t.Error("buddy device does not hold the copy")
	}
	if err := Buddy(a, net, sys.Node(0), buddyDev, "x", data); err == nil {
		t.Error("self-buddy accepted")
	}
}

func TestConcentrationTimingBeatsFilePerTask(t *testing.T) {
	// The reason SIONlib exists: N tasks writing one container cost far
	// fewer metadata operations than N files. Compare virtual times. Both
	// sides submit everything at instant 0 so queueing, not actor clocks,
	// sets the finish line.
	const ntasks = 32
	payload := bytes.Repeat([]byte("x"), 4096)

	bc, sysC := testBackend()
	n := sysC.Node(0)
	w, _, _ := SubmitCreate(bc, "/one.sion", ntasks, 4096, n, ioev.At(0))
	var tSion vclock.Time
	for task := 0; task < ntasks; task++ {
		done, err := w.SubmitWriteTask(ioev.At(0), task, payload, n)
		if err != nil {
			t.Fatal(err)
		}
		tSion = vclock.Max(tSion, done.Time())
	}
	closed, _ := w.SubmitClose(ioev.At(tSion), n)
	tSion = closed.Time()

	bp, sysP := testBackend()
	np := sysP.Node(0)
	fs := bp.(*beegfs.FS)
	var tFiles vclock.Time
	for task := 0; task < ntasks; task++ {
		path := fmt.Sprintf("/task-%d.out", task)
		created := fs.SubmitCreate(ioev.At(0), path, np)
		wdone, err := fs.SubmitWrite(created, path, 0, payload, np)
		if err != nil {
			t.Fatal(err)
		}
		tFiles = vclock.Max(tFiles, wdone.Time())
	}
	if tSion >= tFiles {
		t.Errorf("container (%v) not faster than file-per-task (%v)", tSion, tFiles)
	}
}

func TestQuickContainerRoundTrip(t *testing.T) {
	// Property: arbitrary per-task payloads survive the container format.
	b, sys := testBackend()
	a := ioev.Detach(sys.Node(0), 0)
	counter := 0
	f := func(x, y, z []byte) bool {
		counter++
		path := fmt.Sprintf("/q%d.sion", counter)
		w, err := Create(a, b, path, 3, 64)
		if err != nil {
			return false
		}
		ins := [][]byte{x, y, z}
		for task, data := range ins {
			if err := w.WriteTask(a, task, data); err != nil {
				return false
			}
		}
		if err := w.Close(a); err != nil {
			return false
		}
		r, err := OpenRead(a, b, path)
		if err != nil {
			return false
		}
		for task, want := range ins {
			got, err := r.ReadTask(a, task)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
