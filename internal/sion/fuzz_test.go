package sion

import (
	"bytes"
	"encoding/binary"
	"testing"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
)

// FuzzSIONRoundTrip writes N task streams into a container, seals it, and
// re-opens it: every stream must come back byte-for-byte. The geometry
// (task count, block size) fuzzes alongside the payloads so block chaining,
// partial blocks and empty streams are all on the path.
func FuzzSIONRoundTrip(f *testing.F) {
	f.Add([]byte("alpha"), []byte(""), []byte("gamma-stream"), uint16(64))
	f.Add([]byte{0}, bytes.Repeat([]byte{0xFF}, 500), []byte("z"), uint16(17))
	f.Add(bytes.Repeat([]byte("block"), 200), []byte("b"), []byte("c"), uint16(128))
	f.Fuzz(func(t *testing.T, p0, p1, p2 []byte, bs uint16) {
		blockSize := int64(bs%1024) + 1
		sys := machine.New(1, 0)
		net := fabric.New(sys, fabric.Config{})
		b := beegfs.New(net, beegfs.Config{})
		a := ioev.Detach(sys.Node(0), 0)

		w, err := Create(a, b, "/fuzz.sion", 3, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		payloads := [][]byte{p0, p1, p2}
		for task, data := range payloads {
			if err := w.WriteTask(a, task, data); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(a); err != nil {
			t.Fatal(err)
		}
		r, err := OpenRead(a, b, "/fuzz.sion")
		if err != nil {
			t.Fatalf("reopening own container: %v", err)
		}
		for task, want := range payloads {
			if got := r.TaskSize(task); got != int64(len(want)) {
				t.Fatalf("task %d size = %d, want %d", task, got, len(want))
			}
			got, err := r.ReadTask(a, task)
			if err != nil {
				t.Fatalf("task %d read: %v", task, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("task %d: %d bytes differ from %d written", task, len(got), len(want))
			}
		}
	})
}

// fuzzContainerBytes builds a small valid container and returns its raw
// on-disk bytes — the interesting seed for header/table mutation.
func fuzzContainerBytes(f *testing.F) []byte {
	f.Helper()
	sys := machine.New(1, 0)
	net := fabric.New(sys, fabric.Config{})
	b := beegfs.New(net, beegfs.Config{})
	a := ioev.Detach(sys.Node(0), 0)
	w, err := Create(a, b, "/seed.sion", 2, 32)
	if err != nil {
		f.Fatal(err)
	}
	w.WriteTask(a, 0, []byte("seed stream zero"))
	w.WriteTask(a, 1, bytes.Repeat([]byte("x"), 70))
	if err := w.Close(a); err != nil {
		f.Fatal(err)
	}
	size, _ := b.Size("/seed.sion")
	raw, err := b.Read(a, "/seed.sion", 0, size)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzSIONOpenRead feeds arbitrary bytes to the container parser: OpenRead
// must reject malformed headers and block tables with an error — never a
// panic — and anything it accepts must serve every task read without
// panicking.
func FuzzSIONOpenRead(f *testing.F) {
	valid := fuzzContainerBytes(f)
	f.Add(valid)
	f.Add(valid[:headerSize-1]) // truncated header
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{7}, 128)) // garbage, wrong magic

	badMagic := append([]byte(nil), valid...)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)

	hugeTasks := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hugeTasks[8:], 1<<40) // ntasks overflow
	f.Add(hugeTasks)

	wildTable := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(wildTable[24:], 1<<50) // tableOff past EOF
	f.Add(wildTable)

	f.Fuzz(func(t *testing.T, raw []byte) {
		sys := machine.New(1, 0)
		net := fabric.New(sys, fabric.Config{})
		b := beegfs.New(net, beegfs.Config{})
		a := ioev.Detach(sys.Node(0), 0)
		b.Create(a, "/in.sion")
		if len(raw) > 0 {
			if err := b.Write(a, "/in.sion", 0, raw); err != nil {
				t.Skip() // over FS capacity: not a parser input
			}
		}
		r, err := OpenRead(a, b, "/in.sion")
		if err != nil {
			return // rejected cleanly — the required behaviour for bad input
		}
		for task := 0; task < r.NTasks(); task++ {
			if _, err := r.ReadTask(a, task); err != nil {
				return
			}
		}
	})
}
