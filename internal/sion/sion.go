// Package sion reproduces the role of SIONlib in the DEEP-ER software stack
// (§III-C of the paper): a concentration layer that lets thousands of tasks
// perform task-local I/O while the parallel file system only ever sees one
// (or a few) large, block-aligned container files.
//
// The container format is real: a binary header, a data region of fixed-size
// blocks handed out to task streams as they grow, and a block table appended
// at close, with the header patched to point at it. Containers written here
// are parsed back by OpenRead and verified byte-for-byte in tests; malformed
// containers are rejected with errors, never panics (see the fuzz targets).
//
// SIONlib also bridges I/O and resiliency in DEEP-ER: the Buddy helper copies
// a task's checkpoint into the NVMe of a companion node (buddy
// checkpointing), which package scr builds on.
//
// All container I/O is timed through kernel events: the Proc forms
// (WriteTask, Close, OpenRead, ReadTask) park the calling rank until the
// operation is durable, and the Submit* forms thread an ioev.Op dependency
// without parking so composed paths (SCR overlapping a container write with
// a buddy copy) join several completions before one park. The Writer holds
// no mutex: under the cooperative kernel exactly one rank runs at a time
// and every method — including the shared-container WriteTask fan-in —
// executes entirely within the calling rank's turn, the same serialisation
// argument as scr.
package sion

import (
	"encoding/binary"
	"fmt"

	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Backend abstracts the file system a container lives on, in submission
// form: operations are issued against an ioev.Op dependency and return a
// completion token without parking. *beegfs.FS satisfies it; DeviceBackend
// adapts a node-local NVMe device.
type Backend interface {
	SubmitCreate(dep ioev.Op, path string, node *machine.Node) ioev.Op
	SubmitWrite(dep ioev.Op, path string, offset int64, data []byte, node *machine.Node) (ioev.Op, error)
	SubmitRead(dep ioev.Op, path string, offset, size int64, node *machine.Node) ([]byte, ioev.Op, error)
	Size(path string) (int64, error)
}

const (
	magic      = uint32(0x53494f4e) // "SION"
	version    = uint32(2)
	headerSize = int64(64)

	// maxTasks bounds the task count OpenRead accepts: far above any real
	// container here, small enough that a hostile header cannot coerce a
	// huge allocation.
	maxTasks = 1 << 20
)

// Writer is an open container being written by ntasks task-local streams.
type Writer struct {
	backend   Backend
	path      string
	ntasks    int
	blockSize int64

	nextOff int64     // next free block offset
	blocks  [][]block // per task: ordered block list
	buf     [][]byte  // per task: current partial block
	flushed []vclock.Time
	closed  bool
}

type block struct {
	Off  int64
	Used int64
}

// Create starts a new container for ntasks streams with the given block
// size (the alignment unit; SIONlib aligns to file-system blocks), parking
// the caller for the backend's create.
func Create(p ioev.Proc, b Backend, path string, ntasks int, blockSize int64) (*Writer, error) {
	w, op, err := SubmitCreate(b, path, ntasks, blockSize, p.Node(), ioev.Start(p))
	if err != nil {
		return nil, err
	}
	ioev.Await(p, op)
	return w, nil
}

// SubmitCreate issues the container create after dep without parking,
// returning the writer and the metadata completion token.
func SubmitCreate(b Backend, path string, ntasks int, blockSize int64, node *machine.Node, dep ioev.Op) (*Writer, ioev.Op, error) {
	if ntasks <= 0 || blockSize <= 0 {
		return nil, ioev.Op{}, fmt.Errorf("sion: invalid container geometry (%d tasks, %d block)", ntasks, blockSize)
	}
	done := b.SubmitCreate(dep, path, node)
	w := &Writer{
		backend:   b,
		path:      path,
		ntasks:    ntasks,
		blockSize: blockSize,
		nextOff:   headerSize,
		blocks:    make([][]block, ntasks),
		buf:       make([][]byte, ntasks),
		flushed:   make([]vclock.Time, ntasks),
	}
	return w, done, nil
}

// NTasks returns the number of task streams.
func (w *Writer) NTasks() int { return w.ntasks }

// WriteTask appends data to one task's logical stream, flushing full blocks
// to the backend and parking the caller until the flushes it issued are
// durable (a fully buffered append costs only the scheduling point).
func (w *Writer) WriteTask(p ioev.Proc, task int, data []byte) error {
	op, err := w.SubmitWriteTask(ioev.Start(p), task, data, p.Node())
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitWriteTask appends to one task's stream after dep without parking:
// every full block flushes concurrently from the dependency instant, and
// the returned token joins the flushes this call issued (dep itself if the
// append stayed buffered).
func (w *Writer) SubmitWriteTask(dep ioev.Op, task int, data []byte, node *machine.Node) (ioev.Op, error) {
	if task < 0 || task >= w.ntasks {
		return ioev.Op{}, fmt.Errorf("sion: task %d out of range [0,%d)", task, w.ntasks)
	}
	if w.closed {
		return ioev.Op{}, fmt.Errorf("sion: write to closed container %s", w.path)
	}
	w.buf[task] = append(w.buf[task], data...)
	done := dep
	for int64(len(w.buf[task])) >= w.blockSize {
		blk := append([]byte(nil), w.buf[task][:w.blockSize]...)
		w.buf[task] = w.buf[task][w.blockSize:]
		off := w.nextOff
		w.nextOff += w.blockSize
		w.blocks[task] = append(w.blocks[task], block{Off: off, Used: w.blockSize})
		t, err := w.backend.SubmitWrite(dep, w.path, off, blk, node)
		if err != nil {
			return ioev.Op{}, fmt.Errorf("sion: flush task %d: %w", task, err)
		}
		ioev.AddContainerBytes(w.blockSize)
		done = ioev.After(done, t)
	}
	w.flushed[task] = vclock.Max(w.flushed[task], done.Time())
	return done, nil
}

// Close flushes all partial blocks, writes the block table and patches the
// header, parking the caller until the container is complete. It is called
// once by the I/O root task after a barrier, so the caller's clock already
// covers the other tasks' writes (any straggling flush is joined anyway).
func (w *Writer) Close(p ioev.Proc) error {
	op, err := w.SubmitClose(ioev.Start(p), p.Node())
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitClose seals the container after dep without parking: partial blocks
// flush concurrently from the join of dep and every stream's last flush,
// then the block table and patched header commit sequentially. The returned
// token is the whole container's completion.
func (w *Writer) SubmitClose(dep ioev.Op, node *machine.Node) (ioev.Op, error) {
	if w.closed {
		return ioev.Op{}, fmt.Errorf("sion: double close of %s", w.path)
	}
	w.closed = true
	type pend struct {
		off  int64
		data []byte
	}
	var flushes []pend
	for task := 0; task < w.ntasks; task++ {
		if len(w.buf[task]) == 0 {
			continue
		}
		data := w.buf[task]
		w.buf[task] = nil
		off := w.nextOff
		w.nextOff += w.blockSize // full block reserved: alignment
		w.blocks[task] = append(w.blocks[task], block{Off: off, Used: int64(len(data))})
		flushes = append(flushes, pend{off: off, data: data})
	}
	tableOff := w.nextOff
	table := w.encodeTable()
	header := w.encodeHeader(tableOff)
	for _, t := range w.flushed {
		dep = ioev.After(dep, ioev.At(t))
	}

	done := dep
	for _, f := range flushes {
		t, err := w.backend.SubmitWrite(dep, w.path, f.off, f.data, node)
		if err != nil {
			return ioev.Op{}, fmt.Errorf("sion: close flush: %w", err)
		}
		ioev.AddContainerBytes(int64(len(f.data)))
		done = ioev.After(done, t)
	}
	t, err := w.backend.SubmitWrite(done, w.path, tableOff, table, node)
	if err != nil {
		return ioev.Op{}, fmt.Errorf("sion: block table: %w", err)
	}
	done = ioev.After(done, t)
	t, err = w.backend.SubmitWrite(done, w.path, 0, header, node)
	if err != nil {
		return ioev.Op{}, fmt.Errorf("sion: header: %w", err)
	}
	ioev.AddContainerBytes(int64(len(table)) + headerSize)
	return ioev.After(done, t), nil
}

func (w *Writer) encodeHeader(tableOff int64) []byte {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], version)
	binary.LittleEndian.PutUint64(h[8:], uint64(w.ntasks))
	binary.LittleEndian.PutUint64(h[16:], uint64(w.blockSize))
	binary.LittleEndian.PutUint64(h[24:], uint64(tableOff))
	return h
}

func (w *Writer) encodeTable() []byte {
	var out []byte
	var scratch [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(v))
		out = append(out, scratch[:]...)
	}
	for task := 0; task < w.ntasks; task++ {
		put(int64(len(w.blocks[task])))
		for _, b := range w.blocks[task] {
			put(b.Off)
			put(b.Used)
		}
	}
	return out
}

// Reader is an open container for reading task streams back.
type Reader struct {
	backend   Backend
	path      string
	ntasks    int
	blockSize int64
	blocks    [][]block
}

// OpenRead parses a container's metadata from the backend, parking the
// caller for the header and table reads. Malformed containers are rejected
// with an error.
func OpenRead(p ioev.Proc, b Backend, path string) (*Reader, error) {
	r, op, err := SubmitOpenRead(b, path, p.Node(), ioev.Start(p))
	if err != nil {
		return nil, err
	}
	ioev.Await(p, op)
	return r, nil
}

// SubmitOpenRead parses a container's metadata after dep without parking:
// the header read chains into the table read, and the returned token covers
// both.
func SubmitOpenRead(b Backend, path string, node *machine.Node, dep ioev.Op) (*Reader, ioev.Op, error) {
	size, err := b.Size(path)
	if err != nil {
		return nil, ioev.Op{}, err
	}
	if size < headerSize {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s too short (%d bytes) for a SION container", path, size)
	}
	h, t, err := b.SubmitRead(dep, path, 0, headerSize, node)
	if err != nil {
		return nil, ioev.Op{}, fmt.Errorf("sion: header read: %w", err)
	}
	if int64(len(h)) < headerSize {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s: truncated header (%d bytes)", path, len(h))
	}
	if binary.LittleEndian.Uint32(h[0:]) != magic {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s is not a SION container", path)
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != version {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s has unsupported version %d", path, v)
	}
	ntasks := int64(binary.LittleEndian.Uint64(h[8:]))
	blockSize := int64(binary.LittleEndian.Uint64(h[16:]))
	tableOff := int64(binary.LittleEndian.Uint64(h[24:]))
	if ntasks <= 0 || ntasks > maxTasks {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s: implausible task count %d", path, ntasks)
	}
	if blockSize <= 0 {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s: invalid block size %d", path, blockSize)
	}
	if tableOff < headerSize || tableOff > size {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s: block table offset %d outside file [%d,%d]", path, tableOff, headerSize, size)
	}
	r := &Reader{backend: b, path: path, ntasks: int(ntasks), blockSize: blockSize}
	raw, t2, err := b.SubmitRead(t, path, tableOff, size-tableOff, node)
	if err != nil {
		return nil, ioev.Op{}, fmt.Errorf("sion: table read: %w", err)
	}
	if err := r.parseTable(raw, tableOff); err != nil {
		return nil, ioev.Op{}, fmt.Errorf("sion: %s: %w", path, err)
	}
	return r, t2, nil
}

// parseTable decodes the per-task block lists, validating every entry
// against the container geometry so corrupt tables fail instead of
// panicking or describing blocks outside the data region.
func (r *Reader) parseTable(raw []byte, tableOff int64) error {
	r.blocks = make([][]block, r.ntasks)
	pos := 0
	next := func() (int64, error) {
		if pos+8 > len(raw) {
			return 0, fmt.Errorf("truncated block table at byte %d", pos)
		}
		v := int64(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
		return v, nil
	}
	for task := 0; task < r.ntasks; task++ {
		n, err := next()
		if err != nil {
			return err
		}
		if n < 0 || n > int64(len(raw))/16 {
			return fmt.Errorf("task %d: implausible block count %d", task, n)
		}
		for i := int64(0); i < n; i++ {
			off, err := next()
			if err != nil {
				return err
			}
			used, err := next()
			if err != nil {
				return err
			}
			if off < headerSize || used < 0 || used > r.blockSize || off+r.blockSize > tableOff {
				return fmt.Errorf("task %d block %d: [%d,+%d) outside data region [%d,%d)", task, i, off, used, headerSize, tableOff)
			}
			r.blocks[task] = append(r.blocks[task], block{Off: off, Used: used})
		}
	}
	return nil
}

// NTasks returns the number of task streams in the container.
func (r *Reader) NTasks() int { return r.ntasks }

// TaskSize returns the logical size of one task's stream.
func (r *Reader) TaskSize(task int) int64 {
	var sum int64
	for _, b := range r.blocks[task] {
		sum += b.Used
	}
	return sum
}

// ReadTask reads one task's full logical stream, parking the caller until
// the last block arrives.
func (r *Reader) ReadTask(p ioev.Proc, task int) ([]byte, error) {
	out, op, err := r.SubmitReadTask(ioev.Start(p), task, p.Node())
	if err != nil {
		return nil, err
	}
	ioev.Await(p, op)
	return out, nil
}

// SubmitReadTask reads one task's stream after dep without parking: all
// blocks are fetched concurrently from the dependency instant and the
// returned token joins them.
func (r *Reader) SubmitReadTask(dep ioev.Op, task int, node *machine.Node) ([]byte, ioev.Op, error) {
	if task < 0 || task >= r.ntasks {
		return nil, ioev.Op{}, fmt.Errorf("sion: task %d out of range [0,%d)", task, r.ntasks)
	}
	var out []byte
	done := dep
	for _, b := range r.blocks[task] {
		data, t, err := r.backend.SubmitRead(dep, r.path, b.Off, b.Used, node)
		if err != nil {
			return nil, ioev.Op{}, fmt.Errorf("sion: task %d block at %d: %w", task, b.Off, err)
		}
		out = append(out, data...)
		done = ioev.After(done, t)
	}
	return out, done, nil
}
