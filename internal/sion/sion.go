// Package sion reproduces the role of SIONlib in the DEEP-ER software stack
// (§III-C of the paper): a concentration layer that lets thousands of tasks
// perform task-local I/O while the parallel file system only ever sees one
// (or a few) large, block-aligned container files.
//
// The container format is real: a binary header, a data region of fixed-size
// blocks handed out to task streams as they grow, and a block table appended
// at close, with the header patched to point at it. Containers written here
// are parsed back by OpenRead and verified byte-for-byte in tests.
//
// SIONlib also bridges I/O and resiliency in DEEP-ER: the Buddy helper copies
// a task's checkpoint into the NVMe of a companion node (buddy
// checkpointing), which package scr builds on.
package sion

import (
	"encoding/binary"
	"fmt"
	"sync"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Backend abstracts the file system a container lives on. *beegfs.FS
// satisfies it; DeviceBackend adapts a node-local NVMe device.
type Backend interface {
	Create(path string, node *machine.Node, ready vclock.Time) vclock.Time
	Write(path string, offset int64, data []byte, node *machine.Node, ready vclock.Time) (vclock.Time, error)
	Read(path string, offset, size int64, node *machine.Node, ready vclock.Time) ([]byte, vclock.Time, error)
	Size(path string) (int64, error)
}

const (
	magic      = uint32(0x53494f4e) // "SION"
	version    = uint32(2)
	headerSize = int64(64)
)

// Writer is an open container being written by ntasks task-local streams.
type Writer struct {
	backend   Backend
	path      string
	ntasks    int
	blockSize int64

	mu      sync.Mutex
	nextOff int64     // next free block offset
	blocks  [][]block // per task: ordered block list
	buf     [][]byte  // per task: current partial block
	flushed []vclock.Time
	closed  bool
}

type block struct {
	Off  int64
	Used int64
}

// Create starts a new container for ntasks streams with the given block size
// (the alignment unit; SIONlib aligns to file-system blocks). It returns the
// writer and the metadata completion time.
func Create(b Backend, path string, ntasks int, blockSize int64, node *machine.Node, ready vclock.Time) (*Writer, vclock.Time, error) {
	if ntasks <= 0 || blockSize <= 0 {
		return nil, 0, fmt.Errorf("sion: invalid container geometry (%d tasks, %d block)", ntasks, blockSize)
	}
	done := b.Create(path, node, ready)
	w := &Writer{
		backend:   b,
		path:      path,
		ntasks:    ntasks,
		blockSize: blockSize,
		nextOff:   headerSize,
		blocks:    make([][]block, ntasks),
		buf:       make([][]byte, ntasks),
		flushed:   make([]vclock.Time, ntasks),
	}
	return w, done, nil
}

// NTasks returns the number of task streams.
func (w *Writer) NTasks() int { return w.ntasks }

// WriteTask appends data to one task's logical stream, flushing full blocks
// to the backend. node is where the task runs; ready is its current virtual
// time. Returns the time at which the task's buffered state is consistent
// (the last flush issued by this call, or ready if fully buffered).
func (w *Writer) WriteTask(task int, data []byte, node *machine.Node, ready vclock.Time) (vclock.Time, error) {
	if task < 0 || task >= w.ntasks {
		return 0, fmt.Errorf("sion: task %d out of range [0,%d)", task, w.ntasks)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("sion: write to closed container %s", w.path)
	}
	w.buf[task] = append(w.buf[task], data...)
	// Collect full blocks to flush outside the lock's critical path.
	type pend struct {
		off  int64
		data []byte
	}
	var flushes []pend
	for int64(len(w.buf[task])) >= w.blockSize {
		blk := w.buf[task][:w.blockSize]
		w.buf[task] = w.buf[task][w.blockSize:]
		off := w.nextOff
		w.nextOff += w.blockSize
		w.blocks[task] = append(w.blocks[task], block{Off: off, Used: w.blockSize})
		flushes = append(flushes, pend{off: off, data: append([]byte(nil), blk...)})
	}
	w.mu.Unlock()

	done := ready
	for _, f := range flushes {
		t, err := w.backend.Write(w.path, f.off, f.data, node, ready)
		if err != nil {
			return 0, fmt.Errorf("sion: flush task %d: %w", task, err)
		}
		done = vclock.Max(done, t)
	}
	w.mu.Lock()
	w.flushed[task] = vclock.Max(w.flushed[task], done)
	w.mu.Unlock()
	return done, nil
}

// Close flushes all partial blocks, writes the block table and patches the
// header. It is called once (by the I/O root task); ready should be the
// maximum of the participating tasks' times (a barrier precedes the close in
// collective use). Returns the completion time of the whole container.
func (w *Writer) Close(node *machine.Node, ready vclock.Time) (vclock.Time, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("sion: double close of %s", w.path)
	}
	w.closed = true
	// Assign blocks for the partial buffers.
	type pend struct {
		off  int64
		data []byte
	}
	var flushes []pend
	for task := 0; task < w.ntasks; task++ {
		if len(w.buf[task]) == 0 {
			continue
		}
		data := w.buf[task]
		w.buf[task] = nil
		off := w.nextOff
		w.nextOff += w.blockSize // full block reserved: alignment
		w.blocks[task] = append(w.blocks[task], block{Off: off, Used: int64(len(data))})
		flushes = append(flushes, pend{off: off, data: data})
	}
	tableOff := w.nextOff
	table := w.encodeTable()
	header := w.encodeHeader(tableOff)
	for _, t := range w.flushed {
		ready = vclock.Max(ready, t)
	}
	w.mu.Unlock()

	done := ready
	for _, f := range flushes {
		t, err := w.backend.Write(w.path, f.off, f.data, node, ready)
		if err != nil {
			return 0, fmt.Errorf("sion: close flush: %w", err)
		}
		done = vclock.Max(done, t)
	}
	t, err := w.backend.Write(w.path, tableOff, table, node, done)
	if err != nil {
		return 0, fmt.Errorf("sion: block table: %w", err)
	}
	done = vclock.Max(done, t)
	t, err = w.backend.Write(w.path, 0, header, node, done)
	if err != nil {
		return 0, fmt.Errorf("sion: header: %w", err)
	}
	return vclock.Max(done, t), nil
}

func (w *Writer) encodeHeader(tableOff int64) []byte {
	h := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], version)
	binary.LittleEndian.PutUint64(h[8:], uint64(w.ntasks))
	binary.LittleEndian.PutUint64(h[16:], uint64(w.blockSize))
	binary.LittleEndian.PutUint64(h[24:], uint64(tableOff))
	return h
}

func (w *Writer) encodeTable() []byte {
	var out []byte
	var scratch [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(scratch[:], uint64(v))
		out = append(out, scratch[:]...)
	}
	for task := 0; task < w.ntasks; task++ {
		put(int64(len(w.blocks[task])))
		for _, b := range w.blocks[task] {
			put(b.Off)
			put(b.Used)
		}
	}
	return out
}

// Reader is an open container for reading task streams back.
type Reader struct {
	backend   Backend
	path      string
	ntasks    int
	blockSize int64
	blocks    [][]block
}

// OpenRead parses a container's metadata from the backend. node/ready time
// the metadata reads; the returned time covers header + table.
func OpenRead(b Backend, path string, node *machine.Node, ready vclock.Time) (*Reader, vclock.Time, error) {
	h, t, err := b.Read(path, 0, headerSize, node, ready)
	if err != nil {
		return nil, 0, fmt.Errorf("sion: header read: %w", err)
	}
	if binary.LittleEndian.Uint32(h[0:]) != magic {
		return nil, 0, fmt.Errorf("sion: %s is not a SION container", path)
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != version {
		return nil, 0, fmt.Errorf("sion: %s has unsupported version %d", path, v)
	}
	r := &Reader{
		backend:   b,
		path:      path,
		ntasks:    int(binary.LittleEndian.Uint64(h[8:])),
		blockSize: int64(binary.LittleEndian.Uint64(h[16:])),
	}
	tableOff := int64(binary.LittleEndian.Uint64(h[24:]))
	size, err := b.Size(path)
	if err != nil {
		return nil, 0, err
	}
	raw, t2, err := b.Read(path, tableOff, size-tableOff, node, t)
	if err != nil {
		return nil, 0, fmt.Errorf("sion: table read: %w", err)
	}
	r.blocks = make([][]block, r.ntasks)
	pos := 0
	next := func() int64 {
		v := int64(binary.LittleEndian.Uint64(raw[pos:]))
		pos += 8
		return v
	}
	for task := 0; task < r.ntasks; task++ {
		n := next()
		for i := int64(0); i < n; i++ {
			off := next()
			used := next()
			r.blocks[task] = append(r.blocks[task], block{Off: off, Used: used})
		}
	}
	return r, t2, nil
}

// NTasks returns the number of task streams in the container.
func (r *Reader) NTasks() int { return r.ntasks }

// TaskSize returns the logical size of one task's stream.
func (r *Reader) TaskSize(task int) int64 {
	var sum int64
	for _, b := range r.blocks[task] {
		sum += b.Used
	}
	return sum
}

// ReadTask reads one task's full logical stream.
func (r *Reader) ReadTask(task int, node *machine.Node, ready vclock.Time) ([]byte, vclock.Time, error) {
	if task < 0 || task >= r.ntasks {
		return nil, 0, fmt.Errorf("sion: task %d out of range [0,%d)", task, r.ntasks)
	}
	var out []byte
	done := ready
	for _, b := range r.blocks[task] {
		data, t, err := r.backend.Read(r.path, b.Off, b.Used, node, ready)
		if err != nil {
			return nil, 0, fmt.Errorf("sion: task %d block at %d: %w", task, b.Off, err)
		}
		out = append(out, data...)
		done = vclock.Max(done, t)
	}
	return out, done, nil
}
