package sion

import (
	"fmt"
	"sync"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

// DeviceBackend adapts a node-local NVMe device to the Backend interface, so
// SION containers (e.g. local checkpoints) can live on node-local storage.
// Content is kept alongside the device's capacity accounting.
type DeviceBackend struct {
	dev *nvme.Device

	mu    sync.Mutex
	files map[string][]byte
}

// NewDeviceBackend wraps an NVMe device.
func NewDeviceBackend(dev *nvme.Device) *DeviceBackend {
	return &DeviceBackend{dev: dev, files: map[string][]byte{}}
}

// Device returns the underlying device.
func (d *DeviceBackend) Device() *nvme.Device { return d.dev }

// Create makes an empty file on the device.
func (d *DeviceBackend) Create(path string, node *machine.Node, ready vclock.Time) vclock.Time {
	d.mu.Lock()
	d.files[path] = nil
	d.mu.Unlock()
	done, err := d.dev.Put("file:"+path, 0, ready)
	if err != nil {
		return ready
	}
	return done
}

// Write stores data at offset, growing the file; time is the device write.
func (d *DeviceBackend) Write(path string, offset int64, data []byte, node *machine.Node, ready vclock.Time) (vclock.Time, error) {
	d.mu.Lock()
	f, ok := d.files[path]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("sion: device file %s does not exist", path)
	}
	if grow := offset + int64(len(data)) - int64(len(f)); grow > 0 {
		f = append(f, make([]byte, grow)...)
	}
	copy(f[offset:], data)
	d.files[path] = f
	size := int64(len(f))
	d.mu.Unlock()
	done, err := d.dev.Put("file:"+path, size, ready)
	if err != nil {
		return 0, fmt.Errorf("sion: device write: %w", err)
	}
	return done, nil
}

// Read returns size bytes at offset; time is the device read.
func (d *DeviceBackend) Read(path string, offset, size int64, node *machine.Node, ready vclock.Time) ([]byte, vclock.Time, error) {
	d.mu.Lock()
	f, ok := d.files[path]
	if !ok || offset < 0 || offset+size > int64(len(f)) {
		d.mu.Unlock()
		return nil, 0, fmt.Errorf("sion: device read [%d,%d) of %s invalid", offset, offset+size, path)
	}
	out := append([]byte(nil), f[offset:offset+size]...)
	d.mu.Unlock()
	_, done, err := d.dev.Get("file:"+path, ready)
	if err != nil {
		return nil, 0, err
	}
	return out, done, nil
}

// Size returns the file's size.
func (d *DeviceBackend) Size(path string) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path]
	if !ok {
		return 0, fmt.Errorf("sion: device file %s does not exist", path)
	}
	return int64(len(f)), nil
}

// Buddy copies a task's local checkpoint data into the NVMe of a companion
// node — the SIONlib buddy-checkpointing path of §III-C. The transfer crosses
// the fabric from the owner to the buddy and then commits to the buddy's
// device; the returned time is when the redundant copy is safe.
func Buddy(net *fabric.Network, owner, buddy *machine.Node, buddyDev *nvme.Device, name string, data []byte, ready vclock.Time) (vclock.Time, error) {
	if owner.ID == buddy.ID {
		return 0, fmt.Errorf("sion: buddy of %s is itself", owner.Name())
	}
	// Fabric transfer owner → buddy (rendezvous bulk path).
	_, arrival := net.Rendezvous(owner, buddy, len(data), ready, ready)
	done, err := buddyDev.Put(name, int64(len(data)), arrival)
	if err != nil {
		return 0, fmt.Errorf("sion: buddy store on %s: %w", buddy.Name(), err)
	}
	return done, nil
}
