package sion

import (
	"fmt"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
)

// DeviceBackend adapts a node-local NVMe device to the Backend interface, so
// SION containers (e.g. local checkpoints) can live on node-local storage.
// Content is kept alongside the device's capacity accounting. Like the
// device itself it is mutex-free: the cooperative kernel serialises access.
type DeviceBackend struct {
	dev   *nvme.Device
	files map[string][]byte
}

// NewDeviceBackend wraps an NVMe device.
func NewDeviceBackend(dev *nvme.Device) *DeviceBackend {
	return &DeviceBackend{dev: dev, files: map[string][]byte{}}
}

// Device returns the underlying device.
func (d *DeviceBackend) Device() *nvme.Device { return d.dev }

// SubmitCreate makes an empty file on the device after dep; the node is
// irrelevant for node-local storage.
func (d *DeviceBackend) SubmitCreate(dep ioev.Op, path string, node *machine.Node) ioev.Op {
	d.files[path] = nil
	op, err := d.dev.SubmitPut(dep, "file:"+path, 0)
	if err != nil {
		return dep
	}
	return op
}

// SubmitWrite stores data at offset after dep, growing the file; the cost
// is the device write of the updated range.
func (d *DeviceBackend) SubmitWrite(dep ioev.Op, path string, offset int64, data []byte, node *machine.Node) (ioev.Op, error) {
	f, ok := d.files[path]
	if !ok {
		return ioev.Op{}, fmt.Errorf("sion: device file %s does not exist", path)
	}
	if grow := offset + int64(len(data)) - int64(len(f)); grow > 0 {
		f = append(f, make([]byte, grow)...)
	}
	copy(f[offset:], data)
	d.files[path] = f
	// Price only the bytes crossing the device: a block flush is an
	// in-place range write, not a rewrite of the whole container.
	op, err := d.dev.SubmitUpdate(dep, "file:"+path, int64(len(f)), int64(len(data)))
	if err != nil {
		return ioev.Op{}, fmt.Errorf("sion: device write: %w", err)
	}
	return op, nil
}

// SubmitRead returns size bytes at offset after dep; the cost is the device
// read.
func (d *DeviceBackend) SubmitRead(dep ioev.Op, path string, offset, size int64, node *machine.Node) ([]byte, ioev.Op, error) {
	f, ok := d.files[path]
	if !ok || offset < 0 || size < 0 || offset+size > int64(len(f)) {
		return nil, ioev.Op{}, fmt.Errorf("sion: device read [%d,%d) of %s invalid", offset, offset+size, path)
	}
	out := append([]byte(nil), f[offset:offset+size]...)
	_, op, err := d.dev.SubmitGet(dep, "file:"+path)
	if err != nil {
		return nil, ioev.Op{}, err
	}
	return out, op, nil
}

// Size returns the file's size.
func (d *DeviceBackend) Size(path string) (int64, error) {
	f, ok := d.files[path]
	if !ok {
		return 0, fmt.Errorf("sion: device file %s does not exist", path)
	}
	return int64(len(f)), nil
}

// Buddy copies a task's local checkpoint data into the NVMe of a companion
// node — the SIONlib buddy-checkpointing path of §III-C — parking the
// caller until the redundant copy is safe.
func Buddy(p ioev.Proc, net *fabric.Network, buddy *machine.Node, buddyDev *nvme.Device, name string, data []byte) error {
	op, err := SubmitBuddy(net, p.Node(), buddy, buddyDev, name, data, ioev.Start(p))
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitBuddy issues the buddy copy after dep without parking: the transfer
// crosses the fabric from the owner to the buddy and then commits to the
// buddy's device queue at its arrival instant — all priced during the
// owner's turn, so the redundant copy overlaps whatever else the owner
// submits. The returned token is when the copy is safe.
func SubmitBuddy(net *fabric.Network, owner, buddy *machine.Node, buddyDev *nvme.Device, name string, data []byte, dep ioev.Op) (ioev.Op, error) {
	if owner.ID == buddy.ID {
		return ioev.Op{}, fmt.Errorf("sion: buddy of %s is itself", owner.Name())
	}
	// Fabric transfer owner → buddy (rendezvous bulk path).
	_, arrival := net.Rendezvous(owner, buddy, len(data), dep.Time(), dep.Time())
	op, err := buddyDev.SubmitPut(ioev.At(arrival), name, int64(len(data)))
	if err != nil {
		return ioev.Op{}, fmt.Errorf("sion: buddy store on %s: %w", buddy.Name(), err)
	}
	ioev.CountBuddyCopy()
	return op, nil
}
