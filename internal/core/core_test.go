package core

import (
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/xpic"
)

func TestPrototypeLayout(t *testing.T) {
	s := Prototype()
	if s.Machine.NodeCount(machine.Cluster) != 16 || s.Machine.NodeCount(machine.Booster) != 8 {
		t.Fatalf("prototype has %d/%d nodes", s.Machine.NodeCount(machine.Cluster), s.Machine.NodeCount(machine.Booster))
	}
	if s.FS == nil || len(s.NVMe) != 24 || len(s.NAM) != 2 {
		t.Fatalf("storage stack incomplete: fs=%v nvme=%d nam=%d", s.FS != nil, len(s.NVMe), len(s.NAM))
	}
	if s.Scheduler == nil || s.Runtime == nil || s.Network == nil {
		t.Fatal("core services missing")
	}
}

func TestWithoutStorage(t *testing.T) {
	s := New(2, 2, Options{WithoutStorage: true})
	if s.FS != nil || s.NVMe != nil || s.NAM != nil {
		t.Fatal("storage built despite WithoutStorage")
	}
}

func TestNodeAccessors(t *testing.T) {
	s := New(4, 2, Options{WithoutStorage: true})
	cn, err := s.ClusterNodes(4)
	if err != nil || len(cn) != 4 {
		t.Fatalf("cluster nodes: %v", err)
	}
	if _, err := s.ClusterNodes(5); err == nil {
		t.Fatal("overcommitted cluster request accepted")
	}
	bn, err := s.BoosterNodes(2)
	if err != nil || bn[0].Module != machine.Booster {
		t.Fatalf("booster nodes: %v", err)
	}
	if _, err := s.BoosterNodes(3); err == nil {
		t.Fatal("overcommitted booster request accepted")
	}
}

func TestSpawnUsesScheduler(t *testing.T) {
	// The runtime's placement must be wired to the resource manager: an
	// allocation occupying booster nodes steers spawns to the free ones.
	s := New(2, 3, Options{WithoutStorage: true})
	if _, err := s.Scheduler.Alloc(0, 2); err != nil {
		t.Fatal(err)
	}
	s.Runtime.Register("probe", func(p *psmpi.Proc) error {
		if p.Node().Index < 2 {
			t.Errorf("spawn landed on busy node %s", p.Node().Name())
		}
		return nil
	})
	nodes, _ := s.ClusterNodes(1)
	_, err := s.Runtime.Launch(psmpi.LaunchSpec{Nodes: nodes, Main: func(p *psmpi.Proc) error {
		_, err := p.Spawn(p.World(), psmpi.SpawnSpec{Binary: "probe", Procs: 1, Module: machine.Booster})
		return err
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunXPicAllModes(t *testing.T) {
	cfg := xpic.QuickConfig(4)
	for _, mode := range []xpic.Mode{xpic.ClusterOnly, xpic.BoosterOnly, xpic.SplitCB} {
		s := New(2, 2, Options{WithoutStorage: true})
		rep, err := s.RunXPic(mode, 2, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep.Mode != mode || rep.Makespan <= 0 {
			t.Errorf("%v: report %+v", mode, rep)
		}
	}
}

func TestRunXPicSplitNeedsBothModules(t *testing.T) {
	s := New(1, 2, Options{WithoutStorage: true})
	if _, err := s.RunXPicSplit(2, xpic.QuickConfig(2)); err == nil {
		t.Fatal("split with too few cluster nodes accepted")
	}
}
