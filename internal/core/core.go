// Package core assembles the Cluster-Booster system — the paper's primary
// contribution (§II): a general-purpose Cluster and a many-core Booster,
// each a stand-alone cluster of nodes, joined by one uniform EXTOLL-like
// fabric and operated as a single machine by a uniform software stack
// (ParaStation-like MPI with cross-module spawn, module-aware resource
// management, parallel file system over fabric-attached storage, node-local
// NVMe and network-attached memory).
//
// A core.System is the "machine" every experiment and example boots:
//
//	sys := core.Prototype()          // the DEEP-ER machine: 16 CN + 8 BN
//	rep, err := sys.RunXPicSplit(8, xpic.Table2Config())
package core

import (
	"fmt"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nam"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/xpic"
)

// ModelFingerprint names the current generation of the simulation model and
// execution kernel for the persistent run store's cache epoch (see
// exp.CacheEpoch and internal/runstore). Bump it with any change, anywhere
// in the simulation stack, that can alter a report for an unchanged
// configuration — the working test is "would this re-bless a golden?". An
// unbumped fingerprint after such a change would let a stale store satisfy
// post-change runs; the golden CI gate (cold/warm diff legs) backstops the
// discipline, since a stale warm hit diverges from the freshly blessed
// baseline.
const ModelFingerprint = "cluster-booster-model-1"

// Options tunes system construction. The zero value selects the DEEP-ER
// prototype parameters everywhere.
type Options struct {
	Fabric fabric.Config
	MPI    psmpi.Config
	FS     beegfs.Config
	// WithoutStorage skips BeeGFS, NVMe and NAM construction for
	// compute-only experiments.
	WithoutStorage bool
}

// System is a booted Cluster-Booster machine.
type System struct {
	Machine   *machine.System
	Network   *fabric.Network
	Runtime   *psmpi.Runtime
	Scheduler *sched.Manager

	// Storage stack (nil/empty if Options.WithoutStorage).
	FS   *beegfs.FS
	NVMe map[int]*nvme.Device // node ID → device
	NAM  []*nam.Device
}

// New builds a system with the given node counts per module.
func New(clusterNodes, boosterNodes int, opts Options) *System {
	ms := machine.New(clusterNodes, boosterNodes)
	net := fabric.New(ms, opts.Fabric)
	rt := psmpi.NewRuntime(ms, net, opts.MPI)
	mgr := sched.NewManager(ms)
	rt.SetPlacement(mgr)
	s := &System{
		Machine:   ms,
		Network:   net,
		Runtime:   rt,
		Scheduler: mgr,
	}
	if !opts.WithoutStorage {
		s.FS = beegfs.New(net, opts.FS)
		s.NVMe = map[int]*nvme.Device{}
		for _, n := range ms.Nodes() {
			s.NVMe[n.ID] = nvme.New(nvme.P3700())
		}
		pair := nam.NewPrototypePair(net)
		s.NAM = pair[:]
	}
	return s
}

// Prototype builds the DEEP-ER prototype (Table I): 16 Cluster nodes,
// 8 Booster nodes, full storage stack.
func Prototype() *System { return New(16, 8, Options{}) }

// ClusterNodes returns the first n Cluster nodes.
func (s *System) ClusterNodes(n int) ([]*machine.Node, error) {
	pool := s.Machine.Module(machine.Cluster)
	if n > len(pool) {
		return nil, fmt.Errorf("core: %d cluster nodes requested, system has %d", n, len(pool))
	}
	return pool[:n], nil
}

// BoosterNodes returns the first n Booster nodes.
func (s *System) BoosterNodes(n int) ([]*machine.Node, error) {
	pool := s.Machine.Module(machine.Booster)
	if n > len(pool) {
		return nil, fmt.Errorf("core: %d booster nodes requested, system has %d", n, len(pool))
	}
	return pool[:n], nil
}

// RunXPicCluster runs xPic entirely on n Cluster nodes (the "Cluster"
// scenario of §IV-C).
func (s *System) RunXPicCluster(n int, cfg xpic.Config) (xpic.Report, error) {
	nodes, err := s.ClusterNodes(n)
	if err != nil {
		return xpic.Report{}, err
	}
	return xpic.RunMono(s.Runtime, nodes, cfg)
}

// RunXPicBooster runs xPic entirely on n Booster nodes (the "Booster"
// scenario).
func (s *System) RunXPicBooster(n int, cfg xpic.Config) (xpic.Report, error) {
	nodes, err := s.BoosterNodes(n)
	if err != nil {
		return xpic.Report{}, err
	}
	return xpic.RunMono(s.Runtime, nodes, cfg)
}

// RunXPicSplit runs xPic in Cluster-Booster mode with n nodes per solver:
// the particle solver on n Booster nodes, which spawns the field solver onto
// n Cluster nodes (the "C+B" scenario).
func (s *System) RunXPicSplit(n int, cfg xpic.Config) (xpic.Report, error) {
	bn, err := s.BoosterNodes(n)
	if err != nil {
		return xpic.Report{}, err
	}
	if _, err := s.ClusterNodes(n); err != nil {
		return xpic.Report{}, err
	}
	return xpic.RunSplit(s.Runtime, bn, n, cfg)
}

// RunXPic dispatches on the mode.
func (s *System) RunXPic(mode xpic.Mode, n int, cfg xpic.Config) (xpic.Report, error) {
	switch mode {
	case xpic.ClusterOnly:
		return s.RunXPicCluster(n, cfg)
	case xpic.BoosterOnly:
		return s.RunXPicBooster(n, cfg)
	case xpic.SplitCB:
		return s.RunXPicSplit(n, cfg)
	default:
		return xpic.Report{}, fmt.Errorf("core: unknown mode %v", mode)
	}
}
