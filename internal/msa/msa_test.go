package msa

import (
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty module list accepted")
	}
	if _, err := New([]ModuleDef{{Name: "", Count: 1}}); err == nil {
		t.Error("unnamed module accepted")
	}
	if _, err := New([]ModuleDef{
		{Name: "A", Spec: machine.ClusterNode(), Count: 1},
		{Name: "A", Spec: machine.BoosterNode(), Count: 1},
	}); err == nil {
		t.Error("duplicate module name accepted")
	}
}

func TestDEEPESTThreeModules(t *testing.T) {
	s := DEEPEST()
	if got := len(s.Machine.Modules()); got != 3 {
		t.Fatalf("%d modules, want 3", got)
	}
	dam, err := s.Module("DAM")
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine.NodeCount(dam) != 4 {
		t.Errorf("DAM has %d nodes", s.Machine.NodeCount(dam))
	}
	if s.Machine.ModuleName(dam) != "DAM" {
		t.Errorf("module name %q", s.Machine.ModuleName(dam))
	}
	// DAM nodes carry the big-memory spec and distinct names.
	n := s.Machine.Module(dam)[0]
	if n.Spec.RAMBytes != 2<<40 {
		t.Errorf("DAM RAM = %d", n.Spec.RAMBytes)
	}
	if n.Name() != "da00" {
		t.Errorf("DAM node name %q", n.Name())
	}
	// Node IDs are dense across all three modules.
	if len(s.Machine.Nodes()) != 20 {
		t.Errorf("total nodes %d", len(s.Machine.Nodes()))
	}
}

func TestModuleLookup(t *testing.T) {
	s := DEEPEST()
	if _, err := s.Module("GPU"); err == nil {
		t.Error("unknown module resolved")
	}
	if _, err := s.ModuleNodes("DAM", 99); err == nil {
		t.Error("oversized node request accepted")
	}
	nodes, err := s.ModuleNodes("Booster", 3)
	if err != nil || len(nodes) != 3 || nodes[0].Module != machine.Module(1) {
		t.Errorf("booster nodes: %v %v", nodes, err)
	}
}

func TestSchedulerSpansAllModules(t *testing.T) {
	s := DEEPEST()
	dam, _ := s.Module("DAM")
	if s.Scheduler.FreeCount(dam) != 4 {
		t.Errorf("scheduler does not manage the DAM: %d free", s.Scheduler.FreeCount(dam))
	}
}

func TestWorkflowTwoStages(t *testing.T) {
	// Simulation on the Booster feeds analytics on the DAM: the DEEP-EST
	// HPC + HPDA scenario.
	s := DEEPEST()
	res, err := s.RunWorkflow([]Stage{
		{Name: "simulate", Module: "Booster", Procs: 4,
			Work: machine.Work{Class: machine.KernelParticle, Flops: 1e9}},
		{Name: "analyse", Module: "DAM", Procs: 2,
			Work: machine.Work{Class: machine.KernelStream, Bytes: 64 << 20}, InBytes: 1 << 20},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("workflow free of charge")
	}
	if len(res.StageTimes) != 2 || res.StageTimes[0] <= 0 || res.StageTimes[1] <= 0 {
		t.Fatalf("stage times %v", res.StageTimes)
	}
}

func TestWorkflowThreeStagesFanInOut(t *testing.T) {
	// Uneven stage widths exercise the fan-out mapping: 2 → 4 → 1 ranks
	// across three modules.
	s := DEEPEST()
	res, err := s.RunWorkflow([]Stage{
		{Name: "ingest", Module: "Cluster", Procs: 2,
			Work: machine.Work{Class: machine.KernelSerial, Flops: 1e7}},
		{Name: "simulate", Module: "Booster", Procs: 4,
			Work: machine.Work{Class: machine.KernelParticle, Flops: 5e8}, InBytes: 256 << 10},
		{Name: "reduce", Module: "DAM", Procs: 1,
			Work: machine.Work{Class: machine.KernelStream, Bytes: 8 << 20}, InBytes: 128 << 10},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The pipeline must take at least as long as its slowest stage.
	var longest vclock.Time
	for _, st := range res.StageTimes {
		longest = vclock.Max(longest, st)
	}
	if res.Makespan < longest {
		t.Errorf("makespan %v below slowest stage %v", res.Makespan, longest)
	}
}

func TestWorkflowValidation(t *testing.T) {
	s := DEEPEST()
	if _, err := s.RunWorkflow([]Stage{{Name: "solo", Module: "DAM", Procs: 1}}, 1); err == nil {
		t.Error("single-stage workflow accepted")
	}
	if _, err := s.RunWorkflow([]Stage{
		{Name: "a", Module: "Cluster", Procs: 1},
		{Name: "b", Module: "Nowhere", Procs: 1},
	}, 1); err == nil {
		t.Error("unknown module accepted")
	}
	if _, err := s.RunWorkflow([]Stage{
		{Name: "a", Module: "Cluster", Procs: 1},
		{Name: "b", Module: "DAM", Procs: 0},
	}, 1); err == nil {
		t.Error("zero-proc stage accepted")
	}
}

func TestWorkflowStagePlacementMatters(t *testing.T) {
	// The MSA promise: a particle-class stage is faster when its module is
	// the Booster than when it is the Cluster.
	run := func(module string) vclock.Time {
		s := DEEPEST()
		res, err := s.RunWorkflow([]Stage{
			{Name: "feed", Module: "Cluster", Procs: 1,
				Work: machine.Work{Class: machine.KernelSerial, Flops: 1e6}},
			{Name: "kernel", Module: module, Procs: 1,
				Work: machine.Work{Class: machine.KernelParticle, Flops: 3e10}, InBytes: 1 << 16},
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	onBooster := run("Booster")
	onCluster := run("Cluster")
	if onBooster >= onCluster {
		t.Errorf("particle stage on Booster (%v) not faster than on Cluster (%v)", onBooster, onCluster)
	}
}
