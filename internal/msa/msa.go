// Package msa implements the Modular Supercomputing Architecture — the
// generalisation of the Cluster-Booster concept that the paper's §VI
// describes as the goal of the successor project DEEP-EST: "any number of
// compute modules ... a high-speed interconnect between the modules and a
// uniform software stack across them enables codes and work-flows to run
// distributed over the whole machine".
//
// An msa.System composes arbitrary module pools (the classic Cluster and
// Booster, plus e.g. a big-memory Data Analytics Module) over one fabric and
// one resource manager, and Workflow runs multi-stage pipelines whose stages
// are pinned to the module that suits them, connected by spawn
// inter-communicators — the HPC + HPDA workflow scenario of DEEP-EST.
package msa

import (
	"fmt"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/vclock"
)

// ModuleDef declares one module of a modular system.
type ModuleDef struct {
	Name  string
	Spec  machine.NodeSpec
	Count int
}

// System is a booted modular supercomputer.
type System struct {
	Machine   *machine.System
	Network   *fabric.Network
	Runtime   *psmpi.Runtime
	Scheduler *sched.Manager

	byName map[string]machine.Module
}

// New builds a modular system from the given module definitions, in order.
// Module ids are assigned sequentially (0, 1, 2, …), so the first two can be
// the classic Cluster and Booster.
func New(defs []ModuleDef) (*System, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("msa: no modules")
	}
	pools := make([]machine.Pool, len(defs))
	byName := map[string]machine.Module{}
	for i, d := range defs {
		if d.Name == "" {
			return nil, fmt.Errorf("msa: module %d has no name", i)
		}
		if _, dup := byName[d.Name]; dup {
			return nil, fmt.Errorf("msa: duplicate module name %q", d.Name)
		}
		m := machine.Module(i)
		pools[i] = machine.Pool{Module: m, Name: d.Name, Spec: d.Spec, Count: d.Count}
		byName[d.Name] = m
	}
	ms := machine.NewMulti(pools)
	net := fabric.New(ms, fabric.Config{})
	rt := psmpi.NewRuntime(ms, net, psmpi.Config{})
	mgr := sched.NewManager(ms)
	rt.SetPlacement(mgr)
	return &System{
		Machine:   ms,
		Network:   net,
		Runtime:   rt,
		Scheduler: mgr,
		byName:    byName,
	}, nil
}

// DEEPEST builds a three-module prototype in the spirit of the DEEP-EST
// plan (§VI: "a hardware prototype consisting of three modules ... HPC and
// high performance data analytics workloads"): the classic Cluster and
// Booster plus a Data Analytics Module.
func DEEPEST() *System {
	s, err := New([]ModuleDef{
		{Name: "Cluster", Spec: machine.ClusterNode(), Count: 8},
		{Name: "Booster", Spec: machine.BoosterNode(), Count: 8},
		{Name: "DAM", Spec: DataAnalyticsNode(), Count: 4},
	})
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	return s
}

// DataAnalyticsNode returns the big-memory node type of the Data Analytics
// Module: fat Xeon nodes with very large memory for HPDA workloads.
func DataAnalyticsNode() machine.NodeSpec {
	spec := machine.ClusterNode()
	spec.Processor = "Intel Xeon (big-memory DAM node)"
	spec.Cores = 48
	spec.Threads = 96
	spec.RAMBytes = 2 << 40 // 2 TiB
	spec.MemBWGBs = 180
	spec.PeakTFlops = 1.9
	return spec
}

// Module resolves a module by name.
func (s *System) Module(name string) (machine.Module, error) {
	m, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("msa: unknown module %q", name)
	}
	return m, nil
}

// ModuleNodes returns up to n nodes of a named module.
func (s *System) ModuleNodes(name string, n int) ([]*machine.Node, error) {
	m, err := s.Module(name)
	if err != nil {
		return nil, err
	}
	pool := s.Machine.Module(m)
	if n > len(pool) {
		return nil, fmt.Errorf("msa: module %q has %d nodes, %d requested", name, len(pool), n)
	}
	return pool[:n], nil
}

// Stage is one step of a modular workflow, pinned to a module.
type Stage struct {
	// Name identifies the stage.
	Name string
	// Module names the module the stage runs on.
	Module string
	// Procs is the number of ranks of the stage.
	Procs int
	// Work is the per-rank compute cost of one invocation.
	Work machine.Work
	// InBytes is the data each rank receives from the previous stage per
	// invocation (stage 0 reads no input).
	InBytes int
}

// WorkflowResult summarises a workflow execution.
type WorkflowResult struct {
	Makespan vclock.Time
	// StageTimes reports each stage's busy time (max over its ranks).
	StageTimes []vclock.Time
}

// RunWorkflow executes a linear multi-module pipeline for the given number
// of iterations: stage 0 runs on its module and streams its output to stage
// 1 on the next module, and so on — each stage on the hardware that suits it,
// connected by spawn inter-communicators exactly like xPic's two solvers.
//
// The first stage's module hosts the root job; every further stage is
// spawned from it (the paper's §III-A mechanism, generalised to N modules).
func (s *System) RunWorkflow(stages []Stage, iterations int) (WorkflowResult, error) {
	if len(stages) < 2 {
		return WorkflowResult{}, fmt.Errorf("msa: a workflow needs at least 2 stages")
	}
	if iterations < 1 {
		return WorkflowResult{}, fmt.Errorf("msa: %d iterations", iterations)
	}
	for i, st := range stages {
		if _, err := s.Module(st.Module); err != nil {
			return WorkflowResult{}, err
		}
		if st.Procs < 1 {
			return WorkflowResult{}, fmt.Errorf("msa: stage %d has %d procs", i, st.Procs)
		}
	}

	stageTimes := make([]vclock.Time, len(stages))
	timesCh := make(chan struct {
		idx int
		t   vclock.Time
	}, len(stages)*stages[0].Procs*4)

	// Register stage binaries 1..n-1: each receives from its parent, works,
	// and forwards to the next stage it spawned itself.
	const tagData = 77
	for i := 1; i < len(stages); i++ {
		i := i
		st := stages[i]
		binary := fmt.Sprintf("msa_stage_%d_%p", i, &stageTimes)
		s.Runtime.Register(binary, func(p *psmpi.Proc) error {
			var next *psmpi.Comm
			if i+1 < len(stages) {
				nm, _ := s.Module(stages[i+1].Module)
				var err error
				next, err = p.Spawn(p.World(), psmpi.SpawnSpec{
					Binary: fmt.Sprintf("msa_stage_%d_%p", i+1, &stageTimes),
					Procs:  stages[i+1].Procs,
					Module: nm,
				})
				if err != nil {
					return err
				}
			}
			start := p.Now()
			src := p.Rank() % p.Parent().RemoteSize()
			for it := 0; it < iterations; it++ {
				p.Recv(p.Parent(), src, tagData)
				p.Compute(st.Work)
				if next != nil {
					// Fan out: this rank feeds every child whose index maps
					// to it (child % producers == rank).
					for dst := p.Rank(); dst < next.RemoteSize(); dst += p.World().Size() {
						p.Send(next, dst, tagData, nil, stages[i+1].InBytes)
					}
				}
			}
			timesCh <- struct {
				idx int
				t   vclock.Time
			}{i, p.Now() - start}
			return nil
		})
	}

	pool := s.Machine.Module(mustModule(s, stages[0].Module))
	if len(pool) == 0 {
		return WorkflowResult{}, fmt.Errorf("msa: module %q has no nodes", stages[0].Module)
	}
	rootNodes := make([]*machine.Node, stages[0].Procs)
	for i := range rootNodes {
		rootNodes[i] = pool[i%len(pool)] // oversubscribe slots if needed
	}

	res, err := s.Runtime.Launch(psmpi.LaunchSpec{
		Nodes: rootNodes,
		Main: func(p *psmpi.Proc) error {
			nm, _ := s.Module(stages[1].Module)
			next, err := p.Spawn(p.World(), psmpi.SpawnSpec{
				Binary: fmt.Sprintf("msa_stage_%d_%p", 1, &stageTimes),
				Procs:  stages[1].Procs,
				Module: nm,
			})
			if err != nil {
				return err
			}
			start := p.Now()
			for it := 0; it < iterations; it++ {
				p.Compute(stages[0].Work)
				for dst := p.Rank(); dst < next.RemoteSize(); dst += p.World().Size() {
					p.Send(next, dst, tagData, nil, stages[1].InBytes)
				}
			}
			timesCh <- struct {
				idx int
				t   vclock.Time
			}{0, p.Now() - start}
			return nil
		},
	})
	if err != nil {
		return WorkflowResult{}, err
	}
	close(timesCh)
	for e := range timesCh {
		stageTimes[e.idx] = vclock.Max(stageTimes[e.idx], e.t)
	}
	return WorkflowResult{Makespan: res.Makespan, StageTimes: stageTimes}, nil
}

func mustModule(s *System, name string) machine.Module {
	m, _ := s.Module(name)
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
