package sched

import (
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

func newMgr() *Manager { return NewManager(machine.Prototype()) }

func TestAllocRelease(t *testing.T) {
	m := newMgr()
	a, err := m.Alloc(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cluster) != 4 || len(a.Booster) != 2 {
		t.Fatalf("allocation %d/%d, want 4/2", len(a.Cluster), len(a.Booster))
	}
	if m.FreeCount(machine.Cluster) != 12 || m.FreeCount(machine.Booster) != 6 {
		t.Fatalf("free %d/%d after alloc", m.FreeCount(machine.Cluster), m.FreeCount(machine.Booster))
	}
	m.Release(a)
	if m.FreeCount(machine.Cluster) != 16 || m.FreeCount(machine.Booster) != 8 {
		t.Fatalf("free %d/%d after release", m.FreeCount(machine.Cluster), m.FreeCount(machine.Booster))
	}
	m.Release(a) // idempotent
	if m.FreeCount(machine.Cluster) != 16 {
		t.Fatal("double release corrupted pool")
	}
}

func TestAllocIndependentModules(t *testing.T) {
	// §II-A: Cluster and Booster nodes are reserved independently — a
	// cluster-only allocation leaves the booster untouched.
	m := newMgr()
	if _, err := m.Alloc(16, 0); err != nil {
		t.Fatal(err)
	}
	if m.FreeCount(machine.Booster) != 8 {
		t.Fatal("cluster-only allocation consumed booster nodes")
	}
	if _, err := m.Alloc(0, 8); err != nil {
		t.Fatalf("booster still free but alloc failed: %v", err)
	}
}

func TestAllocOverCommit(t *testing.T) {
	m := newMgr()
	if _, err := m.Alloc(17, 0); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	// Failed alloc must not leak nodes.
	if m.FreeCount(machine.Cluster) != 16 {
		t.Fatal("failed allocation leaked nodes")
	}
}

func TestAllocDisjoint(t *testing.T) {
	m := newMgr()
	a, _ := m.Alloc(8, 4)
	b, _ := m.Alloc(8, 4)
	seen := map[int]bool{}
	for _, n := range append(a.Nodes(), b.Nodes()...) {
		if seen[n.ID] {
			t.Fatalf("node %d allocated twice", n.ID)
		}
		seen[n.ID] = true
	}
}

func TestGrowShrink(t *testing.T) {
	m := newMgr()
	a, _ := m.Alloc(2, 2)
	got, err := m.Grow(a, machine.Booster, 3)
	if err != nil || len(got) != 3 {
		t.Fatalf("grow: %v (%d nodes)", err, len(got))
	}
	if len(a.Booster) != 5 || m.FreeCount(machine.Booster) != 3 {
		t.Fatalf("after grow: alloc %d free %d", len(a.Booster), m.FreeCount(machine.Booster))
	}
	if err := m.Shrink(a, machine.Booster, 4); err != nil {
		t.Fatal(err)
	}
	if len(a.Booster) != 1 || m.FreeCount(machine.Booster) != 7 {
		t.Fatalf("after shrink: alloc %d free %d", len(a.Booster), m.FreeCount(machine.Booster))
	}
	if err := m.Shrink(a, machine.Booster, 5); err == nil {
		t.Fatal("shrink below zero succeeded")
	}
}

func TestPlaceSpawnPrefersFree(t *testing.T) {
	m := newMgr()
	// Occupy all but the last two booster nodes.
	if _, err := m.Alloc(0, 6); err != nil {
		t.Fatal(err)
	}
	nodes, err := m.PlaceSpawn(2, machine.Booster)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n.Index < 6 {
			t.Errorf("spawn placed on busy node %s", n.Name())
		}
	}
}

func TestPlaceSpawnOversubscribes(t *testing.T) {
	m := newMgr()
	if _, err := m.Alloc(0, 8); err != nil {
		t.Fatal(err)
	}
	nodes, err := m.PlaceSpawn(4, machine.Booster)
	if err != nil {
		t.Fatalf("full module should oversubscribe, got %v", err)
	}
	if len(nodes) != 4 {
		t.Fatalf("got %d nodes", len(nodes))
	}
}

func TestPlaceSpawnInvalid(t *testing.T) {
	m := newMgr()
	if _, err := m.PlaceSpawn(0, machine.Booster); err == nil {
		t.Fatal("zero-proc spawn accepted")
	}
}

func TestQueueFCFSOrder(t *testing.T) {
	m := newMgr()
	jobs := []Job{
		{ID: 1, Cluster: 16, Duration: 10 * vclock.Second},
		{ID: 2, Cluster: 1, Duration: 1 * vclock.Second},
	}
	s, err := m.SimulateQueue(jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placed[0].Job.ID != 1 || s.Placed[1].Job.ID != 2 {
		t.Fatalf("FCFS order violated: %+v", s.Placed)
	}
	// Job 2 must wait for job 1 despite being tiny.
	if s.Placed[1].Start != 10*vclock.Second {
		t.Errorf("job 2 started at %v, want 10s", s.Placed[1].Start)
	}
}

func TestQueueBackfill(t *testing.T) {
	m := newMgr()
	jobs := []Job{
		{ID: 1, Cluster: 10, Duration: 10 * vclock.Second},
		{ID: 2, Cluster: 16, Duration: 5 * vclock.Second}, // blocked head
		{ID: 3, Cluster: 4, Duration: 10 * vclock.Second}, // fits the hole
		{ID: 4, Cluster: 4, Duration: 20 * vclock.Second}, // would delay head
	}
	s, err := m.SimulateQueue(jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Placed{}
	for _, p := range s.Placed {
		byID[p.Job.ID] = p
	}
	if byID[3].Start != 0 {
		t.Errorf("job 3 not backfilled: start %v", byID[3].Start)
	}
	if byID[2].Start != 10*vclock.Second {
		t.Errorf("head job delayed by backfill: start %v, want 10s", byID[2].Start)
	}
	if byID[4].Start < 10*vclock.Second {
		t.Errorf("job 4 jumped ahead and would have delayed the head: start %v", byID[4].Start)
	}
}

func TestQueueBackfillBeatsFCFS(t *testing.T) {
	m := newMgr()
	jobs := []Job{
		{ID: 1, Cluster: 10, Duration: 10 * vclock.Second},
		{ID: 2, Cluster: 16, Duration: 5 * vclock.Second},
		{ID: 3, Cluster: 4, Duration: 9 * vclock.Second},
	}
	fc, err := m.SimulateQueue(jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := m.SimulateQueue(jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	if bf.AverageWait() >= fc.AverageWait() {
		t.Errorf("backfill wait %v not better than FCFS %v", bf.AverageWait(), fc.AverageWait())
	}
}

func TestQueueMalleableShrinks(t *testing.T) {
	m := newMgr()
	jobs := []Job{
		{ID: 1, Cluster: 12, Duration: 10 * vclock.Second},
		{ID: 2, Cluster: 8, MinCluster: 4, Malleable: true, Duration: 8 * vclock.Second},
	}
	s, err := m.SimulateQueue(jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	p2 := s.Placed[1]
	if p2.Start != 0 {
		t.Fatalf("malleable job waited: start %v", p2.Start)
	}
	if p2.Cluster != 4 {
		t.Fatalf("malleable job granted %d nodes, want 4", p2.Cluster)
	}
	// Runtime stretched by 8/4 = 2×.
	if p2.End != 16*vclock.Second {
		t.Fatalf("stretched end %v, want 16s", p2.End)
	}
}

func TestQueueImpossibleJob(t *testing.T) {
	m := newMgr()
	if _, err := m.SimulateQueue([]Job{{ID: 1, Cluster: 99, Duration: vclock.Second}}, FCFS); err == nil {
		t.Fatal("impossible job accepted")
	}
}

func TestQueueUtilisation(t *testing.T) {
	m := newMgr()
	jobs := []Job{{ID: 1, Cluster: 16, Duration: 10 * vclock.Second}}
	s, err := m.SimulateQueue(jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if u := s.Utilisation(m, machine.Cluster); u < 0.99 || u > 1.01 {
		t.Errorf("utilisation = %v, want 1.0", u)
	}
	if u := s.Utilisation(m, machine.Booster); u != 0 {
		t.Errorf("booster utilisation = %v, want 0", u)
	}
}

func TestQueueRespectsArrivals(t *testing.T) {
	m := newMgr()
	jobs := []Job{
		{ID: 1, Cluster: 1, Arrival: 5 * vclock.Second, Duration: vclock.Second},
	}
	s, err := m.SimulateQueue(jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placed[0].Start != 5*vclock.Second {
		t.Errorf("job started at %v before its arrival", s.Placed[0].Start)
	}
	if s.Placed[0].Wait() != 0 {
		t.Errorf("wait = %v, want 0", s.Placed[0].Wait())
	}
}

// TestQueueCoScheduling exercises the paper's throughput argument: pairing a
// cluster-heavy and a booster-heavy job keeps both modules busy at once.
func TestQueueCoScheduling(t *testing.T) {
	m := newMgr()
	jobs := []Job{
		{ID: 1, Cluster: 16, Booster: 0, Duration: 10 * vclock.Second},
		{ID: 2, Cluster: 0, Booster: 8, Duration: 10 * vclock.Second},
	}
	s, err := m.SimulateQueue(jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 10*vclock.Second {
		t.Errorf("complementary jobs did not co-schedule: makespan %v, want 10s", s.Makespan)
	}
}
