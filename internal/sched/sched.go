// Package sched is the resource manager and batch system of the simulated
// Cluster-Booster machine — the role ParaStation management plus the DEEP
// batch-system extensions play on the prototype (§II-A of the paper, ref [5]).
//
// Its three jobs:
//
//  1. Online allocation: reserve Cluster and Booster nodes independently (the
//     property §II-A contrasts with accelerated clusters), and place spawned
//     process groups (psmpi.Placement) — either machine-wide (Manager) or
//     inside a live allocation (Allocation.PlaceSpawn).
//  2. Batch scheduling on the event kernel: SimulateQueue runs each job as an
//     engine.Task that parks until the scheduler grants its nodes, under FCFS
//     or FCFS+conservative-backfill, including malleable jobs that shrink to
//     available resources, as in the DEEP scheduling work (ref [5]).
//  3. Facility simulation: RunFacility drives a seeded synthetic arrival
//     stream — thousands of concurrent jobs on one kernel — through the
//     queue policies and reports utilization, bounded slowdown and makespan.
//
// # Why there is no lock here
//
// Through PR 6 the Manager carried a sync.Mutex, a holdover from the
// pre-kernel goroutine/rendezvous execution model where any rank's goroutine
// could call Alloc or Release at any host moment. On the event kernel that
// concurrency does not exist: every execution context of a simulated job is
// an engine.Task, exactly one of which runs at a time (the baton), so every
// Manager call is already serialised by the kernel. Across scenarios there
// is no sharing either — each sweep scenario boots a private core.System
// with its own Manager. Dropping the mutex follows the same argument PR 4
// made for scr and PR 6 made for the I/O stack: the kernel's cooperative
// scheduling is the synchronisation.
package sched

import (
	"fmt"
	"sort"

	"clusterbooster/internal/machine"
)

// Manager tracks node availability and serves allocations. It is kernel
// state: all methods must be called from the owning scenario's goroutines
// (one task at a time under the engine baton), never shared across
// scenarios — see the package comment for the serialization argument.
type Manager struct {
	sys *machine.System

	free  map[machine.Module][]*machine.Node
	next  int
	alloc map[int]*Allocation
	rr    map[machine.Module]int // round-robin cursor for oversubscribed spawns
}

// Allocation is a reserved set of nodes, possibly spanning both modules.
type Allocation struct {
	ID      int
	Cluster []*machine.Node
	Booster []*machine.Node

	rr map[machine.Module]int // round-robin cursor for in-allocation spawns
}

// Nodes returns all nodes of the allocation, Cluster first.
func (a *Allocation) Nodes() []*machine.Node {
	out := append([]*machine.Node(nil), a.Cluster...)
	return append(out, a.Booster...)
}

// PlaceSpawn implements psmpi.Placement scoped to the allocation: spawned
// groups land round-robin on the allocation's own nodes of the target
// module, never outside the reservation — the batch-system behaviour of the
// prototype, where a job's dynamic spawns stay inside its booking. Install
// it per launch via psmpi.LaunchSpec.Placement.
func (a *Allocation) PlaceSpawn(n int, mod machine.Module) ([]*machine.Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: spawn of %d procs", n)
	}
	pool := a.Cluster
	if mod == machine.Booster {
		pool = a.Booster
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("sched: allocation %d holds no %v nodes", a.ID, mod)
	}
	if a.rr == nil {
		a.rr = map[machine.Module]int{}
	}
	out := make([]*machine.Node, n)
	for i := range out {
		out[i] = pool[(a.rr[mod]+i)%len(pool)]
	}
	a.rr[mod] = (a.rr[mod] + n) % len(pool)
	return out, nil
}

// NewManager builds a manager with all nodes of the system free.
func NewManager(sys *machine.System) *Manager {
	m := &Manager{
		sys:   sys,
		free:  map[machine.Module][]*machine.Node{},
		alloc: map[int]*Allocation{},
		rr:    map[machine.Module]int{},
	}
	for _, mod := range sys.Modules() {
		m.free[mod] = append([]*machine.Node(nil), sys.Module(mod)...)
	}
	return m
}

// FreeCount returns the number of free nodes in a module.
func (m *Manager) FreeCount(mod machine.Module) int {
	return len(m.free[mod])
}

// Alloc reserves cluster + booster nodes. It fails without side effects if
// either module cannot satisfy the request.
func (m *Manager) Alloc(cluster, booster int) (*Allocation, error) {
	if cluster < 0 || booster < 0 {
		return nil, fmt.Errorf("sched: negative allocation request (%d, %d)", cluster, booster)
	}
	if cluster > len(m.free[machine.Cluster]) {
		return nil, fmt.Errorf("sched: %d cluster nodes requested, %d free", cluster, len(m.free[machine.Cluster]))
	}
	if booster > len(m.free[machine.Booster]) {
		return nil, fmt.Errorf("sched: %d booster nodes requested, %d free", booster, len(m.free[machine.Booster]))
	}
	m.next++
	a := &Allocation{ID: m.next}
	a.Cluster, m.free[machine.Cluster] = take(m.free[machine.Cluster], cluster)
	a.Booster, m.free[machine.Booster] = take(m.free[machine.Booster], booster)
	m.alloc[a.ID] = a
	return a, nil
}

func take(pool []*machine.Node, n int) (got, rest []*machine.Node) {
	got = append([]*machine.Node(nil), pool[:n]...)
	rest = pool[n:]
	return got, rest
}

// Release returns an allocation's nodes to the free pools. Releasing an
// unknown allocation is a no-op (idempotent release).
func (m *Manager) Release(a *Allocation) {
	if a == nil {
		return
	}
	if _, ok := m.alloc[a.ID]; !ok {
		return
	}
	delete(m.alloc, a.ID)
	m.free[machine.Cluster] = append(m.free[machine.Cluster], a.Cluster...)
	m.free[machine.Booster] = append(m.free[machine.Booster], a.Booster...)
	sortByID(m.free[machine.Cluster])
	sortByID(m.free[machine.Booster])
}

func sortByID(ns []*machine.Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
}

// Grow extends an existing allocation by extra nodes of one module — the
// malleability primitive of ref [5]. Returns the added nodes.
func (m *Manager) Grow(a *Allocation, mod machine.Module, extra int) ([]*machine.Node, error) {
	if extra < 0 || extra > len(m.free[mod]) {
		return nil, fmt.Errorf("sched: cannot grow by %d %v nodes (%d free)", extra, mod, len(m.free[mod]))
	}
	var got []*machine.Node
	got, m.free[mod] = take(m.free[mod], extra)
	switch mod {
	case machine.Cluster:
		a.Cluster = append(a.Cluster, got...)
	case machine.Booster:
		a.Booster = append(a.Booster, got...)
	}
	return got, nil
}

// Shrink releases the last n nodes of one module from the allocation.
func (m *Manager) Shrink(a *Allocation, mod machine.Module, n int) error {
	pool := &a.Cluster
	if mod == machine.Booster {
		pool = &a.Booster
	}
	if n < 0 || n > len(*pool) {
		return fmt.Errorf("sched: cannot shrink %v side by %d (have %d)", mod, n, len(*pool))
	}
	cut := (*pool)[len(*pool)-n:]
	*pool = (*pool)[:len(*pool)-n]
	m.free[mod] = append(m.free[mod], cut...)
	sortByID(m.free[mod])
	return nil
}

// PlaceSpawn implements psmpi.Placement: spawned groups prefer free nodes of
// the target module and fall back to round-robin over all module nodes
// (oversubscription), which is how a small prototype keeps spawns running
// when the module is fully booked.
func (m *Manager) PlaceSpawn(n int, mod machine.Module) ([]*machine.Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: spawn of %d procs", n)
	}
	if free := m.free[mod]; len(free) > 0 {
		out := make([]*machine.Node, n)
		for i := range out {
			out[i] = free[i%len(free)]
		}
		return out, nil
	}
	all := m.sys.Module(mod)
	if len(all) == 0 {
		return nil, fmt.Errorf("sched: module %v has no nodes", mod)
	}
	out := make([]*machine.Node, n)
	for i := range out {
		out[i] = all[(m.rr[mod]+i)%len(all)]
	}
	m.rr[mod] = (m.rr[mod] + n) % len(all)
	return out, nil
}
