package sched

import (
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// complementaryMix is the §II-A scenario: CPU-heavy and accelerator-heavy
// jobs that a modular system can co-schedule but an accelerated cluster
// cannot.
func complementaryMix() []Job {
	return []Job{
		{ID: 1, Cluster: 8, Booster: 0, Duration: 10 * vclock.Second},
		{ID: 2, Cluster: 0, Booster: 8, Duration: 10 * vclock.Second},
		{ID: 3, Cluster: 8, Booster: 0, Duration: 10 * vclock.Second},
		{ID: 4, Cluster: 0, Booster: 8, Duration: 10 * vclock.Second},
	}
}

func TestModularBeatsAcceleratedOnComplementaryMix(t *testing.T) {
	// Modular machine: 8 cluster + 8 booster nodes, reserved independently.
	m := NewManager(machine.New(8, 8))
	mod, err := m.SimulateQueue(complementaryMix(), FCFS)
	if err != nil {
		t.Fatal(err)
	}
	// Accelerated cluster: 8 paired nodes (same total CPU + accel count).
	acc, err := SimulateAcceleratedQueue(complementaryMix(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Modular: CPU job and accel job run simultaneously → 20 s total.
	if mod.Makespan != 20*vclock.Second {
		t.Errorf("modular makespan %v, want 20s", mod.Makespan)
	}
	// Accelerated: every job binds whole nodes → strictly serial → 40 s.
	if acc.Makespan != 40*vclock.Second {
		t.Errorf("accelerated makespan %v, want 40s", acc.Makespan)
	}
	if mod.Makespan >= acc.Makespan {
		t.Error("modular reservation shows no advantage")
	}
}

func TestAcceleratedMixedJobEquivalent(t *testing.T) {
	// A balanced job (c == b) is equally served by both architectures.
	jobs := []Job{{ID: 1, Cluster: 4, Booster: 4, Duration: 5 * vclock.Second}}
	m := NewManager(machine.New(4, 4))
	mod, err := m.SimulateQueue(jobs, FCFS)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := SimulateAcceleratedQueue(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Makespan != acc.Makespan {
		t.Errorf("balanced job differs: modular %v vs accelerated %v", mod.Makespan, acc.Makespan)
	}
}

func TestAcceleratedValidation(t *testing.T) {
	if _, err := SimulateAcceleratedQueue(nil, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	jobs := []Job{{ID: 1, Cluster: 9, Duration: vclock.Second}}
	if _, err := SimulateAcceleratedQueue(jobs, 8); err == nil {
		t.Error("oversized job accepted")
	}
}

func TestAcceleratedRespectsArrivals(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cluster: 8, Duration: 2 * vclock.Second},
		{ID: 2, Booster: 8, Arrival: 10 * vclock.Second, Duration: vclock.Second},
	}
	acc, err := SimulateAcceleratedQueue(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Placed[1].Start != 10*vclock.Second {
		t.Errorf("job 2 started at %v", acc.Placed[1].Start)
	}
}
