package sched

import (
	"reflect"
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// sec converts to virtual seconds tersely.
func sec(s float64) vclock.Time { return vclock.Time(s) }

// TestBackfillReservationInvariant pins the conservative-backfill guarantee
// on the kernel: a continuous stream of small jobs must never delay the
// blocked head job past its reservation (the earliest start assuming
// running jobs release on time) — EASY-style aggressive backfill would
// starve it, conservative backfill must not.
func TestBackfillReservationInvariant(t *testing.T) {
	m := NewManager(machine.New(4, 4))
	jobs := []Job{
		// Occupies the whole Cluster side until t=10.
		{ID: 1, Cluster: 4, Booster: 0, Arrival: 0, Duration: sec(10)},
		// Head: needs the full machine; reservation at t=10.
		{ID: 2, Cluster: 4, Booster: 4, Arrival: sec(1), Duration: sec(10)},
	}
	// A small Booster job arrives every second; those finishing by t=10
	// backfill, the t=9 arrival (9+2 > 10) must wait behind the head.
	for i := 0; i < 9; i++ {
		jobs = append(jobs, Job{ID: 3 + i, Cluster: 0, Booster: 1,
			Arrival: sec(float64(1 + i)), Duration: sec(2)})
	}
	sched, cnt, err := m.simulateQueue(jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Placed{}
	for _, p := range sched.Placed {
		byID[p.Job.ID] = p
	}
	if got := byID[2].Start; got != sec(10) {
		t.Fatalf("head started at %v, reservation was 10s", got)
	}
	for i := 3; i <= 10; i++ { // arrivals t=1..8 fit before the reservation
		if got := byID[i].Start; got != jobs[i-1].Arrival {
			t.Fatalf("job %d backfilled at %v, want its arrival %v", i, got, jobs[i-1].Arrival)
		}
	}
	// The t=9 arrival would overrun the reservation: it waits for the head.
	if got := byID[11].Start; got != sec(20) {
		t.Fatalf("late small job started at %v, want 20s (after the head)", got)
	}
	if cnt.backfilled != 8 {
		t.Fatalf("backfilled = %d, want 8", cnt.backfilled)
	}
}

// TestMalleableShrinkBelowMinimumRejected: a malleable job must wait rather
// than start below its minima.
func TestMalleableShrinkBelowMinimumRejected(t *testing.T) {
	m := NewManager(machine.New(8, 8))
	jobs := []Job{
		{ID: 1, Cluster: 6, Booster: 6, Arrival: 0, Duration: sec(10)},
		{ID: 2, Cluster: 8, Booster: 8, Arrival: sec(1), Duration: sec(4),
			Malleable: true, MinCluster: 4, MinBooster: 4},
	}
	sched, cnt, err := m.simulateQueue(jobs, Backfill)
	if err != nil {
		t.Fatal(err)
	}
	p := sched.Placed[1]
	if p.Job.ID != 2 || p.Start != sec(10) {
		t.Fatalf("malleable job started at %v with 2/2 free nodes, want a wait until 10s", p.Start)
	}
	if p.Cluster != 8 || p.Booster != 8 {
		t.Fatalf("granted %d/%d after the wait, want the full 8/8", p.Cluster, p.Booster)
	}
	if cnt.shrunk != 0 {
		t.Fatalf("shrunk = %d, want 0 (below-minimum shrink must be rejected)", cnt.shrunk)
	}
}

// TestQueueDrainedTermination: the queue drains to empty between sparse
// arrivals; the kernel must idle across the gaps and terminate cleanly
// instead of tripping the deadlock detector.
func TestQueueDrainedTermination(t *testing.T) {
	m := NewManager(machine.New(2, 2))
	jobs := []Job{
		{ID: 1, Cluster: 2, Booster: 2, Arrival: 0, Duration: sec(1)},
		{ID: 2, Cluster: 2, Booster: 2, Arrival: sec(100), Duration: sec(1)},
		{ID: 3, Cluster: 2, Booster: 2, Arrival: sec(1000), Duration: sec(1)},
	}
	for _, pol := range []Policy{FCFS, Backfill} {
		sched, cnt, err := m.simulateQueue(jobs, pol)
		if err != nil {
			t.Fatal(err)
		}
		if len(sched.Placed) != 3 || sched.Makespan != sec(1001) {
			t.Fatalf("policy %v: placed %d jobs, makespan %v; want 3 and 1001s",
				pol, len(sched.Placed), sched.Makespan)
		}
		if cnt.peakQueue != 1 {
			t.Fatalf("policy %v: peak queue %d, want 1 (queue drains between arrivals)", pol, cnt.peakQueue)
		}
	}
}

// TestAllocationPlaceSpawn: an allocation places spawns round-robin on its
// own nodes only, and refuses modules it holds no nodes of.
func TestAllocationPlaceSpawn(t *testing.T) {
	m := NewManager(machine.New(8, 8))
	a, err := m.Alloc(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := a.PlaceSpawn(4, machine.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	want := []*machine.Node{a.Cluster[0], a.Cluster[1], a.Cluster[0], a.Cluster[1]}
	if !reflect.DeepEqual(nodes, want) {
		t.Fatalf("spawn left the allocation: got %v", nodes)
	}
	// The cursor advances: the next spawn continues round-robin.
	more, err := a.PlaceSpawn(1, machine.Cluster)
	if err != nil {
		t.Fatal(err)
	}
	if more[0] != a.Cluster[0] {
		t.Fatalf("cursor did not wrap: got %v", more[0])
	}
	if _, err := a.PlaceSpawn(1, machine.Booster); err == nil {
		t.Fatal("spawn onto a module the allocation holds no nodes of must fail")
	}
}

// TestFacilityDeterminism: equal params give identical outcomes; the seed
// changes the stream.
func TestFacilityDeterminism(t *testing.T) {
	p := FacilityParams{Policy: FacilityBackfill, Jobs: 200, Load: 1.2, Seed: 7}
	a, err := RunFacility(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFacility(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same params, different outcomes:\n%+v\n%+v", a, b)
	}
	p.Seed = 8
	c, err := RunFacility(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan && c.MeanWait == a.MeanWait {
		t.Fatal("seed change did not change the stream")
	}
}

// TestFacilityPolicies: on one overloaded stream, backfill must not lose to
// FCFS on mean wait, the malleable policy must actually shrink jobs, and
// every policy must run the whole stream.
func TestFacilityPolicies(t *testing.T) {
	outs := map[FacilityPolicy]FacilityOutcome{}
	for _, pol := range FacilityPolicies() {
		out, err := RunFacility(FacilityParams{Policy: pol, Jobs: 400, Load: 1.4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if out.Jobs != 400 {
			t.Fatalf("%s: completed %d of 400 jobs", pol, out.Jobs)
		}
		outs[pol] = out
	}
	if outs[FacilityBackfill].Backfilled == 0 {
		t.Fatal("backfill policy never backfilled")
	}
	if outs[FacilityFCFS].Backfilled != 0 || outs[FacilityFCFS].Shrunk != 0 {
		t.Fatal("fcfs policy backfilled or shrank")
	}
	if outs[FacilityMalleable].Shrunk == 0 {
		t.Fatal("malleable policy never shrank a job")
	}
	if outs[FacilityBackfill].MeanWait > outs[FacilityFCFS].MeanWait {
		t.Fatalf("backfill mean wait %v worse than fcfs %v",
			outs[FacilityBackfill].MeanWait, outs[FacilityFCFS].MeanWait)
	}
}

// TestFacilityRejectsBadParams covers the validation surface.
func TestFacilityRejectsBadParams(t *testing.T) {
	for _, p := range []FacilityParams{
		{Policy: FacilityFCFS, Jobs: 0, Load: 1},
		{Policy: FacilityFCFS, Jobs: 10, Load: 0},
		{Policy: "easy", Jobs: 10, Load: 1},
		{Policy: FacilityFCFS, Jobs: 10, Load: 1, ClusterNodes: -1},
	} {
		if _, err := RunFacility(p); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
}

// TestFacilityThousandJobs: the acceptance-scale stream — a thousand jobs
// on one kernel — completes and keeps both pools busy.
func TestFacilityThousandJobs(t *testing.T) {
	out, err := RunFacility(FacilityParams{Policy: FacilityBackfill, Jobs: 1000, Load: 1.0, Seed: 20180521})
	if err != nil {
		t.Fatal(err)
	}
	if out.Jobs != 1000 {
		t.Fatalf("completed %d of 1000 jobs", out.Jobs)
	}
	if out.UtilCluster <= 0.3 || out.UtilBooster <= 0.3 {
		t.Fatalf("utilization %.2f/%.2f suspiciously low at load 1.0", out.UtilCluster, out.UtilBooster)
	}
	if out.Events < 1000 {
		t.Fatalf("only %d kernel events for a 1000-job stream", out.Events)
	}
}
