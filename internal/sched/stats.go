package sched

import (
	"fmt"
	"sync/atomic"
)

// Process-wide batch-queue counters, maintained with atomics: queue runs
// tick them from whatever sweep worker runs the owning scenario. They mirror
// engine's kernel counters and ioev's I/O counters — cheap monotonic
// aggregates for the -stats flag, never consulted by the scheduler itself
// (experiment metrics are computed deterministically from schedule state,
// not from these).
var global struct {
	submitted  atomic.Uint64
	started    atomic.Uint64
	backfilled atomic.Uint64
	shrunk     atomic.Uint64
	peakQueue  atomic.Uint64
}

// noteQueueRun folds one queue run's counters into the process-wide totals
// (one bulk update per run, not one per job).
func noteQueueRun(c queueCounters) {
	global.submitted.Add(uint64(c.submitted))
	global.started.Add(uint64(c.started))
	global.backfilled.Add(uint64(c.backfilled))
	global.shrunk.Add(uint64(c.shrunk))
	for {
		cur := global.peakQueue.Load()
		if uint64(c.peakQueue) <= cur || global.peakQueue.CompareAndSwap(cur, uint64(c.peakQueue)) {
			return
		}
	}
}

// Stats is a snapshot of the process-wide batch-queue counters.
type Stats struct {
	// Submitted is the number of jobs that entered a queue.
	Submitted uint64
	// Started is the number of jobs granted nodes.
	Started uint64
	// Backfilled is the number of jobs started ahead of the queue head.
	Backfilled uint64
	// Shrunk is the number of malleable jobs started below requested size.
	Shrunk uint64
	// PeakQueue is the high-water mark of jobs waiting in any single queue.
	PeakQueue uint64
}

// Global snapshots the process-wide batch-queue counters.
func Global() Stats {
	return Stats{
		Submitted:  global.submitted.Load(),
		Started:    global.started.Load(),
		Backfilled: global.backfilled.Load(),
		Shrunk:     global.shrunk.Load(),
		PeakQueue:  global.peakQueue.Load(),
	}
}

// String renders the counters in the -stats flag format.
func (s Stats) String() string {
	return fmt.Sprintf("jobs=%d started=%d backfilled=%d shrunk=%d peak_queue=%d",
		s.Submitted, s.Started, s.Backfilled, s.Shrunk, s.PeakQueue)
}
