package sched

import (
	"fmt"
	"sync/atomic"
)

// Process-wide batch-queue counters, maintained with atomics: queue runs
// tick them from whatever sweep worker runs the owning scenario. They mirror
// engine's kernel counters and ioev's I/O counters — cheap monotonic
// aggregates for the -stats flag, never consulted by the scheduler itself
// (experiment metrics are computed deterministically from schedule state,
// not from these).
var global struct {
	submitted  atomic.Uint64
	started    atomic.Uint64
	backfilled atomic.Uint64
	shrunk     atomic.Uint64
	peakQueue  atomic.Uint64
	failures   atomic.Uint64
	repairs    atomic.Uint64
	requeues   atomic.Uint64
	abandoned  atomic.Uint64
	// lostNodeUs accumulates lost virtual node-time in integer microseconds
	// (node-µs), so the float metric stays a single atomic add.
	lostNodeUs atomic.Uint64
}

// noteQueueRun folds one queue run's counters into the process-wide totals
// (one bulk update per run, not one per job).
func noteQueueRun(c queueCounters) {
	global.submitted.Add(uint64(c.submitted))
	global.started.Add(uint64(c.started))
	global.backfilled.Add(uint64(c.backfilled))
	global.shrunk.Add(uint64(c.shrunk))
	global.failures.Add(uint64(c.failures))
	global.repairs.Add(uint64(c.repairs))
	global.requeues.Add(uint64(c.requeues))
	global.abandoned.Add(uint64(c.abandoned))
	if c.lostNodeSec > 0 {
		global.lostNodeUs.Add(uint64(c.lostNodeSec*1e6 + 0.5))
	}
	for {
		cur := global.peakQueue.Load()
		if uint64(c.peakQueue) <= cur || global.peakQueue.CompareAndSwap(cur, uint64(c.peakQueue)) {
			return
		}
	}
}

// Stats is a snapshot of the process-wide batch-queue counters.
type Stats struct {
	// Submitted is the number of jobs that entered a queue.
	Submitted uint64
	// Started is the number of job attempts granted nodes (a requeued job
	// counts once per attempt).
	Started uint64
	// Backfilled is the number of jobs started ahead of the queue head.
	Backfilled uint64
	// Shrunk is the number of malleable jobs started below requested size.
	Shrunk uint64
	// PeakQueue is the high-water mark of jobs waiting in any single queue.
	PeakQueue uint64
	// Failures and Repairs count facility node failures and completed
	// repairs; Requeues counts jobs killed and re-entered into a queue;
	// Abandoned counts jobs dropped after exhausting their retry budget.
	Failures  uint64
	Repairs   uint64
	Requeues  uint64
	Abandoned uint64
	// LostNodeSec is virtual node-time whose work did not survive kills.
	LostNodeSec float64
}

// Global snapshots the process-wide batch-queue counters.
func Global() Stats {
	return Stats{
		Submitted:   global.submitted.Load(),
		Started:     global.started.Load(),
		Backfilled:  global.backfilled.Load(),
		Shrunk:      global.shrunk.Load(),
		PeakQueue:   global.peakQueue.Load(),
		Failures:    global.failures.Load(),
		Repairs:     global.repairs.Load(),
		Requeues:    global.requeues.Load(),
		Abandoned:   global.abandoned.Load(),
		LostNodeSec: float64(global.lostNodeUs.Load()) / 1e6,
	}
}

// String renders the counters in the -stats flag format.
func (s Stats) String() string {
	return fmt.Sprintf("jobs=%d started=%d backfilled=%d shrunk=%d peak_queue=%d failures=%d repairs=%d requeues=%d abandoned=%d lost_node_s=%.3f",
		s.Submitted, s.Started, s.Backfilled, s.Shrunk, s.PeakQueue,
		s.Failures, s.Repairs, s.Requeues, s.Abandoned, s.LostNodeSec)
}
