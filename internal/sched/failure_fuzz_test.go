package sched

import (
	"reflect"
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// FuzzFacilityFaults drives random failure/repair interleavings over a
// small machine against the independent capacity-accounting oracle
// (capacityOracle in failure_test.go): at every capacity-changing event,
// free + allocated-to-running + failed must equal the module's total — a
// requeued job can never hold nodes twice, a repair can never mint a node.
// The input bytes pick the machine shape, the queue policy, both modules'
// MTBF/MTTR, the retry/checkpoint policy and the job stream; every decoded
// configuration must also account for the whole stream (completed +
// abandoned == submitted) and replay bit-identically.
func FuzzFacilityFaults(f *testing.F) {
	// Seeds covering the interesting regimes: a tiny machine under harsh
	// faults, a backfill queue with malleable jobs, a cluster-only failure
	// process, and a checkpoint-heavy stream.
	f.Add([]byte{2, 1, 1, 20, 10, 0, 10, 0, 7, 8, 3, 2, 1, 30, 4, 50, 1, 1, 100, 0})
	f.Add([]byte{4, 4, 0, 0, 5, 60, 5, 1, 1, 16, 2, 4, 0, 6, 10, 2, 2, 40, 1, 80, 1, 0, 120, 2})
	f.Add([]byte{1, 1, 1, 5, 2, 5, 2, 3, 3, 64, 1, 1, 1, 12, 2, 0, 1, 200})
	f.Add([]byte{3, 2, 1, 200, 40, 150, 30, 9, 9, 32, 4, 8, 1, 25, 8, 10, 2, 1, 60, 1, 20, 0, 2, 90, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			v := data[i]
			i++
			return v
		}
		c := 1 + int(next())%4
		b := 1 + int(next())%4
		policy := FCFS
		if next()%2 == 1 {
			policy = Backfill
		}
		profile := func() machine.FailureProfile {
			mtbf := next()
			if mtbf == 0 {
				return machine.FailureProfile{}
			}
			return machine.FailureProfile{
				MTBF: vclock.Time(float64(mtbf) / 200),
				MTTR: vclock.Time(float64(1+int(next())%50) / 200),
			}
		}
		faults := FacilityFaults{
			Cluster:      profile(),
			Booster:      profile(),
			Seed:         int64(next())<<8 | int64(next()),
			MaxFailures:  1 + int(next())%128,
			MaxRetries:   1 + int(next())%8,
			RequeueDelay: vclock.Time(float64(1+int(next())%20) / 1000),
		}
		if !faults.Enabled() {
			faults.Cluster = machine.FailureProfile{MTBF: 0.1, MTTR: 0.02}
		}
		if next()%2 == 1 {
			faults.Rewind = testCkpt{every: vclock.Time(float64(1+int(next())%30) / 100)}
		}
		njobs := 1 + int(next())%12
		jobs := make([]Job, 0, njobs)
		arrival := vclock.Time(0)
		for id := 1; id <= njobs; id++ {
			arrival += vclock.Time(float64(int(next())%100) / 100)
			jc := int(next()) % (c + 1)
			jb := int(next()) % (b + 1)
			if jc+jb == 0 {
				jb = 1
			}
			j := Job{ID: id, Cluster: jc, Booster: jb,
				Arrival: arrival, Duration: vclock.Time(float64(int(next())%200) / 100)}
			if next()%4 == 0 {
				j.Malleable = true
				if jc > 0 {
					j.MinCluster = 1 + int(next())%jc
				}
				if jb > 0 {
					j.MinBooster = 1 + int(next())%jb
				}
			}
			jobs = append(jobs, j)
		}

		sched1, cnt1, fr1 := runFaulty(t, c, b, jobs, policy, faults)
		// The whole run must replay bit-identically: the failure/repair
		// processes, requeues and grants are kernel events of a seeded
		// simulation, never host-dependent.
		sched2, cnt2, fr2 := runFaulty(t, c, b, jobs, policy, faults)
		if !reflect.DeepEqual(sched1, sched2) || !reflect.DeepEqual(cnt1, cnt2) {
			t.Fatal("faulty queue run is not deterministic across replays")
		}
		for _, mod := range []machine.Module{machine.Cluster, machine.Booster} {
			if fr1.availability(mod) != fr2.availability(mod) ||
				fr1.utilisation(mod) != fr2.utilisation(mod) {
				t.Fatalf("module %v integrals drifted across replays", mod)
			}
		}
	})
}
