package sched

import (
	"fmt"
	"sort"

	"clusterbooster/internal/vclock"
)

// This file implements the architectural comparison behind §II-A of the
// paper: "the Cluster-Booster concept poses no constraints on the
// combination of CPU and accelerator nodes that an application may select,
// since resources are reserved and allocated independently. ... all
// resources can be put to good use by a system-wide resource manager."
//
// In a conventional *accelerated cluster*, every node statically pairs a CPU
// with an accelerator: a job occupies whole nodes, so a CPU-only job strands
// accelerators and vice versa. SimulateAcceleratedQueue schedules the same
// job mix on such a machine, letting benchmarks quantify the throughput
// advantage of modular (independent) reservation.

// SimulateAcceleratedQueue schedules jobs on an accelerated cluster with
// pairedNodes nodes (each one CPU + one accelerator). A job requesting c
// cluster nodes and b booster nodes needs max(c, b) paired nodes, binding
// both halves of each node for its whole runtime. FCFS discipline.
func SimulateAcceleratedQueue(jobs []Job, pairedNodes int) (Schedule, error) {
	if pairedNodes <= 0 {
		return Schedule{}, fmt.Errorf("sched: %d paired nodes", pairedNodes)
	}
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	var sched Schedule
	type ev struct {
		at    vclock.Time
		nodes int
	}
	var running []ev
	free := pairedNodes
	now := vclock.Time(0)

	advanceTo := func(t vclock.Time) {
		now = t
		kept := running[:0]
		for _, e := range running {
			if e.at <= now {
				free += e.nodes
			} else {
				kept = append(kept, e)
			}
		}
		running = kept
	}

	for _, j := range queue {
		need := j.Cluster
		if j.Booster > need {
			need = j.Booster
		}
		if need > pairedNodes {
			return Schedule{}, fmt.Errorf("sched: job %d needs %d paired nodes, machine has %d", j.ID, need, pairedNodes)
		}
		if j.Arrival > now {
			advanceTo(j.Arrival)
		}
		for free < need {
			next := vclock.Time(-1)
			for _, e := range running {
				if next < 0 || e.at < next {
					next = e.at
				}
			}
			if next < 0 {
				return Schedule{}, fmt.Errorf("sched: job %d cannot start", j.ID)
			}
			advanceTo(next)
		}
		p := Placed{Job: j, Start: now, End: now + j.Duration, Cluster: need, Booster: need}
		sched.Placed = append(sched.Placed, p)
		running = append(running, ev{at: p.End, nodes: need})
		free -= need
		if p.End > sched.Makespan {
			sched.Makespan = p.End
		}
	}
	return sched, nil
}
