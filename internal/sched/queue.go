package sched

import (
	"fmt"
	"sort"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Job is a batch job request.
type Job struct {
	ID      int
	Name    string
	Cluster int // requested cluster nodes
	Booster int // requested booster nodes
	Arrival vclock.Time
	// Duration is the (assumed exact) runtime once started. A real system
	// works with estimates; the simulation keeps it simple and exact.
	Duration vclock.Time
	// Malleable jobs may start with fewer nodes, down to the given minima
	// (ref [5]); runtime stretches proportionally to the largest shrink
	// factor across modules.
	Malleable  bool
	MinCluster int
	MinBooster int
}

// Policy selects the queue discipline.
type Policy int

const (
	// FCFS starts jobs strictly in arrival order; a blocked head blocks the
	// queue.
	FCFS Policy = iota
	// Backfill is FCFS with conservative backfilling: later jobs may jump
	// ahead if they fit in the current hole without delaying the head job's
	// earliest possible start.
	Backfill
)

// Placed describes one scheduled job.
type Placed struct {
	Job     Job
	Start   vclock.Time
	End     vclock.Time
	Cluster int // granted nodes (may be < requested for malleable jobs)
	Booster int
}

// Wait returns the job's queue wait time.
func (p Placed) Wait() vclock.Time { return p.Start - p.Job.Arrival }

// Schedule is the outcome of a queue simulation.
type Schedule struct {
	Placed   []Placed
	Makespan vclock.Time
}

// AverageWait returns the mean queue wait across jobs.
func (s Schedule) AverageWait() vclock.Time {
	if len(s.Placed) == 0 {
		return 0
	}
	var sum vclock.Time
	for _, p := range s.Placed {
		sum += p.Wait()
	}
	return sum / vclock.Time(len(s.Placed))
}

// Utilisation returns node-time used divided by node-time available over the
// makespan, for one module.
func (s Schedule) Utilisation(m *Manager, mod machine.Module) float64 {
	total := float64(len(m.sys.Module(mod))) * s.Makespan.Seconds()
	if total == 0 {
		return 0
	}
	var used float64
	for _, p := range s.Placed {
		n := p.Cluster
		if mod == machine.Booster {
			n = p.Booster
		}
		used += float64(n) * (p.End - p.Start).Seconds()
	}
	return used / total
}

// event tracks node release times during queue simulation.
type event struct {
	at      vclock.Time
	cluster int
	booster int
}

// SimulateQueue schedules the jobs (sorted by arrival) under the policy and
// returns the resulting schedule. It does not touch the manager's online
// allocation state; it is a planning computation over total node counts.
func (m *Manager) SimulateQueue(jobs []Job, policy Policy) (Schedule, error) {
	totalC := m.sys.NodeCount(machine.Cluster)
	totalB := m.sys.NodeCount(machine.Booster)
	for _, j := range jobs {
		needC, needB := j.Cluster, j.Booster
		if j.Malleable {
			needC, needB = j.MinCluster, j.MinBooster
		}
		if needC > totalC || needB > totalB {
			return Schedule{}, fmt.Errorf("sched: job %d (%s) can never run: needs %d/%d of %d/%d nodes",
				j.ID, j.Name, needC, needB, totalC, totalB)
		}
	}
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	var sched Schedule
	var running []event
	freeC, freeB := totalC, totalB
	now := vclock.Time(0)

	advanceTo := func(t vclock.Time) {
		now = t
		kept := running[:0]
		for _, e := range running {
			if e.at <= now {
				freeC += e.cluster
				freeB += e.booster
			} else {
				kept = append(kept, e)
			}
		}
		running = kept
	}

	// nextRelease returns the earliest pending release time, or -1.
	nextRelease := func() vclock.Time {
		t := vclock.Time(-1)
		for _, e := range running {
			if t < 0 || e.at < t {
				t = e.at
			}
		}
		return t
	}

	place := func(j Job, grantedC, grantedB int, stretch float64) {
		dur := vclock.Time(j.Duration.Seconds() * stretch)
		p := Placed{Job: j, Start: now, End: now + dur, Cluster: grantedC, Booster: grantedB}
		sched.Placed = append(sched.Placed, p)
		running = append(running, event{at: p.End, cluster: grantedC, booster: grantedB})
		freeC -= grantedC
		freeB -= grantedB
		if p.End > sched.Makespan {
			sched.Makespan = p.End
		}
	}

	// tryStart attempts to start job j now, honouring malleability.
	tryStart := func(j Job) bool {
		if j.Cluster <= freeC && j.Booster <= freeB {
			place(j, j.Cluster, j.Booster, 1)
			return true
		}
		if !j.Malleable {
			return false
		}
		gc := min(j.Cluster, freeC)
		gb := min(j.Booster, freeB)
		if gc < j.MinCluster || gb < j.MinBooster {
			return false
		}
		stretch := 1.0
		if j.Cluster > 0 && gc > 0 {
			stretch = max64(stretch, float64(j.Cluster)/float64(gc))
		}
		if j.Booster > 0 && gb > 0 {
			stretch = max64(stretch, float64(j.Booster)/float64(gb))
		}
		place(j, gc, gb, stretch)
		return true
	}

	for i := 0; i < len(queue); {
		head := queue[i]
		if head.Arrival > now {
			advanceTo(head.Arrival)
		}
		if tryStart(head) {
			i++
			continue
		}
		if policy == Backfill {
			// Earliest possible start of the head job, assuming all running
			// jobs release on time.
			headStart := headStartEstimate(head, running, freeC, freeB, now)
			for k := i + 1; k < len(queue); k++ {
				cand := queue[k]
				if cand.Arrival > now || cand.Cluster > freeC || cand.Booster > freeB {
					continue
				}
				if now+cand.Duration <= headStart {
					place(cand, cand.Cluster, cand.Booster, 1)
					queue = append(queue[:k], queue[k+1:]...)
					k--
				}
			}
		}
		// Wait for the next release (or next arrival if sooner).
		nr := nextRelease()
		if i < len(queue) && queue[i].Arrival > now && (nr < 0 || queue[i].Arrival < nr) {
			advanceTo(queue[i].Arrival)
			continue
		}
		if nr < 0 {
			return Schedule{}, fmt.Errorf("sched: job %d (%s) cannot start and nothing is running", head.ID, head.Name)
		}
		advanceTo(nr)
	}
	return sched, nil
}

// headStartEstimate computes when the head job could start if released
// resources accumulate on schedule.
func headStartEstimate(head Job, running []event, freeC, freeB int, now vclock.Time) vclock.Time {
	evs := append([]event(nil), running...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	c, b := freeC, freeB
	if head.Cluster <= c && head.Booster <= b {
		return now
	}
	for _, e := range evs {
		c += e.cluster
		b += e.booster
		if head.Cluster <= c && head.Booster <= b {
			return e.at
		}
	}
	return vclock.Time(1 << 62) // unreachable for valid jobs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
