package sched

import (
	"fmt"
	"sort"

	"clusterbooster/internal/engine"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Job is a batch job request.
type Job struct {
	ID      int
	Name    string
	Cluster int // requested cluster nodes
	Booster int // requested booster nodes
	Arrival vclock.Time
	// Duration is the (assumed exact) runtime once started. A real system
	// works with estimates; the simulation keeps it simple and exact.
	Duration vclock.Time
	// Malleable jobs may start with fewer nodes, down to the given minima
	// (ref [5]); runtime stretches proportionally to the largest shrink
	// factor across modules.
	Malleable  bool
	MinCluster int
	MinBooster int
}

// Policy selects the queue discipline.
type Policy int

const (
	// FCFS starts jobs strictly in arrival order; a blocked head blocks the
	// queue.
	FCFS Policy = iota
	// Backfill is FCFS with conservative backfilling: later jobs may jump
	// ahead if they fit in the current hole without delaying the head job's
	// earliest possible start.
	Backfill
)

// Placed describes one scheduled job.
type Placed struct {
	Job     Job
	Start   vclock.Time
	End     vclock.Time
	Cluster int // granted nodes (may be < requested for malleable jobs)
	Booster int
}

// Wait returns the job's queue wait time.
func (p Placed) Wait() vclock.Time { return p.Start - p.Job.Arrival }

// Schedule is the outcome of a queue simulation.
type Schedule struct {
	Placed   []Placed
	Makespan vclock.Time
}

// AverageWait returns the mean queue wait across jobs.
func (s Schedule) AverageWait() vclock.Time {
	if len(s.Placed) == 0 {
		return 0
	}
	var sum vclock.Time
	for _, p := range s.Placed {
		sum += p.Wait()
	}
	return sum / vclock.Time(len(s.Placed))
}

// Utilisation returns node-time used divided by node-time available over the
// makespan, for one module.
func (s Schedule) Utilisation(m *Manager, mod machine.Module) float64 {
	total := float64(len(m.sys.Module(mod))) * s.Makespan.Seconds()
	if total == 0 {
		return 0
	}
	var used float64
	for _, p := range s.Placed {
		n := p.Cluster
		if mod == machine.Booster {
			n = p.Booster
		}
		used += float64(n) * (p.End - p.Start).Seconds()
	}
	return used / total
}

// event tracks node release times during head-start estimation.
type event struct {
	at      vclock.Time
	cluster int
	booster int
}

// qjob is one job's live state inside a kernel queue run.
type qjob struct {
	job  Job
	task *engine.Task

	granted    bool
	grantedC   int
	grantedB   int
	start, end vclock.Time
	backfilled bool
	shrunk     bool
}

// queueCounters aggregates one queue run's scheduler activity; the totals
// feed the process-wide Stats and the facility metrics.
type queueCounters struct {
	submitted  int
	started    int
	backfilled int
	shrunk     int
	peakQueue  int // high-water mark of jobs waiting in the queue
	events     uint64
}

// queueRun is the scheduler state of one kernel queue simulation. Every
// field is kernel state: it is only ever touched while one of the run's
// tasks holds the engine baton, so — like the Manager — it needs no lock.
type queueRun struct {
	policy Policy
	freeC  int
	freeB  int

	pending []*qjob // arrived, waiting for a grant, in arrival order
	running []*qjob // granted, not yet completed

	sched Schedule
	cnt   queueCounters
}

// SimulateQueue schedules the jobs (sorted by arrival) under the policy and
// returns the resulting schedule. It does not touch the manager's online
// allocation state; it is a planning computation over total node counts.
//
// Each job runs as an engine.Task: the task starts at the job's arrival,
// enqueues itself and parks until the scheduler — re-run at every arrival
// and completion event, under the baton — grants its nodes with a kernel
// wakeup. A granted task sleeps out its runtime in virtual time, releases
// its nodes and re-dispatches. If the queue can make no progress (head
// blocked, nothing running) the kernel's deadlock detector poisons the
// parked tasks and the error surfaces here.
func (m *Manager) SimulateQueue(jobs []Job, policy Policy) (Schedule, error) {
	sched, _, err := m.simulateQueue(jobs, policy)
	return sched, err
}

// simulateQueue is SimulateQueue plus the scheduler activity counters the
// facility layer reports.
func (m *Manager) simulateQueue(jobs []Job, policy Policy) (Schedule, queueCounters, error) {
	totalC := m.sys.NodeCount(machine.Cluster)
	totalB := m.sys.NodeCount(machine.Booster)
	for _, j := range jobs {
		needC, needB := j.Cluster, j.Booster
		if j.Malleable {
			needC, needB = j.MinCluster, j.MinBooster
		}
		if needC > totalC || needB > totalB {
			return Schedule{}, queueCounters{}, fmt.Errorf("sched: job %d (%s) can never run: needs %d/%d of %d/%d nodes",
				j.ID, j.Name, needC, needB, totalC, totalB)
		}
	}
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	q := &queueRun{policy: policy, freeC: totalC, freeB: totalB}
	eng := engine.New()
	errs := make([]error, len(queue))
	for i, j := range queue {
		qj := &qjob{job: j, task: eng.NewTask(jobTaskName(j))}
		qj.task.StartAt(j.Arrival)
		go q.runJob(qj, &errs[i])
	}
	eng.Run()
	q.cnt.events = eng.Stats().Events
	eng.Recycle()
	noteQueueRun(q.cnt)
	for _, err := range errs {
		if err != nil {
			return Schedule{}, queueCounters{}, err
		}
	}
	return q.sched, q.cnt, nil
}

// jobTaskName renders a job's kernel task name (appears only in failures).
func jobTaskName(j Job) string {
	if j.Name != "" {
		return fmt.Sprintf("job %d (%s)", j.ID, j.Name)
	}
	return fmt.Sprintf("job %d", j.ID)
}

// runJob is one job's task: arrive, queue, park for the grant, sleep out
// the runtime, release, re-dispatch. Kernel poison (deadlock: the head can
// never start and nothing is running) is recovered into the job's error.
func (q *queueRun) runJob(j *qjob, errp *error) {
	defer j.task.Exit()
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*engine.TaskFailure); ok {
				*errp = f
				return
			}
			*errp = fmt.Errorf("sched: job %d (%s) cannot start and nothing is running", j.job.ID, j.job.Name)
		}
	}()
	j.task.WaitStart() // fires at the job's arrival
	q.pending = append(q.pending, j)
	q.cnt.submitted++
	if n := len(q.pending); n > q.cnt.peakQueue {
		q.cnt.peakQueue = n
	}
	q.dispatch(j.job.Arrival, j)
	if !j.granted {
		// Allocation wait: park until a dispatch grants our nodes. The wake
		// arrives at the grant instant, so the task resumes exactly when its
		// reservation starts.
		j.task.Park()
	}
	j.task.SleepUntil(j.end)
	q.freeC += j.grantedC
	q.freeB += j.grantedB
	q.removeRunning(j)
	q.dispatch(j.end, nil)
}

// dispatch re-runs the queue policy at virtual time now, holding the baton.
// self is the job whose task is currently executing (nil from a completion):
// a grant to self just sets its state — the task continues inline — while a
// grant to any other pending job wakes its parked task at now.
func (q *queueRun) dispatch(now vclock.Time, self *qjob) {
	for len(q.pending) > 0 && q.tryStart(q.pending[0], now, self) {
		q.pending[0] = nil
		q.pending = q.pending[1:]
	}
	if q.policy != Backfill || len(q.pending) == 0 {
		return
	}
	// Conservative backfill: the head job holds a reservation at its earliest
	// possible start (assuming running jobs release on time); later pending
	// jobs may start now, at full size only, iff they fit the current hole
	// AND finish by that reservation — backfilling never delays the head.
	headStart := q.headStartEstimate(q.pending[0].job, now)
	kept := q.pending[:1]
	for _, cand := range q.pending[1:] {
		if cand.job.Cluster <= q.freeC && cand.job.Booster <= q.freeB && now+cand.job.Duration <= headStart {
			cand.backfilled = true
			q.cnt.backfilled++
			q.grant(cand, cand.job.Cluster, cand.job.Booster, 1, now, self)
		} else {
			kept = append(kept, cand)
		}
	}
	q.pending = kept
}

// tryStart attempts to start job j now, honouring malleability.
func (q *queueRun) tryStart(j *qjob, now vclock.Time, self *qjob) bool {
	if j.job.Cluster <= q.freeC && j.job.Booster <= q.freeB {
		q.grant(j, j.job.Cluster, j.job.Booster, 1, now, self)
		return true
	}
	if !j.job.Malleable {
		return false
	}
	gc := min(j.job.Cluster, q.freeC)
	gb := min(j.job.Booster, q.freeB)
	if gc < j.job.MinCluster || gb < j.job.MinBooster {
		return false
	}
	stretch := 1.0
	if j.job.Cluster > 0 && gc > 0 {
		stretch = max64(stretch, float64(j.job.Cluster)/float64(gc))
	}
	if j.job.Booster > 0 && gb > 0 {
		stretch = max64(stretch, float64(j.job.Booster)/float64(gb))
	}
	q.grant(j, gc, gb, stretch, now, self)
	return true
}

// grant reserves nodes for j starting now and records the placement. If j's
// task is parked (any job but self) the grant wakes it at the start instant.
func (q *queueRun) grant(j *qjob, gc, gb int, stretch float64, now vclock.Time, self *qjob) {
	dur := vclock.Time(j.job.Duration.Seconds() * stretch)
	j.granted = true
	j.grantedC, j.grantedB = gc, gb
	j.start, j.end = now, now+dur
	if gc < j.job.Cluster || gb < j.job.Booster {
		j.shrunk = true
		q.cnt.shrunk++
	}
	q.freeC -= gc
	q.freeB -= gb
	q.running = append(q.running, j)
	q.cnt.started++
	p := Placed{Job: j.job, Start: j.start, End: j.end, Cluster: gc, Booster: gb}
	q.sched.Placed = append(q.sched.Placed, p)
	if j.end > q.sched.Makespan {
		q.sched.Makespan = j.end
	}
	if j != self {
		j.task.WakeAt(now)
	}
}

// removeRunning drops a completed job from the running set.
func (q *queueRun) removeRunning(j *qjob) {
	for i, r := range q.running {
		if r == j {
			last := len(q.running) - 1
			q.running[i] = q.running[last]
			q.running[last] = nil
			q.running = q.running[:last]
			return
		}
	}
}

// headStartEstimate computes when the head job could start if released
// resources accumulate on schedule.
func (q *queueRun) headStartEstimate(head Job, now vclock.Time) vclock.Time {
	evs := make([]event, 0, len(q.running))
	for _, r := range q.running {
		evs = append(evs, event{at: r.end, cluster: r.grantedC, booster: r.grantedB})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	c, b := q.freeC, q.freeB
	if head.Cluster <= c && head.Booster <= b {
		return now
	}
	for _, e := range evs {
		c += e.cluster
		b += e.booster
		if head.Cluster <= c && head.Booster <= b {
			return e.at
		}
	}
	return vclock.Time(1 << 62) // unreachable for valid jobs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
