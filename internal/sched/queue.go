package sched

import (
	"fmt"
	"sort"

	"clusterbooster/internal/engine"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Job is a batch job request.
type Job struct {
	ID      int
	Name    string
	Cluster int // requested cluster nodes
	Booster int // requested booster nodes
	Arrival vclock.Time
	// Duration is the (assumed exact) runtime once started. A real system
	// works with estimates; the simulation keeps it simple and exact.
	Duration vclock.Time
	// Malleable jobs may start with fewer nodes, down to the given minima
	// (ref [5]); runtime stretches proportionally to the largest shrink
	// factor across modules.
	Malleable  bool
	MinCluster int
	MinBooster int
}

// Policy selects the queue discipline.
type Policy int

const (
	// FCFS starts jobs strictly in arrival order; a blocked head blocks the
	// queue.
	FCFS Policy = iota
	// Backfill is FCFS with conservative backfilling: later jobs may jump
	// ahead if they fit in the current hole without delaying the head job's
	// earliest possible start.
	Backfill
)

// Placed describes one scheduled job.
type Placed struct {
	Job     Job
	Start   vclock.Time
	End     vclock.Time
	Cluster int // granted nodes (may be < requested for malleable jobs)
	Booster int
}

// Wait returns the job's queue wait time.
func (p Placed) Wait() vclock.Time { return p.Start - p.Job.Arrival }

// Schedule is the outcome of a queue simulation.
type Schedule struct {
	Placed   []Placed
	Makespan vclock.Time
}

// AverageWait returns the mean queue wait across jobs.
func (s Schedule) AverageWait() vclock.Time {
	if len(s.Placed) == 0 {
		return 0
	}
	var sum vclock.Time
	for _, p := range s.Placed {
		sum += p.Wait()
	}
	return sum / vclock.Time(len(s.Placed))
}

// Utilisation returns node-time used divided by node-time available over the
// makespan, for one module.
func (s Schedule) Utilisation(m *Manager, mod machine.Module) float64 {
	total := float64(len(m.sys.Module(mod))) * s.Makespan.Seconds()
	if total == 0 {
		return 0
	}
	var used float64
	for _, p := range s.Placed {
		n := p.Cluster
		if mod == machine.Booster {
			n = p.Booster
		}
		used += float64(n) * (p.End - p.Start).Seconds()
	}
	return used / total
}

// event tracks node release times during head-start estimation.
type event struct {
	at      vclock.Time
	cluster int
	booster int
}

// qjob is one job's live state inside a kernel queue run.
type qjob struct {
	job  Job
	task *engine.Task

	granted    bool
	grantedC   int
	grantedB   int
	start, end vclock.Time
	backfilled bool
	shrunk     bool

	// Fault-mode state (queueRun.faults != nil). A job may run several
	// attempts: node failures revoke its allocation, rewind its progress to
	// the best surviving checkpoint and requeue it.
	work      vclock.Time // remaining nominal (unstretched) work
	stretch   float64     // current attempt's malleable stretch factor
	resumed   bool        // next attempt restores from a checkpoint
	retries   int         // revocations suffered so far
	gen       int         // attempt generation; retires stale completions
	done      bool        // completed (terminal)
	abandoned bool        // retry budget exhausted (terminal)
	salvaged  float64     // checkpointed node-seconds carried across attempts
}

// queueCounters aggregates one queue run's scheduler activity; the totals
// feed the process-wide Stats and the facility metrics.
type queueCounters struct {
	submitted  int
	started    int
	backfilled int
	shrunk     int
	peakQueue  int // high-water mark of jobs waiting in the queue
	events     uint64
	// Fault-mode activity (zero on failure-free runs).
	failures    int
	repairs     int
	requeues    int
	abandoned   int
	lostNodeSec float64
}

// queueRun is the scheduler state of one kernel queue simulation. Every
// field is kernel state: it is only ever touched while one of the run's
// tasks holds the engine baton, so — like the Manager — it needs no lock.
type queueRun struct {
	policy Policy
	freeC  int
	freeB  int

	pending []*qjob // arrived, waiting for a grant, in arrival order
	running []*qjob // granted, not yet completed

	sched Schedule
	cnt   queueCounters

	// faults, when non-nil, switches the run into fault mode: failure/repair
	// events drain and refill the pools, grants schedule completions as
	// kernel callbacks (revocable between grant and completion), and killed
	// jobs are rewound and requeued. Nil keeps the exact failure-free path.
	faults *faultRun
}

// SimulateQueue schedules the jobs (sorted by arrival) under the policy and
// returns the resulting schedule. It does not touch the manager's online
// allocation state; it is a planning computation over total node counts.
//
// Each job runs as an engine.Task: the task starts at the job's arrival,
// enqueues itself and parks until the scheduler — re-run at every arrival
// and completion event, under the baton — grants its nodes with a kernel
// wakeup. A granted task sleeps out its runtime in virtual time, releases
// its nodes and re-dispatches. If the queue can make no progress (head
// blocked, nothing running) the kernel's deadlock detector poisons the
// parked tasks and the error surfaces here.
func (m *Manager) SimulateQueue(jobs []Job, policy Policy) (Schedule, error) {
	sched, _, err := m.simulateQueue(jobs, policy)
	return sched, err
}

// simulateQueue is SimulateQueue plus the scheduler activity counters the
// facility layer reports.
func (m *Manager) simulateQueue(jobs []Job, policy Policy) (Schedule, queueCounters, error) {
	sched, cnt, _, err := m.simulateQueueFaults(jobs, policy, nil)
	return sched, cnt, err
}

// simulateQueueFaults is simulateQueue with an optional machine-level
// failure/repair process (nil or disabled faults keep the failure-free code
// path event-for-event identical). The returned faultRun carries the
// availability and occupancy integrals of a faulty run (nil otherwise).
func (m *Manager) simulateQueueFaults(jobs []Job, policy Policy, faults *FacilityFaults) (Schedule, queueCounters, *faultRun, error) {
	totalC := m.sys.NodeCount(machine.Cluster)
	totalB := m.sys.NodeCount(machine.Booster)
	for _, j := range jobs {
		needC, needB := j.Cluster, j.Booster
		if j.Malleable {
			needC, needB = j.MinCluster, j.MinBooster
		}
		if needC > totalC || needB > totalB {
			return Schedule{}, queueCounters{}, nil, fmt.Errorf("sched: job %d (%s) can never run: needs %d/%d of %d/%d nodes",
				j.ID, j.Name, needC, needB, totalC, totalB)
		}
	}
	queue := append([]Job(nil), jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	q := &queueRun{policy: policy, freeC: totalC, freeB: totalB}
	eng := engine.New()
	if faults != nil && faults.Enabled() {
		if err := faults.Validate(); err != nil {
			return Schedule{}, queueCounters{}, nil, err
		}
		q.faults = newFaultRun(*faults, eng, q, totalC, totalB)
		lastArrival := vclock.Time(0)
		if len(queue) > 0 {
			lastArrival = queue[len(queue)-1].Arrival
		}
		q.faults.start(lastArrival)
	}
	errs := make([]error, len(queue))
	for i, j := range queue {
		qj := &qjob{job: j, task: eng.NewTask(jobTaskName(j)), work: j.Duration, stretch: 1}
		qj.task.StartAt(j.Arrival)
		go q.runJob(qj, &errs[i])
	}
	eng.Run()
	q.cnt.events = eng.Stats().Events
	eng.Recycle()
	if f := q.faults; f != nil {
		q.cnt.failures = f.failures
		q.cnt.repairs = f.repaired
		q.cnt.requeues = f.requeues
		q.cnt.abandoned = f.abandoned
		q.cnt.lostNodeSec = f.lostNodeSec
	}
	noteQueueRun(q.cnt)
	for _, err := range errs {
		if err != nil {
			return Schedule{}, queueCounters{}, nil, err
		}
	}
	return q.sched, q.cnt, q.faults, nil
}

// jobTaskName renders a job's kernel task name (appears only in failures).
func jobTaskName(j Job) string {
	if j.Name != "" {
		return fmt.Sprintf("job %d (%s)", j.ID, j.Name)
	}
	return fmt.Sprintf("job %d", j.ID)
}

// runJob is one job's task: arrive, queue, park for the grant, sleep out
// the runtime, release, re-dispatch. Kernel poison (deadlock: the head can
// never start and nothing is running) is recovered into the job's error.
func (q *queueRun) runJob(j *qjob, errp *error) {
	defer j.task.Exit()
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*engine.TaskFailure); ok {
				*errp = f
				return
			}
			*errp = fmt.Errorf("sched: job %d (%s) cannot start and nothing is running", j.job.ID, j.job.Name)
		}
	}()
	j.task.WaitStart() // fires at the job's arrival
	q.pending = append(q.pending, j)
	q.cnt.submitted++
	if n := len(q.pending); n > q.cnt.peakQueue {
		q.cnt.peakQueue = n
	}
	q.dispatch(j.job.Arrival, j)
	if q.faults != nil {
		// Fault mode: the task parks across its whole (possibly multi-
		// attempt) lifetime. Grants and revocations happen entirely in
		// kernel callbacks; the one wake is terminal — completion or
		// abandonment — and all release bookkeeping already ran there.
		for !j.done && !j.abandoned {
			j.task.Park()
		}
		return
	}
	if !j.granted {
		// Allocation wait: park until a dispatch grants our nodes. The wake
		// arrives at the grant instant, so the task resumes exactly when its
		// reservation starts.
		j.task.Park()
	}
	j.task.SleepUntil(j.end)
	q.freeC += j.grantedC
	q.freeB += j.grantedB
	q.removeRunning(j)
	q.dispatch(j.end, nil)
}

// dispatch re-runs the queue policy at virtual time now, holding the baton.
// self is the job whose task is currently executing (nil from a completion):
// a grant to self just sets its state — the task continues inline — while a
// grant to any other pending job wakes its parked task at now.
func (q *queueRun) dispatch(now vclock.Time, self *qjob) {
	for len(q.pending) > 0 && q.tryStart(q.pending[0], now, self) {
		q.pending[0] = nil
		q.pending = q.pending[1:]
	}
	if q.policy != Backfill || len(q.pending) == 0 {
		return
	}
	// Conservative backfill: the head job holds a reservation at its earliest
	// possible start (assuming running jobs release on time); later pending
	// jobs may start now, at full size only, iff they fit the current hole
	// AND finish by that reservation — backfilling never delays the head.
	headStart := q.headStartEstimate(q.pending[0].job, now)
	kept := q.pending[:1]
	for _, cand := range q.pending[1:] {
		if cand.job.Cluster <= q.freeC && cand.job.Booster <= q.freeB && now+cand.job.Duration <= headStart {
			cand.backfilled = true
			q.cnt.backfilled++
			q.grant(cand, cand.job.Cluster, cand.job.Booster, 1, now, self)
		} else {
			kept = append(kept, cand)
		}
	}
	q.pending = kept
}

// tryStart attempts to start job j now, honouring malleability.
func (q *queueRun) tryStart(j *qjob, now vclock.Time, self *qjob) bool {
	if j.job.Cluster <= q.freeC && j.job.Booster <= q.freeB {
		q.grant(j, j.job.Cluster, j.job.Booster, 1, now, self)
		return true
	}
	if !j.job.Malleable {
		return false
	}
	gc := min(j.job.Cluster, q.freeC)
	gb := min(j.job.Booster, q.freeB)
	if gc < j.job.MinCluster || gb < j.job.MinBooster {
		return false
	}
	stretch := 1.0
	if j.job.Cluster > 0 && gc > 0 {
		stretch = max64(stretch, float64(j.job.Cluster)/float64(gc))
	}
	if j.job.Booster > 0 && gb > 0 {
		stretch = max64(stretch, float64(j.job.Booster)/float64(gb))
	}
	q.grant(j, gc, gb, stretch, now, self)
	return true
}

// grant reserves nodes for j starting now and records the placement. If j's
// task is parked (any job but self) the grant wakes it at the start instant.
// In fault mode grants are revocable: the placement is recorded only at
// completion, and the completion itself is a kernel callback that a node
// failure can retire.
func (q *queueRun) grant(j *qjob, gc, gb int, stretch float64, now vclock.Time, self *qjob) {
	if q.faults != nil {
		q.grantFaulty(j, gc, gb, stretch, now)
		return
	}
	dur := vclock.Time(j.job.Duration.Seconds() * stretch)
	j.granted = true
	j.grantedC, j.grantedB = gc, gb
	j.start, j.end = now, now+dur
	if gc < j.job.Cluster || gb < j.job.Booster {
		j.shrunk = true
		q.cnt.shrunk++
	}
	q.freeC -= gc
	q.freeB -= gb
	q.running = append(q.running, j)
	q.cnt.started++
	p := Placed{Job: j.job, Start: j.start, End: j.end, Cluster: gc, Booster: gb}
	q.sched.Placed = append(q.sched.Placed, p)
	if j.end > q.sched.Makespan {
		q.sched.Makespan = j.end
	}
	if j != self {
		j.task.WakeAt(now)
	}
}

// grantFaulty starts one attempt of j: the runtime covers the remaining
// (stretched) work plus the rewind policy's checkpoint/restore overhead, and
// completion is scheduled as a generation-guarded callback so a revocation
// in between can retire it. The parked task is not woken — it sleeps through
// all attempts and wakes only at a terminal event.
func (q *queueRun) grantFaulty(j *qjob, gc, gb int, stretch float64, now vclock.Time) {
	f := q.faults
	f.snap(now)
	work := vclock.Time(j.work.Seconds() * stretch)
	dur := f.attemptRuntime(work, j.resumed)
	j.granted = true
	j.grantedC, j.grantedB = gc, gb
	j.stretch = stretch
	j.start, j.end = now, now+dur
	if gc < j.job.Cluster || gb < j.job.Booster {
		j.shrunk = true
		q.cnt.shrunk++
	}
	q.freeC -= gc
	q.freeB -= gb
	q.running = append(q.running, j)
	q.cnt.started++
	gen := j.gen
	f.eng.CallAt(j.end, func() { q.completeFaulty(j, gen) })
	f.audit(now, "grant")
}

// completeFaulty finishes j's current attempt, unless a revocation retired
// it (generation mismatch). Only now does the job enter the schedule: Start
// is the final attempt's start, so waits and slowdowns include every requeue.
func (q *queueRun) completeFaulty(j *qjob, gen int) {
	if gen != j.gen || j.done {
		return // a failure revoked this attempt before it finished
	}
	f := q.faults
	at := j.end
	f.snap(at)
	j.done = true
	j.work = 0
	q.freeC += j.grantedC
	q.freeB += j.grantedB
	q.removeRunning(j)
	p := Placed{Job: j.job, Start: j.start, End: at, Cluster: j.grantedC, Booster: j.grantedB}
	q.sched.Placed = append(q.sched.Placed, p)
	if at > q.sched.Makespan {
		q.sched.Makespan = at
	}
	f.audit(at, "complete")
	j.task.WakeAt(at)
	q.dispatch(at, nil)
}

// removeRunning drops a completed job from the running set.
func (q *queueRun) removeRunning(j *qjob) {
	for i, r := range q.running {
		if r == j {
			last := len(q.running) - 1
			q.running[i] = q.running[last]
			q.running[last] = nil
			q.running = q.running[:last]
			return
		}
	}
}

// headStartEstimate computes when the head job could start if released
// resources accumulate on schedule. In fault mode the scheduled repairs
// count as capacity-return events too: reservations are recomputed against
// the shrunken pools, but a head that needs more than the currently
// operational machine still gets a finite reservation at the repair instants
// (every failed node has exactly one pending repair, so free + running +
// repairs always covers the full machine and the unreachable sentinel stays
// unreachable). The estimate remains a heuristic under faults — future
// failures are unknowable — which conservative backfill tolerates: a late
// head start delays backfilled jobs, never strands them.
func (q *queueRun) headStartEstimate(head Job, now vclock.Time) vclock.Time {
	evs := make([]event, 0, len(q.running))
	for _, r := range q.running {
		evs = append(evs, event{at: r.end, cluster: r.grantedC, booster: r.grantedB})
	}
	if q.faults != nil {
		for _, r := range q.faults.repairs {
			ev := event{at: r.at}
			if r.mod == machine.Cluster {
				ev.cluster = 1
			} else {
				ev.booster = 1
			}
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	c, b := q.freeC, q.freeB
	if head.Cluster <= c && head.Booster <= b {
		return now
	}
	for _, e := range evs {
		c += e.cluster
		b += e.booster
		if head.Cluster <= c && head.Booster <= b {
			return e.at
		}
	}
	return vclock.Time(1 << 62) // unreachable for valid jobs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
