package sched

import (
	"fmt"
	"math/rand"

	"clusterbooster/internal/engine"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// This file is the facility-level failure/repair subsystem: seeded per-module
// failure processes drawn as kernel events (like psmpi's FailureInjector, but
// facility-wide and with repair), scheduler degradation when nodes die, and
// checkpoint-aware requeue of the jobs that were holding them.
//
// The model is the classic machine-repairman Markov chain, per module: every
// operational node fails with rate 1/MTBF, every failed node repairs
// independently with rate 1/MTTR. Both processes are exponential, so whenever
// the operational count changes the time to the next failure is simply
// redrawn at the new rate (memorylessness makes the redraw exact, not an
// approximation); a per-module generation counter retires the superseded
// draw. In steady state the model's availability is MTBF/(MTBF+MTTR) — the
// Beowulf-performability closed form the experiment budgets cross-check.
//
// Everything runs on the queue run's serial kernel: failures, repairs,
// revocations, requeues and completions are CallAt callbacks that execute
// holding the engine baton, so — like the rest of queueRun — the state here
// needs no lock and the whole faulty stream stays bit-deterministic under
// any sweep worker count and any -kworkers setting.

// RewindPolicy decides how much of a killed attempt survives into the next
// one. It abstracts the checkpoint/restart model so sched does not depend on
// internal/resilience (which sits above it); resilience.FacilityCheckpoint
// is the production implementation.
type RewindPolicy interface {
	// AttemptRuntime returns the virtual runtime of an attempt that still
	// has work left to execute, including checkpoint overhead and — when the
	// attempt resumes from a previous one's checkpoint — the restore cost.
	AttemptRuntime(work vclock.Time, resumed bool) vclock.Time
	// Rewind splits an attempt killed elapsed after its start into surviving
	// work (protected by a completed checkpoint) and lost time (everything
	// past the last completed checkpoint, restore and partial work included).
	Rewind(elapsed vclock.Time, resumed bool) (surviving, lost vclock.Time)
}

// FacilityFaults configures machine-level failure/repair for a facility run.
// The zero value (and a nil pointer) means a failure-free facility.
type FacilityFaults struct {
	// Cluster and Booster are the per-module reliability profiles. The
	// modules fail and repair independently.
	Cluster machine.FailureProfile
	Booster machine.FailureProfile
	// Seed fixes the failure/repair sequence (independent of the arrival
	// stream's seed, so the same workload can replay under many fault
	// histories).
	Seed int64
	// MaxFailures caps the total failures fired across both modules
	// (0 = unlimited; per-job retry bounds already guarantee termination).
	MaxFailures int
	// MaxRetries is the per-job requeue budget: a job killed more than this
	// many times is abandoned (default 8).
	MaxRetries int
	// RequeueDelay is the base requeue backoff: a job's k-th requeue re-enters
	// the queue k*RequeueDelay after the kill (default 50ms).
	RequeueDelay vclock.Time
	// Rewind is the checkpoint/restart model for killed jobs (nil = every
	// kill restarts the job's work from scratch).
	Rewind RewindPolicy

	// audit, when set by tests, runs after every capacity-changing event with
	// the baton held — the hook the fuzz oracle uses to re-derive the
	// free + allocated + failed == total invariant from scratch.
	audit func(q *queueRun, now vclock.Time, where string)
}

// Enabled reports whether any module injects failures.
func (f FacilityFaults) Enabled() bool {
	return f.Cluster.Enabled() || f.Booster.Enabled()
}

// Validate rejects unusable fault configurations.
func (f FacilityFaults) Validate() error {
	if err := f.Cluster.Validate(); err != nil {
		return err
	}
	if err := f.Booster.Validate(); err != nil {
		return err
	}
	if f.MaxFailures < 0 || f.MaxRetries < 0 || f.RequeueDelay < 0 {
		return fmt.Errorf("sched: negative fault bounds (max_failures %d, max_retries %d, requeue_delay %v)",
			f.MaxFailures, f.MaxRetries, f.RequeueDelay)
	}
	return nil
}

func (f FacilityFaults) maxRetries() int {
	if f.MaxRetries <= 0 {
		return 8
	}
	return f.MaxRetries
}

func (f FacilityFaults) requeueDelay() vclock.Time {
	if f.RequeueDelay <= 0 {
		return 50 * vclock.Millisecond
	}
	return f.RequeueDelay
}

// poolFaults is one module's live failure-process state.
type poolFaults struct {
	profile machine.FailureProfile
	rng     *rand.Rand
	total   int
	failed  int
	// failGen retires superseded failure draws: scheduleFailure bumps it and
	// captures the new value; a CallAt that fires with a stale generation is
	// a no-op (its rate was computed against an old operational count).
	failGen int
	// downNodeSec and busyNodeSec are running integrals of failed and
	// allocated node counts over virtual time (advanced by snap).
	downNodeSec float64
	busyNodeSec float64
}

// repairEvent is one scheduled node repair; the pending set feeds the
// backfill head-start estimate, making reservations repair-aware.
type repairEvent struct {
	at  vclock.Time
	mod machine.Module
}

// faultRun is the failure/repair state of one faulty queue simulation. All
// fields are kernel state (baton-protected), like queueRun itself.
type faultRun struct {
	cfg   FacilityFaults
	eng   *engine.Engine
	q     *queueRun
	pools [2]poolFaults // indexed by machine.Module
	// repairs holds the scheduled-but-not-yet-fired repair completions.
	repairs []repairEvent

	fired  int         // failures fired, across both modules
	lastAt vclock.Time // integrator clock for the node-second integrals
	// horizon is the latest event instant seen; availability and goodput are
	// defined over [0, horizon].
	horizon vclock.Time
	// Saturated-window snapshot: a copy of the integrals taken at the last
	// job arrival, before the stream drains. Utilization over this window is
	// what must track availability when the queue is saturated; the full-
	// horizon numbers dilute it with the drain tail.
	satAt   vclock.Time
	satDown [2]float64
	satBusy [2]float64

	failures    int
	repaired    int
	requeues    int
	abandoned   int
	lostNodeSec float64
}

// newFaultRun wires a faultRun into a queue run on its engine.
func newFaultRun(cfg FacilityFaults, eng *engine.Engine, q *queueRun, totalC, totalB int) *faultRun {
	f := &faultRun{cfg: cfg, eng: eng, q: q}
	f.pools[machine.Cluster] = poolFaults{
		profile: cfg.Cluster,
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		total:   totalC,
	}
	f.pools[machine.Booster] = poolFaults{
		profile: cfg.Booster,
		rng:     rand.New(rand.NewSource(cfg.Seed + 2)),
		total:   totalB,
	}
	return f
}

// start arms the initial failure draw of each module and the saturated-
// window snapshot at the stream's last arrival (whose task is still alive
// then, so the callback is guaranteed to fire).
func (f *faultRun) start(lastArrival vclock.Time) {
	f.scheduleFailure(machine.Cluster, 0)
	f.scheduleFailure(machine.Booster, 0)
	f.eng.CallAt(lastArrival, func() { f.markSaturated(lastArrival) })
}

// markSaturated snapshots the integrals at the last arrival instant.
func (f *faultRun) markSaturated(at vclock.Time) {
	f.snap(at)
	f.satAt = at
	for mod := range f.pools {
		f.satDown[mod] = f.pools[mod].downNodeSec
		f.satBusy[mod] = f.pools[mod].busyNodeSec
	}
}

// scheduleFailure redraws the module's next failure at the current
// operational-count rate. It always retires the previous draw, so it is the
// single point of truth for "the one live failure event per module".
func (f *faultRun) scheduleFailure(mod machine.Module, now vclock.Time) {
	p := &f.pools[mod]
	p.failGen++
	if !p.profile.Enabled() {
		return
	}
	if f.cfg.MaxFailures > 0 && f.fired >= f.cfg.MaxFailures {
		return
	}
	up := p.total - p.failed
	if up == 0 {
		return // fully down; the next repair redraws
	}
	gen := p.failGen
	at := now + vclock.Time(p.rng.ExpFloat64()*p.profile.MTBF.Seconds()/float64(up))
	f.eng.CallAt(at, func() { f.failNode(mod, gen, at) })
}

// failNode is the failure event: one uniformly-drawn operational node of the
// module dies. An idle node just leaves the free pool; an allocated node
// kills the job holding it (the job's whole allocation drains back to free,
// minus the dead node) and the job is rewound and requeued or abandoned.
// Either way an independent repair is scheduled and the failure process
// redraws at the new rate.
func (f *faultRun) failNode(mod machine.Module, gen int, at vclock.Time) {
	p := &f.pools[mod]
	if gen != p.failGen {
		return // superseded draw
	}
	f.snap(at)
	f.fired++
	f.failures++
	up := p.total - p.failed
	idx := p.rng.Intn(up)
	if free := f.q.free(mod); idx < free {
		f.q.addFree(mod, -1)
	} else {
		f.revoke(f.victim(mod, idx-free), at)
		f.q.addFree(mod, -1) // the struck node is down, not free
	}
	p.failed++

	rAt := at + vclock.Time(p.rng.ExpFloat64()*p.profile.MTTR.Seconds())
	f.repairs = append(f.repairs, repairEvent{at: rAt, mod: mod})
	f.eng.CallAt(rAt, func() { f.repairNode(mod, rAt) })

	f.audit(at, "failure")
	f.q.dispatch(at, nil)
	f.scheduleFailure(mod, at)
}

// victim returns the running job holding the k-th allocated node of the
// module, walking the running set in grant order. The capacity invariant
// (free + allocated + failed == total) guarantees k lands on a job.
func (f *faultRun) victim(mod machine.Module, k int) *qjob {
	for _, r := range f.q.running {
		n := r.grantedC
		if mod == machine.Booster {
			n = r.grantedB
		}
		if k < n {
			return r
		}
		k -= n
	}
	panic(fmt.Sprintf("sched: fault victim index %d beyond allocated %v nodes", k, mod))
}

// revoke kills a running job at the failure instant: its allocation returns
// to the free pools, its scheduled completion is retired, its progress is
// rewound to the best surviving checkpoint, and it is requeued with linear
// backoff — or abandoned once its retry budget is spent.
func (f *faultRun) revoke(j *qjob, at vclock.Time) {
	q := f.q
	q.freeC += j.grantedC
	q.freeB += j.grantedB
	q.removeRunning(j)
	j.gen++ // retire the completion callback of this attempt
	j.granted = false
	held := float64(j.grantedC + j.grantedB)

	elapsed := at - j.start
	var surv, lost vclock.Time
	if f.cfg.Rewind != nil {
		surv, lost = f.cfg.Rewind.Rewind(elapsed, j.resumed)
	} else {
		surv, lost = 0, elapsed
	}
	// surv is on the attempt's (possibly stretched) timeline; progress is
	// tracked as nominal full-size work.
	survNominal := vclock.Time(surv.Seconds() / j.stretch)
	if survNominal > j.work {
		survNominal = j.work
	}
	j.work -= survNominal
	j.resumed = j.work < j.job.Duration
	f.lostNodeSec += lost.Seconds() * held
	j.salvaged += surv.Seconds() * held

	j.retries++
	if j.retries > f.cfg.maxRetries() {
		f.abandoned++
		j.abandoned = true
		// The surviving work of earlier attempts is discarded with the job:
		// retroactively it bought nothing, so it counts as lost too.
		f.lostNodeSec += j.salvaged
		j.task.WakeAt(at)
		return
	}
	f.requeues++
	reAt := at + vclock.Time(float64(j.retries)*f.cfg.requeueDelay().Seconds())
	f.eng.CallAt(reAt, func() { f.requeue(j, reAt) })
}

// requeue re-enters a killed job at the back of the queue after its backoff.
func (f *faultRun) requeue(j *qjob, at vclock.Time) {
	f.snap(at)
	q := f.q
	q.pending = append(q.pending, j)
	if n := len(q.pending); n > q.cnt.peakQueue {
		q.cnt.peakQueue = n
	}
	f.audit(at, "requeue")
	q.dispatch(at, nil)
}

// repairNode is the repair event: the node returns to the free pool, the
// pending-repair set shrinks, waiting jobs get a dispatch and the failure
// process redraws at the higher operational rate.
func (f *faultRun) repairNode(mod machine.Module, at vclock.Time) {
	f.snap(at)
	p := &f.pools[mod]
	p.failed--
	f.q.addFree(mod, 1)
	f.repaired++
	for i, r := range f.repairs {
		if r.at == at && r.mod == mod {
			f.repairs = append(f.repairs[:i], f.repairs[i+1:]...)
			break
		}
	}
	f.audit(at, "repair")
	f.q.dispatch(at, nil)
	f.scheduleFailure(mod, at)
}

// attemptRuntime is the virtual runtime of a (re)started attempt with the
// given stretched work remaining.
func (f *faultRun) attemptRuntime(work vclock.Time, resumed bool) vclock.Time {
	if f.cfg.Rewind != nil {
		return f.cfg.Rewind.AttemptRuntime(work, resumed)
	}
	return work
}

// snap advances the down/busy node-second integrals to now. Call it at the
// top of every capacity-changing event, before mutating state.
func (f *faultRun) snap(now vclock.Time) {
	if dt := (now - f.lastAt).Seconds(); dt > 0 {
		for mod := range f.pools {
			p := &f.pools[mod]
			p.downNodeSec += float64(p.failed) * dt
			busy := p.total - f.q.free(machine.Module(mod)) - p.failed
			p.busyNodeSec += float64(busy) * dt
		}
		f.lastAt = now
	}
	if now > f.horizon {
		f.horizon = now
	}
}

// audit invokes the test oracle hook, if any.
func (f *faultRun) audit(now vclock.Time, where string) {
	if f.cfg.audit != nil {
		f.cfg.audit(f.q, now, where)
	}
}

// availability returns the module's simulated availability over the run:
// 1 - downtime/(nodes * horizon).
func (f *faultRun) availability(mod machine.Module) float64 {
	p := f.pools[mod]
	if p.total == 0 || f.horizon <= 0 {
		return 1
	}
	return 1 - p.downNodeSec/(float64(p.total)*f.horizon.Seconds())
}

// utilisation returns the module's allocated-node-time fraction over the
// run. Unlike Schedule.Utilisation it integrates actual occupancy — killed
// attempts held nodes too — which is what must track availability when the
// queue is saturated.
func (f *faultRun) utilisation(mod machine.Module) float64 {
	p := f.pools[mod]
	if p.total == 0 || f.horizon <= 0 {
		return 0
	}
	return p.busyNodeSec / (float64(p.total) * f.horizon.Seconds())
}

// satUtilisation and satAvailability are the same quantities cut at the last
// arrival: the saturated regime the steady-state cross-check binds to.
func (f *faultRun) satUtilisation(mod machine.Module) float64 {
	if f.pools[mod].total == 0 || f.satAt <= 0 {
		return 0
	}
	return f.satBusy[mod] / (float64(f.pools[mod].total) * f.satAt.Seconds())
}

func (f *faultRun) satAvailability(mod machine.Module) float64 {
	if f.pools[mod].total == 0 || f.satAt <= 0 {
		return 1
	}
	return 1 - f.satDown[mod]/(float64(f.pools[mod].total)*f.satAt.Seconds())
}

// free and addFree bridge module identity to the queue run's split counters.
func (q *queueRun) free(mod machine.Module) int {
	if mod == machine.Cluster {
		return q.freeC
	}
	return q.freeB
}

func (q *queueRun) addFree(mod machine.Module, n int) {
	if mod == machine.Cluster {
		q.freeC += n
	} else {
		q.freeB += n
	}
}
