package sched

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// testCkpt is a free checkpoint every `every` of work: killed attempts keep
// everything up to the last multiple. It keeps scenario tests independent
// of internal/resilience (which sits above sched) while guaranteeing
// forward progress under arbitrarily harsh MTBF.
type testCkpt struct{ every vclock.Time }

func (c testCkpt) AttemptRuntime(work vclock.Time, resumed bool) vclock.Time { return work }

func (c testCkpt) Rewind(elapsed vclock.Time, resumed bool) (surviving, lost vclock.Time) {
	surv := vclock.Time(math.Floor(elapsed.Seconds()/c.every.Seconds())) * c.every
	return surv, elapsed - surv
}

// capacityOracle builds an audit hook that re-derives the conservation
// invariant from scratch at every capacity-changing fault event:
//
//	free + allocated-to-running + failed == total, per module
//
// A requeued job must therefore never hold nodes twice — a double grant
// would push the allocated sum past total. Violations are collected rather
// than fatal (the hook runs on kernel goroutines).
func capacityOracle(totalC, totalB int) (func(q *queueRun, now vclock.Time, where string), *[]string) {
	var violations []string
	return func(q *queueRun, now vclock.Time, where string) {
		allocC, allocB := 0, 0
		for _, r := range q.running {
			allocC += r.grantedC
			allocB += r.grantedB
		}
		failedC := q.faults.pools[machine.Cluster].failed
		failedB := q.faults.pools[machine.Booster].failed
		if got := q.freeC + allocC + failedC; got != totalC {
			violations = append(violations, fmt.Sprintf(
				"t=%v %s: cluster %d free + %d allocated + %d failed = %d, want %d",
				now, where, q.freeC, allocC, failedC, got, totalC))
		}
		if got := q.freeB + allocB + failedB; got != totalB {
			violations = append(violations, fmt.Sprintf(
				"t=%v %s: booster %d free + %d allocated + %d failed = %d, want %d",
				now, where, q.freeB, allocB, failedB, got, totalB))
		}
		for _, r := range q.running {
			if !r.granted {
				violations = append(violations, fmt.Sprintf(
					"t=%v %s: job %d in running set without a grant", now, where, r.job.ID))
			}
		}
	}, &violations
}

// runFaulty executes one faulty queue simulation with the oracle armed and
// fails the test on any conservation violation.
func runFaulty(t *testing.T, c, b int, jobs []Job, policy Policy, faults FacilityFaults) (Schedule, queueCounters, *faultRun) {
	t.Helper()
	audit, violations := capacityOracle(c, b)
	faults.audit = audit
	m := NewManager(machine.New(c, b))
	sched, cnt, fr, err := m.simulateQueueFaults(jobs, policy, &faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range *violations {
		t.Errorf("capacity oracle: %s", v)
	}
	if fr == nil {
		t.Fatal("fault run missing")
	}
	if got := len(sched.Placed) + cnt.abandoned; got != len(jobs) {
		t.Fatalf("placed %d + abandoned %d = %d jobs accounted, submitted %d",
			len(sched.Placed), cnt.abandoned, got, len(jobs))
	}
	return sched, cnt, fr
}

// TestFaultDuringBackfillReservation: failures strike while a blocked head
// job holds a reservation and small jobs backfill around it. The scheduler
// must keep reservations consistent with the shrunken machine (repair-aware
// head-start estimates), keep backfilling, and finish every job.
func TestFaultDuringBackfillReservation(t *testing.T) {
	jobs := []Job{
		// Occupies the whole Cluster side; the fault process will kill it.
		{ID: 1, Cluster: 4, Booster: 0, Arrival: 0, Duration: sec(6)},
		// Head: needs the full machine, so it blocks with a reservation.
		{ID: 2, Cluster: 4, Booster: 4, Arrival: sec(1), Duration: sec(4)},
	}
	// Small Booster jobs keep arriving: fuel for backfilling under the
	// reservation while failures reshape it.
	for i := 0; i < 10; i++ {
		jobs = append(jobs, Job{ID: 3 + i, Cluster: 0, Booster: 1,
			Arrival: sec(0.5 * float64(i)), Duration: sec(1)})
	}
	run := func() (Schedule, queueCounters, *faultRun) {
		return runFaulty(t, 4, 4, jobs, Backfill, FacilityFaults{
			Cluster:    machine.FailureProfile{MTBF: sec(3), MTTR: sec(0.5)},
			Booster:    machine.FailureProfile{MTBF: sec(6), MTTR: sec(0.5)},
			Seed:       11,
			MaxRetries: 64,
			Rewind:     testCkpt{every: sec(0.25)},
		})
	}
	sched, cnt, _ := run()
	if cnt.failures == 0 {
		t.Fatal("no failures fired; the scenario needs faults in flight")
	}
	if cnt.backfilled == 0 {
		t.Fatal("no backfills; the scenario needs a live reservation")
	}
	if cnt.requeues == 0 {
		t.Fatal("no requeues; failures only struck idle nodes")
	}
	if cnt.abandoned != 0 {
		t.Fatalf("abandoned %d jobs with the default retry budget", cnt.abandoned)
	}
	// Determinism: the faulty simulation replays byte-identically.
	sched2, cnt2, _ := run()
	if !reflect.DeepEqual(sched, sched2) || !reflect.DeepEqual(cnt, cnt2) {
		t.Fatal("faulty backfill run is not deterministic across replays")
	}
}

// TestFaultRepairWhileQueueDrained: a node fails while the queue is
// completely empty (no pending, no running jobs) and repairs before the
// next arrival. The repair must restore capacity so a later full-machine
// job starts on time — and neither event may disturb the drained queue.
func TestFaultRepairWhileQueueDrained(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cluster: 1, Booster: 1, Arrival: 0, Duration: sec(0.3)},
		// Long gap: the queue drains, then the failure and its repair fire
		// into the idle facility.
		{ID: 2, Cluster: 2, Booster: 2, Arrival: sec(5), Duration: sec(1)},
	}
	sched, cnt, fr := runFaulty(t, 2, 2, jobs, Backfill, FacilityFaults{
		Cluster:     machine.FailureProfile{MTBF: sec(1), MTTR: sec(0.2)},
		Seed:        3,
		MaxFailures: 1,
	})
	if cnt.failures != 1 || cnt.repairs != 1 {
		t.Fatalf("failures=%d repairs=%d, want exactly one of each", cnt.failures, cnt.repairs)
	}
	if cnt.requeues != 0 {
		t.Fatalf("requeues=%d: the failure must have struck an idle node", cnt.requeues)
	}
	byID := map[int]Placed{}
	for _, p := range sched.Placed {
		byID[p.Job.ID] = p
	}
	// The full-machine job proves the repaired node really returned: with
	// any node still down it could not start at all.
	if got := byID[2].Start; got != sec(5) {
		t.Fatalf("full-machine job started at %v, want its arrival (5s)", got)
	}
	if fr.pools[machine.Cluster].failed != 0 {
		t.Fatalf("%d cluster nodes still marked failed after repair", fr.pools[machine.Cluster].failed)
	}
}

// TestFaultRetryExhaustionAbandonment: under an MTBF far below the job's
// runtime and no checkpointing, every attempt is killed; once the retry
// budget is spent the job must be abandoned — and the simulation must still
// terminate with its capacity accounting intact.
func TestFaultRetryExhaustionAbandonment(t *testing.T) {
	jobs := []Job{
		{ID: 1, Cluster: 2, Booster: 2, Arrival: 0, Duration: sec(10)},
	}
	sched, cnt, fr := runFaulty(t, 2, 2, jobs, FCFS, FacilityFaults{
		Cluster:     machine.FailureProfile{MTBF: sec(0.2), MTTR: sec(0.05)},
		Booster:     machine.FailureProfile{MTBF: sec(0.2), MTTR: sec(0.05)},
		Seed:        5,
		MaxRetries:  2,
		MaxFailures: 64, // bounded: the stream must die from retry exhaustion first
	})
	if len(sched.Placed) != 0 {
		t.Fatalf("%d jobs completed under a fatal MTBF", len(sched.Placed))
	}
	if cnt.abandoned != 1 {
		t.Fatalf("abandoned=%d, want 1", cnt.abandoned)
	}
	if cnt.requeues != 2 {
		t.Fatalf("requeues=%d, want the full retry budget (2)", cnt.requeues)
	}
	if cnt.failures < 3 {
		t.Fatalf("failures=%d, want at least one per attempt (3)", cnt.failures)
	}
	if cnt.lostNodeSec <= 0 {
		t.Fatal("no lost node-seconds recorded for the killed attempts")
	}
	if fr.horizon <= 0 {
		t.Fatal("fault run recorded no horizon")
	}
}
