package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// This file is the facility simulator: the whole prototype as a batch
// system under sustained multi-user load, rather than one job on an empty
// machine. A seeded synthetic arrival stream — exponential inter-arrival
// times over a job mix drawn from the xpic workload catalog's shapes — runs
// through the kernel queue under one of three policies, co-scheduling the
// Cluster and Booster pools independently (§II-A's modular reservation).
// Thousands of concurrent jobs share one event kernel; the stream is fully
// determined by (seed, jobs, load), so facility outcomes are byte-stable
// under any host parallelism.

// FacilityPolicy selects the batch discipline of a facility run.
type FacilityPolicy string

const (
	// FacilityFCFS is strict arrival order; malleability is ignored.
	FacilityFCFS FacilityPolicy = "fcfs"
	// FacilityBackfill adds conservative backfilling; malleability is
	// ignored (jobs start at full size or not at all).
	FacilityBackfill FacilityPolicy = "backfill"
	// FacilityMalleable is backfill plus malleable-shrink: flexible jobs
	// may start below requested size, down to their minima (ref [5]).
	FacilityMalleable FacilityPolicy = "malleable"
)

// FacilityPolicies lists the policies in canonical grid order.
func FacilityPolicies() []FacilityPolicy {
	return []FacilityPolicy{FacilityFCFS, FacilityBackfill, FacilityMalleable}
}

// FacilityParams configures one facility run.
type FacilityParams struct {
	Policy FacilityPolicy
	// Jobs is the length of the arrival stream.
	Jobs int
	// Load is the offered load as a fraction of the bottleneck module's
	// capacity: 0.7 is a busy facility, >1 is overload (the queue grows).
	Load float64
	// Seed determines the whole stream; equal seeds give equal arrivals
	// across policies, so policy comparisons see the identical workload.
	Seed int64
	// ClusterNodes and BoosterNodes size the machine (0 defaults to 64/32,
	// four times the 2:1 prototype of Table I).
	ClusterNodes int
	BoosterNodes int
	// Faults, when non-nil and enabled, runs the stream on a failing
	// machine: seeded per-module failure/repair processes drain and refill
	// the pools, killed jobs are rewound per Faults.Rewind and requeued.
	// Nil keeps the failure-free path byte-identical.
	Faults *FacilityFaults
}

// FacilityOutcome aggregates one facility run.
type FacilityOutcome struct {
	Jobs     int
	Makespan vclock.Time
	// UtilCluster and UtilBooster are node-time used over node-time
	// available per module, across the makespan.
	UtilCluster float64
	UtilBooster float64
	// MeanWait is the mean queue wait.
	MeanWait vclock.Time
	// MeanSlowdown and P95Slowdown are bounded slowdowns: max(1,
	// (wait+run)/max(run, tau)) with tau = 100ms, the standard BSLD metric
	// scaled to the catalog's sub-second virtual jobs.
	MeanSlowdown float64
	P95Slowdown  float64
	// Backfilled and Shrunk count scheduler decisions; PeakQueue is the
	// high-water mark of waiting jobs; Events is the kernel event count.
	Backfilled int
	Shrunk     int
	PeakQueue  int
	Events     uint64

	// Fault-mode results (zero on failure-free runs). Jobs counts completed
	// jobs only; Abandoned jobs exhausted their retry budget and never
	// finished.
	Failures  int
	Repairs   int
	Requeues  int
	Abandoned int
	// AvailCluster and AvailBooster are the simulated availabilities:
	// 1 - down-node-time / (nodes * horizon), where the horizon spans every
	// facility event. In steady state they must track the analytic
	// MTBF/(MTBF+MTTR) of the module's FailureProfile.
	AvailCluster float64
	AvailBooster float64
	// LostNodeSec is virtual node-time spent on work that did not survive:
	// partial progress past the last completed checkpoint of every kill,
	// plus the salvaged progress of jobs later abandoned.
	LostNodeSec float64
	// Goodput is completed useful work over total machine capacity across
	// the horizon: sum over completed jobs of requested-nodes x nominal
	// duration, divided by (total nodes x horizon).
	Goodput float64
	// Horizon is the full facility span including trailing repair, requeue
	// and abandonment activity (>= Makespan).
	Horizon vclock.Time
	// SatUtil* and SatAvail* are utilization and availability cut at the
	// last job arrival — the saturated window, before the stream drains.
	// There, an overloaded pool's utilization must track its availability:
	// this is the pair the steady-state cross-check budgets compare.
	SatUtilCluster  float64
	SatUtilBooster  float64
	SatAvailCluster float64
	SatAvailBooster float64
}

// bsldTau is the bounded-slowdown runtime floor. The literature uses 10s of
// wall time against hour-scale jobs; the catalog's virtual jobs run 0.4-2.4
// virtual seconds, so the threshold scales to 100ms.
const bsldTau = 100 * vclock.Millisecond

// facilityClass is one entry of the synthetic job mix. The shapes and
// runtimes are modeled on the experiment catalog: small split Cluster+
// Booster runs (fig7), Cluster-only field solves (fig3), Booster-only
// particle pushes (fig8), Table II-scale wide jobs, and xpic-weak-style
// campaigns — the last two malleable down to half size, as in the DEEP
// malleability work (ref [5]).
type facilityClass struct {
	name       string
	cluster    int
	booster    int
	dur        vclock.Time
	weight     int
	malleable  bool
	minCluster int
	minBooster int
}

func facilityClasses() []facilityClass {
	return []facilityClass{
		{name: "fig7-split", cluster: 2, booster: 2, dur: 600 * vclock.Millisecond, weight: 4},
		{name: "fig3-solver", cluster: 4, booster: 0, dur: 400 * vclock.Millisecond, weight: 3},
		{name: "fig8-push", cluster: 0, booster: 4, dur: 500 * vclock.Millisecond, weight: 3},
		{name: "table2-wide", cluster: 8, booster: 8, dur: 1200 * vclock.Millisecond, weight: 2,
			malleable: true, minCluster: 4, minBooster: 4},
		{name: "xpic-weak", cluster: 16, booster: 16, dur: 2400 * vclock.Millisecond, weight: 1,
			malleable: true, minCluster: 8, minBooster: 8},
	}
}

// facilityJobs synthesizes the arrival stream: weighted class picks and
// exponential inter-arrival gaps from one seeded source, with the arrival
// rate set so the offered load on the bottleneck module equals p.Load.
func facilityJobs(p FacilityParams) []Job {
	classes := facilityClasses()
	wsum := 0
	ec, eb := 0.0, 0.0 // mean node-seconds demanded per job, per module
	for _, c := range classes {
		wsum += c.weight
		ec += float64(c.weight) * float64(c.cluster) * c.dur.Seconds()
		eb += float64(c.weight) * float64(c.booster) * c.dur.Seconds()
	}
	ec /= float64(wsum)
	eb /= float64(wsum)
	// Offered load per module is rate*E/total; the bottleneck module is the
	// one with the larger per-job demand share.
	demand := max64(ec/float64(p.ClusterNodes), eb/float64(p.BoosterNodes))
	rate := p.Load / demand

	rng := rand.New(rand.NewSource(p.Seed))
	jobs := make([]Job, 0, p.Jobs)
	var at vclock.Time
	for i := 0; i < p.Jobs; i++ {
		c := classes[0]
		pick := rng.Intn(wsum)
		for _, cand := range classes {
			if pick < cand.weight {
				c = cand
				break
			}
			pick -= cand.weight
		}
		at += vclock.Time(rng.ExpFloat64() / rate)
		j := Job{
			ID:       i + 1,
			Name:     c.name,
			Cluster:  c.cluster,
			Booster:  c.booster,
			Arrival:  at,
			Duration: c.dur,
		}
		if c.malleable && p.Policy == FacilityMalleable {
			j.Malleable = true
			j.MinCluster = c.minCluster
			j.MinBooster = c.minBooster
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// RunFacility drives the synthesized arrival stream through the kernel
// queue and aggregates the facility metrics.
func RunFacility(p FacilityParams) (FacilityOutcome, error) {
	if p.Jobs <= 0 {
		return FacilityOutcome{}, fmt.Errorf("sched: facility stream of %d jobs", p.Jobs)
	}
	if p.Load <= 0 {
		return FacilityOutcome{}, fmt.Errorf("sched: facility load %g", p.Load)
	}
	if p.ClusterNodes == 0 {
		p.ClusterNodes = 64
	}
	if p.BoosterNodes == 0 {
		p.BoosterNodes = 32
	}
	if p.ClusterNodes < 0 || p.BoosterNodes < 0 {
		return FacilityOutcome{}, fmt.Errorf("sched: facility machine %d/%d nodes", p.ClusterNodes, p.BoosterNodes)
	}
	policy := FCFS
	switch p.Policy {
	case FacilityFCFS:
	case FacilityBackfill, FacilityMalleable:
		policy = Backfill
	default:
		return FacilityOutcome{}, fmt.Errorf("sched: unknown facility policy %q", p.Policy)
	}

	m := NewManager(machine.New(p.ClusterNodes, p.BoosterNodes))
	sched, cnt, faults, err := m.simulateQueueFaults(facilityJobs(p), policy, p.Faults)
	if err != nil {
		return FacilityOutcome{}, err
	}

	out := FacilityOutcome{
		Jobs:        len(sched.Placed),
		Makespan:    sched.Makespan,
		UtilCluster: sched.Utilisation(m, machine.Cluster),
		UtilBooster: sched.Utilisation(m, machine.Booster),
		MeanWait:    sched.AverageWait(),
		Backfilled:  cnt.backfilled,
		Shrunk:      cnt.shrunk,
		PeakQueue:   cnt.peakQueue,
		Events:      cnt.events,
	}
	if faults != nil {
		out.Failures = cnt.failures
		out.Repairs = cnt.repairs
		out.Requeues = cnt.requeues
		out.Abandoned = cnt.abandoned
		out.LostNodeSec = cnt.lostNodeSec
		out.AvailCluster = faults.availability(machine.Cluster)
		out.AvailBooster = faults.availability(machine.Booster)
		out.SatUtilCluster = faults.satUtilisation(machine.Cluster)
		out.SatUtilBooster = faults.satUtilisation(machine.Booster)
		out.SatAvailCluster = faults.satAvailability(machine.Cluster)
		out.SatAvailBooster = faults.satAvailability(machine.Booster)
		out.Horizon = faults.horizon
		// With kills in play, schedule-derived utilisation (final attempts
		// only) undercounts occupancy; the faultRun integrates the real
		// thing, and it is what must track availability under saturation.
		out.UtilCluster = faults.utilisation(machine.Cluster)
		out.UtilBooster = faults.utilisation(machine.Booster)
		useful := 0.0
		for _, pl := range sched.Placed {
			useful += float64(pl.Job.Cluster+pl.Job.Booster) * pl.Job.Duration.Seconds()
		}
		if cap := float64(p.ClusterNodes+p.BoosterNodes) * faults.horizon.Seconds(); cap > 0 {
			out.Goodput = useful / cap
		}
	}
	slow := make([]float64, 0, len(sched.Placed))
	for _, pl := range sched.Placed {
		run := (pl.End - pl.Start).Seconds()
		resp := (pl.End - pl.Job.Arrival).Seconds()
		s := resp / max64(run, bsldTau.Seconds())
		if s < 1 {
			s = 1
		}
		slow = append(slow, s)
		out.MeanSlowdown += s
	}
	if len(slow) > 0 {
		out.MeanSlowdown /= float64(len(slow))
		sort.Float64s(slow)
		idx := int(math.Ceil(0.95*float64(len(slow)))) - 1
		out.P95Slowdown = slow[idx]
	}
	return out, nil
}
