// Package benchdata turns `go test -bench` output into machine-readable
// benchmark baselines and compares fresh runs against them — the repo's
// perf-trajectory record. `cbctl bench` is the CLI: it parses a benchmark
// run, emits the canonical JSON form (checked in as BENCH_kernel.json), and
// in -check mode fails on benchstat-style regressions beyond a tolerance,
// which the CI bench-regression job gates on.
package benchdata

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured costs per operation.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is a set of benchmark results, the unit the JSON file stores.
type Baseline struct {
	// Schema versions the file format.
	Schema int `json:"schema"`
	// Note records provenance (host, date, benchtime) free-form.
	Note string `json:"note,omitempty"`
	// Benchmarks is sorted by name; Parse takes the minimum ns/op across
	// repeated runs of one benchmark (-count > 1), benchstat's robust choice
	// against scheduling noise.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups are required wall-clock ratios between benchmark pairs of one
	// run; unlike the per-benchmark gates they compare the fresh run against
	// itself, so they hold on any machine fast or slow. `cbctl bench -update`
	// carries this section forward — edit it by hand.
	Speedups []Speedup `json:"speedups,omitempty"`
}

// Speedup requires one benchmark of a run to beat another by a factor: the
// conservative parallel kernel's ≥2x-at-4-workers claim is recorded this
// way. It only binds on hosts with at least MinCPUs logical CPUs — a
// parallel/serial ratio is meaningless on fewer cores than workers.
type Speedup struct {
	// Name is the benchmark that must be faster (e.g. the parallel leg).
	Name string `json:"name"`
	// Base is the reference benchmark (e.g. the serial leg).
	Base string `json:"base"`
	// MinRatio is the required Base-ns/op over Name-ns/op.
	MinRatio float64 `json:"min_ratio"`
	// MinCPUs gates enforcement on the host's logical CPU count.
	MinCPUs int `json:"min_cpus"`
}

// Schema is the current baseline file schema.
const Schema = 1

// Parse reads `go test -bench -benchmem` output and collects the benchmark
// lines. Repeated runs of one benchmark keep the minimum ns/op (and that
// run's companion metrics). Lines that are not benchmark results are
// ignored, so the whole test output can be piped in unfiltered.
func Parse(r io.Reader) (Baseline, error) {
	byName := map[string]Benchmark{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := byName[b.Name]; !seen || b.NsPerOp < prev.NsPerOp {
			byName[b.Name] = b
		}
	}
	if err := sc.Err(); err != nil {
		return Baseline{}, fmt.Errorf("benchdata: read: %w", err)
	}
	if len(byName) == 0 {
		return Baseline{}, fmt.Errorf("benchdata: no benchmark lines found (want `go test -bench -benchmem` output)")
	}
	out := Baseline{Schema: Schema}
	for _, b := range byName {
		out.Benchmarks = append(out.Benchmarks, b)
	}
	sort.Slice(out.Benchmarks, func(i, j int) bool { return out.Benchmarks[i].Name < out.Benchmarks[j].Name })
	return out, nil
}

// parseLine decodes one `BenchmarkName-P  N  x ns/op  [y B/op  z allocs/op]`
// result line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix; the baseline is procs-agnostic.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name}
	got := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			got = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, got
}

// Canonical renders the baseline in its checked-in byte form: indented JSON
// with a trailing newline.
func (b Baseline) Canonical() ([]byte, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchdata: canonicalise: %w", err)
	}
	return append(out, '\n'), nil
}

// ParseBaseline decodes a checked-in baseline file.
func ParseBaseline(data []byte) (Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return Baseline{}, fmt.Errorf("benchdata: parse baseline: %w", err)
	}
	if b.Schema != Schema {
		return Baseline{}, fmt.Errorf("benchdata: baseline schema %d, want %d", b.Schema, Schema)
	}
	return b, nil
}

// Regression is one benchmark that got worse than the baseline allows.
type Regression struct {
	Name   string
	Metric string // "ns/op", "allocs/op", or "missing"
	Old    float64
	New    float64
}

// String renders the regression for reports.
func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: missing from this run (baseline has it)", r.Name)
	}
	if r.Metric == "speedup" {
		return fmt.Sprintf("%s: speedup %.2fx < required %.2fx", r.Name, r.New, r.Old)
	}
	if r.Old == 0 {
		// A zero baseline (0-alloc benchmarks) has no meaningful percentage.
		return fmt.Sprintf("%s: %s %.6g -> %.6g", r.Name, r.Metric, r.Old, r.New)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%+.1f%%)",
		r.Name, r.Metric, r.Old, r.New, 100*(r.New-r.Old)/r.Old)
}

// Compare checks a fresh run against the baseline: every baseline benchmark
// must be present, its ns/op may grow by at most maxNs (fractional, e.g.
// 0.25 for 25%), and its allocs/op by at most maxAllocs with half an
// allocation of absolute slack (so 0-alloc baselines stay 0-alloc). The
// tolerances are separate because the metrics are not equally portable:
// allocs/op is machine-independent and can be gated tightly anywhere, while
// ns/op recorded on one machine only supports a coarse gate on another.
// Benchmarks the baseline does not know are ignored — add them with
// `cbctl bench -update`.
func Compare(baseline, fresh Baseline, maxNs, maxAllocs float64) []Regression {
	freshBy := map[string]Benchmark{}
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	var out []Regression
	for _, old := range baseline.Benchmarks {
		now, ok := freshBy[old.Name]
		if !ok {
			out = append(out, Regression{Name: old.Name, Metric: "missing"})
			continue
		}
		if old.NsPerOp > 0 && now.NsPerOp > old.NsPerOp*(1+maxNs) {
			out = append(out, Regression{Name: old.Name, Metric: "ns/op", Old: old.NsPerOp, New: now.NsPerOp})
		}
		if now.AllocsPerOp > old.AllocsPerOp*(1+maxAllocs)+0.5 {
			out = append(out, Regression{Name: old.Name, Metric: "allocs/op", Old: old.AllocsPerOp, New: now.AllocsPerOp})
		}
	}
	return out
}

// CheckSpeedups enforces the baseline's speedup section against a fresh run
// on a host with the given logical CPU count. Pairs whose MinCPUs exceeds
// cpus are skipped (the ratio is meaningless there); a missing leg on an
// eligible host is a failure, not a skip — otherwise deleting a benchmark
// would silently disarm its gate. Old carries the required ratio and New
// the measured one.
// SkippedSpeedups returns the baseline's speedup pairs that CheckSpeedups
// would NOT enforce on a host with the given logical CPU count. Callers
// surface these so an under-provisioned host reports the disarmed gates
// explicitly instead of passing in silence.
func SkippedSpeedups(baseline Baseline, cpus int) []Speedup {
	var out []Speedup
	for _, s := range baseline.Speedups {
		if cpus < s.MinCPUs {
			out = append(out, s)
		}
	}
	return out
}

func CheckSpeedups(baseline, fresh Baseline, cpus int) []Regression {
	freshBy := map[string]Benchmark{}
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	var out []Regression
	for _, s := range baseline.Speedups {
		if cpus < s.MinCPUs {
			continue
		}
		pair := fmt.Sprintf("%s vs %s", s.Name, s.Base)
		name, okN := freshBy[s.Name]
		base, okB := freshBy[s.Base]
		if !okN || !okB || name.NsPerOp <= 0 {
			out = append(out, Regression{Name: pair, Metric: "missing"})
			continue
		}
		if ratio := base.NsPerOp / name.NsPerOp; ratio < s.MinRatio {
			out = append(out, Regression{Name: pair, Metric: "speedup", Old: s.MinRatio, New: ratio})
		}
	}
	return out
}
