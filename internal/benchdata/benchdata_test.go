package benchdata

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: clusterbooster/internal/bench
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelPingPongEager      	 1148995	       990.6 ns/op	     142 B/op	       0 allocs/op
BenchmarkKernelPingPongEager      	 1100000	       985.2 ns/op	     140 B/op	       0 allocs/op
BenchmarkKernelAllreduce8-16      	  145767	      7942 ns/op	    1358 B/op	       1 allocs/op
some unrelated line
PASS
ok  	clusterbooster/internal/bench	11.694s
`

func TestParse(t *testing.T) {
	b, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(b.Benchmarks), b.Benchmarks)
	}
	// Sorted by name; the -16 GOMAXPROCS suffix is stripped.
	if b.Benchmarks[0].Name != "KernelAllreduce8" || b.Benchmarks[1].Name != "KernelPingPongEager" {
		t.Fatalf("names = %q, %q", b.Benchmarks[0].Name, b.Benchmarks[1].Name)
	}
	// Repeated runs keep the minimum ns/op.
	if got := b.Benchmarks[1].NsPerOp; got != 985.2 {
		t.Fatalf("ns/op = %v, want the 985.2 minimum", got)
	}
	if b.Benchmarks[0].AllocsPerOp != 1 || b.Benchmarks[0].BytesPerOp != 1358 {
		t.Fatalf("allreduce8 metrics = %+v", b.Benchmarks[0])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("no error on input without benchmark lines")
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	b, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b.Note = "test"
	raw, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(b.Benchmarks) || back.Note != "test" || back.Schema != Schema {
		t.Fatalf("round trip mangled the baseline: %+v", back)
	}
	if _, err := ParseBaseline([]byte(`{"schema": 99}`)); err == nil {
		t.Fatal("no error on unknown schema")
	}
}

func TestCompare(t *testing.T) {
	base := Baseline{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 4},
		{Name: "B", NsPerOp: 500, AllocsPerOp: 0},
		{Name: "Gone", NsPerOp: 10, AllocsPerOp: 0},
	}}
	fresh := Baseline{Schema: Schema, Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1300, AllocsPerOp: 4}, // +30% ns: regression at 25%
		{Name: "B", NsPerOp: 600, AllocsPerOp: 1},  // +20% ns ok; +1 alloc beyond the 0.5 slack
		{Name: "New", NsPerOp: 1, AllocsPerOp: 0},  // unknown to the baseline: ignored
	}}
	regs := Compare(base, fresh, 0.25, 0.25)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions %v, want 3 (A ns, B allocs, Gone missing)", len(regs), regs)
	}
	seen := map[string]string{}
	for _, r := range regs {
		seen[r.Name] = r.Metric
		if r.String() == "" {
			t.Fatal("empty regression rendering")
		}
	}
	if seen["A"] != "ns/op" || seen["B"] != "allocs/op" || seen["Gone"] != "missing" {
		t.Fatalf("regressions = %v", seen)
	}
	// Within tolerance: no regressions.
	if regs := Compare(base, base, 0.25, 0.25); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %v", regs)
	}
}

func TestCheckSpeedups(t *testing.T) {
	base := Baseline{Schema: Schema, Speedups: []Speedup{
		{Name: "Par", Base: "Serial", MinRatio: 2.0, MinCPUs: 4},
	}}
	fresh := func(serial, par float64) Baseline {
		return Baseline{Schema: Schema, Benchmarks: []Benchmark{
			{Name: "Serial", NsPerOp: serial},
			{Name: "Par", NsPerOp: par},
		}}
	}
	cases := []struct {
		name       string
		fresh      Baseline
		cpus       int
		wantMetric string // "" = no finding
	}{
		{"holds", fresh(1000, 400), 4, ""},
		{"exactly at the bound", fresh(1000, 500), 4, ""},
		{"too slow", fresh(1000, 600), 4, "speedup"},
		{"skipped on a small host", fresh(1000, 2000), 1, ""},
		{"missing leg fails, not skips", Baseline{Schema: Schema, Benchmarks: []Benchmark{{Name: "Serial", NsPerOp: 1000}}}, 4, "missing"},
	}
	for _, tc := range cases {
		regs := CheckSpeedups(base, tc.fresh, tc.cpus)
		switch {
		case tc.wantMetric == "" && len(regs) != 0:
			t.Errorf("%s: unexpected findings %v", tc.name, regs)
		case tc.wantMetric != "" && (len(regs) != 1 || regs[0].Metric != tc.wantMetric):
			t.Errorf("%s: findings %v, want one %q", tc.name, regs, tc.wantMetric)
		case tc.wantMetric != "" && regs[0].String() == "":
			t.Errorf("%s: empty rendering", tc.name)
		}
	}
}

func TestSkippedSpeedups(t *testing.T) {
	base := Baseline{Schema: Schema, Speedups: []Speedup{
		{Name: "Par2", Base: "Serial", MinRatio: 1.5, MinCPUs: 2},
		{Name: "Par4", Base: "Serial", MinRatio: 2.0, MinCPUs: 4},
	}}
	if got := SkippedSpeedups(base, 8); len(got) != 0 {
		t.Fatalf("8 CPUs: skipped %v, want none", got)
	}
	if got := SkippedSpeedups(base, 2); len(got) != 1 || got[0].Name != "Par4" {
		t.Fatalf("2 CPUs: skipped %v, want just Par4", got)
	}
	if got := SkippedSpeedups(base, 1); len(got) != 2 {
		t.Fatalf("1 CPU: skipped %v, want both pairs", got)
	}
	// Skipped and enforced partition the speedup section: what one drops the
	// other reports, at every CPU count.
	for _, cpus := range []int{1, 2, 4, 8} {
		fresh := Baseline{Schema: Schema} // both legs missing
		if n := len(SkippedSpeedups(base, cpus)) + len(CheckSpeedups(base, fresh, cpus)); n != len(base.Speedups) {
			t.Errorf("cpus=%d: skipped+checked = %d, want %d", cpus, n, len(base.Speedups))
		}
	}
}

func TestSpeedupsRoundTrip(t *testing.T) {
	b := Baseline{Schema: Schema,
		Benchmarks: []Benchmark{{Name: "A", NsPerOp: 1}},
		Speedups:   []Speedup{{Name: "Par", Base: "Serial", MinRatio: 2, MinCPUs: 4}},
	}
	raw, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBaseline(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Speedups) != 1 || back.Speedups[0] != b.Speedups[0] {
		t.Fatalf("speedups did not round-trip: %+v", back.Speedups)
	}
}
