// Package nam models the DEEP-ER network-attached memory: Hybrid Memory Cube
// devices behind a Xilinx Virtex 7 FPGA, directly attached to the EXTOLL
// fabric (§II-B of the paper, ref [6]). The defining property is that the
// memory is globally accessible through remote DMA without any CPU on the
// remote side — all access cost is the initiator's RDMA operation through the
// fabric.
//
// The prototype holds two devices of 2 GB each; checkpointing into the NAM is
// the use case studied in ref [6] and reproduced by the A2 ablation bench.
//
// Region access is timed through kernel events: Write/Read park the calling
// ioev.Proc for the RDMA operation, SubmitWrite/SubmitRead issue it against
// an ioev.Op dependency without parking. The device carries no mutex — the
// cooperative kernel serialises every allocation and access, the same
// argument as the rest of the migrated I/O stack.
package nam

import (
	"fmt"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
)

// DeviceCapacity is the per-device capacity of the prototype's NAM cards
// (2 GB, limited by then-current HMC technology).
const DeviceCapacity = 2 << 30

// Device is one NAM card on the fabric.
type Device struct {
	name     string
	capacity int64
	endpoint int
	net      *fabric.Network
	used     int64
	regions  map[string]*Region
}

// Region is an allocated range of NAM memory.
type Region struct {
	dev  *Device
	name string
	size int64
}

// New attaches a NAM device with the given capacity to the fabric.
func New(net *fabric.Network, name string, capacity int64) *Device {
	return &Device{
		name:     name,
		capacity: capacity,
		endpoint: net.AttachEndpoint(),
		net:      net,
		regions:  map[string]*Region{},
	}
}

// NewPrototypePair attaches the two 2 GB NAM devices of the DEEP-ER
// prototype.
func NewPrototypePair(net *fabric.Network) [2]*Device {
	return [2]*Device{
		New(net, "nam0", DeviceCapacity),
		New(net, "nam1", DeviceCapacity),
	}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// Used returns the allocated bytes.
func (d *Device) Used() int64 { return d.used }

// Alloc reserves a named region of the given size.
func (d *Device) Alloc(name string, size int64) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("nam: invalid region size %d", size)
	}
	if _, ok := d.regions[name]; ok {
		return nil, fmt.Errorf("nam: region %q already allocated", name)
	}
	if d.used+size > d.capacity {
		return nil, fmt.Errorf("nam: %s full: %d + %d > %d", d.name, d.used, size, d.capacity)
	}
	r := &Region{dev: d, name: name, size: size}
	d.regions[name] = r
	d.used += size
	return r, nil
}

// Free releases a region by name (no-op if absent).
func (d *Device) Free(name string) {
	if r, ok := d.regions[name]; ok {
		d.used -= r.size
		delete(d.regions, name)
	}
}

// Region returns an allocated region by name.
func (d *Device) Region(name string) (*Region, bool) {
	r, ok := d.regions[name]
	return r, ok
}

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return r.size }

// Write RDMA-puts size bytes into the region from the calling rank's node,
// parking the caller until the put completes. No CPU acts on the NAM side.
func (r *Region) Write(p ioev.Proc, size int64) error {
	op, err := r.SubmitWrite(ioev.Start(p), p.Node(), size)
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitWrite issues the RDMA put after dep without parking, from the
// initiator node.
func (r *Region) SubmitWrite(dep ioev.Op, initiator *machine.Node, size int64) (ioev.Op, error) {
	if size < 0 || size > r.size {
		return ioev.Op{}, fmt.Errorf("nam: write of %d bytes exceeds region %q (%d)", size, r.name, r.size)
	}
	return ioev.At(r.dev.net.RDMAWrite(initiator, r.dev.endpoint, int(size), dep.Time())), nil
}

// Read RDMA-gets size bytes from the region to the calling rank's node,
// parking the caller until the get completes.
func (r *Region) Read(p ioev.Proc, size int64) error {
	op, err := r.SubmitRead(ioev.Start(p), p.Node(), size)
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitRead issues the RDMA get after dep without parking, to the
// initiator node.
func (r *Region) SubmitRead(dep ioev.Op, initiator *machine.Node, size int64) (ioev.Op, error) {
	if size < 0 || size > r.size {
		return ioev.Op{}, fmt.Errorf("nam: read of %d bytes exceeds region %q (%d)", size, r.name, r.size)
	}
	return ioev.At(r.dev.net.RDMARead(initiator, r.dev.endpoint, int(size), dep.Time())), nil
}
