package nam

import (
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
)

func testSetup() (*fabric.Network, *machine.System) {
	sys := machine.New(2, 2)
	return fabric.New(sys, fabric.Config{}), sys
}

func TestPrototypePair(t *testing.T) {
	net, _ := testSetup()
	devs := NewPrototypePair(net)
	for _, d := range devs {
		if d.Capacity() != 2<<30 {
			t.Errorf("%s capacity = %d, want 2 GiB", d.Name(), d.Capacity())
		}
	}
	if devs[0].Name() == devs[1].Name() {
		t.Error("devices share a name")
	}
}

func TestAllocFree(t *testing.T) {
	net, _ := testSetup()
	d := New(net, "nam0", 1000)
	r, err := d.Alloc("ckpt", 600)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 600 || d.Used() != 600 {
		t.Fatalf("size/used = %d/%d", r.Size(), d.Used())
	}
	if _, err := d.Alloc("ckpt", 100); err == nil {
		t.Fatal("duplicate region name accepted")
	}
	if _, err := d.Alloc("big", 500); err == nil {
		t.Fatal("overcommit accepted")
	}
	d.Free("ckpt")
	if d.Used() != 0 {
		t.Fatal("free did not release")
	}
	if _, ok := d.Region("ckpt"); ok {
		t.Fatal("freed region still present")
	}
}

func TestRDMAAccessFromAllNodes(t *testing.T) {
	// The NAM is globally accessible: both Cluster and Booster nodes can
	// read and write it directly.
	net, sys := testSetup()
	d := New(net, "nam0", 1<<30)
	r, err := d.Alloc("data", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sys.Nodes() {
		a := ioev.Detach(n, 0)
		if err := r.Write(a, 1<<20); err != nil || a.Now() <= 0 {
			t.Fatalf("node %s write: %v at %v", n.Name(), err, a.Now())
		}
		before := a.Now()
		if err := r.Read(a, 1<<20); err != nil || a.Now() <= before {
			t.Fatalf("node %s read: %v at %v", n.Name(), err, a.Now())
		}
	}
}

func TestRegionBoundsChecked(t *testing.T) {
	net, sys := testSetup()
	d := New(net, "nam0", 1<<20)
	r, _ := d.Alloc("small", 100)
	a := ioev.Detach(sys.Node(0), 0)
	if err := r.Write(a, 200); err == nil {
		t.Fatal("oversized write accepted")
	}
	if err := r.Read(a, 200); err == nil {
		t.Fatal("oversized read accepted")
	}
	if a.Now() != 0 {
		t.Errorf("rejected transfers advanced the clock to %v", a.Now())
	}
}

func TestWriteFasterThanNVMeForSmallData(t *testing.T) {
	// The NAM's raison d'être for checkpointing (ref [6]): RDMA at fabric
	// speed beats the local NVMe's write bandwidth for bursts.
	net, sys := testSetup()
	d := New(net, "nam0", 1<<30)
	r, _ := d.Alloc("burst", 256<<20)
	a := ioev.Detach(sys.Node(0), 0)
	if err := r.Write(a, 256<<20); err != nil {
		t.Fatal(err)
	}
	// 256 MiB at ~11 GB/s ≈ 24 ms; NVMe write at 1.9 GB/s would be ~141 ms.
	if a.Now().Seconds() > 0.05 {
		t.Errorf("NAM write of 256 MiB took %v, want < 50 ms", a.Now())
	}
}
