package beegfs

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

func testFS(cfg Config) (*FS, *machine.System) {
	sys := machine.New(4, 2)
	net := fabric.New(sys, fabric.Config{})
	return New(net, cfg), sys
}

func TestCreateWriteReadBack(t *testing.T) {
	fs, sys := testFS(Config{})
	n := sys.Node(0)
	fs.Create("/out/data.bin", n, 0)
	payload := bytes.Repeat([]byte("deep-er!"), 1000)
	done, err := fs.Write("/out/data.bin", 0, payload, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, rdone, err := fs.Read("/out/data.bin", 0, int64(len(payload)), n, done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read back differs from written data")
	}
	if rdone <= done {
		t.Fatal("read completed before it started")
	}
}

func TestWriteAtOffsetExtends(t *testing.T) {
	fs, sys := testFS(Config{})
	n := sys.Node(0)
	fs.Create("/f", n, 0)
	fs.Write("/f", 10, []byte("abc"), n, 0)
	size, err := fs.Size("/f")
	if err != nil || size != 13 {
		t.Fatalf("size = %d (%v), want 13", size, err)
	}
	got, _, _ := fs.Read("/f", 0, 13, n, 0)
	if got[0] != 0 || string(got[10:]) != "abc" {
		t.Fatalf("content = %q", got)
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs, sys := testFS(Config{})
	n := sys.Node(0)
	if _, err := fs.Write("/nope", 0, []byte("x"), n, 0); err == nil {
		t.Error("write to missing file succeeded")
	}
	if _, _, err := fs.Read("/nope", 0, 1, n, 0); err == nil {
		t.Error("read of missing file succeeded")
	}
	if _, err := fs.Size("/nope"); err == nil {
		t.Error("stat of missing file succeeded")
	}
}

func TestReadBeyondEOF(t *testing.T) {
	fs, sys := testFS(Config{})
	n := sys.Node(0)
	fs.Create("/f", n, 0)
	fs.Write("/f", 0, []byte("abc"), n, 0)
	if _, _, err := fs.Read("/f", 0, 10, n, 0); err == nil {
		t.Error("read beyond EOF succeeded")
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	fs, sys := testFS(Config{})
	n := sys.Node(0)
	fs.Create("/f", n, 0)
	fs.Write("/f", 0, make([]byte, 1000), n, 0)
	if fs.Used() != 1000 {
		t.Fatalf("used = %d", fs.Used())
	}
	fs.Delete("/f", n, 0)
	if fs.Used() != 0 || fs.Exists("/f") {
		t.Fatal("delete did not free")
	}
}

func TestCapacityEnforced(t *testing.T) {
	fs, sys := testFS(Config{CapacityBytes: 1000})
	n := sys.Node(0)
	fs.Create("/f", n, 0)
	if _, err := fs.Write("/f", 0, make([]byte, 2000), n, 0); err == nil {
		t.Error("overflow accepted")
	}
}

func TestStripingUsesBothTargets(t *testing.T) {
	// A two-chunk write must land one chunk on each target; its time should
	// be roughly one chunk per target, not two chunks on one.
	cfg := Config{ChunkSize: 1 << 20}
	fs, sys := testFS(cfg)
	n := sys.Node(0)
	fs.Create("/big", n, 0)
	twoChunks := make([]byte, 2<<20)
	done, err := fs.Write("/big", 0, twoChunks, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	perChunkDisk := float64(1<<20) / (fs.Config().TargetGBs * 1e9)
	// Both chunks cross the client's injection link serially (~2 net times),
	// then hit different disks in parallel: total ≪ 2 disk times + 2 net.
	netTime := float64(2<<20) / (12.5 * 0.88 * 1e9)
	budget := perChunkDisk + 2*netTime + 0.001
	if done.Seconds() > budget {
		t.Errorf("striped write took %vs, want < %vs (parallel targets)", done.Seconds(), budget)
	}
}

func TestTargetSpan(t *testing.T) {
	fs, _ := testFS(Config{ChunkSize: 100, StorageTargets: 2})
	span := fs.targetSpan(50, 200) // covers chunks 0(50B),1(100B),2(50B)
	if span[0] != 100 || span[1] != 100 {
		t.Errorf("span = %v, want [100 100]", span)
	}
}

func TestList(t *testing.T) {
	fs, sys := testFS(Config{})
	n := sys.Node(0)
	fs.Create("/b", n, 0)
	fs.Create("/a", n, 0)
	got := fs.List()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("list = %v", got)
	}
}

func TestQuickWriteReadRoundTrip(t *testing.T) {
	fs, sys := testFS(Config{ChunkSize: 64})
	n := sys.Node(0)
	fs.Create("/q", n, 0)
	f := func(off uint16, data []byte) bool {
		if _, err := fs.Write("/q", int64(off), data, n, 0); err != nil {
			return false
		}
		got, _, err := fs.Read("/q", int64(off), int64(len(data)), n, 0)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- cache domain tests ---

func cacheSetup(mode CacheMode) (*Cache, *machine.System) {
	sys := machine.New(4, 2)
	net := fabric.New(sys, fabric.Config{})
	fs := New(net, Config{})
	devs := map[int]*nvme.Device{}
	for _, n := range sys.Nodes() {
		devs[n.ID] = nvme.New(nvme.P3700())
	}
	return NewCache(fs, mode, devs), sys
}

func TestCacheAsyncFasterThanSync(t *testing.T) {
	// The point of the cache domain: async writes return at NVMe speed.
	data := make([]byte, 64<<20)
	ca, sysA := cacheSetup(CacheAsync)
	doneA, err := ca.Write("/ckpt", data, sysA.Node(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	cs, sysS := cacheSetup(CacheSync)
	doneS, err := cs.Write("/ckpt", data, sysS.Node(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if doneA >= doneS {
		t.Errorf("async write (%v) not faster than sync (%v)", doneA, doneS)
	}
}

func TestCacheDrainCoversFlush(t *testing.T) {
	c, sys := cacheSetup(CacheAsync)
	data := make([]byte, 64<<20)
	localDone, _ := c.Write("/a", data, sys.Node(0), 0)
	drained := c.Drain(localDone)
	if drained <= localDone {
		t.Errorf("drain (%v) not after local completion (%v)", drained, localDone)
	}
	// After the drain the file must be in the global FS.
	if !c.fs.Exists("/a") {
		t.Error("flush did not reach the global FS")
	}
	sz, _ := c.fs.Size("/a")
	if sz != int64(len(data)) {
		t.Errorf("global copy has %d bytes, want %d", sz, len(data))
	}
}

func TestCacheLocalReadFastPath(t *testing.T) {
	c, sys := cacheSetup(CacheAsync)
	data := bytes.Repeat([]byte("x"), 32<<20)
	owner, other := sys.Node(0), sys.Node(1)
	c.Write("/f", data, owner, 0)
	_, tLocal, err := c.Read("/f", owner, vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, tRemote, err := c.Read("/f", other, vclock.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tLocal >= tRemote {
		t.Errorf("local cached read (%v) not faster than global read (%v)", tLocal, tRemote)
	}
}

func TestCacheContentRoundTrip(t *testing.T) {
	c, sys := cacheSetup(CacheSync)
	data := []byte("precious checkpoint bytes")
	c.Write("/f", data, sys.Node(2), 0)
	got, _, err := c.Read("/f", sys.Node(2), 0)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cache read = %q (%v)", got, err)
	}
	got2, _, err := c.fs.Read("/f", 0, int64(len(data)), sys.Node(3), 0)
	if err != nil || !bytes.Equal(got2, data) {
		t.Fatalf("global read = %q (%v)", got2, err)
	}
}

func TestCacheRejectsForeignNode(t *testing.T) {
	sys := machine.New(2, 0)
	net := fabric.New(sys, fabric.Config{})
	fs := New(net, Config{})
	devs := map[int]*nvme.Device{sys.Node(0).ID: nvme.New(nvme.P3700())}
	c := NewCache(fs, CacheAsync, devs)
	if _, err := c.Write("/f", []byte("x"), sys.Node(1), 0); err == nil {
		t.Error("write from node outside the cache domain succeeded")
	}
}

func TestCacheEvictFreesNVMe(t *testing.T) {
	c, sys := cacheSetup(CacheAsync)
	c.Write("/f", make([]byte, 1000), sys.Node(0), 0)
	dev := c.devs[sys.Node(0).ID]
	if dev.Used() == 0 {
		t.Fatal("cache write did not use NVMe")
	}
	c.Evict("/f")
	if dev.Used() != 0 {
		t.Error("evict did not free NVMe space")
	}
	if math.Abs(float64(dev.Used())) > 0 {
		t.Error("nvme not empty")
	}
}
