package beegfs

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

func testFS(cfg Config) (*FS, *machine.System) {
	sys := machine.New(4, 2)
	net := fabric.New(sys, fabric.Config{})
	return New(net, cfg), sys
}

func TestCreateWriteReadBack(t *testing.T) {
	fs, sys := testFS(Config{})
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/out/data.bin")
	payload := bytes.Repeat([]byte("deep-er!"), 1000)
	if err := fs.Write(a, "/out/data.bin", 0, payload); err != nil {
		t.Fatal(err)
	}
	done := a.Now()
	got, err := fs.Read(a, "/out/data.bin", 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read back differs from written data")
	}
	if a.Now() <= done {
		t.Fatal("read completed before it started")
	}
}

func TestWriteAtOffsetExtends(t *testing.T) {
	fs, sys := testFS(Config{})
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/f")
	fs.Write(a, "/f", 10, []byte("abc"))
	size, err := fs.Size("/f")
	if err != nil || size != 13 {
		t.Fatalf("size = %d (%v), want 13", size, err)
	}
	got, _ := fs.Read(a, "/f", 0, 13)
	if got[0] != 0 || string(got[10:]) != "abc" {
		t.Fatalf("content = %q", got)
	}
}

func TestMissingFileErrors(t *testing.T) {
	fs, sys := testFS(Config{})
	a := ioev.Detach(sys.Node(0), 0)
	if err := fs.Write(a, "/nope", 0, []byte("x")); err == nil {
		t.Error("write to missing file succeeded")
	}
	if _, err := fs.Read(a, "/nope", 0, 1); err == nil {
		t.Error("read of missing file succeeded")
	}
	if _, err := fs.Size("/nope"); err == nil {
		t.Error("stat of missing file succeeded")
	}
}

func TestReadBeyondEOF(t *testing.T) {
	fs, sys := testFS(Config{})
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/f")
	fs.Write(a, "/f", 0, []byte("abc"))
	if _, err := fs.Read(a, "/f", 0, 10); err == nil {
		t.Error("read beyond EOF succeeded")
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	fs, sys := testFS(Config{})
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/f")
	fs.Write(a, "/f", 0, make([]byte, 1000))
	if fs.Used() != 1000 {
		t.Fatalf("used = %d", fs.Used())
	}
	fs.Delete(a, "/f")
	if fs.Used() != 0 || fs.Exists("/f") {
		t.Fatal("delete did not free")
	}
}

func TestCapacityEnforced(t *testing.T) {
	fs, sys := testFS(Config{CapacityBytes: 1000})
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/f")
	if err := fs.Write(a, "/f", 0, make([]byte, 2000)); err == nil {
		t.Error("overflow accepted")
	}
}

func TestStripingUsesBothTargets(t *testing.T) {
	// A two-chunk write must land one chunk on each target; its time should
	// be roughly one chunk per target, not two chunks on one.
	cfg := Config{ChunkSize: 1 << 20}
	fs, sys := testFS(cfg)
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/big")
	start := a.Now()
	twoChunks := make([]byte, 2<<20)
	if err := fs.Write(a, "/big", 0, twoChunks); err != nil {
		t.Fatal(err)
	}
	elapsed := a.Now() - start
	perChunkDisk := float64(1<<20) / (fs.Config().TargetGBs * 1e9)
	// Both chunks cross the client's injection link serially (~2 net times),
	// then hit different disks in parallel: total ≪ 2 disk times + 2 net.
	netTime := float64(2<<20) / (12.5 * 0.88 * 1e9)
	budget := perChunkDisk + 2*netTime + 0.001
	if elapsed.Seconds() > budget {
		t.Errorf("striped write took %vs, want < %vs (parallel targets)", elapsed.Seconds(), budget)
	}
}

func TestTargetSpan(t *testing.T) {
	fs, _ := testFS(Config{ChunkSize: 100, StorageTargets: 2})
	span := fs.targetSpan(50, 200) // covers chunks 0(50B),1(100B),2(50B)
	if span[0] != 100 || span[1] != 100 {
		t.Errorf("span = %v, want [100 100]", span)
	}
}

func TestList(t *testing.T) {
	fs, sys := testFS(Config{})
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/b")
	fs.Create(a, "/a")
	got := fs.List()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("list = %v", got)
	}
}

func TestSubmitWriteThreadsDependency(t *testing.T) {
	// The submission layer must price a dependent write strictly after its
	// dependency without any actor clock in play.
	fs, sys := testFS(Config{})
	n := sys.Node(0)
	created := fs.SubmitCreate(ioev.At(0), "/f", n)
	op1, err := fs.SubmitWrite(created, "/f", 0, make([]byte, 1<<20), n)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := fs.SubmitWrite(op1, "/f", 1<<20, make([]byte, 1<<20), n)
	if err != nil {
		t.Fatal(err)
	}
	if !(created.Time() > 0 && op1.Time() > created.Time() && op2.Time() > op1.Time()) {
		t.Errorf("ops not ordered: create=%v write1=%v write2=%v",
			created.Time(), op1.Time(), op2.Time())
	}
}

func TestQuickWriteReadRoundTrip(t *testing.T) {
	fs, sys := testFS(Config{ChunkSize: 64})
	a := ioev.Detach(sys.Node(0), 0)
	fs.Create(a, "/q")
	f := func(off uint16, data []byte) bool {
		if err := fs.Write(a, "/q", int64(off), data); err != nil {
			return false
		}
		got, err := fs.Read(a, "/q", int64(off), int64(len(data)))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- cache domain tests ---

func cacheSetup(mode CacheMode) (*Cache, *machine.System) {
	sys := machine.New(4, 2)
	net := fabric.New(sys, fabric.Config{})
	fs := New(net, Config{})
	devs := map[int]*nvme.Device{}
	for _, n := range sys.Nodes() {
		devs[n.ID] = nvme.New(nvme.P3700())
	}
	return NewCache(fs, mode, devs), sys
}

func TestCacheAsyncFasterThanSync(t *testing.T) {
	// The point of the cache domain: async writes return at NVMe speed.
	data := make([]byte, 64<<20)
	ca, sysA := cacheSetup(CacheAsync)
	aa := ioev.Detach(sysA.Node(0), 0)
	if err := ca.Write(aa, "/ckpt", data); err != nil {
		t.Fatal(err)
	}
	cs, sysS := cacheSetup(CacheSync)
	as := ioev.Detach(sysS.Node(0), 0)
	if err := cs.Write(as, "/ckpt", data); err != nil {
		t.Fatal(err)
	}
	if aa.Now() >= as.Now() {
		t.Errorf("async write (%v) not faster than sync (%v)", aa.Now(), as.Now())
	}
}

func TestCacheDrainCoversFlush(t *testing.T) {
	c, sys := cacheSetup(CacheAsync)
	data := make([]byte, 64<<20)
	a := ioev.Detach(sys.Node(0), 0)
	c.Write(a, "/a", data)
	localDone := a.Now()
	c.Drain(a)
	if a.Now() <= localDone {
		t.Errorf("drain (%v) not after local completion (%v)", a.Now(), localDone)
	}
	// After the drain the file must be in the global FS.
	if !c.fs.Exists("/a") {
		t.Error("flush did not reach the global FS")
	}
	sz, _ := c.fs.Size("/a")
	if sz != int64(len(data)) {
		t.Errorf("global copy has %d bytes, want %d", sz, len(data))
	}
}

func TestCacheLocalReadFastPath(t *testing.T) {
	c, sys := cacheSetup(CacheAsync)
	data := bytes.Repeat([]byte("x"), 32<<20)
	owner, other := sys.Node(0), sys.Node(1)
	aw := ioev.Detach(owner, 0)
	c.Write(aw, "/f", data)
	aLocal := ioev.Detach(owner, vclock.Second)
	if _, err := c.Read(aLocal, "/f"); err != nil {
		t.Fatal(err)
	}
	aRemote := ioev.Detach(other, vclock.Second)
	if _, err := c.Read(aRemote, "/f"); err != nil {
		t.Fatal(err)
	}
	if aLocal.Now() >= aRemote.Now() {
		t.Errorf("local cached read (%v) not faster than global read (%v)", aLocal.Now(), aRemote.Now())
	}
}

func TestCacheContentRoundTrip(t *testing.T) {
	c, sys := cacheSetup(CacheSync)
	data := []byte("precious checkpoint bytes")
	a := ioev.Detach(sys.Node(2), 0)
	c.Write(a, "/f", data)
	got, err := c.Read(a, "/f")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("cache read = %q (%v)", got, err)
	}
	b := ioev.Detach(sys.Node(3), 0)
	got2, err := c.fs.Read(b, "/f", 0, int64(len(data)))
	if err != nil || !bytes.Equal(got2, data) {
		t.Fatalf("global read = %q (%v)", got2, err)
	}
}

func TestCacheRejectsForeignNode(t *testing.T) {
	sys := machine.New(2, 0)
	net := fabric.New(sys, fabric.Config{})
	fs := New(net, Config{})
	devs := map[int]*nvme.Device{sys.Node(0).ID: nvme.New(nvme.P3700())}
	c := NewCache(fs, CacheAsync, devs)
	a := ioev.Detach(sys.Node(1), 0)
	if err := c.Write(a, "/f", []byte("x")); err == nil {
		t.Error("write from node outside the cache domain succeeded")
	}
}

func TestCacheEvictFreesNVMe(t *testing.T) {
	c, sys := cacheSetup(CacheAsync)
	a := ioev.Detach(sys.Node(0), 0)
	c.Write(a, "/f", make([]byte, 1000))
	dev := c.devs[sys.Node(0).ID]
	if dev.Used() == 0 {
		t.Fatal("cache write did not use NVMe")
	}
	c.Evict("/f")
	if dev.Used() != 0 {
		t.Error("evict did not free NVMe space")
	}
	if math.Abs(float64(dev.Used())) > 0 {
		t.Error("nvme not empty")
	}
}
