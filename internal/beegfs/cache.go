package beegfs

import (
	"fmt"

	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

// CacheMode selects how the BeeOND cache domain propagates data to the
// global file system (§III-C: "can be used in a synchronous or asynchronous
// mode").
type CacheMode int

const (
	// CacheAsync returns after the local NVMe write; a background daemon
	// drains to the global FS, and Drain waits for it.
	CacheAsync CacheMode = iota
	// CacheSync writes through: the call returns when the data is in the
	// global file system.
	CacheSync
)

// String names the cache mode.
func (m CacheMode) String() string {
	if m == CacheSync {
		return "sync"
	}
	return "async"
}

// Cache is a BeeOND cache domain: a transient file-system layer over the
// node-local NVMe devices of a job's nodes, in front of a global FS. Like
// FS it carries no mutex: the cooperative kernel serialises every access.
type Cache struct {
	fs      *FS
	mode    CacheMode
	devs    map[int]*nvme.Device // node ID → device
	content map[string][]byte
	owner   map[string]*machine.Node
	pending map[string]vclock.Time // path → global-FS flush completion
}

// NewCache builds a cache domain in the given mode over the node set; each
// node contributes its NVMe device.
func NewCache(fs *FS, mode CacheMode, devs map[int]*nvme.Device) *Cache {
	return &Cache{
		fs:      fs,
		mode:    mode,
		devs:    devs,
		content: map[string][]byte{},
		owner:   map[string]*machine.Node{},
		pending: map[string]vclock.Time{},
	}
}

// Mode returns the cache mode.
func (c *Cache) Mode() CacheMode { return c.mode }

// Write stores a whole file into the cache domain from the calling rank's
// node. In async mode the caller parks only until the local NVMe has the
// data, while the flush daemon's completion is a scheduled kernel event
// (Drain waits for it); in sync mode the caller parks until the global FS
// has the data. A flush still in flight when the job's last rank exits
// never completes — its completion event, like any pending callback, is
// dropped with the kernel.
func (c *Cache) Write(p ioev.Proc, path string, data []byte) error {
	node := p.Node()
	dev, ok := c.devs[node.ID]
	if !ok {
		return fmt.Errorf("beegfs: node %s is not part of the cache domain", node.Name())
	}
	local, err := dev.SubmitPut(ioev.Start(p), "beeond:"+path, int64(len(data)))
	if err != nil {
		return fmt.Errorf("beegfs: cache write: %w", err)
	}
	c.content[path] = append([]byte(nil), data...)
	c.owner[path] = node

	// The flush daemon starts as soon as the data is local.
	flush, err := c.submitFlush(path, local)
	if err != nil {
		return err
	}
	p.CallAt(flush.Time(), func() { ioev.CountCacheFlush() })
	if c.mode == CacheSync {
		ioev.Await(p, flush)
	} else {
		ioev.Await(p, local)
	}
	return nil
}

// submitFlush issues the move of a cached file to the global FS after dep,
// recording its completion for Drain.
func (c *Cache) submitFlush(path string, dep ioev.Op) (ioev.Op, error) {
	data := c.content[path]
	node := c.owner[path]
	c.fs.SubmitCreate(dep, path, node)
	done, err := c.fs.SubmitWrite(dep, path, 0, data, node)
	if err != nil {
		return ioev.Op{}, fmt.Errorf("beegfs: cache flush of %s: %w", path, err)
	}
	c.pending[path] = done.Time()
	return done, nil
}

// Read serves a file from the cache if the reading rank's node holds it
// locally (fast path: NVMe), otherwise from the global FS, parking the
// caller until the data arrives.
func (c *Cache) Read(p ioev.Proc, path string) ([]byte, error) {
	node := p.Node()
	data, cached := c.content[path]
	if cached && c.owner[path].ID == node.ID {
		if dev, ok := c.devs[node.ID]; ok {
			if _, op, err := dev.SubmitGet(ioev.Start(p), "beeond:"+path); err == nil {
				ioev.Await(p, op)
				return append([]byte(nil), data...), nil
			}
		}
	}
	out, op, err := c.fs.SubmitRead(ioev.Start(p), path, 0, int64(len(data)), node)
	if err != nil {
		return nil, err
	}
	ioev.Await(p, op)
	return out, nil
}

// Drain parks the caller until every scheduled flush has completed: the
// async mode's sync point (e.g. at job end), after which every cached file
// is safely in the global file system.
func (c *Cache) Drain(p ioev.Proc) {
	done := ioev.Start(p)
	for _, t := range c.pending {
		done = ioev.After(done, ioev.At(t))
	}
	ioev.Await(p, done)
}

// Evict drops a file from the cache layer (it remains in the global FS) and
// frees the NVMe space.
func (c *Cache) Evict(path string) {
	if node, ok := c.owner[path]; ok {
		if dev, ok := c.devs[node.ID]; ok {
			dev.Delete("beeond:" + path)
		}
	}
	delete(c.content, path)
	delete(c.owner, path)
}
