package beegfs

import (
	"fmt"
	"sync"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

// CacheMode selects how the BeeOND cache domain propagates data to the
// global file system (§III-C: "can be used in a synchronous or asynchronous
// mode").
type CacheMode int

const (
	// CacheAsync returns after the local NVMe write; a background daemon
	// drains to the global FS, and Drain waits for it.
	CacheAsync CacheMode = iota
	// CacheSync writes through: the call returns when the data is in the
	// global file system.
	CacheSync
)

// String names the cache mode.
func (m CacheMode) String() string {
	if m == CacheSync {
		return "sync"
	}
	return "async"
}

// Cache is a BeeOND cache domain: a transient file-system layer over the
// node-local NVMe devices of a job's nodes, in front of a global FS.
type Cache struct {
	fs   *FS
	mode CacheMode

	mu      sync.Mutex
	devs    map[int]*nvme.Device // node ID → device
	content map[string][]byte
	owner   map[string]*machine.Node
	pending map[string]vclock.Time // path → global-FS flush completion
}

// NewCache builds a cache domain in the given mode over the node set; each
// node contributes its NVMe device.
func NewCache(fs *FS, mode CacheMode, devs map[int]*nvme.Device) *Cache {
	return &Cache{
		fs:      fs,
		mode:    mode,
		devs:    devs,
		content: map[string][]byte{},
		owner:   map[string]*machine.Node{},
		pending: map[string]vclock.Time{},
	}
}

// Mode returns the cache mode.
func (c *Cache) Mode() CacheMode { return c.mode }

// Write stores a whole file into the cache domain from the given node. In
// async mode it returns once the local NVMe has the data and schedules the
// flush; in sync mode it returns when the global FS has it.
func (c *Cache) Write(path string, data []byte, node *machine.Node, ready vclock.Time) (vclock.Time, error) {
	dev, ok := c.devByNode(node)
	if !ok {
		return 0, fmt.Errorf("beegfs: node %s is not part of the cache domain", node.Name())
	}
	localDone, err := dev.Put("beeond:"+path, int64(len(data)), ready)
	if err != nil {
		return 0, fmt.Errorf("beegfs: cache write: %w", err)
	}
	c.mu.Lock()
	c.content[path] = append([]byte(nil), data...)
	c.owner[path] = node
	c.mu.Unlock()

	// The flush daemon starts as soon as the data is local.
	flushDone, err := c.flush(path, localDone)
	if err != nil {
		return 0, err
	}
	if c.mode == CacheSync {
		return flushDone, nil
	}
	return localDone, nil
}

func (c *Cache) devByNode(node *machine.Node) (*nvme.Device, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devs[node.ID]
	return d, ok
}

// flush moves a cached file to the global FS, recording its completion.
func (c *Cache) flush(path string, ready vclock.Time) (vclock.Time, error) {
	c.mu.Lock()
	data := c.content[path]
	node := c.owner[path]
	c.mu.Unlock()
	c.fs.Create(path, node, ready)
	done, err := c.fs.Write(path, 0, data, node, ready)
	if err != nil {
		return 0, fmt.Errorf("beegfs: cache flush of %s: %w", path, err)
	}
	c.mu.Lock()
	c.pending[path] = done
	c.mu.Unlock()
	return done, nil
}

// Read serves a file from the cache if the reading node holds it locally
// (fast path: NVMe), otherwise from the global FS.
func (c *Cache) Read(path string, node *machine.Node, ready vclock.Time) ([]byte, vclock.Time, error) {
	c.mu.Lock()
	data, cached := c.content[path]
	owner := c.owner[path]
	c.mu.Unlock()
	if cached && owner.ID == node.ID {
		dev, _ := c.devByNode(node)
		_, done, err := dev.Get("beeond:"+path, ready)
		if err == nil {
			return append([]byte(nil), data...), done, nil
		}
	}
	return c.fs.Read(path, 0, int64(sizeOf(c, path)), node, ready)
}

func sizeOf(c *Cache, path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.content[path])
}

// Drain waits for all scheduled flushes: the returned time is when every
// cached file is safely in the global file system (the async mode's sync
// point, e.g. at job end).
func (c *Cache) Drain(ready vclock.Time) vclock.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := ready
	for _, t := range c.pending {
		done = vclock.Max(done, t)
	}
	return done
}

// Evict drops a file from the cache layer (it remains in the global FS) and
// frees the NVMe space.
func (c *Cache) Evict(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node, ok := c.owner[path]; ok {
		if dev, ok := c.devs[node.ID]; ok {
			dev.Delete("beeond:" + path)
		}
	}
	delete(c.content, path)
	delete(c.owner, path)
}
