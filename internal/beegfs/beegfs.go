// Package beegfs models the parallel file system of the DEEP-ER prototype:
// BeeGFS with one metadata server and two storage servers holding 57 TB of
// spinning disks (§II-B, §III-C of the paper), plus the BeeOND-based cache
// domain on node-local NVMe that DEEP-ER added (cache.go).
//
// Files are striped in fixed-size chunks over the storage targets. A write
// first crosses the fabric to each involved target (RDMA), then occupies that
// target's disk queue; a read does the reverse. Content is stored for real —
// SIONlib containers and checkpoints written through this package can be read
// back and verified bit-for-bit — while all costs are virtual-time.
//
// File-system latencies are scheduled kernel events: Create/Write/Read/
// Delete park the calling ioev.Proc until the operation completes, and the
// Submit* forms issue against an ioev.Op dependency without parking, so
// layered writers (a SION container fanning one flush across both stripe
// targets, SCR overlapping a global write with a buddy copy) can join
// several completions before a single park. The FS carries no mutex — under
// the cooperative kernel exactly one rank (or baton-holding callback) runs
// at a time and every method executes within one turn, the same
// serialisation argument as scr.
package beegfs

import (
	"fmt"
	"sort"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Config describes the file-system deployment.
type Config struct {
	StorageTargets int         // number of storage servers (prototype: 2)
	ChunkSize      int         // stripe chunk size in bytes
	TargetGBs      float64     // per-target disk array bandwidth
	MetaLatency    vclock.Time // metadata operation service time
	CapacityBytes  int64       // total capacity
}

// DefaultConfig returns the DEEP-ER storage configuration: 2 storage servers
// with spinning-disk arrays (~1.2 GB/s each), 1 metadata server, 57 TB.
func DefaultConfig() Config {
	return Config{
		StorageTargets: 2,
		ChunkSize:      512 << 10,
		TargetGBs:      1.2,
		MetaLatency:    500 * vclock.Microsecond,
		CapacityBytes:  57 << 40,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.StorageTargets == 0 {
		c.StorageTargets = d.StorageTargets
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = d.ChunkSize
	}
	if c.TargetGBs == 0 {
		c.TargetGBs = d.TargetGBs
	}
	if c.MetaLatency == 0 {
		c.MetaLatency = d.MetaLatency
	}
	if c.CapacityBytes == 0 {
		c.CapacityBytes = d.CapacityBytes
	}
	return c
}

type file struct {
	data []byte
}

// FS is a BeeGFS instance on the fabric.
type FS struct {
	cfg       Config
	net       *fabric.Network
	metaEP    int
	metaQ     *vclock.SharedClock
	targetEPs []int
	targetQs  []*vclock.SharedClock
	files     map[string]*file
	used      int64
}

// New attaches a file system to the fabric. A zero Config selects the
// prototype deployment.
func New(net *fabric.Network, cfg Config) *FS {
	cfg = cfg.withDefaults()
	fs := &FS{
		cfg:    cfg,
		net:    net,
		metaEP: net.AttachEndpoint(),
		metaQ:  vclock.NewSharedClock(0),
		files:  map[string]*file{},
	}
	for i := 0; i < cfg.StorageTargets; i++ {
		fs.targetEPs = append(fs.targetEPs, net.AttachEndpoint())
		fs.targetQs = append(fs.targetQs, vclock.NewSharedClock(0))
	}
	return fs
}

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Used returns the bytes stored.
func (fs *FS) Used() int64 { return fs.used }

// submitMetaOp costs one metadata round trip from the node: fabric latency
// to the MDS plus the (serialised) metadata service time.
func (fs *FS) submitMetaOp(dep ioev.Op, node *machine.Node) ioev.Op {
	req := fs.net.RDMAWrite(node, fs.metaEP, 64, dep.Time())
	_, end := fs.metaQ.Reserve(req, fs.cfg.MetaLatency)
	return ioev.At(end)
}

// Create makes an empty file (overwriting any existing one) and parks the
// caller for the metadata round trip.
func (fs *FS) Create(p ioev.Proc, path string) {
	ioev.Await(p, fs.SubmitCreate(ioev.Start(p), path, p.Node()))
}

// SubmitCreate issues the create after dep without parking, from node.
func (fs *FS) SubmitCreate(dep ioev.Op, path string, node *machine.Node) ioev.Op {
	if old, ok := fs.files[path]; ok {
		fs.used -= int64(len(old.data))
	}
	fs.files[path] = &file{}
	return fs.submitMetaOp(dep, node)
}

// Exists reports whether a file exists.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Size returns the current size of a file.
func (fs *FS) Size(path string) (int64, error) {
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("beegfs: %s: no such file", path)
	}
	return int64(len(f.data)), nil
}

// Delete removes a file (missing files are a no-op) and parks the caller
// for the metadata round trip.
func (fs *FS) Delete(p ioev.Proc, path string) {
	ioev.Await(p, fs.SubmitDelete(ioev.Start(p), path, p.Node()))
}

// SubmitDelete issues the delete after dep without parking, from node.
func (fs *FS) SubmitDelete(dep ioev.Op, path string, node *machine.Node) ioev.Op {
	if f, ok := fs.files[path]; ok {
		fs.used -= int64(len(f.data))
		delete(fs.files, path)
	}
	return fs.submitMetaOp(dep, node)
}

// List returns all paths in lexical order.
func (fs *FS) List() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// targetSpan computes how many bytes of a [offset, offset+size) write land on
// each storage target under chunked striping.
func (fs *FS) targetSpan(offset, size int64) []int64 {
	out := make([]int64, fs.cfg.StorageTargets)
	cs := int64(fs.cfg.ChunkSize)
	for pos := offset; pos < offset+size; {
		chunk := pos / cs
		end := (chunk + 1) * cs
		if end > offset+size {
			end = offset + size
		}
		out[chunk%int64(fs.cfg.StorageTargets)] += end - pos
		pos = end
	}
	return out
}

// Write stores data at the given offset, extending the file as needed, and
// parks the caller until the write is durable. The transfer is striped:
// each target receives its chunks over the fabric and then commits them to
// disk; the write completes when the slowest target is done.
func (fs *FS) Write(p ioev.Proc, path string, offset int64, data []byte) error {
	op, err := fs.SubmitWrite(ioev.Start(p), path, offset, data, p.Node())
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitWrite issues the striped write after dep without parking, from
// node, returning the completion token of the slowest target.
func (fs *FS) SubmitWrite(dep ioev.Op, path string, offset int64, data []byte, node *machine.Node) (ioev.Op, error) {
	if offset < 0 {
		return ioev.Op{}, fmt.Errorf("beegfs: negative offset %d", offset)
	}
	f, ok := fs.files[path]
	if !ok {
		return ioev.Op{}, fmt.Errorf("beegfs: %s: no such file", path)
	}
	newEnd := offset + int64(len(data))
	grow := newEnd - int64(len(f.data))
	if grow > 0 {
		if fs.used+grow > fs.cfg.CapacityBytes {
			return ioev.Op{}, fmt.Errorf("beegfs: file system full (%d + %d > %d)", fs.used, grow, fs.cfg.CapacityBytes)
		}
		f.data = append(f.data, make([]byte, grow)...)
		fs.used += grow
	}
	copy(f.data[offset:], data)

	done := dep
	for t, bytes := range fs.targetSpan(offset, int64(len(data))) {
		if bytes == 0 {
			continue
		}
		arrive := fs.net.RDMAWrite(node, fs.targetEPs[t], int(bytes), dep.Time())
		_, end := fs.targetQs[t].Reserve(arrive, vclock.Time(float64(bytes)/(fs.cfg.TargetGBs*1e9)))
		done = ioev.After(done, ioev.At(end))
	}
	return done, nil
}

// Read returns size bytes from the given offset, parking the caller until
// the data arrives: each target reads its chunks from disk and ships them
// over the fabric.
func (fs *FS) Read(p ioev.Proc, path string, offset, size int64) ([]byte, error) {
	out, op, err := fs.SubmitRead(ioev.Start(p), path, offset, size, p.Node())
	if err != nil {
		return nil, err
	}
	ioev.Await(p, op)
	return out, nil
}

// SubmitRead issues the striped read after dep without parking, from node,
// returning the data and the completion token of the slowest target.
func (fs *FS) SubmitRead(dep ioev.Op, path string, offset, size int64, node *machine.Node) ([]byte, ioev.Op, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, ioev.Op{}, fmt.Errorf("beegfs: %s: no such file", path)
	}
	if offset < 0 || offset+size > int64(len(f.data)) {
		return nil, ioev.Op{}, fmt.Errorf("beegfs: read [%d,%d) beyond EOF %d of %s", offset, offset+size, len(f.data), path)
	}
	out := append([]byte(nil), f.data[offset:offset+size]...)

	done := dep
	for t, bytes := range fs.targetSpan(offset, size) {
		if bytes == 0 {
			continue
		}
		_, diskEnd := fs.targetQs[t].Reserve(dep.Time(), vclock.Time(float64(bytes)/(fs.cfg.TargetGBs*1e9)))
		arrive := fs.net.RDMARead(node, fs.targetEPs[t], int(bytes), diskEnd)
		done = ioev.After(done, ioev.At(arrive))
	}
	return out, done, nil
}
