// Package beegfs models the parallel file system of the DEEP-ER prototype:
// BeeGFS with one metadata server and two storage servers holding 57 TB of
// spinning disks (§II-B, §III-C of the paper), plus the BeeOND-based cache
// domain on node-local NVMe that DEEP-ER added (cache.go).
//
// Files are striped in fixed-size chunks over the storage targets. A write
// first crosses the fabric to each involved target (RDMA), then occupies that
// target's disk queue; a read does the reverse. Content is stored for real —
// SIONlib containers and checkpoints written through this package can be read
// back and verified bit-for-bit — while all costs are virtual-time.
package beegfs

import (
	"fmt"
	"sort"
	"sync"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/vclock"
)

// Config describes the file-system deployment.
type Config struct {
	StorageTargets int         // number of storage servers (prototype: 2)
	ChunkSize      int         // stripe chunk size in bytes
	TargetGBs      float64     // per-target disk array bandwidth
	MetaLatency    vclock.Time // metadata operation service time
	CapacityBytes  int64       // total capacity
}

// DefaultConfig returns the DEEP-ER storage configuration: 2 storage servers
// with spinning-disk arrays (~1.2 GB/s each), 1 metadata server, 57 TB.
func DefaultConfig() Config {
	return Config{
		StorageTargets: 2,
		ChunkSize:      512 << 10,
		TargetGBs:      1.2,
		MetaLatency:    500 * vclock.Microsecond,
		CapacityBytes:  57 << 40,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.StorageTargets == 0 {
		c.StorageTargets = d.StorageTargets
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = d.ChunkSize
	}
	if c.TargetGBs == 0 {
		c.TargetGBs = d.TargetGBs
	}
	if c.MetaLatency == 0 {
		c.MetaLatency = d.MetaLatency
	}
	if c.CapacityBytes == 0 {
		c.CapacityBytes = d.CapacityBytes
	}
	return c
}

type file struct {
	data []byte
}

// FS is a BeeGFS instance on the fabric.
type FS struct {
	cfg       Config
	net       *fabric.Network
	metaEP    int
	metaQ     *vclock.SharedClock
	targetEPs []int
	targetQs  []*vclock.SharedClock

	mu    sync.Mutex
	files map[string]*file
	used  int64
}

// New attaches a file system to the fabric. A zero Config selects the
// prototype deployment.
func New(net *fabric.Network, cfg Config) *FS {
	cfg = cfg.withDefaults()
	fs := &FS{
		cfg:    cfg,
		net:    net,
		metaEP: net.AttachEndpoint(),
		metaQ:  vclock.NewSharedClock(0),
		files:  map[string]*file{},
	}
	for i := 0; i < cfg.StorageTargets; i++ {
		fs.targetEPs = append(fs.targetEPs, net.AttachEndpoint())
		fs.targetQs = append(fs.targetQs, vclock.NewSharedClock(0))
	}
	return fs
}

// Config returns the effective configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Used returns the bytes stored.
func (fs *FS) Used() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

// metaOp costs one metadata round trip from the node: fabric latency to the
// MDS plus the (serialised) metadata service time.
func (fs *FS) metaOp(node *machine.Node, ready vclock.Time) vclock.Time {
	req := fs.net.RDMAWrite(node, fs.metaEP, 64, ready)
	_, end := fs.metaQ.Reserve(req, fs.cfg.MetaLatency)
	return end
}

// Create makes an empty file (overwriting any existing one) and returns the
// completion time of the metadata operation.
func (fs *FS) Create(path string, node *machine.Node, ready vclock.Time) vclock.Time {
	fs.mu.Lock()
	if old, ok := fs.files[path]; ok {
		fs.used -= int64(len(old.data))
	}
	fs.files[path] = &file{}
	fs.mu.Unlock()
	return fs.metaOp(node, ready)
}

// Exists reports whether a file exists.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns the current size of a file.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("beegfs: %s: no such file", path)
	}
	return int64(len(f.data)), nil
}

// Delete removes a file; missing files are a no-op.
func (fs *FS) Delete(path string, node *machine.Node, ready vclock.Time) vclock.Time {
	fs.mu.Lock()
	if f, ok := fs.files[path]; ok {
		fs.used -= int64(len(f.data))
		delete(fs.files, path)
	}
	fs.mu.Unlock()
	return fs.metaOp(node, ready)
}

// List returns all paths in lexical order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// targetSpan computes how many bytes of a [offset, offset+size) write land on
// each storage target under chunked striping.
func (fs *FS) targetSpan(offset, size int64) []int64 {
	out := make([]int64, fs.cfg.StorageTargets)
	cs := int64(fs.cfg.ChunkSize)
	for pos := offset; pos < offset+size; {
		chunk := pos / cs
		end := (chunk + 1) * cs
		if end > offset+size {
			end = offset + size
		}
		out[chunk%int64(fs.cfg.StorageTargets)] += end - pos
		pos = end
	}
	return out
}

// Write stores data at the given offset, extending the file as needed, and
// returns the virtual completion time. The transfer is striped: each target
// receives its chunks over the fabric and then commits them to disk; the
// write completes when the slowest target is done.
func (fs *FS) Write(path string, offset int64, data []byte, node *machine.Node, ready vclock.Time) (vclock.Time, error) {
	if offset < 0 {
		return 0, fmt.Errorf("beegfs: negative offset %d", offset)
	}
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return 0, fmt.Errorf("beegfs: %s: no such file", path)
	}
	newEnd := offset + int64(len(data))
	grow := newEnd - int64(len(f.data))
	if grow > 0 {
		if fs.used+grow > fs.cfg.CapacityBytes {
			fs.mu.Unlock()
			return 0, fmt.Errorf("beegfs: file system full (%d + %d > %d)", fs.used, grow, fs.cfg.CapacityBytes)
		}
		f.data = append(f.data, make([]byte, grow)...)
		fs.used += grow
	}
	copy(f.data[offset:], data)
	fs.mu.Unlock()

	done := ready
	for t, bytes := range fs.targetSpan(offset, int64(len(data))) {
		if bytes == 0 {
			continue
		}
		arrive := fs.net.RDMAWrite(node, fs.targetEPs[t], int(bytes), ready)
		_, end := fs.targetQs[t].Reserve(arrive, vclock.Time(float64(bytes)/(fs.cfg.TargetGBs*1e9)))
		done = vclock.Max(done, end)
	}
	return done, nil
}

// Read returns size bytes from the given offset and the completion time:
// each target reads its chunks from disk and ships them over the fabric.
func (fs *FS) Read(path string, offset, size int64, node *machine.Node, ready vclock.Time) ([]byte, vclock.Time, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return nil, 0, fmt.Errorf("beegfs: %s: no such file", path)
	}
	if offset < 0 || offset+size > int64(len(f.data)) {
		fs.mu.Unlock()
		return nil, 0, fmt.Errorf("beegfs: read [%d,%d) beyond EOF %d of %s", offset, offset+size, len(f.data), path)
	}
	out := append([]byte(nil), f.data[offset:offset+size]...)
	fs.mu.Unlock()

	done := ready
	for t, bytes := range fs.targetSpan(offset, size) {
		if bytes == 0 {
			continue
		}
		_, diskEnd := fs.targetQs[t].Reserve(ready, vclock.Time(float64(bytes)/(fs.cfg.TargetGBs*1e9)))
		arrive := fs.net.RDMARead(node, fs.targetEPs[t], int(bytes), diskEnd)
		done = vclock.Max(done, arrive)
	}
	return out, done, nil
}
