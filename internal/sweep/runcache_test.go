package sweep

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clusterbooster/internal/runstore"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/xpic"
)

// cacheTestConfig is a seconds-scale workload that decomposes for 1, 2 and
// 4 ranks per solver.
func cacheTestConfig() xpic.Config {
	cfg := xpic.QuickConfig(6)
	cfg.ParticleScale = 32
	return cfg
}

// cacheTestScenarios builds a grid with deliberate compute-phase sharing:
// the SCR axis re-prices checkpoints over the same compute runs, and the
// whole grid is listed twice under different names, so a correct cache
// computes each distinct (n, mode) point exactly once.
func cacheTestScenarios(t *testing.T) []Scenario {
	t.Helper()
	g := Grid{
		Name:       "cachetest",
		NodeCounts: []int{1, 2},
		Modes:      []xpic.Mode{xpic.BoosterOnly, xpic.SplitCB},
		Workloads:  []WorkloadVariant{{Name: "q", Config: cacheTestConfig()}},
		SCRs: []SCRVariant{
			{Name: "scr=none"},
			{Name: "scr=local", Spec: CheckpointAt(scr.LevelLocal)},
			{Name: "scr=buddy", Spec: CheckpointAt(scr.LevelBuddy)},
		},
	}
	scen, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scen {
		scen = append(scen, Scenario{Name: fmt.Sprintf("again/%d", i), Run: s.Run})
	}
	return scen
}

// runToJSON executes the scenarios and returns the canonical JSON bytes.
func runToJSON(t *testing.T, scen []Scenario, workers int) []byte {
	t.Helper()
	rs := Run(scen, Options{Workers: workers})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunCacheTransparency is the cache's core property: the bytes a sweep
// emits are identical with the cache off (every scenario boots and runs its
// own system, the pre-cache behaviour) and with the cache on, under any
// worker count — even though the cached path runs each distinct compute
// configuration once, on a storage-less system, and prices checkpoints on a
// fresh storage stack.
func TestRunCacheTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario xpic grids are seconds of host time")
	}
	scen := cacheTestScenarios(t)

	SetRunCache(false)
	defer SetRunCache(true)
	want := runToJSON(t, scen, 1)

	for _, workers := range []int{1, 3, 8} {
		SetRunCache(true)
		ResetRunCache()
		got := runToJSON(t, scen, workers)
		if !bytes.Equal(want, got) {
			t.Fatalf("cached run (workers=%d) diverges from uncached bytes", workers)
		}
		st := RunCacheStats()
		// 12 grid scenarios + 12 aliases share 4 distinct compute points
		// (2 node counts x 2 modes).
		if st.Misses != 4 {
			t.Fatalf("cache misses = %d, want 4 distinct compute points", st.Misses)
		}
		if st.Hits != uint64(len(scen))-4 {
			t.Fatalf("cache hits = %d, want %d", st.Hits, len(scen)-4)
		}
	}
}

// TestRunCachePanicDoesNotPoison is the regression test for the cache-
// poisoning bug: the pre-fix sync.Once entry marked itself done when the
// computation panicked, so every later caller for that key silently received
// a zero-value report with a nil error. The fixed entry must leave a
// panicking computation pending — the panic propagates (the sweep layer
// records it per scenario) and the next caller genuinely recomputes.
func TestRunCachePanicDoesNotPoison(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	key := sha256.Sum256([]byte("panic-regression"))

	calls := 0
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("the panicking computation must propagate its panic")
			}
		}()
		cachedCompute(key, func() (xpic.Report, error) {
			calls++
			panic("boom")
		})
	}()

	want := xpic.Report{Makespan: 42, CGIters: 7}
	got, err := cachedCompute(key, func() (xpic.Report, error) {
		calls++
		return want, nil
	})
	if err != nil {
		t.Fatalf("post-panic lookup returned error %v", err)
	}
	if got != want {
		t.Fatalf("post-panic lookup got %+v, want %+v — the panicking first computation poisoned the entry", got, want)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (panic, then recompute)", calls)
	}

	// The successful result is memoized: a third caller must not recompute.
	got, err = cachedCompute(key, func() (xpic.Report, error) {
		t.Fatal("memoized entry recomputed")
		return xpic.Report{}, nil
	})
	if err != nil || got != want {
		t.Fatalf("memoized lookup: got %+v err %v", got, err)
	}
}

// TestRunCacheErrorRetention: an errored computation is memoized in-process
// (same config, same deterministic failure), must never be persisted to the
// disk store, and becomes re-attemptable after ResetRunCache.
func TestRunCacheErrorRetention(t *testing.T) {
	st, err := runstore.Open(t.TempDir(), "err-test")
	if err != nil {
		t.Fatal(err)
	}
	SetDiskRunStore(st)
	defer SetDiskRunStore(nil)
	ResetRunCache()
	defer ResetRunCache()
	key := sha256.Sum256([]byte("error-retention"))

	calls := 0
	boom := errors.New("boom")
	if _, err := cachedCompute(key, func() (xpic.Report, error) {
		calls++
		return xpic.Report{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("first computation returned %v, want boom", err)
	}
	// Memoized within the process: the compute function must not rerun.
	if _, err := cachedCompute(key, func() (xpic.Report, error) {
		t.Fatal("errored entry recomputed without a reset")
		return xpic.Report{}, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("memoized error lookup returned %v, want boom", err)
	}
	// Never on disk.
	if s := st.Stats(); s.Puts != 0 {
		t.Fatalf("errored computation was persisted: %d puts", s.Puts)
	}
	if n := countStoreEntries(t, st); n != 0 {
		t.Fatalf("errored computation left %d entry files on disk", n)
	}

	// ResetRunCache is the retry path: the point recomputes, and a success
	// this time is persisted.
	ResetRunCache()
	want := xpic.Report{Makespan: 1}
	got, err := cachedCompute(key, func() (xpic.Report, error) {
		calls++
		return want, nil
	})
	if err != nil || got != want {
		t.Fatalf("post-reset recompute: got %+v err %v", got, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (error, then post-reset retry)", calls)
	}
	if s := st.Stats(); s.Puts != 1 {
		t.Fatalf("successful recompute not persisted: %d puts", s.Puts)
	}
}

// countStoreEntries walks the store's epoch directory counting entry files.
func countStoreEntries(t *testing.T, st *runstore.Store) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(st.Dir(), func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".json") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// storeEntryFiles returns every entry file in the store's epoch directory.
func storeEntryFiles(t *testing.T, st *runstore.Store) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(st.Dir(), func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".json") {
			out = append(out, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRunCacheDiskTransparency mirrors TestRunCacheTransparency one layer
// down: the bytes a sweep emits are identical with the disk store disabled,
// cold, warm in a second "process" (fresh in-process cache, new store handle
// over the same directory), and after an entry is truncated mid-file (the
// corrupt entry reads as a miss, recomputes, and heals).
func TestRunCacheDiskTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario xpic grids are seconds of host time")
	}
	scen := cacheTestScenarios(t)

	SetRunCache(false)
	want := runToJSON(t, scen, 1)
	SetRunCache(true)

	dir := t.TempDir()
	const epoch = "transparency-test"
	defer SetDiskRunStore(nil)

	// Process 1: cold store — every distinct point computes and publishes.
	st1, err := runstore.Open(dir, epoch)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskRunStore(st1)
	ResetRunCache()
	if got := runToJSON(t, scen, 4); !bytes.Equal(want, got) {
		t.Fatal("cold disk-store run diverges from uncached bytes")
	}
	if s := st1.Stats(); s.Hits != 0 || s.Puts != 4 {
		t.Fatalf("cold-store stats %+v, want hits=0 puts=4", s)
	}

	// Process 2: warm store — every distinct point is served from disk.
	st2, err := runstore.Open(dir, epoch)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskRunStore(st2)
	ResetRunCache()
	if got := runToJSON(t, scen, 4); !bytes.Equal(want, got) {
		t.Fatal("warm disk-store run diverges from uncached bytes")
	}
	if s := st2.Stats(); s.Hits != 4 || s.Puts != 0 || s.Corrupt != 0 {
		t.Fatalf("warm-store stats %+v, want hits=4 puts=0", s)
	}
	if s := RunCacheStats(); s.Misses != 4 {
		t.Fatalf("in-process misses %d, want 4 (disk hits still miss the in-process layer)", s.Misses)
	}

	// Process 3: one entry truncated mid-file — a miss plus recompute, the
	// other three still served from disk, bytes still identical, entry healed.
	files := storeEntryFiles(t, st2)
	if len(files) != 4 {
		t.Fatalf("store holds %d entries, want 4", len(files))
	}
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], info.Size()/2); err != nil {
		t.Fatal(err)
	}
	st3, err := runstore.Open(dir, epoch)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskRunStore(st3)
	ResetRunCache()
	if got := runToJSON(t, scen, 4); !bytes.Equal(want, got) {
		t.Fatal("run over a corrupted entry diverges from uncached bytes")
	}
	if s := st3.Stats(); s.Hits != 3 || s.Corrupt != 1 || s.Puts != 1 {
		t.Fatalf("corruption-recovery stats %+v, want hits=3 corrupt=1 puts=1", s)
	}

	// An epoch bump orphans every entry: all four points recompute.
	st4, err := runstore.Open(dir, "transparency-test-v2")
	if err != nil {
		t.Fatal(err)
	}
	SetDiskRunStore(st4)
	ResetRunCache()
	if got := runToJSON(t, scen, 4); !bytes.Equal(want, got) {
		t.Fatal("post-epoch-bump run diverges from uncached bytes")
	}
	if s := st4.Stats(); s.Hits != 0 || s.Puts != 4 {
		t.Fatalf("epoch-bump stats %+v, want hits=0 puts=4", s)
	}
}

// TestRunCacheKeySensitivity: every compute-relevant axis must change the
// key; the SCR axis must not.
func TestRunCacheKeySensitivity(t *testing.T) {
	base := XPicPoint{NodesPerSolver: 2, Mode: xpic.BoosterOnly, Workload: cacheTestConfig()}
	k0 := base.computeKey()

	p := base
	p.NodesPerSolver = 4
	if p.computeKey() == k0 {
		t.Fatal("node count does not change the cache key")
	}
	p = base
	p.Mode = xpic.SplitCB
	if p.computeKey() == k0 {
		t.Fatal("mode does not change the cache key")
	}
	p = base
	p.Workload.Steps++
	if p.computeKey() == k0 {
		t.Fatal("workload does not change the cache key")
	}
	p = base
	p.Fabric.WireLatency = 1e-6
	if p.computeKey() == k0 {
		t.Fatal("fabric config does not change the cache key")
	}
	p = base
	p.MPI.SpawnOverhead = 1e-3
	if p.computeKey() == k0 {
		t.Fatal("MPI config does not change the cache key")
	}
	p = base
	p.SCR = CheckpointAt(scr.LevelBuddy)
	if p.computeKey() != k0 {
		t.Fatal("SCR axis changes the cache key (checkpoints are priced after the run and must share the compute phase)")
	}
}
