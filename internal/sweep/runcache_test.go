package sweep

import (
	"bytes"
	"fmt"
	"testing"

	"clusterbooster/internal/scr"
	"clusterbooster/internal/xpic"
)

// cacheTestConfig is a seconds-scale workload that decomposes for 1, 2 and
// 4 ranks per solver.
func cacheTestConfig() xpic.Config {
	cfg := xpic.QuickConfig(6)
	cfg.ParticleScale = 32
	return cfg
}

// cacheTestScenarios builds a grid with deliberate compute-phase sharing:
// the SCR axis re-prices checkpoints over the same compute runs, and the
// whole grid is listed twice under different names, so a correct cache
// computes each distinct (n, mode) point exactly once.
func cacheTestScenarios(t *testing.T) []Scenario {
	t.Helper()
	g := Grid{
		Name:       "cachetest",
		NodeCounts: []int{1, 2},
		Modes:      []xpic.Mode{xpic.BoosterOnly, xpic.SplitCB},
		Workloads:  []WorkloadVariant{{Name: "q", Config: cacheTestConfig()}},
		SCRs: []SCRVariant{
			{Name: "scr=none"},
			{Name: "scr=local", Spec: CheckpointAt(scr.LevelLocal)},
			{Name: "scr=buddy", Spec: CheckpointAt(scr.LevelBuddy)},
		},
	}
	scen, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scen {
		scen = append(scen, Scenario{Name: fmt.Sprintf("again/%d", i), Run: s.Run})
	}
	return scen
}

// runToJSON executes the scenarios and returns the canonical JSON bytes.
func runToJSON(t *testing.T, scen []Scenario, workers int) []byte {
	t.Helper()
	rs := Run(scen, Options{Workers: workers})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunCacheTransparency is the cache's core property: the bytes a sweep
// emits are identical with the cache off (every scenario boots and runs its
// own system, the pre-cache behaviour) and with the cache on, under any
// worker count — even though the cached path runs each distinct compute
// configuration once, on a storage-less system, and prices checkpoints on a
// fresh storage stack.
func TestRunCacheTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario xpic grids are seconds of host time")
	}
	scen := cacheTestScenarios(t)

	SetRunCache(false)
	defer SetRunCache(true)
	want := runToJSON(t, scen, 1)

	for _, workers := range []int{1, 3, 8} {
		SetRunCache(true)
		ResetRunCache()
		got := runToJSON(t, scen, workers)
		if !bytes.Equal(want, got) {
			t.Fatalf("cached run (workers=%d) diverges from uncached bytes", workers)
		}
		st := RunCacheStats()
		// 12 grid scenarios + 12 aliases share 4 distinct compute points
		// (2 node counts x 2 modes).
		if st.Misses != 4 {
			t.Fatalf("cache misses = %d, want 4 distinct compute points", st.Misses)
		}
		if st.Hits != uint64(len(scen))-4 {
			t.Fatalf("cache hits = %d, want %d", st.Hits, len(scen)-4)
		}
	}
}

// TestRunCacheKeySensitivity: every compute-relevant axis must change the
// key; the SCR axis must not.
func TestRunCacheKeySensitivity(t *testing.T) {
	base := XPicPoint{NodesPerSolver: 2, Mode: xpic.BoosterOnly, Workload: cacheTestConfig()}
	k0 := base.computeKey()

	p := base
	p.NodesPerSolver = 4
	if p.computeKey() == k0 {
		t.Fatal("node count does not change the cache key")
	}
	p = base
	p.Mode = xpic.SplitCB
	if p.computeKey() == k0 {
		t.Fatal("mode does not change the cache key")
	}
	p = base
	p.Workload.Steps++
	if p.computeKey() == k0 {
		t.Fatal("workload does not change the cache key")
	}
	p = base
	p.Fabric.WireLatency = 1e-6
	if p.computeKey() == k0 {
		t.Fatal("fabric config does not change the cache key")
	}
	p = base
	p.MPI.SpawnOverhead = 1e-3
	if p.computeKey() == k0 {
		t.Fatal("MPI config does not change the cache key")
	}
	p = base
	p.SCR = CheckpointAt(scr.LevelBuddy)
	if p.computeKey() != k0 {
		t.Fatal("SCR axis changes the cache key (checkpoints are priced after the run and must share the compute phase)")
	}
}
