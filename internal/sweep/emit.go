// Result-set emitters. All three forms (JSON, CSV, text) are deterministic:
// results are ordered by scenario index and metric columns/keys by name, so
// the same sweep definition always serialises to the same bytes regardless
// of worker count or host scheduling.
package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// JSON renders the result set as indented, deterministic JSON.
func (rs ResultSet) JSON() ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}

// WriteJSON writes the JSON form with a trailing newline.
func (rs ResultSet) WriteJSON(w io.Writer) error {
	b, err := rs.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// metricKeys returns the sorted union of all metric names in the set.
func (rs ResultSet) metricKeys() []string {
	seen := map[string]bool{}
	for _, r := range rs.Results {
		for k := range r.Metrics {
			seen[k] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteCSV writes one row per scenario: index, name, error, then the sorted
// union of metric columns (empty cell where a scenario lacks a metric).
func (rs ResultSet) WriteCSV(w io.Writer) error {
	keys := rs.metricKeys()
	cw := csv.NewWriter(w)
	header := append([]string{"index", "name", "error"}, keys...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rs.Results {
		row := []string{strconv.Itoa(r.Index), r.Name, r.Error}
		for _, k := range keys {
			v, ok := r.Metrics[k]
			if !ok {
				row = append(row, "")
				continue
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RenderText renders a human-readable summary table: the key xPic columns
// when present, otherwise the per-scenario metrics inline.
func (rs ResultSet) RenderText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sweep: %d scenarios, %d failed\n", rs.Scenarios, rs.Failures)
	nameW := len("scenario")
	for _, r := range rs.Results {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s | %10s %10s %10s %9s %7s\n",
		nameW, "scenario", "total[s]", "fields[s]", "parts[s]", "ovhd[%]", "ckpt[s]")
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", nameW+55))
	for _, r := range rs.Results {
		if r.Error != "" {
			fmt.Fprintf(&sb, "%-*s | ERROR: %s\n", nameW, r.Name, r.Error)
			continue
		}
		if r.XPic == nil {
			fmt.Fprintf(&sb, "%-*s | %s\n", nameW, r.Name, renderMetrics(r.Metrics))
			continue
		}
		ckpt := "-"
		if v, ok := r.Metrics["checkpoint_s"]; ok {
			ckpt = fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&sb, "%-*s | %10.2f %10.2f %10.2f %8.1f%% %7s\n",
			nameW, r.Name,
			r.XPic.Makespan.Seconds(), r.XPic.FieldTime.Seconds(),
			r.XPic.ParticleTime.Seconds(), 100*r.XPic.OverheadFraction(), ckpt)
	}
	return sb.String()
}

func renderMetrics(m Metrics) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, m[k]))
	}
	return strings.Join(parts, " ")
}
