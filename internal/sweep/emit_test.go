package sweep

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// An empty result set still emits a valid, parseable CSV document: the fixed
// header and no rows.
func TestCSVEmptyResultSet(t *testing.T) {
	var buf bytes.Buffer
	if err := (ResultSet{}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "index,name,error\n"; got != want {
		t.Fatalf("empty CSV = %q, want %q", got, want)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("parsed %d records, want header only", len(recs))
	}
}

// Scenarios with disjoint metric sets share one header: the sorted union of
// all metric keys, with empty cells where a scenario lacks a metric. A
// failed scenario contributes no metrics but keeps its row.
func TestCSVMetricKeyUnion(t *testing.T) {
	rs := ResultSet{
		Scenarios: 3,
		Failures:  1,
		Results: []Result{
			{Index: 0, Name: "xpic", Metrics: Metrics{"makespan_s": 2.5, "cg_iters": 40}},
			{Index: 1, Name: "fabric", Metrics: Metrics{"latency_us": 1.25, "bandwidth_MBs": 10989.5}},
			{Index: 2, Name: "broken", Error: "panic: boom"},
		},
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"index", "name", "error", "bandwidth_MBs", "cg_iters", "latency_us", "makespan_s"}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i, w := range wantHeader {
		if recs[0][i] != w {
			t.Fatalf("header = %v, want %v", recs[0], wantHeader)
		}
	}
	// Row 0: xpic has cg_iters and makespan_s, empty cells elsewhere.
	if got := recs[1]; got[3] != "" || got[4] != "40" || got[5] != "" || got[6] != "2.5" {
		t.Errorf("xpic row = %v", got)
	}
	// Row 1: fabric fills the other two columns.
	if got := recs[2]; got[3] != "10989.5" || got[4] != "" || got[5] != "1.25" || got[6] != "" {
		t.Errorf("fabric row = %v", got)
	}
	// Row 2: the failure keeps its row with the error and no metrics.
	if got := recs[3]; got[1] != "broken" || got[2] != "panic: boom" || got[3] != "" || got[6] != "" {
		t.Errorf("broken row = %v", got)
	}
}

// Names and errors containing CSV metacharacters (commas, quotes, newlines)
// must round-trip through the encoder unharmed.
func TestCSVQuoting(t *testing.T) {
	name := `fig8/n=8,mode="C+B"` + "\nsecond line"
	errMsg := `boot failed: "fabric, degraded"`
	rs := ResultSet{
		Scenarios: 2,
		Failures:  1,
		Results: []Result{
			{Index: 0, Name: name, Metrics: Metrics{"makespan_s": 0.375}},
			{Index: 1, Name: "plain", Error: errMsg},
		},
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"fig8/n=8,mode=""C+B""`) {
		t.Errorf("name not quoted/escaped in raw CSV:\n%s", buf.String())
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not re-parse: %v", err)
	}
	if recs[1][1] != name {
		t.Errorf("name round-trip = %q, want %q", recs[1][1], name)
	}
	if recs[2][2] != errMsg {
		t.Errorf("error round-trip = %q, want %q", recs[2][2], errMsg)
	}
}

// Float formatting uses the shortest round-trip form ('g', precision -1), so
// exact values survive a parse and exotic-but-legal values stay readable.
func TestCSVFloatFormatting(t *testing.T) {
	rs := ResultSet{
		Scenarios: 1,
		Results: []Result{
			{Index: 0, Name: "s", Metrics: Metrics{
				"tiny":  5e-324,
				"big":   1.7976931348623157e308,
				"third": 1.0 / 3.0,
			}},
		},
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header: index,name,error,big,third,tiny
	if got := recs[1]; got[3] != "1.7976931348623157e+308" || got[4] != "0.3333333333333333" || got[5] != "5e-324" {
		t.Errorf("float cells = %v", got[3:])
	}
}

// JSON and CSV emitters agree on determinism for a set containing an empty
// metrics map versus an absent one.
func TestCSVNilVersusEmptyMetrics(t *testing.T) {
	rs := ResultSet{
		Scenarios: 2,
		Results: []Result{
			{Index: 0, Name: "nil-metrics"},
			{Index: 1, Name: "empty-metrics", Metrics: Metrics{}},
		},
	}
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "index,name,error\n0,nil-metrics,\n1,empty-metrics,\n"; got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
