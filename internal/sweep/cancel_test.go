package sweep

import (
	"context"
	"strings"
	"testing"
)

// TestRunContextPreCanceled: a sweep handed an already-dead context runs
// nothing — every result is a canceled error and no Run function fires.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	var scen []Scenario
	for i := 0; i < 4; i++ {
		scen = append(scen, Scenario{Name: "s", Run: func() (Outcome, error) {
			ran++
			return Outcome{Metrics: Metrics{"x": 1}}, nil
		}})
	}
	rs := Run(scen, Options{Workers: 2, Context: ctx})
	if ran != 0 {
		t.Fatalf("canceled sweep ran %d scenarios", ran)
	}
	if rs.Failures != len(scen) {
		t.Fatalf("failures = %d, want %d", rs.Failures, len(scen))
	}
	for i, r := range rs.Results {
		if !strings.Contains(r.Error, "canceled") || !strings.Contains(r.Error, context.Canceled.Error()) {
			t.Errorf("result[%d].Error = %q, want canceled", i, r.Error)
		}
		if r.Metrics != nil {
			t.Errorf("result[%d] has metrics despite cancellation", i)
		}
	}
}

// TestRunContextCancelMidSweep cancels from inside the first scenario: with
// one worker the first scenario completes normally and every later one is
// marked canceled without running (in-flight work finishes, queued work is
// dropped — the serve contract for abandoned requests).
func TestRunContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := 0
	scen := []Scenario{{Name: "first", Run: func() (Outcome, error) {
		ran++
		cancel() // the "client disconnects" while this scenario is in flight
		return Outcome{Metrics: Metrics{"x": 1}}, nil
	}}}
	for i := 0; i < 3; i++ {
		scen = append(scen, Scenario{Name: "later", Run: func() (Outcome, error) {
			ran++
			return Outcome{Metrics: Metrics{"x": 1}}, nil
		}})
	}
	rs := Run(scen, Options{Workers: 1, Context: ctx})
	if ran != 1 {
		t.Fatalf("ran %d scenarios, want only the canceling one", ran)
	}
	if rs.Results[0].Error != "" || rs.Results[0].Metrics["x"] != 1 {
		t.Fatalf("in-flight scenario did not finish cleanly: %+v", rs.Results[0])
	}
	for i := 1; i < len(rs.Results); i++ {
		if !strings.Contains(rs.Results[i].Error, "canceled") {
			t.Errorf("result[%d].Error = %q, want canceled", i, rs.Results[i].Error)
		}
	}
	if err := rs.FirstError(); err == nil {
		t.Fatal("FirstError = nil, want the cancellation surfaced")
	}
}

// TestRunNilContext: the zero Options keep the pre-context behaviour.
func TestRunNilContext(t *testing.T) {
	rs := Run([]Scenario{{Name: "s", Run: func() (Outcome, error) {
		return Outcome{Metrics: Metrics{"x": 1}}, nil
	}}}, Options{})
	if rs.Failures != 0 || rs.Results[0].Metrics["x"] != 1 {
		t.Fatalf("nil-context sweep: %+v", rs)
	}
}
