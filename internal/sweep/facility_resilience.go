// Facility-resilience scenarios: facility streams on a failing machine. A
// FacilityResiliencePoint is a FacilityPoint whose params carry a
// FacilityFaults config; the metric set widens to the availability,
// goodput and lost-work quantities the fig-facility-resilience budgets pin
// against the analytic MTBF/(MTBF+MTTR) model.
package sweep

import (
	"clusterbooster/internal/sched"
)

// FacilityResiliencePoint is one fig-facility-resilience grid point: a
// synthetic arrival stream scheduled on one event kernel while seeded
// failure/repair processes degrade and restore the machine.
type FacilityResiliencePoint struct {
	sched.FacilityParams
}

// Scenario wraps the point as a self-contained Scenario reporting facility
// health under failures. Points with nil (or disabled) Faults are the
// failure-free baselines of their grid; their availability is exactly 1.
func (p FacilityResiliencePoint) Scenario(name string) Scenario {
	return Scenario{Name: name, Run: func() (Outcome, error) {
		out, err := sched.RunFacility(p.FacilityParams)
		if err != nil {
			return Outcome{}, err
		}
		horizon := out.Horizon
		availC, availB, goodput := out.AvailCluster, out.AvailBooster, out.Goodput
		satUtilC, satUtilB := out.SatUtilCluster, out.SatUtilBooster
		satAvailC, satAvailB := out.SatAvailCluster, out.SatAvailBooster
		if p.Faults == nil || !p.Faults.Enabled() {
			// Failure-free baseline: RunFacility reports no fault-mode
			// aggregates, so derive the comparable span and goodput from the
			// schedule itself (granted == requested node-time here, modulo
			// malleable stretch, which conserves work).
			horizon = out.Makespan
			availC, availB = 1, 1
			satUtilC, satUtilB = out.UtilCluster, out.UtilBooster
			satAvailC, satAvailB = 1, 1
			cn, bn := p.ClusterNodes, p.BoosterNodes
			if cn == 0 {
				cn = 64
			}
			if bn == 0 {
				bn = 32
			}
			if total := float64(cn + bn); total > 0 {
				goodput = (out.UtilCluster*float64(cn) + out.UtilBooster*float64(bn)) / total
			}
		}
		return Outcome{Metrics: Metrics{
			"jobs":          float64(out.Jobs),
			"abandoned":     float64(out.Abandoned),
			"failures":      float64(out.Failures),
			"repairs":       float64(out.Repairs),
			"requeues":      float64(out.Requeues),
			"util_cluster":  out.UtilCluster,
			"util_booster":  out.UtilBooster,
			"avail_cluster": availC,
			"avail_booster": availB,
			"goodput":       goodput,
			"lost_node_s":   out.LostNodeSec,
			"makespan_s":    out.Makespan.Seconds(),
			"horizon_s":     horizon.Seconds(),
			"wait_mean_s":   out.MeanWait.Seconds(),
			// Saturated-window (up to the last arrival) utilization and
			// availability: what the steady-state cross-check compares.
			"sat_util_cluster":  satUtilC,
			"sat_util_booster":  satUtilB,
			"sat_avail_cluster": satAvailC,
			"sat_avail_booster": satAvailB,
		}}, nil
	}}
}
