package sweep

import (
	"bytes"
	"testing"
	"testing/quick"

	"clusterbooster/internal/sched"
)

// facilityScenarios is a policy-diverse slice of the facility axis: one
// overloaded 200-job stream per policy, all from the same seed so the three
// kernels schedule the identical arrival sequence.
func facilityScenarios() []Scenario {
	var scen []Scenario
	for _, pol := range sched.FacilityPolicies() {
		p := sched.FacilityParams{Policy: pol, Jobs: 200, Load: 1.4, Seed: 42}
		scen = append(scen, FacilityPoint{FacilityParams: p}.Scenario("fac/"+string(pol)))
	}
	return scen
}

func facilitySweepJSON(t *testing.T, workers int) []byte {
	t.Helper()
	rs := Run(facilityScenarios(), Options{Workers: workers})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFacilityWorkerCountInvariance extends the kernel's determinism
// property to the facility layer: the same seeds must produce byte-identical
// facility sweep JSON under any host worker count, because each stream is a
// private machine + kernel whose job tasks are serialised by the baton —
// host scheduling never touches arrival order, grant order, or the backfill
// scan.
func TestFacilityWorkerCountInvariance(t *testing.T) {
	// The overloaded streams must actually exercise the scheduler, or the
	// property is vacuous.
	rs := Run(facilityScenarios(), Options{Workers: 1})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	backfilled, shrunk := 0.0, 0.0
	for _, r := range rs.Results {
		backfilled += r.Metrics["backfilled"]
		shrunk += r.Metrics["shrunk"]
	}
	if backfilled == 0 || shrunk == 0 {
		t.Fatalf("streams scheduled without backfills (%v) or shrinks (%v)", backfilled, shrunk)
	}
	reference := facilitySweepJSON(t, 1)
	if testing.Short() {
		if got := facilitySweepJSON(t, 4); !bytes.Equal(got, reference) {
			t.Fatal("facility sweep JSON differs between 1 and 4 workers")
		}
		return
	}
	f := func(w uint8) bool {
		workers := int(w)%16 + 1
		return bytes.Equal(facilitySweepJSON(t, workers), reference)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatalf("facility worker-count invariance violated: %v", err)
	}
}
