package sweep

import (
	"bytes"
	"testing"
	"testing/quick"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/resilience"
	"clusterbooster/internal/sched"
	"clusterbooster/internal/vclock"
)

// facilityScenarios is a policy-diverse slice of the facility axis: one
// overloaded 200-job stream per policy, all from the same seed so the three
// kernels schedule the identical arrival sequence.
func facilityScenarios() []Scenario {
	var scen []Scenario
	for _, pol := range sched.FacilityPolicies() {
		p := sched.FacilityParams{Policy: pol, Jobs: 200, Load: 1.4, Seed: 42}
		scen = append(scen, FacilityPoint{FacilityParams: p}.Scenario("fac/"+string(pol)))
	}
	return scen
}

func facilitySweepJSON(t *testing.T, workers int) []byte {
	t.Helper()
	rs := Run(facilityScenarios(), Options{Workers: workers})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// faultyFacilityScenarios is the failing-machine slice of the facility
// axis: the same overload stream per policy, now under harsh per-module
// failure/repair processes — one cold-restart leg and one checkpointed leg
// each, so kills, requeues, rewinds, retries and repairs all happen in
// every sweep.
func faultyFacilityScenarios() []Scenario {
	var scen []Scenario
	for _, pol := range sched.FacilityPolicies() {
		for _, ckpt := range []bool{false, true} {
			faults := &sched.FacilityFaults{
				Cluster:    machine.FailureProfile{MTBF: 20, MTTR: 1.5},
				Booster:    machine.FailureProfile{MTBF: 12, MTTR: 1.5},
				Seed:       7,
				MaxRetries: 16,
			}
			name := "faulty/" + string(pol) + "/cold"
			if ckpt {
				faults.Rewind = resilience.FacilityCheckpoint{
					Every: 250 * vclock.Millisecond, Cost: 10 * vclock.Millisecond,
					Restore: 20 * vclock.Millisecond,
				}
				name = "faulty/" + string(pol) + "/ckpt"
			}
			p := sched.FacilityParams{Policy: pol, Jobs: 200, Load: 1.4, Seed: 42, Faults: faults}
			scen = append(scen, FacilityResiliencePoint{FacilityParams: p}.Scenario(name))
		}
	}
	return scen
}

func faultySweepJSON(t *testing.T, workers, kworkers int) []byte {
	t.Helper()
	prev := psmpi.DefaultKernelWorkers()
	psmpi.SetDefaultKernelWorkers(kworkers)
	defer psmpi.SetDefaultKernelWorkers(prev)
	rs := Run(faultyFacilityScenarios(), Options{Workers: workers})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFacilityFaultsWorkerCountInvariance extends the facility worker-
// invariance property to failing streams: seeded failure/repair processes,
// kills, rewinds and requeues are all events of the stream's private serial
// kernel, so the sweep JSON must stay byte-identical under any host worker
// count AND any -kworkers setting (the facility kernel never partitions;
// kworkers only affects psmpi launches, of which a facility stream has
// none).
func TestFacilityFaultsWorkerCountInvariance(t *testing.T) {
	// The streams must actually suffer: a fault-free replay would make the
	// property vacuous.
	rs := Run(faultyFacilityScenarios(), Options{Workers: 1})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	requeues, failures := 0.0, 0.0
	for _, r := range rs.Results {
		requeues += r.Metrics["requeues"]
		failures += r.Metrics["failures"]
	}
	if failures == 0 || requeues == 0 {
		t.Fatalf("faulty streams ran without failures (%v) or requeues (%v)", failures, requeues)
	}
	reference := faultySweepJSON(t, 1, 1)
	if got := faultySweepJSON(t, 4, 4); !bytes.Equal(got, reference) {
		t.Fatal("faulty facility sweep JSON differs between workers=1/kworkers=1 and workers=4/kworkers=4")
	}
	if testing.Short() {
		return
	}
	f := func(w, kw uint8) bool {
		workers := int(w)%8 + 1
		kworkers := int(kw) % 5
		return bytes.Equal(faultySweepJSON(t, workers, kworkers), reference)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Fatalf("faulty facility worker-count invariance violated: %v", err)
	}
}

// TestFacilityWorkerCountInvariance extends the kernel's determinism
// property to the facility layer: the same seeds must produce byte-identical
// facility sweep JSON under any host worker count, because each stream is a
// private machine + kernel whose job tasks are serialised by the baton —
// host scheduling never touches arrival order, grant order, or the backfill
// scan.
func TestFacilityWorkerCountInvariance(t *testing.T) {
	// The overloaded streams must actually exercise the scheduler, or the
	// property is vacuous.
	rs := Run(facilityScenarios(), Options{Workers: 1})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	backfilled, shrunk := 0.0, 0.0
	for _, r := range rs.Results {
		backfilled += r.Metrics["backfilled"]
		shrunk += r.Metrics["shrunk"]
	}
	if backfilled == 0 || shrunk == 0 {
		t.Fatalf("streams scheduled without backfills (%v) or shrinks (%v)", backfilled, shrunk)
	}
	reference := facilitySweepJSON(t, 1)
	if testing.Short() {
		if got := facilitySweepJSON(t, 4); !bytes.Equal(got, reference) {
			t.Fatal("facility sweep JSON differs between 1 and 4 workers")
		}
		return
	}
	f := func(w uint8) bool {
		workers := int(w)%16 + 1
		return bytes.Equal(facilitySweepJSON(t, workers), reference)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatalf("facility worker-count invariance violated: %v", err)
	}
}
