// Package sweep is the concurrent experiment-sweep engine: it takes a set of
// scenario configurations (declared directly, or expanded from a declarative
// Grid), runs each one on its own freshly booted system across a bounded pool
// of host worker goroutines, and aggregates the per-scenario outcomes into a
// single reproducible result set with JSON and CSV emitters.
//
// Host-parallel execution is safe because every simulation is deterministic
// in virtual time and scenarios share no state: each Scenario.Run boots its
// own core.System (machine, fabric, runtime, storage), so the result set is
// byte-identical regardless of the worker count or host scheduling. The
// paper's evaluations (Figs. 3, 7, 8; Tables I, II of "Application
// Performance on a Cluster-Booster System") are all parameter sweeps of this
// shape, and internal/bench drives them through this engine.
//
// A failure in one scenario (error or panic) is recorded on that scenario's
// Result and does not abort the sweep.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"clusterbooster/internal/xpic"
)

// Metrics is the flat numeric outcome of one scenario. Keys are emitted in
// sorted order by the JSON and CSV emitters, so a Metrics value is
// deterministic to serialise.
type Metrics map[string]float64

// Outcome is what a scenario's Run returns: the flat metrics every emitter
// understands, plus an optional typed xPic report for scenarios that ran the
// application.
type Outcome struct {
	Metrics Metrics
	// XPic carries the full application report for xPic scenarios (nil for
	// e.g. fabric microbenchmark scenarios).
	XPic *xpic.Report
}

// Scenario is one point of a sweep: a name and a self-contained run function.
// Run must boot everything it needs (fresh system, fresh state) so scenarios
// can execute host-parallel; it must not share mutable state with other
// scenarios.
type Scenario struct {
	Name string
	Run  func() (Outcome, error)
}

// Result is the aggregated outcome of one scenario.
type Result struct {
	// Index is the scenario's position in the sweep definition; results are
	// reported in index order regardless of completion order.
	Index int    `json:"index"`
	Name  string `json:"name"`
	// Error is the scenario's failure (error or recovered panic), empty on
	// success. A failed scenario has no metrics.
	Error   string       `json:"error,omitempty"`
	Metrics Metrics      `json:"metrics,omitempty"`
	XPic    *xpic.Report `json:"xpic,omitempty"`
}

// ResultSet is the aggregated, ordered outcome of a whole sweep.
type ResultSet struct {
	Scenarios int      `json:"scenarios"`
	Failures  int      `json:"failures"`
	Results   []Result `json:"results"`
}

// Failed returns the results that carry an error.
func (rs ResultSet) Failed() []Result {
	var out []Result
	for _, r := range rs.Results {
		if r.Error != "" {
			out = append(out, r)
		}
	}
	return out
}

// FirstError materialises the first failure as an error (nil if the whole
// sweep succeeded). Callers that want all-or-nothing semantics on top of the
// engine's keep-going behaviour use this.
func (rs ResultSet) FirstError() error {
	for _, r := range rs.Results {
		if r.Error != "" {
			return fmt.Errorf("sweep: scenario %q: %s", r.Name, r.Error)
		}
	}
	return nil
}

// EventKind tags an Event.
type EventKind int

const (
	// ScenarioStart fires when a worker picks a scenario up.
	ScenarioStart EventKind = iota
	// ScenarioDone fires when a scenario finishes (ok or failed).
	ScenarioDone
)

// Event is a progress notification delivered to Options.Observer.
type Event struct {
	Kind  EventKind
	Index int
	Name  string
	// Err is set on ScenarioDone for failed scenarios.
	Err error
}

// Options tunes a sweep execution. Options only affect scheduling and
// observation, never the aggregated results of the scenarios that run.
type Options struct {
	// Workers bounds the host worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Observer, if set, receives progress events. It is called from worker
	// goroutines and must be safe for concurrent use.
	Observer func(Event)
	// Context, if non-nil, cancels the sweep: once done, no further
	// scenario starts and every not-yet-started scenario's Result carries
	// the context's error. Scenarios already running finish normally —
	// simulations are synchronous and are never torn down mid-run.
	Context context.Context
}

// ctxErr reports the cancellation state of the sweep's context.
func (o Options) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the scenarios across a bounded worker pool and aggregates
// their outcomes in definition order. It never fails as a whole: per-scenario
// errors (including recovered panics) are recorded on the individual Result.
func Run(scenarios []Scenario, opts Options) ResultSet {
	rs := ResultSet{
		Scenarios: len(scenarios),
		Results:   make([]Result, len(scenarios)),
	}
	if len(scenarios) == 0 {
		return rs
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(len(scenarios)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// Checked again at pickup: cancellation between dispatch and
				// pickup must not start new work.
				if err := opts.ctxErr(); err != nil {
					rs.Results[i] = Result{Index: i, Name: scenarios[i].Name,
						Error: fmt.Sprintf("canceled: %v", err)}
					continue
				}
				rs.Results[i] = runOne(i, scenarios[i], opts.Observer)
			}
		}()
	}
	for i := range scenarios {
		if err := opts.ctxErr(); err != nil {
			for j := i; j < len(scenarios); j++ {
				rs.Results[j] = Result{Index: j, Name: scenarios[j].Name,
					Error: fmt.Sprintf("canceled: %v", err)}
			}
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()

	for _, r := range rs.Results {
		if r.Error != "" {
			rs.Failures++
		}
	}
	return rs
}

// runOne executes one scenario, converting panics into per-scenario errors so
// a broken configuration cannot take the whole sweep down.
func runOne(i int, s Scenario, observe func(Event)) (res Result) {
	res = Result{Index: i, Name: s.Name}
	if observe != nil {
		observe(Event{Kind: ScenarioStart, Index: i, Name: s.Name})
	}
	defer func() {
		if r := recover(); r != nil {
			res.Error = fmt.Sprintf("panic: %v", r)
			res.Metrics, res.XPic = nil, nil
		}
		if observe != nil {
			var err error
			if res.Error != "" {
				err = fmt.Errorf("%s", res.Error)
			}
			observe(Event{Kind: ScenarioDone, Index: i, Name: s.Name, Err: err})
		}
	}()
	if s.Run == nil {
		res.Error = "scenario has no run function"
		return res
	}
	out, err := s.Run()
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Metrics = out.Metrics
	res.XPic = out.XPic
	return res
}
