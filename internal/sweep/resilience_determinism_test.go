package sweep

import (
	"bytes"
	"testing"
	"testing/quick"

	"clusterbooster/internal/resilience"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// resilienceScenarios is a failure-heavy slice of the resilience axis: both
// mono modes and the split mode, cold and warm restarts, local and buddy
// levels — every scenario runs its own seeded injector.
func resilienceScenarios() []Scenario {
	wl := xpic.QuickConfig(12)
	var scen []Scenario
	for _, p := range []struct {
		name string
		prm  resilience.Params
	}{
		{"res/cluster/warm", resilience.Params{Mode: xpic.ClusterOnly, Nodes: 2, Workload: wl,
			CheckpointEvery: 3, SCR: scr.Config{BuddyEvery: 1}, RestartOverhead: 50 * vclock.Millisecond,
			MTBF: 60 * vclock.Millisecond, Seed: 11, MaxFailures: 1}},
		{"res/cluster/cold", resilience.Params{Mode: xpic.ClusterOnly, Nodes: 2, Workload: wl,
			CheckpointEvery: 3, SCR: scr.Config{BuddyEvery: 1}, RestartOverhead: 50 * vclock.Millisecond,
			MTBF: 60 * vclock.Millisecond, Seed: 9, MaxFailures: 1}},
		{"res/booster/global", resilience.Params{Mode: xpic.BoosterOnly, Nodes: 2, Workload: wl,
			CheckpointEvery: 3, SCR: scr.Config{GlobalEvery: 1}, RestartOverhead: 50 * vclock.Millisecond,
			MTBF: 30 * vclock.Millisecond, Seed: 4, MaxFailures: 1}},
		{"res/split/warm", resilience.Params{Mode: xpic.SplitCB, Nodes: 2, Workload: wl,
			CheckpointEvery: 3, SCR: scr.Config{BuddyEvery: 1}, RestartOverhead: 50 * vclock.Millisecond,
			MTBF: 110 * vclock.Millisecond, Seed: 5, MaxFailures: 1}},
	} {
		scen = append(scen, ResiliencePoint{Params: p.prm}.Scenario(p.name))
	}
	return scen
}

func resilienceSweepJSON(t *testing.T, workers int) []byte {
	t.Helper()
	rs := Run(resilienceScenarios(), Options{Workers: workers})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResilienceWorkerCountInvariance extends the kernel's determinism
// property to failure injection: the same seeds must produce byte-identical
// resilience sweep JSON under any host worker count, because failures are
// kernel events drawn from per-scenario RNGs in virtual time — host
// scheduling never touches the failure sequence, the teardown order, or the
// replay.
func TestResilienceWorkerCountInvariance(t *testing.T) {
	reference := resilienceSweepJSON(t, 1)
	// The failure sweep must actually contain failures, or the property is
	// vacuous.
	if !bytes.Contains(reference, []byte(`"failures": 1`)) {
		t.Fatalf("no failures in the reference sweep:\n%s", reference)
	}
	if testing.Short() {
		if got := resilienceSweepJSON(t, 4); !bytes.Equal(got, reference) {
			t.Fatal("resilience sweep JSON differs between 1 and 4 workers")
		}
		return
	}
	f := func(w uint8) bool {
		workers := int(w)%16 + 1
		return bytes.Equal(resilienceSweepJSON(t, workers), reference)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatalf("resilience worker-count invariance violated: %v", err)
	}
}
