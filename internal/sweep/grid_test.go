package sweep

import (
	"fmt"
	"strings"
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/xpic"
)

func TestGridValidate(t *testing.T) {
	ok := testGrid()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Grid)
	}{
		{"no node counts", func(g *Grid) { g.NodeCounts = nil }},
		{"bad node count", func(g *Grid) { g.NodeCounts = []int{2, 0} }},
		{"no modes", func(g *Grid) { g.Modes = nil }},
		{"no workloads", func(g *Grid) { g.Workloads = nil }},
	}
	for _, c := range cases {
		g := testGrid()
		c.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil", c.name)
		}
		if _, err := g.Scenarios(); err == nil {
			t.Errorf("%s: Scenarios() = nil error", c.name)
		}
	}
}

// TestGridExpansion checks size, deterministic order and unique names of the
// cross product, including the optional axes.
func TestGridExpansion(t *testing.T) {
	g := testGrid()
	g.Fabrics = []FabricVariant{
		{Name: "fab=proto", Config: fabric.Config{}},
		{Name: "fab=eager64K", Config: fabric.Config{EagerThreshold: 64 << 10}},
	}
	g.SCRs = []SCRVariant{
		{Name: "scr=none"},
		{Name: "scr=local", Spec: CheckpointAt(scr.LevelLocal)},
	}
	want := 2 * 3 * 2 * 2 * 2
	if g.Size() != want {
		t.Fatalf("Size() = %d, want %d", g.Size(), want)
	}
	scenarios, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != want {
		t.Fatalf("%d scenarios, want %d", len(scenarios), want)
	}
	seen := map[string]bool{}
	for _, s := range scenarios {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Run == nil {
			t.Errorf("scenario %q has no run function", s.Name)
		}
	}
	if got := scenarios[0].Name; got != "test/n=1/Cluster/s3/fab=proto/scr=none" {
		t.Errorf("first scenario name %q", got)
	}
	last := scenarios[len(scenarios)-1].Name
	if last != "test/n=4/C+B/s5/fab=eager64K/scr=local" {
		t.Errorf("last scenario name %q", last)
	}
	// Re-expansion yields the same order.
	again, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	for i := range scenarios {
		if scenarios[i].Name != again[i].Name {
			t.Fatalf("expansion order unstable at %d: %q vs %q", i, scenarios[i].Name, again[i].Name)
		}
	}
}

// TestCheckpointAt checks the cadence config matches the requested levels
// and that the mandatory local base level is always present exactly once.
func TestCheckpointAt(t *testing.T) {
	local := CheckpointAt(scr.LevelLocal)
	if local.Config.BuddyEvery != 0 || local.Config.GlobalEvery != 0 {
		t.Errorf("local spec config %+v", local.Config)
	}
	if len(local.Levels) != 1 || local.Levels[0] != scr.LevelLocal {
		t.Errorf("local spec levels %v", local.Levels)
	}
	buddy := CheckpointAt(scr.LevelBuddy)
	if len(buddy.Levels) != 2 || buddy.Levels[0] != scr.LevelLocal || buddy.Levels[1] != scr.LevelBuddy {
		t.Errorf("buddy spec levels %v: local base must be included", buddy.Levels)
	}
	all := CheckpointAt(scr.LevelLocal, scr.LevelBuddy, scr.LevelGlobal)
	if all.Config.BuddyEvery != 1 || all.Config.GlobalEvery != 1 {
		t.Errorf("all-levels spec config %+v", all.Config)
	}
	if len(all.Levels) != 3 {
		t.Errorf("%d levels: %v", len(all.Levels), all.Levels)
	}
}

// TestSCRCheckpointMetric runs a small grid with the checkpoint axis and
// checks the "checkpoint_s" metric exists and orders local < global (the
// SCR level-cost hierarchy) at every grid point.
func TestSCRCheckpointMetric(t *testing.T) {
	g := Grid{
		Name:       "ckpt",
		NodeCounts: []int{2},
		Modes:      []xpic.Mode{xpic.SplitCB},
		Workloads:  []WorkloadVariant{{Config: xpic.QuickConfig(3)}},
		SCRs: []SCRVariant{
			{Name: "scr=local", Spec: CheckpointAt(scr.LevelLocal)},
			{Name: "scr=global", Spec: CheckpointAt(scr.LevelGlobal)},
		},
	}
	scenarios, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(scenarios, Options{Workers: 2})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	local := rs.Results[0].Metrics["checkpoint_s"]
	global := rs.Results[1].Metrics["checkpoint_s"]
	if local <= 0 || global <= 0 {
		t.Fatalf("checkpoint costs local=%v global=%v not positive", local, global)
	}
	if local >= global {
		t.Errorf("local checkpoint (%v s) not cheaper than global (%v s)", local, global)
	}
	// The checkpoint axis must not perturb the simulation itself.
	if rs.Results[0].XPic.Makespan != rs.Results[1].XPic.Makespan {
		t.Errorf("makespan differs across checkpoint variants: %v vs %v",
			rs.Results[0].XPic.Makespan, rs.Results[1].XPic.Makespan)
	}
}

// TestGridScenarioMetrics runs one grid point and checks the standard xPic
// metric set is complete and consistent with the attached report.
func TestGridScenarioMetrics(t *testing.T) {
	p := XPicPoint{NodesPerSolver: 1, Mode: xpic.SplitCB, Workload: xpic.QuickConfig(4)}
	out, err := p.Scenario("one").Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{
		"makespan_s", "field_s", "particle_s", "exchange_s", "aux_s",
		"overhead_frac", "cg_iters", "field_energy", "kinetic_energy",
	} {
		if _, ok := out.Metrics[k]; !ok {
			t.Errorf("metric %q missing", k)
		}
	}
	if out.XPic == nil {
		t.Fatal("no xPic report attached")
	}
	if out.Metrics["makespan_s"] != out.XPic.Makespan.Seconds() {
		t.Error("makespan metric disagrees with report")
	}
	if out.XPic.Mode != xpic.SplitCB {
		t.Errorf("report mode %v", out.XPic.Mode)
	}
}

// TestGridErrorSurfacesPerScenario: an invalid workload at one grid point
// fails that scenario only.
func TestGridErrorSurfacesPerScenario(t *testing.T) {
	bad := xpic.QuickConfig(3)
	bad.NY = 10 // not divisible by 4 ranks
	g := Grid{
		Name:       "mixed",
		NodeCounts: []int{1, 4},
		Modes:      []xpic.Mode{xpic.ClusterOnly},
		Workloads:  []WorkloadVariant{{Name: "bad10", Config: bad}},
	}
	scenarios, err := g.Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(scenarios, Options{Workers: 2})
	if rs.Failures != 1 {
		t.Fatalf("failures = %d, want 1 (only n=4 divides badly): %+v", rs.Failures, rs.Results)
	}
	if rs.Results[0].Error != "" {
		t.Errorf("n=1 scenario failed: %s", rs.Results[0].Error)
	}
	if !strings.Contains(rs.Results[1].Error, "not divisible") {
		t.Errorf("n=4 error %q", rs.Results[1].Error)
	}
}

func TestJoinName(t *testing.T) {
	if got := joinName("a", "", "b", "", "c"); got != "a/b/c" {
		t.Errorf("joinName = %q", got)
	}
	if got := joinName("", ""); got != "" {
		t.Errorf("joinName of empties = %q", got)
	}
}

func TestGridSizeMatchesExpansion(t *testing.T) {
	for _, g := range []Grid{
		testGrid(),
		{Name: "x", NodeCounts: []int{1}, Modes: []xpic.Mode{xpic.ClusterOnly},
			Workloads: []WorkloadVariant{{Config: xpic.QuickConfig(2)}},
			MPIs:      []MPIVariant{{Name: fmt.Sprintf("mpi=%d", 1)}, {Name: "mpi=2"}}},
	} {
		scenarios, err := g.Scenarios()
		if err != nil {
			t.Fatal(err)
		}
		if g.Size() != len(scenarios) {
			t.Errorf("grid %q: Size() = %d but %d scenarios", g.Name, g.Size(), len(scenarios))
		}
	}
}
