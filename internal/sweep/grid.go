// Declarative scenario grids. A Grid is the cross product of experiment
// axes — nodes per solver, execution mode, workload, fabric parameters, MPI
// parameters, SCR checkpoint levels — and expands to one self-contained
// Scenario per grid point. This is the declarative form of the paper's
// evaluations: Fig. 7 is a 1-node × 3-mode grid, Fig. 8 a node-scaling ×
// 3-mode grid, and the DEEP-ER resiliency studies add the checkpoint-level
// axis.
package sweep

import (
	"fmt"
	"strings"

	"clusterbooster/internal/core"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/scr"
	"clusterbooster/internal/vclock"
	"clusterbooster/internal/xpic"
)

// WorkloadVariant names one xPic configuration of a grid.
type WorkloadVariant struct {
	Name   string
	Config xpic.Config
}

// FabricVariant names one fabric parameterisation of a grid.
type FabricVariant struct {
	Name   string
	Config fabric.Config
}

// MPIVariant names one MPI runtime parameterisation of a grid.
type MPIVariant struct {
	Name   string
	Config psmpi.Config
}

// SCRSpec asks a scenario to checkpoint the application state through the
// SCR-like manager after the run, and reports the checkpoint cost as the
// "checkpoint_s" metric. Levels and Config must be consistent (CheckpointAt
// builds a consistent pair).
type SCRSpec struct {
	Config scr.Config
	Levels []scr.Level
	// StateBytesPerRank overrides the checkpoint payload; 0 derives it from
	// the macro-particles each rank actually holds — the fidelity-scaled
	// count, TotalParticles/ParticleScale/ranks — at 48 B per particle (six
	// float64 components of phase space and weight). Set it explicitly to
	// cost full-fidelity state on a reduced-fidelity run.
	StateBytesPerRank int64
}

// CheckpointAt builds an SCRSpec whose cadence config matches the requested
// levels (every checkpoint hits each listed level). LevelLocal is always
// included: the SCR manager plans a local NVMe write on every checkpoint
// (BeginCheckpoint's base level), so a buddy or global cost that excluded it
// would understate what the modelled stack actually pays.
func CheckpointAt(levels ...scr.Level) *SCRSpec {
	spec := &SCRSpec{Levels: []scr.Level{scr.LevelLocal}}
	for _, l := range levels {
		switch l {
		case scr.LevelBuddy:
			spec.Config.BuddyEvery = 1
		case scr.LevelGlobal:
			spec.Config.GlobalEvery = 1
		}
		if l != scr.LevelLocal {
			spec.Levels = append(spec.Levels, l)
		}
	}
	return spec
}

// SCRVariant names one checkpoint configuration of a grid. A nil Spec means
// "no checkpointing" (the compute-only baseline).
type SCRVariant struct {
	Name string
	Spec *SCRSpec
}

// Grid declares a sweep as the cross product of its axes. NodeCounts, Modes
// and Workloads are required; the remaining axes default to a single unnamed
// variant (prototype fabric/MPI parameters, no checkpointing). Expansion
// order is deterministic: node counts outermost, then modes, workloads,
// fabrics, MPIs, SCR variants.
type Grid struct {
	// Name prefixes every scenario name.
	Name string
	// NodeCounts lists the ranks-per-solver points (the x axis of Fig. 8).
	NodeCounts []int
	// Modes lists the execution scenarios (Cluster, Booster, C+B).
	Modes []xpic.Mode
	// Workloads lists the xPic configurations to run.
	Workloads []WorkloadVariant
	// Fabrics optionally sweeps fabric parameters (e.g. eager thresholds).
	Fabrics []FabricVariant
	// MPIs optionally sweeps MPI runtime parameters (e.g. staging bandwidth).
	MPIs []MPIVariant
	// SCRs optionally sweeps checkpoint levels.
	SCRs []SCRVariant
}

// Validate checks the grid is expandable.
func (g Grid) Validate() error {
	if len(g.NodeCounts) == 0 {
		return fmt.Errorf("sweep: grid %q has no node counts", g.Name)
	}
	for _, n := range g.NodeCounts {
		if n < 1 {
			return fmt.Errorf("sweep: grid %q has node count %d", g.Name, n)
		}
	}
	if len(g.Modes) == 0 {
		return fmt.Errorf("sweep: grid %q has no modes", g.Name)
	}
	if len(g.Workloads) == 0 {
		return fmt.Errorf("sweep: grid %q has no workloads", g.Name)
	}
	return nil
}

// Size returns the number of scenarios the grid expands to.
func (g Grid) Size() int {
	n := len(g.NodeCounts) * len(g.Modes) * len(g.Workloads)
	n *= max1(len(g.Fabrics)) * max1(len(g.MPIs)) * max1(len(g.SCRs))
	return n
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Scenarios expands the grid to its cross product in deterministic order.
func (g Grid) Scenarios() ([]Scenario, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	fabrics := g.Fabrics
	if len(fabrics) == 0 {
		fabrics = []FabricVariant{{}}
	}
	mpis := g.MPIs
	if len(mpis) == 0 {
		mpis = []MPIVariant{{}}
	}
	scrs := g.SCRs
	if len(scrs) == 0 {
		scrs = []SCRVariant{{}}
	}

	scenarios := make([]Scenario, 0, g.Size())
	for _, n := range g.NodeCounts {
		for _, mode := range g.Modes {
			for _, wl := range g.Workloads {
				for _, fv := range fabrics {
					for _, mv := range mpis {
						for _, sv := range scrs {
							p := XPicPoint{
								NodesPerSolver: n,
								Mode:           mode,
								Workload:       wl.Config,
								Fabric:         fv.Config,
								MPI:            mv.Config,
								SCR:            sv.Spec,
							}
							name := joinName(g.Name,
								fmt.Sprintf("n=%d", n), mode.String(),
								wl.Name, fv.Name, mv.Name, sv.Name)
							scenarios = append(scenarios, p.Scenario(name))
						}
					}
				}
			}
		}
	}
	return scenarios, nil
}

// joinName joins the non-empty name parts with "/".
func joinName(parts ...string) string {
	kept := parts[:0]
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, "/")
}

// XPicPoint is one fully resolved grid point: everything needed to boot a
// system and run xPic on it.
type XPicPoint struct {
	NodesPerSolver int
	Mode           xpic.Mode
	Workload       xpic.Config
	Fabric         fabric.Config
	MPI            psmpi.Config
	SCR            *SCRSpec
}

// Scenario wraps the point as a self-contained Scenario and reports the
// standard xPic metric set. The compute phase resolves through the
// content-addressed scenario cache (see runcache.go): the first run of a
// distinct configuration boots a fresh system and simulates, later requests
// — from this sweep or any other experiment of the process — reuse the
// memoized report. The checkpoint phase, when the point asks for one, is
// priced per scenario on a fresh storage system.
func (p XPicPoint) Scenario(name string) Scenario {
	return Scenario{Name: name, Run: func() (Outcome, error) {
		var rep xpic.Report
		var err error
		var sys *core.System // system for the checkpoint phase
		if cacheDisabled.Load() {
			// Pre-cache behaviour: one system runs both phases.
			sys = core.New(p.NodesPerSolver, p.NodesPerSolver, core.Options{
				Fabric:         p.Fabric,
				MPI:            p.MPI,
				WithoutStorage: p.SCR == nil,
			})
			rep, err = sys.RunXPic(p.Mode, p.NodesPerSolver, p.Workload)
		} else {
			rep, err = p.cachedRun()
			if err == nil && p.SCR != nil {
				sys = core.New(p.NodesPerSolver, p.NodesPerSolver, core.Options{
					Fabric: p.Fabric,
					MPI:    p.MPI,
				})
			}
		}
		if err != nil {
			return Outcome{}, err
		}
		m := Metrics{
			"makespan_s":     rep.Makespan.Seconds(),
			"field_s":        rep.FieldTime.Seconds(),
			"particle_s":     rep.ParticleTime.Seconds(),
			"exchange_s":     rep.ExchangeTime.Seconds(),
			"aux_s":          rep.AuxTime.Seconds(),
			"overhead_frac":  rep.OverheadFraction(),
			"cg_iters":       float64(rep.CGIters),
			"field_energy":   rep.FieldEnergy,
			"kinetic_energy": rep.KineticEnergy,
		}
		if p.SCR != nil {
			ckpt, err := p.checkpoint(sys, rep.Makespan)
			if err != nil {
				return Outcome{}, err
			}
			m["checkpoint_s"] = ckpt.Seconds()
		}
		return Outcome{Metrics: m, XPic: &rep}, nil
	}}
}

// checkpoint writes every rank's state through the SCR manager on the nodes
// the dominant solver ran on and returns the virtual checkpoint cost (max
// over ranks, including global-container completion).
func (p XPicPoint) checkpoint(sys *core.System, start vclock.Time) (vclock.Time, error) {
	var nodes []*machine.Node
	var err error
	if p.Mode == xpic.ClusterOnly {
		nodes, err = sys.ClusterNodes(p.NodesPerSolver)
	} else {
		nodes, err = sys.BoosterNodes(p.NodesPerSolver)
	}
	if err != nil {
		return 0, err
	}
	mgr, err := scr.New(p.SCR.Config, sys.Network, sys.FS, nodes, sys.NVMe)
	if err != nil {
		return 0, err
	}
	bytesPerRank := p.SCR.StateBytesPerRank
	if bytesPerRank <= 0 {
		scale := p.Workload.ParticleScale
		if scale < 1 {
			scale = 1
		}
		bytesPerRank = int64(p.Workload.TotalParticles()/scale/p.NodesPerSolver) * 48
	}
	data := make([]byte, bytesPerRank)
	levels := p.SCR.Levels
	if len(levels) == 0 {
		levels = mgr.BeginCheckpoint(1)
	} else {
		mgr.BeginCheckpoint(1)
	}
	// The checkpoint is priced post-run with one detached actor per rank,
	// all issuing from the same post-barrier instant — the same reservation
	// order a collective checkpoint under the kernel would produce.
	done := start
	for rank := range nodes {
		a := ioev.Detach(nodes[rank], start)
		if err := mgr.Checkpoint(a, rank, 1, data, levels); err != nil {
			return 0, fmt.Errorf("sweep: checkpoint rank %d: %w", rank, err)
		}
		done = vclock.Max(done, a.Now())
	}
	for _, l := range levels {
		if l == scr.LevelGlobal {
			a := ioev.Detach(nodes[0], done)
			if err := mgr.CompleteGlobal(a, 1, 0); err != nil {
				return 0, fmt.Errorf("sweep: complete global checkpoint: %w", err)
			}
			if a.Now() > done {
				done = a.Now()
			}
			break
		}
	}
	return done - start, nil
}
