package sweep

import (
	"bytes"
	"testing"
	"testing/quick"

	"clusterbooster/internal/xpic"
)

// determinismGrid is a small but representative slice of the evaluation
// space: both mono modes and the spawn-based split mode, at one and two
// ranks per solver (halo + migration traffic included).
func determinismGrid() Grid {
	cfg := xpic.QuickConfig(3)
	return Grid{
		Name:       "det",
		NodeCounts: []int{1, 2},
		Modes:      []xpic.Mode{xpic.ClusterOnly, xpic.BoosterOnly, xpic.SplitCB},
		Workloads:  []WorkloadVariant{{Config: cfg}},
	}
}

func sweepJSON(t *testing.T, workers int) []byte {
	t.Helper()
	scenarios, err := determinismGrid().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(scenarios, Options{Workers: workers})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkerCountInvariance is the determinism property of the execution
// kernel: the sweep's JSON must be bit-identical for any host worker count,
// because every scenario's event order is decided by virtual time inside its
// own kernel, never by host scheduling.
func TestWorkerCountInvariance(t *testing.T) {
	reference := sweepJSON(t, 1)
	if testing.Short() {
		if got := sweepJSON(t, 4); !bytes.Equal(got, reference) {
			t.Fatal("sweep JSON differs between 1 and 4 workers")
		}
		return
	}
	f := func(w uint8) bool {
		workers := int(w)%16 + 1
		return bytes.Equal(sweepJSON(t, workers), reference)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatalf("worker-count invariance violated: %v", err)
	}
}
