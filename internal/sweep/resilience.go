// Resilience scenarios: the MTBF × checkpoint-level × mode axis of the
// DEEP-ER evaluation. A ResiliencePoint wraps a resilience.Params into a
// self-contained Scenario — fresh system, fresh SCR manager, seeded failure
// injector — so resilience grids run host-parallel under the same
// byte-determinism guarantee as every other sweep: the failure sequence is
// drawn in virtual time from the scenario's own seed, never from host state.
package sweep

import (
	"clusterbooster/internal/resilience"
)

// ResiliencePoint is one resilience grid point: an xPic run under failure
// injection with checkpoint/restart replay.
type ResiliencePoint struct {
	resilience.Params
}

// Scenario wraps the point as a self-contained Scenario reporting the
// standard xPic metric set plus the resilience accounting.
func (p ResiliencePoint) Scenario(name string) Scenario {
	return Scenario{Name: name, Run: func() (Outcome, error) {
		out, err := resilience.Run(p.Params)
		if err != nil {
			return Outcome{}, err
		}
		rep := out.Report
		m := Metrics{
			"makespan_s":         rep.Makespan.Seconds(),
			"field_s":            rep.FieldTime.Seconds(),
			"particle_s":         rep.ParticleTime.Seconds(),
			"failures":           float64(out.Failures),
			"restarts":           float64(len(out.Restarts)),
			"checkpoints":        float64(out.Checkpoints),
			"checkpoint_s":       out.CheckpointTime.Seconds(),
			"lost_work_s":        out.LostWork.Seconds(),
			"restore_s":          out.RestoreTime.Seconds(),
			"restart_overhead_s": out.RestartOverheadTotal.Seconds(),
		}
		if n := len(out.Restarts); n > 0 {
			m["rewind_step"] = float64(out.Restarts[n-1].FromStep)
			cold := 0
			for _, r := range out.Restarts {
				if r.Cold {
					cold++
				}
			}
			m["cold_restarts"] = float64(cold)
		}
		return Outcome{Metrics: m, XPic: &rep}, nil
	}}
}
