// Facility scenarios: the fig-facility policy × load axis. A FacilityPoint
// wraps a sched.FacilityParams into a self-contained Scenario — fresh
// machine, fresh kernel, one seeded arrival stream of (typically) a
// thousand jobs — so facility grids run host-parallel under the same
// byte-determinism guarantee as every other sweep.
package sweep

import (
	"clusterbooster/internal/sched"
)

// FacilityPoint is one fig-facility grid point: a synthetic multi-job
// arrival stream scheduled on one event kernel under one queue policy.
type FacilityPoint struct {
	sched.FacilityParams
}

// Scenario wraps the point as a self-contained Scenario reporting facility
// utilization, bounded slowdown, wait and queue activity.
func (p FacilityPoint) Scenario(name string) Scenario {
	return Scenario{Name: name, Run: func() (Outcome, error) {
		out, err := sched.RunFacility(p.FacilityParams)
		if err != nil {
			return Outcome{}, err
		}
		return Outcome{Metrics: Metrics{
			"jobs":         float64(out.Jobs),
			"makespan_s":   out.Makespan.Seconds(),
			"util_cluster": out.UtilCluster,
			"util_booster": out.UtilBooster,
			"wait_mean_s":  out.MeanWait.Seconds(),
			"bsld_mean":    out.MeanSlowdown,
			"bsld_p95":     out.P95Slowdown,
			"backfilled":   float64(out.Backfilled),
			"shrunk":       float64(out.Shrunk),
			"peak_queue":   float64(out.PeakQueue),
		}}, nil
	}}
}
