// I/O scenarios: the fig-io strategy × node count × payload axis. An
// IOPoint wraps an ioexp.Params into a self-contained Scenario — fresh
// system, fresh storage stack, one MPI-style job — so I/O grids run
// host-parallel under the same byte-determinism guarantee as every other
// sweep.
package sweep

import (
	"clusterbooster/internal/ioexp"
)

// IOPoint is one fig-io grid point: every rank pushes a checkpoint-sized
// payload through one I/O strategy on the event kernel.
type IOPoint struct {
	ioexp.Params
}

// Scenario wraps the point as a self-contained Scenario reporting the
// return/durable split plus aggregate bandwidth.
func (p IOPoint) Scenario(name string) Scenario {
	return Scenario{Name: name, Run: func() (Outcome, error) {
		out, err := ioexp.Run(p.Params)
		if err != nil {
			return Outcome{}, err
		}
		m := Metrics{
			"makespan_s": out.Makespan.Seconds(),
			"return_s":   out.Return.Seconds(),
			"durable_s":  out.Durable.Seconds(),
			"bytes":      float64(out.Bytes),
		}
		if s := out.Durable.Seconds(); s > 0 {
			m["agg_gbs"] = float64(out.Bytes) / s / 1e9
		}
		return Outcome{Metrics: m}, nil
	}}
}
