package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clusterbooster/internal/xpic"
)

// testGrid is the reference grid of the engine tests: 2 node counts × 3
// modes × 2 workloads = 12 scenarios, all real xPic runs. The 4-node point
// matters: with ≥3 ranks per solver, halo exchanges fan into each rank's
// ejection link from two senders, which is exactly where determinism under
// host parallelism historically broke.
func testGrid() Grid {
	return Grid{
		Name:       "test",
		NodeCounts: []int{1, 4},
		Modes:      []xpic.Mode{xpic.ClusterOnly, xpic.BoosterOnly, xpic.SplitCB},
		Workloads: []WorkloadVariant{
			{Name: "s3", Config: xpic.QuickConfig(3)},
			{Name: "s5", Config: xpic.QuickConfig(5)},
		},
	}
}

// TestDeterministicJSONUnderParallelism runs the same grid twice — serial
// and with a wide worker pool — and requires byte-identical aggregated JSON:
// the acceptance property of the engine.
func TestDeterministicJSONUnderParallelism(t *testing.T) {
	emit := func(workers int) []byte {
		scenarios, err := testGrid().Scenarios()
		if err != nil {
			t.Fatal(err)
		}
		rs := Run(scenarios, Options{Workers: workers})
		if rs.Failures != 0 {
			t.Fatalf("workers=%d: %d failures, first: %v", workers, rs.Failures, rs.FirstError())
		}
		var buf bytes.Buffer
		if err := rs.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := emit(1)
	parallel := emit(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("aggregated JSON differs between workers=1 and workers=8")
	}
	parallel2 := emit(8)
	if !bytes.Equal(parallel, parallel2) {
		t.Fatal("aggregated JSON differs between two workers=8 runs")
	}
}

// TestWorkerPoolBounded checks the pool never exceeds Options.Workers.
func TestWorkerPoolBounded(t *testing.T) {
	const workers = 3
	var active, peak int64
	scenarios := make([]Scenario, 12)
	for i := range scenarios {
		scenarios[i] = Scenario{
			Name: fmt.Sprintf("bounded/%d", i),
			Run: func() (Outcome, error) {
				cur := atomic.AddInt64(&active, 1)
				for {
					old := atomic.LoadInt64(&peak)
					if cur <= old || atomic.CompareAndSwapInt64(&peak, old, cur) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				atomic.AddInt64(&active, -1)
				return Outcome{Metrics: Metrics{"ok": 1}}, nil
			},
		}
	}
	rs := Run(scenarios, Options{Workers: workers})
	if rs.Failures != 0 {
		t.Fatalf("%d failures", rs.Failures)
	}
	if p := atomic.LoadInt64(&peak); p > workers {
		t.Fatalf("observed %d concurrent scenarios, pool bound is %d", p, workers)
	}
}

// TestScenariosActuallyOverlap proves the engine is concurrent, not merely
// interleaved: two scenarios rendezvous mid-run, which only completes if
// both are in flight at once.
func TestScenariosActuallyOverlap(t *testing.T) {
	var barrier sync.WaitGroup
	barrier.Add(2)
	meet := func() (Outcome, error) {
		barrier.Done()
		done := make(chan struct{})
		go func() { barrier.Wait(); close(done) }()
		select {
		case <-done:
			return Outcome{Metrics: Metrics{"met": 1}}, nil
		case <-time.After(10 * time.Second):
			return Outcome{}, fmt.Errorf("rendezvous timed out: scenarios did not overlap")
		}
	}
	rs := Run([]Scenario{
		{Name: "left", Run: meet},
		{Name: "right", Run: meet},
	}, Options{Workers: 2})
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
}

// TestFailureIsolation: an erroring scenario and a panicking scenario are
// recorded per-scenario; the rest of the sweep completes normally.
func TestFailureIsolation(t *testing.T) {
	scenarios := []Scenario{
		{Name: "ok-1", Run: func() (Outcome, error) {
			return Outcome{Metrics: Metrics{"v": 1}}, nil
		}},
		{Name: "fails", Run: func() (Outcome, error) {
			return Outcome{}, fmt.Errorf("synthetic failure")
		}},
		{Name: "panics", Run: func() (Outcome, error) {
			panic("synthetic panic")
		}},
		{Name: "no-run"},
		{Name: "ok-2", Run: func() (Outcome, error) {
			return Outcome{Metrics: Metrics{"v": 2}}, nil
		}},
	}
	rs := Run(scenarios, Options{Workers: 4})
	if rs.Scenarios != 5 || rs.Failures != 3 {
		t.Fatalf("scenarios=%d failures=%d, want 5/3", rs.Scenarios, rs.Failures)
	}
	if got := rs.Results[1].Error; !strings.Contains(got, "synthetic failure") {
		t.Errorf("error result: %q", got)
	}
	if got := rs.Results[2].Error; !strings.Contains(got, "panic: synthetic panic") {
		t.Errorf("panic result: %q", got)
	}
	if got := rs.Results[3].Error; !strings.Contains(got, "no run function") {
		t.Errorf("nil-run result: %q", got)
	}
	for _, i := range []int{0, 4} {
		if rs.Results[i].Error != "" || rs.Results[i].Metrics == nil {
			t.Errorf("healthy scenario %d contaminated: %+v", i, rs.Results[i])
		}
	}
	if len(rs.Failed()) != 3 {
		t.Errorf("Failed() returned %d results", len(rs.Failed()))
	}
	if rs.FirstError() == nil {
		t.Error("FirstError() = nil with failures present")
	}
}

// TestResultsInDefinitionOrder: completion order must not leak into the
// aggregation (scenarios finish in reverse via staggered sleeps).
func TestResultsInDefinitionOrder(t *testing.T) {
	const n = 6
	scenarios := make([]Scenario, n)
	for i := range scenarios {
		scenarios[i] = Scenario{
			Name: fmt.Sprintf("s%d", i),
			Run: func() (Outcome, error) {
				time.Sleep(time.Duration(n-i) * 3 * time.Millisecond)
				return Outcome{Metrics: Metrics{"i": float64(i)}}, nil
			},
		}
	}
	rs := Run(scenarios, Options{Workers: n})
	for i, r := range rs.Results {
		if r.Index != i || r.Name != fmt.Sprintf("s%d", i) || r.Metrics["i"] != float64(i) {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
	}
}

// TestObserverSeesEveryScenario counts start/done events.
func TestObserverSeesEveryScenario(t *testing.T) {
	var starts, dones, fails int64
	scenarios, err := testGrid().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	scenarios = scenarios[:4]
	scenarios[2].Run = func() (Outcome, error) { return Outcome{}, fmt.Errorf("boom") }
	Run(scenarios, Options{Workers: 2, Observer: func(ev Event) {
		switch ev.Kind {
		case ScenarioStart:
			atomic.AddInt64(&starts, 1)
		case ScenarioDone:
			atomic.AddInt64(&dones, 1)
			if ev.Err != nil {
				atomic.AddInt64(&fails, 1)
			}
		}
	}})
	if starts != 4 || dones != 4 || fails != 1 {
		t.Fatalf("starts=%d dones=%d fails=%d, want 4/4/1", starts, dones, fails)
	}
}

// TestEmptySweep is a degenerate-input guard.
func TestEmptySweep(t *testing.T) {
	rs := Run(nil, Options{Workers: 4})
	if rs.Scenarios != 0 || rs.Failures != 0 || len(rs.Results) != 0 {
		t.Fatalf("empty sweep produced %+v", rs)
	}
	if err := rs.FirstError(); err != nil {
		t.Fatal(err)
	}
}

// TestCSVEmitter checks shape and determinism of the CSV form.
func TestCSVEmitter(t *testing.T) {
	scenarios := []Scenario{
		{Name: "a", Run: func() (Outcome, error) {
			return Outcome{Metrics: Metrics{"zeta": 1.5, "alpha": 2}}, nil
		}},
		{Name: "b", Run: func() (Outcome, error) { return Outcome{}, fmt.Errorf("bad") }},
		{Name: "c", Run: func() (Outcome, error) {
			return Outcome{Metrics: Metrics{"alpha": 3}}, nil
		}},
	}
	rs := Run(scenarios, Options{Workers: 2})
	var buf bytes.Buffer
	if err := rs.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d CSV lines: %q", len(lines), buf.String())
	}
	if lines[0] != "index,name,error,alpha,zeta" {
		t.Errorf("header %q: metric columns must be sorted", lines[0])
	}
	if lines[1] != "a,,2,1.5" && lines[1] != "0,a,,2,1.5" {
		if !strings.HasPrefix(lines[1], "0,a,,2,1.5") {
			t.Errorf("row a = %q", lines[1])
		}
	}
	if !strings.Contains(lines[2], "bad") {
		t.Errorf("row b = %q lacks the error", lines[2])
	}
	if !strings.HasSuffix(lines[3], "3,") {
		t.Errorf("row c = %q should have an empty zeta cell", lines[3])
	}
}

// TestRenderText smoke-checks the human-readable table.
func TestRenderText(t *testing.T) {
	scenarios, err := testGrid().Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	rs := Run(scenarios[:2], Options{Workers: 2})
	txt := rs.RenderText()
	if !strings.Contains(txt, "2 scenarios") || !strings.Contains(txt, "test/n=1/Cluster/s3") {
		t.Errorf("render incomplete:\n%s", txt)
	}
}
