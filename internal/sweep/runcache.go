// Content-addressed scenario cache. A scenario's compute phase — boot a
// system, run xPic — is a pure function of its resolved configuration: the
// platform is deterministic in virtual time, and (as the golden documents
// prove, see EXPERIMENTS.md "Scenario cache") the report is independent of
// whether the storage stack is booted alongside, since the compute phase
// never touches it. The cache exploits that: each distinct compute
// configuration is canonically hashed, and the process computes it exactly
// once, no matter how many experiments sweep over it — fig7, fig8 and the
// paper sweep all share their mono baselines, and the paper sweep's SCR axis
// re-prices checkpoints over one compute run instead of three.
//
// Checkpoint phases are NOT cached: they are re-priced per scenario on a
// fresh storage system. That is byte-identical to pricing them on the system
// the run used, because every checkpoint reservation starts at or after the
// job's makespan — at or after the end of every link window the run booked —
// so the run's residual link history can never influence the placement.
//
// Concurrent sweep workers that race for the same key share one computation
// (per-entry singleflight), so worker-count invariance holds trivially: the
// bytes a sweep emits are the same with the cache on, off, or shared across
// any number of workers. TestRunCacheTransparency asserts exactly that.
//
// Underneath the in-process memo sits an optional persistent layer
// (internal/runstore, enabled via SetDiskRunStore): successful reports are
// published to an epoch-scoped on-disk store keyed by the same canonical
// hashes, so a second process — a later cbctl invocation, a CI re-run, a
// cbctl serve worker — starts warm. Reports round-trip through their JSON
// encoding bit-exactly (every field is a float64/int/enum with a lossless
// encoding), so a disk-served report yields byte-identical documents; the
// golden gate replays the catalog cold and warm to hold that line. Failed
// computations are never persisted: errors are memoized in-process only and
// become re-attemptable after ResetRunCache.
package sweep

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"clusterbooster/internal/core"
	"clusterbooster/internal/runstore"
	"clusterbooster/internal/xpic"
)

var runCache = struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*runCacheEntry
}{m: map[[sha256.Size]byte]*runCacheEntry{}}

var (
	cacheDisabled atomic.Bool
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	diskStore     atomic.Pointer[runstore.Store]
)

// runCacheEntry is one memoized compute run. The entry mutex serialises
// concurrent workers racing for the same key onto a single computation
// (the singleflight); done guards the memo. A sync.Once is deliberately NOT
// used here: Once marks itself done even when the function panics, which
// would hand every later caller a zero-value report with a nil error — the
// cache-poisoning bug TestRunCachePanicDoesNotPoison pins down. With the
// mutex scheme a panic unwinds before done is set, so the entry stays
// pending and the next caller recomputes.
type runCacheEntry struct {
	mu   sync.Mutex
	done bool
	rep  xpic.Report
	err  error
}

// CacheStats is the scenario cache's hit/miss counters, surfaced through the
// -stats flags of cbctl run and deepsim.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// String renders the counters in the -stats flag format.
func (c CacheStats) String() string {
	return fmt.Sprintf("scenario cache: hits=%d misses=%d", c.Hits, c.Misses)
}

// RunCacheStats snapshots the process-wide cache counters.
func RunCacheStats() CacheStats {
	return CacheStats{Hits: cacheHits.Load(), Misses: cacheMisses.Load()}
}

// SetRunCache enables or disables the scenario cache (enabled by default).
// With the cache off every scenario boots and runs its own system, exactly
// the pre-cache behaviour; results are byte-identical either way.
func SetRunCache(enabled bool) { cacheDisabled.Store(!enabled) }

// ResetRunCache drops every memoized run and zeroes the counters. Dropping
// the map is also the retry path for errored computations: error entries are
// memoized in-process (a deterministic simulation fails the same way every
// time) but never persisted, so after a reset the next request genuinely
// recomputes.
func ResetRunCache() {
	runCache.mu.Lock()
	runCache.m = map[[sha256.Size]byte]*runCacheEntry{}
	runCache.mu.Unlock()
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// SetDiskRunStore layers a persistent result store under the in-process
// cache (nil disconnects it). In-process misses consult the store before
// computing; successful computations are published to it. Stale entries
// cannot leak across code generations: the store handle is opened under an
// epoch (see exp.CacheEpoch) and a mismatched epoch never hits.
func SetDiskRunStore(s *runstore.Store) { diskStore.Store(s) }

// DiskRunStore returns the configured persistent store (nil when disabled),
// for the -stats reporting paths.
func DiskRunStore() *runstore.Store { return diskStore.Load() }

// computeKey canonically hashes the point's compute configuration — node
// count, mode, workload, fabric and MPI parameters; everything that can
// influence the report, and nothing that cannot (the SCR axis only prices
// checkpoints after the run).
func (p XPicPoint) computeKey() [sha256.Size]byte {
	c := p
	c.SCR = nil
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("sweep: hash scenario config: %v", err))
	}
	return sha256.Sum256(b)
}

// computeRun executes the point's compute phase on a dedicated storage-less
// system (reports are storage-independent; see the package comment above).
func (p XPicPoint) computeRun() (xpic.Report, error) {
	sys := core.New(p.NodesPerSolver, p.NodesPerSolver, core.Options{
		Fabric:         p.Fabric,
		MPI:            p.MPI,
		WithoutStorage: true,
	})
	return sys.RunXPic(p.Mode, p.NodesPerSolver, p.Workload)
}

// cachedRun returns the point's report through the cache, computing it on
// the first request for this configuration.
func (p XPicPoint) cachedRun() (xpic.Report, error) {
	return cachedCompute(p.computeKey(), p.computeRun)
}

// cachedCompute resolves one compute key through the two cache layers:
// the in-process memo first, then the persistent store, then the compute
// function itself. Concurrent callers for one key serialise on the entry
// mutex, so the computation (or the disk read) happens exactly once per
// process — the singleflight cbctl serve relies on to dedupe in-flight
// requests. The hit/miss counters track the in-process layer: a disk-served
// report still counts as a process miss (the disk store keeps its own
// counters).
func cachedCompute(key [sha256.Size]byte, compute func() (xpic.Report, error)) (xpic.Report, error) {
	runCache.mu.Lock()
	e, ok := runCache.m[key]
	if !ok {
		e = &runCacheEntry{}
		runCache.m[key] = e
	}
	runCache.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		cacheHits.Add(1)
		return e.rep, e.err
	}
	cacheMisses.Add(1)
	if st := diskStore.Load(); st != nil {
		if rep, ok := loadStoredReport(st, key); ok {
			e.rep, e.err, e.done = rep, nil, true
			return e.rep, nil
		}
	}
	// A panic below propagates to the sweep's per-scenario recover. done
	// stays false, so the entry is not poisoned: later callers recompute
	// instead of silently reading a zero-value report.
	rep, err := compute()
	e.rep, e.err, e.done = rep, err, true
	if err == nil {
		if st := diskStore.Load(); st != nil {
			storeReport(st, key, rep)
		}
	}
	return rep, err
}

// loadStoredReport fetches and decodes a persisted report. Any failure is a
// miss: a payload the envelope verified but this code cannot decode is
// reclassified on the store's counters and recomputed.
func loadStoredReport(st *runstore.Store, key [sha256.Size]byte) (xpic.Report, bool) {
	b, ok := st.Get(key)
	if !ok {
		return xpic.Report{}, false
	}
	var rep xpic.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		st.MarkCorrupt()
		return xpic.Report{}, false
	}
	return rep, true
}

// storeReport publishes a successful report, best-effort: a store that
// cannot be written degrades to the in-process cache (the store counts the
// failure), it never fails the run. Errored computations are the caller's
// responsibility to withhold.
func storeReport(st *runstore.Store, key [sha256.Size]byte, rep xpic.Report) {
	b, err := json.Marshal(rep)
	if err != nil {
		return
	}
	st.Put(key, b)
}
