// Content-addressed scenario cache. A scenario's compute phase — boot a
// system, run xPic — is a pure function of its resolved configuration: the
// platform is deterministic in virtual time, and (as the golden documents
// prove, see EXPERIMENTS.md "Scenario cache") the report is independent of
// whether the storage stack is booted alongside, since the compute phase
// never touches it. The cache exploits that: each distinct compute
// configuration is canonically hashed, and the process computes it exactly
// once, no matter how many experiments sweep over it — fig7, fig8 and the
// paper sweep all share their mono baselines, and the paper sweep's SCR axis
// re-prices checkpoints over one compute run instead of three.
//
// Checkpoint phases are NOT cached: they are re-priced per scenario on a
// fresh storage system. That is byte-identical to pricing them on the system
// the run used, because every checkpoint reservation starts at or after the
// job's makespan — at or after the end of every link window the run booked —
// so the run's residual link history can never influence the placement.
//
// Concurrent sweep workers that race for the same key share one computation
// (per-entry once), so worker-count invariance holds trivially: the bytes a
// sweep emits are the same with the cache on, off, or shared across any
// number of workers. TestRunCacheTransparency asserts exactly that.
package sweep

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"clusterbooster/internal/core"
	"clusterbooster/internal/xpic"
)

var runCache = struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*runCacheEntry
}{m: map[[sha256.Size]byte]*runCacheEntry{}}

var (
	cacheDisabled atomic.Bool
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
)

// runCacheEntry is one memoized compute run; once serialises concurrent
// workers racing for the same key onto a single computation.
type runCacheEntry struct {
	once sync.Once
	rep  xpic.Report
	err  error
}

// CacheStats is the scenario cache's hit/miss counters, surfaced through the
// -stats flags of cbctl run and deepsim.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// String renders the counters in the -stats flag format.
func (c CacheStats) String() string {
	return fmt.Sprintf("scenario cache: hits=%d misses=%d", c.Hits, c.Misses)
}

// RunCacheStats snapshots the process-wide cache counters.
func RunCacheStats() CacheStats {
	return CacheStats{Hits: cacheHits.Load(), Misses: cacheMisses.Load()}
}

// SetRunCache enables or disables the scenario cache (enabled by default).
// With the cache off every scenario boots and runs its own system, exactly
// the pre-cache behaviour; results are byte-identical either way.
func SetRunCache(enabled bool) { cacheDisabled.Store(!enabled) }

// ResetRunCache drops every memoized run and zeroes the counters.
func ResetRunCache() {
	runCache.mu.Lock()
	runCache.m = map[[sha256.Size]byte]*runCacheEntry{}
	runCache.mu.Unlock()
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// computeKey canonically hashes the point's compute configuration — node
// count, mode, workload, fabric and MPI parameters; everything that can
// influence the report, and nothing that cannot (the SCR axis only prices
// checkpoints after the run).
func (p XPicPoint) computeKey() [sha256.Size]byte {
	c := p
	c.SCR = nil
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("sweep: hash scenario config: %v", err))
	}
	return sha256.Sum256(b)
}

// computeRun executes the point's compute phase on a dedicated storage-less
// system (reports are storage-independent; see the package comment above).
func (p XPicPoint) computeRun() (xpic.Report, error) {
	sys := core.New(p.NodesPerSolver, p.NodesPerSolver, core.Options{
		Fabric:         p.Fabric,
		MPI:            p.MPI,
		WithoutStorage: true,
	})
	return sys.RunXPic(p.Mode, p.NodesPerSolver, p.Workload)
}

// cachedRun returns the point's report through the cache, computing it on
// the first request for this configuration.
func (p XPicPoint) cachedRun() (xpic.Report, error) {
	key := p.computeKey()
	runCache.mu.Lock()
	e, ok := runCache.m[key]
	if !ok {
		e = &runCacheEntry{}
		runCache.m[key] = e
	}
	runCache.mu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		cacheMisses.Add(1)
		e.rep, e.err = p.computeRun()
	})
	if hit {
		cacheHits.Add(1)
	}
	return e.rep, e.err
}
