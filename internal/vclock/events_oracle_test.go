package vclock

import "testing"

// heapQueue is the binary-heap event queue that backed EventQueue from PR 3
// until the calendar queue replaced it. It is kept verbatim as the
// differential oracle: FuzzEventQueueVsHeap drives both structures with the
// same op stream (including the whole checked-in FuzzEventQueue corpus,
// which shares its input format) and demands identical pops, proving the
// replacement preserves the (At, Seq) order — and with it the kernel's
// deterministic schedule — exactly.
type heapQueue struct {
	h   []Event
	seq uint64
}

func (q *heapQueue) Len() int { return len(q.h) }

func (q *heapQueue) Push(at Time, payload any) uint64 {
	q.seq++
	e := Event{At: at, Seq: q.seq, Payload: payload}
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
	return e.Seq
}

func (q *heapQueue) Pop() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	e = q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Event{}
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return e, true
}

func (q *heapQueue) Peek() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

func (e Event) before(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	return e.Seq < o.Seq
}

func (q *heapQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *heapQueue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.h[l].before(q.h[min]) {
			min = l
		}
		if r < n && q.h[r].before(q.h[min]) {
			min = r
		}
		if min == i {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}

// runDifferential drives the calendar-backed EventQueue and the heap oracle
// with the same op stream (the FuzzEventQueue encoding: bytes >= 0xF0 pop,
// everything else pushes a time from the tie-heavy alphabet) and fails on
// the first divergence. After the stream, both queues are drained and must
// agree entry for entry.
func runDifferential(t *testing.T, ops []byte) {
	t.Helper()
	var cal EventQueue
	var heap heapQueue
	step := func(op int) {
		ce, cok := cal.Pop()
		he, hok := heap.Pop()
		if cok != hok {
			t.Fatalf("op %d: calendar pop ok=%v, heap ok=%v", op, cok, hok)
		}
		if cok && (ce.At != he.At || ce.Seq != he.Seq) {
			t.Fatalf("op %d: calendar popped (%v, seq %d), heap (%v, seq %d)",
				op, ce.At, ce.Seq, he.At, he.Seq)
		}
	}
	for i, op := range ops {
		if op >= 0xF0 {
			step(i)
			continue
		}
		at := fuzzTimes[int(op)%len(fuzzTimes)]
		cs := cal.Push(at, nil)
		hs := heap.Push(at, nil)
		if cs != hs {
			t.Fatalf("op %d: calendar seq %d, heap seq %d", i, cs, hs)
		}
		if cal.Len() != heap.Len() {
			t.Fatalf("op %d: calendar len %d, heap len %d", i, cal.Len(), heap.Len())
		}
	}
	for cal.Len() > 0 || heap.Len() > 0 {
		step(-1)
	}
}

// FuzzEventQueueVsHeap is the differential fuzzer: calendar queue vs the
// retired heap, same ops, identical pops.
func FuzzEventQueueVsHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 0xF0, 0xF1, 4, 5, 0xFF})
	f.Add([]byte{0, 0, 0, 0xF0, 0xF0, 0xF0, 0xF0})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1, 0, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8})
	f.Fuzz(runDifferential)
}

// TestEventQueueVsHeapPatterns replays kernel-shaped op patterns through the
// differential harness: monotone pushes (timer-like), drain-to-empty cycles
// (the front-register regime), same-instant bursts (collective fan-out), and
// population swings big enough to force calendar resizes both ways.
func TestEventQueueVsHeapPatterns(t *testing.T) {
	patterns := map[string][]byte{
		"monotone":     {0, 2, 4, 5, 0xF0, 0xF0, 0xF0, 0xF0},
		"pingpong":     {0, 0xF0, 1, 0xF0, 2, 0xF0, 3, 0xF0, 4, 0xF0},
		"same-instant": {1, 1, 1, 1, 1, 1, 1, 1, 0xF0, 0xF0, 1, 1, 0xF0},
	}
	var grow []byte
	for i := 0; i < 300; i++ {
		grow = append(grow, byte(i%8))
	}
	for i := 0; i < 280; i++ {
		grow = append(grow, 0xF0)
	}
	for i := 0; i < 64; i++ {
		grow = append(grow, byte(i%8), 0xF0, 0xF0)
	}
	patterns["resize-swing"] = grow
	for name, ops := range patterns {
		t.Run(name, func(t *testing.T) { runDifferential(t, ops) })
	}
}
