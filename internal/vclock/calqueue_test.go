package vclock

import "testing"

// TestCalQueuePopRun: a same-instant run drains in one call, in seq order,
// and stops before the next instant.
func TestCalQueuePopRun(t *testing.T) {
	var q CalQueue[int]
	q.Push(Microsecond, 1)
	q.Push(Microsecond, 2)
	q.Push(2*Microsecond, 3)
	q.Push(Microsecond, 4)

	run := q.PopRun(nil)
	if len(run) != 3 {
		t.Fatalf("run of %d entries, want 3", len(run))
	}
	for i, e := range run {
		if e.At != Microsecond {
			t.Fatalf("run[%d].At = %v, want 1µs", i, e.At)
		}
		if i > 0 && e.Seq <= run[i-1].Seq {
			t.Fatalf("run not in seq order: %v", run)
		}
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d after run, want 1", q.Len())
	}
	run = q.PopRun(run[:0])
	if len(run) != 1 || run[0].Payload != 3 {
		t.Fatalf("second run = %+v, want the 2µs entry", run)
	}
	if out := q.PopRun(nil); out != nil {
		t.Fatalf("PopRun on empty queue returned %v", out)
	}
}

// TestCalQueueReset: a reset queue is empty, restarts its sequence numbers,
// and stays correct when reused — including after a large population forced
// the ring to grow (Reset drops rings the run never justified keeping).
func TestCalQueueReset(t *testing.T) {
	var q CalQueue[int]
	for i := 0; i < 500; i++ {
		q.Push(Time(i%13)*Microsecond, i)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("len = %d after reset", q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop succeeded on a reset queue")
	}
	if seq := q.Push(Microsecond, 42); seq != 1 {
		t.Fatalf("first seq after reset = %d, want 1", seq)
	}
	e, ok := q.Pop()
	if !ok || e.Payload != 42 {
		t.Fatalf("pop after reset = %+v, %v", e, ok)
	}
}
