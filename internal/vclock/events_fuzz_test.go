package vclock

import (
	"sort"
	"testing"
)

// fuzzTimes is the time alphabet of the fuzzer: a small set with repeats so
// equal-time ties (the FIFO-stability case) occur constantly.
var fuzzTimes = []Time{0, 0, Microsecond, Microsecond, 2 * Microsecond, Millisecond, Second, -Microsecond}

// refEntry mirrors one live queue entry in the oracle.
type refEntry struct {
	at  Time
	seq uint64
}

// FuzzEventQueue drives the queue with an op stream decoded from the fuzz
// input and checks it against a naive oracle: every Pop must return the
// entry with the smallest (At, Seq) — earliest virtual time, FIFO among
// equal times — and Peek/Len must agree with the model at every step.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 0xF0, 0xF1, 4, 5, 0xFF})
	f.Add([]byte{0, 0, 0, 0xF0, 0xF0, 0xF0, 0xF0})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1, 0, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8, 0xF8})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q EventQueue
		var live []refEntry
		var nextSeq uint64
		for _, op := range ops {
			if op >= 0xF0 {
				// Pop, checked against the oracle's minimum.
				e, ok := q.Pop()
				if !ok {
					if len(live) != 0 {
						t.Fatalf("Pop empty with %d live entries", len(live))
					}
					continue
				}
				if len(live) == 0 {
					t.Fatalf("Pop returned %+v from an empty model", e)
				}
				min := 0
				for i, r := range live {
					if r.at < live[min].at || (r.at == live[min].at && r.seq < live[min].seq) {
						min = i
					}
				}
				want := live[min]
				if e.At != want.at || e.Seq != want.seq {
					t.Fatalf("Pop = (%v, seq %d), oracle wants (%v, seq %d)", e.At, e.Seq, want.at, want.seq)
				}
				if e.Payload.(uint64) != want.seq {
					t.Fatalf("payload %v does not travel with its event (seq %d)", e.Payload, want.seq)
				}
				live = append(live[:min], live[min+1:]...)
				continue
			}
			// Push with a time drawn from the tie-heavy alphabet; the payload
			// carries the expected sequence number so Pop can verify the
			// payload travels with its event.
			at := fuzzTimes[int(op)%len(fuzzTimes)]
			nextSeq++
			seq := q.Push(at, nextSeq)
			if seq != nextSeq {
				t.Fatalf("Push assigned seq %d, want the %d-th schedule number", seq, nextSeq)
			}
			live = append(live, refEntry{at: at, seq: seq})
		}
		if q.Len() != len(live) {
			t.Fatalf("Len %d, model %d", q.Len(), len(live))
		}
		// Drain: the remainder must come out fully sorted by (At, Seq).
		var drained []refEntry
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			drained = append(drained, refEntry{at: e.At, seq: e.Seq})
		}
		if len(drained) != len(live) {
			t.Fatalf("drained %d, model %d", len(drained), len(live))
		}
		if !sort.SliceIsSorted(drained, func(i, j int) bool {
			if drained[i].at != drained[j].at {
				return drained[i].at < drained[j].at
			}
			return drained[i].seq < drained[j].seq
		}) {
			t.Fatalf("drain not sorted by (At, Seq): %+v", drained)
		}
		if q.Len() != 0 {
			t.Fatalf("Len %d after drain", q.Len())
		}
		if _, ok := q.Peek(); ok {
			t.Fatal("Peek succeeded on a drained queue")
		}
	})
}

// FuzzEventQueuePeek checks Peek is always exactly the next Pop.
func FuzzEventQueuePeek(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0xF0, 4, 0xF0, 0xF0, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q EventQueue
		for _, op := range ops {
			if op >= 0xF0 {
				peeked, pok := q.Peek()
				popped, ok := q.Pop()
				if pok != ok {
					t.Fatalf("Peek ok=%v, Pop ok=%v", pok, ok)
				}
				if ok && (peeked.At != popped.At || peeked.Seq != popped.Seq) {
					t.Fatalf("Peek %+v != Pop %+v", peeked, popped)
				}
				continue
			}
			q.Push(fuzzTimes[int(op)%len(fuzzTimes)], nil)
		}
	})
}
