package vclock

// CalQueue is a calendar queue (R. Brown, CACM 1988): a priority queue of
// timestamped entries with amortized O(1) push and pop, replacing the binary
// heap that backed the event queue through PR 3. Entries are hashed into a
// ring of time buckets of equal width; each bucket is kept sorted by
// (At, Seq), so the stable schedule-order FIFO tiebreak of the heap is
// preserved exactly — see DESIGN.md ("Calendar-queue determinism") for the
// ordering argument. The queue resizes its bucket ring as the population
// grows and shrinks, re-estimating the bucket width from the live entries.
//
// Three properties matter beyond the classic design:
//
//   - Stability. Every entry carries a queue-assigned sequence number and
//     buckets order by (At, Seq), so equal-time entries pop in schedule
//     order. The discrete-event kernel's determinism rests on this.
//
//   - Integer year arithmetic. Membership of an entry in the pop scan's
//     current window is decided by the same floor(at/width) computation that
//     assigned its bucket, never by comparing against an accumulated
//     floating-point bound — the rounding mismatch between the two is the
//     classic way float-timed calendar queues mis-order entries.
//
//   - A one-slot front register. An entry pushed into an otherwise empty
//     queue is held out of the bucket ring, as is any later push that is
//     strictly earlier than it. The dominant kernel pattern — wake one task,
//     then park so it runs — drains the queue to empty and refills it one
//     event at a time, so in that regime push and pop never touch a bucket.
//     This is the queue half of the engine's direct-handoff fast path.
//
// CalQueue is generic over the payload so the engine can store its tagged
// event record inline (task pointer / callback index) with no interface
// boxing and no per-event allocation: pushing into a warm queue reuses
// bucket capacity, so steady-state event traffic allocates nothing.
//
// The zero value is ready to use. Not safe for concurrent use.
type CalQueue[P any] struct {
	n   int    // live entries, front register included
	seq uint64 // last assigned sequence number

	front    Entry[P] // earliest entry, held out of the ring
	hasFront bool

	buckets [][]Entry[P] // ring of per-width buckets, each sorted by (At, Seq)
	heads   []int        // per-bucket index of the first live entry
	mask    int          // len(buckets)-1; bucket count is a power of two
	width   Time         // virtual-time width of one bucket

	year    int64 // absolute bucket index floor(at/width) the pop scan stands on
	maxLive int   // high-water ring population since the last Reset
}

// Entry is one queued occurrence: a payload due at a virtual time, with the
// queue-assigned schedule order Seq as the stable tiebreak.
type Entry[P any] struct {
	At      Time
	Seq     uint64
	Payload P
}

// before orders entries by (At, Seq).
func (e Entry[P]) before(o Entry[P]) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	return e.Seq < o.Seq
}

// minBuckets is the smallest ring; rings grow and shrink by doubling.
const minBuckets = 4

// Len returns the number of pending entries.
func (q *CalQueue[P]) Len() int { return q.n }

// Push schedules payload at time at and returns the entry's sequence number.
func (q *CalQueue[P]) Push(at Time, payload P) uint64 {
	q.seq++
	e := Entry[P]{At: at, Seq: q.seq, Payload: payload}
	q.n++
	switch {
	case q.n == 1:
		// Empty queue: the entry is the minimum by definition.
		q.front, q.hasFront = e, true
	case q.hasFront && at < q.front.At:
		// Strictly earlier than the register: the register entry goes back
		// to the ring and the newcomer takes its place. (Equal times keep
		// the register — its Seq is smaller, so it still pops first.)
		old := q.front
		q.front = e
		q.insert(old)
	default:
		q.insert(e)
	}
	return q.seq
}

// insert places an entry into its ring bucket, keeping the bucket sorted by
// (At, Seq), and repositions the pop scan if the entry landed before it.
func (q *CalQueue[P]) insert(e Entry[P]) {
	if q.buckets == nil {
		q.resize(minBuckets, e.At)
	} else if live := q.ringLive(); live > 2*len(q.buckets) && len(q.buckets) < 1<<20 {
		q.resize(len(q.buckets)*2, e.At)
	}
	if live := q.ringLive(); live > q.maxLive {
		q.maxLive = live
	}
	y := q.yearOf(e.At)
	b := int(y) & q.mask
	s := q.buckets[b]
	h := q.heads[b]

	// Find the insertion point from the back: most pushes are the latest
	// entry of their bucket, and FIFO ties always append, so this is O(1)
	// in steady state.
	i := len(s)
	for i > h && e.before(s[i-1]) {
		i--
	}
	switch {
	case i == h && h > 0:
		// Earlier than every live entry: reuse the dead slot before the head.
		q.heads[b] = h - 1
		s[h-1] = e
	case i == len(s):
		q.buckets[b] = append(s, e)
	default:
		s = append(s, Entry[P]{})
		copy(s[i+1:], s[i:])
		s[i] = e
		q.buckets[b] = s
	}

	// An entry due before the pop scan's current year restarts the scan at
	// its own year, or the scan would walk past it.
	if y < q.year {
		q.year = y
	}
}

// ringLive returns the number of live entries in the bucket ring (the
// population the ring is sized against; the front register lives outside).
func (q *CalQueue[P]) ringLive() int {
	if q.hasFront {
		return q.n - 1
	}
	return q.n
}

// yearOf maps a time to its absolute bucket index floor(at/width). The
// result is saturated to a safe int64 range; with the clamped minimum bucket
// width this only triggers beyond ~10^6 virtual seconds, far past any
// simulated makespan.
func yearOf(at, width Time) int64 {
	d := float64(at) / float64(width)
	switch {
	case d >= maxYear:
		return int64(maxYear)
	case d <= -maxYear:
		return -int64(maxYear)
	}
	f := int64(d)
	if float64(f) > d {
		f--
	}
	return f
}

const maxYear = 1 << 62

func (q *CalQueue[P]) yearOf(at Time) int64 { return yearOf(at, q.width) }

// Pop removes and returns the earliest entry (by time, then schedule order).
// ok is false on an empty queue.
func (q *CalQueue[P]) Pop() (e Entry[P], ok bool) {
	if q.n == 0 {
		return Entry[P]{}, false
	}
	q.n--
	if q.hasFront {
		e = q.front
		q.front = Entry[P]{} // release payload reference
		q.hasFront = false
		return e, true
	}
	b := q.scan()
	s, h := q.buckets[b], q.heads[b]
	e = s[h]
	s[h] = Entry[P]{} // release payload reference
	if h+1 == len(s) {
		q.buckets[b] = s[:0]
		q.heads[b] = 0
	} else {
		q.heads[b] = h + 1
	}
	return e, true
}

// PopRun removes the earliest entry plus every further entry due at exactly
// the same virtual time, appending them to buf in (At, Seq) order, and
// returns the extended buffer. This is the wakeup-batching primitive: a
// collective fan-out that woke a whole tree level at one instant drains in
// one call, and the kernel hands the baton down the batch without touching
// the queue again. An empty queue returns buf unchanged.
func (q *CalQueue[P]) PopRun(buf []Entry[P]) []Entry[P] {
	first, ok := q.Pop()
	if !ok {
		return buf
	}
	buf = append(buf, first)
	for {
		head, ok := q.Peek()
		if !ok || head.At != first.At {
			return buf
		}
		e, _ := q.Pop()
		buf = append(buf, e)
	}
}

// Reset empties the queue, releasing every payload reference but keeping the
// bucket ring and its capacity (and the calibrated width) for reuse — a
// recycled kernel's queue starts warm. The ring never shrinks mid-run (a
// population that oscillates around a resize threshold would thrash
// reallocation); instead Reset drops a ring the run's own high-water mark
// never justified, so a pooled queue recalibrates to its next job's scale.
// The sequence counter restarts.
func (q *CalQueue[P]) Reset() {
	q.front = Entry[P]{}
	q.hasFront = false
	if len(q.buckets) > 4*max(minBuckets, 2*q.maxLive) {
		q.buckets = nil
		q.heads = nil
		q.mask = 0
		q.width = 0
	}
	for b, s := range q.buckets {
		live := s[q.heads[b]:]
		for i := range live {
			live[i] = Entry[P]{}
		}
		q.buckets[b] = s[:0]
		q.heads[b] = 0
	}
	q.n = 0
	q.seq = 0
	q.year = 0
	q.maxLive = 0
}

// Peek returns the earliest entry without removing it.
func (q *CalQueue[P]) Peek() (e Entry[P], ok bool) {
	if q.n == 0 {
		return Entry[P]{}, false
	}
	if q.hasFront {
		return q.front, true
	}
	b := q.scan()
	return q.buckets[b][q.heads[b]], true
}

// scan advances the calendar scan to the bucket holding the earliest entry
// and returns its ring index. The ring is non-empty (callers ensure it).
//
// The classic calendar walk: starting from the scan year, a bucket's head
// entry is the global minimum iff its own year equals the scan year. After a
// full fruitless cycle every live entry lies beyond the ring's horizon
// (sparse queue); the minimum is then found directly over the bucket heads —
// each head is its bucket's minimum, because buckets are sorted — and the
// scan jumps to its year.
func (q *CalQueue[P]) scan() int {
	for range q.buckets {
		b := int(q.year) & q.mask
		s, h := q.buckets[b], q.heads[b]
		if h < len(s) && q.yearOf(s[h].At) == q.year {
			return b
		}
		q.year++
	}
	best, found := 0, false
	var min Entry[P]
	for b, s := range q.buckets {
		h := q.heads[b]
		if h == len(s) {
			continue
		}
		if !found || s[h].before(min) {
			best, min, found = b, s[h], true
		}
	}
	if !found {
		panic("vclock: calendar queue scan on empty ring")
	}
	q.year = q.yearOf(min.At)
	return best
}

// resize rebuilds the ring with nb buckets and a width re-estimated from the
// live entries, rehashing everything and restarting the scan at the minimum.
// seed stands in for the minimum when the ring is empty.
func (q *CalQueue[P]) resize(nb int, seed Time) {
	old := q.buckets
	oldHeads := q.heads
	q.width = q.estimateWidth(old, oldHeads, seed)
	q.buckets = make([][]Entry[P], nb)
	q.heads = make([]int, nb)
	q.mask = nb - 1

	min, any := seed, false
	for b, s := range old {
		for _, e := range s[oldHeads[b]:] {
			if !any || e.At < min {
				min, any = e.At, true
			}
		}
	}
	q.year = q.yearOf(min)
	for b, s := range old {
		for _, e := range s[oldHeads[b]:] {
			q.rehash(e)
		}
	}
}

// rehash is insert without resize/scan maintenance, used while rebuilding.
func (q *CalQueue[P]) rehash(e Entry[P]) {
	b := int(q.yearOf(e.At)) & q.mask
	s := q.buckets[b]
	i := len(s)
	for i > 0 && e.before(s[i-1]) {
		i--
	}
	if i == len(s) {
		q.buckets[b] = append(s, e)
		return
	}
	s = append(s, Entry[P]{})
	copy(s[i+1:], s[i:])
	s[i] = e
	q.buckets[b] = s
}

// minWidth bounds the bucket width from below so year indices stay inside
// the saturation range for any realistic virtual time.
const minWidth = Time(1e-12)

// estimateWidth picks the bucket width: three times the mean spacing of a
// sample of live entries (Brown's rule of thumb), so a bucket holds a
// handful of entries on average. Degenerate spreads (all entries at one
// instant) keep the previous width — that instant's bucket then simply
// holds everything, which sorted insertion handles at O(1) per FIFO append.
func (q *CalQueue[P]) estimateWidth(old [][]Entry[P], oldHeads []int, seed Time) Time {
	const sampleCap = 64
	lo, hi := seed, seed
	count := 0
	note := func(at Time) {
		if count == 0 {
			lo, hi = at, at
		} else {
			if at < lo {
				lo = at
			}
			if at > hi {
				hi = at
			}
		}
		count++
	}
	if q.hasFront {
		note(q.front.At)
	}
sample:
	for b, s := range old {
		for _, e := range s[oldHeads[b]:] {
			note(e.At)
			if count >= sampleCap {
				break sample
			}
		}
	}
	if count >= 2 && hi > lo {
		if w := 3 * (hi - lo) / Time(count); w > minWidth {
			return w
		}
		return minWidth
	}
	if q.width > 0 {
		return q.width
	}
	return Microsecond
}
