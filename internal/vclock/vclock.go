// Package vclock provides the virtual-time base used by the whole
// Cluster-Booster simulation platform.
//
// Every simulated execution context (an MPI rank, a device, a file-system
// server) owns a Clock. Computation advances the clock locally; communication
// merges clocks so that causality is respected: a message received at virtual
// time t forces the receiver's clock to at least t. This is the standard
// conservative logical-process scheme — for deterministic message-passing
// programs it reproduces exactly the timing the modelled hardware would show,
// independent of host scheduling.
package vclock

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Common durations, expressed as Time deltas.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Never is a virtual time later than every event: the +Inf sentinel used
// where a bound must never bind (an unbounded safe window, a "no pending
// event" minimum). It compares correctly against any finite Time.
var Never = Time(math.Inf(1))

// Seconds returns t as a float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Micros returns t in microseconds.
func (t Time) Micros() float64 { return float64(t) * 1e6 }

// Millis returns t in milliseconds.
func (t Time) Millis() float64 { return float64(t) * 1e3 }

// String formats the time with an auto-selected unit, e.g. "1.80µs", "34.2s".
func (t Time) String() string {
	a := math.Abs(float64(t))
	switch {
	case a == 0:
		return "0s"
	case a < 1e-6:
		return fmt.Sprintf("%.1fns", float64(t)*1e9)
	case a < 1e-3:
		return fmt.Sprintf("%.2fµs", float64(t)*1e6)
	case a < 1:
		return fmt.Sprintf("%.2fms", float64(t)*1e3)
	default:
		return fmt.Sprintf("%.2fs", float64(t))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Clock is a monotonically non-decreasing virtual clock. The zero value is a
// clock at time 0, ready to use. Clock is not safe for concurrent use; each
// simulated execution context owns exactly one and only that context advances
// it. (Cross-context time transfer happens through message timestamps.)
type Clock struct {
	now Time
}

// NewClock returns a clock set to start.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative d is a programming error and
// panics: virtual time never runs backwards.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than now; earlier
// timestamps are ignored (they carry no new causal information).
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// SharedClock is an occupancy tracker for passive shared resources (links,
// devices, file-system servers) that serialise requests from many simulated
// contexts. It is an execution-kernel resource: the discrete-event kernel
// (internal/engine) runs exactly one task at a time, so reservations are
// already serialised and the tracker needs no locking of its own. (Code
// outside a kernel — result assembly, checkpoint costing after a run — is
// likewise single-goroutine per simulated system.)
//
// Reserve books the first window of the requested duration that starts no
// earlier than ready. Crucially, reservations are placed by *virtual* time,
// not by call order: requests reach the resource in task-schedule order, and
// a request with an early virtual ready time must be able to fill a gap
// before windows that were booked earlier but lie later in virtual time.
// The tracker therefore keeps the set of busy intervals (merged where
// adjacent) and first-fit allocates into the gaps.
type SharedClock struct {
	busy []interval // sorted by Start, pairwise disjoint, adjacent merged
}

type interval struct{ Start, End Time }

// NewSharedClock returns a shared resource clock that is fully free from
// start onwards (and, like an idle device, also before it).
func NewSharedClock(start Time) *SharedClock { return &SharedClock{} }

// Reserve books the resource for dur starting no earlier than ready, and
// returns the start and end of the granted window. dur must be >= 0.
func (s *SharedClock) Reserve(ready Time, dur Time) (start, end Time) {
	if dur < 0 {
		panic(fmt.Sprintf("vclock: negative reservation %v", dur))
	}
	start = ready
	// Common case: the request starts at or after every booked window, so it
	// appends (or extends the last window) without searching the history.
	if n := len(s.busy); n == 0 || s.busy[n-1].End <= start {
		end = start + dur
		s.insert(interval{start, end}, n)
		return start, end
	}
	// Find the first busy interval that could overlap [start, start+dur):
	// binary search for the first interval with End > start.
	lo, hi := 0, len(s.busy)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.busy[mid].End > start {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	for ; i < len(s.busy); i++ {
		if s.busy[i].Start >= start+dur {
			break // the gap before this interval fits the request
		}
		start = s.busy[i].End
	}
	end = start + dur
	s.insert(interval{start, end}, i)
	return start, end
}

// insert places iv at index i (its sorted position) and merges with adjacent
// intervals where they touch.
func (s *SharedClock) insert(iv interval, i int) {
	// Merge with the predecessor if it touches.
	if i > 0 && s.busy[i-1].End == iv.Start {
		s.busy[i-1].End = iv.End
		// Merge with the successor too if now touching.
		if i < len(s.busy) && s.busy[i].Start == s.busy[i-1].End {
			s.busy[i-1].End = s.busy[i].End
			s.busy = append(s.busy[:i], s.busy[i+1:]...)
		}
		return
	}
	// Merge with the successor if it touches.
	if i < len(s.busy) && s.busy[i].Start == iv.End {
		s.busy[i].Start = iv.Start
		return
	}
	s.busy = append(s.busy, interval{})
	copy(s.busy[i+1:], s.busy[i:])
	s.busy[i] = iv
}

// FreeAt reports the end of the last booked window (0 if none).
func (s *SharedClock) FreeAt() Time {
	if len(s.busy) == 0 {
		return 0
	}
	return s.busy[len(s.busy)-1].End
}
