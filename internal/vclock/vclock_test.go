package vclock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond.Seconds() != 1e-6 {
		t.Fatalf("Microsecond = %v s, want 1e-6", Microsecond.Seconds())
	}
	if got := (2 * Millisecond).Micros(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("2ms = %v µs, want 2000", got)
	}
	if got := (1500 * Microsecond).Millis(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("1500µs = %v ms, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{1.8 * Microsecond, "1.80µs"},
		{500 * Nanosecond, "500.0ns"},
		{2.5 * Millisecond, "2.50ms"},
		{34.2 * Second, "34.20s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%g) = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Fatal("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Min broken")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Advance(3 * Microsecond)
	c.Advance(2 * Microsecond)
	if got := c.Now().Micros(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("clock at %vµs, want 5", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(10)
	c.AdvanceTo(5) // earlier: ignored
	if c.Now() != 10 {
		t.Fatalf("AdvanceTo moved clock backwards to %v", c.Now())
	}
	c.AdvanceTo(15)
	if c.Now() != 15 {
		t.Fatalf("AdvanceTo(15) left clock at %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock(0).Advance(-1)
}

func TestSharedClockReserveSerialises(t *testing.T) {
	s := NewSharedClock(0)
	// First transfer: ready at 0, takes 10.
	st, en := s.Reserve(0, 10)
	if st != 0 || en != 10 {
		t.Fatalf("first reserve [%v,%v], want [0,10]", st, en)
	}
	// Second transfer ready at 3 must queue behind the first.
	st, en = s.Reserve(3, 5)
	if st != 10 || en != 15 {
		t.Fatalf("queued reserve [%v,%v], want [10,15]", st, en)
	}
	// A transfer ready after the link is free starts when ready.
	st, en = s.Reserve(100, 1)
	if st != 100 || en != 101 {
		t.Fatalf("idle reserve [%v,%v], want [100,101]", st, en)
	}
}

func TestSharedClockSerialisesEqualRequests(t *testing.T) {
	// SharedClock is an execution-kernel resource: requests arrive one at a
	// time (task-schedule order). Equal ready times must serialise into
	// adjacent, non-overlapping windows covering the total duration.
	s := NewSharedClock(0)
	const n = 64
	seen := make(map[Time]bool)
	for i := 0; i < n; i++ {
		st, en := s.Reserve(0, 1)
		if en-st != 1 {
			t.Fatalf("window [%v,%v] has wrong width", st, en)
		}
		if seen[st] {
			t.Fatalf("overlapping start %v", st)
		}
		seen[st] = true
	}
	if got := s.FreeAt(); got != n {
		t.Fatalf("free at %v, want %v", got, Time(n))
	}
}

func TestQuickClockMonotonic(t *testing.T) {
	// Property: any sequence of non-negative advances keeps the clock equal
	// to the running sum, and AdvanceTo never decreases it.
	f := func(steps []uint16) bool {
		c := NewClock(0)
		var sum Time
		for _, s := range steps {
			d := Time(s) * Nanosecond
			sum += d
			if c.Advance(d) != sum {
				return false
			}
		}
		before := c.Now()
		c.AdvanceTo(before / 2)
		return c.Now() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSharedClockNonOverlap(t *testing.T) {
	// Property: reservations with arbitrary ready times and durations always
	// produce pairwise-disjoint windows starting no earlier than ready.
	f := func(readies []uint16, durs []uint8) bool {
		s := NewSharedClock(0)
		type win struct{ st, en Time }
		var wins []win
		n := len(readies)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			st, en := s.Reserve(Time(readies[i]), Time(durs[i]))
			if st < Time(readies[i]) || en-st != Time(durs[i]) {
				return false
			}
			for _, w := range wins {
				if st < w.en && w.st < en && en > st && w.en > w.st {
					return false // overlap of non-empty windows
				}
			}
			wins = append(wins, win{st, en})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedClockGapFilling(t *testing.T) {
	// A request that is ready early must be able to fill a gap before a
	// window that was booked earlier in real time but later in virtual time
	// — goroutines reach shared resources in arbitrary real-time order.
	s := NewSharedClock(0)
	st, en := s.Reserve(100, 10) // late-virtual window booked first
	if st != 100 || en != 110 {
		t.Fatalf("first window [%v,%v]", st, en)
	}
	st, en = s.Reserve(0, 5) // early request arrives later: fills the gap
	if st != 0 || en != 5 {
		t.Fatalf("gap not filled: [%v,%v], want [0,5]", st, en)
	}
	// A request that does not fit a gap queues behind the blocking window.
	st, en = s.Reserve(95, 20)
	if st != 110 {
		t.Fatalf("oversized request got [%v,%v], want start 110", st, en)
	}
	// Exact fit into the remaining gap [5,95): ready 5, dur 90.
	st, en = s.Reserve(5, 90)
	if st != 5 || en != 95 {
		t.Fatalf("exact fit failed: [%v,%v]", st, en)
	}
}
