package vclock

import (
	"math/rand"
	"testing"
)

func TestEventQueueOrdersByTime(t *testing.T) {
	var q EventQueue
	q.Push(3*Second, "c")
	q.Push(1*Second, "a")
	q.Push(2*Second, "b")
	want := []string{"a", "b", "c"}
	for _, w := range want {
		e, ok := q.Pop()
		if !ok || e.Payload.(string) != w {
			t.Fatalf("pop = %v/%v, want %q", e.Payload, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
}

// TestEventQueueFIFOAmongEqualTimes is the stability contract: events
// scheduled for the same virtual instant fire in schedule order, which is
// what makes the kernel's tiebreak — and the whole simulation —
// deterministic.
func TestEventQueueFIFOAmongEqualTimes(t *testing.T) {
	var q EventQueue
	const n = 100
	for i := 0; i < n; i++ {
		q.Push(5*Microsecond, i)
	}
	for i := 0; i < n; i++ {
		e, ok := q.Pop()
		if !ok || e.Payload.(int) != i {
			t.Fatalf("equal-time pop %d = %v, want %d (FIFO violated)", i, e.Payload, i)
		}
	}
}

// TestEventQueueInterleavedFIFO mixes distinct and equal times under random
// interleaving of pushes and pops and checks the (time, schedule-order)
// invariant against a reference sort.
func TestEventQueueInterleavedFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q EventQueue
	type ref struct {
		at  Time
		seq int
	}
	var live []ref
	seq := 0
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			at := Time(rng.Intn(8)) * Microsecond
			q.Push(at, seq)
			live = append(live, ref{at, seq})
			seq++
			continue
		}
		// Reference: earliest time, then earliest insertion.
		best := 0
		for i, r := range live {
			if r.at < live[best].at || (r.at == live[best].at && r.seq < live[best].seq) {
				best = i
			}
		}
		e, ok := q.Pop()
		if !ok {
			t.Fatal("pop failed with live events")
		}
		if e.Payload.(int) != live[best].seq {
			t.Fatalf("step %d: pop = %d, want %d", step, e.Payload, live[best].seq)
		}
		live = append(live[:best], live[best+1:]...)
	}
	if q.Len() != len(live) {
		t.Fatalf("queue length %d, reference %d", q.Len(), len(live))
	}
}

func TestEventQueuePeek(t *testing.T) {
	var q EventQueue
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
	q.Push(2*Second, "b")
	q.Push(1*Second, "a")
	e, ok := q.Peek()
	if !ok || e.Payload.(string) != "a" || q.Len() != 2 {
		t.Fatalf("peek = %v/%v len %d", e.Payload, ok, q.Len())
	}
}
