package vclock

// Event and wakeup primitives for discrete-event execution. The simulation
// kernel (internal/engine) needs exactly one ordered structure: a priority
// queue of future events keyed by virtual time, with a *stable* tiebreak so
// that two events scheduled for the same instant fire in schedule order.
// That stability is what makes event ordering — and therefore the whole
// simulation — deterministic by construction: no host-scheduling decision
// ever influences which event pops first.
//
// The queue is a calendar queue (see CalQueue) with amortized O(1) push and
// pop; through PR 3 it was a binary heap, whose O(log n) sift dominated the
// kernel hot path at fig8-scale event counts. The heap survives in
// events_oracle_test.go as the differential oracle proving the replacement
// pops the exact same order.

// Event is one scheduled occurrence: a payload due at a virtual time. Seq is
// the queue-assigned schedule order, unique per queue.
type Event struct {
	At      Time
	Seq     uint64
	Payload any
}

// EventQueue is a priority queue of Events ordered by (At, Seq): earliest
// virtual time first, earlier schedule order among equal times. The zero
// value is an empty queue ready to use. It is not safe for concurrent use;
// the execution kernel serialises access by construction.
//
// The engine itself runs on CalQueue directly with its tagged event record;
// EventQueue is the boxed-payload form for tooling and tests.
type EventQueue struct {
	q CalQueue[any]
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.q.Len() }

// Push schedules payload at time at and returns the event's sequence number.
func (q *EventQueue) Push(at Time, payload any) uint64 {
	return q.q.Push(at, payload)
}

// Pop removes and returns the earliest event (by time, then schedule order).
// ok is false on an empty queue.
func (q *EventQueue) Pop() (e Event, ok bool) {
	entry, ok := q.q.Pop()
	if !ok {
		return Event{}, false
	}
	return Event{At: entry.At, Seq: entry.Seq, Payload: entry.Payload}, true
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (e Event, ok bool) {
	entry, ok := q.q.Peek()
	if !ok {
		return Event{}, false
	}
	return Event{At: entry.At, Seq: entry.Seq, Payload: entry.Payload}, true
}
