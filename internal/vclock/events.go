package vclock

// Event and wakeup primitives for discrete-event execution. The simulation
// kernel (internal/engine) needs exactly one ordered structure: a priority
// queue of future events keyed by virtual time, with a *stable* tiebreak so
// that two events scheduled for the same instant fire in schedule order.
// That stability is what makes event ordering — and therefore the whole
// simulation — deterministic by construction: no host-scheduling decision
// ever influences which event pops first.

// Event is one scheduled occurrence: a payload due at a virtual time. Seq is
// the queue-assigned schedule order, unique per queue.
type Event struct {
	At      Time
	Seq     uint64
	Payload any
}

// before orders events by (At, Seq): earlier virtual time first, earlier
// schedule order among equal times.
func (e Event) before(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	return e.Seq < o.Seq
}

// EventQueue is a min-heap of Events ordered by (At, Seq). The zero value is
// an empty queue ready to use. It is not safe for concurrent use; the
// execution kernel serialises access by construction.
type EventQueue struct {
	h   []Event
	seq uint64
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push schedules payload at time at and returns the event's sequence number.
func (q *EventQueue) Push(at Time, payload any) uint64 {
	q.seq++
	e := Event{At: at, Seq: q.seq, Payload: payload}
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
	return e.Seq
}

// Pop removes and returns the earliest event (by time, then schedule order).
// ok is false on an empty queue.
func (q *EventQueue) Pop() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	e = q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Event{} // release payload reference
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return e, true
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].before(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.h[l].before(q.h[min]) {
			min = l
		}
		if r < n && q.h[r].before(q.h[min]) {
			min = r
		}
		if min == i {
			return
		}
		q.h[i], q.h[min] = q.h[min], q.h[i]
		i = min
	}
}
