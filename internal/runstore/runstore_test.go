package runstore

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(b byte) [sha256.Size]byte {
	var k [sha256.Size]byte
	k[0] = b
	return k
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", "e"); err == nil {
		t.Fatal("Open with empty dir must fail")
	}
	if _, err := Open(t.TempDir(), ""); err == nil {
		t.Fatal("Open with empty epoch must fail")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), "e1")
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(7)
	payload := []byte(`{"makespan_s":1.25}`)

	if _, ok := st.Get(key); ok {
		t.Fatal("Get on empty store must miss")
	}
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(key)
	if !ok {
		t.Fatal("Get after Put must hit")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip: got %q want %q", got, payload)
	}
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Puts != 1 || s.Corrupt != 0 || s.PutErrs != 0 {
		t.Fatalf("stats %+v: want hits=1 misses=1 puts=1", s)
	}
	if !strings.Contains(s.String(), "hits=1 misses=1 corrupt=0 puts=1") {
		t.Fatalf("stats string %q", s.String())
	}
}

// entryFile locates the single entry file the store wrote.
func entryFile(t *testing.T, st *Store) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(st.Dir(), func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".json") {
			found = p
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err %v)", st.Dir(), err)
	}
	return found
}

// TestCorruptionTolerance: a truncated or garbage entry is a miss (never an
// error), counted as corrupt, and a later Put heals it.
func TestCorruptionTolerance(t *testing.T) {
	st, err := Open(t.TempDir(), "e1")
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	payload := []byte(`{"v":42}`)
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	p := entryFile(t, st)

	// Truncate mid-file: the envelope no longer decodes.
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("truncated entry must read as a miss")
	}
	if s := st.Stats(); s.Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", s.Corrupt)
	}

	// A well-formed envelope whose payload bytes were tampered with fails
	// the checksum.
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `{"v":42}`, `{"v":43}`, 1)
	if tampered == string(b) {
		t.Fatal("tamper target not found in entry file")
	}
	if err := os.WriteFile(p, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("checksum-failing entry must read as a miss")
	}

	// An entry copied under the wrong key fails the key echo.
	other := testKey(2)
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	wrong := st.path(other)
	if err := os.MkdirAll(filepath.Dir(wrong), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wrong, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(other); ok {
		t.Fatal("mis-keyed entry must read as a miss")
	}

	// Heal: recompute-then-Put overwrites the bad entry and Get hits again.
	if err := st.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(key); !ok || string(got) != string(payload) {
		t.Fatalf("healed entry: ok=%v got %q", ok, got)
	}
}

// TestEpochInvalidation: an entry written under one epoch can never satisfy
// a store opened under another — the post-refactor staleness guard.
func TestEpochInvalidation(t *testing.T) {
	dir := t.TempDir()
	key := testKey(3)
	a, err := Open(dir, "epoch-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(key, []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get(key); !ok {
		t.Fatal("same-epoch Get must hit")
	}
	b, err := Open(dir, "epoch-b")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(key); ok {
		t.Fatal("epoch bump must invalidate: Get under a new epoch hit a stale entry")
	}
	// The old epoch's entries are untouched — sharing one dir is safe.
	if _, ok := a.Get(key); !ok {
		t.Fatal("old epoch's entry must survive a new epoch being opened")
	}
}

// TestSharedDirTwoHandles models two sequential processes over one store
// directory: what the first publishes, the second reads.
func TestSharedDirTwoHandles(t *testing.T) {
	dir := t.TempDir()
	key := testKey(4)
	p1, err := Open(dir, "e")
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Put(key, []byte(`"r"`)); err != nil {
		t.Fatal(err)
	}
	p2, err := Open(dir, "e")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := p2.Get(key)
	if !ok || string(got) != `"r"` {
		t.Fatalf("second process: ok=%v got %q", ok, got)
	}
	if s := p2.Stats(); s.Hits != 1 || s.Puts != 0 {
		t.Fatalf("second-process stats %+v: want hits=1 puts=0", s)
	}
}

func TestMarkCorrupt(t *testing.T) {
	st, err := Open(t.TempDir(), "e")
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(5)
	if err := st.Put(key, []byte(`["not a report"]`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); !ok {
		t.Fatal("envelope-valid entry must hit")
	}
	st.MarkCorrupt()
	s := st.Stats()
	if s.Hits != 0 || s.Misses != 1 || s.Corrupt != 1 {
		t.Fatalf("after MarkCorrupt: %+v, want hits=0 misses=1 corrupt=1", s)
	}
}

func TestEpochFunction(t *testing.T) {
	a := Epoch("model=1", "fig7@2")
	if len(a) != 16 {
		t.Fatalf("epoch length %d, want 16", len(a))
	}
	if a != Epoch("model=1", "fig7@2") {
		t.Fatal("Epoch must be deterministic")
	}
	if a == Epoch("model=2", "fig7@2") || a == Epoch("model=1", "fig7@3") {
		t.Fatal("every part must influence the epoch")
	}
	// The separator must prevent boundary ambiguity.
	if Epoch("ab", "c") == Epoch("a", "bc") {
		t.Fatal("part boundaries must be unambiguous")
	}
}
