// Package runstore is the persistent, shared result store behind the
// scenario cache: a content-addressed on-disk map from canonical SHA-256
// compute keys to opaque result payloads, safe to share between concurrent
// processes. It is the disk layer under internal/sweep's in-process memo —
// repeated cbctl invocations, CI runs and a long-running `cbctl serve` all
// warm the same store, so re-running a sweep only pays for the points that
// never ran anywhere before.
//
// Three properties carry the design:
//
//   - Epoch scoping. Results are pure functions of their configuration only
//     for a fixed generation of the simulation code, so every store is opened
//     under an epoch string (derived by the caller from the experiment
//     registry's versions plus the kernel/model fingerprint — exp.CacheEpoch)
//     and entries live in an epoch-named subdirectory. A post-refactor run
//     opens a different epoch and can never be satisfied by stale bytes;
//     old epochs are inert files an operator can delete at will.
//
//   - Crash-safe writes. Put marshals a checksummed envelope into a temp file
//     in the store directory and renames it into place: readers see either
//     nothing or a complete entry, never a torn write, and two processes
//     racing to publish the same (deterministic) result both win.
//
//   - Corruption-tolerant reads. A truncated, undecodable, mis-keyed or
//     checksum-failing entry is a miss, never an error: the caller recomputes
//     and the next Put heals the entry. The store must never be able to turn
//     a cache into a liability.
//
// The store never persists failed computations — that policy lives in the
// caller (internal/sweep), which only Puts successful reports.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// entrySchema versions the on-disk envelope; a bump orphans old entries
// (they read as corrupt misses) without any migration machinery.
const entrySchema = 1

// entry is the on-disk envelope around one payload. The key echo and the
// payload checksum make every failure mode a detectable miss: a file renamed
// or copied under the wrong name fails the key check, bit rot or a torn
// write fails the sum or the JSON decode.
type entry struct {
	Schema  int             `json:"schema"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// Store is one epoch's view of an on-disk result store. All methods are safe
// for concurrent use by any number of goroutines and processes.
type Store struct {
	dir   string // epoch-scoped directory the entries live in
	epoch string

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
	puts    atomic.Uint64
	putErrs atomic.Uint64
	getNs   atomic.Int64
	putNs   atomic.Int64
}

// Epoch canonically hashes the parts that define a code/profile generation
// into a short epoch string. Callers list everything whose change must
// invalidate stored results (registry versions, the model fingerprint).
func Epoch(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Open roots a store at dir under the given epoch, creating the directories
// as needed. The same dir can hold any number of epochs side by side.
func Open(dir, epoch string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty store directory")
	}
	if epoch == "" {
		return nil, fmt.Errorf("runstore: empty epoch")
	}
	d := filepath.Join(dir, epoch)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: open: %w", err)
	}
	return &Store{dir: d, epoch: epoch}, nil
}

// Epoch returns the epoch the store was opened under.
func (s *Store) Epoch() string { return s.epoch }

// Dir returns the epoch-scoped directory the entries live in.
func (s *Store) Dir() string { return s.dir }

// path fans entries out over 256 subdirectories by key prefix, so
// million-scenario grids do not pile every file into one directory.
func (s *Store) path(key [sha256.Size]byte) string {
	k := hex.EncodeToString(key[:])
	return filepath.Join(s.dir, k[:2], k+".json")
}

// Get returns the payload stored under key. Every failure — missing file,
// truncated or undecodable envelope, key echo mismatch, checksum mismatch —
// is reported as a plain miss (ok=false); corrupt entries additionally bump
// the corrupt counter. Get never returns an error: the caller's recompute
// path is the recovery path.
func (s *Store) Get(key [sha256.Size]byte) (payload []byte, ok bool) {
	start := time.Now()
	defer func() { s.getNs.Add(time.Since(start).Nanoseconds()) }()
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Schema != entrySchema || e.Key != hex.EncodeToString(key[:]) {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	sum := sha256.Sum256(e.Payload)
	if e.Sum != hex.EncodeToString(sum[:]) {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e.Payload, true
}

// Put publishes payload — which must be valid JSON, it is embedded raw in
// the envelope — under key with write-then-rename atomicity: readers in this
// or any other process see the old entry (or none) until the rename, then
// the complete new one. Put errors are counted and returned, but the caller
// treats them as non-fatal — a store that cannot be written degrades to the
// in-process cache, it does not fail runs.
func (s *Store) Put(key [sha256.Size]byte, payload []byte) error {
	start := time.Now()
	defer func() { s.putNs.Add(time.Since(start).Nanoseconds()) }()
	err := s.put(key, payload)
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("runstore: put: %w", err)
	}
	s.puts.Add(1)
	return nil
}

func (s *Store) put(key [sha256.Size]byte, payload []byte) error {
	sum := sha256.Sum256(payload)
	b, err := json.Marshal(entry{
		Schema:  entrySchema,
		Key:     hex.EncodeToString(key[:]),
		Sum:     hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		return err
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	// The temp file lives next to the destination so the rename stays within
	// one filesystem (and therefore atomic).
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// MarkCorrupt reclassifies the most recent hit as a corrupt miss. The caller
// decodes payloads it got from Get; when that decode fails (an entry written
// by incompatible code that slipped inside one epoch), it reports the entry
// here so the counters match what actually happened: a recompute.
func (s *Store) MarkCorrupt() {
	s.hits.Add(^uint64(0))
	s.misses.Add(1)
	s.corrupt.Add(1)
}

// Stats is a point-in-time snapshot of the store's counters, surfaced
// through the -stats flags and the serve /statsz endpoint.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Corrupt uint64
	Puts    uint64
	PutErrs uint64
	GetNs   int64
	PutNs   int64
	Epoch   string
}

// String renders the counters in the -stats line format.
func (st Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d corrupt=%d puts=%d put_errs=%d get_ms=%.1f put_ms=%.1f epoch=%s",
		st.Hits, st.Misses, st.Corrupt, st.Puts, st.PutErrs,
		float64(st.GetNs)/1e6, float64(st.PutNs)/1e6, st.Epoch)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
		PutErrs: s.putErrs.Load(),
		GetNs:   s.getNs.Load(),
		PutNs:   s.putNs.Load(),
		Epoch:   s.epoch,
	}
}
