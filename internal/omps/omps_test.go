package omps

import (
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/vclock"
)

// withProc runs body on a single cluster rank (or booster if onBooster).
func withProc(t *testing.T, onBooster bool, body func(p *psmpi.Proc) error) {
	t.Helper()
	sys := machine.New(2, 2)
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	mod := machine.Cluster
	if onBooster {
		mod = machine.Booster
	}
	_, err := rt.Launch(psmpi.LaunchSpec{Nodes: sys.Module(mod)[:1], Main: body})
	if err != nil {
		t.Fatal(err)
	}
}

func w(flops float64) machine.Work {
	return machine.Work{Class: machine.KernelParticle, Flops: flops}
}

func TestDependencyOrderRespected(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 4)
		var log []string
		g.Add("produce", []Dep{{"x", Out}}, w(1e6), func() { log = append(log, "produce") })
		g.Add("consume", []Dep{{"x", In}}, w(1e6), func() { log = append(log, "consume") })
		res, err := g.Run()
		if err != nil {
			return err
		}
		if len(log) != 2 || log[0] != "produce" || log[1] != "consume" {
			t.Errorf("execution order %v", log)
		}
		tasks := g.Tasks()
		if tasks[1].Start < tasks[0].End {
			t.Errorf("consumer started at %v before producer ended at %v", tasks[1].Start, tasks[0].End)
		}
		if res.Executed != 2 {
			t.Errorf("executed = %d", res.Executed)
		}
		return nil
	})
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 8)
		for i := 0; i < 8; i++ {
			g.Add("t", nil, w(3e7), nil)
		}
		res, err := g.Run()
		if err != nil {
			return err
		}
		one := p.Node().Spec.ComputeTime(w(3e7))
		// 8 independent tasks on 8 workers ≈ 1 task's duration.
		if res.Makespan > one*3/2 {
			t.Errorf("makespan %v for 8 parallel tasks, one task takes %v", res.Makespan, one)
		}
		return nil
	})
}

func TestWorkerLimitSerialises(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 1)
		for i := 0; i < 4; i++ {
			g.Add("t", nil, w(3e7), nil)
		}
		res, err := g.Run()
		if err != nil {
			return err
		}
		one := p.Node().Spec.ComputeTime(w(3e7))
		if res.Makespan < 4*one-vclock.Nanosecond {
			t.Errorf("1 worker finished 4 tasks in %v, want >= %v", res.Makespan, 4*one)
		}
		return nil
	})
}

func TestWARAndWAWEdges(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 8)
		var log []string
		g.Add("w1", []Dep{{"x", Out}}, w(1e6), func() { log = append(log, "w1") })
		g.Add("r1", []Dep{{"x", In}}, w(1e6), func() { log = append(log, "r1") })
		g.Add("w2", []Dep{{"x", Out}}, w(1e6), func() { log = append(log, "w2") }) // WAR vs r1, WAW vs w1
		if _, err := g.Run(); err != nil {
			return err
		}
		tasks := g.Tasks()
		if tasks[2].Start < tasks[1].End {
			t.Errorf("w2 (WAR) started %v before r1 ended %v", tasks[2].Start, tasks[1].End)
		}
		if log[2] != "w2" {
			t.Errorf("order %v", log)
		}
		return nil
	})
}

func TestCycleDetected(t *testing.T) {
	// A cycle cannot be built through the dep-derivation API (it's always a
	// DAG by construction); build one manually to exercise detection.
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 1)
		a := g.Add("a", nil, w(1), nil)
		b := g.Add("b", nil, w(1), nil)
		addEdge(a, b)
		addEdge(b, a)
		if _, err := g.Run(); err == nil {
			t.Error("cycle not detected")
		}
		return nil
	})
}

func TestClockAdvances(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 2)
		g.Add("t", nil, w(3e8), nil)
		before := p.Now()
		res, _ := g.Run()
		if p.Now()-before != res.Makespan {
			t.Errorf("clock advanced %v, makespan %v", p.Now()-before, res.Makespan)
		}
		return nil
	})
}

func TestOffloadAnalytic(t *testing.T) {
	// A heavy particle-class task offloaded from Cluster to Booster should
	// beat local execution (KNL is 1.35× faster on that class) once the
	// transfers are small.
	withProc(t, false, func(p *psmpi.Proc) error {
		heavy := w(3e10) // 1 s on Haswell, ~0.74 s on KNL
		gLocal := NewGraph(p, 1)
		gLocal.Add("pcl", nil, heavy, nil)
		rl, err := gLocal.Run()
		if err != nil {
			return err
		}
		gOff := NewGraph(p, 1)
		gOff.AddOffload("pcl", nil, heavy, 1<<20, 1<<20, nil)
		ro, err := gOff.Run()
		if err != nil {
			return err
		}
		if ro.Offloaded != 1 {
			t.Errorf("offloaded = %d", ro.Offloaded)
		}
		if ro.Makespan >= rl.Makespan {
			t.Errorf("offload (%v) not faster than local (%v)", ro.Makespan, rl.Makespan)
		}
		return nil
	})
}

func TestOffloadRealWorker(t *testing.T) {
	// Full path: spawn a worker on the Booster, offload through real
	// messages, stop the worker.
	sys := machine.New(2, 2)
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	rt.Register("omps_worker", WorkerMain)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: sys.Module(machine.Cluster)[:1],
		Main: func(p *psmpi.Proc) error {
			inter, err := p.Spawn(p.World(), psmpi.SpawnSpec{
				Binary: "omps_worker", Procs: 1, Module: machine.Booster,
			})
			if err != nil {
				return err
			}
			g := NewGraph(p, 2)
			ran := false
			g.Add("prep", []Dep{{"buf", Out}}, w(1e6), nil)
			g.AddOffload("kernel", []Dep{{"buf", InOut}}, w(3e9), 64<<10, 64<<10, func() { ran = true })
			g.Add("post", []Dep{{"buf", In}}, w(1e6), nil)
			res, err := g.RunWithOffload(inter, 0)
			if err != nil {
				return err
			}
			if !ran {
				t.Error("offloaded task effect did not run")
			}
			if res.Offloaded != 1 || res.Executed != 3 {
				t.Errorf("res = %+v", res)
			}
			// The offload must cost at least the remote compute time.
			remote := machine.BoosterNode().ComputeTime(w(3e9))
			if res.Makespan < remote {
				t.Errorf("makespan %v below remote compute %v", res.Makespan, remote)
			}
			StopWorker(p, inter, 0)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestart(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 1)
		tk := g.Add("fragile", nil, w(3e8), nil)
		tk.Snapshot = true
		tk.SnapshotBytes = 1 << 20
		g.InjectFailure("fragile")
		res, err := g.Run()
		if err != nil {
			return err
		}
		if res.Retried != 1 || tk.Retries != 1 {
			t.Errorf("retries: res=%d task=%d", res.Retried, tk.Retries)
		}
		// Retry costs a second execution.
		one := p.Node().Spec.ComputeTime(w(3e8))
		if res.Makespan < 2*one {
			t.Errorf("makespan %v < 2 executions %v", res.Makespan, 2*one)
		}
		return nil
	})
}

func TestFailureWithoutSnapshotFatal(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 1)
		g.Add("fragile", nil, w(1e6), nil)
		g.InjectFailure("fragile")
		if _, err := g.Run(); err == nil {
			t.Error("unprotected task failure did not abort the run")
		}
		return nil
	})
}

func TestFastForwardSkips(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 1)
		ran := map[string]bool{}
		g.Add("expensive", []Dep{{"x", Out}}, w(3e10), func() { ran["expensive"] = true })
		g.Add("cheap", []Dep{{"x", In}}, w(3e6), func() { ran["cheap"] = true })
		g.FastForward("expensive")
		res, err := g.Run()
		if err != nil {
			return err
		}
		if ran["expensive"] {
			t.Error("fast-forwarded task executed")
		}
		if !ran["cheap"] {
			t.Error("successor did not run")
		}
		if res.SkippedTasks != 1 {
			t.Errorf("skipped = %d", res.SkippedTasks)
		}
		// Makespan must be roughly the cheap task only.
		cheap := p.Node().Spec.ComputeTime(w(3e6))
		if res.Makespan > 2*cheap {
			t.Errorf("fast-forward did not save time: %v", res.Makespan)
		}
		return nil
	})
}

func TestCriticalPathLowerBound(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 2)
		g.Add("a", []Dep{{"x", Out}}, w(1e8), nil)
		g.Add("b", []Dep{{"x", InOut}}, w(1e8), nil)
		g.Add("c", []Dep{{"x", In}}, w(1e8), nil)
		g.Add("free", nil, w(1e8), nil)
		res, err := g.Run()
		if err != nil {
			return err
		}
		if res.Makespan < res.CriticalPath-vclock.Nanosecond {
			t.Errorf("makespan %v below critical path %v", res.Makespan, res.CriticalPath)
		}
		return nil
	})
}

func TestDefaultWorkersIsNodeCores(t *testing.T) {
	withProc(t, true, func(p *psmpi.Proc) error {
		g := NewGraph(p, 0)
		if g.workers != 64 {
			t.Errorf("KNL default workers = %d, want 64", g.workers)
		}
		return nil
	})
}

func TestRunWithOffloadNilInter(t *testing.T) {
	withProc(t, false, func(p *psmpi.Proc) error {
		g := NewGraph(p, 1)
		g.AddOffload("k", nil, w(1e6), 0, 0, nil)
		if _, err := g.RunWithOffload(nil, 0); err == nil {
			t.Error("nil inter-communicator not rejected")
		}
		return nil
	})
}

func TestOffloadRetryRealWorker(t *testing.T) {
	// A snapshot-protected offload task that fails once must re-ship through
	// the inter-communicator: two full request/compute/reply round trips on
	// the kernel, costing at least two remote executions.
	sys := machine.New(2, 2)
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	rt.Register("omps_worker", WorkerMain)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: sys.Module(machine.Cluster)[:1],
		Main: func(p *psmpi.Proc) error {
			inter, err := p.Spawn(p.World(), psmpi.SpawnSpec{
				Binary: "omps_worker", Procs: 1, Module: machine.Booster,
			})
			if err != nil {
				return err
			}
			g := NewGraph(p, 1)
			tk := g.AddOffload("kernel", nil, w(3e9), 64<<10, 64<<10, nil)
			tk.Snapshot = true
			tk.SnapshotBytes = 64 << 10
			g.InjectFailure("kernel")
			res, err := g.RunWithOffload(inter, 0)
			if err != nil {
				return err
			}
			if res.Retried != 1 || tk.Retries != 1 {
				t.Errorf("retries: res=%d task=%d", res.Retried, tk.Retries)
			}
			remote := machine.BoosterNode().ComputeTime(w(3e9))
			if res.Makespan < 2*remote {
				t.Errorf("retried offload makespan %v below 2 remote executions %v", res.Makespan, 2*remote)
			}
			StopWorker(p, inter, 0)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffloadAnalyticFromBooster(t *testing.T) {
	// The reverse direction: a Booster rank offloading toward the Cluster
	// prices its transfers against a Cluster node and computes at Haswell
	// speed.
	withProc(t, true, func(p *psmpi.Proc) error {
		g := NewGraph(p, 1)
		g.AddOffload("k", nil, w(3e9), 1<<20, 1<<20, nil)
		res, err := g.Run()
		if err != nil {
			return err
		}
		remote := machine.ClusterNode().ComputeTime(w(3e9))
		if res.Makespan < remote {
			t.Errorf("makespan %v below Cluster compute %v", res.Makespan, remote)
		}
		return nil
	})
}

func TestOffloadWithoutOtherModule(t *testing.T) {
	// On a Cluster-only system the offload transfers have nowhere to go and
	// cost nothing; only the (remote-priced) compute remains.
	sys := machine.New(1, 0)
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: sys.Module(machine.Cluster)[:1],
		Main: func(p *psmpi.Proc) error {
			g := NewGraph(p, 1)
			g.AddOffload("k", nil, w(3e9), 1<<20, 1<<20, nil)
			res, err := g.Run()
			if err != nil {
				return err
			}
			want := machine.BoosterNode().ComputeTime(w(3e9))
			if res.Makespan != want {
				t.Errorf("makespan %v, want bare remote compute %v", res.Makespan, want)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkerWithoutParent(t *testing.T) {
	// WorkerMain launched as a top-level job (no spawning parent) must fail
	// cleanly instead of blocking on a receive that can never match.
	sys := machine.New(1, 0)
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: sys.Module(machine.Cluster)[:1],
		Main:  WorkerMain,
	})
	if err == nil {
		t.Fatal("parentless worker did not fail")
	}
}

func TestGraphsOnManyRanks(t *testing.T) {
	// Four ranks each run their own task graph inside one kernel-scheduled
	// job, then exchange results: graph execution must compose with the
	// cooperative kernel (clock advances are per-rank, collectives still
	// line up afterwards).
	sys := machine.New(4, 0)
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	res, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: sys.Module(machine.Cluster)[:4],
		Main: func(p *psmpi.Proc) error {
			g := NewGraph(p, 2)
			// Rank r runs r+1 dependent tasks: unequal per-rank schedules.
			for i := 0; i <= p.Rank(); i++ {
				g.Add("step", []Dep{{"s", InOut}}, w(3e7), nil)
			}
			gr, err := g.Run()
			if err != nil {
				return err
			}
			one := p.Node().Spec.ComputeTime(w(3e7))
			if want := vclock.Time(p.Rank()+1) * one; gr.Makespan != want {
				t.Errorf("rank %d makespan %v, want %v", p.Rank(), gr.Makespan, want)
			}
			buf := []float64{float64(gr.Makespan)}
			p.AllreduceF64(p.World(), buf, psmpi.OpMax)
			// The slowest rank (3) ran 4 serialised tasks.
			if got := vclock.Time(buf[0]); got != 4*one {
				t.Errorf("max graph makespan %v, want %v", got, 4*one)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan == 0 {
		t.Error("job makespan did not advance")
	}
}
