// Package omps reproduces the OmpSs-based abstraction layer of the DEEP
// projects (§III-B of the paper): a task data-flow runtime where code parts
// are annotated with data dependencies, the runtime builds the task
// dependency graph, schedules tasks over the node's cores, and — the DEEP
// extension — offloads annotated tasks to the other module of the
// Cluster-Booster system, inserting the necessary MPI transfers.
//
// The DEEP-ER resiliency extensions (§III-D) are included: task inputs can be
// snapshotted to memory before launch so a failed task can be restarted, and
// a restarted run can fast-forward past tasks whose outputs a checkpoint
// already holds.
package omps

import (
	"fmt"
	"sort"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/vclock"
)

// Access is a dependency access mode, as in the OmpSs depend clauses.
type Access int

const (
	// In declares a read dependency.
	In Access = iota
	// Out declares a write dependency.
	Out
	// InOut declares a read-write dependency.
	InOut
)

// Dep names one data object a task touches and how.
type Dep struct {
	Name string
	Mode Access
}

// Reads reports whether the access reads the object.
func (d Dep) Reads() bool { return d.Mode == In || d.Mode == InOut }

// Writes reports whether the access writes the object.
func (d Dep) Writes() bool { return d.Mode == Out || d.Mode == InOut }

// Task is one node of the dependency graph.
type Task struct {
	ID   int
	Name string
	Deps []Dep
	// Work is the task's virtual compute cost on the node that runs it.
	Work machine.Work
	// Fn is the real effect of the task (may be nil for pure-cost tasks).
	Fn func()
	// Snapshot requests an input snapshot before launch (resiliency).
	Snapshot bool
	// SnapshotBytes is the snapshot size (memory copy cost).
	SnapshotBytes int

	// Offload marks the task for execution on the other module.
	Offload bool
	// InBytes/OutBytes size the offload transfers.
	InBytes, OutBytes int

	preds []*Task
	succs []*Task

	// Scheduling results, valid after Run.
	Start, End vclock.Time
	Retries    int
	Skipped    bool
}

// Graph is a per-rank task graph under construction.
type Graph struct {
	p       *psmpi.Proc
	workers int
	tasks   []*Task

	lastWriter map[string]*Task
	readers    map[string][]*Task

	failOnce map[string]bool // tasks made to fail once (injection)
	done     map[string]bool // outputs already restored (fast-forward)
}

// NewGraph builds a graph for tasks running on rank p, scheduled over the
// given number of worker threads (0 means all cores of p's node).
func NewGraph(p *psmpi.Proc, workers int) *Graph {
	if workers <= 0 {
		workers = p.Node().Spec.Cores
	}
	return &Graph{
		p:          p,
		workers:    workers,
		lastWriter: map[string]*Task{},
		readers:    map[string][]*Task{},
		failOnce:   map[string]bool{},
		done:       map[string]bool{},
	}
}

// Add appends a task with the given dependency annotations and returns it.
// Dependency edges are derived exactly as OmpSs does: read-after-write,
// write-after-read and write-after-write on the named objects.
func (g *Graph) Add(name string, deps []Dep, work machine.Work, fn func()) *Task {
	t := &Task{ID: len(g.tasks), Name: name, Deps: deps, Work: work, Fn: fn}
	for _, d := range deps {
		if d.Reads() {
			if w := g.lastWriter[d.Name]; w != nil {
				addEdge(w, t)
			}
		}
		if d.Writes() {
			if w := g.lastWriter[d.Name]; w != nil {
				addEdge(w, t) // WAW
			}
			for _, r := range g.readers[d.Name] {
				if r != t {
					addEdge(r, t) // WAR
				}
			}
		}
	}
	// Update object state after edge derivation.
	for _, d := range deps {
		if d.Writes() {
			g.lastWriter[d.Name] = t
			g.readers[d.Name] = nil
		}
		if d.Reads() {
			g.readers[d.Name] = append(g.readers[d.Name], t)
		}
	}
	g.tasks = append(g.tasks, t)
	return t
}

// AddOffload appends a task annotated for offload to the other module (the
// DEEP pragma), with explicit input/output transfer sizes.
func (g *Graph) AddOffload(name string, deps []Dep, work machine.Work, inBytes, outBytes int, fn func()) *Task {
	t := g.Add(name, deps, work, fn)
	t.Offload = true
	t.InBytes, t.OutBytes = inBytes, outBytes
	return t
}

func addEdge(from, to *Task) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// InjectFailure makes the named task fail on its first attempt; with a
// snapshot it restarts, otherwise Run returns an error.
func (g *Graph) InjectFailure(name string) { g.failOnce[name] = true }

// FastForward marks an object's producing task as already satisfied by a
// restored checkpoint: the task is skipped, its consumers run normally
// (the §III-D "fast-forward a re-started application" feature).
func (g *Graph) FastForward(taskNames ...string) {
	for _, n := range taskNames {
		g.done[n] = true
	}
}

// Tasks returns the graph's tasks in creation order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Result summarises a graph execution.
type Result struct {
	Makespan     vclock.Time // end of the last task relative to run start
	CriticalPath vclock.Time // lower bound: longest dependency chain
	Executed     int
	Offloaded    int
	SkippedTasks int
	Retried      int
}

// Run schedules the graph over the workers, executes task effects in a valid
// topological order and advances the rank's clock by the schedule makespan.
// Offload tasks are costed analytically against the target module (use
// RunWithOffload for real message traffic to a worker job).
func (g *Graph) Run() (Result, error) {
	return g.run(nil, 0)
}

// RunWithOffload is Run with offload tasks executed through real psmpi
// traffic on the given inter-communicator: inputs are sent to the offload
// worker (rank workerRank of the remote group, running WorkerMain), which
// computes at its node's speed and returns the outputs.
func (g *Graph) RunWithOffload(inter *psmpi.Comm, workerRank int) (Result, error) {
	if inter == nil {
		return Result{}, fmt.Errorf("omps: nil inter-communicator")
	}
	return g.run(inter, workerRank)
}

func (g *Graph) run(inter *psmpi.Comm, workerRank int) (Result, error) {
	order, err := g.topoOrder()
	if err != nil {
		return Result{}, err
	}
	base := g.p.Now()
	lanes := make([]vclock.Time, g.workers)
	spec := g.p.Node().Spec
	remoteSpec := machine.Spec(otherModule(g.p.Module()))

	var res Result
	for _, t := range order {
		ready := base
		for _, pr := range t.preds {
			ready = vclock.Max(ready, pr.End)
		}
		if g.done[t.Name] {
			t.Skipped = true
			t.Start, t.End = ready, ready
			res.SkippedTasks++
			continue
		}
		if t.Snapshot && t.SnapshotBytes > 0 {
			ready += spec.ComputeTime(machine.Work{Class: machine.KernelStream, Bytes: float64(t.SnapshotBytes)})
		}
		attempts := 1
		if g.failOnce[t.Name] {
			g.failOnce[t.Name] = false
			if !t.Snapshot {
				return res, fmt.Errorf("omps: task %q failed and has no input snapshot to restart from", t.Name)
			}
			attempts = 2
			t.Retries++
			res.Retried++
		}
		switch {
		case t.Offload && inter != nil:
			t.Start, t.End = g.offloadReal(t, inter, workerRank, ready, attempts)
			res.Offloaded++
		case t.Offload:
			dur := transferTime(g.p, t.InBytes) +
				vclock.Time(attempts)*remoteSpec.ComputeTime(t.Work) +
				transferTime(g.p, t.OutBytes)
			t.Start = ready
			t.End = ready + dur
			res.Offloaded++
		default:
			// Pick the earliest-free worker lane.
			li := 0
			for i := range lanes {
				if lanes[i] < lanes[li] {
					li = i
				}
			}
			t.Start = vclock.Max(ready, lanes[li])
			t.End = t.Start + vclock.Time(attempts)*spec.ComputeTime(t.Work)
			lanes[li] = t.End
		}
		if t.Fn != nil {
			t.Fn()
		}
		res.Executed++
	}
	var end vclock.Time = base
	for _, t := range g.tasks {
		end = vclock.Max(end, t.End)
	}
	res.Makespan = end - base
	res.CriticalPath = g.criticalPath(base)
	// The rank owns the whole schedule: advance its clock to the makespan.
	if end > g.p.Now() {
		g.p.Elapse(end - g.p.Now())
	}
	return res, nil
}

// offloadReal ships the task through the inter-communicator.
func (g *Graph) offloadReal(t *Task, inter *psmpi.Comm, workerRank int, ready vclock.Time, attempts int) (start, end vclock.Time) {
	if g.p.Now() < ready {
		g.p.Elapse(ready - g.p.Now())
	}
	start = g.p.Now()
	for a := 0; a < attempts; a++ {
		desc := []float64{float64(t.Work.Flops), float64(int(t.Work.Class)), float64(t.OutBytes)}
		g.p.SendF64(inter, workerRank, tagOffloadDesc, desc)
		g.p.Send(inter, workerRank, tagOffloadIn, nil, t.InBytes)
		g.p.Recv(inter, workerRank, tagOffloadOut)
	}
	return start, g.p.Now()
}

// Offload protocol tags on the parent↔worker inter-communicator.
const (
	tagOffloadDesc = 101
	tagOffloadIn   = 102
	tagOffloadOut  = 103
	tagOffloadStop = 104
)

// WorkerMain is the psmpi main for an offload worker job: it serves offload
// requests from its parent until it receives a stop message. Spawn it on the
// target module and pass the resulting inter-communicator to RunWithOffload.
func WorkerMain(p *psmpi.Proc) error {
	parent := p.Parent()
	if parent == nil {
		return fmt.Errorf("omps: worker has no parent")
	}
	for {
		data, st := p.Recv(parent, psmpi.AnySource, psmpi.AnyTag)
		switch st.Tag {
		case tagOffloadStop:
			return nil
		case tagOffloadDesc:
			desc := data.([]float64)
			p.Recv(parent, st.Source, tagOffloadIn)
			p.Compute(machine.Work{Class: machine.KernelClass(int(desc[1])), Flops: desc[0]})
			p.Send(parent, st.Source, tagOffloadOut, nil, int(desc[2]))
		default:
			return fmt.Errorf("omps: worker got unexpected tag %d", st.Tag)
		}
	}
}

// StopWorker tells a worker spawned with WorkerMain to exit.
func StopWorker(p *psmpi.Proc, inter *psmpi.Comm, workerRank int) {
	p.Send(inter, workerRank, tagOffloadStop, nil, 0)
}

// transferTime is the analytic offload transfer estimate used when no real
// inter-communicator is wired: one rendezvous crossing of the fabric.
func transferTime(p *psmpi.Proc, bytes int) vclock.Time {
	if bytes <= 0 {
		return 0
	}
	sys := p.Runtime().System()
	other := otherModule(p.Module())
	if sys.NodeCount(other) == 0 {
		return 0
	}
	return p.Runtime().Network().PingPongTime(p.Node(), sys.Module(other)[0], bytes)
}

func otherModule(m machine.Module) machine.Module {
	if m == machine.Cluster {
		return machine.Booster
	}
	return machine.Cluster
}

// topoOrder returns the tasks in a deterministic topological order (by task
// ID among ready tasks), or an error on a dependency cycle.
func (g *Graph) topoOrder() ([]*Task, error) {
	indeg := make([]int, len(g.tasks))
	for _, t := range g.tasks {
		indeg[t.ID] = len(t.preds)
	}
	var ready []*Task
	for _, t := range g.tasks {
		if indeg[t.ID] == 0 {
			ready = append(ready, t)
		}
	}
	var order []*Task
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
		t := ready[0]
		ready = ready[1:]
		order = append(order, t)
		for _, s := range t.succs {
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, fmt.Errorf("omps: dependency cycle among %d tasks", len(g.tasks)-len(order))
	}
	return order, nil
}

// criticalPath computes the longest dependency chain cost (offload and lane
// contention excluded), a lower bound on any schedule.
func (g *Graph) criticalPath(base vclock.Time) vclock.Time {
	spec := g.p.Node().Spec
	memo := make([]vclock.Time, len(g.tasks))
	var longest vclock.Time
	// tasks are indexed by creation order, and edges only go forward in a
	// topological order; process in topo order.
	order, err := g.topoOrder()
	if err != nil {
		return 0
	}
	for _, t := range order {
		var in vclock.Time
		for _, pr := range t.preds {
			in = vclock.Max(in, memo[pr.ID])
		}
		dur := spec.ComputeTime(t.Work)
		if t.Skipped {
			dur = 0
		}
		memo[t.ID] = in + dur
		longest = vclock.Max(longest, memo[t.ID])
	}
	return longest
}
