// Package prof wires pprof profile capture into the CLIs: deepsim and
// cbctl run accept -cpuprofile/-memprofile so perf work on the simulation
// hot paths can grab real-workload profiles without patching the binaries
// (kernel benchmarks cover the microbenchmark side; these flags cover whole
// sweeps and experiments).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profile capture: CPU sampling now (when cpuPath is
// non-empty) and an allocation snapshot at Stop time (when memPath is
// non-empty). The returned stop function is idempotent and must be called
// before the process exits for the profiles to be complete.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialise the final live heap
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
