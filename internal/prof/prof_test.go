package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop not idempotent: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
