// Package nvme models the node-local non-volatile memory device of the
// DEEP-ER prototype: an Intel DC P3700 NVMe SSD with 400 GB, attached through
// four lanes of PCIe gen3 (§II-B of the paper). The device is the foundation
// of the prototype's I/O buffering and multi-level checkpointing: SCR's
// "local" and "buddy" checkpoint levels and BeeOND's cache domain both live
// on it.
//
// The model has a capacity-accounted object store (named blobs) and a timing
// model: command latency plus size over sequential bandwidth, with all
// commands serialised through the device queue (a vclock.SharedClock), so
// concurrent writers see realistic queueing delays.
package nvme

import (
	"fmt"
	"sync"

	"clusterbooster/internal/vclock"
)

// Spec describes a device model.
type Spec struct {
	Name          string
	CapacityBytes int64
	ReadGBs       float64     // sequential read bandwidth
	WriteGBs      float64     // sequential write bandwidth
	CmdLatency    vclock.Time // per-command setup latency
}

// P3700 returns the Intel DC P3700 400 GB specification (the prototype's
// device): ~2.7 GB/s read, ~1.9 GB/s write, ~20 µs command latency.
func P3700() Spec {
	return Spec{
		Name:          "Intel DC P3700 400GB",
		CapacityBytes: 400 * 1000 * 1000 * 1000,
		ReadGBs:       2.7,
		WriteGBs:      1.9,
		CmdLatency:    20 * vclock.Microsecond,
	}
}

// Device is one NVMe device instance.
type Device struct {
	spec  Spec
	queue *vclock.SharedClock

	mu    sync.Mutex
	used  int64
	blobs map[string]int64
}

// New builds a device with the given spec.
func New(spec Spec) *Device {
	return &Device{
		spec:  spec,
		queue: vclock.NewSharedClock(0),
		blobs: map[string]int64{},
	}
}

// Spec returns the device specification.
func (d *Device) Spec() Spec { return d.spec }

// Used returns the bytes currently stored.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Free returns the remaining capacity in bytes.
func (d *Device) Free() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spec.CapacityBytes - d.used
}

// writeTime models one write command of the given size.
func (d *Device) writeTime(size int64) vclock.Time {
	return d.spec.CmdLatency + vclock.Time(float64(size)/(d.spec.WriteGBs*1e9))
}

// readTime models one read command of the given size.
func (d *Device) readTime(size int64) vclock.Time {
	return d.spec.CmdLatency + vclock.Time(float64(size)/(d.spec.ReadGBs*1e9))
}

// Put stores (or overwrites) a named blob of the given size, returning the
// virtual completion time for a command issued at ready. Fails if the device
// would overflow.
func (d *Device) Put(name string, size int64, ready vclock.Time) (vclock.Time, error) {
	if size < 0 {
		return 0, fmt.Errorf("nvme: negative size %d", size)
	}
	d.mu.Lock()
	old := d.blobs[name]
	next := d.used - old + size
	if next > d.spec.CapacityBytes {
		d.mu.Unlock()
		return 0, fmt.Errorf("nvme: %s full: %d + %d > %d", d.spec.Name, d.used, size-old, d.spec.CapacityBytes)
	}
	d.blobs[name] = size
	d.used = next
	d.mu.Unlock()
	_, end := d.queue.Reserve(ready, d.writeTime(size))
	return end, nil
}

// Get reads a named blob, returning its size and the completion time.
func (d *Device) Get(name string, ready vclock.Time) (int64, vclock.Time, error) {
	d.mu.Lock()
	size, ok := d.blobs[name]
	d.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("nvme: blob %q not found", name)
	}
	_, end := d.queue.Reserve(ready, d.readTime(size))
	return size, end, nil
}

// Has reports whether a blob exists.
func (d *Device) Has(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.blobs[name]
	return ok
}

// Delete removes a blob (no-op if absent) at negligible cost.
func (d *Device) Delete(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if size, ok := d.blobs[name]; ok {
		d.used -= size
		delete(d.blobs, name)
	}
}

// DropAll clears the device — used by failure injection to model a node loss
// taking its local checkpoints with it.
func (d *Device) DropAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blobs = map[string]int64{}
	d.used = 0
}

// Blobs returns the number of stored blobs.
func (d *Device) Blobs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blobs)
}
