// Package nvme models the node-local non-volatile memory device of the
// DEEP-ER prototype: an Intel DC P3700 NVMe SSD with 400 GB, attached through
// four lanes of PCIe gen3 (§II-B of the paper). The device is the foundation
// of the prototype's I/O buffering and multi-level checkpointing: SCR's
// "local" and "buddy" checkpoint levels and BeeOND's cache domain both live
// on it.
//
// The model has a capacity-accounted object store (named blobs) and a timing
// model: command latency plus size over sequential bandwidth, with all
// commands serialised through the device queue (a vclock.SharedClock), so
// concurrent writers see realistic queueing delays.
//
// Device latencies are scheduled kernel events: Put/Get park the calling
// ioev.Proc until the command completes, and SubmitPut/SubmitGet issue a
// command against an ioev.Op dependency without parking, for composed paths
// that join several operations before a single park. The device carries no
// mutex — like the rest of the migrated I/O stack it relies on the
// cooperative kernel for serialisation: exactly one rank (or baton-holding
// callback) runs at a time, every method runs entirely within one turn, and
// detached actors price I/O from a single host goroutine per scenario.
package nvme

import (
	"fmt"

	"clusterbooster/internal/ioev"
	"clusterbooster/internal/vclock"
)

// Spec describes a device model.
type Spec struct {
	Name          string
	CapacityBytes int64
	ReadGBs       float64     // sequential read bandwidth
	WriteGBs      float64     // sequential write bandwidth
	CmdLatency    vclock.Time // per-command setup latency
}

// P3700 returns the Intel DC P3700 400 GB specification (the prototype's
// device): ~2.7 GB/s read, ~1.9 GB/s write, ~20 µs command latency.
func P3700() Spec {
	return Spec{
		Name:          "Intel DC P3700 400GB",
		CapacityBytes: 400 * 1000 * 1000 * 1000,
		ReadGBs:       2.7,
		WriteGBs:      1.9,
		CmdLatency:    20 * vclock.Microsecond,
	}
}

// Device is one NVMe device instance.
type Device struct {
	spec  Spec
	queue *vclock.SharedClock
	used  int64
	blobs map[string]int64
}

// New builds a device with the given spec.
func New(spec Spec) *Device {
	return &Device{
		spec:  spec,
		queue: vclock.NewSharedClock(0),
		blobs: map[string]int64{},
	}
}

// Spec returns the device specification.
func (d *Device) Spec() Spec { return d.spec }

// Used returns the bytes currently stored.
func (d *Device) Used() int64 { return d.used }

// Free returns the remaining capacity in bytes.
func (d *Device) Free() int64 { return d.spec.CapacityBytes - d.used }

// writeTime models one write command of the given size.
func (d *Device) writeTime(size int64) vclock.Time {
	return d.spec.CmdLatency + vclock.Time(float64(size)/(d.spec.WriteGBs*1e9))
}

// readTime models one read command of the given size.
func (d *Device) readTime(size int64) vclock.Time {
	return d.spec.CmdLatency + vclock.Time(float64(size)/(d.spec.ReadGBs*1e9))
}

// Put stores (or overwrites) a named blob of the given size and parks the
// caller until the write command completes. Fails (without advancing time)
// if the device would overflow.
func (d *Device) Put(p ioev.Proc, name string, size int64) error {
	op, err := d.SubmitPut(ioev.Start(p), name, size)
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitPut issues a write command after dep without parking, returning the
// completion token. The blob is recorded immediately (model state is
// instantaneous; only time is simulated).
func (d *Device) SubmitPut(dep ioev.Op, name string, size int64) (ioev.Op, error) {
	if size < 0 {
		return ioev.Op{}, fmt.Errorf("nvme: negative size %d", size)
	}
	old := d.blobs[name]
	next := d.used - old + size
	if next > d.spec.CapacityBytes {
		return ioev.Op{}, fmt.Errorf("nvme: %s full: %d + %d > %d", d.spec.Name, d.used, size-old, d.spec.CapacityBytes)
	}
	d.blobs[name] = size
	d.used = next
	_, end := d.queue.Reserve(dep.Time(), d.writeTime(size))
	return ioev.At(end), nil
}

// SubmitUpdate issues a partial write after dep without parking: the blob's
// accounted size becomes size, but only written bytes cross the device (an
// in-place append or range update, e.g. a container block flush). Fails
// (without advancing time) if the new size would overflow the device.
func (d *Device) SubmitUpdate(dep ioev.Op, name string, size, written int64) (ioev.Op, error) {
	if size < 0 || written < 0 {
		return ioev.Op{}, fmt.Errorf("nvme: negative size %d/%d", size, written)
	}
	old := d.blobs[name]
	next := d.used - old + size
	if next > d.spec.CapacityBytes {
		return ioev.Op{}, fmt.Errorf("nvme: %s full: %d + %d > %d", d.spec.Name, d.used, size-old, d.spec.CapacityBytes)
	}
	d.blobs[name] = size
	d.used = next
	_, end := d.queue.Reserve(dep.Time(), d.writeTime(written))
	return ioev.At(end), nil
}

// Get reads a named blob, parking the caller until the read command
// completes, and returns its size.
func (d *Device) Get(p ioev.Proc, name string) (int64, error) {
	size, op, err := d.SubmitGet(ioev.Start(p), name)
	if err != nil {
		return 0, err
	}
	ioev.Await(p, op)
	return size, nil
}

// SubmitGet issues a read command after dep without parking, returning the
// blob size and the completion token.
func (d *Device) SubmitGet(dep ioev.Op, name string) (int64, ioev.Op, error) {
	size, ok := d.blobs[name]
	if !ok {
		return 0, ioev.Op{}, fmt.Errorf("nvme: blob %q not found", name)
	}
	_, end := d.queue.Reserve(dep.Time(), d.readTime(size))
	return size, ioev.At(end), nil
}

// Has reports whether a blob exists.
func (d *Device) Has(name string) bool {
	_, ok := d.blobs[name]
	return ok
}

// Delete removes a blob (no-op if absent) at negligible cost.
func (d *Device) Delete(name string) {
	if size, ok := d.blobs[name]; ok {
		d.used -= size
		delete(d.blobs, name)
	}
}

// DropAll clears the device — used by failure injection to model a node loss
// taking its local checkpoints with it.
func (d *Device) DropAll() {
	d.blobs = map[string]int64{}
	d.used = 0
}

// Blobs returns the number of stored blobs.
func (d *Device) Blobs() int { return len(d.blobs) }
