package nvme

import (
	"math"
	"testing"
	"testing/quick"

	"clusterbooster/internal/vclock"
)

func TestP3700Spec(t *testing.T) {
	s := P3700()
	if s.CapacityBytes != 400*1000*1000*1000 {
		t.Errorf("capacity = %d, want 400 GB (Table I)", s.CapacityBytes)
	}
	if s.WriteGBs >= s.ReadGBs {
		t.Errorf("write bandwidth %v >= read %v; P3700 reads faster", s.WriteGBs, s.ReadGBs)
	}
}

func TestPutGetTiming(t *testing.T) {
	d := New(P3700())
	const size = 1900 * 1000 * 1000 // 1.9 GB: exactly 1 s at write bandwidth
	done, err := d.Put("ckpt", size, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := done.Seconds(); math.Abs(got-1.0) > 0.01 {
		t.Errorf("1.9 GB write took %vs, want ~1s", got)
	}
	n, rdone, err := d.Get("ckpt", done)
	if err != nil {
		t.Fatal(err)
	}
	if n != size {
		t.Errorf("got %d bytes", n)
	}
	wantRead := 1.0 + float64(size)/(2.7e9)
	if got := rdone.Seconds(); math.Abs(got-wantRead) > 0.02 {
		t.Errorf("read done at %vs, want ~%vs", got, wantRead)
	}
}

func TestCapacityEnforced(t *testing.T) {
	d := New(Spec{Name: "tiny", CapacityBytes: 100, WriteGBs: 1, ReadGBs: 1})
	if _, err := d.Put("a", 60, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Put("b", 60, 0); err == nil {
		t.Fatal("overflow accepted")
	}
	// Overwriting a blob replaces, not adds.
	if _, err := d.Put("a", 90, 0); err != nil {
		t.Fatalf("overwrite rejected: %v", err)
	}
	if d.Used() != 90 {
		t.Fatalf("used = %d, want 90", d.Used())
	}
}

func TestDeleteAndDropAll(t *testing.T) {
	d := New(P3700())
	d.Put("x", 1000, 0)
	d.Put("y", 2000, 0)
	if d.Blobs() != 2 {
		t.Fatalf("blobs = %d", d.Blobs())
	}
	d.Delete("x")
	if d.Has("x") || !d.Has("y") || d.Used() != 2000 {
		t.Fatal("delete broken")
	}
	d.Delete("x") // idempotent
	d.DropAll()
	if d.Blobs() != 0 || d.Used() != 0 {
		t.Fatal("DropAll left state")
	}
}

func TestGetMissing(t *testing.T) {
	d := New(P3700())
	if _, _, err := d.Get("nope", 0); err == nil {
		t.Fatal("missing blob read succeeded")
	}
}

func TestQueueSerialises(t *testing.T) {
	// Two simultaneous writes must not overlap on the device.
	d := New(P3700())
	const size = 190 * 1000 * 1000 // 0.1 s each
	t1, _ := d.Put("a", size, 0)
	t2, _ := d.Put("b", size, 0)
	if gap := (t2 - t1).Seconds(); math.Abs(gap-0.1) > 0.01 {
		t.Errorf("second write finished %vs after first, want ~0.1s", gap)
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	d := New(P3700())
	if _, err := d.Put("bad", -1, 0); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestQuickUsedNeverExceedsCapacity(t *testing.T) {
	f := func(ops []struct {
		Name byte
		Size uint32
	}) bool {
		d := New(Spec{Name: "q", CapacityBytes: 1 << 20, WriteGBs: 1, ReadGBs: 1, CmdLatency: vclock.Microsecond})
		for _, op := range ops {
			d.Put(string(rune('a'+op.Name%8)), int64(op.Size), 0) // errors fine
			if d.Used() > d.Spec().CapacityBytes || d.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
