package nvme

import (
	"math"
	"testing"
	"testing/quick"

	"clusterbooster/internal/ioev"
	"clusterbooster/internal/vclock"
)

func TestP3700Spec(t *testing.T) {
	s := P3700()
	if s.CapacityBytes != 400*1000*1000*1000 {
		t.Errorf("capacity = %d, want 400 GB (Table I)", s.CapacityBytes)
	}
	if s.WriteGBs >= s.ReadGBs {
		t.Errorf("write bandwidth %v >= read %v; P3700 reads faster", s.WriteGBs, s.ReadGBs)
	}
}

func TestPutGetTiming(t *testing.T) {
	d := New(P3700())
	const size = 1900 * 1000 * 1000 // 1.9 GB: exactly 1 s at write bandwidth
	a := ioev.Detach(nil, 0)
	if err := d.Put(a, "ckpt", size); err != nil {
		t.Fatal(err)
	}
	if got := a.Now().Seconds(); math.Abs(got-1.0) > 0.01 {
		t.Errorf("1.9 GB write took %vs, want ~1s", got)
	}
	n, err := d.Get(a, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if n != size {
		t.Errorf("got %d bytes", n)
	}
	wantRead := 1.0 + float64(size)/(2.7e9)
	if got := a.Now().Seconds(); math.Abs(got-wantRead) > 0.02 {
		t.Errorf("read done at %vs, want ~%vs", got, wantRead)
	}
}

func TestCapacityEnforced(t *testing.T) {
	d := New(Spec{Name: "tiny", CapacityBytes: 100, WriteGBs: 1, ReadGBs: 1})
	a := ioev.Detach(nil, 0)
	if err := d.Put(a, "a", 60); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(a, "b", 60); err == nil {
		t.Fatal("overflow accepted")
	}
	// Overwriting a blob replaces, not adds.
	if err := d.Put(a, "a", 90); err != nil {
		t.Fatalf("overwrite rejected: %v", err)
	}
	if d.Used() != 90 {
		t.Fatalf("used = %d, want 90", d.Used())
	}
}

func TestDeleteAndDropAll(t *testing.T) {
	d := New(P3700())
	a := ioev.Detach(nil, 0)
	d.Put(a, "x", 1000)
	d.Put(a, "y", 2000)
	if d.Blobs() != 2 {
		t.Fatalf("blobs = %d", d.Blobs())
	}
	d.Delete("x")
	if d.Has("x") || !d.Has("y") || d.Used() != 2000 {
		t.Fatal("delete broken")
	}
	d.Delete("x") // idempotent
	d.DropAll()
	if d.Blobs() != 0 || d.Used() != 0 {
		t.Fatal("DropAll left state")
	}
}

func TestGetMissing(t *testing.T) {
	d := New(P3700())
	if _, err := d.Get(ioev.Detach(nil, 0), "nope"); err == nil {
		t.Fatal("missing blob read succeeded")
	}
}

func TestQueueSerialises(t *testing.T) {
	// Two simultaneous writes must not overlap on the device.
	d := New(P3700())
	const size = 190 * 1000 * 1000 // 0.1 s each
	op1, _ := d.SubmitPut(ioev.At(0), "a", size)
	op2, _ := d.SubmitPut(ioev.At(0), "b", size)
	if gap := (op2.Time() - op1.Time()).Seconds(); math.Abs(gap-0.1) > 0.01 {
		t.Errorf("second write finished %vs after first, want ~0.1s", gap)
	}
}

func TestFailedPutAdvancesNoTime(t *testing.T) {
	d := New(Spec{Name: "tiny", CapacityBytes: 100, WriteGBs: 1, ReadGBs: 1})
	a := ioev.Detach(nil, 0)
	if err := d.Put(a, "big", 200); err == nil {
		t.Fatal("overflow accepted")
	}
	if a.Now() != 0 {
		t.Errorf("failed put advanced the clock to %v", a.Now())
	}
}

func TestNegativeSizeRejected(t *testing.T) {
	d := New(P3700())
	if err := d.Put(ioev.Detach(nil, 0), "bad", -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestQuickUsedNeverExceedsCapacity(t *testing.T) {
	f := func(ops []struct {
		Name byte
		Size uint32
	}) bool {
		d := New(Spec{Name: "q", CapacityBytes: 1 << 20, WriteGBs: 1, ReadGBs: 1, CmdLatency: vclock.Microsecond})
		a := ioev.Detach(nil, 0)
		for _, op := range ops {
			d.Put(a, string(rune('a'+op.Name%8)), int64(op.Size)) // errors fine
			if d.Used() > d.Spec().CapacityBytes || d.Used() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
