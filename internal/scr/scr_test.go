package scr

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

func testMgr(t *testing.T, ranks int, cfg Config) (*Manager, *machine.System) {
	t.Helper()
	sys := machine.New(ranks, 0)
	net := fabric.New(sys, fabric.Config{})
	fs := beegfs.New(net, beegfs.Config{})
	nodes := sys.Module(machine.Cluster)[:ranks]
	devs := map[int]*nvme.Device{}
	for _, n := range nodes {
		devs[n.ID] = nvme.New(nvme.P3700())
	}
	m, err := New(cfg, net, fs, nodes, devs)
	if err != nil {
		t.Fatal(err)
	}
	return m, sys
}

func ckptAll(t *testing.T, m *Manager, step int, data []byte, ready vclock.Time) vclock.Time {
	t.Helper()
	levels := m.BeginCheckpoint(step)
	var done vclock.Time
	for rank := 0; rank < m.Ranks(); rank++ {
		a := ioev.Detach(nil, ready)
		if err := m.Checkpoint(a, rank, step, data, levels); err != nil {
			t.Fatal(err)
		}
		done = vclock.Max(done, a.Now())
	}
	for _, lv := range levels {
		if lv == LevelGlobal {
			a := ioev.Detach(nil, done)
			if err := m.CompleteGlobal(a, step, 0); err != nil {
				t.Fatal(err)
			}
			done = vclock.Max(done, a.Now())
		}
	}
	return done
}

func TestLevelCadence(t *testing.T) {
	m, _ := testMgr(t, 2, Config{BuddyEvery: 2, GlobalEvery: 4})
	var seq [][]Level
	for i := 1; i <= 4; i++ {
		seq = append(seq, m.BeginCheckpoint(i))
	}
	if len(seq[0]) != 1 || seq[0][0] != LevelLocal {
		t.Errorf("ckpt 1 levels = %v, want [local]", seq[0])
	}
	if len(seq[1]) != 2 || seq[1][1] != LevelBuddy {
		t.Errorf("ckpt 2 levels = %v, want [local buddy]", seq[1])
	}
	if len(seq[3]) != 3 || seq[3][2] != LevelGlobal {
		t.Errorf("ckpt 4 levels = %v, want [local buddy global]", seq[3])
	}
}

func TestLocalRestore(t *testing.T) {
	m, _ := testMgr(t, 2, Config{})
	data := []byte("state at step 10")
	ckptAll(t, m, 10, data, 0)
	step, levels, ok := m.BestRestart()
	if !ok || step != 10 {
		t.Fatalf("best restart = %d, %v", step, ok)
	}
	for rank := 0; rank < 2; rank++ {
		if levels[rank] != LevelLocal {
			t.Errorf("rank %d level = %v, want local", rank, levels[rank])
		}
		a := ioev.Detach(nil, 0)
		got, err := m.Restore(a, rank, step, levels[rank])
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("restore rank %d: %q, %v", rank, got, err)
		}
		if a.Now() <= 0 {
			t.Error("restore was free")
		}
	}
}

func TestBuddySurvivesNodeFailure(t *testing.T) {
	m, sys := testMgr(t, 3, Config{BuddyEvery: 1})
	data := []byte("redundant state")
	ckptAll(t, m, 5, data, 0)

	// Kill node of rank 0: its local checkpoint dies, but its buddy copy
	// lives on rank 1's node.
	m.FailNode(sys.Node(0).ID)
	step, levels, ok := m.BestRestart()
	if !ok || step != 5 {
		t.Fatalf("no restart after single node failure: %v", ok)
	}
	if levels[0] != LevelBuddy {
		t.Errorf("rank 0 restores from %v, want buddy", levels[0])
	}
	if levels[1] == LevelBuddy {
		// rank 1's local copy was untouched.
		t.Errorf("rank 1 should restore locally, got %v", levels[1])
	}
	got, err := m.Restore(ioev.Detach(nil, 0), 0, step, LevelBuddy)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("buddy restore: %q, %v", got, err)
	}
}

func TestGlobalSurvivesEverything(t *testing.T) {
	m, sys := testMgr(t, 3, Config{BuddyEvery: 0, GlobalEvery: 1})
	data := []byte("globally safe")
	ckptAll(t, m, 7, data, 0)
	// Lose every node.
	for _, n := range sys.Module(machine.Cluster)[:3] {
		m.FailNode(n.ID)
	}
	step, levels, ok := m.BestRestart()
	if !ok || step != 7 {
		t.Fatalf("global checkpoint lost: ok=%v", ok)
	}
	for rank := 0; rank < 3; rank++ {
		if levels[rank] != LevelGlobal {
			t.Errorf("rank %d level = %v, want global", rank, levels[rank])
		}
		got, err := m.Restore(ioev.Detach(nil, 0), rank, step, LevelGlobal)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("global restore rank %d: %v", rank, err)
		}
	}
}

func TestAllLevelsLostMeansNoRestart(t *testing.T) {
	m, sys := testMgr(t, 2, Config{}) // local only
	ckptAll(t, m, 3, []byte("x"), 0)
	m.FailNode(sys.Node(0).ID)
	if _, _, ok := m.BestRestart(); ok {
		t.Fatal("restart offered although rank 0's only copy died")
	}
}

func TestBestRestartPicksNewest(t *testing.T) {
	m, sys := testMgr(t, 2, Config{BuddyEvery: 1})
	ckptAll(t, m, 10, []byte("old"), 0)
	ckptAll(t, m, 20, []byte("new"), 0)
	step, _, ok := m.BestRestart()
	if !ok || step != 20 {
		t.Fatalf("best = %d, want 20", step)
	}
	// After losing rank-0's node, step 20 is still recoverable via buddy.
	m.FailNode(sys.Node(0).ID)
	step, levels, ok := m.BestRestart()
	if !ok || step != 20 {
		t.Fatalf("after failure best = %d (%v), want 20", step, ok)
	}
	if levels[0] != LevelBuddy {
		t.Errorf("rank 0 level %v", levels[0])
	}
}

func TestLevelCosts(t *testing.T) {
	// Local must be cheapest, global most expensive, for a sizeable state.
	// The ordering is bandwidth-dominated, so -short keeps full coverage of
	// the property on an eighth of the payload.
	size := 64 << 20
	if testing.Short() {
		size = 8 << 20
	}
	data := make([]byte, size)
	mL, _ := testMgr(t, 4, Config{})
	tLocal := ckptAll(t, mL, 1, data, 0)
	mB, _ := testMgr(t, 4, Config{BuddyEvery: 1})
	tBuddy := ckptAll(t, mB, 1, data, 0)
	mG, _ := testMgr(t, 4, Config{GlobalEvery: 1})
	tGlobal := ckptAll(t, mG, 1, data, 0)
	if !(tLocal < tBuddy && tBuddy < tGlobal) {
		t.Errorf("level cost ordering violated: local %v, buddy %v, global %v", tLocal, tBuddy, tGlobal)
	}
}

func TestSingleNodeJobSkipsBuddy(t *testing.T) {
	m, _ := testMgr(t, 1, Config{BuddyEvery: 1})
	levels := m.BeginCheckpoint(1)
	a := ioev.Detach(nil, 0)
	if err := m.Checkpoint(a, 0, 1, []byte("solo"), levels); err != nil {
		t.Fatal(err)
	}
	if a.Now() <= 0 {
		t.Error("no cost at all")
	}
	// Restart must come from local (no buddy recorded).
	_, lv, ok := m.BestRestart()
	if !ok || lv[0] != LevelLocal {
		t.Fatalf("levels = %v, ok=%v", lv, ok)
	}
}

func TestSystemMTBF(t *testing.T) {
	m, _ := testMgr(t, 4, Config{NodeMTBF: 40 * vclock.Second})
	if got := m.SystemMTBF(); math.Abs(got.Seconds()-10) > 1e-9 {
		t.Errorf("system MTBF = %v, want 10s", got)
	}
}

func TestOptimalInterval(t *testing.T) {
	// Young/Daly: δ=2s, M=10000s → √(2·2·10000) = 200s.
	got := OptimalInterval(2*vclock.Second, 10000*vclock.Second)
	if math.Abs(got.Seconds()-200) > 1e-9 {
		t.Errorf("interval = %v, want 200s", got)
	}
	if OptimalInterval(0, vclock.Second) != 0 {
		t.Error("zero cost should yield zero interval")
	}
	// Monotonicity: longer MTBF → longer interval.
	if OptimalInterval(vclock.Second, 100*vclock.Second) >= OptimalInterval(vclock.Second, 1000*vclock.Second) {
		t.Error("interval not monotone in MTBF")
	}
}

func TestCheckpointWithoutBegin(t *testing.T) {
	m, _ := testMgr(t, 1, Config{})
	if err := m.Checkpoint(ioev.Detach(nil, 0), 0, 99, []byte("x"), []Level{LevelLocal}); err == nil {
		t.Fatal("checkpoint without BeginCheckpoint accepted")
	}
}

func TestManagerValidation(t *testing.T) {
	sys := machine.New(2, 0)
	net := fabric.New(sys, fabric.Config{})
	nodes := sys.Module(machine.Cluster)
	if _, err := New(Config{}, net, nil, nil, nil); err == nil {
		t.Error("no ranks accepted")
	}
	if _, err := New(Config{GlobalEvery: 1}, net, nil, nodes, map[int]*nvme.Device{}); err == nil {
		t.Error("global level without fs accepted")
	}
	if _, err := New(Config{}, net, nil, nodes, map[int]*nvme.Device{}); err == nil {
		t.Error("missing NVMe devices accepted")
	}
}

func TestManyStepsRetained(t *testing.T) {
	m, _ := testMgr(t, 2, Config{BuddyEvery: 1})
	for s := 1; s <= 10; s++ {
		ckptAll(t, m, s, []byte(fmt.Sprintf("step %d", s)), 0)
	}
	step, _, ok := m.BestRestart()
	if !ok || step != 10 {
		t.Fatalf("best = %d", step)
	}
	got, err := m.Restore(ioev.Detach(nil, 0), 1, 4, LevelLocal)
	if err != nil || string(got) != "step 4" {
		t.Fatalf("old step restore: %q %v", got, err)
	}
}
