// Package scr reproduces the checkpoint/restart layer of the DEEP-ER
// prototype (§III-D of the paper): the Scalable Checkpoint/Restart library,
// extended in DEEP-ER to decide where and how often checkpoints are taken
// based on a failure model of the machine.
//
// Checkpoints are multi-level, cheapest first:
//
//	LevelLocal  — the rank's own NVMe (fast, lost with the node)
//	LevelBuddy  — a copy in a companion node's NVMe via SIONlib (survives a
//	              single node loss)
//	LevelGlobal — a SION container on the BeeGFS global file system
//	              (survives anything, slowest)
//
// The manager keeps the checkpoint database, applies the level cadence,
// computes the Young/Daly optimal interval from the failure model, and
// serves restarts from the best surviving level after injected failures.
//
// A Manager needs no locking: every caller runs under one discrete-event
// kernel (internal/engine), which serialises the rank goroutines of a job by
// construction — exactly one holds the execution baton at any moment, and
// failure injection itself runs as a kernel callback holding that same
// baton. Host-parallel sweep scenarios each boot their own system and their
// own Manager, and the restart replay loop drives its Manager from a single
// goroutine between launches, so no two goroutines ever touch one Manager
// concurrently. (The manager held a sync.Mutex when ranks ran free under the
// pre-kernel execution model; the cooperative scheduler made it dead weight.)
package scr

import (
	"fmt"
	"math"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/sion"
	"clusterbooster/internal/vclock"
)

// Level identifies a checkpoint level.
type Level int

const (
	// LevelLocal is the rank-local NVMe checkpoint.
	LevelLocal Level = iota
	// LevelBuddy is the redundant copy on the companion node.
	LevelBuddy
	// LevelGlobal is the parallel-file-system checkpoint.
	LevelGlobal
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelLocal:
		return "local"
	case LevelBuddy:
		return "buddy"
	case LevelGlobal:
		return "global"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config tunes the manager.
type Config struct {
	// BuddyEvery takes a buddy-level copy every k-th checkpoint (0 disables).
	BuddyEvery int
	// GlobalEvery takes a global-level checkpoint every k-th checkpoint
	// (0 disables).
	GlobalEvery int
	// NodeMTBF is the per-node mean time between failures of the failure
	// model the DEEP-ER SCR extension uses to plan checkpoints.
	NodeMTBF vclock.Time
}

// DefaultConfig uses the cadence typical for SCR deployments: buddy every
// 4th, global every 16th checkpoint, and an (aggressively short, prototype
// scale) per-node MTBF of 12 h.
func DefaultConfig() Config {
	return Config{BuddyEvery: 4, GlobalEvery: 16, NodeMTBF: 12 * 3600 * vclock.Second}
}

// Manager is the per-job checkpoint coordinator.
type Manager struct {
	cfg   Config
	net   *fabric.Network
	fs    *beegfs.FS
	nodes []*machine.Node // rank → node
	devs  map[int]*nvme.Device

	seq     int // checkpoint counter (for cadence)
	records map[int]*record
	writers map[string]*sion.Writer // open global containers by path
	// payload store for local/buddy levels (content travels with validity).
	local map[string][]byte
	buddy map[string][]byte
}

type record struct {
	step        int
	levels      []Level // the plan BeginCheckpoint decided for this step
	localValid  []bool
	buddyValid  []bool
	globalValid []bool
	// globalSealed is set by CompleteGlobal: chunks written into a SION
	// container that was never closed (the job died mid-checkpoint) are not
	// restorable, so BestRestart must not count them.
	globalSealed bool
	// globalWrote tracks which ranks wrote into the currently open container
	// (reset per round). A rank writing twice means a restart replay reached
	// this step again: the stale container must be replaced, not appended to.
	globalWrote []bool
	globalPath  string
}

// New builds a manager for a job whose rank i runs on nodes[i]; devs maps
// node IDs to their NVMe devices. fs may be nil if GlobalEvery is 0.
func New(cfg Config, net *fabric.Network, fs *beegfs.FS, nodes []*machine.Node, devs map[int]*nvme.Device) (*Manager, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("scr: no ranks")
	}
	if cfg.GlobalEvery > 0 && fs == nil {
		return nil, fmt.Errorf("scr: global level enabled without a file system")
	}
	for _, n := range nodes {
		if _, ok := devs[n.ID]; !ok {
			return nil, fmt.Errorf("scr: node %s has no NVMe device", n.Name())
		}
	}
	return &Manager{
		cfg:     cfg,
		net:     net,
		fs:      fs,
		nodes:   nodes,
		devs:    devs,
		records: map[int]*record{},
		writers: map[string]*sion.Writer{},
		local:   map[string][]byte{},
		buddy:   map[string][]byte{},
	}, nil
}

// Ranks returns the number of ranks covered.
func (m *Manager) Ranks() int { return len(m.nodes) }

// BuddyOf returns the companion rank used for buddy checkpoints: the
// neighbour in a ring over the ranks, guaranteed to live on another node
// whenever more than one node is in use.
func (m *Manager) BuddyOf(rank int) int { return (rank + 1) % len(m.nodes) }

func key(step, rank int) string { return fmt.Sprintf("scr/step%d/rank%d", step, rank) }

// BeginCheckpoint opens the checkpoint for the given step and decides which
// levels it writes, per the configured cadence. The call is idempotent per
// step: the first call advances the cadence counter and fixes the plan, and
// every later call — another rank of the same collective checkpoint, or a
// replay re-checkpointing the step after a restart — returns that original
// plan unchanged. Tying the cadence to the step rather than the call count
// keeps level selection stable across failure/restart replays.
func (m *Manager) BeginCheckpoint(step int) []Level {
	if rec, ok := m.records[step]; ok {
		return append([]Level(nil), rec.levels...)
	}
	m.seq++
	levels := []Level{LevelLocal}
	if m.cfg.BuddyEvery > 0 && m.seq%m.cfg.BuddyEvery == 0 {
		levels = append(levels, LevelBuddy)
	}
	if m.cfg.GlobalEvery > 0 && m.seq%m.cfg.GlobalEvery == 0 {
		levels = append(levels, LevelGlobal)
	}
	n := len(m.nodes)
	m.records[step] = &record{
		step:        step,
		levels:      levels,
		localValid:  make([]bool, n),
		buddyValid:  make([]bool, n),
		globalValid: make([]bool, n),
		globalPath:  fmt.Sprintf("/scr/ckpt-step%d.sion", step),
	}
	return append([]Level(nil), levels...)
}

// Checkpoint writes one rank's state for a step at the given levels,
// parking the caller until the slowest requested level is durable. The
// levels are submitted concurrently from the call instant — a local NVMe
// put, a buddy copy and a global container write all overlap, joining at a
// single park — and the rank's node is taken from the manager's rank map,
// so detached actors (sweep post-run pricing, tests) need no node of their
// own.
func (m *Manager) Checkpoint(p ioev.Proc, rank, step int, data []byte, levels []Level) error {
	op, err := m.SubmitCheckpoint(ioev.Start(p), rank, step, data, levels)
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitCheckpoint issues one rank's checkpoint after dep without parking,
// returning the token of the slowest requested level. Callers that must
// record the durable instant before yielding — a failure may kill the rank
// mid-park — use this form and Await themselves.
func (m *Manager) SubmitCheckpoint(dep ioev.Op, rank, step int, data []byte, levels []Level) (ioev.Op, error) {
	rec, ok := m.records[step]
	if !ok {
		return ioev.Op{}, fmt.Errorf("scr: checkpoint for step %d not begun", step)
	}
	node := m.nodes[rank]
	start := dep
	done := start
	for _, lv := range levels {
		switch lv {
		case LevelLocal:
			op, err := m.devs[node.ID].SubmitPut(start, key(step, rank), int64(len(data)))
			if err != nil {
				return ioev.Op{}, fmt.Errorf("scr: local level: %w", err)
			}
			m.local[key(step, rank)] = append([]byte(nil), data...)
			rec.localValid[rank] = true
			done = ioev.After(done, op)
		case LevelBuddy:
			b := m.BuddyOf(rank)
			bn := m.nodes[b]
			if bn.ID == node.ID {
				// Single-node job: a buddy copy adds nothing.
				continue
			}
			op, err := sion.SubmitBuddy(m.net, node, bn, m.devs[bn.ID], key(step, rank)+"/buddy", data, start)
			if err != nil {
				return ioev.Op{}, fmt.Errorf("scr: buddy level: %w", err)
			}
			m.buddy[key(step, rank)] = append([]byte(nil), data...)
			rec.buddyValid[rank] = true
			done = ioev.After(done, op)
		case LevelGlobal:
			op, err := m.submitGlobal(rec, rank, data, start)
			if err != nil {
				return ioev.Op{}, err
			}
			done = ioev.After(done, op)
		default:
			return ioev.Op{}, fmt.Errorf("scr: unknown level %v", lv)
		}
	}
	return done, nil
}

// submitGlobal streams one rank's chunk into the step's SION container,
// issued after dep without parking. Containers are created lazily and
// closed by CompleteGlobal. A new checkpoint round for the step — a restart
// replay re-executing it, detected by a rank writing twice, or a fresh
// write after a seal — replaces the container: Create truncates the path,
// so the previous round's chunks (and their validity) are gone.
func (m *Manager) submitGlobal(rec *record, rank int, data []byte, dep ioev.Op) (ioev.Op, error) {
	w := m.writers[rec.globalPath]
	if w != nil && rec.globalWrote[rank] {
		delete(m.writers, rec.globalPath)
		w = nil
	}
	if w == nil {
		var err error
		// The create's metadata round trip is deliberately not joined: the
		// container write below prices the rank's durability, matching
		// SIONlib's collective open hiding the create behind the first
		// chunk.
		w, _, err = sion.SubmitCreate(m.fs, rec.globalPath, len(m.nodes), 64<<10, m.nodes[rank], dep)
		if err != nil {
			return ioev.Op{}, fmt.Errorf("scr: global container: %w", err)
		}
		m.writers[rec.globalPath] = w
		rec.globalSealed = false
		rec.globalWrote = make([]bool, len(m.nodes))
		for i := range rec.globalValid {
			rec.globalValid[i] = false
		}
	}
	op, err := w.SubmitWriteTask(dep, rank, data, m.nodes[rank])
	if err != nil {
		return ioev.Op{}, fmt.Errorf("scr: global level: %w", err)
	}
	rec.globalValid[rank] = true
	rec.globalWrote[rank] = true
	return op, nil
}

// CompleteGlobal closes the step's global container (call once after all
// ranks contributed, e.g. from rank 0 after a barrier), parking the caller
// until the container is sealed on the file system. Only a completed
// container is restorable: a failure that strikes between the writes and
// this call leaves the step's global level unusable, and BestRestart skips
// it. With no open container the call is still a scheduling point
// (Elapse(0)), like a collective that finds nothing to do.
func (m *Manager) CompleteGlobal(p ioev.Proc, step, rank int) error {
	op, err := m.SubmitCompleteGlobal(ioev.Start(p), step, rank)
	if err != nil {
		return err
	}
	ioev.Await(p, op)
	return nil
}

// SubmitCompleteGlobal seals the step's global container after dep without
// parking, returning the seal's completion token (dep itself when there is
// nothing to close).
func (m *Manager) SubmitCompleteGlobal(dep ioev.Op, step, rank int) (ioev.Op, error) {
	rec, ok := m.records[step]
	if !ok {
		return dep, nil
	}
	w := m.writers[rec.globalPath]
	delete(m.writers, rec.globalPath)
	rec.globalSealed = true
	if w == nil {
		return dep, nil
	}
	return w.SubmitClose(dep, m.nodes[rank])
}

// FailNode models the loss of a node: its NVMe contents vanish, invalidating
// the local level of every rank on it and the buddy copies it held. Global
// checkpoints that were mid-write — container open, not yet sealed — die
// with the job: their writers are discarded and their chunks invalidated,
// so the restart replay re-creates the container from scratch.
func (m *Manager) FailNode(nodeID int) {
	if dev, ok := m.devs[nodeID]; ok {
		dev.DropAll()
	}
	for _, rec := range m.records {
		if _, open := m.writers[rec.globalPath]; open {
			delete(m.writers, rec.globalPath)
			rec.globalWrote = nil
			for i := range rec.globalValid {
				rec.globalValid[i] = false
			}
		}
	}
	for _, rec := range m.records {
		for rank, node := range m.nodes {
			if node.ID != nodeID {
				continue
			}
			rec.localValid[rank] = false
			delete(m.local, key(rec.step, rank))
		}
		// Buddy copies *held on* the failed node protect the previous rank
		// in the ring; those are gone too.
		for rank := range m.nodes {
			if m.nodes[m.BuddyOf(rank)].ID == nodeID {
				rec.buddyValid[rank] = false
				delete(m.buddy, key(rec.step, rank))
			}
		}
	}
}

// BestRestart returns the newest step from which every rank can restore
// (from any level), and per-rank levels to use. ok is false if no complete
// checkpoint survives.
func (m *Manager) BestRestart() (step int, levels []Level, ok bool) {
	best := -1
	var bestLv []Level
	for s, rec := range m.records {
		if s <= best {
			continue
		}
		lv := make([]Level, len(m.nodes))
		good := true
		for rank := range m.nodes {
			switch {
			case rec.localValid[rank]:
				lv[rank] = LevelLocal
			case rec.buddyValid[rank]:
				lv[rank] = LevelBuddy
			case rec.globalValid[rank] && rec.globalSealed:
				lv[rank] = LevelGlobal
			default:
				good = false
			}
			if !good {
				break
			}
		}
		if good {
			best, bestLv = s, lv
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	return best, bestLv, true
}

// Restore fetches one rank's checkpoint of the given step from the given
// level, parking the caller until the data has arrived on the rank's node.
func (m *Manager) Restore(p ioev.Proc, rank, step int, lv Level) ([]byte, error) {
	data, op, err := m.SubmitRestore(ioev.Start(p), rank, step, lv)
	if err != nil {
		return nil, err
	}
	ioev.Await(p, op)
	return data, nil
}

// SubmitRestore issues one rank's restore after dep without parking,
// returning the data and the arrival token.
func (m *Manager) SubmitRestore(dep ioev.Op, rank, step int, lv Level) ([]byte, ioev.Op, error) {
	node := m.nodes[rank]
	switch lv {
	case LevelLocal:
		data, ok := m.local[key(step, rank)]
		if !ok {
			return nil, ioev.Op{}, fmt.Errorf("scr: no local checkpoint for rank %d step %d", rank, step)
		}
		_, op, err := m.devs[node.ID].SubmitGet(dep, key(step, rank))
		if err != nil {
			return nil, ioev.Op{}, err
		}
		return append([]byte(nil), data...), op, nil
	case LevelBuddy:
		data, ok := m.buddy[key(step, rank)]
		if !ok {
			return nil, ioev.Op{}, fmt.Errorf("scr: no buddy checkpoint for rank %d step %d", rank, step)
		}
		bn := m.nodes[m.BuddyOf(rank)]
		_, op, err := m.devs[bn.ID].SubmitGet(dep, key(step, rank)+"/buddy")
		if err != nil {
			return nil, ioev.Op{}, err
		}
		// Ship it back across the fabric to the restarting rank.
		_, arrival := m.net.Rendezvous(bn, node, len(data), op.Time(), op.Time())
		return append([]byte(nil), data...), ioev.At(arrival), nil
	case LevelGlobal:
		rec, ok := m.records[step]
		if !ok {
			return nil, ioev.Op{}, fmt.Errorf("scr: unknown step %d", step)
		}
		r, t, err := sion.SubmitOpenRead(m.fs, rec.globalPath, node, dep)
		if err != nil {
			return nil, ioev.Op{}, fmt.Errorf("scr: global restore: %w", err)
		}
		data, t2, err := r.SubmitReadTask(t, rank, node)
		if err != nil {
			return nil, ioev.Op{}, err
		}
		return data, t2, nil
	default:
		return nil, ioev.Op{}, fmt.Errorf("scr: unknown level %v", lv)
	}
}

// SystemMTBF returns the failure model's mean time between failures for the
// whole job (per-node MTBF divided by the node count).
func (m *Manager) SystemMTBF() vclock.Time {
	uniq := map[int]bool{}
	for _, n := range m.nodes {
		uniq[n.ID] = true
	}
	if len(uniq) == 0 || m.cfg.NodeMTBF == 0 {
		return 0
	}
	return m.cfg.NodeMTBF / vclock.Time(len(uniq))
}

// OptimalInterval returns the Young/Daly checkpoint interval
// √(2·δ·M) for checkpoint cost δ and system MTBF M — the planning rule the
// DEEP-ER SCR extension applies.
func OptimalInterval(checkpointCost, mtbf vclock.Time) vclock.Time {
	if checkpointCost <= 0 || mtbf <= 0 {
		return 0
	}
	return vclock.Time(math.Sqrt(2 * checkpointCost.Seconds() * mtbf.Seconds()))
}
