package scr

import (
	"testing"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
)

// replayManager builds a 4-rank manager with a buddy-every-2 cadence.
func replayManager(t *testing.T) *Manager {
	t.Helper()
	sys := machine.New(4, 0)
	nodes := sys.Module(machine.Cluster)
	devs := map[int]*nvme.Device{}
	for _, n := range nodes {
		devs[n.ID] = nvme.New(nvme.P3700())
	}
	m, err := New(Config{BuddyEvery: 2}, nil, nil, nodes, devs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBeginCheckpointIdempotent checks that re-beginning a step — another
// rank of the same collective, or a post-restart replay — returns the
// original plan without advancing the cadence.
func TestBeginCheckpointIdempotent(t *testing.T) {
	m := replayManager(t)
	p10 := m.BeginCheckpoint(10) // seq 1: local only
	p20 := m.BeginCheckpoint(20) // seq 2: local+buddy
	if len(p10) != 1 || len(p20) != 2 {
		t.Fatalf("cadence plans %v / %v, want [local] / [local buddy]", p10, p20)
	}
	// Other ranks of the same checkpoint see the same plan.
	for i := 0; i < 3; i++ {
		if got := m.BeginCheckpoint(20); len(got) != 2 {
			t.Fatalf("re-begun step 20 plan %v, want the original [local buddy]", got)
		}
	}
	// A replay that rewound past step 10 re-begins it: same plan, and the
	// cadence counter must not have moved — step 30 is the 3rd checkpoint.
	if got := m.BeginCheckpoint(10); len(got) != 1 {
		t.Fatalf("replayed step 10 plan %v, want the original [local]", got)
	}
	if p30 := m.BeginCheckpoint(30); len(p30) != 1 {
		t.Fatalf("step 30 plan %v, want [local] (seq 3)", p30)
	}
	if p40 := m.BeginCheckpoint(40); len(p40) != 2 {
		t.Fatalf("step 40 plan %v, want [local buddy] (seq 4)", p40)
	}
}
