package scr

import (
	"bytes"
	"testing"

	"clusterbooster/internal/beegfs"
	"clusterbooster/internal/fabric"
	"clusterbooster/internal/ioev"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/nvme"
	"clusterbooster/internal/vclock"
)

// fuzzOracle mirrors the manager's validity rules independently: per-step,
// per-rank flags for each level, the buddy ring, the failed-node
// invalidation, and the sealed-container rule for the global level.
type fuzzOracle struct {
	ranks  int
	steps  map[int]*oracleStep
	sealed map[int]bool
}

type oracleStep struct {
	local, buddy, global []bool
	wrote                []bool // current global round's writers
}

func newFuzzOracle(ranks int) *fuzzOracle {
	return &fuzzOracle{ranks: ranks, steps: map[int]*oracleStep{}, sealed: map[int]bool{}}
}

func (o *fuzzOracle) step(s int) *oracleStep {
	st := o.steps[s]
	if st == nil {
		st = &oracleStep{
			local:  make([]bool, o.ranks),
			buddy:  make([]bool, o.ranks),
			global: make([]bool, o.ranks),
			wrote:  make([]bool, o.ranks),
		}
		o.steps[s] = st
	}
	return st
}

func (o *fuzzOracle) checkpoint(s, rank int, levels []Level) {
	st := o.step(s)
	for _, lv := range levels {
		switch lv {
		case LevelLocal:
			st.local[rank] = true
		case LevelBuddy:
			st.buddy[rank] = true
		case LevelGlobal:
			// A write into a sealed container, or a rank writing twice into
			// an open one, starts a new round: the container is recreated
			// (Create truncates the path), the old round's chunks are gone.
			if st.wrote[rank] || o.sealed[s] {
				st.global = make([]bool, o.ranks)
				st.wrote = make([]bool, o.ranks)
				o.sealed[s] = false
			}
			st.global[rank] = true
			st.wrote[rank] = true
		}
	}
}

func (o *fuzzOracle) seal(s int) {
	if _, ok := o.steps[s]; ok {
		o.sealed[s] = true
	}
}

func (o *fuzzOracle) failNode(node int) {
	for s, st := range o.steps {
		// Open (written, unsealed) containers die with the job.
		if !o.sealed[s] {
			any := false
			for _, w := range st.wrote {
				any = any || w
			}
			if any {
				st.global = make([]bool, o.ranks)
				st.wrote = make([]bool, o.ranks)
			}
		}
		for rank := 0; rank < o.ranks; rank++ {
			if rank == node { // rank i lives on node i in the fuzz fixture
				st.local[rank] = false
			}
			if (rank+1)%o.ranks == node { // buddy copies held on the failed node
				st.buddy[rank] = false
			}
		}
	}
}

// best mirrors BestRestart: newest step where every rank has a level, local
// preferred, then buddy, then sealed global.
func (o *fuzzOracle) best() (int, []Level, bool) {
	bestStep := -1
	var bestLv []Level
	for s, st := range o.steps {
		if s <= bestStep {
			continue
		}
		lv := make([]Level, o.ranks)
		good := true
		for rank := 0; rank < o.ranks && good; rank++ {
			switch {
			case st.local[rank]:
				lv[rank] = LevelLocal
			case st.buddy[rank]:
				lv[rank] = LevelBuddy
			case st.global[rank] && o.sealed[s]:
				lv[rank] = LevelGlobal
			default:
				good = false
			}
		}
		if good {
			bestStep, bestLv = s, lv
		}
	}
	return bestStep, bestLv, bestStep >= 0
}

// FuzzBestRestart drives a manager with an arbitrary op sequence —
// checkpoints of arbitrary subsets at arbitrary steps and levels, node
// failures, container seals — and checks BestRestart against the oracle
// after every failure, then proves the chosen plan by restoring every rank
// from its selected level.
func FuzzBestRestart(f *testing.F) {
	// op encoding, one byte each: 0x00-0x5F checkpoint (step from bits 0-2,
	// rank subset cycles), 0x60-0x9F seal a step, 0xA0-0xFF fail a node.
	f.Add([]byte{0x01, 0x02, 0xA0})                   // two checkpoints, one failure
	f.Add([]byte{0x01, 0x61, 0xA1, 0x02, 0xA0})       // seal, fail, re-checkpoint, fail
	f.Add([]byte{0x03, 0xA0, 0xA1, 0xA2})             // cascade: every node dies
	f.Add([]byte{0x01, 0x01, 0x01, 0x61, 0x61, 0xA2}) // replayed rounds and double seals
	f.Add(bytes.Repeat([]byte{0x02, 0xA1}, 6))        // alternating checkpoint/failure
	f.Fuzz(func(t *testing.T, ops []byte) {
		const ranks = 3
		sys := machine.New(ranks, 0)
		nodes := sys.Module(machine.Cluster)
		devs := map[int]*nvme.Device{}
		for _, n := range nodes {
			devs[n.ID] = nvme.New(nvme.P3700())
		}
		net := fabric.New(sys, fabric.Config{})
		fs := beegfs.New(net, beegfs.Config{})
		// Every checkpoint hits all three levels: the interesting state space
		// is which copies survive, not the cadence.
		m, err := New(Config{BuddyEvery: 1, GlobalEvery: 1}, net, fs, nodes, devs)
		if err != nil {
			t.Fatal(err)
		}
		oracle := newFuzzOracle(ranks)
		payload := func(step, rank int) []byte {
			return []byte{byte('A' + step), byte(rank)}
		}

		var now vclock.Time
		for _, op := range ops {
			switch {
			case op < 0x60: // checkpoint one rank at one step
				step := int(op&0x07) + 1
				rank := int(op>>3) % ranks
				levels := m.BeginCheckpoint(step)
				a := ioev.Detach(nil, now)
				if err := m.Checkpoint(a, rank, step, payload(step, rank), levels); err != nil {
					t.Fatalf("checkpoint step %d rank %d: %v", step, rank, err)
				}
				if a.Now() < now {
					t.Fatalf("checkpoint completed at %v, before its start %v", a.Now(), now)
				}
				now = a.Now()
				oracle.checkpoint(step, rank, levels)
			case op < 0xA0: // seal a step's global container
				step := int(op&0x07) + 1
				a := ioev.Detach(nil, now)
				if err := m.CompleteGlobal(a, step, 0); err != nil {
					t.Fatalf("complete step %d: %v", step, err)
				}
				now = vclock.Max(now, a.Now())
				oracle.seal(step)
			default: // fail a node
				node := int(op) % ranks
				m.FailNode(nodes[node].ID)
				oracle.failNode(node)
			}

			// The invariant: after every op, BestRestart matches the oracle.
			step, levels, ok := m.BestRestart()
			wantStep, wantLv, wantOK := oracle.best()
			if ok != wantOK {
				t.Fatalf("BestRestart ok=%v, oracle %v", ok, wantOK)
			}
			if !ok {
				continue
			}
			if step != wantStep {
				t.Fatalf("BestRestart step %d, oracle %d", step, wantStep)
			}
			for rank := range levels {
				if levels[rank] != wantLv[rank] {
					t.Fatalf("step %d rank %d level %v, oracle %v", step, rank, levels[rank], wantLv[rank])
				}
			}
			// Prove the plan: every rank restores its own bytes.
			for rank := 0; rank < ranks; rank++ {
				data, err := m.Restore(ioev.Detach(nil, now), rank, step, levels[rank])
				if err != nil {
					t.Fatalf("restore step %d rank %d from %v: %v", step, rank, levels[rank], err)
				}
				if !bytes.Equal(data, payload(step, rank)) {
					t.Fatalf("restore step %d rank %d from %v: got %q, want %q",
						step, rank, levels[rank], data, payload(step, rank))
				}
			}
		}
	})
}
