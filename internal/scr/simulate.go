package scr

import (
	"fmt"
	"math"
	"math/rand"

	"clusterbooster/internal/vclock"
)

// SimParams describes a long-running job under the failure model of §III-D:
// the DEEP-ER SCR extension decides "where and how often checkpoints are
// performed, based on a failure model of the DEEP-ER prototype". SimulateRun
// plays the job forward against exponentially distributed failures so the
// checkpoint-interval policy can be evaluated (and the Young/Daly rule
// validated).
type SimParams struct {
	// Work is the total useful computation the job must complete.
	Work vclock.Time
	// Interval is the useful work between checkpoints.
	Interval vclock.Time
	// CheckpointCost is the time one checkpoint takes.
	CheckpointCost vclock.Time
	// RestartCost is the time to restore after a failure.
	RestartCost vclock.Time
	// MTBF is the system mean time between failures.
	MTBF vclock.Time
	// Seed makes the failure sequence reproducible.
	Seed int64
}

// SimOutcome summarises one simulated execution.
type SimOutcome struct {
	// WallTime is the total time to complete the work.
	WallTime vclock.Time
	// Failures is the number of failures survived.
	Failures int
	// LostWork is the recomputed time (work since the last checkpoint at
	// each failure).
	LostWork vclock.Time
	// CheckpointTime is the total time spent writing checkpoints.
	CheckpointTime vclock.Time
	// Overhead is (WallTime − Work) / Work.
	Overhead float64
}

// SimulateRun executes the renewal process: compute in checkpoint intervals,
// with failures striking at exponential times; each failure loses the work
// since the last completed checkpoint and pays the restart cost.
func SimulateRun(p SimParams) (SimOutcome, error) {
	if p.Work <= 0 || p.Interval <= 0 || p.MTBF <= 0 {
		return SimOutcome{}, fmt.Errorf("scr: invalid simulation parameters %+v", p)
	}
	if p.CheckpointCost < 0 || p.RestartCost < 0 {
		return SimOutcome{}, fmt.Errorf("scr: negative costs")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	nextFailure := func() vclock.Time {
		return vclock.Time(rng.ExpFloat64() * p.MTBF.Seconds())
	}

	var out SimOutcome
	var wall vclock.Time
	var doneWork vclock.Time // work safely behind a checkpoint
	failAt := wall + nextFailure()

	for doneWork < p.Work {
		segment := p.Interval
		if rem := p.Work - doneWork; rem < segment {
			segment = rem
		}
		segEnd := wall + segment + p.CheckpointCost
		if failAt < segEnd {
			// Failure mid-segment: everything since the last checkpoint is
			// lost; pay restart and draw the next failure.
			lost := failAt - wall
			if lost > segment {
				lost = segment // failure during the checkpoint write
			}
			out.Failures++
			out.LostWork += lost
			wall = failAt + p.RestartCost
			failAt = wall + nextFailure()
			continue
		}
		wall = segEnd
		doneWork += segment
		out.CheckpointTime += p.CheckpointCost
	}
	out.WallTime = wall
	out.Overhead = (wall - p.Work).Seconds() / p.Work.Seconds()
	return out, nil
}

// SweepIntervals runs the simulation across candidate checkpoint intervals
// and returns the interval with the lowest wall time — the empirical optimum
// to compare against OptimalInterval's prediction.
func SweepIntervals(base SimParams, intervals []vclock.Time) (best vclock.Time, outcomes map[vclock.Time]SimOutcome, err error) {
	if len(intervals) == 0 {
		return 0, nil, fmt.Errorf("scr: no intervals to sweep")
	}
	outcomes = make(map[vclock.Time]SimOutcome, len(intervals))
	bestWall := vclock.Time(math.Inf(1))
	for _, iv := range intervals {
		p := base
		p.Interval = iv
		o, e := SimulateRun(p)
		if e != nil {
			return 0, nil, e
		}
		outcomes[iv] = o
		if o.WallTime < bestWall {
			bestWall, best = o.WallTime, iv
		}
	}
	return best, outcomes, nil
}
