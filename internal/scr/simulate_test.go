package scr

import (
	"math"
	"testing"

	"clusterbooster/internal/vclock"
)

func TestSimulateNoFailures(t *testing.T) {
	// With an astronomically long MTBF, wall time = work + checkpoints.
	p := SimParams{
		Work:           100 * vclock.Second,
		Interval:       10 * vclock.Second,
		CheckpointCost: 1 * vclock.Second,
		RestartCost:    5 * vclock.Second,
		MTBF:           1e12 * vclock.Second,
		Seed:           1,
	}
	o, err := SimulateRun(p)
	if err != nil {
		t.Fatal(err)
	}
	if o.Failures != 0 {
		t.Fatalf("%d failures under infinite MTBF", o.Failures)
	}
	want := 110 * vclock.Second // 100 work + 10 checkpoints
	if math.Abs((o.WallTime - want).Seconds()) > 1e-9 {
		t.Errorf("wall = %v, want %v", o.WallTime, want)
	}
	if math.Abs(o.Overhead-0.1) > 1e-9 {
		t.Errorf("overhead = %v, want 0.1", o.Overhead)
	}
}

func TestSimulateWithFailuresCostsMore(t *testing.T) {
	base := SimParams{
		Work:           1000 * vclock.Second,
		Interval:       50 * vclock.Second,
		CheckpointCost: 2 * vclock.Second,
		RestartCost:    10 * vclock.Second,
		Seed:           7,
	}
	pSafe := base
	pSafe.MTBF = 1e12 * vclock.Second
	safe, _ := SimulateRun(pSafe)
	pRisky := base
	pRisky.MTBF = 500 * vclock.Second
	risky, err := SimulateRun(pRisky)
	if err != nil {
		t.Fatal(err)
	}
	if risky.Failures == 0 {
		t.Fatal("no failures at MTBF=500s over >1000s of work")
	}
	if risky.WallTime <= safe.WallTime {
		t.Errorf("failures free of charge: %v vs %v", risky.WallTime, safe.WallTime)
	}
	if risky.LostWork <= 0 {
		t.Error("failures lost no work")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := SimParams{
		Work: 500 * vclock.Second, Interval: 20 * vclock.Second,
		CheckpointCost: vclock.Second, RestartCost: 3 * vclock.Second,
		MTBF: 200 * vclock.Second, Seed: 42,
	}
	a, _ := SimulateRun(p)
	b, _ := SimulateRun(p)
	if a != b {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", a, b)
	}
	p.Seed = 43
	c, _ := SimulateRun(p)
	if a == c {
		t.Fatal("different seeds, identical outcome (suspicious)")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := SimulateRun(SimParams{}); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := SimulateRun(SimParams{Work: 1, Interval: 1, MTBF: 1, CheckpointCost: -1}); err == nil {
		t.Error("negative cost accepted")
	}
}

// TestDalyIntervalNearOptimal validates the §III-D planning rule: the
// Young/Daly interval must be close to the empirical optimum of the renewal
// simulation — and strictly better than checkpointing far too often or far
// too rarely.
func TestDalyIntervalNearOptimal(t *testing.T) {
	base := SimParams{
		Work:           20000 * vclock.Second,
		CheckpointCost: 5 * vclock.Second,
		RestartCost:    20 * vclock.Second,
		MTBF:           1000 * vclock.Second,
		Seed:           2024,
	}
	daly := OptimalInterval(base.CheckpointCost, base.MTBF) // √(2·5·1000) = 100 s
	if math.Abs(daly.Seconds()-100) > 1e-9 {
		t.Fatalf("daly = %v", daly)
	}
	intervals := []vclock.Time{
		daly / 10, daly / 3, daly, 3 * daly, 10 * daly,
	}
	// Average a few seeds to tame renewal noise.
	wall := map[vclock.Time]float64{}
	for seed := int64(0); seed < 5; seed++ {
		p := base
		p.Seed = seed
		_, outs, err := SweepIntervals(p, intervals)
		if err != nil {
			t.Fatal(err)
		}
		for iv, o := range outs {
			wall[iv] += o.WallTime.Seconds() / 5
		}
	}
	if wall[daly] >= wall[daly/10] {
		t.Errorf("daly (%.0fs wall) not better than over-checkpointing (%.0fs)", wall[daly], wall[daly/10])
	}
	if wall[daly] >= wall[10*daly] {
		t.Errorf("daly (%.0fs wall) not better than under-checkpointing (%.0fs)", wall[daly], wall[10*daly])
	}
}
