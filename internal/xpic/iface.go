package xpic

import (
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
)

// Interface buffers (Fig. 5 of the paper): the field solver and the particle
// solver do not touch each other's data structures; they communicate through
// flat pack/unpack buffers. In mono mode the buffer stays in memory (the
// cpyToArr/cpyFromArr calls of Listing 1); in Cluster-Booster mode the same
// buffers are the payload of the inter-communicator messages (Listings 2–4).

// packFields serialises the local real rows of the named fields into one
// flat buffer and charges the copy cost (cpyToArr).
func packFields(p *psmpi.Proc, g *Grid, names []string) []float64 {
	span := g.NX * g.LY // the real rows are contiguous: [NX, NX·(LY+1))
	buf := make([]float64, len(names)*span)
	for i, name := range names {
		copy(buf[i*span:(i+1)*span], g.F(name)[g.NX:g.NX+span])
	}
	p.Compute(machine.Work{Class: machine.KernelStream, Bytes: float64(8 * len(buf))})
	return buf
}

// unpackFields deserialises a flat buffer into the local real rows of the
// named fields and charges the copy cost (cpyFromArr).
func unpackFields(p *psmpi.Proc, g *Grid, names []string, buf []float64) {
	span := g.NX * g.LY
	i := 0
	for _, name := range names {
		copy(g.F(name)[g.NX:g.NX+span], buf[i:i+span])
		i += span
	}
	p.Compute(machine.Work{Class: machine.KernelStream, Bytes: float64(8 * i)})
}
