package xpic

import (
	"math"
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/vclock"
)

func newRuntime(c, b int) *psmpi.Runtime {
	sys := machine.New(c, b)
	return psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
}

// newRuntimeFastSpawn shrinks the spawn overhead so short test runs are not
// dominated by job startup (the real benches run hundreds of steps where the
// 25 ms spawn is negligible, as on the prototype).
func newRuntimeFastSpawn(c, b int) *psmpi.Runtime {
	sys := machine.New(c, b)
	return psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}),
		psmpi.Config{SpawnOverhead: vclock.Microsecond})
}

func clusterNodes(rt *psmpi.Runtime, n int) []*machine.Node {
	return rt.System().Module(machine.Cluster)[:n]
}

func boosterNodes(rt *psmpi.Runtime, n int) []*machine.Node {
	return rt.System().Module(machine.Booster)[:n]
}

func TestConfigValidate(t *testing.T) {
	cfg := Table2Config()
	if err := cfg.Validate(1); err != nil {
		t.Fatalf("Table II config invalid: %v", err)
	}
	if err := cfg.Validate(8); err != nil {
		t.Fatalf("8-rank Table II config invalid: %v", err)
	}
	if err := cfg.Validate(7); err == nil {
		t.Error("indivisible decomposition accepted")
	}
	bad := cfg
	bad.PPC = 3
	if err := bad.Validate(1); err == nil {
		t.Error("PPC not divisible by species accepted")
	}
	bad = cfg
	bad.ParticleScale = 0
	if err := bad.Validate(1); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestTable2Numbers(t *testing.T) {
	cfg := Table2Config()
	if cfg.Cells() != 4096 {
		t.Errorf("cells = %d, want 4096 (Table II)", cfg.Cells())
	}
	if cfg.PPC != 2048 {
		t.Errorf("PPC = %d, want 2048 (Table II)", cfg.PPC)
	}
	if cfg.TotalParticles() != 4096*2048 {
		t.Errorf("total particles = %d", cfg.TotalParticles())
	}
}

func TestMonoRunsAndConservesCharge(t *testing.T) {
	rt := newRuntime(2, 2)
	cfg := QuickConfig(10)
	rep, err := RunMono(rt, clusterNodes(rt, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ClusterOnly {
		t.Errorf("mode = %v", rep.Mode)
	}
	// Equal electron and ion macro-charge: total must vanish.
	if math.Abs(rep.TotalCharge) > 1e-9 {
		t.Errorf("net charge = %v, want 0", rep.TotalCharge)
	}
	if rep.Makespan <= 0 || rep.FieldTime <= 0 || rep.ParticleTime <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
	if rep.CGIters < cfg.Steps {
		t.Errorf("CG iterations %d suspiciously low for %d steps", rep.CGIters, cfg.Steps)
	}
}

func TestEnergiesFiniteAndBounded(t *testing.T) {
	rt := newRuntime(1, 0)
	cfg := QuickConfig(30)
	rep, err := RunMono(rt, clusterNodes(rt, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.FieldEnergy) || math.IsInf(rep.FieldEnergy, 0) {
		t.Fatalf("field energy = %v", rep.FieldEnergy)
	}
	if math.IsNaN(rep.KineticEnergy) || rep.KineticEnergy <= 0 {
		t.Fatalf("kinetic energy = %v", rep.KineticEnergy)
	}
	// A thermal plasma at rest must not blow up: field energy stays a small
	// fraction of kinetic energy (implicit scheme is damping).
	if rep.FieldEnergy > rep.KineticEnergy {
		t.Errorf("field energy %v exceeds kinetic %v: numerical instability",
			rep.FieldEnergy, rep.KineticEnergy)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := QuickConfig(8)
	run := func() Report {
		rt := newRuntime(2, 0)
		rep, err := RunMono(rt, clusterNodes(rt, 2), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Checksum != b.Checksum {
		t.Errorf("checksums differ across identical runs: %v vs %v", a.Checksum, b.Checksum)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("virtual times differ across identical runs: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.FieldEnergy != b.FieldEnergy {
		t.Errorf("field energies differ: %v vs %v", a.FieldEnergy, b.FieldEnergy)
	}
}

// TestScaleInvariantTiming checks design decision 2 of DESIGN.md: virtual
// times do not depend on the fidelity knob.
func TestScaleInvariantTiming(t *testing.T) {
	base := QuickConfig(5)
	base.PPC = 64
	var spans []float64
	for _, scale := range []int{2, 4, 8} {
		cfg := base
		cfg.ParticleScale = scale
		rt := newRuntime(1, 0)
		rep, err := RunMono(rt, clusterNodes(rt, 1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, rep.ParticleTime.Seconds())
	}
	for i := 1; i < len(spans); i++ {
		if rel := math.Abs(spans[i]-spans[0]) / spans[0]; rel > 0.02 {
			t.Errorf("particle time varies with scale: %v (rel %v)", spans, rel)
		}
	}
}

// TestSplitMatchesMonoPhysics is the key integration test: the Cluster-
// Booster split mode must compute exactly the same physics as mono mode.
func TestSplitMatchesMonoPhysics(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		cfg := QuickConfig(6)
		rtM := newRuntime(4, 4)
		mono, err := RunMono(rtM, clusterNodes(rtM, ranks), cfg)
		if err != nil {
			t.Fatalf("mono/%d: %v", ranks, err)
		}
		rtS := newRuntime(4, 4)
		split, err := RunSplit(rtS, boosterNodes(rtS, ranks), ranks, cfg)
		if err != nil {
			t.Fatalf("split/%d: %v", ranks, err)
		}
		if mono.Checksum != split.Checksum {
			t.Errorf("ranks=%d: particle checksums differ: mono %v split %v",
				ranks, mono.Checksum, split.Checksum)
		}
		if mono.FieldEnergy != split.FieldEnergy {
			t.Errorf("ranks=%d: field energies differ: mono %v split %v",
				ranks, mono.FieldEnergy, split.FieldEnergy)
		}
		if mono.KineticEnergy != split.KineticEnergy {
			t.Errorf("ranks=%d: kinetic energies differ: mono %v split %v",
				ranks, mono.KineticEnergy, split.KineticEnergy)
		}
	}
}

// TestFieldSolverFasterOnCluster verifies the §IV-C statement: the field
// solver runs ~6× faster on a Cluster node than on a Booster node.
func TestFieldSolverFasterOnCluster(t *testing.T) {
	cfg := QuickConfig(10)
	rtC := newRuntime(1, 1)
	c, err := RunMono(rtC, clusterNodes(rtC, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rtB := newRuntime(1, 1)
	b, err := RunMono(rtB, boosterNodes(rtB, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := b.FieldTime.Seconds() / c.FieldTime.Seconds()
	if ratio < 5.0 || ratio > 7.0 {
		t.Errorf("field-solver Cluster advantage = %.2f, want ≈6 (paper §IV-C)", ratio)
	}
}

// TestParticleSolverFasterOnBooster verifies the 1.35× Booster advantage.
func TestParticleSolverFasterOnBooster(t *testing.T) {
	cfg := QuickConfig(10)
	rtC := newRuntime(1, 1)
	c, err := RunMono(rtC, clusterNodes(rtC, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rtB := newRuntime(1, 1)
	b, err := RunMono(rtB, boosterNodes(rtB, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := c.ParticleTime.Seconds() / b.ParticleTime.Seconds()
	if ratio < 1.2 || ratio > 1.5 {
		t.Errorf("particle-solver Booster advantage = %.2f, want ≈1.35 (paper §IV-C)", ratio)
	}
}

// TestSplitBeatsBothMonoModes verifies the headline result: C+B mode is
// faster than running on either module alone.
func TestSplitBeatsBothMonoModes(t *testing.T) {
	cfg := QuickConfig(12)
	cfg.PPC = 256 // enough particle weight for the realistic ratio
	rtC := newRuntime(1, 1)
	c, err := RunMono(rtC, clusterNodes(rtC, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rtB := newRuntime(1, 1)
	b, err := RunMono(rtB, boosterNodes(rtB, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rtS := newRuntimeFastSpawn(1, 1)
	s, err := RunSplit(rtS, boosterNodes(rtS, 1), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan >= c.Makespan {
		t.Errorf("C+B (%v) not faster than Cluster (%v)", s.Makespan, c.Makespan)
	}
	if s.Makespan >= b.Makespan {
		t.Errorf("C+B (%v) not faster than Booster (%v)", s.Makespan, b.Makespan)
	}
}

func TestParticleMigrationKeepsCount(t *testing.T) {
	rt := newRuntime(4, 0)
	cfg := QuickConfig(15)
	rep, err := RunMono(rt, clusterNodes(rt, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Charge conservation implies no particles were lost in migration
	// (each species' count is encoded in the total charge staying zero,
	// and the checksum is finite).
	if math.Abs(rep.TotalCharge) > 1e-9 {
		t.Errorf("charge drifted to %v after migration", rep.TotalCharge)
	}
	if math.IsNaN(rep.Checksum) {
		t.Error("checksum NaN")
	}
}

func TestGridHaloLocalWrap(t *testing.T) {
	g := NewGrid(8, 8, 0, 1)
	a := g.F(FEx)
	for ix := 0; ix < 8; ix++ {
		a[g.Idx(ix, 1)] = 100 + float64(ix) // bottom row
		a[g.Idx(ix, 8)] = 200 + float64(ix) // top row
	}
	// Single-rank exchange = periodic copy.
	g.ExchangeHalos(nil, nil, FEx)
	if a[g.Idx(3, 0)] != 203 {
		t.Errorf("ghost 0 = %v, want 203", a[g.Idx(3, 0)])
	}
	if a[g.Idx(5, 9)] != 105 {
		t.Errorf("ghost top = %v, want 105", a[g.Idx(5, 9)])
	}
}

func TestWrapX(t *testing.T) {
	g := NewGrid(8, 8, 0, 1)
	cases := map[int]int{-1: 7, 0: 0, 7: 7, 8: 0, 15: 7, -8: 0}
	for in, want := range cases {
		if got := g.WrapX(in); got != want {
			t.Errorf("WrapX(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCGConverges(t *testing.T) {
	// The field solve must converge well below the iteration cap on the
	// quick workload.
	rt := newRuntime(1, 0)
	cfg := QuickConfig(5)
	rep, err := RunMono(rt, clusterNodes(rt, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxIters := cfg.Steps * cfg.CGMaxIter
	if rep.CGIters >= maxIters {
		t.Errorf("CG hit the iteration cap (%d)", rep.CGIters)
	}
}

func TestExchangeFractionSmall(t *testing.T) {
	// §IV-C: the Cluster↔Booster exchange is a small fraction of the total.
	rt := newRuntimeFastSpawn(1, 1)
	cfg := QuickConfig(12)
	cfg.PPC = 2048 // particle-heavy, like the real Table II workload
	if testing.Short() {
		// The overhead fraction is scale-invariant in the particle count;
		// -short checks the same property on a lighter particle load.
		cfg.PPC = 512
	}
	rep, err := RunSplit(rt, boosterNodes(rt, 1), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := rep.OverheadFraction(); f > 0.25 {
		t.Errorf("coupling overhead = %.1f%%, expect small", 100*f)
	}
}
