package xpic

import (
	"math"
	"math/rand"
	"testing"
)

// TestStencilMatchesReference pins the hot-path stencil (makeStencil +
// gather/scatter, the inlined form Move and Gather run) to the reference
// interp/deposit implementations, bit for bit, over random positions —
// including the x == NX wrap boundary and row edges.
func TestStencilMatchesReference(t *testing.T) {
	g := NewGrid(8, 16, 0, 1)
	ps := &ParticleSolver{g: g, cfg: QuickConfig(1)}
	rng := rand.New(rand.NewSource(99))
	a := make([]float64, 8*(16+2))
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	b := append([]float64(nil), a...)

	xs := []float64{0, 0.5, 7.999999, 8} // 8 == NX: the wrap-boundary edge
	ys := []float64{0, 0.25, 15.5, 15.999}
	for k := 0; k < 500; k++ {
		x := rng.Float64() * 8
		y := rng.Float64() * 16
		if k < len(xs) {
			x = xs[k]
		}
		if k < len(ys) {
			y = ys[k]
		}
		st := makeStencil(x, y, float64(g.Y0), g.NX)
		if got, want := st.gather(a), ps.interp(a, x, y); got != want || math.IsNaN(got) {
			t.Fatalf("gather(%v,%v) = %v, interp = %v", x, y, got, want)
		}
		w := rng.NormFloat64()
		st.scatter(a, w)
		ps.deposit(b, x, y, w)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("scatter(%v,%v,%v) diverged from deposit at cell %d: %v != %v", x, y, w, i, a[i], b[i])
			}
		}
	}
}

// TestWrapPeriodicMatchesMod pins wrapPeriodic to the reference
// `Mod(x, l); if x < 0 { x += l }` form, bit for bit, across single- and
// multi-period excursions and exact boundaries.
func TestWrapPeriodicMatchesMod(t *testing.T) {
	ref := func(x, l float64) float64 {
		x = math.Mod(x, l)
		if x < 0 {
			x += l
		}
		return x
	}
	const l = 64.0
	cases := []float64{0, 0.5, l - 1e-12, l, l + 0.25, 2 * l, 2*l + 3, 17 * l,
		-1e-12, -0.5, -l, -l - 0.25, -5*l - 3}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64() * 3 * l
		if i < len(cases) {
			x = cases[i]
		}
		got, want := wrapPeriodic(x, l), ref(x, l)
		if got != want && !(got == 0 && want == 0) { // ±0.0 compare equal
			t.Fatalf("wrapPeriodic(%v) = %v, want %v", x, got, want)
		}
	}
}
