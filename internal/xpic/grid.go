package xpic

import (
	"clusterbooster/internal/psmpi"
)

// Grid is one rank's slab of the global 2-D periodic grid: rows are
// decomposed over the ranks of a solver communicator; each local array has
// one ghost row below (index 0) and one above (index ly+1).
type Grid struct {
	NX     int // global (and local) columns
	NY     int // global rows
	LY     int // local real rows (NY / ranks)
	Rank   int // slab index
	Ranks  int // slabs
	Y0     int // first global row of this slab
	fields map[string][]float64
}

// Field names used by the solvers.
const (
	FEx, FEy, FEz = "Ex", "Ey", "Ez"
	FBx, FBy, FBz = "Bx", "By", "Bz"
	FRho          = "Rho"
	FJx, FJy, FJz = "Jx", "Jy", "Jz"
	// FRhoE is the electron charge-density magnitude, the moment the
	// implicit-moment field solver needs to assemble the plasma
	// susceptibility of its implicit operator.
	FRhoE = "RhoE"
)

// FieldNames lists the electromagnetic field components.
var FieldNames = []string{FEx, FEy, FEz, FBx, FBy, FBz}

// MomentNames lists the particle-moment components shipped from the particle
// solver to the field solver (the ρ,J of Fig. 5, plus the electron density
// for the susceptibility assembly).
var MomentNames = []string{FRho, FJx, FJy, FJz, FRhoE}

// NewGrid builds the slab for the given rank.
func NewGrid(nx, ny, rank, ranks int) *Grid {
	ly := ny / ranks
	g := &Grid{
		NX: nx, NY: ny, LY: ly,
		Rank: rank, Ranks: ranks, Y0: rank * ly,
		fields: map[string][]float64{},
	}
	for _, name := range FieldNames {
		g.fields[name] = make([]float64, nx*(ly+2))
	}
	for _, name := range MomentNames {
		g.fields[name] = make([]float64, nx*(ly+2))
	}
	return g
}

// F returns the named field array (with ghost rows).
func (g *Grid) F(name string) []float64 { return g.fields[name] }

// Idx converts local coordinates (ix in [0,NX), iy in [0, LY+2)) to the array
// index; iy=0 and iy=LY+1 are the ghost rows.
func (g *Grid) Idx(ix, iy int) int { return iy*g.NX + ix }

// WrapX wraps a column index periodically.
func (g *Grid) WrapX(ix int) int {
	ix %= g.NX
	if ix < 0 {
		ix += g.NX
	}
	return ix
}

// Row returns a copy of row iy of the named field (real row indices 1..LY,
// ghosts 0 and LY+1).
func (g *Grid) Row(name string, iy int) []float64 {
	a := g.F(name)
	out := make([]float64, g.NX)
	copy(out, a[g.Idx(0, iy):g.Idx(0, iy)+g.NX])
	return out
}

// SetRow overwrites row iy of the named field.
func (g *Grid) SetRow(name string, iy int, row []float64) {
	a := g.F(name)
	copy(a[g.Idx(0, iy):g.Idx(0, iy)+g.NX], row)
}

// AddRow accumulates into row iy of the named field.
func (g *Grid) AddRow(name string, iy int, row []float64) {
	a := g.F(name)
	base := g.Idx(0, iy)
	for i, v := range row {
		a[base+i] += v
	}
}

// ClearGhosts zeroes the ghost rows of the named fields.
func (g *Grid) ClearGhosts(names ...string) {
	for _, name := range names {
		a := g.F(name)
		for ix := 0; ix < g.NX; ix++ {
			a[g.Idx(ix, 0)] = 0
			a[g.Idx(ix, g.LY+1)] = 0
		}
	}
}

// Zero clears the named fields entirely (ghosts included).
func (g *Grid) Zero(names ...string) {
	for _, name := range names {
		a := g.F(name)
		for i := range a {
			a[i] = 0
		}
	}
}

// Halo communication tags (user tag space).
const (
	tagHaloUp   = 1 // payload travelling towards higher slab index
	tagHaloDown = 2
	tagMomUp    = 3
	tagMomDown  = 4
	tagPartUp   = 5
	tagPartDown = 6
	tagPartCnt  = 7
	tagIfaceF   = 8 // interface buffer: fields Cluster → Booster
	tagIfaceM   = 9 // interface buffer: moments Booster → Cluster
)

// up/down neighbours in the periodic slab ring.
func (g *Grid) up() int   { return (g.Rank + 1) % g.Ranks }
func (g *Grid) down() int { return (g.Rank - 1 + g.Ranks) % g.Ranks }

// ExchangeHalos fills the ghost rows of the named fields from the
// neighbouring slabs (periodic): ghost 0 receives the neighbour-below's top
// row, ghost LY+1 the neighbour-above's bottom row. All components are packed
// into one message per direction, as the real code does.
//
// p is the calling rank's process and comm the solver communicator; with one
// rank the exchange degenerates to a local periodic copy.
func (g *Grid) ExchangeHalos(p *psmpi.Proc, comm *psmpi.Comm, names ...string) {
	nx := g.NX
	if g.Ranks == 1 {
		for _, name := range names {
			a := g.F(name)
			copy(a[:nx], a[g.LY*nx:(g.LY+1)*nx])
			copy(a[(g.LY+1)*nx:(g.LY+2)*nx], a[nx:2*nx])
		}
		return
	}
	// pack copies row iy of every named field into one fresh buffer; the
	// buffer is handed to Isend directly (never reused), so no further
	// value-semantics copy is needed.
	pack := func(iy int) []float64 {
		buf := make([]float64, len(names)*nx)
		for i, name := range names {
			copy(buf[i*nx:(i+1)*nx], g.F(name)[iy*nx:(iy+1)*nx])
		}
		return buf
	}
	unpack := func(iy int, buf []float64) {
		for i, name := range names {
			g.SetRow(name, iy, buf[i*nx:(i+1)*nx])
		}
	}
	// Top real row travels up (becomes up-neighbour's ghost 0);
	// bottom real row travels down (becomes down-neighbour's ghost LY+1).
	bufUp, bufDn := pack(g.LY), pack(1)
	reqUp := p.IsendF64Shared(comm, g.up(), tagHaloUp, bufUp)
	reqDn := p.IsendF64Shared(comm, g.down(), tagHaloDown, bufDn)
	fromDn, _ := p.RecvF64Shared(comm, g.down(), tagHaloUp)
	unpack(0, fromDn)
	fromUp, _ := p.RecvF64Shared(comm, g.up(), tagHaloDown)
	unpack(g.LY+1, fromUp)
	p.Waitall(reqUp, reqDn)
}

// ReduceMomentHalos sends the deposits accumulated in the ghost rows to the
// neighbours that own those rows, where they are added to the boundary real
// rows, and clears the ghosts — the "halo add" step after moment gathering.
func (g *Grid) ReduceMomentHalos(p *psmpi.Proc, comm *psmpi.Comm) {
	names := MomentNames
	if g.Ranks == 1 {
		for _, name := range names {
			g.AddRow(name, g.LY, g.Row(name, 0))
			g.AddRow(name, 1, g.Row(name, g.LY+1))
		}
		g.ClearGhosts(names...)
		return
	}
	pack := func(iy int) []float64 {
		buf := make([]float64, len(names)*g.NX)
		for i, name := range names {
			copy(buf[i*g.NX:(i+1)*g.NX], g.F(name)[iy*g.NX:(iy+1)*g.NX])
		}
		return buf
	}
	// Ghost LY+1 holds deposits belonging to the up-neighbour's row 1;
	// ghost 0 belongs to the down-neighbour's row LY.
	bufUp, bufDn := pack(g.LY+1), pack(0)
	reqUp := p.IsendF64Shared(comm, g.up(), tagMomUp, bufUp)
	reqDn := p.IsendF64Shared(comm, g.down(), tagMomDown, bufDn)
	fromDn, _ := p.RecvF64Shared(comm, g.down(), tagMomUp)
	buf := fromDn
	for i, name := range names {
		g.AddRow(name, 1, buf[i*g.NX:(i+1)*g.NX])
	}
	fromUp, _ := p.RecvF64Shared(comm, g.up(), tagMomDown)
	buf = fromUp
	for i, name := range names {
		g.AddRow(name, g.LY, buf[i*g.NX:(i+1)*g.NX])
	}
	p.Waitall(reqUp, reqDn)
	g.ClearGhosts(names...)
}
