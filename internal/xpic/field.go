package xpic

import (
	"math"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
)

// FieldSolver implements the implicit-moment field solve of xPic (the fld
// object of Listing 1): Maxwell's equations advanced with an implicit,
// unconditionally stable θ-scheme. Eliminating B^{n+1} from the coupled
// Ampère/Faraday update yields the curl-curl system
//
//	(I + d² ∇×∇×) E^{n+1} = E^n + Δt (c²∇×B^n − J)     with d = c·θ·Δt
//
// which is symmetric positive definite and solved by conjugate gradients.
// Every CG iteration applies two curls (with a halo exchange between them)
// and performs two global reductions — exactly the latency-sensitive,
// limited-parallelism workload the paper assigns to the Cluster. The
// magnetic field then advances explicitly with Faraday's law,
// B^{n+1} = B^n − Δt ∇×E^{n+1}.
type FieldSolver struct {
	g   *Grid
	cfg Config

	// CG work vectors, one per E component, sized like the field arrays.
	r, pv, ap [3][]float64
	// cc is the intermediate curl buffer of the curl-curl matvec.
	cc [3][]float64
	// chi is the per-cell plasma susceptibility assembled each step from the
	// electron density moment — the implicit-moment "dressing" of the field
	// operator (the mass-matrix term of the implicit moment method, without
	// the magnetisation rotation, a documented simplification).
	chi []float64

	// LastIters reports the CG iteration count of the most recent solve.
	LastIters int
}

// Flop-count constants for the virtual cost model (per cell, double
// precision), derived from the stencil arithmetic below.
const (
	flopsCurlPerCell   = 8.0                      // central-difference curl, per component
	flopsMatvecPerCell = 2*3*flopsCurlPerCell + 9 // two full curls + (1+χ) axpy
	flopsCGVecPerCell  = 10.0                     // two dots + three axpys per component
	flopsRHSPerCell    = 12.0                     // curl(B) + scale + add, per component
	flopsChiPerCell    = 3.0                      // susceptibility assembly
)

// NewFieldSolver builds the solver over a grid slab.
func NewFieldSolver(g *Grid, cfg Config) *FieldSolver {
	fs := &FieldSolver{g: g, cfg: cfg}
	n := len(g.F(FEx))
	for c := 0; c < 3; c++ {
		fs.r[c] = make([]float64, n)
		fs.pv[c] = make([]float64, n)
		fs.ap[c] = make([]float64, n)
		fs.cc[c] = make([]float64, n)
	}
	fs.chi = make([]float64, n)
	return fs
}

// eComponents returns the three E-field arrays.
func (fs *FieldSolver) eComponents() [3][]float64 {
	return [3][]float64{fs.g.F(FEx), fs.g.F(FEy), fs.g.F(FEz)}
}

// curl computes out = ∇×in over the real rows (2-D fields, ∂/∂z = 0, central
// differences, Δx = Δy = 1). in must have valid halos. The loop hoists the
// row bases and wraps the column neighbours with compares instead of modulo
// — pure index arithmetic, bit-identical results.
func (fs *FieldSolver) curl(out, in *[3][]float64) {
	g := fs.g
	nx := g.NX
	inx, iny, inz := in[0], in[1], in[2]
	ox, oy, oz := out[0], out[1], out[2]
	for iy := 1; iy <= g.LY; iy++ {
		row := iy * nx
		yr, zr := iny[row:row+nx], inz[row:row+nx]
		xu, zu := inx[row+nx:row+2*nx], inz[row+nx:row+2*nx]
		xd, zd := inx[row-nx:row], inz[row-nx:row]
		oxr, oyr, ozr := ox[row:row+nx], oy[row:row+nx], oz[row:row+nx]
		cell := func(ix, ixp, ixm int) {
			dZdY := (zu[ix] - zd[ix]) / 2
			dZdX := (zr[ixp] - zr[ixm]) / 2
			dYdX := (yr[ixp] - yr[ixm]) / 2
			dXdY := (xu[ix] - xd[ix]) / 2
			oxr[ix] = dZdY
			oyr[ix] = -dZdX
			ozr[ix] = dYdX - dXdY
		}
		// Periodic edges split out of the branch-free interior loop.
		// Precondition: nx >= 2 (Config.Validate enforces NX >= 4).
		cell(0, 1, nx-1)
		for ix := 1; ix < nx-1; ix++ {
			cell(ix, ix+1, ix-1)
		}
		cell(nx-1, 0, nx-2)
	}
}

// applyCurlCurl computes out = ((1+χ)I + d² ∇×∇×) in over the real rows,
// where χ is the per-cell plasma susceptibility. in must have valid halos;
// the intermediate curl is halo-exchanged over comm (the second stencil
// application needs neighbour values of the first's result).
func (fs *FieldSolver) applyCurlCurl(p *psmpi.Proc, comm *psmpi.Comm, out, in *[3][]float64, d2 float64) {
	g := fs.g
	fs.curl(&fs.cc, in)
	fs.exchangeTriple(p, comm, &fs.cc)
	fs.curl(out, &fs.cc)
	lo, hi := g.NX, g.NX*(g.LY+1)
	chi := fs.chi[lo:hi]
	for c := 0; c < 3; c++ {
		ov, iv := out[c][lo:hi], in[c][lo:hi]
		for i := range ov {
			ov[i] = (1+chi[i])*iv[i] + d2*ov[i]
		}
	}
}

// assembleSusceptibility builds the per-cell implicit susceptibility from
// the electron density moment: χ = (θΔt/2)² ωpe², with ωpe² ∝ |ρe| (q/m = 1
// for the normalised electrons). This is the moment-derived dielectric the
// implicit moment method adds to the field operator each step.
func (fs *FieldSolver) assembleSusceptibility() {
	g := fs.g
	coeff := fs.cfg.Theta * fs.cfg.Dt / 2
	coeff *= coeff
	rhoe := g.F(FRhoE)
	for iy := 1; iy <= g.LY; iy++ {
		base := g.Idx(0, iy)
		for ix := 0; ix < g.NX; ix++ {
			i := base + ix
			fs.chi[i] = coeff * math.Abs(rhoe[i])
		}
	}
}

// dotLocal computes the dot product of two work vectors over real rows.
// The real rows are one contiguous region (indices NX .. NX·(LY+1)), so the
// reduction is a single streaming loop in the same element order as the
// row-by-row form.
func (fs *FieldSolver) dotLocal(a, b []float64) float64 {
	g := fs.g
	lo, hi := g.NX, g.NX*(g.LY+1)
	av, bv := a[lo:hi], b[lo:hi]
	var sum float64
	for i, x := range av {
		sum += x * bv[i]
	}
	return sum
}

// buildRHS forms the right-hand side E + Δt(c²∇×B − J) into fs.r (reusing it
// as the RHS buffer before the CG loop rewrites it as the residual).
// B halos must be valid.
func (fs *FieldSolver) buildRHS() {
	g := fs.g
	dt := fs.cfg.Dt
	bx, by, bz := g.F(FBx), g.F(FBy), g.F(FBz)
	jx, jy, jz := g.F(FJx), g.F(FJy), g.F(FJz)
	e := fs.eComponents()
	nx := g.NX
	for iy := 1; iy <= g.LY; iy++ {
		row := iy * nx
		up, dn := row+nx, row-nx
		for ix := 0; ix < nx; ix++ {
			ixp := ix + 1
			if ixp == nx {
				ixp = 0
			}
			ixm := ix - 1
			if ixm < 0 {
				ixm = nx - 1
			}
			i := row + ix
			// curl B (2-D, ∂/∂z = 0), central differences, Δx = Δy = 1.
			dBzDy := (bz[up+ix] - bz[dn+ix]) / 2
			dBzDx := (bz[row+ixp] - bz[row+ixm]) / 2
			dByDx := (by[row+ixp] - by[row+ixm]) / 2
			dBxDy := (bx[up+ix] - bx[dn+ix]) / 2
			fs.r[0][i] = e[0][i] + dt*(dBzDy-jx[i])
			fs.r[1][i] = e[1][i] + dt*(-dBzDx-jy[i])
			fs.r[2][i] = e[2][i] + dt*(dByDx-dBxDy-jz[i])
		}
	}
}

// SolveE advances the electric field implicitly (the calculateE of
// Listing 1). It performs the CG iteration with halo exchanges and global
// reductions over comm and charges the rank's clock with the field-solver
// kernel cost.
func (fs *FieldSolver) SolveE(p *psmpi.Proc, comm *psmpi.Comm) {
	g := fs.g
	d := fs.cfg.Theta * fs.cfg.Dt // c = 1
	d2 := d * d
	cells := float64(g.NX * g.LY)

	// RHS build (B halos first) and susceptibility assembly from the
	// freshest moments.
	g.ExchangeHalos(p, comm, FBx, FBy, FBz)
	fs.buildRHS()
	fs.assembleSusceptibility()
	p.Compute(machine.Work{Class: machine.KernelFieldSolver,
		Flops: (3*flopsRHSPerCell + flopsChiPerCell) * cells})

	e := fs.eComponents()
	// Residual r = RHS − A·E (warm start from current E); p = r.
	g.ExchangeHalos(p, comm, FEx, FEy, FEz)
	fs.applyCurlCurl(p, comm, &fs.ap, &e, d2)
	lo, hi := g.NX, g.NX*(g.LY+1)
	var rr float64
	for c := 0; c < 3; c++ {
		rv, pvv, apv := fs.r[c][lo:hi], fs.pv[c][lo:hi], fs.ap[c][lo:hi]
		for i := range rv {
			rv[i] -= apv[i]
			pvv[i] = rv[i]
		}
		rr += fs.dotLocal(fs.r[c], fs.r[c])
	}
	p.Compute(machine.Work{Class: machine.KernelFieldSolver, Flops: (flopsMatvecPerCell + 3*4) * cells})
	rr = p.AllreduceScalar(comm, rr, psmpi.OpSum)
	rr0 := rr
	if rr0 == 0 {
		rr0 = 1
	}

	fs.LastIters = 0
	for iter := 0; iter < fs.cfg.CGMaxIter && rr > fs.cfg.CGTol*fs.cfg.CGTol*rr0 && !math.IsNaN(rr); iter++ {
		fs.LastIters++
		// Halo for the search direction, then A·p.
		fs.exchangeTriple(p, comm, &fs.pv)
		fs.applyCurlCurl(p, comm, &fs.ap, &fs.pv, d2)
		var pap float64
		for c := 0; c < 3; c++ {
			pap += fs.dotLocal(fs.pv[c], fs.ap[c])
		}
		pap = p.AllreduceScalar(comm, pap, psmpi.OpSum)
		if pap == 0 {
			break
		}
		alpha := rr / pap
		var rrNew float64
		for c := 0; c < 3; c++ {
			ev, rv, pvv, apv := e[c][lo:hi], fs.r[c][lo:hi], fs.pv[c][lo:hi], fs.ap[c][lo:hi]
			for i := range rv {
				ev[i] += alpha * pvv[i]
				rv[i] -= alpha * apv[i]
			}
			rrNew += fs.dotLocal(fs.r[c], fs.r[c])
		}
		rrNew = p.AllreduceScalar(comm, rrNew, psmpi.OpSum)
		beta := rrNew / rr
		for c := 0; c < 3; c++ {
			rv, pvv := fs.r[c][lo:hi], fs.pv[c][lo:hi]
			for i := range pvv {
				pvv[i] = rv[i] + beta*pvv[i]
			}
		}
		rr = rrNew
		p.Compute(machine.Work{Class: machine.KernelFieldSolver,
			Flops: (flopsMatvecPerCell + 3*flopsCGVecPerCell) * cells})
	}
	// Final halos so downstream consumers (interface buffer, curl) see a
	// consistent field.
	g.ExchangeHalos(p, comm, FEx, FEy, FEz)
}

// exchangeTriple halo-exchanges the three components of a work vector.
func (fs *FieldSolver) exchangeTriple(p *psmpi.Proc, comm *psmpi.Comm, v *[3][]float64) {
	g := fs.g
	// Temporarily view the work vectors as named fields for the exchange.
	saved := [3][]float64{g.fields[FEx], g.fields[FEy], g.fields[FEz]}
	g.fields[FEx], g.fields[FEy], g.fields[FEz] = v[0], v[1], v[2]
	g.ExchangeHalos(p, comm, FEx, FEy, FEz)
	g.fields[FEx], g.fields[FEy], g.fields[FEz] = saved[0], saved[1], saved[2]
}

// SolveB advances the magnetic field explicitly with Faraday's law (the
// calculateB of Listing 1). E halos must be valid (SolveE leaves them so).
func (fs *FieldSolver) SolveB(p *psmpi.Proc, comm *psmpi.Comm) {
	g := fs.g
	dt := fs.cfg.Dt
	ex, ey, ez := g.F(FEx), g.F(FEy), g.F(FEz)
	bx, by, bz := g.F(FBx), g.F(FBy), g.F(FBz)
	nx := g.NX
	for iy := 1; iy <= g.LY; iy++ {
		row := iy * nx
		up, dn := row+nx, row-nx
		for ix := 0; ix < nx; ix++ {
			ixp := ix + 1
			if ixp == nx {
				ixp = 0
			}
			ixm := ix - 1
			if ixm < 0 {
				ixm = nx - 1
			}
			i := row + ix
			dEzDy := (ez[up+ix] - ez[dn+ix]) / 2
			dEzDx := (ez[row+ixp] - ez[row+ixm]) / 2
			dEyDx := (ey[row+ixp] - ey[row+ixm]) / 2
			dExDy := (ex[up+ix] - ex[dn+ix]) / 2
			bx[i] -= dt * dEzDy
			by[i] -= dt * (-dEzDx)
			bz[i] -= dt * (dEyDx - dExDy)
		}
	}
	p.Compute(machine.Work{Class: machine.KernelFieldSolver,
		Flops: 3 * flopsCurlPerCell * float64(g.NX*g.LY)})
	g.ExchangeHalos(p, comm, FBx, FBy, FBz)
}

// FieldEnergy returns this slab's field energy ½Σ(E²+B²) and charges the
// (auxiliary) compute cost.
func (fs *FieldSolver) FieldEnergy(p *psmpi.Proc) float64 {
	g := fs.g
	var sum float64
	for _, name := range FieldNames {
		a := g.F(name)
		for iy := 1; iy <= g.LY; iy++ {
			base := g.Idx(0, iy)
			for ix := 0; ix < g.NX; ix++ {
				v := a[base+ix]
				sum += v * v
			}
		}
	}
	// A streaming reduction over the six field arrays: bandwidth bound.
	p.Compute(machine.Work{Class: machine.KernelStream, Bytes: 6 * 8 * float64(g.NX*g.LY)})
	return 0.5 * sum
}

// MaxField returns the largest |component| over the slab (diagnostic).
func (fs *FieldSolver) MaxField() float64 {
	g := fs.g
	var m float64
	for _, name := range FieldNames {
		a := g.F(name)
		for iy := 1; iy <= g.LY; iy++ {
			base := g.Idx(0, iy)
			for ix := 0; ix < g.NX; ix++ {
				if v := math.Abs(a[base+ix]); v > m {
					m = v
				}
			}
		}
	}
	return m
}
