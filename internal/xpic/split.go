package xpic

import (
	"fmt"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
)

// RunSplit executes xPic in the Cluster-Booster mode of §IV-B (Listings 2–4
// of the paper): the particle solver runs on Booster nodes, the field solver
// on Cluster nodes. Exactly as on the prototype, "the execution script calls
// the Booster code, and this in turn performs a spawn with the name of the
// Cluster executable": the Booster job spawns the Cluster binary through
// MPI_Comm_spawn and the two sides exchange fields and moments with
// non-blocking Issend/Irecv on the resulting inter-communicator, overlapping
// the transfers with auxiliary computations.
//
// Slab i of the grid pairs Booster rank i (particles) with Cluster rank i
// (fields); both sides run ranksPerSolver ranks.
//
// Like RunMono, RunSplit is the zero case of the resilient runner
// (runResilientSplit owns the only implementation of the Listing 2–4 step
// loops); TestResilientSplitRestartEquivalence and the golden suite pin the
// equivalence.
func RunSplit(rt *psmpi.Runtime, boosterNodes []*machine.Node, ranksPerSolver int, cfg Config) (Report, error) {
	if len(boosterNodes) != ranksPerSolver {
		return Report{}, fmt.Errorf("xpic: %d booster nodes for %d ranks", len(boosterNodes), ranksPerSolver)
	}
	return RunResilient(rt, ResilientSpec{
		Mode:           SplitCB,
		Nodes:          boosterNodes,
		RanksPerSolver: ranksPerSolver,
		Cfg:            cfg,
	})
}
