package xpic

import (
	"fmt"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
)

// RunSplit executes xPic in the Cluster-Booster mode of §IV-B (Listings 2–4
// of the paper): the particle solver runs on Booster nodes, the field solver
// on Cluster nodes. Exactly as on the prototype, "the execution script calls
// the Booster code, and this in turn performs a spawn with the name of the
// Cluster executable": the Booster job spawns the Cluster binary through
// MPI_Comm_spawn and the two sides exchange fields and moments with
// non-blocking Issend/Irecv on the resulting inter-communicator, overlapping
// the transfers with auxiliary computations.
//
// Slab i of the grid pairs Booster rank i (particles) with Cluster rank i
// (fields); both sides run ranksPerSolver ranks.
func RunSplit(rt *psmpi.Runtime, boosterNodes []*machine.Node, ranksPerSolver int, cfg Config) (Report, error) {
	if len(boosterNodes) != ranksPerSolver {
		return Report{}, fmt.Errorf("xpic: %d booster nodes for %d ranks", len(boosterNodes), ranksPerSolver)
	}
	if err := cfg.Validate(ranksPerSolver); err != nil {
		return Report{}, err
	}
	s := &sink{rep: Report{Mode: SplitCB, RanksPerSolver: ranksPerSolver, Steps: cfg.Steps}}

	// The __CLUSTER__ executable (Listing 2), registered for spawn.
	binary := fmt.Sprintf("xpic_cluster_%p", s)
	rt.Register(binary, func(p *psmpi.Proc) error {
		return clusterMain(p, cfg, s)
	})

	res, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: boosterNodes,
		Main: func(p *psmpi.Proc) error {
			return boosterMain(p, cfg, s, binary)
		},
	})
	if err != nil {
		return Report{}, err
	}
	s.finalize(ranksPerSolver)
	s.rep.Makespan = res.Makespan
	return s.rep, nil
}

// boosterMain is the __BOOSTER__ main loop (Listing 3): it spawns the
// Cluster side, then per step receives fields, moves particles, gathers
// moments and sends them back, overlapping communication with auxiliary
// computations and I/O.
func boosterMain(p *psmpi.Proc, cfg Config, s *sink, clusterBinary string) error {
	comm := p.World()
	ranks := comm.Size()
	inter, err := p.Spawn(comm, psmpi.SpawnSpec{
		Binary: clusterBinary,
		Procs:  ranks,
		Module: machine.Cluster,
	})
	if err != nil {
		return fmt.Errorf("xpic: spawning cluster side: %w", err)
	}
	peer := p.Rank() // cluster rank paired with this slab

	g := NewGrid(cfg.NX, cfg.NY, p.Rank(), ranks)
	pcl := NewParticleSolver(g, cfg)

	var t Times
	var kinE float64
	for step := 0; step < cfg.Steps; step++ {
		// ClusterToBooster(): post the receive for E,B.
		var fbuf []float64
		auxBefore := t.Aux
		phase(p, &t.Exchange, func() {
			req := p.Irecv(inter, peer, tagIfaceF)
			if cfg.NoOverlap {
				// Ablation: wait first, diagnose afterwards.
				data, _ := p.Wait(req)
				fbuf = data.([]float64)
			}
			// ...auxiliary computations overlap the transfer...
			if step%cfg.DiagEvery == 0 {
				phase(p, &t.Aux, func() {
					kinE = p.AllreduceScalar(comm, pcl.KineticEnergy(p), psmpi.OpSum)
				})
			}
			if !cfg.NoOverlap {
				// ClusterWait()
				data, _ := p.Wait(req)
				fbuf = data.([]float64)
			}
		})
		t.Exchange -= t.Aux - auxBefore // overlapped aux is not exchange time

		// pcl.cpyFromArr_F(): unpack fields, then fill ghosts from the
		// neighbouring Booster ranks (BN-BN halo traffic).
		phase(p, &t.Exchange, func() {
			unpackFields(p, g, FieldNames, fbuf)
			g.ExchangeHalos(p, comm, FieldNames...)
		})

		// ParticlesMove + ParticleMoments per species.
		phase(p, &t.Particle, func() {
			pcl.Move(p)
			pcl.Migrate(p, comm)
			pcl.Gather(p)
			g.ReduceMomentHalos(p, comm)
		})

		// pcl.cpyToArr_M(); BoosterToCluster(): Issend ρ,J (Listing 4). The
		// packed buffer is fresh, so it ships without a value-semantics copy.
		phase(p, &t.Exchange, func() {
			mbuf := packFields(p, g, MomentNames)
			req := p.Issend(inter, peer, tagIfaceM, mbuf, 8*len(mbuf))
			// I/O and auxiliary computations overlap; BoosterWait().
			p.Wait(req)
		})
		if cfg.Verbose && p.Rank() == 0 && step%50 == 0 {
			fmt.Printf("xpic[C+B booster] step %4d  E_kin=%.6g  particles=%d\n", step, kinE, pcl.TotalN())
		}
	}

	// Final-state diagnostic, identical to the mono-mode computation.
	finalKin := p.AllreduceScalar(comm, pcl.KineticEnergy(p), psmpi.OpSum)
	_ = kinE

	s.addTimes(Times{Particle: t.Particle, Exchange: t.Exchange, Aux: t.Aux}, 0)
	s.addPhysics(p.Rank(), 0, pickRank0(p, finalKin), pcl.TotalCharge(), checksum(pcl))
	return nil
}

// clusterMain is the __CLUSTER__ main loop (Listing 2): solve E, ship E,B to
// the Booster, receive moments back, advance B.
func clusterMain(p *psmpi.Proc, cfg Config, s *sink) error {
	comm := p.World()
	inter := p.Parent()
	if inter == nil {
		return fmt.Errorf("xpic: cluster side has no parent intercommunicator")
	}
	peer := p.Rank() // booster rank paired with this slab

	g := NewGrid(cfg.NX, cfg.NY, p.Rank(), comm.Size())
	fld := NewFieldSolver(g, cfg)

	var t Times
	cgIters := 0
	var fieldE float64
	for step := 0; step < cfg.Steps; step++ {
		// fld.solver->calculateE()
		phase(p, &t.Field, func() { fld.SolveE(p, comm) })
		cgIters += fld.LastIters

		// fld.cpyToArr_F(); ClusterToBooster(): Issend E,B (Listing 4).
		auxBefore := t.Aux
		phase(p, &t.Exchange, func() {
			fbuf := packFields(p, g, FieldNames)
			req := p.Issend(inter, peer, tagIfaceF, fbuf, 8*len(fbuf))
			if cfg.NoOverlap {
				p.Wait(req)
			}
			// Auxiliary computations overlap the transfer (Listing 2 line 6).
			if step%cfg.DiagEvery == 0 {
				phase(p, &t.Aux, func() {
					fieldE = p.AllreduceScalar(comm, fld.FieldEnergy(p), psmpi.OpSum)
				})
			}
			if !cfg.NoOverlap {
				// ClusterWait()
				p.Wait(req)
			}
		})
		t.Exchange -= t.Aux - auxBefore // overlapped aux is not exchange time

		// BoosterToCluster(): Irecv ρ,J; BoosterWait(); cpyFromArr_M.
		phase(p, &t.Exchange, func() {
			req := p.Irecv(inter, peer, tagIfaceM)
			data, _ := p.Wait(req)
			unpackFields(p, g, MomentNames, data.([]float64))
		})

		// fld.solver->calculateB()
		phase(p, &t.Field, func() { fld.SolveB(p, comm) })
	}

	// Final-state diagnostic, identical to the mono-mode computation.
	finalField := p.AllreduceScalar(comm, fld.FieldEnergy(p), psmpi.OpSum)
	_ = fieldE

	s.addTimes(Times{Field: t.Field, Exchange: t.Exchange, Aux: t.Aux}, cgIters)
	s.addPhysics(p.Rank(), pickRank0(p, finalField), 0, 0, 0)
	return nil
}
