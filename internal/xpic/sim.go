package xpic

import (
	"encoding/binary"
	"fmt"
	"math"

	"clusterbooster/internal/psmpi"
)

// Sim is one rank's xPic state in mono mode: grid, both solvers and the loop
// position. It exposes single-stepping and binary snapshot/restore, which is
// what the SCR checkpoint integration and the resilience experiments build
// on (§III-D: "the data required by the application to restart execution").
type Sim struct {
	Cfg Config
	G   *Grid
	Fld *FieldSolver
	Pcl *ParticleSolver

	Step    int
	T       Times
	CGIters int
	FieldE  float64
	KinE    float64
}

// NewSim builds the rank-local simulation state for rank p of comm.
func NewSim(p *psmpi.Proc, comm *psmpi.Comm, cfg Config) *Sim {
	g := NewGrid(cfg.NX, cfg.NY, p.Rank(), comm.Size())
	return &Sim{
		Cfg: cfg,
		G:   g,
		Fld: NewFieldSolver(g, cfg),
		Pcl: NewParticleSolver(g, cfg),
	}
}

// Advance executes one Listing-1 iteration (calculateE, interface copies,
// particle move + moments, calculateB, periodic diagnostics).
func (s *Sim) Advance(p *psmpi.Proc, comm *psmpi.Comm) {
	cfg := s.Cfg
	phase(p, &s.T.Field, func() { s.Fld.SolveE(p, comm) })
	s.CGIters += s.Fld.LastIters

	phase(p, &s.T.Exchange, func() {
		buf := packFields(p, s.G, FieldNames)
		unpackFields(p, s.G, FieldNames, buf)
	})

	phase(p, &s.T.Particle, func() {
		s.Pcl.Move(p)
		s.Pcl.Migrate(p, comm)
		s.Pcl.Gather(p)
		s.G.ReduceMomentHalos(p, comm)
	})

	phase(p, &s.T.Exchange, func() {
		buf := packFields(p, s.G, MomentNames)
		unpackFields(p, s.G, MomentNames, buf)
	})

	phase(p, &s.T.Field, func() { s.Fld.SolveB(p, comm) })

	if s.Step%cfg.DiagEvery == 0 {
		phase(p, &s.T.Aux, func() {
			s.FieldE = p.AllreduceScalar(comm, s.Fld.FieldEnergy(p), psmpi.OpSum)
			s.KinE = p.AllreduceScalar(comm, s.Pcl.KineticEnergy(p), psmpi.OpSum)
		})
	}
	s.Step++
}

// snapshot format magic/version.
const (
	snapMagic   = uint32(0x78504943) // "xPIC"
	snapVersion = uint32(1)
)

// Snapshot serialises this rank's full physics state (step, fields, moments,
// particles) — the checkpoint payload.
func (s *Sim) Snapshot() []byte {
	var out []byte
	var b8 [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b8[:4], v)
		out = append(out, b8[:4]...)
	}
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b8[:], v)
		out = append(out, b8[:]...)
	}
	putF64s := func(a []float64) {
		putU64(uint64(len(a)))
		for _, v := range a {
			putU64(math.Float64bits(v))
		}
	}
	putU32(snapMagic)
	putU32(snapVersion)
	putU64(uint64(s.Step))
	names := append(append([]string(nil), FieldNames...), MomentNames...)
	putU64(uint64(len(names)))
	for _, name := range names {
		putF64s(s.G.F(name))
	}
	putU64(uint64(len(s.Pcl.Species)))
	for _, sp := range s.Pcl.Species {
		putU64(math.Float64bits(sp.Q))
		putF64s(sp.X)
		putF64s(sp.Y)
		putF64s(sp.VX)
		putF64s(sp.VY)
		putF64s(sp.VZ)
	}
	return out
}

// Restore loads a snapshot produced by Snapshot on a Sim with the same
// configuration and decomposition.
func (s *Sim) Restore(data []byte) error {
	pos := 0
	fail := func(what string) error {
		return fmt.Errorf("xpic: corrupt snapshot (%s at offset %d)", what, pos)
	}
	getU32 := func() (uint32, bool) {
		if pos+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return v, true
	}
	getU64 := func() (uint64, bool) {
		if pos+8 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(data[pos:])
		pos += 8
		return v, true
	}
	getF64s := func() ([]float64, bool) {
		n, ok := getU64()
		// Divide the remaining bytes rather than multiplying the length: a
		// corrupt length field must fail the check, not overflow past it.
		if !ok || n > uint64((len(data)-pos)/8) {
			return nil, false
		}
		out := make([]float64, n)
		for i := range out {
			v, _ := getU64()
			out[i] = math.Float64frombits(v)
		}
		return out, true
	}
	if m, ok := getU32(); !ok || m != snapMagic {
		return fail("magic")
	}
	if v, ok := getU32(); !ok || v != snapVersion {
		return fail("version")
	}
	step, ok := getU64()
	if !ok {
		return fail("step")
	}
	s.Step = int(step)
	nNames, ok := getU64()
	names := append(append([]string(nil), FieldNames...), MomentNames...)
	if !ok || int(nNames) != len(names) {
		return fail("field count")
	}
	for _, name := range names {
		a, ok := getF64s()
		if !ok || len(a) != len(s.G.F(name)) {
			return fail("field " + name)
		}
		copy(s.G.F(name), a)
	}
	nSpec, ok := getU64()
	if !ok || int(nSpec) != len(s.Pcl.Species) {
		return fail("species count")
	}
	for _, sp := range s.Pcl.Species {
		q, ok := getU64()
		if !ok {
			return fail("charge")
		}
		sp.Q = math.Float64frombits(q)
		if sp.X, ok = getF64s(); !ok {
			return fail("X")
		}
		if sp.Y, ok = getF64s(); !ok {
			return fail("Y")
		}
		if sp.VX, ok = getF64s(); !ok {
			return fail("VX")
		}
		if sp.VY, ok = getF64s(); !ok {
			return fail("VY")
		}
		if sp.VZ, ok = getF64s(); !ok {
			return fail("VZ")
		}
	}
	return nil
}

// Checksum returns the deterministic physics fingerprint of this rank.
func (s *Sim) Checksum() float64 { return checksum(s.Pcl) }
