// Package xpic reproduces the Space Weather application xPic of KU Leuven as
// described in §IV of the paper: a 2-D electromagnetic Particle-in-Cell code
// with the two-solver structure of Fig. 5 — an implicit field solver
// (Maxwell's equations via a CG iteration, the code part that wants high
// single-thread performance and frequent global communication) and a particle
// solver (Newton's equation + moment gathering, embarrassingly parallel and
// vector friendly) — connected through interface buffers.
//
// The package provides both execution modes of §IV-B:
//
//   - mono mode (Listing 1): both solvers run on the same set of nodes;
//   - Cluster-Booster split mode (Listings 2–4): the field solver runs on
//     Cluster nodes and the particle solver on Booster nodes, exchanging
//     E,B and ρ,J through MPI_Issend/Irecv on the inter-communicator created
//     by MPI_Comm_spawn.
//
// The simulation is real — particles move under interpolated fields, moments
// are gathered, Maxwell's equations are solved — while execution time is
// virtual, costed through the machine and fabric models. A ParticleScale
// knob runs 1/k of the macro-particles (with k-fold weight) so tests can be
// quick; virtual times are computed from the configured particle count and
// are exactly scale-invariant.
package xpic

import (
	"fmt"

	"clusterbooster/internal/vclock"
)

// SpeciesSpec describes one plasma species.
type SpeciesSpec struct {
	Name string
	// QoverM is the charge-to-mass ratio in normalised units (electrons
	// -1.0; heavier ions closer to 0).
	QoverM float64
	// ChargeSign is ±1.
	ChargeSign float64
	// Vth is the thermal velocity (of |c| = 1).
	Vth float64
}

// Config parameterises an xPic run. The zero value is not usable; start from
// Table2Config or QuickConfig.
type Config struct {
	NX, NY int // global grid cells (periodic in both directions)
	// PPC is the total number of macro-particles per cell, split evenly
	// across species (Table II: 2048).
	PPC     int
	Species []SpeciesSpec
	Steps   int
	// Dt is the time step in normalised units; the implicit field solve is
	// unconditionally stable, so Δt·ωp = 1 is practical (the point of the
	// implicit moment method).
	Dt float64
	// Theta is the implicitness parameter of the field solve (0.5 = centred).
	Theta float64
	// CGTol / CGMaxIter control the field solver's conjugate-gradient loop.
	CGTol     float64
	CGMaxIter int
	// DiagEvery computes the energy diagnostics every k-th step (real PIC
	// codes do not diagnose every step); these are the "auxiliary
	// computations" Listings 2-3 overlap with communication.
	DiagEvery int
	// DensityPerturbation modulates the initial plasma density with
	// 1 + A·sin(2πy/NY) — the large-scale structure of a space-weather
	// plasma. It costs nothing on one node but produces the particle load
	// imbalance that erodes strong-scaling efficiency at higher rank counts
	// (the behaviour behind Fig. 8's efficiency curves).
	DensityPerturbation float64
	// ParticleScale runs 1/k of the configured macro-particles with k-fold
	// statistical weight; virtual cost still reflects the configured count.
	ParticleScale int
	Seed          int64
	// NoOverlap disables the communication/computation overlap of the split
	// mode (Listings 2-3 line 6: auxiliary computations during the
	// non-blocking transfers). Used by the A5 ablation bench to quantify
	// what the overlap buys.
	NoOverlap bool
	// Verbose enables per-step diagnostics output (examples only).
	Verbose bool
}

// DefaultSpecies returns the two-species plasma used in the experiments: hot
// electrons and a reduced-mass ion background (mass ratio 25, standard in PIC
// method studies to keep ion dynamics visible at benchmark step counts).
func DefaultSpecies() []SpeciesSpec {
	return []SpeciesSpec{
		{Name: "electrons", QoverM: -1.0, ChargeSign: -1, Vth: 0.10},
		{Name: "ions", QoverM: 1.0 / 25.0, ChargeSign: +1, Vth: 0.02},
	}
}

// Table2Config returns the experiment setup of Table II of the paper:
// 4096 cells (64×64) with 2048 particles per cell, i.e. ≈8.4 M
// macro-particles, the single-node workload of Fig. 7 and the global
// (strong-scaled) workload of Fig. 8.
func Table2Config() Config {
	return Config{
		NX:                  64,
		NY:                  64,
		PPC:                 2048,
		Species:             DefaultSpecies(),
		Steps:               900,
		Dt:                  1.0,
		Theta:               0.5,
		CGTol:               1e-12,
		CGMaxIter:           80,
		DiagEvery:           10,
		DensityPerturbation: 0.30,
		ParticleScale:       64,
		Seed:                20180521,
	}
}

// QuickConfig returns a reduced workload for tests: a small grid, few
// particles, the given number of steps.
func QuickConfig(steps int) Config {
	c := Table2Config()
	c.NX, c.NY = 16, 16
	c.PPC = 64
	c.Steps = steps
	c.DiagEvery = 5
	c.ParticleScale = 4
	return c
}

// Validate checks the configuration for a run on ranksPerSolver ranks.
func (c Config) Validate(ranksPerSolver int) error {
	if c.NX < 4 || c.NY < 4 {
		return fmt.Errorf("xpic: grid %dx%d too small", c.NX, c.NY)
	}
	if ranksPerSolver < 1 {
		return fmt.Errorf("xpic: %d ranks per solver", ranksPerSolver)
	}
	if c.NY%ranksPerSolver != 0 {
		return fmt.Errorf("xpic: NY=%d not divisible by %d ranks", c.NY, ranksPerSolver)
	}
	if c.NY/ranksPerSolver < 2 {
		return fmt.Errorf("xpic: fewer than 2 rows per rank")
	}
	if len(c.Species) == 0 {
		return fmt.Errorf("xpic: no species")
	}
	if c.PPC%(len(c.Species)) != 0 {
		return fmt.Errorf("xpic: PPC=%d not divisible by %d species", c.PPC, len(c.Species))
	}
	if c.ParticleScale < 1 {
		return fmt.Errorf("xpic: ParticleScale must be >= 1")
	}
	ppcPerSpecies := c.PPC / len(c.Species)
	if ppcPerSpecies%c.ParticleScale != 0 {
		return fmt.Errorf("xpic: per-species PPC %d not divisible by scale %d", ppcPerSpecies, c.ParticleScale)
	}
	if c.Steps < 1 {
		return fmt.Errorf("xpic: %d steps", c.Steps)
	}
	if c.Dt <= 0 || c.Theta <= 0 || c.Theta > 1 {
		return fmt.Errorf("xpic: invalid dt=%v theta=%v", c.Dt, c.Theta)
	}
	if c.CGTol <= 0 || c.CGMaxIter < 1 {
		return fmt.Errorf("xpic: invalid CG parameters")
	}
	if c.DiagEvery < 1 {
		return fmt.Errorf("xpic: DiagEvery must be >= 1")
	}
	if c.DensityPerturbation < 0 || c.DensityPerturbation > 0.9 {
		return fmt.Errorf("xpic: density perturbation %v out of [0, 0.9]", c.DensityPerturbation)
	}
	return nil
}

// Cells returns the global cell count.
func (c Config) Cells() int { return c.NX * c.NY }

// TotalParticles returns the configured macro-particle count (all species).
func (c Config) TotalParticles() int { return c.Cells() * c.PPC }

// Times holds the per-phase virtual time accounting of one rank (the
// decomposition behind Fig. 7's Fields/Particles bars).
type Times struct {
	Field    vclock.Time // calculateE + calculateB (+ their internal comm)
	Particle vclock.Time // mover + moment gathering (+ migration)
	Exchange vclock.Time // interface-buffer exchange (intercomm in C+B mode)
	Aux      vclock.Time // auxiliary computations (energies, diagnostics)
}

// Busy returns the sum of all phases.
func (t Times) Total() vclock.Time { return t.Field + t.Particle + t.Exchange + t.Aux }
