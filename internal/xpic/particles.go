package xpic

import (
	"math"
	"math/rand"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
)

// Flop-count constants per macro-particle for the virtual cost model,
// derived from the arithmetic of the mover and the moment gathering.
const (
	flopsWeights = 10.0 // bilinear weights
	flopsGather  = 48.0 // 6 field components × 4 corners × 2 flops
	flopsBoris   = 42.0 // half-kicks + rotation
	flopsPush    = 8.0  // position update + periodic wrap
	flopsMoments = 42.0 // weights + 4 moments × 4 corners × 2 flops
	// flopsRhoEDeposit is the extra electron-density deposit feeding the
	// implicit susceptibility.
	flopsRhoEDeposit = 8.0
	// flopsMigrateScan is the per-particle boundary check + compaction move
	// of the migration pass.
	flopsMigrateScan = 4.0
	flopsMovePart    = flopsWeights + flopsGather + flopsBoris + flopsPush
)

// Species holds one plasma species' macro-particles on one rank, stored as
// structure-of-arrays, the layout the vectorised particle solver favours.
type Species struct {
	Spec SpeciesSpec
	// Q is the macro-particle charge (statistical weight included).
	Q float64
	// Positions are global coordinates: x in [0,NX), y in [0,NY).
	X, Y       []float64
	VX, VY, VZ []float64
}

// N returns the number of macro-particles currently on this rank.
func (s *Species) N() int { return len(s.X) }

// ParticleSolver implements the pcl object of Listing 1: Newton's equation
// for every particle (ParticlesMove) and the statistical moment gathering
// (ParticleMoments) — the embarrassingly parallel, wide-vector workload the
// paper assigns to the Booster.
type ParticleSolver struct {
	g       *Grid
	cfg     Config
	Species []*Species
	// scale is the statistical weight multiplier (ParticleScale).
	scale float64
}

// NewParticleSolver initialises the particles of this rank's slab: uniform
// positions within the slab, Maxwellian velocities, deterministic per
// (seed, species, rank) — so a decomposition runs identically in mono and
// split modes.
func NewParticleSolver(g *Grid, cfg Config) *ParticleSolver {
	ps := &ParticleSolver{g: g, cfg: cfg, scale: float64(cfg.ParticleScale)}
	ppcSpecies := cfg.PPC / len(cfg.Species)
	perRankCells := g.NX * g.LY
	base := perRankCells * ppcSpecies / cfg.ParticleScale
	// Density profile 1 + A·sin(2πy/NY): this slab's share is the profile
	// integrated over its rows. Both species share the profile, preserving
	// quasi-neutrality everywhere.
	share := slabDensityShare(cfg.DensityPerturbation, g)
	actualPerSpecies := int(math.Round(float64(base) * share))
	for si, spec := range cfg.Species {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(si)*1009 + int64(g.Rank)*9973))
		sp := &Species{
			Spec: spec,
			// Unit mean density per species: per-cell charge ±1 split over
			// the actual macro-particles, weight-corrected by the scale.
			Q:  spec.ChargeSign * float64(cfg.ParticleScale) / float64(ppcSpecies),
			X:  make([]float64, actualPerSpecies),
			Y:  make([]float64, actualPerSpecies),
			VX: make([]float64, actualPerSpecies),
			VY: make([]float64, actualPerSpecies),
			VZ: make([]float64, actualPerSpecies),
		}
		for i := 0; i < actualPerSpecies; i++ {
			sp.X[i] = rng.Float64() * float64(g.NX)
			sp.Y[i] = sampleY(rng, cfg.DensityPerturbation, g)
			sp.VX[i] = rng.NormFloat64() * spec.Vth
			sp.VY[i] = rng.NormFloat64() * spec.Vth
			sp.VZ[i] = rng.NormFloat64() * spec.Vth
		}
		ps.Species = append(ps.Species, sp)
	}
	return ps
}

// slabDensityShare integrates the density profile over this slab's rows,
// relative to a uniform plasma.
func slabDensityShare(a float64, g *Grid) float64 {
	if a == 0 {
		return 1
	}
	k := 2 * math.Pi / float64(g.NY)
	y0, y1 := float64(g.Y0), float64(g.Y0+g.LY)
	// ∫(1 + A·sin(ky))dy over [y0,y1], divided by the slab height.
	integral := (y1 - y0) + a/k*(math.Cos(k*y0)-math.Cos(k*y1))
	return integral / (y1 - y0)
}

// sampleY draws a y position within the slab from the density profile by
// rejection sampling (bounded: the profile is within [1-A, 1+A]).
func sampleY(rng *rand.Rand, a float64, g *Grid) float64 {
	lo, span := float64(g.Y0), float64(g.LY)
	if a == 0 {
		return lo + rng.Float64()*span
	}
	k := 2 * math.Pi / float64(g.NY)
	for {
		y := lo + rng.Float64()*span
		if rng.Float64()*(1+a) <= 1+a*math.Sin(k*y) {
			return y
		}
	}
}

// TotalN returns the actual macro-particle count on this rank (all species).
func (ps *ParticleSolver) TotalN() int {
	n := 0
	for _, s := range ps.Species {
		n += s.N()
	}
	return n
}

// interp evaluates a field at (x, y) with bilinear (cloud-in-cell)
// interpolation. Coordinates are global; y must lie within this slab
// (ghost rows supply the upper neighbour's values).
func (ps *ParticleSolver) interp(a []float64, x, y float64) float64 {
	g := ps.g
	// Local y: row 1 covers global [Y0, Y0+1).
	ly := y - float64(g.Y0) + 1
	ix := int(math.Floor(x))
	iy := int(math.Floor(ly))
	fx := x - float64(ix)
	fy := ly - float64(iy)
	i00 := g.Idx(g.WrapX(ix), iy)
	i10 := g.Idx(g.WrapX(ix+1), iy)
	i01 := g.Idx(g.WrapX(ix), iy+1)
	i11 := g.Idx(g.WrapX(ix+1), iy+1)
	return a[i00]*(1-fx)*(1-fy) + a[i10]*fx*(1-fy) + a[i01]*(1-fx)*fy + a[i11]*fx*fy
}

// deposit adds w·weight to the four cells around (x, y) of field a.
func (ps *ParticleSolver) deposit(a []float64, x, y, w float64) {
	g := ps.g
	ly := y - float64(g.Y0) + 1
	ix := int(math.Floor(x))
	iy := int(math.Floor(ly))
	fx := x - float64(ix)
	fy := ly - float64(iy)
	a[g.Idx(g.WrapX(ix), iy)] += w * (1 - fx) * (1 - fy)
	a[g.Idx(g.WrapX(ix+1), iy)] += w * fx * (1 - fy)
	a[g.Idx(g.WrapX(ix), iy+1)] += w * (1 - fx) * fy
	a[g.Idx(g.WrapX(ix+1), iy+1)] += w * fx * fy
}

// stencil is the shared bilinear (cloud-in-cell) stencil of one particle:
// the four cell indices and the weight factors every per-component
// interpolation and deposit reuses. Computing it once per particle (instead
// of once per field component) is what makes the hot kernels fast; the
// per-component arithmetic keeps exactly the shape of interp/deposit, so the
// results stay bit-identical.
type stencil struct {
	i00, i10, i01, i11 int
	fx, fy, gx, gy     float64 // fractional offsets and their complements
}

// makeStencil builds the stencil for global coordinates (x, y) on a slab
// whose row 1 covers global [y0, y0+1); x must lie in [0, nx] (the periodic
// wrap leaves positions there) and y within the slab. Small enough to inline
// into the particle loops.
func makeStencil(x, y, y0 float64, nx int) stencil {
	ly := y - y0 + 1
	ix := int(math.Floor(x))
	iy := int(math.Floor(ly))
	fx := x - float64(ix)
	fy := ly - float64(iy)
	if ix >= nx { // x == NX exactly (wrap boundary)
		ix -= nx
	}
	ixp := ix + 1
	if ixp >= nx {
		ixp -= nx
	}
	row := iy * nx
	return stencil{
		i00: row + ix, i10: row + ixp, i01: row + ix + nx, i11: row + ixp + nx,
		fx: fx, fy: fy, gx: 1 - fx, gy: 1 - fy,
	}
}

// gather evaluates a field at the stencil — interp with the stencil hoisted.
func (st stencil) gather(a []float64) float64 {
	return a[st.i00]*st.gx*st.gy + a[st.i10]*st.fx*st.gy + a[st.i01]*st.gx*st.fy + a[st.i11]*st.fx*st.fy
}

// scatter adds w·weight to the four stencil cells — deposit with the stencil
// hoisted.
func (st stencil) scatter(a []float64, w float64) {
	a[st.i00] += w * st.gx * st.gy
	a[st.i10] += w * st.fx * st.gy
	a[st.i01] += w * st.gx * st.fy
	a[st.i11] += w * st.fx * st.fy
}

// wrapPeriodic wraps x into [0, L) after a position push, bit-identically to
// the reference form `x = math.Mod(x, l); if x < 0 { x += l }`: fmod is
// exact, and for single-period excursions it reduces to one subtraction
// (exact by Sterbenz' lemma on [l, 2l]) or one addition (Mod(x, l) == x for
// |x| < l). Pathological velocities fall back to Mod itself.
func wrapPeriodic(x, l float64) float64 {
	if x >= l {
		if x < 2*l {
			return x - l
		}
		return math.Mod(x, l)
	}
	if x < 0 {
		if x >= -l {
			return x + l
		}
		x = math.Mod(x, l)
		if x < 0 {
			x += l
		}
	}
	return x
}

// Move advances all particles one step with the Boris scheme under the
// current E and B (ParticlesMove of Listing 1) and charges the particle
// kernel cost for the *configured* particle count (scale-invariant timing).
func (ps *ParticleSolver) Move(p *psmpi.Proc) {
	g := ps.g
	dt := ps.cfg.Dt
	ex, ey, ez := g.F(FEx), g.F(FEy), g.F(FEz)
	bx, by, bz := g.F(FBx), g.F(FBy), g.F(FBz)
	nx, ny := float64(g.NX), float64(g.NY)
	y0, nxi := float64(g.Y0), g.NX
	for _, s := range ps.Species {
		qmdt2 := s.Spec.QoverM * dt / 2
		sX, sY := s.X, s.Y
		sVX, sVY, sVZ := s.VX, s.VY, s.VZ
		for i := range sX {
			x, y := sX[i], sY[i]
			st := makeStencil(x, y, y0, nxi)
			eix := st.gather(ex)
			eiy := st.gather(ey)
			eiz := st.gather(ez)
			bix := st.gather(bx)
			biy := st.gather(by)
			biz := st.gather(bz)
			// Boris: half electric kick, magnetic rotation, half kick.
			vx := sVX[i] + qmdt2*eix
			vy := sVY[i] + qmdt2*eiy
			vz := sVZ[i] + qmdt2*eiz
			tx, ty, tz := qmdt2*bix, qmdt2*biy, qmdt2*biz
			t2 := tx*tx + ty*ty + tz*tz
			sx, sy, sz := 2*tx/(1+t2), 2*ty/(1+t2), 2*tz/(1+t2)
			// v' = v + v×t ; v+ = v + v'×s
			px := vx + vy*tz - vz*ty
			py := vy + vz*tx - vx*tz
			pz := vz + vx*ty - vy*tx
			vx += py*sz - pz*sy
			vy += pz*sx - px*sz
			vz += px*sy - py*sx
			vx += qmdt2 * eix
			vy += qmdt2 * eiy
			vz += qmdt2 * eiz
			sVX[i], sVY[i], sVZ[i] = vx, vy, vz
			// Position push with periodic wrap.
			sX[i] = wrapPeriodic(x+vx*dt, nx)
			sY[i] = wrapPeriodic(y+vy*dt, ny)
		}
	}
	p.Compute(machine.Work{Class: machine.KernelParticle,
		Flops: flopsMovePart * float64(ps.TotalN()) * ps.scale})
}

// Gather deposits the charge density and current of all species (the
// moment gathering of Listing 1). Deposits land in local and ghost rows;
// call Grid.ReduceMomentHalos afterwards.
func (ps *ParticleSolver) Gather(p *psmpi.Proc) {
	g := ps.g
	g.Zero(MomentNames...)
	rho, jx, jy, jz := g.F(FRho), g.F(FJx), g.F(FJy), g.F(FJz)
	rhoe := g.F(FRhoE)
	y0, nxi := float64(g.Y0), g.NX
	var flops float64
	for _, s := range ps.Species {
		electron := s.Spec.QoverM < -0.5
		q := s.Q
		sX, sY := s.X, s.Y
		sVX, sVY, sVZ := s.VX, s.VY, s.VZ
		for i := range sX {
			st := makeStencil(sX[i], sY[i], y0, nxi)
			st.scatter(rho, q)
			st.scatter(jx, q*sVX[i])
			st.scatter(jy, q*sVY[i])
			st.scatter(jz, q*sVZ[i])
			if electron {
				// Electron density for the field solver's susceptibility.
				st.scatter(rhoe, -q)
			}
		}
		perPart := flopsMoments
		if electron {
			perPart += flopsRhoEDeposit
		}
		flops += perPart * float64(s.N()) * ps.scale
	}
	p.Compute(machine.Work{Class: machine.KernelParticle, Flops: flops})
}

// Migrate moves particles that left this slab to the owning neighbour rank
// (only nearest-neighbour moves can occur per step: the slab height always
// exceeds vmax·dt for the configured workloads). With one rank it is a no-op
// (periodic wrap already applied).
func (ps *ParticleSolver) Migrate(p *psmpi.Proc, comm *psmpi.Comm) {
	g := ps.g
	if g.Ranks == 1 {
		return
	}
	// The boundary scan + compaction touches every particle (cost charged
	// for the configured count, like the other particle kernels).
	p.Compute(machine.Work{Class: machine.KernelParticle,
		Flops: flopsMigrateScan * float64(ps.TotalN()) * ps.scale})
	yLo, yHi := float64(g.Y0), float64(g.Y0+g.LY)
	var upBuf, dnBuf []float64 // 6 floats per particle: species, x, y, vx, vy, vz
	for si, s := range ps.Species {
		kept := 0
		for i := 0; i < s.N(); i++ {
			y := s.Y[i]
			inside := y >= yLo && y < yHi
			if inside {
				s.X[kept], s.Y[kept] = s.X[i], s.Y[i]
				s.VX[kept], s.VY[kept], s.VZ[kept] = s.VX[i], s.VY[i], s.VZ[i]
				kept++
				continue
			}
			// Decide direction in the periodic ring: the owner is above when
			// y is in the up-neighbour's slab (wrapping at the top).
			var dst *[]float64
			if owner := int(y) / g.LY; owner == g.up() {
				dst = &upBuf
			} else if owner == g.down() {
				dst = &dnBuf
			} else if y >= float64(g.NY)-0.5 && g.down() == g.Ranks-1 {
				dst = &dnBuf
			} else {
				dst = &upBuf
			}
			*dst = append(*dst, float64(si), s.X[i], s.Y[i], s.VX[i], s.VY[i], s.VZ[i])
		}
		s.X, s.Y = s.X[:kept], s.Y[:kept]
		s.VX, s.VY, s.VZ = s.VX[:kept], s.VY[:kept], s.VZ[:kept]
	}
	// Exchange with both neighbours (counts travel with the payload); the
	// buffers are freshly built and never reused, so they ship uncopied.
	reqUp := p.IsendF64Shared(comm, g.up(), tagPartUp, upBuf)
	reqDn := p.IsendF64Shared(comm, g.down(), tagPartDown, dnBuf)
	fromDn, _ := p.RecvF64Shared(comm, g.down(), tagPartUp)
	ps.absorb(fromDn)
	fromUp, _ := p.RecvF64Shared(comm, g.up(), tagPartDown)
	ps.absorb(fromUp)
	p.Waitall(reqUp, reqDn)
}

// absorb appends migrated particle records to the local species.
func (ps *ParticleSolver) absorb(buf []float64) {
	for i := 0; i+5 < len(buf); i += 6 {
		s := ps.Species[int(buf[i])]
		s.X = append(s.X, buf[i+1])
		s.Y = append(s.Y, buf[i+2])
		s.VX = append(s.VX, buf[i+3])
		s.VY = append(s.VY, buf[i+4])
		s.VZ = append(s.VZ, buf[i+5])
	}
}

// KineticEnergy returns ½ Σ m v² over this rank's particles (statistical
// weight applied) and charges the auxiliary compute cost.
func (ps *ParticleSolver) KineticEnergy(p *psmpi.Proc) float64 {
	var sum float64
	for _, s := range ps.Species {
		mass := math.Abs(1 / s.Spec.QoverM) // |q|=..., m = |q/qom|; with |q| folded into Q
		w := math.Abs(s.Q) * mass
		for i := range s.X {
			sum += w * (s.VX[i]*s.VX[i] + s.VY[i]*s.VY[i] + s.VZ[i]*s.VZ[i])
		}
	}
	// A straight streaming reduction over the particle arrays: vectorises
	// like the particle kernels. Costed for the configured particle count.
	p.Compute(machine.Work{Class: machine.KernelParticle,
		Flops: 7 * float64(ps.TotalN()) * ps.scale})
	return 0.5 * sum
}

// TotalCharge sums the macro-charge on this rank (conservation diagnostic).
func (ps *ParticleSolver) TotalCharge() float64 {
	var sum float64
	for _, s := range ps.Species {
		sum += s.Q * float64(s.N())
	}
	return sum
}
