package xpic

import (
	"fmt"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/vclock"
)

// RunMono executes xPic in its traditional configuration (Listing 1 of the
// paper): field solver and particle solver run on the same set of nodes,
// communicating through the in-memory interface buffers. Passing Cluster
// nodes yields the paper's "Cluster" scenario, Booster nodes the "Booster"
// scenario.
func RunMono(rt *psmpi.Runtime, nodes []*machine.Node, cfg Config) (Report, error) {
	if len(nodes) == 0 {
		return Report{}, fmt.Errorf("xpic: no nodes")
	}
	if err := cfg.Validate(len(nodes)); err != nil {
		return Report{}, err
	}
	mode := ClusterOnly
	if nodes[0].Module == machine.Booster {
		mode = BoosterOnly
	}
	s := &sink{rep: Report{Mode: mode, RanksPerSolver: len(nodes), Steps: cfg.Steps}}

	res, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: nodes,
		Main: func(p *psmpi.Proc) error {
			return monoMain(p, cfg, s)
		},
	})
	if err != nil {
		return Report{}, err
	}
	s.finalize(len(nodes))
	s.rep.Makespan = res.Makespan
	return s.rep, nil
}

// phase measures the virtual time of fn on rank p.
func phase(p *psmpi.Proc, acc *vclock.Time, fn func()) {
	start := p.Now()
	fn()
	*acc += p.Now() - start
}

// monoMain is the Listing 1 main loop, built on the steppable Sim.
func monoMain(p *psmpi.Proc, cfg Config, s *sink) error {
	comm := p.World()
	sim := NewSim(p, comm, cfg)
	for sim.Step < cfg.Steps {
		sim.Advance(p, comm)
		if cfg.Verbose && p.Rank() == 0 && (sim.Step-1)%50 == 0 {
			fmt.Printf("xpic[mono] step %4d  E_fld=%.6g  E_kin=%.6g  CG=%d\n",
				sim.Step-1, sim.FieldE, sim.KinE, sim.Fld.LastIters)
		}
	}
	reportSim(p, comm, sim, s)
	return nil
}

// reportSim folds a finished Sim into the run report: final-state energy
// diagnostics (computed identically in mono and split modes) plus per-phase
// times and physics fingerprints.
func reportSim(p *psmpi.Proc, comm *psmpi.Comm, sim *Sim, s *sink) {
	finalField := p.AllreduceScalar(comm, sim.Fld.FieldEnergy(p), psmpi.OpSum)
	finalKin := p.AllreduceScalar(comm, sim.Pcl.KineticEnergy(p), psmpi.OpSum)
	s.addTimes(sim.T, sim.CGIters)
	s.addPhysics(p.Rank(), pickRank0(p, finalField), pickRank0(p, finalKin),
		sim.Pcl.TotalCharge(), sim.Checksum())
}

// pickRank0 keeps globally-reduced diagnostics from rank 0 only (they are
// identical on all ranks after the allreduce).
func pickRank0(p *psmpi.Proc, v float64) float64 {
	if p.Rank() == 0 {
		return v
	}
	return 0
}

// checksum produces a deterministic physics fingerprint of this rank's
// particles, used to verify that mono and split modes compute identical
// trajectories.
func checksum(pcl *ParticleSolver) float64 {
	var sum float64
	for _, sp := range pcl.Species {
		for i := range sp.X {
			sum += sp.X[i] + 2*sp.Y[i] + 3*sp.VX[i] + 5*sp.VY[i] + 7*sp.VZ[i]
		}
	}
	return sum
}
