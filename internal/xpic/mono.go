package xpic

import (
	"fmt"

	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/vclock"
)

// RunMono executes xPic in its traditional configuration (Listing 1 of the
// paper): field solver and particle solver run on the same set of nodes,
// communicating through the in-memory interface buffers. Passing Cluster
// nodes yields the paper's "Cluster" scenario, Booster nodes the "Booster"
// scenario.
//
// RunMono is the zero case of the resilient runner: no checkpoints, no
// failure injection, start at step 0. There is exactly one implementation
// of the step loop (runResilientMono), so the plain and resilient paths can
// never model different machines; TestResilientMonoMatchesRunMono pins the
// equivalence.
func RunMono(rt *psmpi.Runtime, nodes []*machine.Node, cfg Config) (Report, error) {
	if len(nodes) == 0 {
		return Report{}, fmt.Errorf("xpic: no nodes")
	}
	mode := ClusterOnly
	if nodes[0].Module == machine.Booster {
		mode = BoosterOnly
	}
	return RunResilient(rt, ResilientSpec{
		Mode:           mode,
		Nodes:          nodes,
		RanksPerSolver: len(nodes),
		Cfg:            cfg,
	})
}

// phase measures the virtual time of fn on rank p.
func phase(p *psmpi.Proc, acc *vclock.Time, fn func()) {
	start := p.Now()
	fn()
	*acc += p.Now() - start
}

// reportSim folds a finished Sim into the run report: final-state energy
// diagnostics (computed identically in mono and split modes) plus per-phase
// times and physics fingerprints.
func reportSim(p *psmpi.Proc, comm *psmpi.Comm, sim *Sim, s *sink) {
	finalField := p.AllreduceScalar(comm, sim.Fld.FieldEnergy(p), psmpi.OpSum)
	finalKin := p.AllreduceScalar(comm, sim.Pcl.KineticEnergy(p), psmpi.OpSum)
	s.addTimes(sim.T, sim.CGIters)
	s.addPhysics(p.Rank(), pickRank0(p, finalField), pickRank0(p, finalKin),
		sim.Pcl.TotalCharge(), sim.Checksum())
}

// pickRank0 keeps globally-reduced diagnostics from rank 0 only (they are
// identical on all ranks after the allreduce).
func pickRank0(p *psmpi.Proc, v float64) float64 {
	if p.Rank() == 0 {
		return v
	}
	return 0
}

// checksum produces a deterministic physics fingerprint of this rank's
// particles, used to verify that mono and split modes compute identical
// trajectories.
func checksum(pcl *ParticleSolver) float64 {
	var sum float64
	for _, sp := range pcl.Species {
		for i := range sp.X {
			sum += sp.X[i] + 2*sp.Y[i] + 3*sp.VX[i] + 5*sp.VY[i] + 7*sp.VZ[i]
		}
	}
	return sum
}
