package xpic

import (
	"fmt"
	"sync"

	"clusterbooster/internal/vclock"
)

// Mode identifies an execution scenario of §IV-C.
type Mode int

const (
	// ClusterOnly runs both solvers on Cluster nodes (the "Cluster" bars).
	ClusterOnly Mode = iota
	// BoosterOnly runs both solvers on Booster nodes (the "Booster" bars).
	BoosterOnly
	// SplitCB runs the field solver on the Cluster and the particle solver
	// on the Booster (the "C+B" bars).
	SplitCB
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ClusterOnly:
		return "Cluster"
	case BoosterOnly:
		return "Booster"
	case SplitCB:
		return "C+B"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MarshalJSON emits the figure label rather than the enum ordinal, so
// aggregated sweep results stay readable.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", m.String())), nil
}

// UnmarshalJSON accepts the figure label.
func (m *Mode) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"Cluster"`:
		*m = ClusterOnly
	case `"Booster"`:
		*m = BoosterOnly
	case `"C+B"`:
		*m = SplitCB
	default:
		return fmt.Errorf("xpic: unknown mode %s", b)
	}
	return nil
}

// Report is the outcome of one xPic run — the quantities behind Fig. 7
// (per-solver runtimes) and Fig. 8 (total runtime and parallel efficiency).
type Report struct {
	Mode           Mode `json:"mode"`
	RanksPerSolver int  `json:"ranks_per_solver"`
	Steps          int  `json:"steps"`

	// Makespan is the job's total virtual runtime (the "Total" bar).
	Makespan vclock.Time `json:"makespan_s"`
	// FieldTime and ParticleTime are the per-solver runtimes (max over
	// ranks of the accumulated solver phases, including solver-internal
	// communication — how the paper attributes Fig. 7's bars).
	FieldTime    vclock.Time `json:"field_s"`
	ParticleTime vclock.Time `json:"particle_s"`
	// ExchangeTime is the interface-buffer exchange cost; in split mode the
	// Cluster↔Booster MPI overhead the paper quotes as 3–4 %.
	ExchangeTime vclock.Time `json:"exchange_s"`
	// AuxTime covers the auxiliary computations (energies, diagnostics).
	AuxTime vclock.Time `json:"aux_s"`

	// CGIters is the total CG iteration count of the field solver.
	CGIters int `json:"cg_iters"`

	// Physics diagnostics (identical across modes for identical configs).
	FieldEnergy   float64 `json:"field_energy"`
	KineticEnergy float64 `json:"kinetic_energy"`
	TotalCharge   float64 `json:"total_charge"`
	Checksum      float64 `json:"checksum"`
}

// ExchangeFraction returns the raw exchange share of the makespan. Note that
// in split mode each side's exchange window includes waiting for the *other*
// solver to produce its data (the pipeline structure of Listings 2–3), so for
// the paper's communication-overhead metric use OverheadFraction.
func (r Report) ExchangeFraction() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.ExchangeTime.Seconds() / r.Makespan.Seconds()
}

// OverheadFraction returns the share of the total runtime spent neither in
// the field solver nor in the particle solver: transfers, synchronisation
// and unoverlapped auxiliaries. This is the observable behind the paper's
// "3% to 4% overhead per solver" statement — in C+B mode the two solvers
// alternate, so everything beyond their sum is coupling overhead.
func (r Report) OverheadFraction() float64 {
	if r.Makespan == 0 {
		return 0
	}
	over := r.Makespan - r.FieldTime - r.ParticleTime
	if over < 0 {
		return 0
	}
	return over.Seconds() / r.Makespan.Seconds()
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%-7s N=%d  total=%8.2fs  fields=%7.2fs  particles=%7.2fs  exch=%5.2fs (%4.1f%%)",
		r.Mode, r.RanksPerSolver, r.Makespan.Seconds(), r.FieldTime.Seconds(),
		r.ParticleTime.Seconds(), r.ExchangeTime.Seconds(), 100*r.ExchangeFraction())
}

// sink collects per-rank contributions into a report, from concurrent rank
// goroutines.
type sink struct {
	mu     sync.Mutex
	rep    Report
	charge map[int]float64
	check  map[int]float64
}

// addTimes merges one rank's phase times (keeping per-phase maxima — ranks
// are symmetric, the slowest defines the bar) and accumulates diagnostics.
func (s *sink) addTimes(t Times, cgIters int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rep.FieldTime = vclock.Max(s.rep.FieldTime, t.Field)
	s.rep.ParticleTime = vclock.Max(s.rep.ParticleTime, t.Particle)
	s.rep.ExchangeTime = vclock.Max(s.rep.ExchangeTime, t.Exchange)
	s.rep.AuxTime = vclock.Max(s.rep.AuxTime, t.Aux)
	if cgIters > s.rep.CGIters {
		s.rep.CGIters = cgIters
	}
}

// addPhysics records one rank's diagnostics. Per-rank values are kept and
// folded in rank order by finalize, so cross-rank float summation is
// deterministic regardless of goroutine completion order.
func (s *sink) addPhysics(rank int, fieldE, kinE, charge, checksum float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fieldE != 0 {
		s.rep.FieldEnergy = fieldE
	}
	if kinE != 0 {
		s.rep.KineticEnergy = kinE
	}
	if s.charge == nil {
		s.charge = map[int]float64{}
		s.check = map[int]float64{}
	}
	s.charge[rank] += charge
	s.check[rank] += checksum
}

// finalize folds per-rank diagnostics in rank order.
func (s *sink) finalize(ranks int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rep.TotalCharge, s.rep.Checksum = 0, 0
	for r := 0; r < ranks; r++ {
		s.rep.TotalCharge += s.charge[r]
		s.rep.Checksum += s.check[r]
	}
}
