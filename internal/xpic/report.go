package xpic

import (
	"fmt"
	"sync"

	"clusterbooster/internal/vclock"
)

// Mode identifies an execution scenario of §IV-C.
type Mode int

const (
	// ClusterOnly runs both solvers on Cluster nodes (the "Cluster" bars).
	ClusterOnly Mode = iota
	// BoosterOnly runs both solvers on Booster nodes (the "Booster" bars).
	BoosterOnly
	// SplitCB runs the field solver on the Cluster and the particle solver
	// on the Booster (the "C+B" bars).
	SplitCB
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ClusterOnly:
		return "Cluster"
	case BoosterOnly:
		return "Booster"
	case SplitCB:
		return "C+B"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Report is the outcome of one xPic run — the quantities behind Fig. 7
// (per-solver runtimes) and Fig. 8 (total runtime and parallel efficiency).
type Report struct {
	Mode           Mode
	RanksPerSolver int
	Steps          int

	// Makespan is the job's total virtual runtime (the "Total" bar).
	Makespan vclock.Time
	// FieldTime and ParticleTime are the per-solver runtimes (max over
	// ranks of the accumulated solver phases, including solver-internal
	// communication — how the paper attributes Fig. 7's bars).
	FieldTime    vclock.Time
	ParticleTime vclock.Time
	// ExchangeTime is the interface-buffer exchange cost; in split mode the
	// Cluster↔Booster MPI overhead the paper quotes as 3–4 %.
	ExchangeTime vclock.Time
	// AuxTime covers the auxiliary computations (energies, diagnostics).
	AuxTime vclock.Time

	// CGIters is the total CG iteration count of the field solver.
	CGIters int

	// Physics diagnostics (identical across modes for identical configs).
	FieldEnergy   float64
	KineticEnergy float64
	TotalCharge   float64
	Checksum      float64
}

// ExchangeFraction returns the raw exchange share of the makespan. Note that
// in split mode each side's exchange window includes waiting for the *other*
// solver to produce its data (the pipeline structure of Listings 2–3), so for
// the paper's communication-overhead metric use OverheadFraction.
func (r Report) ExchangeFraction() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.ExchangeTime.Seconds() / r.Makespan.Seconds()
}

// OverheadFraction returns the share of the total runtime spent neither in
// the field solver nor in the particle solver: transfers, synchronisation
// and unoverlapped auxiliaries. This is the observable behind the paper's
// "3% to 4% overhead per solver" statement — in C+B mode the two solvers
// alternate, so everything beyond their sum is coupling overhead.
func (r Report) OverheadFraction() float64 {
	if r.Makespan == 0 {
		return 0
	}
	over := r.Makespan - r.FieldTime - r.ParticleTime
	if over < 0 {
		return 0
	}
	return over.Seconds() / r.Makespan.Seconds()
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%-7s N=%d  total=%8.2fs  fields=%7.2fs  particles=%7.2fs  exch=%5.2fs (%4.1f%%)",
		r.Mode, r.RanksPerSolver, r.Makespan.Seconds(), r.FieldTime.Seconds(),
		r.ParticleTime.Seconds(), r.ExchangeTime.Seconds(), 100*r.ExchangeFraction())
}

// sink collects per-rank contributions into a report, from concurrent rank
// goroutines.
type sink struct {
	mu     sync.Mutex
	rep    Report
	charge map[int]float64
	check  map[int]float64
}

// addTimes merges one rank's phase times (keeping per-phase maxima — ranks
// are symmetric, the slowest defines the bar) and accumulates diagnostics.
func (s *sink) addTimes(t Times, cgIters int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rep.FieldTime = vclock.Max(s.rep.FieldTime, t.Field)
	s.rep.ParticleTime = vclock.Max(s.rep.ParticleTime, t.Particle)
	s.rep.ExchangeTime = vclock.Max(s.rep.ExchangeTime, t.Exchange)
	s.rep.AuxTime = vclock.Max(s.rep.AuxTime, t.Aux)
	if cgIters > s.rep.CGIters {
		s.rep.CGIters = cgIters
	}
}

// addPhysics records one rank's diagnostics. Per-rank values are kept and
// folded in rank order by finalize, so cross-rank float summation is
// deterministic regardless of goroutine completion order.
func (s *sink) addPhysics(rank int, fieldE, kinE, charge, checksum float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fieldE != 0 {
		s.rep.FieldEnergy = fieldE
	}
	if kinE != 0 {
		s.rep.KineticEnergy = kinE
	}
	if s.charge == nil {
		s.charge = map[int]float64{}
		s.check = map[int]float64{}
	}
	s.charge[rank] += charge
	s.check[rank] += checksum
}

// finalize folds per-rank diagnostics in rank order.
func (s *sink) finalize(ranks int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rep.TotalCharge, s.rep.Checksum = 0, 0
	for r := 0; r < ranks; r++ {
		s.rep.TotalCharge += s.charge[r]
		s.rep.Checksum += s.check[r]
	}
}
