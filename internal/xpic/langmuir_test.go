package xpic

import (
	"math"
	"testing"

	"clusterbooster/internal/psmpi"
)

// TestLangmuirOscillation validates the plasma physics of the PIC loop: a
// cold plasma with a small sinusoidal electron velocity perturbation must
// oscillate at the plasma frequency, ωp = 1 in normalised units (period
// 2π). This exercises the full loop — deposits, the Ampère-law part of the
// field solve, interpolation and the Boris push — against an analytic
// result.
func TestLangmuirOscillation(t *testing.T) {
	if testing.Short() {
		t.Skip("120-step plasma-frequency integration; covered in default mode")
	}
	rt := newRuntime(1, 0)
	cfg := QuickConfig(1)
	cfg.NX, cfg.NY = 32, 8
	cfg.Dt = 0.25
	cfg.DensityPerturbation = 0
	const steps = 120

	var signal []float64
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 1),
		Main: func(p *psmpi.Proc) error {
			comm := p.World()
			g := NewGrid(cfg.NX, cfg.NY, 0, 1)
			fld := NewFieldSolver(g, cfg)

			// Quiet start: electrons and (nearly immobile) ions on a regular
			// lattice, unit density each, with a standing velocity
			// perturbation vx = v0·sin(kx) on the electrons.
			const perCell = 4
			k := 2 * math.Pi / float64(cfg.NX)
			const v0 = 0.01
			mk := func(qom, sign float64, perturb bool) *Species {
				s := &Species{
					Spec: SpeciesSpec{QoverM: qom, ChargeSign: sign},
					Q:    sign / perCell,
				}
				for iy := 0; iy < cfg.NY; iy++ {
					for ix := 0; ix < cfg.NX; ix++ {
						for j := 0; j < perCell; j++ {
							x := float64(ix) + (float64(j)+0.5)/perCell
							y := float64(iy) + 0.5
							s.X = append(s.X, x)
							s.Y = append(s.Y, y)
							vx := 0.0
							if perturb {
								vx = v0 * math.Sin(k*x)
							}
							s.VX = append(s.VX, vx)
							s.VY = append(s.VY, 0)
							s.VZ = append(s.VZ, 0)
						}
					}
				}
				return s
			}
			ps := &ParticleSolver{g: g, cfg: cfg, scale: 1}
			ps.Species = []*Species{
				mk(-1.0, -1, true),       // electrons
				mk(1.0/10000, +1, false), // heavy ions (immobile on this timescale)
			}

			for step := 0; step < steps; step++ {
				fld.SolveE(p, comm)
				ps.Move(p)
				ps.Gather(p)
				g.ReduceMomentHalos(p, comm)
				fld.SolveB(p, comm)
				// Probe Ex at a fixed antinode of the perturbation.
				ex := g.F(FEx)
				signal = append(signal, ex[g.Idx(cfg.NX/4, 2)])
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The probe signal must oscillate: measure the period from successive
	// zero crossings (skip the first few transient steps).
	var crossings []int
	for i := 10; i < len(signal); i++ {
		if signal[i-1] < 0 && signal[i] >= 0 {
			crossings = append(crossings, i)
		}
	}
	if len(crossings) < 2 {
		t.Fatalf("no oscillation detected: %d upward crossings", len(crossings))
	}
	meanGap := float64(crossings[len(crossings)-1]-crossings[0]) / float64(len(crossings)-1)
	period := meanGap * cfg.Dt
	want := 2 * math.Pi // ωp = 1
	if period < 0.7*want || period > 1.4*want {
		t.Errorf("Langmuir period = %.2f, want ≈ 2π = %.2f (ωp = 1)", period, want)
	}
	// The oscillation amplitude must not grow (implicit scheme is stable
	// and slightly damping).
	var early, late float64
	for i := 10; i < 40; i++ {
		early = math.Max(early, math.Abs(signal[i]))
	}
	for i := len(signal) - 30; i < len(signal); i++ {
		late = math.Max(late, math.Abs(signal[i]))
	}
	if late > early*1.2 {
		t.Errorf("oscillation grows: early max %v, late max %v", early, late)
	}
}
