package xpic

import (
	"math"
	"testing"

	"clusterbooster/internal/fabric"
	"clusterbooster/internal/machine"
	"clusterbooster/internal/psmpi"
)

// withRank runs body on a single cluster rank.
func withRank(t *testing.T, body func(p *psmpi.Proc) error) {
	t.Helper()
	sys := machine.New(1, 0)
	rt := psmpi.NewRuntime(sys, fabric.New(sys, fabric.Config{}), psmpi.Config{})
	if _, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: sys.Module(machine.Cluster)[:1],
		Main:  body,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCurlOfConstantIsZero(t *testing.T) {
	withRank(t, func(p *psmpi.Proc) error {
		g := NewGrid(16, 16, 0, 1)
		fs := NewFieldSolver(g, QuickConfig(1))
		in := [3][]float64{make([]float64, len(g.F(FEx))), make([]float64, len(g.F(FEx))), make([]float64, len(g.F(FEx)))}
		for c := range in {
			for i := range in[c] {
				in[c][i] = 3.5
			}
		}
		out := [3][]float64{make([]float64, len(in[0])), make([]float64, len(in[0])), make([]float64, len(in[0]))}
		fs.curl(&out, &in)
		for c := range out {
			for iy := 1; iy <= g.LY; iy++ {
				for ix := 0; ix < g.NX; ix++ {
					if v := out[c][g.Idx(ix, iy)]; v != 0 {
						t.Fatalf("curl of constant: comp %d at (%d,%d) = %v", c, ix, iy, v)
						return nil
					}
				}
			}
		}
		return nil
	})
}

func TestCurlOfSinusoid(t *testing.T) {
	// Ez = sin(kx) → (∇×E)_y = -∂Ez/∂x = -k·cos(kx) (discrete: sin(k)/1·cos).
	withRank(t, func(p *psmpi.Proc) error {
		const n = 32
		g := NewGrid(n, n, 0, 1)
		fs := NewFieldSolver(g, QuickConfig(1))
		k := 2 * math.Pi / float64(n)
		in := [3][]float64{make([]float64, len(g.F(FEx))), make([]float64, len(g.F(FEx))), make([]float64, len(g.F(FEx)))}
		for iy := 0; iy <= g.LY+1; iy++ {
			for ix := 0; ix < n; ix++ {
				in[2][g.Idx(ix, iy)] = math.Sin(k * float64(ix))
			}
		}
		out := [3][]float64{make([]float64, len(in[0])), make([]float64, len(in[0])), make([]float64, len(in[0]))}
		fs.curl(&out, &in)
		// Central difference of sin(kx) is sin(k)/1 × cos(kx) (modified wavenumber).
		keff := math.Sin(k)
		for ix := 0; ix < n; ix++ {
			want := -keff * math.Cos(k*float64(ix))
			got := out[1][g.Idx(ix, 4)]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("curl_y at ix=%d: got %v want %v", ix, got, want)
				return nil
			}
			if out[0][g.Idx(ix, 4)] != 0 {
				t.Fatal("curl_x should vanish for x-only variation")
				return nil
			}
		}
		return nil
	})
}

func TestOperatorIdentityWhenDZero(t *testing.T) {
	// With d² = 0 and χ = 0 the operator is the identity.
	withRank(t, func(p *psmpi.Proc) error {
		g := NewGrid(8, 8, 0, 1)
		fs := NewFieldSolver(g, QuickConfig(1))
		in := [3][]float64{make([]float64, len(g.F(FEx))), make([]float64, len(g.F(FEx))), make([]float64, len(g.F(FEx)))}
		for c := range in {
			for i := range in[c] {
				in[c][i] = float64(c*100 + i)
			}
		}
		out := [3][]float64{make([]float64, len(in[0])), make([]float64, len(in[0])), make([]float64, len(in[0]))}
		fs.applyCurlCurl(p, p.World(), &out, &in, 0)
		for c := range out {
			for iy := 1; iy <= g.LY; iy++ {
				for ix := 0; ix < g.NX; ix++ {
					i := g.Idx(ix, iy)
					if out[c][i] != in[c][i] {
						t.Fatalf("identity violated at comp %d idx %d: %v != %v", c, i, out[c][i], in[c][i])
						return nil
					}
				}
			}
		}
		return nil
	})
}

func TestCGSolvesManufacturedSystem(t *testing.T) {
	// Manufacture a target E*, compute RHS = A·E*, solve from zero moments
	// and verify the recovered field. We drive SolveE directly by planting
	// the RHS through B and J: simpler — check the residual of the solve on
	// a random thermal state after a few steps instead.
	rt := newRuntime(1, 0)
	cfg := QuickConfig(3)
	cfg.CGTol = 1e-12
	var finalIters int
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 1),
		Main: func(p *psmpi.Proc) error {
			comm := p.World()
			g := NewGrid(cfg.NX, cfg.NY, 0, 1)
			fld := NewFieldSolver(g, cfg)
			pcl := NewParticleSolver(g, cfg)
			for step := 0; step < 3; step++ {
				fld.SolveE(p, comm)
				pcl.Move(p)
				pcl.Gather(p)
				g.ReduceMomentHalos(p, comm)
				fld.SolveB(p, comm)
			}
			finalIters = fld.LastIters
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalIters >= QuickConfig(1).CGMaxIter {
		t.Fatalf("CG did not converge: %d iterations", finalIters)
	}
}

func TestSolveBFaradayUniformE(t *testing.T) {
	// A spatially uniform E has zero curl: B must not change.
	rt := newRuntime(1, 0)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 1),
		Main: func(p *psmpi.Proc) error {
			cfg := QuickConfig(1)
			g := NewGrid(16, 16, 0, 1)
			fld := NewFieldSolver(g, cfg)
			for _, name := range []string{FEx, FEy, FEz} {
				a := g.F(name)
				for i := range a {
					a[i] = 2.0
				}
			}
			bz0 := 0.7
			bz := g.F(FBz)
			for i := range bz {
				bz[i] = bz0
			}
			fld.SolveB(p, p.World())
			for iy := 1; iy <= g.LY; iy++ {
				for ix := 0; ix < g.NX; ix++ {
					if v := bz[g.Idx(ix, iy)]; math.Abs(v-bz0) > 1e-15 {
						t.Fatalf("uniform E changed B: %v", v)
						return nil
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSusceptibilityNonNegative(t *testing.T) {
	rt := newRuntime(1, 0)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 1),
		Main: func(p *psmpi.Proc) error {
			cfg := QuickConfig(1)
			g := NewGrid(16, 16, 0, 1)
			fld := NewFieldSolver(g, cfg)
			pcl := NewParticleSolver(g, cfg)
			pcl.Gather(p)
			g.ReduceMomentHalos(p, p.World())
			fld.assembleSusceptibility()
			for iy := 1; iy <= g.LY; iy++ {
				for ix := 0; ix < g.NX; ix++ {
					if chi := fld.chi[g.Idx(ix, iy)]; chi < 0 || math.IsNaN(chi) {
						t.Fatalf("chi at (%d,%d) = %v", ix, iy, chi)
						return nil
					}
				}
			}
			// The plasma is there: average χ must be positive.
			var sum float64
			for iy := 1; iy <= g.LY; iy++ {
				for ix := 0; ix < g.NX; ix++ {
					sum += fld.chi[g.Idx(ix, iy)]
				}
			}
			if sum == 0 {
				t.Fatal("susceptibility identically zero despite plasma")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFieldSolverCostsTime(t *testing.T) {
	rt := newRuntime(1, 0)
	_, err := rt.Launch(psmpi.LaunchSpec{
		Nodes: clusterNodes(rt, 1),
		Main: func(p *psmpi.Proc) error {
			cfg := QuickConfig(1)
			g := NewGrid(16, 16, 0, 1)
			fld := NewFieldSolver(g, cfg)
			before := p.Now()
			fld.SolveE(p, p.World())
			if p.Now() <= before {
				t.Error("SolveE consumed no virtual time")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
