package xpic

import (
	"encoding/binary"
	"fmt"
	"testing"

	"clusterbooster/internal/psmpi"
	"clusterbooster/internal/vclock"
)

// memStore is a zero-cost in-memory CheckpointStore for tests: snapshots by
// (step, rank), restarts served from loadStep.
type memStore struct {
	saves     map[int]map[int][]byte
	completed []int
	loadStep  int
	loads     int
}

func newMemStore() *memStore { return &memStore{saves: map[int]map[int][]byte{}} }

func (m *memStore) Save(p *psmpi.Proc, rank, step int, data []byte) error {
	if m.saves[step] == nil {
		m.saves[step] = map[int][]byte{}
	}
	m.saves[step][rank] = append([]byte(nil), data...)
	return nil
}

func (m *memStore) Complete(p *psmpi.Proc, step int) error {
	m.completed = append(m.completed, step)
	return nil
}

func (m *memStore) Load(p *psmpi.Proc, rank int) ([]byte, error) {
	m.loads++
	data, ok := m.saves[m.loadStep][rank]
	if !ok {
		return nil, fmt.Errorf("memstore: no snapshot for step %d rank %d", m.loadStep, rank)
	}
	return data, nil
}

// TestResilientMonoMatchesRunMono checks that a resilient run without
// checkpoints or failures reproduces RunMono bit-for-bit.
func TestResilientMonoMatchesRunMono(t *testing.T) {
	cfg := QuickConfig(6)
	rt1 := newRuntime(2, 0)
	plain, err := RunMono(rt1, clusterNodes(rt1, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := newRuntime(2, 0)
	res, err := RunResilient(rt2, ResilientSpec{
		Mode: ClusterOnly, Nodes: clusterNodes(rt2, 2), RanksPerSolver: 2, Cfg: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain != res {
		t.Fatalf("resilient run drifted from RunMono:\n plain %+v\n resil %+v", plain, res)
	}
}

// TestResilientMonoRestartEquivalence checkpoints a mono run, replays the
// tail from the last checkpoint on a fresh system, and requires identical
// physics — and a makespan that starts where the restart attempt began.
func TestResilientMonoRestartEquivalence(t *testing.T) {
	cfg := QuickConfig(9)
	store := newMemStore()

	rt1 := newRuntime(2, 0)
	full, err := RunResilient(rt1, ResilientSpec{
		Mode: ClusterOnly, Nodes: clusterNodes(rt1, 2), RanksPerSolver: 2, Cfg: cfg,
		CheckpointEvery: 3, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(store.saves[3]) != 2 || len(store.saves[6]) != 2 || store.saves[9] != nil {
		t.Fatalf("checkpoint cadence wrong: saved steps %v", store.completed)
	}

	// Restart from step 6 on a fresh system, as a post-failure attempt would.
	store.loadStep = 6
	const resumeAt = 123 * vclock.Second
	rt2 := newRuntime(2, 0)
	tail, err := RunResilient(rt2, ResilientSpec{
		Mode: ClusterOnly, Nodes: clusterNodes(rt2, 2), RanksPerSolver: 2, Cfg: cfg,
		CheckpointEvery: 3, Store: store, StartStep: 6, StartTime: resumeAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.loads != 2 {
		t.Fatalf("loads = %d, want one per rank", store.loads)
	}
	if tail.Checksum != full.Checksum || tail.KineticEnergy != full.KineticEnergy {
		t.Fatalf("restarted physics drifted: %+v vs %+v", tail, full)
	}
	if tail.Makespan <= resumeAt {
		t.Fatalf("restart makespan %v not past its start time %v", tail.Makespan, resumeAt)
	}
	if grew := tail.Makespan - resumeAt; grew >= full.Makespan {
		t.Fatalf("3-step tail (%v) not shorter than the 9-step run (%v)", grew, full.Makespan)
	}
}

// TestResilientSplitRestartEquivalence is the same replay check for the
// C+B mode: both solver sides checkpoint and restore at the same step.
func TestResilientSplitRestartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("split replay is seconds-scale")
	}
	cfg := QuickConfig(6)
	store := newMemStore()

	rt1 := newRuntime(2, 2)
	full, err := RunResilient(rt1, ResilientSpec{
		Mode: SplitCB, Nodes: boosterNodes(rt1, 2), RanksPerSolver: 2, Cfg: cfg,
		CheckpointEvery: 2, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both sides save: 2 booster ranks (0,1) + 2 cluster ranks (2,3).
	if len(store.saves[4]) != 4 {
		t.Fatalf("split checkpoint of step 4 covers %d ranks, want 4", len(store.saves[4]))
	}

	store.loadStep = 4
	rt2 := newRuntime(2, 2)
	tail, err := RunResilient(rt2, ResilientSpec{
		Mode: SplitCB, Nodes: boosterNodes(rt2, 2), RanksPerSolver: 2, Cfg: cfg,
		CheckpointEvery: 2, Store: store, StartStep: 4, StartTime: 10 * vclock.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tail.Checksum != full.Checksum || tail.KineticEnergy != full.KineticEnergy ||
		tail.FieldEnergy != full.FieldEnergy {
		t.Fatalf("restarted split physics drifted:\n full %+v\n tail %+v", full, tail)
	}
}

// TestDecodersRejectHugeLength corrupts a snapshot's length field with a
// value whose byte size overflows int: the decoders must return the corrupt-
// snapshot error, not panic allocating.
func TestDecodersRejectHugeLength(t *testing.T) {
	g := NewGrid(8, 8, 0, 1)
	names := append(append([]string(nil), FieldNames...), MomentNames...)
	snap := snapGrid(g, names, 3)
	// Layout: magic(4) version(4) step(8) nNames(8), then the first array's
	// length at offset 24.
	corrupt := append([]byte(nil), snap...)
	binary.LittleEndian.PutUint64(corrupt[24:], 1<<60)
	if _, err := restoreGrid(g, names, corrupt); err == nil {
		t.Fatal("huge length field accepted by restoreGrid")
	}

	pcl := NewParticleSolver(g, QuickConfig(1))
	psnap := snapParticles(pcl, 3)
	// Layout: magic(4) version(4) step(8) nSpecies(8) Q(8), then species 0's
	// X length at offset 32.
	corrupt = append([]byte(nil), psnap...)
	binary.LittleEndian.PutUint64(corrupt[32:], 1<<60)
	if _, err := restoreParticles(pcl, corrupt); err == nil {
		t.Fatal("huge length field accepted by restoreParticles")
	}
}

// TestResilientFailureAborts arms an aggressive injector and checks the run
// dies with a recoverable NodeFailure.
func TestResilientFailureAborts(t *testing.T) {
	cfg := QuickConfig(50)
	rt := newRuntime(2, 0)
	nodes := clusterNodes(rt, 2)
	inj := psmpi.NewFailureInjector(40*vclock.Millisecond, 11, 1, nodes)
	_, err := RunResilient(rt, ResilientSpec{
		Mode: ClusterOnly, Nodes: nodes, RanksPerSolver: 2, Cfg: cfg,
		CheckpointEvery: 5, Store: newMemStore(),
		Failures: inj,
	})
	if err == nil {
		t.Fatal("run survived an aggressive injector")
	}
	if _, ok := psmpi.FailureOf(err); !ok {
		t.Fatalf("no NodeFailure in %v", err)
	}
}
